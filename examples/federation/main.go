// federation: the multi-grid federation layer end-to-end over HTTP — a
// carbonapi server replays three regional grids, member clusters fetch
// their trace windows through the API, and the job routers poll the same
// server for intensities and forecast bounds (the prototype's daemon
// path, exercised here via an in-process httptest server).
//
//	go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
	"pcaps/internal/federation"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func main() {
	// Three regions with very different carbon profiles (Table 1):
	// CAISO's solar-driven midday lows, ON's near-clean hydro/nuclear
	// mix, DE's wide evening swings.
	grids := []string{"CAISO", "ON", "DE"}
	traces := map[string]*carbon.Trace{}
	for i, g := range grids {
		spec, err := carbon.GridByName(g)
		if err != nil {
			log.Fatal(err)
		}
		traces[g] = carbon.Synthesize(spec, 1000, 60, 42+int64(i)*1000003)
	}
	srv := httptest.NewServer(carbonapi.NewServer(traces))
	defer srv.Close()
	client := carbonapi.NewClient(srv.URL)
	fmt.Printf("carbon API serving %v on %s\n\n", grids, srv.URL)

	// Member clusters fetch their windows through the API, like the
	// prototype daemon would, instead of reading local traces.
	ctx := context.Background()
	clusters := make([]federation.ClusterSpec, len(grids))
	for i, g := range grids {
		window, err := client.FetchTrace(ctx, g, 0, 240)
		if err != nil {
			log.Fatal(err)
		}
		clusters[i] = federation.ClusterSpec{
			Grid:  g,
			Trace: window,
			Config: sim.Config{
				NumExecutors:  50,
				MoveDelay:     1,
				HoldExecutors: true,
				IdleTimeout:   60,
			},
			NewScheduler: func(int64) sim.Scheduler { return &sched.FIFO{} },
		}
	}

	jobs := workload.Batch(workload.BatchConfig{N: 30, MeanInterarrival: 30, Mix: workload.MixTPCH, Seed: 7})
	signals := &federation.ClientSignals{Client: client}
	routers := []federation.Router{
		federation.NewRoundRobin(),
		federation.NewLowestIntensity(),
		federation.NewForecastAware(),
	}
	fmt.Printf("routing %d jobs across %d clusters (signals polled over HTTP):\n", len(jobs), len(clusters))
	var baseline float64
	for _, r := range routers {
		f := &federation.Federation{Clusters: clusters, Router: r, Signals: signals, Seed: 7}
		res, err := f.Run(jobs)
		if err != nil {
			log.Fatal(err)
		}
		counts := make([]int, len(clusters))
		for _, idx := range res.Assignments {
			counts[idx]++
		}
		s := res.Summary
		if r.Name() == "round-robin" {
			baseline = s.CarbonGrams
		}
		pct := 0.0
		if baseline > 0 {
			pct = 100 * (s.CarbonGrams - baseline) / baseline
		}
		fmt.Printf("  %-18s %8.1f g (%+6.1f%% vs RR) · makespan %5.0f s · avg JCT %4.0f s · jobs/cluster %v\n",
			r.Name(), s.CarbonGrams, pct, s.Makespan, s.AvgJCT, counts)
	}
	fmt.Println("\n(the carbon-aware routers shift load toward the cleanest region at each arrival;")
	fmt.Println(" forecast-aware scores the whole job span and holds its choice under hysteresis)")
}

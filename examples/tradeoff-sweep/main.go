// tradeoff-sweep: the configurable carbon/completion-time trade-off of
// PCAPS (γ) and CAP (B) on one grid — the Fig 7/8/11/12 story, including
// the Fig 13 comparison of the two frontiers.
//
//	go run ./examples/tradeoff-sweep
package main

import (
	"fmt"
	"log"

	"pcaps/internal/carbon"
	"pcaps/internal/metrics"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func main() {
	spec, err := carbon.GridByName("DE")
	if err != nil {
		log.Fatal(err)
	}
	tr := carbon.Synthesize(spec, 3000, 60, 42)
	jobs := workload.Batch(workload.BatchConfig{N: 50, MeanInterarrival: 30, Mix: workload.MixTPCH, Seed: 23})
	cfg := sim.Config{
		NumExecutors: 100, Trace: tr, MoveDelay: 1,
		HoldExecutors: true, IdleTimeout: 60, Seed: 1,
	}
	run := func(s sim.Scheduler) *sim.Result {
		res, err := sim.Run(cfg, jobs, s)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := run(sched.NewDecima(3))

	fmt.Println("PCAPS: carbon-awareness γ sweep (vs Decima)")
	fmt.Printf("%8s %14s %12s %10s\n", "γ", "carbon red.", "rel. ECT", "deferrals")
	var pcapsFrontier []metrics.Point
	for _, g := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		r := run(sched.NewPCAPS(sched.NewDecima(3), g, 3))
		red := 100 * (base.CarbonGrams - r.CarbonGrams) / base.CarbonGrams
		fmt.Printf("%8.1f %13.1f%% %12.3f %10d\n", g, red, r.ECT/base.ECT, r.Deferrals)
		pcapsFrontier = append(pcapsFrontier, metrics.Point{X: r.ECT / base.ECT, Y: red})
	}

	fmt.Println("\nCAP-Decima: minimum-quota B sweep (vs Decima)")
	fmt.Printf("%8s %14s %12s\n", "B", "carbon red.", "rel. ECT")
	var capFrontier []metrics.Point
	for _, b := range []int{5, 20, 40, 60, 80} {
		r := run(sched.NewCAP(sched.NewDecima(3), b))
		red := 100 * (base.CarbonGrams - r.CarbonGrams) / base.CarbonGrams
		fmt.Printf("%8d %13.1f%% %12.3f\n", b, red, r.ECT/base.ECT)
		capFrontier = append(capFrontier, metrics.Point{X: r.ECT / base.ECT, Y: red})
	}

	// The Fig 13 comparison: at each CAP operating point, find the
	// cheapest PCAPS point achieving at least the same savings and
	// compare the ECT each method pays.
	fmt.Println("\nmatched-savings frontier comparison (paper Fig 13):")
	for _, c := range capFrontier {
		bestECT := -1.0
		for _, p := range pcapsFrontier {
			if p.Y >= c.Y-1 && (bestECT < 0 || p.X < bestECT) {
				bestECT = p.X
			}
		}
		if bestECT < 0 {
			continue
		}
		fmt.Printf("  at ≥%4.1f%% savings: PCAPS pays ECT %.3f vs CAP-Decima %.3f\n", c.Y, bestECT, c.X)
	}
	fmt.Println("PCAPS's relative-importance signal buys the better trade-off at high savings.")
}

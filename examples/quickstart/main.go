// Quickstart: schedule a small batch of data processing jobs on a
// simulated cluster with and without carbon-awareness, and print the
// carbon/completion-time trade-off.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pcaps/internal/carbon"
	"pcaps/internal/dag"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func main() {
	// 1. A carbon-intensity trace: the German grid, synthesized to the
	//    paper's Table 1 statistics. One sample = one grid-hour = 60 s
	//    of experiment time.
	spec, err := carbon.GridByName("DE")
	if err != nil {
		log.Fatal(err)
	}
	trace := carbon.Synthesize(spec, 2000, 60, 1)

	// 2. A workload: 20 TPC-H-like query DAGs arriving as a Poisson
	//    process (mean gap 30 s). You can also build DAGs by hand:
	b := dag.NewBuilder(0, "hand-built")
	scan := b.Stage("scan", 8, 4) // 8 tasks × 4 s
	agg := b.Stage("agg", 2, 6)
	b.Edge(scan, agg)
	custom := b.MustBuild()
	fmt.Printf("hand-built job: %d stages, %.0f s of work, %.0f s critical path\n\n",
		len(custom.Stages), custom.TotalWork(), custom.CriticalPathLength())

	jobs := workload.Batch(workload.BatchConfig{N: 20, MeanInterarrival: 30, Mix: workload.MixTPCH, Seed: 7})

	// 3. A cluster: 50 executors, Spark-style executor retention.
	cfg := sim.Config{
		NumExecutors:  50,
		Trace:         trace,
		MoveDelay:     1,
		HoldExecutors: true,
		IdleTimeout:   60,
		Seed:          1,
	}

	// 4. Schedulers: the carbon-agnostic Decima-like policy, PCAPS
	//    wrapping it with moderate carbon-awareness (γ = 0.5), and CAP
	//    wrapping it with a minimum quota of 10 machines.
	run := func(s sim.Scheduler) *sim.Result {
		res, err := sim.Run(cfg, jobs, s)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	decima := run(sched.NewDecima(1))
	pcaps := run(sched.NewPCAPS(sched.NewDecima(1), 0.5, 1))
	cap := run(sched.NewCAP(sched.NewDecima(1), 10))

	fmt.Printf("%-22s %10s %10s %10s %10s\n", "scheduler", "carbon(g)", "ECT(s)", "avgJCT(s)", "deferrals")
	for _, r := range []*sim.Result{decima, pcaps, cap} {
		fmt.Printf("%-22s %10.1f %10.0f %10.0f %10d\n",
			r.Scheduler, r.CarbonGrams, r.ECT, r.AvgJCT, r.Deferrals)
	}
	fmt.Printf("\nPCAPS saved %.1f%% carbon vs Decima for a %.1f%% ECT change.\n",
		100*(decima.CarbonGrams-pcaps.CarbonGrams)/decima.CarbonGrams,
		100*(pcaps.ECT-decima.ECT)/decima.ECT)
}

// motivating: the paper's Fig 1 walkthrough — one DAG, an 18-hour carbon
// window, and three scheduling philosophies compared exactly: FIFO list
// scheduling, the time-optimal schedule (T-OPT), and the carbon-optimal
// schedule under a deadline (C-OPT). It shows why precedence structure
// matters: deferring the wrong ("bottleneck") stage wrecks completion
// time, while deferring side stages is nearly free.
//
//	go run ./examples/motivating
package main

import (
	"fmt"
	"log"

	"pcaps/internal/dag"
	"pcaps/internal/optimal"
)

func main() {
	// The DAG: a 1-hour source, four 2-hour side stages, a 3+3-hour
	// bottleneck chain (green → purple), and a 2-hour sink.
	b := dag.NewBuilder(0, "motivating")
	src := b.Stage("src", 1, 1)
	var sides []int
	for i := 0; i < 4; i++ {
		sides = append(sides, b.Stage(fmt.Sprintf("side%d", i), 1, 2))
	}
	green := b.Stage("green", 1, 3)
	purple := b.Stage("purple", 1, 3)
	sink := b.Stage("sink", 1, 2)
	for _, s := range sides {
		b.Edge(src, s).Edge(s, sink)
	}
	b.Edge(src, green).Edge(green, purple).Edge(purple, sink)
	job := b.MustBuild()

	// An 18-hour carbon window with an early peak.
	carbon := []float64{
		250, 380, 520, 650, 650, 600, 450, 350, 280,
		230, 210, 200, 200, 210, 230, 260, 300, 340,
	}
	inst := optimal.Instance{Job: job, K: 3, Carbon: carbon, Deadline: 18}

	fifo, err := optimal.ListSchedule(inst)
	if err != nil {
		log.Fatal(err)
	}
	topt, err := optimal.TOpt(inst)
	if err != nil {
		log.Fatal(err)
	}
	copt, err := optimal.COpt(inst)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("DAG: %d stages, %.0f h of work, %.0f h critical path, %d machines\n\n",
		len(job.Stages), job.TotalWork(), job.CriticalPathLength(), inst.K)
	show := func(name string, s *optimal.Schedule) {
		if err := optimal.Validate(inst, s); err != nil {
			log.Fatalf("%s: invalid schedule: %v", name, err)
		}
		fmt.Printf("%-6s finishes in %2d h, emits %6.0f g  |", name, s.Makespan(), s.CarbonCost(carbon))
		for _, ids := range s.Slots {
			if len(ids) == 0 {
				fmt.Print("·")
			} else {
				fmt.Print(len(ids))
			}
		}
		fmt.Println("|")
	}
	show("FIFO", fifo)
	show("T-OPT", topt)
	show("C-OPT", copt)

	fmt.Printf("\nC-OPT saves %.1f%% carbon vs FIFO by idling through the peak, at %+.0f%% completion time.\n",
		100*(fifo.CarbonCost(carbon)-copt.CarbonCost(carbon))/fifo.CarbonCost(carbon),
		100*(float64(copt.Makespan())/float64(fifo.Makespan())-1))
	fmt.Println("PCAPS navigates between these poles; run `go run ./cmd/pcapsim -exp fig1` for the full figure.")
}

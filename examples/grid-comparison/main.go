// grid-comparison: how grid characteristics shape the carbon-time
// trade-off (the Fig 10 / Fig 14 story). Runs moderate PCAPS and CAP on
// all six grids and shows that variable grids (ON, CAISO, DE) unlock far
// larger savings than flat ones (ZA).
//
//	go run ./examples/grid-comparison
package main

import (
	"fmt"
	"log"

	"pcaps/internal/carbon"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func main() {
	traces := carbon.SynthesizeAll(3000, 60, 42)
	jobs := workload.Batch(workload.BatchConfig{N: 30, MeanInterarrival: 30, Mix: workload.MixTPCH, Seed: 5})

	fmt.Printf("%-6s %10s %14s %14s %12s %12s\n",
		"grid", "coeff.var", "PCAPS ΔCO2", "CAP ΔCO2", "PCAPS ECT", "CAP ECT")
	for _, name := range carbon.SortedNames(traces) {
		tr := traces[name]
		cfg := sim.Config{
			NumExecutors: 100, Trace: tr, MoveDelay: 1,
			HoldExecutors: true, IdleTimeout: 60, Seed: 1,
		}
		run := func(s sim.Scheduler) *sim.Result {
			res, err := sim.Run(cfg, jobs, s)
			if err != nil {
				log.Fatal(err)
			}
			return res
		}
		base := run(sched.NewDecima(1))
		pc := run(sched.NewPCAPS(sched.NewDecima(1), 0.5, 1))
		cp := run(sched.NewCAP(sched.NewDecima(1), 20))
		pct := func(r *sim.Result) float64 {
			return 100 * (base.CarbonGrams - r.CarbonGrams) / base.CarbonGrams
		}
		fmt.Printf("%-6s %10.3f %13.1f%% %13.1f%% %12.3f %12.3f\n",
			name, tr.Stats().CoeffVar, pct(pc), pct(cp),
			pc.ECT/base.ECT, cp.ECT/base.ECT)
	}
	fmt.Println("\nAs in the paper: greater renewable variability → greater savings;")
	fmt.Println("coal-flat ZA offers almost nothing to shift toward.")
}

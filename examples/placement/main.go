// placement: the snapshot-decision path end to end — a short
// simulation is run to a mid-run scheduling event, the cluster is
// exported as a serializable snapshot, and every registered policy is
// asked for its decision twice: locally (restore + Pick) and over HTTP
// (POST /v1/placement against a carbonapi server). The two decisions
// must match policy by policy: the snapshot layer's equivalence
// contract, demonstrated on the wire.
//
//	go run ./examples/placement                          # in-process server
//	go run ./examples/placement -server http://host:8585 # running carbonapi
//	go run ./examples/placement -request req.json -decision dec.json
//
// -request writes the full /v1/placement request body for the first
// policy and -decision the locally computed decision; the CI e2e job
// replays the request with curl and diffs the response against the
// decision file.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"reflect"

	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
	"pcaps/internal/placement"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

const seed = 42

// snapshotMidRun simulates a small batch and exports the cluster at a
// contended moment: several active jobs, busy and idle executors.
func snapshotMidRun() *sim.Snapshot {
	jobs := workload.Batch(workload.BatchConfig{N: 10, MeanInterarrival: 25, Mix: workload.MixBoth, Seed: seed})
	tr := carbon.SynthesizeAll(48, 60, seed)["CAISO"]
	var snap *sim.Snapshot
	events := 0
	cfg := sim.Config{
		NumExecutors: 20,
		Trace:        tr,
		Seed:         seed,
		Observer: func(c *sim.Cluster) {
			events++
			if snap == nil && events >= 30 && c.BusyCount() > 0 && len(c.ActiveJobs()) > 1 {
				snap = c.Snapshot()
			}
		},
	}
	f, err := sched.Default().New(sched.Spec{Kind: "weighted-fair"})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(cfg, jobs, f(seed)); err != nil {
		log.Fatal(err)
	}
	if snap == nil {
		log.Fatal("placement: no mid-run snapshot captured")
	}
	return snap
}

func main() {
	server := flag.String("server", "", "carbonapi base URL (default: in-process test server)")
	reqFile := flag.String("request", "", "write the first policy's /v1/placement request body to FILE")
	decFile := flag.String("decision", "", "write the first policy's local decision to FILE")
	flag.Parse()

	snap := snapshotMidRun()
	fmt.Printf("snapshot: t=%.0fs  %d jobs  %d/%d executors busy\n",
		snap.TimeSec, len(snap.Jobs), busyCount(snap), snap.NumExecutors)

	baseURL := *server
	if baseURL == "" {
		srv := httptest.NewServer(carbonapi.NewServer(nil, carbonapi.WithPlacements(&placement.Service{})))
		defer srv.Close()
		baseURL = srv.URL
		fmt.Printf("in-process carbonapi at %s\n", baseURL)
	}
	client := carbonapi.NewClient(baseURL)

	specs := []sched.Spec{
		{Kind: "fifo"},
		{Kind: "decima"},
		{Kind: "greenhadoop"},
		{Kind: "cap", B: sched.Int(10)},
		{Kind: "pcaps", Gamma: sched.Float(0.9)},
	}
	fmt.Printf("\n%-28s %-24s %s\n", "policy", "local Pick", "HTTP /v1/placement")
	mismatches := 0
	for i, spec := range specs {
		// Local path: restore the snapshot and run Pick in-process.
		cluster, err := snap.Restore()
		if err != nil {
			log.Fatal(err)
		}
		f, err := sched.Default().New(spec)
		if err != nil {
			log.Fatal(err)
		}
		local := cluster.Place(f(seed))

		// HTTP path: same snapshot, same policy, over the wire.
		remote, err := client.Place(context.Background(), spec, seed, snap)
		if err != nil {
			log.Fatal(err)
		}

		match := "== MATCH"
		if !reflect.DeepEqual(local, *remote) {
			match = "!= MISMATCH"
			mismatches++
		}
		label, _ := json.Marshal(spec)
		fmt.Printf("%-28s %-24s %s %s\n", label, describe(local), describe(*remote), match)

		if i == 0 {
			writeIfAsked(*reqFile, carbonapi.PlacementRequest{Policy: &spec, Seed: seed, Snapshot: snap})
			writeIfAsked(*decFile, local)
		}
	}
	if mismatches > 0 {
		log.Fatalf("placement: %d policies diverged between local and HTTP", mismatches)
	}
	fmt.Println("\nevery policy's HTTP decision equals its local Pick")
}

func busyCount(s *sim.Snapshot) int {
	n := 0
	for _, e := range s.Executors {
		if e.State != sim.ExecIdle {
			n++
		}
	}
	return n
}

func describe(p sim.Placement) string {
	if p.Defer {
		return "defer"
	}
	return fmt.Sprintf("job %d stage %d +%d exec", p.JobID, p.StageID, len(p.ExecutorIDs))
}

func writeIfAsked(path string, v any) {
	if path == "" {
		return
	}
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
}

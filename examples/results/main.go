// results: the typed artifact pipeline end to end — a carbonapi server
// exposes the experiment registry under /v1/experiments, the Go client
// lists it, runs one artifact on demand (fast mode), and the structured
// JSON that comes back is re-rendered locally: the decoded
// result.Artifact carries its typed rows *and* its display hints, so the
// client reproduces the server's exact fixed-width text without a second
// run, and can just as well emit CSV or walk the typed cells.
//
//	go run ./examples/results
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"strings"

	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
	"pcaps/internal/experiments"
	"pcaps/internal/result"
)

func main() {
	// A server replaying one grid, with the experiments service enabled —
	// the same wiring cmd/carbonapi uses.
	spec, err := carbon.GridByName("DE")
	if err != nil {
		log.Fatal(err)
	}
	traces := map[string]*carbon.Trace{"DE": carbon.Synthesize(spec, 1000, 60, 42)}
	srv := httptest.NewServer(carbonapi.NewServer(traces,
		carbonapi.WithExperiments(&experiments.Service{})))
	defer srv.Close()
	client := carbonapi.NewClient(srv.URL)
	ctx := context.Background()

	infos, err := client.Experiments(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server lists %d runnable artifacts; first three:\n", len(infos))
	for _, info := range infos[:3] {
		fmt.Printf("  %-8s %s\n", info.ID, info.Title)
	}

	const id = "table2"
	fmt.Printf("\nGET /v1/experiments/%s (fast run, structured JSON):\n\n", id)
	art, err := client.Experiment(ctx, id)
	if err != nil {
		log.Fatal(err)
	}

	// The decoded artifact re-renders the server's exact text locally.
	text, err := result.TextRenderer{}.Render(art)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(string(text))

	// And the typed cells are directly consumable — no text parsing.
	for _, blk := range art.Blocks {
		t, ok := blk.(*result.Table)
		if !ok {
			continue
		}
		cols := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			cols[i] = c.Name
		}
		fmt.Printf("\ntable %q: %d rows, columns [%s]\n", t.Name, len(t.Rows), strings.Join(cols, " "))
	}

	csv, err := result.CSVRenderer{}.Render(art)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe same artifact as CSV:\n%s", string(csv))
}

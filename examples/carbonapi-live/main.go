// carbonapi-live: the prototype architecture end-to-end over HTTP — a
// carbon-intensity API server replaying a trace, the CAP quota daemon
// polling it and adjusting a Kubernetes-style ResourceQuota, and a
// prototype cluster run using a trace fetched through the API.
//
//	go run ./examples/carbonapi-live
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
	"pcaps/internal/cluster"
	"pcaps/internal/sched"
	"pcaps/internal/workload"
)

func main() {
	// Serve the six synthetic grids on a loopback listener.
	traces := carbon.SynthesizeAll(3000, 60, 42)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: carbonapi.NewServer(traces)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("carbon API serving on %s\n", base)

	ctx := context.Background()
	client := carbonapi.NewClient(base)
	grids, err := client.Grids(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grids: %v\n", grids)

	// The CAP daemon: polls intensity + forecast and sizes the
	// namespace ResourceQuota, exactly like the paper's Python daemon.
	quota := cluster.NewResourceQuota(cluster.PaperExecutorShape, 100)
	clock := 0.0
	daemon := &cluster.QuotaDaemon{
		Client: client,
		Grid:   "DE",
		K:      100, B: 20,
		Quota: quota,
		Now:   func() float64 { return clock },
	}
	fmt.Println("\nCAP daemon quota decisions across one simulated day:")
	for hour := 0; hour < 24; hour += 4 {
		clock = float64(hour) * 60
		q, err := daemon.Step(ctx)
		if err != nil {
			log.Fatal(err)
		}
		intensity, _ := client.Intensity(ctx, "DE", clock)
		fmt.Printf("  hour %2d: intensity %4.0f g/kWh → quota %3d executors (CPU limit %d m)\n",
			hour, intensity, q, q*cluster.PaperExecutorShape.CPUMillis)
	}

	// Fetch a window of the trace through the API and run the prototype
	// cluster against it.
	window, err := client.FetchTrace(ctx, "DE", 0, 200)
	if err != nil {
		log.Fatal(err)
	}
	jobs := workload.Batch(workload.BatchConfig{N: 25, MeanInterarrival: 30, Mix: workload.MixBoth, Seed: 3})
	cfg := cluster.PaperConfig()
	def, err := cluster.Run(cfg, window, jobs, sched.NewKubeDefault())
	if err != nil {
		log.Fatal(err)
	}
	capRes, err := cluster.Run(cfg, window, jobs, sched.NewCAP(sched.NewKubeDefault(), 20))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprototype run over the fetched trace (%d jobs):\n", len(jobs))
	fmt.Printf("  default: %8.1f g, ECT %5.0f s\n", def.CarbonGrams, def.ECT)
	fmt.Printf("  CAP:     %8.1f g, ECT %5.0f s (%.1f%% carbon reduction)\n",
		capRes.CarbonGrams, capRes.ECT,
		100*(def.CarbonGrams-capRes.CarbonGrams)/def.CarbonGrams)
}

// scenario: the declarative experiment layer end to end — a spec file
// is loaded, compiled, and run locally (the `pcapsim -scenario` path),
// then the same raw document is POSTed to a carbonapi server's
// /v1/scenarios endpoint (the HTTP path) and the two structured
// artifacts are compared: both surfaces execute one compile-and-run
// pipeline, so a scenario authored as data produces identical results
// wherever it runs.
//
//	go run ./examples/scenario                       # bundled minimal spec
//	go run ./examples/scenario examples/scenarios/federation.yaml
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"reflect"

	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
	"pcaps/internal/result"
	"pcaps/internal/scenario"
)

func main() {
	path := "examples/scenarios/minimal.json"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}

	// Local path: parse → compile → run (fast), exactly what
	// `pcapsim -scenario FILE -fast` does.
	spec, err := scenario.Parse(raw)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := scenario.Compile(*spec)
	if err != nil {
		log.Fatal(err)
	}
	local, err := prog.Run(scenario.Env{Pool: scenario.NewPool(0), Fast: true})
	if err != nil {
		log.Fatal(err)
	}
	text, err := result.TextRenderer{}.Render(local)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- local run of %s ---\n%s\n", path, text)

	// HTTP path: the same raw bytes through POST /v1/scenarios on a
	// carbonapi server (the cmd/carbonapi wiring; traces served here are
	// for the polling endpoints — the scenario run synthesizes its own).
	srv := httptest.NewServer(carbonapi.NewServer(
		carbon.SynthesizeAll(1000, 60, 42),
		carbonapi.WithScenarios(&scenario.Service{Pool: scenario.NewPool(0)}),
	))
	defer srv.Close()
	remote, err := carbonapi.NewClient(srv.URL).RunScenario(context.Background(), raw)
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(local, remote) {
		log.Fatal("local and HTTP artifacts diverged — the shared pipeline is broken")
	}
	fmt.Println("--- POST /v1/scenarios returned a deep-equal artifact: one spec, one pipeline, two surfaces ---")
}

package pcaps_test

import (
	"runtime"
	"testing"

	"pcaps/internal/arrivals"
	"pcaps/internal/carbon"
	"pcaps/internal/dag"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

// hyperscaleBenchMeanWork mirrors the hyperscale artifact's capacity
// matching: the mean TPC-H job work in executor-seconds, uniform over
// the three paper scales.
const hyperscaleBenchMeanWork = (180.0 + 386.0 + 1261.0) / 3

// heapSampler wraps a job source and samples the live heap every
// `every` admissions. In a memory-bounded streaming run admissions and
// retirements interleave at the same pace, so admission-time samples see
// the steady-state high-water mark rather than only the post-run heap.
type heapSampler struct {
	src   sim.JobSource
	every int
	n     int
	peak  uint64
}

func (h *heapSampler) Next() (*dag.Job, error) {
	if h.n%h.every == 0 {
		h.sample()
	}
	h.n++
	return h.src.Next()
}

func (h *heapSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > h.peak {
		h.peak = ms.HeapAlloc
	}
}

// hyperscaleStreamPeak drives one capacity-matched constant-arrival cell
// through the streaming engine and returns the sampled peak heap in MiB.
// Scale parameters follow the hyperscale artifact: 40% utilization on
// the DE grid, MixTPCH, with the trace windowed to the arrival span.
func hyperscaleStreamPeak(tb testing.TB, jobs, execs int, s sim.Scheduler) float64 {
	tb.Helper()
	rps := 0.4 * float64(execs) / hyperscaleBenchMeanWork
	hours := int(float64(jobs)/rps/3600) + 48
	grid, err := carbon.GridByName("DE")
	if err != nil {
		tb.Fatal(err)
	}
	tr := carbon.Synthesize(grid, hours, 60, 42)
	cfg := sim.Config{
		NumExecutors: execs,
		Trace:        tr,
		MoveDelay:    1,
		Seed:         42,
		MaxEvents:    2_000_000_000,
	}
	proc, err := arrivals.New(arrivals.Spec{Kind: arrivals.KindConstant, RPS: rps})
	if err != nil {
		tb.Fatal(err)
	}
	src, err := workload.NewSource(workload.GenConfig{
		N: jobs, Arrivals: proc, Mix: workload.MixTPCH, Seed: 42,
	})
	if err != nil {
		tb.Fatal(err)
	}
	hs := &heapSampler{src: src, every: 10_000}
	res, err := sim.RunStream(cfg, hs, s)
	if err != nil {
		tb.Fatal(err)
	}
	hs.sample()
	if res.Stream == nil || res.Stream.Admitted != jobs {
		tb.Fatalf("stream stats missing or short: %+v", res.Stream)
	}
	if res.Stream.PeakInFlight >= jobs/10 {
		tb.Fatalf("in-flight population not bounded: peak %d of %d jobs", res.Stream.PeakInFlight, jobs)
	}
	return float64(hs.peak) / (1 << 20)
}

// TestHyperscaleScaleSmoke is the CI scale gate (scale-smoke job): a
// 100k-job stream on 1000 executors must hold the sampled peak heap
// under 256 MiB — memory proportional to the in-flight population, two
// orders below what materializing the batch plus per-job results would
// take. The CI job additionally runs this under GOMEMLIMIT=400MiB, so a
// regression that leaks per-job state OOMs loudly instead of paging.
func TestHyperscaleScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("hyperscale smoke is a scale gate; skipped in -short")
	}
	peak := hyperscaleStreamPeak(t, 100_000, 1000, &sched.FIFO{})
	t.Logf("peak sampled heap: %.1f MiB", peak)
	if peak > 256 {
		t.Fatalf("peak sampled heap %.1f MiB exceeds the 256 MiB scale gate", peak)
	}
}

package sched

import (
	"fmt"
	"math"
	"math/rand"

	"pcaps/internal/core"
	"pcaps/internal/sim"
)

// boundsKey caches threshold structures per forecast window; thresholds
// only change when the (L, U) forecast changes.
type boundsKey struct{ l, u float64 }

// CAPWrap applies CAP (§4.2) on top of any carbon-agnostic scheduler: a
// quota r(t) from the k-search thresholds gates new executor assignments
// (no preemption), and the inner scheduler's parallelism limit is scaled
// by r(t)/K (§5.1).
type CAPWrap struct {
	// Inner is the wrapped carbon-agnostic scheduler.
	Inner sim.Scheduler
	// B is the minimum machine quota guaranteeing progress.
	B int
	// WorkConserving redirects a pick the cluster cannot act on — the
	// inner's chosen stage already runs at its carbon-scaled limit but
	// still has undispatched tasks, so the assignment loop would bind
	// zero executors and abort the round (head-of-line blocking,
	// Appendix A.1.2) — to the first runnable stage that can accept an
	// executor, still under the quota and the scaled per-stage limit.
	// Off by default: the historical behaviour lets the round abort,
	// and the recorded experiment goldens pin it.
	WorkConserving bool

	caps     map[boundsKey]*core.CAP
	minQuota int
}

// NewCAP wraps inner with a CAP provisioner using minimum quota b.
func NewCAP(inner sim.Scheduler, b int) *CAPWrap {
	return &CAPWrap{Inner: inner, B: b, caps: map[boundsKey]*core.CAP{}, minQuota: math.MaxInt}
}

// Name implements sim.Scheduler.
func (w *CAPWrap) Name() string { return fmt.Sprintf("CAP-%s", w.Inner.Name()) }

// MinQuotaSeen returns M(B,c) over the run (math.MaxInt before any Pick).
func (w *CAPWrap) MinQuotaSeen() int { return w.minQuota }

// provisioner returns the CAP instance for the current forecast window.
func (w *CAPWrap) provisioner(c *sim.Cluster) *core.CAP {
	l, u := c.CarbonBounds()
	if l <= 0 {
		l = 1e-3
	}
	if u < l {
		u = l
	}
	key := boundsKey{l, u}
	if p, ok := w.caps[key]; ok {
		return p
	}
	b := w.B
	if b < 1 {
		b = 1
	}
	if b > c.K() {
		b = c.K()
	}
	p, err := core.NewCAP(c.K(), b, l, u)
	if err != nil {
		// Inputs are sanitized above; treat failure as carbon-agnostic.
		p, _ = core.NewCAP(c.K(), c.K(), l, u)
	}
	w.caps[key] = p
	return p
}

// Pick implements sim.Scheduler.
//
//pcaps:hotpath
func (w *CAPWrap) Pick(c *sim.Cluster) sim.Decision {
	p := w.provisioner(c)
	quota := p.Quota(c.Carbon())
	if quota < w.minQuota {
		w.minQuota = quota
	}
	headroom := quota - c.BusyCount()
	if headroom <= 0 {
		return sim.DeferDecision
	}
	d := w.Inner.Pick(c)
	if d.Defer || d.Ref.Stage == nil {
		return d
	}
	planned := d.Limit
	if planned < 1 || planned > d.Ref.Stage.Stage.NumTasks {
		planned = d.Ref.Stage.Stage.NumTasks
	}
	d.Limit = p.ParallelismLimit(planned, c.Carbon())
	if w.WorkConserving && !refAccepts(c, d.Ref, d.Limit) {
		d = w.redirect(c, p)
		if d.Defer {
			return d
		}
	}
	if d.MaxNew < 1 || d.MaxNew > headroom {
		d.MaxNew = headroom
	}
	return d
}

// refAccepts reports whether the stage can take at least one new executor
// under the limit in force and the cluster's per-job cap — i.e. whether
// the assignment loop would bind anything for this decision.
//
//pcaps:hotpath
func refAccepts(c *sim.Cluster, ref sim.StageRef, limit int) bool {
	if ref.Stage.Running >= limit || ref.Stage.RemainingTasks() == 0 {
		return false
	}
	if cap := c.PerJobCap(); cap > 0 && ref.Job.Executors >= cap {
		return false
	}
	return true
}

// redirect is the WorkConserving fallback: the first runnable stage (the
// view is job-major in arrival order) that can accept an executor under
// its carbon-scaled limit, or a deferral when every stage is saturated.
//
//pcaps:hotpath
func (w *CAPWrap) redirect(c *sim.Cluster, p *core.CAP) sim.Decision {
	carbon := c.Carbon()
	for _, ref := range c.Runnable() {
		lim := p.ParallelismLimit(ref.Stage.Stage.NumTasks, carbon)
		if refAccepts(c, ref, lim) {
			return sim.Decision{Ref: ref, Limit: lim}
		}
	}
	return sim.DeferDecision
}

// PCAPS is the paper's primary contribution (§4.1, Alg. 1): a carbon-
// awareness filter over a probabilistic scheduler. At each scheduling
// event it samples a stage from the inner distribution, computes its
// relative importance r (Def. 4.2), and schedules it iff Ψγ(r) ≥ c(t) or
// no machine is busy; otherwise the cluster idles until the next event.
// Scheduled stages get the carbon-scaled parallelism limit of §5.1.
type PCAPS struct {
	// PB is the wrapped probabilistic scheduler.
	PB Probabilistic
	// Gamma is the carbon-awareness knob γ ∈ [0,1].
	Gamma float64
	// Seed drives stage sampling.
	Seed int64

	psis map[boundsKey]*core.Psi
	rng  *rand.Rand
}

// NewPCAPS wraps a probabilistic scheduler with carbon-awareness γ.
func NewPCAPS(pb Probabilistic, gamma float64, seed int64) *PCAPS {
	return &PCAPS{PB: pb, Gamma: gamma, Seed: seed, psis: map[boundsKey]*core.Psi{}}
}

// Name implements sim.Scheduler.
func (p *PCAPS) Name() string { return "PCAPS" }

// psi returns the threshold function for the current forecast window.
func (p *PCAPS) psi(c *sim.Cluster) *core.Psi {
	l, u := c.CarbonBounds()
	if l <= 0 {
		l = 1e-3
	}
	if u < l {
		u = l
	}
	key := boundsKey{l, u}
	if ps, ok := p.psis[key]; ok {
		return ps
	}
	ps, err := core.NewPsi(p.Gamma, l, u)
	if err != nil {
		ps, _ = core.NewPsi(0, l, u) // sanitized inputs; fall back to agnostic
	}
	p.psis[key] = ps
	return ps
}

// Pick implements sim.Scheduler (Alg. 1 lines 4-10). The distribution's
// refs and probs are inner-scheduler-owned scratch (valid until the next
// Distribution call), so sampling and admission happen before any further
// scheduling work.
//
//pcaps:hotpath
func (p *PCAPS) Pick(c *sim.Cluster) sim.Decision {
	refs, probs := p.PB.Distribution(c)
	if len(refs) == 0 {
		return sim.DeferDecision
	}
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.Seed))
	}
	v := sampleIndex(p.rng, probs)
	r := core.RelativeImportance(probs, v)
	psi := p.psi(c)
	if !psi.Admits(r, c.Carbon()) && c.BusyCount() > 0 {
		c.NoteDeferral(refs[v])
		return sim.DeferDecision
	}
	planned := p.PB.PlannedLimit(c, refs[v])
	return sim.Decision{Ref: refs[v], Limit: psi.ParallelismLimit(planned, c.Carbon())}
}

//pcaps:hotpath
func sampleIndex(rng *rand.Rand, probs []float64) int {
	x := rng.Float64()
	var cum float64
	for i, pr := range probs {
		cum += pr
		if x < cum {
			return i
		}
	}
	return len(probs) - 1
}

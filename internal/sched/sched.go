// Package sched implements the scheduling policies of the paper's
// evaluation (§6.1): the FIFO behaviour of Spark standalone mode, the
// Kubernetes-default variant, the Weighted Fair heuristic, a Decima-like
// probabilistic scheduler (the ML-scheduler substitution documented in
// DESIGN.md), the adapted GreenHadoop baseline (Appendix A.1.1), and the
// carbon-aware wrappers CAP and PCAPS from internal/core.
//
// All policies are written against the simulator's view API: the slices
// returned by Cluster.Runnable and Cluster.ActiveJobs are cluster-owned,
// epoch-cached views that are only valid for the duration of the current
// Pick call. Policies therefore never retain them, and keep their own
// per-instance scratch buffers for derived state, so a Pick call
// allocates nothing on the steady path. A scheduler instance may be used
// by only one run at a time (the experiment engine builds one per cell).
package sched

import (
	"math"

	"pcaps/internal/sim"
)

// FIFO is the default Spark standalone scheduler: jobs in arrival order,
// stages within a job in readiness (ID) order, and no parallelism limit —
// a stage may absorb up to one executor per task, the over-assignment
// behaviour Appendix A.1.2 identifies as the source of FIFO's blocking.
type FIFO struct {
	// Label overrides the reported name ("FIFO" by default); the
	// prototype calls the same policy "default".
	Label string
}

// Name implements sim.Scheduler.
func (f *FIFO) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "FIFO"
}

// Pick implements sim.Scheduler: first runnable stage of the earliest
// arrived job.
//
//pcaps:hotpath
func (f *FIFO) Pick(c *sim.Cluster) sim.Decision {
	runnable := c.Runnable()
	if len(runnable) == 0 {
		return sim.DeferDecision
	}
	return sim.Decision{Ref: runnable[0]} // Limit 0 = up to NumTasks
}

// NewKubeDefault returns the prototype's baseline: FIFO stage selection
// with the per-job executor cap enforced by the cluster configuration
// (sim.Config.PerJobCap), matching the Spark-on-Kubernetes default of
// §6.3. The policy itself is identical to FIFO; the cap lives in the
// cluster, mirroring how Kubernetes enforces it outside Spark.
func NewKubeDefault() *FIFO { return &FIFO{Label: "default"} }

// wfJobInfo is WeightedFair's per-job scratch record.
type wfJobInfo struct {
	job    *sim.JobRun
	weight float64
	target float64
}

// WeightedFair assigns executors across jobs by workload-derived weights,
// mirroring the simulator heuristic of [48] ("a heuristic tuned for the
// simulator's test jobs"). Within a job it prefers the stage heading the
// heaviest downstream chain. The tuned default weight is
// w_j = (remaining work)^-0.5: shares lean toward nearly finished jobs,
// which drives average JCT well below FIFO (the Table 3 ordering) while
// every job retains a positive share and cannot starve.
type WeightedFair struct {
	// Exponent shapes the weight w_j = (remaining work)^Exponent.
	// Zero selects the tuned default of -0.5.
	Exponent float64

	cp cpCache
	// infos is per-Pick scratch, reused across calls.
	infos []wfJobInfo
}

// Name implements sim.Scheduler.
func (w *WeightedFair) Name() string { return "WeightedFair" }

// Pick implements sim.Scheduler.
//
//pcaps:hotpath
func (w *WeightedFair) Pick(c *sim.Cluster) sim.Decision {
	runnable := c.Runnable()
	if len(runnable) == 0 {
		return sim.DeferDecision
	}
	exp := w.Exponent
	if exp == 0 {
		exp = -0.5
	}
	// Compute each active job's weight and deficit (target − current).
	// The runnable view is job-major (arrival order, stages grouped), so
	// jobs are deduplicated at group boundaries without a set.
	w.infos = w.infos[:0]
	var totalWeight float64
	var lastJob *sim.JobRun
	for _, ref := range runnable {
		if ref.Job == lastJob {
			continue
		}
		lastJob = ref.Job
		wt := math.Pow(math.Max(ref.Job.RemainingWork(), 1), exp)
		w.infos = append(w.infos, wfJobInfo{job: ref.Job, weight: wt})
		totalWeight += wt
	}
	infos := w.infos
	var best *sim.JobRun
	bestDeficit := math.Inf(-1)
	bestTarget := 1.0
	for i := range infos {
		infos[i].target = float64(c.K()) * infos[i].weight / totalWeight
		deficit := infos[i].target - float64(infos[i].job.Executors)
		if deficit > bestDeficit {
			bestDeficit = deficit
			best = infos[i].job
			bestTarget = infos[i].target
		}
	}
	// When every job is at or above its fair share, the work still
	// proceeds (work-conserving) on the most underserved job.
	// Within the chosen job, pick the runnable stage with the heaviest
	// downstream critical-path work.
	cp := w.cp.get(best)
	var ref sim.StageRef
	bestCP := math.Inf(-1)
	for _, r := range runnable {
		if r.Job != best {
			continue
		}
		if v := cp[r.Stage.Stage.ID]; v > bestCP {
			bestCP = v
			ref = r
		}
	}
	if ref.Stage == nil {
		ref = runnable[0]
	}
	limit := int(math.Ceil(bestTarget))
	// The same diminishing-returns grant cap the Decima-like scheduler
	// uses: fair shares beyond a job's efficient parallelism only idle
	// executors at stage barriers.
	if cap := workDerivedCap(c, best.RemainingWork()); limit > cap {
		limit = cap
	}
	if limit < 1 {
		limit = 1
	}
	return sim.Decision{Ref: ref, Limit: limit}
}

// cpCache memoizes per-job critical-path-work vectors; the DAG never
// changes after submission, so the vector is computed once per job. Each
// scheduler instance owns its cache, keeping concurrent runs independent.
// Entries carry the JobRun's generation: the streaming engine recycles
// runtime records, so a remembered pointer may now host a different job
// — a moved generation invalidates the entry (and keeps the cache
// bounded by peak in-flight records rather than total jobs).
type cpCache struct {
	m map[*sim.JobRun]cpEntry
}

type cpEntry struct {
	gen int
	v   []float64
}

func (c *cpCache) get(j *sim.JobRun) []float64 {
	if e, ok := c.m[j]; ok && e.gen == j.Generation() {
		return e.v
	}
	if c.m == nil {
		c.m = map[*sim.JobRun]cpEntry{}
	}
	v := j.Job.CriticalPathWorkDown()
	c.m[j] = cpEntry{gen: j.Generation(), v: v}
	return v
}

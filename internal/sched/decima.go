package sched

import (
	"math"
	"math/rand"

	"pcaps/internal/sim"
)

// Probabilistic is the class of schedulers PCAPS interfaces with
// (Def. 4.1): at each scheduling event it exposes a probability
// distribution over the runnable stages, from which the next scheduled
// stage is sampled.
type Probabilistic interface {
	sim.Scheduler
	// Distribution returns the runnable stage references and a matching
	// probability vector (non-negative, summing to 1 unless empty).
	// Both slices may be scheduler-owned scratch: they are valid only
	// until the next Distribution or Pick call and must not be retained
	// or modified by the caller.
	Distribution(c *sim.Cluster) ([]sim.StageRef, []float64)
	// PlannedLimit returns the parallelism limit the scheduler would
	// assign the stage absent any carbon awareness (the P that PCAPS
	// scales down, §5.1).
	PlannedLimit(c *sim.Cluster, ref sim.StageRef) int
}

// Decima is the Decima-like probabilistic scheduler — the substitution for
// the paper's GNN+RL scheduler [48] documented in DESIGN.md. Per-stage
// scores combine the two signals Decima's learned policy is known to
// encode: bottleneck pressure (downstream critical-path work within the
// job) and shortest-remaining-work-first across jobs. A masked softmax
// over runnable stages yields the distribution, exactly the interface
// Def. 4.1 requires; the next stage is sampled from it.
type Decima struct {
	// CPWeight and SRPTWeight scale the two score components; the
	// defaults (3, 4) were tuned so Decima beats FIFO on JCT across the
	// TPC-H and Alibaba workloads while keeping the distribution spread
	// informative for PCAPS's relative-importance signal.
	CPWeight, SRPTWeight float64
	// Temperature divides scores before the softmax; lower is greedier.
	Temperature float64
	// Seed drives stage sampling.
	Seed int64

	rng *rand.Rand
	cp  cpCache
	// Per-Pick scratch, reused across calls: the filtered runnable refs,
	// each ref's job-remaining-work (parallel to refs), and the score /
	// probability vectors. Distribution returns refs and probs directly,
	// so its results are valid only until the next Distribution call.
	refs      []sim.StageRef
	jobRemain []float64
	scores    []float64
	probs     []float64
}

// NewDecima returns a Decima-like scheduler with tuned defaults.
func NewDecima(seed int64) *Decima {
	return &Decima{CPWeight: 3, SRPTWeight: 4, Temperature: 1, Seed: seed}
}

// Name implements sim.Scheduler.
func (d *Decima) Name() string { return "Decima" }

// Distribution implements Probabilistic. The distribution masks not only
// non-runnable stages but also stages already saturated under the planned
// executor cap, so every sampled action is executable (the masked-softmax
// semantics of Decima's action space).
//
//pcaps:hotpath
func (d *Decima) Distribution(c *sim.Cluster) ([]sim.StageRef, []float64) {
	all := c.Runnable()
	runnable := d.refs[:0]
	for _, r := range all {
		if r.Stage.Running < d.PlannedLimit(c, r) {
			runnable = append(runnable, r)
		}
	}
	d.refs = runnable
	if len(runnable) == 0 {
		return nil, nil
	}
	cpW, srptW, temp := d.CPWeight, d.SRPTWeight, d.Temperature
	if cpW == 0 && srptW == 0 {
		cpW, srptW = 3, 4
	}
	if temp <= 0 {
		temp = 1
	}
	// Normalizers across the runnable set. The view is job-major, so
	// per-job remaining work is computed once per group boundary and
	// recorded per ref (d.jobRemain parallels runnable).
	maxRemain := 0.0
	d.jobRemain = d.jobRemain[:0]
	var lastJob *sim.JobRun
	var lastRemain float64
	for _, r := range runnable {
		if r.Job != lastJob {
			lastJob = r.Job
			lastRemain = r.Job.RemainingWork()
			if lastRemain > maxRemain {
				maxRemain = lastRemain
			}
		}
		d.jobRemain = append(d.jobRemain, lastRemain)
	}
	if cap(d.scores) < len(runnable) {
		//hot:alloc one-time scratch growth to the runnable high-water mark
		d.scores = make([]float64, len(runnable))
	}
	scores := d.scores[:len(runnable)]
	maxScore := math.Inf(-1)
	for i, r := range runnable {
		cp := d.cp.get(r.Job)
		jobRemain := d.jobRemain[i]
		cpNorm := 0.0
		if jobRemain > 0 {
			cpNorm = cp[r.Stage.Stage.ID] / jobRemain
			if cpNorm > 1 {
				cpNorm = 1
			}
		}
		srptNorm := 0.0
		if maxRemain > 0 {
			srptNorm = jobRemain / maxRemain
		}
		scores[i] = (cpW*cpNorm - srptW*srptNorm) / temp
		if scores[i] > maxScore {
			maxScore = scores[i]
		}
	}
	// Masked softmax (runnable stages only), stabilized by max-shift.
	if cap(d.probs) < len(scores) {
		//hot:alloc one-time scratch growth to the runnable high-water mark
		d.probs = make([]float64, len(scores))
	}
	probs := d.probs[:len(scores)]
	var sum float64
	for i, s := range scores {
		probs[i] = math.Exp(s - maxScore)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	return runnable, probs
}

// GrantDivisor tunes the work-derived per-job executor cap used by the
// carbon-agnostic managed schedulers: a job with w executor-seconds of
// remaining work is granted about w/GrantDivisor executors. This encodes
// the diminishing returns of parallelism that Decima's learned policy
// discovers ([48] §5.2: "more executors are not necessarily better") —
// modest per-job parallelism keeps executors productive instead of idling
// at stage barriers, which is where Decima's carbon advantage over the
// over-granting FIFO comes from (Table 3).
const GrantDivisor = 40

// workDerivedCap returns the per-job grant cap for a job with the given
// remaining work, bounded by an even cluster split across active jobs.
//
//pcaps:hotpath
func workDerivedCap(c *sim.Cluster, remaining float64) int {
	active := len(c.ActiveJobs())
	if active < 1 {
		active = 1
	}
	share := (c.K() + active - 1) / active
	cap := int(math.Ceil(remaining / GrantDivisor))
	if cap > share {
		cap = share
	}
	if cap < 1 {
		cap = 1
	}
	return cap
}

// PlannedLimit implements Probabilistic: the stage may use up to its
// remaining tasks, capped by the job's work-derived executor grant — the
// executor-cap component of Decima's action space ([48] §5.2) that
// prevents one job from hogging (and idling) cluster resources.
//
//pcaps:hotpath
func (d *Decima) PlannedLimit(c *sim.Cluster, ref sim.StageRef) int {
	limit := ref.Stage.RemainingTasks() + ref.Stage.Running
	if cap := workDerivedCap(c, ref.Job.RemainingWork()); limit > cap {
		limit = cap
	}
	if limit < 1 {
		limit = 1
	}
	return limit
}

// Sample draws an index from the probability vector.
//
//pcaps:hotpath
func (d *Decima) Sample(probs []float64) int {
	if d.rng == nil {
		d.rng = rand.New(rand.NewSource(d.Seed))
	}
	x := d.rng.Float64()
	var cum float64
	for i, p := range probs {
		cum += p
		if x < cum {
			return i
		}
	}
	return len(probs) - 1
}

// Pick implements sim.Scheduler: sample a stage from the distribution and
// schedule it with the planned limit (carbon-agnostic behaviour).
//
//pcaps:hotpath
func (d *Decima) Pick(c *sim.Cluster) sim.Decision {
	refs, probs := d.Distribution(c)
	if len(refs) == 0 {
		return sim.DeferDecision
	}
	v := d.Sample(probs)
	return sim.Decision{Ref: refs[v], Limit: d.PlannedLimit(c, refs[v])}
}

// UniformPB is the simplest member of the Def. 4.1 class: a uniform
// distribution over runnable stages. It exists to demonstrate (and test)
// that PCAPS interoperates with any probabilistic scheduler, not just
// the Decima-like one — under UniformPB every stage has relative
// importance 1, so PCAPS degenerates to pure carbon-aware provisioning.
type UniformPB struct {
	// Seed drives sampling.
	Seed int64
	rng  *rand.Rand
	// probs is per-call scratch; Distribution's results are valid only
	// until its next call.
	probs []float64
}

// Name implements sim.Scheduler.
func (u *UniformPB) Name() string { return "UniformPB" }

// Distribution implements Probabilistic with equal mass per runnable
// stage.
//
//pcaps:hotpath
func (u *UniformPB) Distribution(c *sim.Cluster) ([]sim.StageRef, []float64) {
	runnable := c.Runnable()
	if len(runnable) == 0 {
		return nil, nil
	}
	if cap(u.probs) < len(runnable) {
		//hot:alloc one-time scratch growth to the runnable high-water mark
		u.probs = make([]float64, len(runnable))
	}
	probs := u.probs[:len(runnable)]
	for i := range probs {
		probs[i] = 1 / float64(len(runnable))
	}
	return runnable, probs
}

// PlannedLimit implements Probabilistic: up to the stage's remaining
// tasks.
//
//pcaps:hotpath
func (u *UniformPB) PlannedLimit(c *sim.Cluster, ref sim.StageRef) int {
	if n := ref.Stage.RemainingTasks() + ref.Stage.Running; n > 0 {
		return n
	}
	return 1
}

// Pick implements sim.Scheduler.
//
//pcaps:hotpath
func (u *UniformPB) Pick(c *sim.Cluster) sim.Decision {
	refs, probs := u.Distribution(c)
	if len(refs) == 0 {
		return sim.DeferDecision
	}
	if u.rng == nil {
		u.rng = rand.New(rand.NewSource(u.Seed))
	}
	v := sampleIndex(u.rng, probs)
	return sim.Decision{Ref: refs[v], Limit: u.PlannedLimit(c, refs[v])}
}

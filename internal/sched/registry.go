package sched

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"pcaps/internal/sim"
)

// Defaults applied when a spec omits a policy parameter; the paper's
// mid-range settings (CAP B=20 as in Figs. 10/14, PCAPS γ=0.5). They
// live here, next to the registry, so every consumer — scenario specs,
// the placement service, direct API use — resolves the same values.
const (
	DefaultCAPB       = 20
	DefaultPCAPSGamma = 0.5
)

// Int returns a pointer to v, for Spec literals.
func Int(v int) *int { return &v }

// Float returns a pointer to v, for Spec literals.
func Float(v float64) *float64 { return &v }

// Spec names one policy and its typed parameters, in the shape shared by
// scenario documents and the placement API. B and Gamma are pointers so
// that "unset" (nil: take the registry default) is distinguishable from
// an explicit zero, which is rejected rather than silently rebound to
// the default.
type Spec struct {
	// Kind names the registered policy.
	Kind string `json:"kind"`
	// B is CAP's minimum machine quota, at least 1 (nil: DefaultCAPB).
	B *int `json:"b,omitempty"`
	// Gamma is PCAPS's carbon-awareness knob in (0, 1]
	// (nil: DefaultPCAPSGamma).
	Gamma *float64 `json:"gamma,omitempty"`
	// Inner is the policy a wrapper kind wraps: any registered kind for
	// cap (default fifo), a probabilistic kind for pcaps (default
	// decima). Non-wrapper kinds take none.
	Inner *Spec `json:"inner,omitempty"`
}

// Factory builds one fresh scheduler per run, seeded with the run's
// seed — scheduler instances carry per-run scratch and sampling state
// and must never be shared across concurrent runs.
type Factory func(seed int64) sim.Scheduler

// ParamError reports a Spec the registry rejected, naming the offending
// field by its JSON path relative to the spec ("kind", "b",
// "inner.kind", ...). Callers embedding specs in larger documents
// prepend their own prefix to Field.
type ParamError struct {
	Field string
	Msg   string
}

// Error implements error.
func (e *ParamError) Error() string { return e.Field + ": " + e.Msg }

// WrapKind declares how a registered policy consumes Spec.Inner.
type WrapKind int

const (
	// WrapsNone rejects any inner policy.
	WrapsNone WrapKind = iota
	// WrapsAny accepts any registered kind as the inner policy (CAP
	// gates an arbitrary carbon-agnostic scheduler).
	WrapsAny
	// WrapsProbabilistic accepts only kinds registered with a
	// Probabilistic constructor, and only their kind — parameters on
	// the inner spec are rejected (PCAPS interfaces with the Def. 4.1
	// class).
	WrapsProbabilistic
)

// Resolved carries a Spec's validated, default-applied parameters into
// an Entry's constructor.
type Resolved struct {
	// Seed is the run seed the factory was invoked with.
	Seed int64
	// B and Gamma hold the typed parameters for kinds that take them
	// (defaults already applied); zero otherwise.
	B     int
	Gamma float64
	// Inner is the compiled inner-policy factory (WrapsAny kinds).
	Inner Factory
	// Prob builds the inner probabilistic policy (WrapsProbabilistic
	// kinds).
	Prob func(seed int64) Probabilistic
}

// Entry describes one registered policy kind.
type Entry struct {
	// New constructs a fresh scheduler from resolved parameters.
	New func(p Resolved) sim.Scheduler
	// Probabilistic, when non-nil, marks the kind as a member of the
	// Def. 4.1 class PCAPS can wrap, and constructs that form.
	Probabilistic func(seed int64) Probabilistic
	// TakesB / TakesGamma admit the corresponding typed parameter.
	TakesB, TakesGamma bool
	// Wraps declares the inner-policy wiring.
	Wraps WrapKind
	// InnerDefault is the inner kind assumed when a wrapper spec omits
	// one.
	InnerDefault string
}

// Registry maps policy kinds to scheduler factories — the single table
// behind scenario policy compilation and the placement service. A
// Registry is immutable after construction (Register during setup,
// lookups afterwards), which is what makes the shared Default instance
// safe for concurrent use.
type Registry struct {
	entries map[string]Entry
	kinds   []string // registration order, for error messages and Kinds
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{entries: map[string]Entry{}} }

// Register adds one policy kind. Registration is setup-time wiring, so
// an empty kind, a nil constructor, or a duplicate is a programming
// error and panics.
func (r *Registry) Register(kind string, e Entry) {
	if kind == "" || e.New == nil {
		panic("sched: Register needs a kind and a constructor")
	}
	if _, dup := r.entries[kind]; dup {
		panic(fmt.Sprintf("sched: policy kind %q registered twice", kind))
	}
	r.entries[kind] = e
	r.kinds = append(r.kinds, kind)
}

// Kinds returns every registered kind in registration order.
func (r *Registry) Kinds() []string { return append([]string(nil), r.kinds...) }

// ProbabilisticKinds returns the kinds PCAPS-style wrappers may wrap,
// in registration order.
func (r *Registry) ProbabilisticKinds() []string {
	var out []string
	for _, k := range r.kinds {
		if r.entries[k].Probabilistic != nil {
			out = append(out, k)
		}
	}
	return out
}

// SweepParam returns the JSON name of the kind's sweepable numeric
// parameter ("b" or "gamma"), or "" when the kind has none.
func (r *Registry) SweepParam(kind string) string {
	e, ok := r.entries[kind]
	switch {
	case !ok:
		return ""
	case e.TakesB:
		return "b"
	case e.TakesGamma:
		return "gamma"
	}
	return ""
}

// Sweepable returns the kinds with a sweepable parameter, in
// registration order.
func (r *Registry) Sweepable() []string {
	var out []string
	for _, k := range r.kinds {
		if r.SweepParam(k) != "" {
			out = append(out, k)
		}
	}
	return out
}

// Bind returns a copy of the spec with the kind's sweepable parameter
// set to value (truncated to an integer for "b"). Specs whose kind has
// no sweepable parameter are returned unchanged.
func (r *Registry) Bind(s Spec, value float64) Spec {
	switch r.SweepParam(s.Kind) {
	case "b":
		s.B = Int(int(value))
	case "gamma":
		s.Gamma = Float(value)
	}
	return s
}

// Check validates a spec without building anything. The returned error
// is a *ParamError naming the offending field.
func (r *Registry) Check(s Spec) error {
	_, err := r.New(s)
	return err
}

// New compiles a spec into a scheduler factory, applying the registry
// defaults to omitted parameters. Invalid specs return a *ParamError.
func (r *Registry) New(s Spec) (Factory, error) {
	e, err := r.lookup(s.Kind)
	if err != nil {
		return nil, err
	}
	var b int
	if s.B != nil {
		if !e.TakesB {
			return nil, &ParamError{"b", fmt.Sprintf("policy kind %q takes no CAP quota", s.Kind)}
		}
		if *s.B < 1 {
			// An explicit zero is not "take the default": omitting b
			// selects DefaultCAPB, writing 0 is an error.
			return nil, &ParamError{"b", fmt.Sprintf("CAP quota %d below 1 (omit b for the default %d)", *s.B, DefaultCAPB)}
		}
		b = *s.B
	} else if e.TakesB {
		b = DefaultCAPB
	}
	var gamma float64
	if s.Gamma != nil {
		if !e.TakesGamma {
			return nil, &ParamError{"gamma", fmt.Sprintf("policy kind %q takes no gamma", s.Kind)}
		}
		if *s.Gamma <= 0 || *s.Gamma > 1 {
			// γ=0 would be indistinguishable from "unset" under a plain
			// float; with the pointer it is representable and rejected.
			return nil, &ParamError{"gamma", fmt.Sprintf("gamma %v outside (0, 1] (omit gamma for the default %v)", *s.Gamma, DefaultPCAPSGamma)}
		}
		gamma = *s.Gamma
	} else if e.TakesGamma {
		gamma = DefaultPCAPSGamma
	}
	p := Resolved{B: b, Gamma: gamma}
	switch e.Wraps {
	case WrapsNone:
		if s.Inner != nil {
			return nil, &ParamError{"inner", fmt.Sprintf("policy kind %q takes no inner policy", s.Kind)}
		}
	case WrapsAny:
		innerSpec := Spec{Kind: e.InnerDefault}
		if s.Inner != nil {
			innerSpec = *s.Inner
		}
		inner, err := r.New(innerSpec)
		if err != nil {
			return nil, prefixField(err, "inner")
		}
		p.Inner = inner
	case WrapsProbabilistic:
		kind := e.InnerDefault
		if s.Inner != nil {
			kind = s.Inner.Kind
			// Only the inner kind is consumed; any other knob on it
			// would be silently dropped.
			if s.Inner.B != nil || s.Inner.Gamma != nil || s.Inner.Inner != nil {
				return nil, &ParamError{"inner", fmt.Sprintf("a %s inner policy takes only a kind", s.Kind)}
			}
		}
		ie, ok := r.entries[kind]
		if !ok || ie.Probabilistic == nil {
			return nil, &ParamError{"inner.kind", fmt.Sprintf("%s wraps a probabilistic policy (have %s), got %q",
				s.Kind, strings.Join(r.ProbabilisticKinds(), ", "), kind)}
		}
		p.Prob = ie.Probabilistic
	}
	build := e.New
	return func(seed int64) sim.Scheduler {
		p := p
		p.Seed = seed
		return build(p)
	}, nil
}

func (r *Registry) lookup(kind string) (Entry, error) {
	if kind == "" {
		return Entry{}, &ParamError{"kind", fmt.Sprintf("missing policy kind (have %s)", strings.Join(r.kinds, ", "))}
	}
	e, ok := r.entries[kind]
	if !ok {
		return Entry{}, &ParamError{"kind", fmt.Sprintf("unknown policy kind %q (have %s)", kind, strings.Join(r.kinds, ", "))}
	}
	return e, nil
}

// prefixField relocates a nested ParamError under the given field.
func prefixField(err error, field string) error {
	var pe *ParamError
	if errors.As(err, &pe) {
		return &ParamError{Field: field + "." + pe.Field, Msg: pe.Msg}
	}
	return err
}

var defaultRegistry struct {
	once sync.Once
	r    *Registry
}

// Default returns the shared registry of the paper's eight policies
// (§6.1): fifo, kube-default, weighted-fair, decima, uniformpb,
// greenhadoop, cap, pcaps. The instance is built once and never
// mutated, so concurrent New/Check calls need no locking.
func Default() *Registry {
	defaultRegistry.once.Do(func() {
		r := NewRegistry()
		r.Register("fifo", Entry{
			New: func(Resolved) sim.Scheduler { return &FIFO{} },
		})
		r.Register("kube-default", Entry{
			New: func(Resolved) sim.Scheduler { return NewKubeDefault() },
		})
		r.Register("weighted-fair", Entry{
			New: func(Resolved) sim.Scheduler { return &WeightedFair{} },
		})
		r.Register("decima", Entry{
			New:           func(p Resolved) sim.Scheduler { return NewDecima(p.Seed) },
			Probabilistic: func(seed int64) Probabilistic { return NewDecima(seed) },
		})
		// UniformPB deliberately ignores the seed, preserving the
		// historical scenario wiring (and its golden artifacts): the
		// uniform distribution's sampling order is immaterial to the
		// aggregate metrics the artifacts report.
		r.Register("uniformpb", Entry{
			New:           func(Resolved) sim.Scheduler { return &UniformPB{} },
			Probabilistic: func(int64) Probabilistic { return &UniformPB{} },
		})
		r.Register("greenhadoop", Entry{
			New: func(Resolved) sim.Scheduler { return NewGreenHadoop() },
		})
		r.Register("cap", Entry{
			New:          func(p Resolved) sim.Scheduler { return NewCAP(p.Inner(p.Seed), p.B) },
			TakesB:       true,
			Wraps:        WrapsAny,
			InnerDefault: "fifo",
		})
		r.Register("pcaps", Entry{
			New:          func(p Resolved) sim.Scheduler { return NewPCAPS(p.Prob(p.Seed), p.Gamma, p.Seed) },
			TakesGamma:   true,
			Wraps:        WrapsProbabilistic,
			InnerDefault: "decima",
		})
		defaultRegistry.r = r
	})
	return defaultRegistry.r
}

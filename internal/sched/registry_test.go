package sched

import (
	"encoding/json"
	"strings"
	"testing"

	"pcaps/internal/sim"
)

func TestDefaultRegistryKinds(t *testing.T) {
	want := []string{"fifo", "kube-default", "weighted-fair", "decima", "uniformpb", "greenhadoop", "cap", "pcaps"}
	got := Default().Kinds()
	if len(got) != len(want) {
		t.Fatalf("Kinds() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Kinds()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if got := Default().ProbabilisticKinds(); len(got) != 2 || got[0] != "decima" || got[1] != "uniformpb" {
		t.Fatalf("ProbabilisticKinds() = %v, want [decima uniformpb]", got)
	}
	if got := Default().Sweepable(); len(got) != 2 || got[0] != "cap" || got[1] != "pcaps" {
		t.Fatalf("Sweepable() = %v, want [cap pcaps]", got)
	}
}

func TestRegistryBuildsEveryKind(t *testing.T) {
	r := Default()
	wantName := map[string]string{
		"fifo":          "FIFO",
		"kube-default":  "default",
		"weighted-fair": "WeightedFair",
		"decima":        "Decima",
		"uniformpb":     "UniformPB",
		"greenhadoop":   "GreenHadoop",
		"cap":           "CAP-FIFO",
		"pcaps":         "PCAPS",
	}
	for _, kind := range r.Kinds() {
		f, err := r.New(Spec{Kind: kind})
		if err != nil {
			t.Fatalf("New(%q): %v", kind, err)
		}
		s := f(1)
		if s == nil {
			t.Fatalf("New(%q) factory returned nil scheduler", kind)
		}
		if want, ok := wantName[kind]; ok && s.Name() != want {
			t.Errorf("New(%q).Name() = %q, want %q", kind, s.Name(), want)
		}
	}
}

func TestRegistryRejects(t *testing.T) {
	cases := []struct {
		name  string
		spec  Spec
		field string
		msg   string
	}{
		{"empty kind", Spec{}, "kind", "missing policy kind"},
		{"unknown kind", Spec{Kind: "srpt"}, "kind", `unknown policy kind "srpt"`},
		{"b on fifo", Spec{Kind: "fifo", B: Int(3)}, "b", "takes no CAP quota"},
		{"gamma on cap", Spec{Kind: "cap", Gamma: Float(0.5)}, "gamma", "takes no gamma"},
		// The explicit-zero ambiguity: 0 must be an error, never a
		// silent rebind to the default.
		{"zero b", Spec{Kind: "cap", B: Int(0)}, "b", "CAP quota 0 below 1"},
		{"negative b", Spec{Kind: "cap", B: Int(-4)}, "b", "CAP quota -4 below 1"},
		{"zero gamma", Spec{Kind: "pcaps", Gamma: Float(0)}, "gamma", "gamma 0 outside (0, 1]"},
		{"gamma above one", Spec{Kind: "pcaps", Gamma: Float(1.5)}, "gamma", "gamma 1.5 outside (0, 1]"},
		{"inner on plain kind", Spec{Kind: "decima", Inner: &Spec{Kind: "fifo"}}, "inner", "takes no inner policy"},
		{"bad cap inner", Spec{Kind: "cap", Inner: &Spec{Kind: "nope"}}, "inner.kind", `unknown policy kind "nope"`},
		{"nested cap inner b", Spec{Kind: "cap", Inner: &Spec{Kind: "cap", B: Int(0)}}, "inner.b", "below 1"},
		{"non-prob pcaps inner", Spec{Kind: "pcaps", Inner: &Spec{Kind: "fifo"}}, "inner.kind", "wraps a probabilistic policy"},
		{"pcaps inner with params", Spec{Kind: "pcaps", Inner: &Spec{Kind: "decima", Gamma: Float(0.5)}}, "inner", "takes only a kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Default().Check(tc.spec)
			if err == nil {
				t.Fatalf("Check(%+v) accepted, want rejection on %s", tc.spec, tc.field)
			}
			pe, ok := err.(*ParamError)
			if !ok {
				t.Fatalf("Check(%+v) = %T (%v), want *ParamError", tc.spec, err, err)
			}
			if pe.Field != tc.field {
				t.Errorf("field = %q, want %q (err: %v)", pe.Field, tc.field, err)
			}
			if !strings.Contains(pe.Msg, tc.msg) {
				t.Errorf("msg = %q, want substring %q", pe.Msg, tc.msg)
			}
		})
	}
}

func TestRegistryDefaultsAndOverrides(t *testing.T) {
	r := Default()
	cases := []struct {
		spec Spec
		name string
		b    int
	}{
		{Spec{Kind: "cap", B: Int(5)}, "CAP-FIFO", 5},
		{Spec{Kind: "cap"}, "CAP-FIFO", DefaultCAPB},
		{Spec{Kind: "cap", Inner: &Spec{Kind: "decima"}}, "CAP-Decima", DefaultCAPB},
		{Spec{Kind: "cap", B: Int(1), Inner: &Spec{Kind: "pcaps", Gamma: Float(0.9)}}, "CAP-PCAPS", 1},
		{Spec{Kind: "pcaps", Gamma: Float(1)}, "PCAPS", 0},
		{Spec{Kind: "pcaps", Inner: &Spec{Kind: "uniformpb"}}, "PCAPS", 0},
	}
	for _, tc := range cases {
		f, err := r.New(tc.spec)
		if err != nil {
			t.Fatalf("New(%+v): %v", tc.spec, err)
		}
		s := f(7)
		if got := s.Name(); got != tc.name {
			t.Errorf("New(%+v).Name() = %q, want %q", tc.spec, got, tc.name)
		}
		if cap, ok := s.(*CAPWrap); ok && cap.B != tc.b {
			t.Errorf("New(%+v).B = %d, want %d", tc.spec, cap.B, tc.b)
		}
	}
}

func TestRegistryBind(t *testing.T) {
	r := Default()
	b := r.Bind(Spec{Kind: "cap"}, 12.9)
	if b.B == nil || *b.B != 12 {
		t.Errorf("Bind(cap, 12.9).B = %v, want 12", b.B)
	}
	g := r.Bind(Spec{Kind: "pcaps"}, 0.25)
	if g.Gamma == nil || *g.Gamma != 0.25 {
		t.Errorf("Bind(pcaps, 0.25).Gamma = %v, want 0.25", g.Gamma)
	}
	if p := r.Bind(Spec{Kind: "fifo"}, 3); p.B != nil || p.Gamma != nil {
		t.Errorf("Bind(fifo, 3) mutated a parameterless spec: %+v", p)
	}
}

// TestSpecJSONRoundTrip pins the wire shape the placement API accepts:
// pointers must encode as plain numbers and omit cleanly when nil.
func TestSpecJSONRoundTrip(t *testing.T) {
	in := Spec{Kind: "cap", B: Int(10), Inner: &Spec{Kind: "pcaps", Gamma: Float(0.9)}}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"cap","b":10,"inner":{"kind":"pcaps","gamma":0.9}}`
	if string(raw) != want {
		t.Fatalf("Marshal = %s, want %s", raw, want)
	}
	var out Spec
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != "cap" || out.B == nil || *out.B != 10 ||
		out.Inner == nil || out.Inner.Gamma == nil || *out.Inner.Gamma != 0.9 {
		t.Fatalf("round-trip lost fields: %+v", out)
	}
	if bare, _ := json.Marshal(Spec{Kind: "fifo"}); string(bare) != `{"kind":"fifo"}` {
		t.Fatalf("Marshal(fifo) = %s, want bare kind", bare)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	fifo := Entry{New: func(Resolved) sim.Scheduler { return &FIFO{} }}
	mustPanic("empty kind", func() { NewRegistry().Register("", fifo) })
	mustPanic("nil constructor", func() { NewRegistry().Register("x", Entry{}) })
	mustPanic("duplicate kind", func() {
		r := NewRegistry()
		r.Register("x", fifo)
		r.Register("x", fifo)
	})
}

package sched

import (
	"math"
	"testing"

	"pcaps/internal/carbon"
	"pcaps/internal/dag"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

// deTrace returns a DE-grid synthetic trace (high variability, the grid
// the paper uses for its sweeps).
func deTrace(t testing.TB) *carbon.Trace {
	t.Helper()
	spec, err := carbon.GridByName("DE")
	if err != nil {
		t.Fatal(err)
	}
	return carbon.Synthesize(spec, 2000, 60, 17)
}

func tpchBatch(t testing.TB, n int, seed int64) []*dag.Job {
	t.Helper()
	return workload.Batch(workload.BatchConfig{N: n, MeanInterarrival: 30, Mix: workload.MixTPCH, Seed: seed})
}

func runWith(t testing.TB, s sim.Scheduler, jobs []*dag.Job, tr *carbon.Trace, k int) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{NumExecutors: k, Trace: tr, MoveDelay: 1, Seed: 1}, jobs, s)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	return res
}

// runHold runs in the evaluation regime: executor holding with Spark's
// 60 s idle timeout (Appendix A.1.2 semantics).
func runHold(t testing.TB, s sim.Scheduler, jobs []*dag.Job, tr *carbon.Trace, k int) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{NumExecutors: k, Trace: tr, MoveDelay: 1, Seed: 1,
		HoldExecutors: true, IdleTimeout: 60}, jobs, s)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	return res
}

func TestFIFOPicksEarliestJob(t *testing.T) {
	tr := deTrace(t)
	jobs := tpchBatch(t, 5, 3)
	res := runWith(t, &FIFO{}, jobs, tr, 10)
	if res.ECT <= 0 || res.AvgJCT <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestFIFONames(t *testing.T) {
	if (&FIFO{}).Name() != "FIFO" {
		t.Fatal("FIFO name")
	}
	if NewKubeDefault().Name() != "default" {
		t.Fatal("default name")
	}
}

func TestDecimaDistributionIsValid(t *testing.T) {
	tr := deTrace(t)
	jobs := tpchBatch(t, 8, 4)
	d := NewDecima(1)
	probe := &distProbe{t: t, inner: d}
	if _, err := sim.Run(sim.Config{NumExecutors: 10, Trace: tr, Seed: 1}, jobs, probe); err != nil {
		t.Fatal(err)
	}
	if probe.checks == 0 {
		t.Fatal("distribution never probed")
	}
}

// distProbe validates Decima's distribution at every Pick, then delegates.
type distProbe struct {
	t      *testing.T
	inner  *Decima
	checks int
}

func (p *distProbe) Name() string { return "probe" }
func (p *distProbe) Pick(c *sim.Cluster) sim.Decision {
	refs, probs := p.inner.Distribution(c)
	if len(refs) != len(probs) {
		p.t.Fatalf("refs/probs length mismatch: %d vs %d", len(refs), len(probs))
	}
	if len(probs) > 0 {
		var sum float64
		for _, pr := range probs {
			if pr < 0 || math.IsNaN(pr) {
				p.t.Fatalf("bad probability %v", pr)
			}
			sum += pr
		}
		if math.Abs(sum-1) > 1e-9 {
			p.t.Fatalf("probabilities sum to %v", sum)
		}
		p.checks++
	}
	return p.inner.Pick(c)
}

func TestDecimaBeatsFIFOOnJCT(t *testing.T) {
	// The headline carbon-agnostic ordering of Table 3: Decima's average
	// JCT is well below standalone FIFO's, because FIFO over-assigns
	// executors to the head-of-line job and blocks the queue.
	tr := deTrace(t)
	jobs := tpchBatch(t, 40, 7)
	fifo := runWith(t, &FIFO{}, jobs, tr, 20)
	dec := runWith(t, NewDecima(2), jobs, tr, 20)
	if dec.AvgJCT >= fifo.AvgJCT {
		t.Fatalf("Decima JCT %v not better than FIFO %v", dec.AvgJCT, fifo.AvgJCT)
	}
}

func TestWeightedFairCarbonBelowFIFOInHoldMode(t *testing.T) {
	// Table 3: Weighted Fair saves carbon relative to standalone FIFO
	// because its work-derived grants idle far fewer held executors.
	tr := deTrace(t)
	jobs := tpchBatch(t, 40, 7)
	fifo := runHold(t, &FIFO{}, jobs, tr, 100)
	wf := runHold(t, &WeightedFair{}, jobs, tr, 100)
	if wf.CarbonGrams >= fifo.CarbonGrams {
		t.Fatalf("WeightedFair carbon %v not below FIFO %v", wf.CarbonGrams, fifo.CarbonGrams)
	}
	if wf.ECT > 1.2*fifo.ECT {
		t.Fatalf("WeightedFair ECT blew up: %v vs %v", wf.ECT, fifo.ECT)
	}
}

func TestPCAPSGammaZeroMatchesDecimaClosely(t *testing.T) {
	// γ = 0 admits every stage (Ψ₀ ≡ U ≥ c), so PCAPS degenerates to its
	// inner scheduler up to sampling; with the same seeds the runs are
	// identical decision-for-decision.
	tr := deTrace(t)
	jobs := tpchBatch(t, 20, 9)
	dec := runWith(t, NewDecima(5), jobs, tr, 20)
	pc := runWith(t, NewPCAPS(NewDecima(5), 0, 5), jobs, tr, 20)
	if pc.Deferrals != 0 {
		t.Fatalf("γ=0 deferred %d times", pc.Deferrals)
	}
	if math.Abs(pc.ECT-dec.ECT) > 0.05*dec.ECT {
		t.Fatalf("γ=0 PCAPS ECT %v far from Decima %v", pc.ECT, dec.ECT)
	}
}

func TestPCAPSReducesCarbon(t *testing.T) {
	// The headline result (Tables 2-3): moderate PCAPS reduces carbon
	// versus its carbon-agnostic inner scheduler, trading some ECT.
	tr := deTrace(t)
	jobs := tpchBatch(t, 40, 11)
	dec := runWith(t, NewDecima(3), jobs, tr, 20)
	pc := runWith(t, NewPCAPS(NewDecima(3), 0.5, 3), jobs, tr, 20)
	if pc.CarbonGrams >= dec.CarbonGrams {
		t.Fatalf("PCAPS carbon %v not below Decima %v", pc.CarbonGrams, dec.CarbonGrams)
	}
	if pc.Deferrals == 0 {
		t.Fatal("moderate PCAPS never deferred on a variable grid")
	}
	// The trade-off must be sane: ECT should not explode unboundedly.
	if pc.ECT > 5*dec.ECT {
		t.Fatalf("PCAPS ECT blew up: %v vs %v", pc.ECT, dec.ECT)
	}
}

func TestPCAPSCarbonMonotoneInGammaRoughly(t *testing.T) {
	// Figs 7/11: higher γ yields (weakly) more carbon savings. We allow
	// small non-monotonicity from sampling noise but require the
	// endpoints to be clearly ordered.
	tr := deTrace(t)
	jobs := tpchBatch(t, 30, 13)
	carbonAt := func(gamma float64) float64 {
		return runWith(t, NewPCAPS(NewDecima(3), gamma, 3), jobs, tr, 20).CarbonGrams
	}
	low, high := carbonAt(0.1), carbonAt(0.9)
	if high >= low {
		t.Fatalf("γ=0.9 carbon %v not below γ=0.1 carbon %v", high, low)
	}
}

func TestCAPReducesCarbonOnFIFO(t *testing.T) {
	tr := deTrace(t)
	jobs := tpchBatch(t, 40, 11)
	fifo := runWith(t, &FIFO{}, jobs, tr, 20)
	cap := NewCAP(&FIFO{}, 4) // B = K/5, the paper's moderate setting
	capRes := runWith(t, cap, jobs, tr, 20)
	if capRes.CarbonGrams >= fifo.CarbonGrams {
		t.Fatalf("CAP carbon %v not below FIFO %v", capRes.CarbonGrams, fifo.CarbonGrams)
	}
	if cap.MinQuotaSeen() < 4 || cap.MinQuotaSeen() > 20 {
		t.Fatalf("MinQuotaSeen = %d", cap.MinQuotaSeen())
	}
	if capRes.Scheduler != "CAP-FIFO" {
		t.Fatalf("name = %s", capRes.Scheduler)
	}
}

func TestCAPQuotaNeverExceededByNewAssignments(t *testing.T) {
	tr := deTrace(t)
	jobs := tpchBatch(t, 15, 21)
	inner := &FIFO{}
	cap := NewCAP(inner, 3)
	probe := &quotaProbe{t: t, cap: cap}
	if _, err := sim.Run(sim.Config{NumExecutors: 12, Trace: tr, Seed: 1}, jobs, probe); err != nil {
		t.Fatal(err)
	}
}

// quotaProbe checks that whenever CAP admits work, the busy count is
// below the quota it computed.
type quotaProbe struct {
	t   *testing.T
	cap *CAPWrap
}

func (p *quotaProbe) Name() string { return "quota-probe" }
func (p *quotaProbe) Pick(c *sim.Cluster) sim.Decision {
	d := p.cap.Pick(c)
	if !d.Defer && d.MaxNew > 0 {
		prov := p.cap.provisioner(c)
		quota := prov.Quota(c.Carbon())
		if c.BusyCount()+d.MaxNew > quota {
			p.t.Fatalf("CAP admitted %d new with %d busy against quota %d",
				d.MaxNew, c.BusyCount(), quota)
		}
	}
	return d
}

func TestCAPWorkConservingKeepsQuotaAndHelpsThroughput(t *testing.T) {
	// The WorkConserving redirect must change which stage a blocked pick
	// lands on, never how much work the quota admits: the quota invariant
	// of TestCAPQuotaNeverExceededByNewAssignments holds unchanged, and
	// on a batch where FIFO's head-of-line stage saturates its carbon-
	// scaled limit (Appendix A.1.2) the makespan strictly improves.
	tr := deTrace(t)
	jobs := tpchBatch(t, 15, 21)
	wc := NewCAP(&FIFO{}, 3)
	wc.WorkConserving = true
	probe := &quotaProbe{t: t, cap: wc}
	res, err := sim.Run(sim.Config{NumExecutors: 12, Trace: tr, Seed: 1}, jobs, probe)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sim.Run(sim.Config{NumExecutors: 12, Trace: tr, Seed: 1}, jobs, NewCAP(&FIFO{}, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.ECT >= plain.ECT {
		t.Fatalf("work-conserving ECT %v not below blocking ECT %v", res.ECT, plain.ECT)
	}
}

func TestPCAPSBetterTradeoffThanCAPDecima(t *testing.T) {
	// Fig 13's key claim: PCAPS exhibits a strictly better carbon-vs-ECT
	// trade-off than CAP over the same inner scheduler. We check it at
	// the evaluation regime (K=100, executor holding, DE grid): for each
	// CAP-Decima point, some PCAPS point saves at least as much carbon
	// with no more ECT (after a small noise allowance).
	tr := deTrace(t)
	jobs := tpchBatch(t, 40, 23)
	k := 100
	type pt struct{ carbon, ect float64 }
	var pcaps, capd []pt
	for _, g := range []float64{0.3, 0.5, 0.7, 0.9} {
		r := runHold(t, NewPCAPS(NewDecima(3), g, 3), jobs, tr, k)
		pcaps = append(pcaps, pt{r.CarbonGrams, r.ECT})
	}
	for _, b := range []int{2, 10, 20} {
		r := runHold(t, NewCAP(NewDecima(3), b), jobs, tr, k)
		capd = append(capd, pt{r.CarbonGrams, r.ECT})
	}
	for _, c := range capd {
		dominated := false
		for _, p := range pcaps {
			if p.carbon <= c.carbon*1.02 && p.ect <= c.ect*1.02 {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("CAP point (%.0f g, %.0f s) not dominated by any PCAPS point %v", c.carbon, c.ect, pcaps)
		}
	}
}

func TestGreenHadoopRunsAndSavesCarbon(t *testing.T) {
	tr := deTrace(t)
	jobs := tpchBatch(t, 30, 29)
	fifo := runWith(t, &FIFO{}, jobs, tr, 20)
	gh := runWith(t, NewGreenHadoop(), jobs, tr, 20)
	if gh.Scheduler != "GreenHadoop" {
		t.Fatalf("name = %s", gh.Scheduler)
	}
	if gh.CarbonGrams >= fifo.CarbonGrams {
		t.Fatalf("GreenHadoop carbon %v not below FIFO %v", gh.CarbonGrams, fifo.CarbonGrams)
	}
}

func TestGreenHadoopThetaZeroIsNearAgnostic(t *testing.T) {
	tr := deTrace(t)
	jobs := tpchBatch(t, 15, 31)
	fifo := runWith(t, &FIFO{}, jobs, tr, 10)
	gh := runWith(t, &GreenHadoop{Theta: 0}, jobs, tr, 10)
	// θ=0 uses the brown window: it must not inflate ECT dramatically.
	if gh.ECT > 1.5*fifo.ECT {
		t.Fatalf("θ=0 GreenHadoop ECT %v vs FIFO %v", gh.ECT, fifo.ECT)
	}
}

func TestFlatGridYieldsNoPCAPSDeferrals(t *testing.T) {
	// §3 condition i): when L = U the carbon-aware scheduler must match
	// the agnostic one (CSF → 1). On a flat trace Ψγ(r) ≥ c(t) always.
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = 400
	}
	tr, err := carbon.New("flat", 60, vals)
	if err != nil {
		t.Fatal(err)
	}
	jobs := tpchBatch(t, 15, 37)
	// Even maximally carbon-aware, the Ψ-filter admits everything on a
	// flat grid (Ψγ(r) ≥ L = U = c(t) for every r, since Ψγ(0) = γL +
	// (1−γ)U = U). Note PCAPS's *parallelism* term min{·, 1−γ} still
	// throttles by design (§5.1), so ECT equality is only expected for
	// small γ.
	pc := runWith(t, NewPCAPS(NewDecima(3), 0.9, 3), jobs, tr, 10)
	if pc.Deferrals != 0 {
		t.Fatalf("flat grid deferred %d times", pc.Deferrals)
	}
	dec := runWith(t, NewDecima(3), jobs, tr, 10)
	mild := runWith(t, NewPCAPS(NewDecima(3), 0.2, 3), jobs, tr, 10)
	if mild.Deferrals != 0 {
		t.Fatalf("mild flat grid deferred %d times", mild.Deferrals)
	}
	if mild.ECT > 1.4*dec.ECT {
		t.Fatalf("flat-grid mild PCAPS ECT %v far from Decima %v", mild.ECT, dec.ECT)
	}
}

func TestFlatGridCAPMatchesInner(t *testing.T) {
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = 400
	}
	tr, err := carbon.New("flat", 60, vals)
	if err != nil {
		t.Fatal(err)
	}
	jobs := tpchBatch(t, 15, 37)
	fifo := runWith(t, &FIFO{}, jobs, tr, 10)
	cap := runWith(t, NewCAP(&FIFO{}, 2), jobs, tr, 10)
	// At L=U, Quota(c<U)=K and Quota(U)=B; the trace sits exactly at U,
	// so CAP throttles to B... unless thresholds degenerate to U. Our
	// implementation treats L=U as carbon-agnostic except exactly at U,
	// where the floor applies. ECT may grow but must stay finite and
	// carbon must not increase.
	if cap.CarbonGrams > fifo.CarbonGrams*1.01 {
		t.Fatalf("CAP increased carbon on flat grid: %v vs %v", cap.CarbonGrams, fifo.CarbonGrams)
	}
}

func TestPCAPSAlwaysProgressesWhenClusterIdle(t *testing.T) {
	// Alg. 1 line 7's liveness override: with no machines busy, even a
	// maximally carbon-aware PCAPS must schedule something, so every job
	// completes on any trace.
	spec, err := carbon.GridByName("ZA")
	if err != nil {
		t.Fatal(err)
	}
	tr := carbon.Synthesize(spec, 3000, 60, 5)
	jobs := tpchBatch(t, 10, 41)
	res := runWith(t, NewPCAPS(NewDecima(7), 1.0, 7), jobs, tr, 8)
	if res.ECT <= 0 {
		t.Fatal("PCAPS γ=1 failed to finish")
	}
}

func TestWeightedFairAlibaba(t *testing.T) {
	tr := deTrace(t)
	jobs := workload.Batch(workload.BatchConfig{N: 12, Mix: workload.MixAlibaba, Seed: 43})
	res := runWith(t, &WeightedFair{}, jobs, tr, 15)
	if res.ECT <= 0 {
		t.Fatal("WeightedFair failed on Alibaba DAGs")
	}
}

func TestPCAPSUnderRealisticForecasts(t *testing.T) {
	// Swapping the paper's oracle (L, U) for a history-only persistence
	// forecast must preserve most of PCAPS's carbon savings — the
	// robustness premise of §3 ([13]). We compare both against the same
	// carbon-agnostic baseline.
	tr := deTrace(t)
	jobs := tpchBatch(t, 40, 7)
	k := 100
	mk := func(fc carbon.Forecaster, s sim.Scheduler) *sim.Result {
		res, err := sim.Run(sim.Config{NumExecutors: k, Trace: tr, MoveDelay: 1, Seed: 1,
			HoldExecutors: true, IdleTimeout: 60, Forecaster: fc}, jobs, s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		return res
	}
	base := mk(nil, NewDecima(3))
	oracle := mk(nil, NewPCAPS(NewDecima(3), 0.5, 3))
	forecast := mk(carbon.Persistence{Margin: 0.05}, NewPCAPS(NewDecima(3), 0.5, 3))
	oracleSave := base.CarbonGrams - oracle.CarbonGrams
	forecastSave := base.CarbonGrams - forecast.CarbonGrams
	if oracleSave <= 0 {
		t.Fatalf("oracle PCAPS saved nothing: %v vs %v", oracle.CarbonGrams, base.CarbonGrams)
	}
	if forecastSave < 0.5*oracleSave {
		t.Fatalf("persistence forecast kept only %v of %v oracle savings", forecastSave, oracleSave)
	}
	if forecast.ECT > 1.5*oracle.ECT {
		t.Fatalf("forecast ECT blew up: %v vs %v", forecast.ECT, oracle.ECT)
	}
}

func TestPCAPSOverUniformPB(t *testing.T) {
	// Def 4.1 generality: PCAPS must interoperate with any probabilistic
	// scheduler. Under a uniform distribution every stage has relative
	// importance 1, so the filter admits everything (Ψγ(1) = U ≥ c) and
	// zero deferrals occur — PCAPS reduces to its parallelism scaling.
	tr := deTrace(t)
	jobs := tpchBatch(t, 15, 3)
	res := runHold(t, NewPCAPS(&UniformPB{Seed: 1}, 0.5, 1), jobs, tr, 50)
	if res.Deferrals != 0 {
		t.Fatalf("uniform importance deferred %d times (all r=1)", res.Deferrals)
	}
	if res.ECT <= 0 {
		t.Fatal("run failed")
	}
	base := runHold(t, &UniformPB{Seed: 1}, jobs, tr, 50)
	if res.CarbonGrams >= base.CarbonGrams {
		t.Fatalf("parallelism scaling alone saved nothing: %v vs %v", res.CarbonGrams, base.CarbonGrams)
	}
}

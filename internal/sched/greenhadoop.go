package sched

import (
	"math"

	"pcaps/internal/sim"
)

// GreenHadoop is the adaptation of GreenHadoop [24] described in Appendix
// A.1.1. It derives a "green window" (how long until carbon-free capacity
// alone covers the outstanding work) and a "brown window" (how long at
// full capacity), blends them with the carbon-awareness knob θ, and at
// each scheduling event permits enough executors to consume all currently
// green capacity plus the uniform brown rate needed to finish inside the
// blended window. Within that executor budget, stages dispatch FIFO.
type GreenHadoop struct {
	// Theta blends the windows: 0 is carbon-agnostic (brown window),
	// 1 fully carbon-aware (green window). Default 0.5 as in A.1.1.
	Theta float64
	// MaxLookahead bounds the green-window search in carbon intervals
	// (default 96, i.e. four days at hourly granularity).
	MaxLookahead int

	fifo FIFO
}

// NewGreenHadoop returns the baseline with the paper's default θ = 0.5.
func NewGreenHadoop() *GreenHadoop { return &GreenHadoop{Theta: 0.5} }

// Name implements sim.Scheduler.
func (g *GreenHadoop) Name() string { return "GreenHadoop" }

// executorBudget computes the number of executors permitted right now.
// OutstandingWork is an epoch-cached cluster view, so the repeated budget
// evaluations within one scheduling event cost one pass over the active
// jobs in total.
//
//pcaps:hotpath
func (g *GreenHadoop) executorBudget(c *sim.Cluster) int {
	theta := g.Theta
	if theta < 0 {
		theta = 0
	}
	if theta > 1 {
		theta = 1
	}
	look := g.MaxLookahead
	if look <= 0 {
		look = 96
	}
	k := float64(c.K())
	iv := c.CarbonInterval()
	outstanding := c.OutstandingWork() // executor-seconds

	// Brown window: intervals to finish at full capacity.
	brown := math.Ceil(outstanding / (k * iv))

	// Green window: intervals until cumulative green capacity covers the
	// outstanding work; capped at the lookahead horizon.
	var greenSupply float64
	green := float64(look)
	for i := 0; i < look; i++ {
		at := c.Now() + float64(i)*iv
		greenSupply += k * c.GreenFractionAt(at) * iv
		if greenSupply >= outstanding {
			green = float64(i + 1)
			break
		}
	}
	window := theta*green + (1-theta)*brown
	if window < 1 {
		window = 1
	}
	// Deadline-driven brown rate: the uniform number of executors that
	// finishes all outstanding work by the end of the blended window.
	// All currently available green capacity is used on top of it, so
	// solar hours run wide and dark hours still meet the deadline.
	brownRate := outstanding / (window * iv)
	budget := int(math.Ceil(k*c.GreenFraction() + brownRate))
	if budget < 1 {
		budget = 1 // continuous progress, like CAP's floor
	}
	if budget > c.K() {
		budget = c.K()
	}
	return budget
}

// Pick implements sim.Scheduler: FIFO dispatch inside the green/brown
// executor budget.
//
//pcaps:hotpath
func (g *GreenHadoop) Pick(c *sim.Cluster) sim.Decision {
	budget := g.executorBudget(c)
	headroom := budget - c.BusyCount()
	if headroom <= 0 {
		return sim.DeferDecision
	}
	d := g.fifo.Pick(c)
	if d.Defer {
		return d
	}
	d.MaxNew = headroom
	return d
}

package carbon

import (
	"math"
	"testing"
)

func TestOracleMatchesTraceBounds(t *testing.T) {
	spec, _ := GridByName("DE")
	tr := Synthesize(spec, 500, 60, 3)
	var o Oracle
	for _, from := range []float64{0, 600, 5000} {
		gotL, gotU := o.Bounds(tr, from, 48*60)
		wantL, wantU := tr.Bounds(from, 48*60)
		if gotL != wantL || gotU != wantU {
			t.Fatalf("oracle diverged at %v: %v/%v vs %v/%v", from, gotL, gotU, wantL, wantU)
		}
	}
}

func TestPersistenceUsesOnlyHistory(t *testing.T) {
	// A trace that is flat 300 for two days and spikes to 900 afterwards:
	// a history-only forecaster at the boundary cannot see the spike.
	vals := make([]float64, 96)
	for i := range vals {
		if i < 48 {
			vals[i] = 300
		} else {
			vals[i] = 900
		}
	}
	tr := mustTrace(t, vals...)
	p := Persistence{}
	lo, hi := p.Bounds(tr, 47*60, 48*60)
	if hi >= 900 {
		t.Fatalf("persistence saw the future: hi = %v", hi)
	}
	if lo > 300 || hi < 300 {
		t.Fatalf("persistence bounds [%v, %v] exclude the observed level", lo, hi)
	}
}

func TestPersistenceIncludesPresent(t *testing.T) {
	// The interval must always contain the current intensity, even when
	// history was lower.
	vals := append(make([]float64, 0, 50), 100, 100, 100, 100, 700)
	tr := mustTrace(t, vals...)
	p := Persistence{}
	lo, hi := p.Bounds(tr, 4*60, 240)
	if hi < 700 || lo > 100 {
		t.Fatalf("bounds [%v, %v] must contain both history and present", lo, hi)
	}
}

func TestPersistenceColdStart(t *testing.T) {
	tr := mustTrace(t, 400, 500)
	p := Persistence{}
	lo, hi := p.Bounds(tr, 0, 120)
	if lo != 400 || hi != 400 {
		t.Fatalf("cold-start bounds = [%v, %v], want the current value", lo, hi)
	}
}

func TestPersistenceMargin(t *testing.T) {
	tr := mustTrace(t, 100, 200, 300, 400)
	tight := Persistence{}
	wide := Persistence{Margin: 0.1}
	lt, ht := tight.Bounds(tr, 180, 60)
	lw, hw := wide.Bounds(tr, 180, 60)
	if !(lw < lt && hw > ht) {
		t.Fatalf("margin did not widen: [%v,%v] vs [%v,%v]", lw, hw, lt, ht)
	}
}

func TestPersistenceAccurateOnDiurnalGrids(t *testing.T) {
	// On strongly diurnal synthetic grids, yesterday's extremes predict
	// today's well: mean endpoint error under 20%.
	for _, name := range []string{"DE", "CAISO"} {
		spec, _ := GridByName(name)
		tr := Synthesize(spec, 2000, 60, 11)
		errL, errU := ForecastError(tr, Persistence{}, 48*60)
		if errL > 0.25 || errU > 0.20 {
			t.Fatalf("%s persistence error too high: L %v, U %v", name, errL, errU)
		}
		// And the oracle is exact.
		oL, oU := ForecastError(tr, Oracle{}, 48*60)
		if oL != 0 || oU != 0 {
			t.Fatalf("oracle error nonzero: %v, %v", oL, oU)
		}
	}
}

func TestForecastErrorEmptyWindow(t *testing.T) {
	tr := mustTrace(t, 100, 200)
	if l, u := ForecastError(tr, Oracle{}, 1e9); l != 0 || u != 0 {
		t.Fatalf("oversized horizon error = %v, %v", l, u)
	}
	_ = math.Pi // keep math import if assertions above churn
}

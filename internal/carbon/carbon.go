// Package carbon provides the time-varying carbon-intensity substrate the
// paper's schedulers consume: trace storage and lookup, short-term forecast
// bounds (the L and U of §2.1), grid statistics (Table 1), a green/brown
// decomposition for the GreenHadoop baseline, and synthetic generators
// calibrated to the six power grids of §6.1 (PJM, CAISO, ON, DE, NSW, ZA).
//
// Real deployments would read Electricity Maps or WattTime; this package is
// the substitution documented in DESIGN.md: schedulers only observe c(t)
// and the forecast bounds, so statistically calibrated synthetic traces
// preserve the decision problem. CSV loading is provided for real traces.
package carbon

import (
	"errors"
	"fmt"
	"math"
)

// Trace is a piecewise-constant carbon-intensity signal in gCO2eq/kWh.
// The value Values[i] holds on experiment time [i·Interval, (i+1)·Interval).
// The zero value is unusable; construct with New or a generator.
type Trace struct {
	// Grid names the power grid ("DE", "CAISO", ...).
	Grid string
	// Interval is the duration in experiment seconds covered by one
	// sample. The paper reports hourly data and scales one hour of grid
	// time to one minute of real time, so experiments use Interval = 60.
	Interval float64
	// Values are the carbon intensities, one per interval.
	Values []float64
}

// ErrEmptyTrace is returned when constructing or loading a trace with no samples.
var ErrEmptyTrace = errors.New("carbon: trace has no samples")

// New constructs a validated trace.
func New(grid string, interval float64, values []float64) (*Trace, error) {
	if len(values) == 0 {
		return nil, ErrEmptyTrace
	}
	if interval <= 0 {
		return nil, fmt.Errorf("carbon: non-positive interval %v", interval)
	}
	for i, v := range values {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("carbon: bad intensity %v at index %d", v, i)
		}
	}
	return &Trace{Grid: grid, Interval: interval, Values: values}, nil
}

// Duration returns the total experiment time covered by the trace.
func (t *Trace) Duration() float64 { return float64(len(t.Values)) * t.Interval }

// Index returns the sample index covering experiment time sec, clamped to
// the trace bounds (the last value persists past the end, the first before 0).
func (t *Trace) Index(sec float64) int {
	i := int(math.Floor(sec / t.Interval))
	if i < 0 {
		return 0
	}
	if i >= len(t.Values) {
		return len(t.Values) - 1
	}
	return i
}

// At returns the carbon intensity at experiment time sec.
func (t *Trace) At(sec float64) float64 { return t.Values[t.Index(sec)] }

// NextChange returns the experiment time of the first intensity boundary
// strictly after sec, or +Inf when the trace has been exhausted. Boundaries
// where the value does not actually change are still reported; schedulers
// treat every boundary as a scheduling event (Alg. 1 line 2).
func (t *Trace) NextChange(sec float64) float64 {
	i := int(math.Floor(sec/t.Interval)) + 1
	if i <= 0 {
		i = 1
	}
	if i >= len(t.Values) {
		return math.Inf(1)
	}
	return float64(i) * t.Interval
}

// Bounds returns the forecast lower and upper carbon bounds (L, U) over
// [fromSec, fromSec+horizonSec], the short-term forecast window the paper's
// threshold designs assume (§2.1; experiments use a 48-hour lookahead).
// Following the paper we treat the forecast as exact over the window.
func (t *Trace) Bounds(fromSec, horizonSec float64) (lo, hi float64) {
	i0 := t.Index(fromSec)
	i1 := t.Index(fromSec + horizonSec)
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := i0; i <= i1; i++ {
		v := t.Values[i]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Slice returns a view of the trace covering [fromSec, fromSec+durSec),
// clamped to the trace bounds. The underlying values are shared.
func (t *Trace) Slice(fromSec, durSec float64) *Trace {
	i0 := t.Index(fromSec)
	i1 := t.Index(fromSec+durSec-1e-9) + 1
	if i1 <= i0 {
		i1 = i0 + 1
	}
	return &Trace{Grid: t.Grid, Interval: t.Interval, Values: t.Values[i0:i1]}
}

// Integrate returns ∫ c(t)·rate(t) dt over [fromSec, toSec] where rate is a
// piecewise-constant function sampled at interval boundaries (rate is
// queried once per overlapped interval, at its beginning). It is the
// primitive behind ex post facto carbon accounting (§5.2): with rate(t) =
// busy executors and executor power normalized to 1 kW, the result divided
// by 3600 is gCO2eq.
func (t *Trace) Integrate(fromSec, toSec float64, rate func(sec float64) float64) float64 {
	if toSec <= fromSec {
		return 0
	}
	var total float64
	cur := fromSec
	for cur < toSec {
		next := t.NextChange(cur)
		if next > toSec {
			next = toSec
		}
		total += t.At(cur) * rate(cur) * (next - cur)
		if math.IsInf(next, 1) {
			break
		}
		cur = next
	}
	return total
}

// Stats summarizes a trace the way Table 1 does.
type Stats struct {
	Min, Max, Mean, Std, CoeffVar float64
	Samples                       int
}

// Stats computes Table 1-style summary statistics.
func (t *Trace) Stats() Stats {
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1), Samples: len(t.Values)}
	var sum float64
	for _, v := range t.Values {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(t.Values))
	var ss float64
	for _, v := range t.Values {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(t.Values)))
	if s.Mean > 0 {
		s.CoeffVar = s.Std / s.Mean
	}
	return s
}

// GreenFraction estimates the fraction of grid capacity powered by
// carbon-free generation at time sec. GreenHadoop (the adapted baseline,
// Appendix A.1.1) consumes this signal. Because the synthetic traces do not
// carry an explicit generation mix, we use the standard proxy that
// renewable availability moves inversely with carbon intensity between the
// grid's observed extremes over the forecast window.
func (t *Trace) GreenFraction(sec float64) float64 {
	// ±48 samples ≈ ±48 grid-hours, the paper's forecast horizon.
	lo, hi := t.Bounds(sec-48*t.Interval, 96*t.Interval)
	if hi <= lo {
		return 0
	}
	g := (hi - t.At(sec)) / (hi - lo)
	return math.Min(1, math.Max(0, g))
}

// SolarFraction models the availability of a co-located solar array as a
// fraction of cluster capacity: a half-sine day curve peaking at solar
// noon, scaled by the grid's apparent renewable penetration (its
// coefficient of variation, capped at 1). GreenHadoop [24] schedules
// against exactly this kind of local "green energy" signal — which only
// partially aligns with the grid's carbon-intensity minima (§6.1: CAISO's
// lows are solar-driven midday, but DE's highs are in the evening). The
// misalignment is why GreenHadoop saves less carbon than price-style
// threshold policies despite deferring heavily (Table 3).
func (t *Trace) SolarFraction(sec float64) float64 {
	hour := math.Mod(sec/t.Interval, 24)
	if hour < 0 {
		hour += 24
	}
	day := math.Sin(math.Pi * (hour - 6) / 12) // sunrise 06:00, noon peak
	if day < 0 {
		return 0
	}
	// Apparent penetration from the local forecast window: grids whose
	// intensity swings widely have more intermittent (solar-like)
	// capacity to harvest.
	lo, hi := t.Bounds(sec-48*t.Interval, 96*t.Interval)
	pen := 0.1
	if hi > 0 {
		pen = math.Min(1, (hi-lo)/hi+0.1)
	}
	return pen * day
}

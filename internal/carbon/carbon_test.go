package carbon

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustTrace(t testing.TB, vals ...float64) *Trace {
	t.Helper()
	tr, err := New("test", 60, vals)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", 60, nil); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := New("x", 0, []float64{1}); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := New("x", 60, []float64{-1}); err == nil {
		t.Fatal("negative intensity accepted")
	}
	if _, err := New("x", 60, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN intensity accepted")
	}
}

func TestAtAndIndexClamping(t *testing.T) {
	tr := mustTrace(t, 100, 200, 300)
	tests := []struct {
		sec  float64
		want float64
	}{
		{-5, 100}, {0, 100}, {59.9, 100}, {60, 200}, {119, 200}, {120, 300}, {1e6, 300},
	}
	for _, tt := range tests {
		if got := tr.At(tt.sec); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.sec, got, tt.want)
		}
	}
}

func TestNextChange(t *testing.T) {
	tr := mustTrace(t, 100, 200, 300)
	if got := tr.NextChange(0); got != 60 {
		t.Fatalf("NextChange(0) = %v", got)
	}
	if got := tr.NextChange(60); got != 120 {
		t.Fatalf("NextChange(60) = %v", got)
	}
	if got := tr.NextChange(59.5); got != 60 {
		t.Fatalf("NextChange(59.5) = %v", got)
	}
	if got := tr.NextChange(120); !math.IsInf(got, 1) {
		t.Fatalf("NextChange(120) = %v, want +Inf", got)
	}
	if got := tr.NextChange(-100); got != 60 {
		t.Fatalf("NextChange(-100) = %v", got)
	}
}

func TestBounds(t *testing.T) {
	tr := mustTrace(t, 100, 400, 200, 50)
	lo, hi := tr.Bounds(0, 120)
	if lo != 100 || hi != 400 {
		t.Fatalf("Bounds(0,120) = %v,%v", lo, hi)
	}
	lo, hi = tr.Bounds(120, 600)
	if lo != 50 || hi != 200 {
		t.Fatalf("Bounds(120,600) = %v,%v", lo, hi)
	}
	lo, hi = tr.Bounds(0, 0)
	if lo != 100 || hi != 100 {
		t.Fatalf("Bounds(0,0) = %v,%v", lo, hi)
	}
}

func TestSlice(t *testing.T) {
	tr := mustTrace(t, 1, 2, 3, 4, 5)
	s := tr.Slice(60, 120)
	if len(s.Values) != 2 || s.Values[0] != 2 || s.Values[1] != 3 {
		t.Fatalf("Slice = %v", s.Values)
	}
	s = tr.Slice(0, 1e9)
	if len(s.Values) != 5 {
		t.Fatalf("clamped Slice len = %d", len(s.Values))
	}
	s = tr.Slice(240, 1)
	if len(s.Values) != 1 || s.Values[0] != 5 {
		t.Fatalf("tail Slice = %v", s.Values)
	}
}

func TestIntegrateConstantRate(t *testing.T) {
	tr := mustTrace(t, 100, 200)
	got := tr.Integrate(0, 120, func(float64) float64 { return 2 })
	want := 2 * (100*60 + 200*60.0)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("Integrate = %v, want %v", got, want)
	}
}

func TestIntegratePartialIntervals(t *testing.T) {
	tr := mustTrace(t, 100, 200)
	got := tr.Integrate(30, 90, func(float64) float64 { return 1 })
	want := 100*30 + 200*30.0
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("Integrate = %v, want %v", got, want)
	}
	if got := tr.Integrate(50, 50, nil); got != 0 {
		t.Fatalf("empty Integrate = %v", got)
	}
}

func TestIntegrateBeyondTraceEnd(t *testing.T) {
	tr := mustTrace(t, 100)
	got := tr.Integrate(0, 600, func(float64) float64 { return 1 })
	want := 100 * 600.0
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("Integrate past end = %v, want %v", got, want)
	}
}

func TestStats(t *testing.T) {
	tr := mustTrace(t, 100, 200, 300, 400)
	s := tr.Stats()
	if s.Min != 100 || s.Max != 400 || s.Mean != 250 || s.Samples != 4 {
		t.Fatalf("Stats = %+v", s)
	}
	wantStd := math.Sqrt((150*150 + 50*50 + 50*50 + 150*150) / 4.0)
	if math.Abs(s.Std-wantStd) > 1e-9 {
		t.Fatalf("Std = %v, want %v", s.Std, wantStd)
	}
	if math.Abs(s.CoeffVar-wantStd/250) > 1e-9 {
		t.Fatalf("CoeffVar = %v", s.CoeffVar)
	}
}

func TestSynthesizeMatchesTable1(t *testing.T) {
	for _, spec := range Grids() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tr := Synthesize(spec, PaperHours, 60, 42)
			if len(tr.Values) != PaperHours {
				t.Fatalf("samples = %d", len(tr.Values))
			}
			s := tr.Stats()
			// Min, max, mean are matched exactly by the rescale step.
			if math.Abs(s.Min-spec.Min) > 1e-6 || math.Abs(s.Max-spec.Max) > 1e-6 {
				t.Fatalf("min/max = %v/%v, want %v/%v", s.Min, s.Max, spec.Min, spec.Max)
			}
			// The two-piece rescale perturbs the mean slightly; allow 5%.
			if math.Abs(s.Mean-spec.Mean) > 0.05*spec.Mean {
				t.Fatalf("mean = %v, want %v", s.Mean, spec.Mean)
			}
			// Coefficient of variation should be in the right regime
			// (within 40% relative): it drives scheduler behaviour ordering.
			if math.Abs(s.CoeffVar-spec.CoeffVar) > 0.4*spec.CoeffVar {
				t.Fatalf("coeffvar = %v, want ≈%v", s.CoeffVar, spec.CoeffVar)
			}
		})
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	spec, _ := GridByName("DE")
	a := Synthesize(spec, 500, 60, 7)
	b := Synthesize(spec, 500, 60, 7)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("value %d differs: %v vs %v", i, a.Values[i], b.Values[i])
		}
	}
	c := Synthesize(spec, 500, 60, 8)
	same := true
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestCoeffVarOrderingAcrossGrids(t *testing.T) {
	// The evaluation's key grid-level claim (Figs 10, 14): ZA is flattest,
	// ON is most variable. Verify the synthetic grids preserve ordering.
	traces := SynthesizeAll(PaperHours, 60, 1)
	cv := func(name string) float64 { return traces[name].Stats().CoeffVar }
	if !(cv("ZA") < cv("PJM") && cv("PJM") < cv("NSW")) {
		t.Fatalf("low-variability ordering broken: ZA=%v PJM=%v NSW=%v", cv("ZA"), cv("PJM"), cv("NSW"))
	}
	if !(cv("NSW") < cv("DE") && cv("DE") < cv("ON")) {
		t.Fatalf("high-variability ordering broken: NSW=%v DE=%v ON=%v", cv("NSW"), cv("DE"), cv("ON"))
	}
	if !(cv("CAISO") > cv("NSW")) {
		t.Fatalf("CAISO should vary more than NSW: %v vs %v", cv("CAISO"), cv("NSW"))
	}
}

func TestGridByName(t *testing.T) {
	g, err := GridByName("CAISO")
	if err != nil || g.Mean != 274 {
		t.Fatalf("GridByName(CAISO) = %+v, %v", g, err)
	}
	if _, err := GridByName("XX"); err == nil {
		t.Fatal("unknown grid accepted")
	}
}

func TestSortedNames(t *testing.T) {
	traces := SynthesizeAll(100, 60, 1)
	names := SortedNames(traces)
	want := []string{"PJM", "CAISO", "ON", "DE", "NSW", "ZA"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("SortedNames = %v", names)
		}
	}
}

func TestGreenFractionRange(t *testing.T) {
	spec, _ := GridByName("CAISO")
	tr := Synthesize(spec, 1000, 60, 3)
	for sec := 0.0; sec < tr.Duration(); sec += 600 {
		g := tr.GreenFraction(sec)
		if g < 0 || g > 1 {
			t.Fatalf("GreenFraction(%v) = %v out of [0,1]", sec, g)
		}
	}
	// Green fraction must be anti-monotone in intensity at fixed window:
	// the window's min-intensity hour has more green than its max hour.
	loSec, hiSec := 0.0, 0.0
	lo, hi := math.Inf(1), math.Inf(-1)
	for sec := 0.0; sec < 24*60; sec += 60 {
		v := tr.At(sec)
		if v < lo {
			lo, loSec = v, sec
		}
		if v > hi {
			hi, hiSec = v, sec
		}
	}
	if tr.GreenFraction(loSec) <= tr.GreenFraction(hiSec) {
		t.Fatalf("green fraction not anti-monotone: g(min)=%v g(max)=%v",
			tr.GreenFraction(loSec), tr.GreenFraction(hiSec))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := mustTrace(t, 101.5, 202.25, 303)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "test", 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != 3 {
		t.Fatalf("round trip len = %d", len(got.Values))
	}
	for i := range tr.Values {
		if got.Values[i] != tr.Values[i] {
			t.Fatalf("value %d: %v != %v", i, got.Values[i], tr.Values[i])
		}
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("0,100\n1,200\n"), "x", 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != 2 || got.Values[1] != 200 {
		t.Fatalf("values = %v", got.Values)
	}
}

func TestReadCSVBadData(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("hour,i\n0,abc\n"), "x", 60); err == nil {
		t.Fatal("bad data accepted")
	}
	if _, err := ReadCSV(strings.NewReader(""), "x", 60); err == nil {
		t.Fatal("empty CSV accepted")
	}
}

func TestQuickBoundsContainAt(t *testing.T) {
	spec, _ := GridByName("DE")
	tr := Synthesize(spec, 2000, 60, 11)
	f := func(rawFrom, rawHorizon float64) bool {
		from := math.Mod(math.Abs(rawFrom), tr.Duration())
		horizon := math.Mod(math.Abs(rawHorizon), tr.Duration()-from)
		lo, hi := tr.Bounds(from, horizon)
		for s := from; s <= from+horizon; s += tr.Interval / 2 {
			v := tr.At(s)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return lo <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntegrateAdditive(t *testing.T) {
	spec, _ := GridByName("PJM")
	tr := Synthesize(spec, 200, 60, 5)
	one := func(float64) float64 { return 1 }
	f := func(a, b, c float64) bool {
		xs := []float64{math.Mod(math.Abs(a), 9000), math.Mod(math.Abs(b), 9000), math.Mod(math.Abs(c), 9000)}
		lo, mid, hi := math.Min(xs[0], math.Min(xs[1], xs[2])), 0.0, math.Max(xs[0], math.Max(xs[1], xs[2]))
		mid = xs[0] + xs[1] + xs[2] - lo - hi
		whole := tr.Integrate(lo, hi, one)
		parts := tr.Integrate(lo, mid, one) + tr.Integrate(mid, hi, one)
		return math.Abs(whole-parts) < 1e-6*(1+math.Abs(whole))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPricing(t *testing.T) {
	p := Pricing{USDPerTonne: 50}
	// One tonne = 1e6 grams.
	if got := p.Cost(1e6); got != 50 {
		t.Fatalf("Cost(1t) = %v", got)
	}
	// One executor-hour at 400 g/kWh = 400 g = $0.02 at $50/t.
	if got := p.MarginalRate(400); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("MarginalRate = %v", got)
	}
}

func TestPriceTraceIsLinearScaling(t *testing.T) {
	tr := mustTrace(t, 100, 400, 250)
	p := Pricing{USDPerTonne: 80}
	pt := p.PriceTrace(tr)
	if pt.Grid != "test-usd" || pt.Interval != tr.Interval || len(pt.Values) != 3 {
		t.Fatalf("price trace meta: %+v", pt)
	}
	for i, v := range tr.Values {
		if math.Abs(pt.Values[i]-p.MarginalRate(v)) > 1e-12 {
			t.Fatalf("price[%d] = %v", i, pt.Values[i])
		}
	}
	// Threshold decisions are invariant under the scaling: the quota at
	// matching positions of the two signals is identical.
	// (Positive linear maps preserve the ordering and the relative
	// position within [L, U], which is all the thresholds consume.)
	loC, hiC := tr.Bounds(0, 1e9)
	loP, hiP := pt.Bounds(0, 1e9)
	ratio := func(x, lo, hi float64) float64 { return (x - lo) / (hi - lo) }
	for i := range tr.Values {
		a := ratio(tr.Values[i], loC, hiC)
		b := ratio(pt.Values[i], loP, hiP)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("normalized positions diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestSolarFraction(t *testing.T) {
	spec, _ := GridByName("CAISO")
	tr := Synthesize(spec, 1000, 60, 3)
	for sec := 0.0; sec < 48*60; sec += 30 {
		s := tr.SolarFraction(sec)
		if s < 0 || s > 1 {
			t.Fatalf("SolarFraction(%v) = %v out of [0,1]", sec, s)
		}
	}
	// Night (hour 0-5, 19-23) is zero; solar noon is the daily peak.
	if got := tr.SolarFraction(2 * 60); got != 0 {
		t.Fatalf("solar at 02:00 = %v, want 0", got)
	}
	if got := tr.SolarFraction(22 * 60); got != 0 {
		t.Fatalf("solar at 22:00 = %v, want 0", got)
	}
	noon := tr.SolarFraction(12 * 60)
	if noon <= tr.SolarFraction(8*60) || noon <= tr.SolarFraction(16*60) {
		t.Fatalf("noon %v not the peak (08:00 %v, 16:00 %v)",
			noon, tr.SolarFraction(8*60), tr.SolarFraction(16*60))
	}
	// Flat grids have lower apparent penetration than variable ones.
	za, _ := GridByName("ZA")
	flat := Synthesize(za, 1000, 60, 3)
	if flat.SolarFraction(12*60) >= noon {
		t.Fatalf("ZA solar %v should sit below CAISO %v", flat.SolarFraction(12*60), noon)
	}
}

package carbon

// This file supports the paper's carbon-pricing motivation (§1): internal
// carbon prices put a dollar figure on each metric ton of operational
// CO2, so the same threshold machinery that trades off grams can trade
// off dollars. A Pricing converts accounted emissions into charges and a
// trace of intensities into a trace of marginal prices.

// Pricing converts emissions to money under an internal carbon price.
type Pricing struct {
	// USDPerTonne is the internal carbon price in dollars per metric
	// ton of CO2 equivalent. Microsoft's internal fee and academic
	// estimates put typical values between $5 and $100.
	USDPerTonne float64
}

// Cost returns the charge in dollars for the given emissions in grams.
func (p Pricing) Cost(grams float64) float64 {
	return grams / 1e6 * p.USDPerTonne
}

// MarginalRate returns the cost in dollars of running one executor (at
// 1 kW) for one hour at the given carbon intensity (gCO2eq/kWh).
func (p Pricing) MarginalRate(intensity float64) float64 {
	return p.Cost(intensity)
}

// PriceTrace maps a carbon-intensity trace into a marginal-price trace in
// dollars per executor-hour. Because the mapping is a positive linear
// scaling, every threshold decision in this library (Ψγ admission,
// k-search quotas) is identical whether it consumes intensities or the
// resulting prices — carbon-aware and carbon-price-aware scheduling
// coincide, which is exactly the operational argument of §1.
func (p Pricing) PriceTrace(t *Trace) *Trace {
	vals := make([]float64, len(t.Values))
	for i, v := range t.Values {
		vals[i] = p.MarginalRate(v)
	}
	return &Trace{Grid: t.Grid + "-usd", Interval: t.Interval, Values: vals}
}

package carbon

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the trace as two columns, "hour,intensity", with a
// header row. The format round-trips with ReadCSV and matches the shape of
// hourly Electricity Maps exports.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"hour", "intensity_gco2eq_kwh"}); err != nil {
		return err
	}
	for i, v := range t.Values {
		rec := []string{strconv.Itoa(i), strconv.FormatFloat(v, 'f', -1, 64)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV (or any CSV whose last column
// is an hourly intensity; extra leading columns, a header row, and '#'
// comment lines — tracegen's provenance headers — are tolerated so real
// exports load unchanged).
func ReadCSV(r io.Reader, grid string, interval float64) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.Comment = '#'
	var vals []float64
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("carbon: csv row %d: %w", row, err)
		}
		row++
		if len(rec) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(rec[len(rec)-1], 64)
		if err != nil {
			if row == 1 {
				continue // header
			}
			return nil, fmt.Errorf("carbon: csv row %d: %w", row, err)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		// Distinguish "the file parsed but held nothing" (header-only or
		// blank input) from New's generic empty-trace error, so operators
		// see which CSV was at fault rather than a bare ErrEmptyTrace.
		return nil, fmt.Errorf("carbon: csv for grid %q has no data rows (%d rows read): %w", grid, row, ErrEmptyTrace)
	}
	return New(grid, interval, vals)
}

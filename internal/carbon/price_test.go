package carbon

import (
	"math"
	"testing"
)

// TestCostLinearity pins the property the scenario layer's cost columns
// rely on: Cost is a positive linear map from grams to dollars, so cost
// of the mean equals mean of the costs, rankings match the grams, and
// every threshold decision is identical whether it consumes intensities
// or prices (the §1 argument).
func TestCostLinearity(t *testing.T) {
	p := Pricing{USDPerTonne: 50}
	// One metric ton costs exactly the configured price.
	if got := p.Cost(1e6); got != 50 {
		t.Fatalf("Cost(1t) = %v, want 50", got)
	}
	// Additivity and homogeneity.
	for _, pair := range [][2]float64{{0, 0}, {100, 250}, {1e3, 1e6}, {7.5, 0.1}} {
		a, b := pair[0], pair[1]
		if got, want := p.Cost(a+b), p.Cost(a)+p.Cost(b); math.Abs(got-want) > 1e-12*math.Max(1, want) {
			t.Fatalf("Cost(%v+%v) = %v, want %v", a, b, got, want)
		}
		if got, want := p.Cost(3*a), 3*p.Cost(a); math.Abs(got-want) > 1e-12*math.Max(1, want) {
			t.Fatalf("Cost(3·%v) = %v, want %v", a, got, want)
		}
	}
	// Linear in the price too: doubling the price doubles every charge.
	double := Pricing{USDPerTonne: 100}
	if got, want := double.Cost(12345), 2*p.Cost(12345); math.Abs(got-want) > 1e-9 {
		t.Fatalf("price scaling broken: %v vs %v", got, want)
	}
	// Zero price: carbon is free, costs vanish.
	if got := (Pricing{}).Cost(1e9); got != 0 {
		t.Fatalf("zero price charged %v", got)
	}
}

// TestPriceTraceLinearity: PriceTrace maps each intensity sample through
// MarginalRate — a pointwise positive linear scaling that preserves the
// temporal ordering (which hours are cheap vs expensive), keeps the
// interval, and tags the grid.
func TestPriceTraceLinearity(t *testing.T) {
	tr, err := New("DE", 60, []float64{400, 100, 700, 250})
	if err != nil {
		t.Fatal(err)
	}
	p := Pricing{USDPerTonne: 80}
	pt := p.PriceTrace(tr)
	if pt.Grid != "DE-usd" || pt.Interval != tr.Interval || len(pt.Values) != len(tr.Values) {
		t.Fatalf("price trace shape: %+v", pt)
	}
	for i, v := range tr.Values {
		want := p.Cost(v)
		if pt.Values[i] != want || pt.Values[i] != p.MarginalRate(v) {
			t.Fatalf("sample %d: %v, want Cost(%v) = %v", i, pt.Values[i], v, want)
		}
	}
	// Ordering preserved: argmin/argmax are the same hours.
	argminEq := func(a, b []float64) bool {
		ai, bi := 0, 0
		for i := range a {
			if a[i] < a[ai] {
				ai = i
			}
			if b[i] < b[bi] {
				bi = i
			}
		}
		return ai == bi
	}
	if !argminEq(tr.Values, pt.Values) {
		t.Fatal("price trace reordered the cheap hours")
	}
}

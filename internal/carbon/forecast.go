package carbon

import "math"

// Forecaster produces the (L, U) carbon bounds the threshold designs
// consume (§2.1). The paper follows prior work in assuming the bounds
// are known over a lookahead window; production systems must estimate
// them from history. Implementations must never read trace values after
// fromSec unless they are explicitly oracular.
type Forecaster interface {
	// Bounds forecasts the minimum and maximum intensity over
	// [fromSec, fromSec+horizonSec].
	Bounds(t *Trace, fromSec, horizonSec float64) (lo, hi float64)
}

// Oracle is the paper's assumption: exact knowledge of the window's
// extremes (§6.1 derives L and U from "forecasted carbon intensities
// over a lookahead window of 48 hours" and treats them as accurate).
type Oracle struct{}

// Bounds implements Forecaster by reading the future directly.
func (Oracle) Bounds(t *Trace, fromSec, horizonSec float64) (lo, hi float64) {
	return t.Bounds(fromSec, horizonSec)
}

// Persistence forecasts the next window's extremes from the trailing
// window — the standard day-ahead persistence baseline for grid signals,
// which works because carbon intensity is strongly diurnal (Fig. 5). A
// safety margin widens the interval to hedge against regime shifts.
type Persistence struct {
	// Lookback is the trailing window in seconds; zero uses the
	// requested horizon (yesterday predicts today).
	Lookback float64
	// Margin widens the forecast interval by this relative fraction on
	// each side (e.g. 0.05 lowers L and raises U by 5%).
	Margin float64
}

// Bounds implements Forecaster using only history up to fromSec.
func (p Persistence) Bounds(t *Trace, fromSec, horizonSec float64) (lo, hi float64) {
	look := p.Lookback
	if look <= 0 {
		look = horizonSec
	}
	start := fromSec - look
	if start < 0 {
		start = 0
	}
	span := fromSec - start
	if span <= 0 {
		// No history yet: fall back to the current value.
		v := t.At(fromSec)
		lo, hi = v, v
	} else {
		lo, hi = t.Bounds(start, span)
	}
	// Include the present moment so the interval always contains c(t).
	now := t.At(fromSec)
	lo = math.Min(lo, now)
	hi = math.Max(hi, now)
	if p.Margin > 0 {
		lo *= 1 - p.Margin
		hi *= 1 + p.Margin
	}
	if lo < 0 {
		lo = 0
	}
	return lo, hi
}

// ForecastError quantifies a forecaster against the oracle over a whole
// trace: the mean relative error of the L and U endpoints across all
// window starts at interval granularity. Use it to validate that a
// forecaster is "reasonably accurate", the premise under which
// threshold designs stay near-optimal (§3, [13]).
func ForecastError(t *Trace, f Forecaster, horizonSec float64) (errL, errU float64) {
	var sumL, sumU float64
	n := 0
	for i := range t.Values {
		from := float64(i) * t.Interval
		if from+horizonSec > t.Duration() {
			break
		}
		gotL, gotU := f.Bounds(t, from, horizonSec)
		wantL, wantU := t.Bounds(from, horizonSec)
		if wantL > 0 {
			sumL += math.Abs(gotL-wantL) / wantL
		}
		if wantU > 0 {
			sumU += math.Abs(gotU-wantU) / wantU
		}
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sumL / float64(n), sumU / float64(n)
}

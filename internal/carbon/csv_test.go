package carbon

import (
	"errors"
	"strings"
	"testing"
)

func TestReadCSVHeaderOnly(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("hour,intensity_gco2eq_kwh\n"), "DE", 60)
	if err == nil {
		t.Fatal("header-only csv accepted")
	}
	if !strings.Contains(err.Error(), "no data rows") {
		t.Fatalf("want a 'no data rows' error, got: %v", err)
	}
	if !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("error does not wrap ErrEmptyTrace: %v", err)
	}
}

func TestReadCSVEmptyInput(t *testing.T) {
	_, err := ReadCSV(strings.NewReader(""), "DE", 60)
	if err == nil || !strings.Contains(err.Error(), "no data rows") {
		t.Fatalf("want a 'no data rows' error for empty input, got: %v", err)
	}
}

func TestReadCSVBlankTrailingLines(t *testing.T) {
	tr, err := ReadCSV(strings.NewReader("hour,intensity\n0,100\n1,200\n\n\n"), "DE", 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Values) != 2 || tr.Values[0] != 100 || tr.Values[1] != 200 {
		t.Fatalf("values = %v", tr.Values)
	}
}

func TestReadCSVBlankLinesOnly(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("\n\n\n"), "DE", 60)
	if err == nil || !strings.Contains(err.Error(), "no data rows") {
		t.Fatalf("want a 'no data rows' error for blank-only input, got: %v", err)
	}
}

package carbon

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// GridSpec parameterizes a synthetic grid generator. Target statistics are
// taken from Table 1 of the paper; shape parameters encode the qualitative
// descriptions in §6.1 (e.g. CAISO's solar-driven nighttime peaks, ZA's
// coal-dominated flatness).
type GridSpec struct {
	// Name is the grid code ("PJM", "CAISO", "ON", "DE", "NSW", "ZA").
	Name string
	// Min, Max, Mean are the target gCO2eq/kWh statistics from Table 1.
	Min, Max, Mean float64
	// CoeffVar is the target coefficient of variation from Table 1.
	CoeffVar float64
	// DiurnalShare, SeasonalShare, NoiseShare partition the target
	// variance between a 24-hour cycle, an annual cycle, and AR(1) noise.
	// They should sum to approximately 1.
	DiurnalShare, SeasonalShare, NoiseShare float64
	// PeakHour is the hour of day (0-23) at which the diurnal component
	// peaks. Solar-heavy grids (CAISO) peak at night; demand-driven grids
	// peak in the evening.
	PeakHour float64
	// NoisePersistence is the AR(1) coefficient for the noise component.
	NoisePersistence float64
}

// Grids returns the six grid specifications used throughout the paper's
// evaluation, in the order of Table 1.
func Grids() []GridSpec {
	return []GridSpec{
		{Name: "PJM", Min: 293, Max: 567, Mean: 425, CoeffVar: 0.110,
			DiurnalShare: 0.55, SeasonalShare: 0.15, NoiseShare: 0.30, PeakHour: 19, NoisePersistence: 0.85},
		{Name: "CAISO", Min: 83, Max: 451, Mean: 274, CoeffVar: 0.309,
			DiurnalShare: 0.70, SeasonalShare: 0.10, NoiseShare: 0.20, PeakHour: 2, NoisePersistence: 0.80},
		{Name: "ON", Min: 12, Max: 179, Mean: 50, CoeffVar: 0.654,
			DiurnalShare: 0.45, SeasonalShare: 0.15, NoiseShare: 0.40, PeakHour: 18, NoisePersistence: 0.90},
		{Name: "DE", Min: 130, Max: 765, Mean: 440, CoeffVar: 0.280,
			DiurnalShare: 0.55, SeasonalShare: 0.20, NoiseShare: 0.25, PeakHour: 20, NoisePersistence: 0.88},
		{Name: "NSW", Min: 267, Max: 817, Mean: 647, CoeffVar: 0.143,
			DiurnalShare: 0.60, SeasonalShare: 0.15, NoiseShare: 0.25, PeakHour: 1, NoisePersistence: 0.85},
		{Name: "ZA", Min: 586, Max: 785, Mean: 713, CoeffVar: 0.046,
			DiurnalShare: 0.50, SeasonalShare: 0.20, NoiseShare: 0.30, PeakHour: 19, NoisePersistence: 0.80},
	}
}

// GridByName returns the spec with the given name.
func GridByName(name string) (GridSpec, error) {
	for _, g := range Grids() {
		if g.Name == name {
			return g, nil
		}
	}
	return GridSpec{}, fmt.Errorf("carbon: unknown grid %q", name)
}

// PaperHours is the sample count of the paper's traces: three years of
// hourly data, 26,304 points (Table 1).
const PaperHours = 26304

// Synthesize generates a trace of the given number of hourly samples for
// the spec, deterministic in seed. Interval is the experiment-time seconds
// per sample (60 under the paper's 1-min-real = 1-h-grid scaling).
//
// The generator superposes a diurnal sinusoid, an annual sinusoid, and
// AR(1) noise, with amplitudes chosen so the variance matches the target
// coefficient of variation, then rescales the empirical distribution to hit
// the target min/max/mean exactly. The resulting trace reproduces Table 1
// statistics while exhibiting the day/night structure that carbon-aware
// deferral exploits.
func Synthesize(spec GridSpec, hours int, interval float64, seed int64) *Trace {
	if hours <= 0 {
		hours = PaperHours
	}
	if interval <= 0 {
		interval = 60
	}
	r := rand.New(rand.NewSource(seed))
	targetVar := spec.CoeffVar * spec.Mean * spec.CoeffVar * spec.Mean
	ampD := math.Sqrt(2 * spec.DiurnalShare * targetVar)
	ampS := math.Sqrt(2 * spec.SeasonalShare * targetVar)
	rho := spec.NoisePersistence
	sigma := math.Sqrt(spec.NoiseShare * targetVar * (1 - rho*rho))

	vals := make([]float64, hours)
	noise := 0.0
	for h := 0; h < hours; h++ {
		hour := float64(h % 24)
		day := float64(h) / 24
		diurnal := ampD * math.Cos(2*math.Pi*(hour-spec.PeakHour)/24)
		seasonal := ampS * math.Cos(2*math.Pi*day/365.25)
		noise = rho*noise + r.NormFloat64()*sigma
		vals[h] = spec.Mean + diurnal + seasonal + noise
	}
	rescale(vals, spec)
	t, err := New(spec.Name, interval, vals)
	if err != nil {
		panic(err) // unreachable: rescale guarantees finite non-negative values
	}
	return t
}

// rescale maps the empirical distribution of vals onto [spec.Min, spec.Max]
// with mean spec.Mean. Values are first normalized to their empirical range
// and then passed through a power transform f ↦ f^p before linear mapping to
// [Min, Max]; the exponent p is found by bisection so that the resulting
// mean matches spec.Mean. The transform is monotone, so temporal ordering
// (which hours are cheap vs expensive) is preserved, and it reproduces the
// right-skew of grids like ON whose mean sits near the minimum.
func rescale(vals []float64, spec GridSpec) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi <= lo {
		for i := range vals {
			vals[i] = spec.Mean
		}
		return
	}
	norm := make([]float64, len(vals))
	for i, v := range vals {
		norm[i] = (v - lo) / (hi - lo)
	}
	meanWith := func(p float64) float64 {
		var sum float64
		for _, f := range norm {
			sum += spec.Min + math.Pow(f, p)*(spec.Max-spec.Min)
		}
		return sum / float64(len(norm))
	}
	// meanWith is strictly decreasing in p; bisect on log-scale.
	pLo, pHi := 1.0/64, 64.0
	for meanWith(pLo) < spec.Mean && pLo > 1e-6 {
		pLo /= 2
	}
	for meanWith(pHi) > spec.Mean && pHi < 1e6 {
		pHi *= 2
	}
	for i := 0; i < 60; i++ {
		mid := math.Sqrt(pLo * pHi)
		if meanWith(mid) > spec.Mean {
			pLo = mid
		} else {
			pHi = mid
		}
	}
	p := math.Sqrt(pLo * pHi)
	for i, f := range norm {
		vals[i] = spec.Min + math.Pow(f, p)*(spec.Max-spec.Min)
	}
}

// SynthesizeAll generates one trace per paper grid with hours samples.
// Seeds are derived from the base seed so grids are mutually independent
// but individually reproducible.
func SynthesizeAll(hours int, interval float64, seed int64) map[string]*Trace {
	out := make(map[string]*Trace, 6)
	for i, spec := range Grids() {
		out[spec.Name] = Synthesize(spec, hours, interval, seed+int64(i)*1000003)
	}
	return out
}

// SortedNames returns trace-map keys in Table 1 order for deterministic
// iteration in reports.
func SortedNames(traces map[string]*Trace) []string {
	order := map[string]int{"PJM": 0, "CAISO": 1, "ON": 2, "DE": 3, "NSW": 4, "ZA": 5}
	names := make([]string, 0, len(traces))
	for n := range traces {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := order[names[i]]
		oj, jok := order[names[j]]
		if iok && jok {
			return oi < oj
		}
		if iok != jok {
			return iok
		}
		return names[i] < names[j]
	})
	return names
}

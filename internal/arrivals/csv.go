package arrivals

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV decodes an arrival schedule from CSV. The header row must
// carry an arrival_sec column and may carry a class column; any other
// columns are ignored, so both the minimal class,arrival_sec shape
// WriteCSV emits and the full workload.csv tracegen writes decode to
// the same schedule. Lines starting with '#' (the `# generated=`
// provenance headers) are skipped, like carbon.ReadCSV does.
func ReadCSV(r io.Reader) (Spec, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = -1 // validated against the header below
	header, err := cr.Read()
	if err != nil {
		return Spec{}, fmt.Errorf("arrivals: reading schedule header: %w", err)
	}
	timeCol, classCol := -1, -1
	for i, name := range header {
		switch strings.TrimSpace(name) {
		case "arrival_sec":
			timeCol = i
		case "class":
			classCol = i
		}
	}
	if timeCol < 0 {
		return Spec{}, fmt.Errorf("arrivals: schedule CSV has no arrival_sec column (header %v)", header)
	}
	s := Spec{Kind: KindCSV}
	for row := 2; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Spec{}, fmt.Errorf("arrivals: reading schedule row %d: %w", row, err)
		}
		if timeCol >= len(rec) {
			return Spec{}, fmt.Errorf("arrivals: schedule row %d has %d fields, arrival_sec is column %d", row, len(rec), timeCol+1)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(rec[timeCol]), 64)
		if err != nil {
			return Spec{}, fmt.Errorf("arrivals: schedule row %d: bad arrival_sec %q", row, rec[timeCol])
		}
		s.Times = append(s.Times, t)
		if classCol >= 0 && classCol < len(rec) {
			s.Classes = append(s.Classes, strings.TrimSpace(rec[classCol]))
		}
	}
	if len(s.Classes) > 0 && allEmpty(s.Classes) {
		s.Classes = nil
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

func allEmpty(ss []string) bool {
	for _, s := range ss {
		if s != "" {
			return false
		}
	}
	return true
}

// WriteCSV emits the schedule in the minimal round-trippable column
// set, class,arrival_sec, optionally preceded by a '#' provenance
// comment (ReadCSV skips it, so the file round-trips either way).
func WriteCSV(w io.Writer, s Spec, provenance string) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Kind != KindCSV {
		return fmt.Errorf("arrivals: WriteCSV serializes csv schedules, not %q", s.Kind)
	}
	if provenance != "" {
		if _, err := fmt.Fprintln(w, provenance); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"class", "arrival_sec"}); err != nil {
		return err
	}
	for i, t := range s.Times {
		class := ""
		if i < len(s.Classes) {
			class = s.Classes[i]
		}
		if err := cw.Write([]string{class, formatSec(t)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatSec renders an arrival second with two decimals, the precision
// tracegen's workload records use; times round-trip at the emitted
// precision.
func formatSec(t float64) string { return strconv.FormatFloat(t, 'f', 2, 64) }

package arrivals

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// drawTimes materializes the first n arrival times of a process under a
// fixed seed, the way workload.Generate does.
func drawTimes(t *testing.T, p Process, n int, seedVal int64) []float64 {
	t.Helper()
	r := rand.New(rand.NewSource(seedVal))
	now := 0.0
	if a, ok := p.(Anchored); ok {
		now = a.Start()
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, now)
		now += p.Gap(i, now, r)
	}
	return out
}

func TestPoissonMatchesLegacyDraw(t *testing.T) {
	// The Poisson kind must consume exactly one ExpFloat64 per gap —
	// the draw workload.Batch always made.
	p := Poisson{MeanSec: 30}
	r1 := rand.New(rand.NewSource(7))
	r2 := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		want := r1.ExpFloat64() * 30
		got := p.Gap(i, 0, r2)
		if got != want {
			t.Fatalf("gap %d: got %v, want %v", i, got, want)
		}
	}
}

func TestConstantSpacing(t *testing.T) {
	p, err := New(Spec{Kind: KindConstant, RPS: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := drawTimes(t, p, 5, 1)
	for i, want := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		if math.Abs(ts[i]-want) > 1e-12 {
			t.Fatalf("arrival %d at %v, want %v", i, ts[i], want)
		}
	}
}

func TestProcessesDeterministic(t *testing.T) {
	specs := []Spec{
		{Kind: KindPoisson},
		{Kind: KindConstant, RPS: 2},
		{Kind: KindRamp, RPS: 0.5, PeakRPS: 4, PeriodSec: 300},
		{Kind: KindBurst, RPS: 0.5, PeakRPS: 8, PeriodSec: 600, BurstSec: 60},
		{Kind: KindDiurnal, RPS: 0.5, PeakRPS: 4, PeriodSec: 1440},
	}
	for _, s := range specs {
		p, err := New(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Kind, err)
		}
		a := drawTimes(t, p, 200, 42)
		b := drawTimes(t, p, 200, 42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs across identical seeds: %v vs %v", s.Kind, i, a[i], b[i])
			}
		}
		c := drawTimes(t, p, 200, 43)
		if s.Kind != KindConstant {
			same := true
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("%s: schedule did not vary with the seed", s.Kind)
			}
		}
	}
}

// meanRate estimates the empirical rate over [lo, hi) from arrival times.
func meanRate(ts []float64, lo, hi float64) float64 {
	n := 0
	for _, x := range ts {
		if x >= lo && x < hi {
			n++
		}
	}
	return float64(n) / (hi - lo)
}

func TestThinningTracksRateEnvelope(t *testing.T) {
	// Burst: the rate inside the burst window should far exceed the
	// off-burst rate. Use many arrivals so the estimate is stable.
	p, err := New(Spec{Kind: KindBurst, RPS: 0.2, PeakRPS: 10, PeriodSec: 100, BurstSec: 10})
	if err != nil {
		t.Fatal(err)
	}
	ts := drawTimes(t, p, 5000, 9)
	var inBurst, offBurst int
	var horizon float64
	for _, x := range ts {
		if math.Mod(x, 100) < 10 {
			inBurst++
		} else {
			offBurst++
		}
		horizon = x
	}
	periods := horizon / 100
	burstRate := float64(inBurst) / (10 * periods)
	offRate := float64(offBurst) / (90 * periods)
	if burstRate < 5*offRate {
		t.Fatalf("burst rate %.2f not clearly above off-burst rate %.2f", burstRate, offRate)
	}

	// Ramp: the rate late in the ramp should exceed the early rate.
	p, err = New(Spec{Kind: KindRamp, RPS: 0.5, PeakRPS: 5, PeriodSec: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ts = drawTimes(t, p, 3000, 9)
	early := meanRate(ts, 0, 200)
	late := meanRate(ts, 800, 1000)
	if late < 2*early {
		t.Fatalf("ramp late rate %.2f not clearly above early rate %.2f", late, early)
	}
}

func TestScheduleReplay(t *testing.T) {
	s := Schedule{Times: []float64{5, 7, 12}, Classes: []string{"short", "", "long"}}
	ts := drawTimes(t, s, 3, 1)
	for i, want := range []float64{5, 7, 12} {
		if ts[i] != want {
			t.Fatalf("arrival %d at %v, want %v", i, ts[i], want)
		}
	}
	if s.Len() != 3 || s.Start() != 5 {
		t.Fatalf("Len/Start = %d/%v", s.Len(), s.Start())
	}
	if s.ClassAt(0) != "short" || s.ClassAt(1) != "" || s.ClassAt(2) != "long" || s.ClassAt(3) != "" {
		t.Fatalf("ClassAt mismatch")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		spec  Spec
		field string
	}{
		{Spec{}, "kind"},
		{Spec{Kind: "bogus"}, "kind"},
		{Spec{Kind: KindPoisson, RPS: 1}, "rps"},
		{Spec{Kind: KindConstant}, "rps"},
		{Spec{Kind: KindConstant, RPS: 1, MeanSec: 30}, "mean_sec"},
		{Spec{Kind: KindRamp, RPS: 1, PeriodSec: 10}, "peak_rps"},
		{Spec{Kind: KindRamp, RPS: 2, PeakRPS: 1, PeriodSec: 10}, "peak_rps"},
		{Spec{Kind: KindRamp, RPS: 1, PeakRPS: 2}, "period_sec"},
		{Spec{Kind: KindBurst, RPS: 1, PeakRPS: 2, PeriodSec: 10}, "burst_sec"},
		{Spec{Kind: KindBurst, RPS: 1, PeakRPS: 2, PeriodSec: 10, BurstSec: 10}, "burst_sec"},
		{Spec{Kind: KindDiurnal, RPS: 1, PeakRPS: 2, PeriodSec: 10, BurstSec: 1}, "burst_sec"},
		{Spec{Kind: KindCSV}, "times"},
		{Spec{Kind: KindCSV, Times: []float64{3, 1}}, "times[1]"},
		{Spec{Kind: KindCSV, Times: []float64{-1}}, "times[0]"},
		{Spec{Kind: KindCSV, Times: []float64{1, 2}, Classes: []string{"a"}}, "classes"},
		{Spec{Kind: KindPoisson, Classes: []string{"a"}}, "classes"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Fatalf("spec %+v: expected a validation error", c.spec)
		}
		var fe *FieldError
		if !errorsAs(err, &fe) {
			t.Fatalf("spec %+v: error %v is not a *FieldError", c.spec, err)
		}
		if fe.Field != c.field {
			t.Fatalf("spec %+v: error names field %q, want %q (%v)", c.spec, fe.Field, c.field, err)
		}
	}
}

// errorsAs avoids importing errors for one call.
func errorsAs(err error, target **FieldError) bool {
	fe, ok := err.(*FieldError)
	if ok {
		*target = fe
	}
	return ok
}

func TestCSVRoundTrip(t *testing.T) {
	s := Spec{Kind: KindCSV, Times: []float64{0, 2.5, 2.5, 10.25}, Classes: []string{"short", "long", "short", "long"}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s, "# generated=test"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Times) != len(s.Times) {
		t.Fatalf("round-trip lost rows: %d vs %d", len(got.Times), len(s.Times))
	}
	for i := range s.Times {
		if got.Times[i] != s.Times[i] {
			t.Fatalf("times[%d]: %v vs %v", i, got.Times[i], s.Times[i])
		}
		if got.Classes[i] != s.Classes[i] {
			t.Fatalf("classes[%d]: %q vs %q", i, got.Classes[i], s.Classes[i])
		}
	}
}

func TestReadCSVIgnoresExtraColumns(t *testing.T) {
	// The full tracegen workload.csv column set must decode to the same
	// schedule as the minimal class,arrival_sec shape.
	in := strings.Join([]string{
		"# generated=tracegen",
		"job,name,class,arrival_sec,stages,total_work_sec,critical_path_sec",
		"0,tpch-q1,short,0.00,4,180.00,60.00",
		"1,tpch-q2,long,31.50,5,386.00,90.00",
	}, "\n")
	s, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Times) != 2 || s.Times[1] != 31.5 {
		t.Fatalf("times = %v", s.Times)
	}
	if len(s.Classes) != 2 || s.Classes[0] != "short" || s.Classes[1] != "long" {
		t.Fatalf("classes = %v", s.Classes)
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, in := range []string{
		"job,name\n0,x\n",               // no arrival_sec column
		"arrival_sec\nnot-a-number\n",   // bad value
		"class,arrival_sec\nshort\n",    // short row
		"class,arrival_sec\na,5\nb,1\n", // decreasing
	} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: expected an error", in)
		}
	}
}

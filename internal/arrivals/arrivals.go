// Package arrivals turns job arrivals into a first-class scenario
// dimension: deterministic, seed-driven open-loop arrival processes
// that the workload generator consumes one interarrival gap at a time.
//
// Six kinds are provided: the paper's batch-Poisson process (extracted
// from workload.Batch, byte-identical draw order), constant-RPS,
// a linear RPS ramp, periodic bursts over a base rate, a diurnal
// sinusoid, and replay of an explicit schedule (the CSV format tracegen
// emits and ReadCSV decodes). The time-varying kinds are
// non-homogeneous Poisson processes sampled by Ogata thinning against
// the rate envelope, so every draw comes from the caller's seeded RNG
// and a schedule is a pure function of (Spec, seed) — the determinism
// contract every experiment artifact builds on (DESIGN.md §9).
//
// All rates are in jobs per second of experiment time (one real minute
// is one grid hour, per the paper's scaling).
package arrivals

import (
	"fmt"
	"math"
	"math/rand"
)

// Process kinds, the values Spec.Kind takes.
const (
	KindPoisson  = "poisson"
	KindConstant = "constant"
	KindRamp     = "ramp"
	KindBurst    = "burst"
	KindDiurnal  = "diurnal"
	KindCSV      = "csv"
)

// Kinds lists the process kinds in canonical order (error messages,
// validation sets).
func Kinds() []string {
	return []string{KindPoisson, KindConstant, KindRamp, KindBurst, KindDiurnal, KindCSV}
}

// Spec is the serializable description of one arrival process. Exactly
// the fields of the selected Kind apply; Validate rejects everything
// else with an error naming the offending field.
type Spec struct {
	// Kind selects the process: poisson, constant, ramp, burst,
	// diurnal, or csv.
	Kind string
	// MeanSec is the Poisson process's mean interarrival gap in seconds
	// (the paper's default is 30).
	MeanSec float64
	// RPS is the base arrival rate in jobs/second: the constant kind's
	// rate, the ramp's starting rate, the burst kind's off-burst rate,
	// and the diurnal trough.
	RPS float64
	// PeakRPS is the high rate: the ramp's final rate, the rate inside
	// a burst, and the diurnal peak.
	PeakRPS float64
	// PeriodSec is the shape's time scale: the ramp's rise time (the
	// rate holds at PeakRPS after), and the burst/diurnal cycle length.
	PeriodSec float64
	// BurstSec is the burst kind's spike duration at the start of each
	// period; it must be shorter than PeriodSec.
	BurstSec float64
	// Times is the csv kind's explicit schedule: absolute arrival
	// seconds, non-decreasing, Times[0] is job 0.
	Times []float64
	// Classes optionally names a job class per csv arrival (parallel to
	// Times); empty means the schedule carries no class assignment.
	Classes []string
}

// FieldError reports a Spec validation failure naming the offending
// field relative to the spec ("kind", "rps", "times[3]", ...), so
// callers can relocate it under their own path the way the scenario
// layer relocates sched.ParamError.
type FieldError struct {
	Field string
	Msg   string
}

// Error implements error.
func (e *FieldError) Error() string { return fmt.Sprintf("arrivals: %s: %s", e.Field, e.Msg) }

func fieldErr(field, format string, args ...any) error {
	return &FieldError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// need reports a missing required field; reject reports one that does
// not apply to the spec's kind (a silently ignored knob would make two
// different specs produce identical schedules).
func (s Spec) need(ok bool, field, what string) error {
	if !ok {
		return fieldErr(field, "%s kind needs %s", s.Kind, what)
	}
	return nil
}

func (s Spec) reject(zero bool, field string) error {
	if !zero {
		return fieldErr(field, "field does not apply to the %s kind", s.Kind)
	}
	return nil
}

// Validate checks the spec; errors are *FieldError values naming the
// offending field.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindPoisson, KindConstant, KindRamp, KindBurst, KindDiurnal, KindCSV:
	case "":
		return fieldErr("kind", "missing arrival kind (have %v)", Kinds())
	default:
		return fieldErr("kind", "unknown arrival kind %q (have %v)", s.Kind, Kinds())
	}
	if s.MeanSec < 0 || math.IsNaN(s.MeanSec) || math.IsInf(s.MeanSec, 0) {
		return fieldErr("mean_sec", "mean interarrival %v is not a positive duration", s.MeanSec)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"rps", s.RPS}, {"peak_rps", s.PeakRPS}, {"period_sec", s.PeriodSec}, {"burst_sec", s.BurstSec}} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fieldErr(f.name, "%v is not a non-negative finite number", f.v)
		}
	}
	switch s.Kind {
	case KindPoisson:
		if err := s.reject(s.RPS == 0, "rps"); err != nil {
			return err
		}
		if err := s.reject(s.PeakRPS == 0, "peak_rps"); err != nil {
			return err
		}
		if err := s.reject(s.PeriodSec == 0, "period_sec"); err != nil {
			return err
		}
		if err := s.reject(s.BurstSec == 0, "burst_sec"); err != nil {
			return err
		}
	case KindConstant:
		if err := s.need(s.RPS > 0, "rps", "a positive rate"); err != nil {
			return err
		}
		if err := s.reject(s.MeanSec == 0, "mean_sec"); err != nil {
			return err
		}
		if err := s.reject(s.PeakRPS == 0, "peak_rps"); err != nil {
			return err
		}
		if err := s.reject(s.PeriodSec == 0, "period_sec"); err != nil {
			return err
		}
		if err := s.reject(s.BurstSec == 0, "burst_sec"); err != nil {
			return err
		}
	case KindRamp, KindBurst, KindDiurnal:
		if err := s.need(s.RPS > 0, "rps", "a positive base rate"); err != nil {
			return err
		}
		if err := s.need(s.PeakRPS > 0, "peak_rps", "a positive peak rate"); err != nil {
			return err
		}
		if s.PeakRPS < s.RPS {
			return fieldErr("peak_rps", "peak rate %v below base rate %v", s.PeakRPS, s.RPS)
		}
		if err := s.need(s.PeriodSec > 0, "period_sec", "a positive period"); err != nil {
			return err
		}
		if err := s.reject(s.MeanSec == 0, "mean_sec"); err != nil {
			return err
		}
		if s.Kind == KindBurst {
			if err := s.need(s.BurstSec > 0, "burst_sec", "a positive burst duration"); err != nil {
				return err
			}
			if s.BurstSec >= s.PeriodSec {
				return fieldErr("burst_sec", "burst %vs must be shorter than the period %vs", s.BurstSec, s.PeriodSec)
			}
		} else if err := s.reject(s.BurstSec == 0, "burst_sec"); err != nil {
			return err
		}
	case KindCSV:
		if len(s.Times) == 0 {
			return fieldErr("times", "csv kind needs an explicit schedule")
		}
		if err := s.reject(s.MeanSec == 0, "mean_sec"); err != nil {
			return err
		}
		if err := s.reject(s.RPS == 0, "rps"); err != nil {
			return err
		}
		if err := s.reject(s.PeakRPS == 0, "peak_rps"); err != nil {
			return err
		}
		if err := s.reject(s.PeriodSec == 0, "period_sec"); err != nil {
			return err
		}
		if err := s.reject(s.BurstSec == 0, "burst_sec"); err != nil {
			return err
		}
		prev := math.Inf(-1)
		for i, t := range s.Times {
			if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
				return fieldErr(fmt.Sprintf("times[%d]", i), "arrival time %v is not a non-negative finite second", t)
			}
			if t < prev {
				return fieldErr(fmt.Sprintf("times[%d]", i), "arrival times must be non-decreasing (%v after %v)", t, prev)
			}
			prev = t
		}
		if len(s.Classes) != 0 && len(s.Classes) != len(s.Times) {
			return fieldErr("classes", "%d class labels for %d arrival times", len(s.Classes), len(s.Times))
		}
	}
	if len(s.Classes) > 0 && s.Kind != KindCSV {
		return fieldErr("classes", "per-arrival class labels apply to the csv kind only")
	}
	return nil
}

// Process generates the interarrival gaps of one open-loop schedule.
// Implementations are stateless and safe for concurrent use: a gap is a
// pure function of (i, now, r), with every stochastic draw coming from
// the caller's seeded RNG — the workload generator's batch stream, so
// the Poisson kind reproduces the historical workload.Batch draw
// interleaving byte-for-byte.
type Process interface {
	// Kind returns the process's Spec kind.
	Kind() string
	// Gap returns the gap in seconds between job i (which arrived at
	// time now) and job i+1, drawing randomness from r.
	Gap(i int, now float64, r *rand.Rand) float64
}

// Finite is implemented by processes with a bounded schedule (csv
// replay): Len is the number of arrivals the schedule covers.
type Finite interface {
	Len() int
}

// Classed is implemented by processes that assign a job class per
// arrival (csv replay with a class column). ClassAt returns "" when
// arrival i carries no assignment.
type Classed interface {
	ClassAt(i int) string
}

// Anchored is implemented by processes whose schedule fixes the first
// arrival's absolute time (csv replay). Open-ended processes start at
// time 0, the historical batch convention.
type Anchored interface {
	Start() float64
}

// New builds the process a validated spec describes. The spec is
// validated first, so New is safe to call on user input.
func New(s Spec) (Process, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case KindPoisson:
		mean := s.MeanSec
		if mean == 0 {
			mean = DefaultPoissonMeanSec
		}
		return Poisson{MeanSec: mean}, nil
	case KindConstant:
		return constant{rps: s.RPS}, nil
	case KindRamp:
		return &rateProcess{kind: KindRamp, peak: s.PeakRPS,
			base: s.RPS, amp: s.PeakRPS - s.RPS, period: s.PeriodSec}, nil
	case KindBurst:
		return &rateProcess{kind: KindBurst, peak: s.PeakRPS,
			base: s.RPS, amp: s.PeakRPS - s.RPS, period: s.PeriodSec, burst: s.BurstSec}, nil
	case KindDiurnal:
		return &rateProcess{kind: KindDiurnal, peak: s.PeakRPS,
			base: s.RPS, amp: s.PeakRPS - s.RPS, period: s.PeriodSec}, nil
	case KindCSV:
		return Schedule{Times: s.Times, Classes: s.Classes}, nil
	}
	return nil, fieldErr("kind", "unknown arrival kind %q", s.Kind) // unreachable after Validate
}

// DefaultPoissonMeanSec is the paper's Poisson interarrival mean (§6.1).
const DefaultPoissonMeanSec = 30

// Poisson is the paper's batch arrival shape: exponential gaps with the
// given mean. It is the exact generator workload.Batch always used —
// one r.ExpFloat64 draw after each job — extracted behind the Process
// interface, so batches built through it are byte-identical to the
// historical ones.
type Poisson struct {
	// MeanSec is the mean interarrival gap in seconds.
	MeanSec float64
}

// Kind implements Process.
func (Poisson) Kind() string { return KindPoisson }

// Gap implements Process.
//
//pcaps:hotpath called once per generated job in every batch draw
func (p Poisson) Gap(i int, now float64, r *rand.Rand) float64 {
	return r.ExpFloat64() * p.MeanSec
}

// constant is a fixed-spacing deterministic schedule at 1/rps seconds
// per job; it draws nothing from r.
type constant struct{ rps float64 }

func (constant) Kind() string { return KindConstant }

//pcaps:hotpath called once per generated job in every batch draw
func (c constant) Gap(i int, now float64, r *rand.Rand) float64 { return 1 / c.rps }

// rateProcess samples a non-homogeneous Poisson process with rate λ(t)
// by Ogata thinning against the peak-rate envelope: candidate gaps are
// exponential at the peak rate and survive with probability λ(t)/peak.
// Thinning is exact for any bounded λ and keeps every draw on the
// caller's RNG, so the schedule is deterministic under a seed.
type rateProcess struct {
	kind   string
	peak   float64 // envelope rate, = base+amp
	base   float64 // off-peak rate
	amp    float64 // peak − base
	period float64
	burst  float64 // burst duration (burst kind only)
}

func (p *rateProcess) Kind() string { return p.kind }

// rate evaluates λ(t) for the shape.
//
//pcaps:hotpath evaluated once per thinning candidate in every batch draw
func (p *rateProcess) rate(t float64) float64 {
	switch p.kind {
	case KindRamp:
		if t >= p.period {
			return p.peak
		}
		return p.base + p.amp*t/p.period
	case KindBurst:
		if math.Mod(t, p.period) < p.burst {
			return p.peak
		}
		return p.base
	default: // diurnal: trough at t=0, peak at period/2
		return p.base + p.amp*(1-math.Cos(2*math.Pi*t/p.period))/2
	}
}

// Gap implements Process.
//
//pcaps:hotpath called once per generated job in every batch draw
func (p *rateProcess) Gap(i int, now float64, r *rand.Rand) float64 {
	t := now
	for {
		t += r.ExpFloat64() / p.peak
		// Accept with probability λ(t)/peak; λ ≤ peak by construction.
		if r.Float64()*p.peak <= p.rate(t) {
			return t - now
		}
	}
}

// Schedule replays an explicit arrival-time list (the csv kind): job i
// arrives at Times[i], with an optional class label per arrival. It
// draws nothing from r.
type Schedule struct {
	// Times are absolute arrival seconds, non-decreasing.
	Times []float64
	// Classes optionally labels each arrival's job class (empty or
	// parallel to Times).
	Classes []string
}

// Kind implements Process.
func (Schedule) Kind() string { return KindCSV }

// Gap implements Process.
//
//pcaps:hotpath called once per generated job in every batch draw
func (s Schedule) Gap(i int, now float64, r *rand.Rand) float64 {
	if i+1 >= len(s.Times) {
		return 0 // beyond the schedule; Generate rejects such batches up front
	}
	return s.Times[i+1] - s.Times[i]
}

// Len implements Finite.
func (s Schedule) Len() int { return len(s.Times) }

// Start implements Anchored.
func (s Schedule) Start() float64 { return s.Times[0] }

// ClassAt implements Classed.
func (s Schedule) ClassAt(i int) string {
	if i < 0 || i >= len(s.Classes) {
		return ""
	}
	return s.Classes[i]
}

package core

// This file implements the steady-state average-savings estimators of
// Corollaries B.1 and B.2: in a regime where the queue always holds
// outstanding tasks, the average carbon savings per discrete time step
// reduce to utilization differences weighted by the current intensity.

// AvgSavingsPCAPS is Corollary B.1: with baseline average machine
// utilization rhoPB ∈ [0, 1] and PCAPS utilization rhoPCAPS(c) at the
// current intensity c, the expected savings this step are
// (ρ_PB·K − ρ_PCAPS(c)·K)·c.
func AvgSavingsPCAPS(k int, rhoPB, rhoPCAPS, c float64) float64 {
	return (clamp01(rhoPB) - clamp01(rhoPCAPS)) * float64(k) * c
}

// AvgSavingsCAP is Corollary B.2: with baseline utilization rhoAG over K
// machines and CAP utilization rhoCAP over the current quota r(t), the
// savings this step are at least (ρ_AG·K − ρ_CAP·r)·Φ_{r+B} — we return
// the exact instant form (ρ_AG·K − ρ_CAP·r)·c alongside the threshold
// lower bound.
func AvgSavingsCAP(k, quota int, rhoAG, rhoCAP, c, phi float64) (exact, lowerBound float64) {
	diff := clamp01(rhoAG)*float64(k) - clamp01(rhoCAP)*float64(quota)
	return diff * c, diff * phi
}

// UtilizationFromUsage converts a busy executor-seconds timeline (one
// entry per carbon interval of the given length) into average cluster
// utilization over K machines — the ρ of the corollaries.
//
//pcaps:hotpath
func UtilizationFromUsage(usage []float64, interval float64, k int) float64 {
	if len(usage) == 0 || interval <= 0 || k <= 0 {
		return 0
	}
	var busy float64
	for _, u := range usage {
		busy += u
	}
	return busy / (float64(len(usage)) * interval * float64(k))
}

// ConditionalUtilization returns the average utilization restricted to
// intervals whose intensity falls in [lo, hi) — the ρ_PCAPS(c) of
// Corollary B.1, estimated from a finished run.
//
//pcaps:hotpath
func ConditionalUtilization(usage, intensity []float64, interval float64, k int, lo, hi float64) float64 {
	if interval <= 0 || k <= 0 {
		return 0
	}
	var busy float64
	n := 0
	for i, u := range usage {
		c := 0.0
		if i < len(intensity) {
			c = intensity[i]
		} else if len(intensity) > 0 {
			c = intensity[len(intensity)-1]
		}
		if c >= lo && c < hi {
			busy += u
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return busy / (float64(n) * interval * float64(k))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

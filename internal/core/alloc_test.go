//go:build !race

package core

import "testing"

// TestHotPathsAllocationFree pins the zero-allocation discipline of the
// per-decision analysis paths: the Ψ filter, the CAP quota lookup, and
// the Theorem 4.4 decomposition all run inside scheduler Picks or
// artifact folds, so a single stray allocation multiplies by millions of
// simulation events. Compiled out under -race, whose instrumentation
// perturbs allocation counts.
func TestHotPathsAllocationFree(t *testing.T) {
	psi := mustPsi(t, 0.7, 130, 765)
	cap20, err := NewCAP(100, 20, 130, 765)
	if err != nil {
		t.Fatal(err)
	}
	agnostic := []float64{40, 60, 80, 30, 0, 0}
	aware := []float64{40, 30, 50, 30, 20, 10}
	intensity := []float64{300, 500, 650, 400, 250, 200}
	probs := []float64{0.1, 0.3, 0.25, 0.2, 0.15}

	var f float64
	var n int
	var d SavingsDecomposition
	cases := []struct {
		name string
		fn   func()
	}{
		{"Psi.Value", func() { f = psi.Value(0.37) }},
		{"Psi.Admits", func() {
			if psi.Admits(0.37, 400) {
				n++
			}
		}},
		{"Psi.ParallelismLimit", func() { n = psi.ParallelismLimit(8, 400) }},
		{"RelativeImportance", func() { f = RelativeImportance(probs, 2) }},
		{"CAP.Quota", func() { n = cap20.Quota(412) }},
		{"CAP.ParallelismLimit", func() { n = cap20.ParallelismLimit(8, 412) }},
		{"DecomposeSavings", func() { d = DecomposeSavings(agnostic, aware, intensity) }},
		{"DeferralFraction", func() { f = DeferralFraction(120, 480) }},
		{"UtilizationFromUsage", func() { f = UtilizationFromUsage(aware, 60, 100) }},
		{"ConditionalUtilization", func() { f = ConditionalUtilization(aware, intensity, 60, 100, 400, 700) }},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(200, tc.fn); avg != 0 {
			t.Errorf("%s allocates %.1f per call; hot paths must stay allocation-free", tc.name, avg)
		}
	}
	_, _, _ = f, n, d
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustPsi(t testing.TB, gamma, l, u float64) *Psi {
	t.Helper()
	p, err := NewPsi(gamma, l, u)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPsiValidation(t *testing.T) {
	for _, tt := range []struct{ g, l, u float64 }{
		{-0.1, 100, 200}, {1.1, 100, 200}, {math.NaN(), 100, 200},
		{0.5, 0, 200}, {0.5, -5, 200}, {0.5, 300, 200}, {0.5, 100, math.Inf(1)},
	} {
		if _, err := NewPsi(tt.g, tt.l, tt.u); err == nil {
			t.Fatalf("NewPsi(%v,%v,%v) accepted", tt.g, tt.l, tt.u)
		}
	}
}

func TestPsiEndpoints(t *testing.T) {
	// Ψγ(1) = U for every γ: maximal-importance stages always run (§4.1).
	for _, g := range []float64{0, 0.1, 0.5, 0.9, 1} {
		p := mustPsi(t, g, 130, 765)
		if got := p.Value(1); math.Abs(got-765) > 1e-9 {
			t.Fatalf("Ψ_%v(1) = %v, want U", g, got)
		}
	}
	// Ψγ(0) = γL + (1−γ)U.
	p := mustPsi(t, 0.5, 130, 765)
	if got, want := p.Value(0), 0.5*130+0.5*765; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Ψ_0.5(0) = %v, want %v", got, want)
	}
	// γ = 1: Ψ₁(0) = L.
	p = mustPsi(t, 1, 130, 765)
	if got := p.Value(0); math.Abs(got-130) > 1e-9 {
		t.Fatalf("Ψ_1(0) = %v, want L", got)
	}
}

func TestPsiGammaZeroIsCarbonAgnostic(t *testing.T) {
	p := mustPsi(t, 0, 130, 765)
	for _, r := range []float64{0, 0.2, 0.7, 1} {
		if got := p.Value(r); got != 765 {
			t.Fatalf("Ψ_0(%v) = %v, want U", r, got)
		}
		if !p.Admits(r, 765) {
			t.Fatalf("γ=0 must admit everything at c=U")
		}
	}
}

func TestPsiMonotoneInImportance(t *testing.T) {
	p := mustPsi(t, 0.8, 83, 451)
	prev := math.Inf(-1)
	for r := 0.0; r <= 1.0; r += 0.01 {
		v := p.Value(r)
		if v < prev {
			t.Fatalf("Ψ not non-decreasing at r=%v: %v < %v", r, v, prev)
		}
		if v < p.L-1e-9 || v > p.U+1e-9 {
			t.Fatalf("Ψ(%v) = %v outside [L,U]", r, v)
		}
		prev = v
	}
}

func TestPsiMoreCarbonAwareDefersMore(t *testing.T) {
	// Larger γ lowers the threshold for low-importance stages, so a fixed
	// mid-range carbon intensity rejects them at high γ but not low γ.
	lo := mustPsi(t, 0.1, 100, 700)
	hi := mustPsi(t, 0.9, 100, 700)
	r, c := 0.2, 500.0
	if !lo.Admits(r, c) {
		t.Fatalf("γ=0.1 should admit r=%v at c=%v (Ψ=%v)", r, c, lo.Value(r))
	}
	if hi.Admits(r, c) {
		t.Fatalf("γ=0.9 should defer r=%v at c=%v (Ψ=%v)", r, c, hi.Value(r))
	}
}

func TestPsiClampsImportance(t *testing.T) {
	p := mustPsi(t, 0.5, 100, 700)
	if p.Value(-3) != p.Value(0) || p.Value(7) != p.Value(1) {
		t.Fatal("importance not clamped")
	}
}

func TestRelativeImportance(t *testing.T) {
	probs := []float64{0.1, 0.4, 0.2, 0.3}
	if got := RelativeImportance(probs, 1); got != 1 {
		t.Fatalf("max element importance = %v, want 1", got)
	}
	if got := RelativeImportance(probs, 0); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("importance = %v, want 0.25", got)
	}
	if got := RelativeImportance([]float64{0.7}, 0); got != 1 {
		t.Fatalf("singleton importance = %v, want 1 (Def 4.2)", got)
	}
	if got := RelativeImportance(nil, 0); got != 1 {
		t.Fatalf("empty importance = %v, want 1", got)
	}
	if got := RelativeImportance([]float64{0, 0}, 1); got != 1 {
		t.Fatalf("all-zero importance = %v, want 1", got)
	}
	if got := RelativeImportance(probs, 9); got != 1 {
		t.Fatalf("out-of-range index importance = %v, want 1", got)
	}
}

func TestPCAPSParallelismLimit(t *testing.T) {
	p := mustPsi(t, 0.5, 100, 700)
	// At c = L the scale is min{1, 1−γ} = 0.5.
	if got := p.ParallelismLimit(10, 100); got != 5 {
		t.Fatalf("limit at L = %d, want 5", got)
	}
	// At c = U the normalized exponential binds: ⌈10·e^{−4·0.5}⌉ = 2.
	if got := p.ParallelismLimit(10, 700); got != 2 {
		t.Fatalf("limit at U = %d, want 2", got)
	}
	// A stricter γ decays to a single executor at U: ⌈10·e^{−3.6}⌉ = 1.
	p9 := mustPsi(t, 0.9, 100, 700)
	if got := p9.ParallelismLimit(10, 700); got != 1 {
		t.Fatalf("γ=0.9 limit at U = %d, want 1", got)
	}
	// Monotone non-increasing in carbon.
	prev := 11
	for c := 100.0; c <= 700; c += 50 {
		lim := p.ParallelismLimit(10, c)
		if lim > prev {
			t.Fatalf("limit not monotone at c=%v: %d > %d", c, lim, prev)
		}
		prev = lim
	}
	// γ = 0 leaves the planned limit unchanged.
	p0 := mustPsi(t, 0, 100, 700)
	if got := p0.ParallelismLimit(10, 700); got != 10 {
		t.Fatalf("γ=0 limit = %d, want 10", got)
	}
	// γ = 1 still guarantees progress (clamped to ≥ 1).
	p1 := mustPsi(t, 1, 100, 700)
	if got := p1.ParallelismLimit(10, 100); got != 1 {
		t.Fatalf("γ=1 limit = %d, want 1", got)
	}
	if got := p.ParallelismLimit(1, 100); got != 1 {
		t.Fatalf("planned=1 limit = %d", got)
	}
	if got := p.ParallelismLimit(0, 100); got != 1 {
		t.Fatalf("planned=0 limit = %d", got)
	}
}

func TestCAPQuotaAndMinSeen(t *testing.T) {
	c, err := NewCAP(100, 20, 130, 765)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 100 || c.B() != 20 {
		t.Fatalf("K,B = %d,%d", c.K(), c.B())
	}
	if q := c.Quota(130); q != 100 {
		t.Fatalf("Quota(L) = %d, want 100", q)
	}
	if q := c.Quota(765); q != 20 {
		t.Fatalf("Quota(U) = %d, want 20", q)
	}
	if m := c.MinQuotaSeen(); m != 20 {
		t.Fatalf("MinQuotaSeen = %d, want 20", m)
	}
}

func TestCAPParallelismLimit(t *testing.T) {
	c, err := NewCAP(100, 20, 130, 765)
	if err != nil {
		t.Fatal(err)
	}
	// Low carbon: full quota, limit unchanged.
	if got := c.ParallelismLimit(10, 0); got != 10 {
		t.Fatalf("limit at c=0 = %d, want 10", got)
	}
	// Quota B=20 of K=100 → ⌈10·0.2⌉ = 2.
	if got := c.ParallelismLimit(10, 765); got != 2 {
		t.Fatalf("limit at U = %d, want 2", got)
	}
	if got := c.ParallelismLimit(1, 765); got != 1 {
		t.Fatalf("planned=1 limit = %d", got)
	}
}

func TestNewCAPValidation(t *testing.T) {
	if _, err := NewCAP(10, 0, 100, 200); err == nil {
		t.Fatal("B=0 accepted")
	}
	if _, err := NewCAP(10, 5, 300, 200); err == nil {
		t.Fatal("L>U accepted")
	}
}

func TestCAPStretchFactor(t *testing.T) {
	// m = K: no throttling, CSF = 1.
	if got := CAPStretchFactor(100, 100); math.Abs(got-1) > 1e-12 {
		t.Fatalf("CSF(m=K) = %v, want 1", got)
	}
	// Formula check: K=100, m=20 → 25 · 39/199.
	want := 25.0 * 39 / 199
	if got := CAPStretchFactor(100, 20); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CSF = %v, want %v", got, want)
	}
	// Clamping.
	if got := CAPStretchFactor(10, 0); got != CAPStretchFactor(10, 1) {
		t.Fatal("m=0 not clamped to 1")
	}
}

func TestPCAPSStretchFactor(t *testing.T) {
	if got := PCAPSStretchFactor(50, 0); got != 1 {
		t.Fatalf("CSF(d=0) = %v, want 1", got)
	}
	k, d := 50, 0.3
	want := 1 + d*float64(k)/(2-1.0/float64(k))
	if got := PCAPSStretchFactor(k, d); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CSF = %v, want %v", got, want)
	}
	if got := PCAPSStretchFactor(50, 2); got != PCAPSStretchFactor(50, 1) {
		t.Fatal("d>1 not clamped")
	}
}

func TestDecomposeSavingsIdentity(t *testing.T) {
	// A hand-built scenario: agnostic runs 3 machines for 4 intervals;
	// aware runs {1,1,3,3} and then 2+2 extra intervals of make-up work.
	agnostic := []float64{3, 3, 3, 3}
	aware := []float64{1, 1, 3, 3, 2, 2}
	intensity := []float64{500, 400, 100, 100, 150, 50}
	d := DecomposeSavings(agnostic, aware, intensity)
	if d.W != 4 {
		t.Fatalf("W = %v, want 4", d.W)
	}
	wantAg := 3*500 + 3*400 + 3*100 + 3*100.0
	wantCa := 1*500 + 1*400 + 3*100 + 3*100 + 2*150 + 2*50.0
	if d.AgnosticEmissions != wantAg || d.AwareEmissions != wantCa {
		t.Fatalf("emissions = %v/%v, want %v/%v", d.AgnosticEmissions, d.AwareEmissions, wantAg, wantCa)
	}
	// Theorem 4.4 identity: savings = W(s₋ − s₊ − c_tail).
	if got := d.W * (d.SMinus - d.SPlus - d.CTail); math.Abs(got-d.Savings) > 1e-9 {
		t.Fatalf("decomposition identity broken: %v vs %v", got, d.Savings)
	}
	if d.Savings != wantAg-wantCa {
		t.Fatalf("savings = %v, want %v", d.Savings, wantAg-wantCa)
	}
	if d.SPlus != 0 {
		t.Fatalf("SPlus = %v, want 0 (aware never exceeds agnostic)", d.SPlus)
	}
}

func TestDecomposeSavingsWithOpportunisticWork(t *testing.T) {
	// Aware schedule uses MORE machines in interval 1 (low carbon): s₊ > 0.
	agnostic := []float64{2, 2, 2}
	aware := []float64{0, 4, 2}
	intensity := []float64{600, 100, 300}
	d := DecomposeSavings(agnostic, aware, intensity)
	if d.SPlus == 0 {
		t.Fatal("expected positive SPlus")
	}
	if got := d.W * (d.SMinus - d.SPlus - d.CTail); math.Abs(got-d.Savings) > 1e-9 {
		t.Fatalf("identity broken: %v vs %v", got, d.Savings)
	}
}

// TestQuickDecompositionIdentity verifies the Theorem 4.4 algebraic
// identity savings = W(s₋ − s₊ − c_tail) on random timelines whose
// carbon-aware variant conserves total work (deferral, not deletion).
func TestQuickDecompositionIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(20)
		agnostic := make([]float64, n)
		intensity := make([]float64, n+10)
		var total float64
		for i := range agnostic {
			agnostic[i] = float64(r.Intn(5))
			total += agnostic[i]
		}
		for i := range intensity {
			intensity[i] = 50 + r.Float64()*700
		}
		// Build an aware timeline with the same total work, shifted later.
		aware := make([]float64, n+10)
		remaining := total
		for i := 0; i < len(aware) && remaining > 0; i++ {
			u := math.Min(remaining, float64(r.Intn(4)))
			aware[i] = u
			remaining -= u
		}
		if remaining > 0 {
			aware[len(aware)-1] += remaining
		}
		d := DecomposeSavings(agnostic, aware, intensity)
		lhs := d.W * (d.SMinus - d.SPlus - d.CTail)
		return math.Abs(lhs-d.Savings) < 1e-6*(1+math.Abs(d.Savings))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPsiWithinBounds(t *testing.T) {
	f := func(rawG, rawL, rawU, rawR float64) bool {
		g := math.Mod(math.Abs(rawG), 1)
		l := 1 + math.Mod(math.Abs(rawL), 700)
		u := l + math.Mod(math.Abs(rawU), 700)
		p, err := NewPsi(g, l, u)
		if err != nil {
			return false
		}
		v := p.Value(math.Mod(math.Abs(rawR), 1))
		return v >= l-1e-9 && v <= u+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParallelismLimitBounds(t *testing.T) {
	f := func(rawG, rawC float64, rawP uint8) bool {
		g := math.Mod(math.Abs(rawG), 1)
		p, err := NewPsi(g, 100, 700)
		if err != nil {
			return false
		}
		planned := int(rawP%64) + 1
		lim := p.ParallelismLimit(planned, math.Mod(math.Abs(rawC), 900))
		return lim >= 1 && lim <= planned
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDeferralFraction(t *testing.T) {
	if got := DeferralFraction(0, 100); got != 0 {
		t.Fatalf("D(0 work) = %v", got)
	}
	if got := DeferralFraction(50, 100); got != 0.5 {
		t.Fatalf("D = %v, want 0.5", got)
	}
	if got := DeferralFraction(500, 100); got != 1 {
		t.Fatalf("D not clamped: %v", got)
	}
	if got := DeferralFraction(5, 0); got != 0 {
		t.Fatalf("D with zero total = %v", got)
	}
}

func BenchmarkPsiValue(b *testing.B) {
	p, err := NewPsi(0.5, 130, 765)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Value(float64(i%100) / 100)
	}
}

func TestCorollaryEstimators(t *testing.T) {
	// B.1: baseline 80% busy, PCAPS throttled to 30% at c=500 on K=100:
	// savings = (0.8−0.3)·100·500.
	if got := AvgSavingsPCAPS(100, 0.8, 0.3, 500); got != 0.5*100*500 {
		t.Fatalf("AvgSavingsPCAPS = %v", got)
	}
	// Inputs are clamped to [0,1].
	if got := AvgSavingsPCAPS(100, 1.5, -0.2, 100); got != 1.0*100*100 {
		t.Fatalf("clamped AvgSavingsPCAPS = %v", got)
	}
	// B.2: exact and threshold-bound forms.
	exact, lower := AvgSavingsCAP(100, 40, 0.9, 0.8, 500, 450)
	wantDiff := 0.9*100 - 0.8*40
	if math.Abs(exact-wantDiff*500) > 1e-9 || math.Abs(lower-wantDiff*450) > 1e-9 {
		t.Fatalf("AvgSavingsCAP = %v, %v", exact, lower)
	}
}

func TestUtilizationFromUsage(t *testing.T) {
	// 2 intervals of 60 s on K=4: 120 and 240 busy exec-seconds.
	got := UtilizationFromUsage([]float64{120, 240}, 60, 4)
	want := (120 + 240.0) / (2 * 60 * 4)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("UtilizationFromUsage = %v, want %v", got, want)
	}
	if UtilizationFromUsage(nil, 60, 4) != 0 {
		t.Fatal("empty usage utilization != 0")
	}
	if UtilizationFromUsage([]float64{1}, 0, 4) != 0 {
		t.Fatal("zero interval utilization != 0")
	}
}

func TestConditionalUtilization(t *testing.T) {
	usage := []float64{60, 120, 240, 0}
	intensity := []float64{100, 500, 500, 100}
	// High-carbon intervals (≥400): indices 1 and 2.
	got := ConditionalUtilization(usage, intensity, 60, 4, 400, math.Inf(1))
	want := (120 + 240.0) / (2 * 60 * 4)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ConditionalUtilization(high) = %v, want %v", got, want)
	}
	// Low-carbon intervals: indices 0 and 3.
	got = ConditionalUtilization(usage, intensity, 60, 4, 0, 400)
	want = (60 + 0.0) / (2 * 60 * 4)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ConditionalUtilization(low) = %v, want %v", got, want)
	}
	if ConditionalUtilization(usage, intensity, 60, 4, 900, 1000) != 0 {
		t.Fatal("empty band utilization != 0")
	}
}

package core

// This file implements the analytical quantities of §3 and Appendix B:
// the carbon-savings decomposition of Theorems 4.4 and 4.6 and the
// deferral fraction D(γ,c) that parameterizes PCAPS's carbon stretch
// factor. The decompositions operate on per-carbon-interval executor
// usage timelines, matching the discretized time model of Appendix B.1.2.

// SavingsDecomposition is the per-job (or per-experiment) decomposition of
// carbon savings into the weighted average intensities of Theorem 4.4:
//
//	savings = W · (s₋ − s₊ − c_tail)
//
// where W is the excess work the carbon-aware schedule completes after the
// agnostic schedule has finished, s₋ the average intensity of deferred
// work, s₊ the average intensity of opportunistically pulled-forward work,
// and c_tail the average intensity of the make-up work after time T.
type SavingsDecomposition struct {
	// W is the excess work in executor-intervals: Σ max(E^AG−E^CA, 0)
	// over the agnostic schedule's lifetime [0, T].
	W float64
	// SMinus is s₋: avoided-emission weighted average intensity.
	SMinus float64
	// SPlus is s₊: extra-emission weighted average intensity from
	// intervals where the carbon-aware schedule used more machines.
	SPlus float64
	// CTail is c_{(T,T')}: weighted average intensity of the work the
	// carbon-aware schedule performs after the agnostic one finished.
	CTail float64
	// AgnosticEmissions and AwareEmissions are the raw totals
	// Σ E_t·c_t for each schedule (executor-interval·gCO2eq/kWh units).
	AgnosticEmissions, AwareEmissions float64
	// Savings is AgnosticEmissions − AwareEmissions, which equals
	// W·(SMinus − SPlus − CTail) by Theorem 4.4 (verified in tests).
	Savings float64
}

// DecomposeSavings computes the Theorem 4.4 decomposition from two usage
// timelines: agnostic[i] and aware[i] are the (possibly fractional) number
// of busy executors during carbon interval i, and intensity[i] is c_i.
// Timelines may have different lengths; missing entries are zero usage.
// Theorem 4.6 (CAP) is the special case where aware never exceeds
// agnostic before T, making SPlus zero.
//
//pcaps:hotpath
func DecomposeSavings(agnostic, aware, intensity []float64) SavingsDecomposition {
	var d SavingsDecomposition
	at := func(xs []float64, i int) float64 {
		if i < len(xs) {
			return xs[i]
		}
		return 0
	}
	ci := func(i int) float64 {
		if len(intensity) == 0 {
			return 0
		}
		if i < len(intensity) {
			return intensity[i]
		}
		return intensity[len(intensity)-1]
	}
	// T is the last interval in which the agnostic schedule works.
	t := -1
	for i := range agnostic {
		if agnostic[i] > 0 {
			t = i
		}
	}
	n := len(agnostic)
	if len(aware) > n {
		n = len(aware)
	}
	var savedNum, extraNum, tailNum float64
	for i := 0; i < n; i++ {
		ag, ca, c := at(agnostic, i), at(aware, i), ci(i)
		d.AgnosticEmissions += ag * c
		d.AwareEmissions += ca * c
		if i <= t {
			if ag >= ca {
				d.W += ag - ca
				savedNum += (ag - ca) * c
			} else {
				extraNum += (ca - ag) * c
			}
		} else {
			tailNum += ca * c
		}
	}
	if d.W > 0 {
		d.SMinus = savedNum / d.W
		d.SPlus = extraNum / d.W
		d.CTail = tailNum / d.W
	}
	d.Savings = d.AgnosticEmissions - d.AwareEmissions
	return d
}

// DeferralFraction estimates D(γ,c) (Theorem 4.3): the fraction of the
// job's total runtime that was deferred by PCAPS's filter, measured as
// deferred work over OPT₁ = total work. Clamped to [0, 1] as in the paper
// (D ≤ 1 for any γ; D(0,c) = 0 because a γ=0 filter admits everything).
//
//pcaps:hotpath
func DeferralFraction(deferredWork, totalWork float64) float64 {
	if totalWork <= 0 || deferredWork <= 0 {
		return 0
	}
	d := deferredWork / totalWork
	if d > 1 {
		d = 1
	}
	return d
}

package core

import (
	"math"

	"pcaps/internal/ksearch"
)

// CAP is the Carbon-Aware Provisioning module (§4.2): a time-varying
// resource quota derived from repeated rounds of (K−B)-search that can wrap
// any carbon-agnostic scheduler. It owns no scheduling policy — the cluster
// loop consults Quota before admitting new assignments and never preempts
// running work when the quota drops.
type CAP struct {
	th *ksearch.Thresholds
	// minSeen tracks M(B,c), the minimum quota set so far, for the
	// carbon stretch factor of Theorem 4.5.
	minSeen int
}

// NewCAP builds the provisioner for a cluster of k machines with minimum
// quota b and forecast carbon bounds l ≤ u.
func NewCAP(k, b int, l, u float64) (*CAP, error) {
	th, err := ksearch.NewThresholds(k, b, l, u)
	if err != nil {
		return nil, err
	}
	return &CAP{th: th, minSeen: k}, nil
}

// K returns the cluster size the provisioner was built for.
func (c *CAP) K() int { return c.th.K }

// B returns the minimum quota floor.
func (c *CAP) B() int { return c.th.B }

// Thresholds exposes the underlying k-search threshold set.
func (c *CAP) Thresholds() *ksearch.Thresholds { return c.th }

// Quota returns the machine quota r(t) for the current carbon intensity
// and records it for MinQuotaSeen. The quota is enforced without
// preemption: callers only gate *new* assignments on it.
//
//pcaps:hotpath
func (c *CAP) Quota(carbon float64) int {
	q := c.th.Quota(carbon)
	if q < c.minSeen {
		c.minSeen = q
	}
	return q
}

// MinQuotaSeen returns M(B,c) over all Quota calls so far.
func (c *CAP) MinQuotaSeen() int { return c.minSeen }

// ParallelismLimit scales an underlying scheduler's per-stage parallelism
// limit by the quota ratio (§5.1): P' = ⌈P · r(t)/K⌉, clamped to [1, P].
//
//pcaps:hotpath
func (c *CAP) ParallelismLimit(planned int, carbon float64) int {
	if planned <= 1 {
		return 1
	}
	lim := int(math.Ceil(float64(planned) * float64(c.th.Quota(carbon)) / float64(c.th.K)))
	if lim < 1 {
		lim = 1
	}
	if lim > planned {
		lim = planned
	}
	return lim
}

// CAPStretchFactor is Theorem 4.5: with minimum observed quota m on a
// K-machine cluster, CAP's carbon stretch factor is
// (K/m)² · (2m−1)/(2K−1).
func CAPStretchFactor(k, m int) float64 {
	if m < 1 {
		m = 1
	}
	if m > k {
		m = k
	}
	km := float64(k) / float64(m)
	return km * km * (2*float64(m) - 1) / (2*float64(k) - 1)
}

// PCAPSStretchFactor is Theorem 4.3: with deferral fraction d = D(γ,c) ∈
// [0,1] on a K-machine cluster, PCAPS's carbon stretch factor is
// 1 + dK/(2 − 1/K).
func PCAPSStretchFactor(k int, d float64) float64 {
	if d < 0 {
		d = 0
	}
	if d > 1 {
		d = 1
	}
	return 1 + d*float64(k)/(2-1/float64(k))
}

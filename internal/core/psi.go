// Package core implements the paper's primary contribution: the PCAPS
// carbon-awareness filter (§4.1), the CAP carbon-aware provisioner (§4.2),
// and the analytical quantities that characterize their carbon/completion-
// time trade-off (carbon stretch factor and carbon savings, §3 and
// Appendix B). The package is scheduler-agnostic: it supplies decision
// primitives that internal/sched and internal/sim wire into cluster loops.
package core

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by constructors in this package.
var (
	ErrBadGamma  = errors.New("core: gamma must be in [0, 1]")
	ErrBadBounds = errors.New("core: require 0 < L ≤ U")
)

// Psi is the paper's carbon- and importance-aware threshold function Ψγ
// (§4.1):
//
//	Ψγ(r) = (γL + (1−γ)U) + [U − (γL + (1−γ)U)] · (e^{γr} − 1)/(e^{γ} − 1)
//
// A sampled stage with relative importance r is scheduled iff
// Ψγ(r) ≥ c(t). γ = 0 recovers carbon-agnostic behaviour (Ψ ≡ U ≥ c(t)),
// γ = 1 is maximally carbon-aware for low-importance stages (Ψ₁(0) = L).
// The exponential dependence on r mirrors one-way-trading threshold
// design: high-importance (bottleneck) stages run at any carbon price,
// low-importance stages wait for prices near L.
type Psi struct {
	Gamma, L, U float64
	base        float64 // γL + (1−γ)U
	denom       float64 // e^γ − 1
}

// NewPsi validates parameters and precomputes constants.
func NewPsi(gamma, l, u float64) (*Psi, error) {
	if gamma < 0 || gamma > 1 || math.IsNaN(gamma) {
		return nil, fmt.Errorf("%w: %v", ErrBadGamma, gamma)
	}
	if !(l > 0) || !(u >= l) || math.IsNaN(u) || math.IsInf(u, 1) {
		return nil, fmt.Errorf("%w: L=%v U=%v", ErrBadBounds, l, u)
	}
	return &Psi{
		Gamma: gamma, L: l, U: u,
		base:  gamma*l + (1-gamma)*u,
		denom: math.Expm1(gamma),
	}, nil
}

// Value evaluates Ψγ(r). r is clamped to [0, 1]. For γ = 0 the expression
// is the constant U (its analytic limit), so carbon-agnostic behaviour is
// exact rather than a 0/0 artifact.
//
//pcaps:hotpath
func (p *Psi) Value(r float64) float64 {
	if r < 0 {
		r = 0
	} else if r > 1 {
		r = 1
	}
	if p.Gamma == 0 {
		return p.U
	}
	return p.base + (p.U-p.base)*math.Expm1(p.Gamma*r)/p.denom
}

// Admits reports whether a stage with relative importance r passes the
// carbon-awareness filter at carbon intensity c (Alg. 1 line 7, without
// the no-busy-machines liveness override, which is cluster state the
// caller owns).
//
//pcaps:hotpath
func (p *Psi) Admits(r, c float64) bool { return p.Value(r) >= c }

// ParallelismLimit returns PCAPS's carbon-scaled parallelism limit
// (§5.1): P' = ⌈P · min{exp(γ(L − c)·κ/(U − L)), 1 − γ}⌉, clamped to
// [1, P] so a scheduled stage always makes progress. When c is near L the
// limit is ⌈(1−γ)P⌉; as c grows it decays exponentially toward a single
// executor, matching the §5.1 description.
//
// Implementation note: the paper writes the exponent as γ(L−c) with c in
// raw gCO2eq/kWh. Taken literally, carbon excursions of hundreds of grams
// drive exp() to 0 for any γ > 0, pinning the limit at one executor on
// every real grid — which contradicts the small ECT impact the paper
// reports for mild γ (Fig. 7). We therefore normalize the excursion by
// the forecast range (κ = 4, so the scale spans e⁰..e^{−4γ} across
// [L, U]), preserving the stated endpoint behaviour on any grid.
//
//pcaps:hotpath
func (p *Psi) ParallelismLimit(planned int, c float64) int {
	if planned <= 1 {
		return 1
	}
	if p.Gamma == 0 {
		return planned
	}
	const kappa = 4
	x := 0.0 // normalized excursion (c − L)/(U − L) ∈ [0, 1]
	if p.U > p.L {
		x = math.Min(math.Max((c-p.L)/(p.U-p.L), 0), 1)
	}
	scale := math.Min(math.Exp(-p.Gamma*kappa*x), 1-p.Gamma)
	lim := int(math.Ceil(float64(planned) * scale))
	if lim < 1 {
		lim = 1
	}
	if lim > planned {
		lim = planned
	}
	return lim
}

// RelativeImportance computes r_{v,t} = p_v / max_u p_u (Def. 4.2) for the
// sampled index v within the probability vector probs. It returns 1 when
// the distribution is degenerate (empty, all-zero, or single-element), the
// convention of Def. 4.2 (|A_t| = 1 ⇒ importance 1), which also preserves
// the liveness of Alg. 1.
//
//pcaps:hotpath
func RelativeImportance(probs []float64, v int) float64 {
	if v < 0 || v >= len(probs) || len(probs) <= 1 {
		return 1
	}
	max := 0.0
	for _, p := range probs {
		if p > max {
			max = p
		}
	}
	if max <= 0 {
		return 1
	}
	r := probs[v] / max
	if r > 1 {
		r = 1
	}
	return r
}

// Package result is the typed artifact model shared by the experiment
// runners, the pcapsim CLI, and the carbonapi /v1/experiments service.
// Instead of printf'ing rows into an opaque string, runners build an
// Artifact out of structured blocks — Table (typed columns, per-row
// cells, paper-vs-measured pairs), Series (figure-shaped point data),
// and Text (free-form notes and ASCII decorations) — and pluggable
// renderers turn the same artifact into fixed-width text (byte-identical
// to the historical pcapsim output), JSON (the machine-readable contract
// served over HTTP and consumed by CI), or CSV. See DESIGN.md §4 for the
// renderer contract and versioning policy.
package result

import (
	"fmt"
	"strings"
)

// Kind types a table cell or column.
type Kind int

const (
	// KindString cells carry labels, policy names, and rendered strips.
	KindString Kind = iota
	// KindInt cells carry counts and sizes.
	KindInt
	// KindFloat cells carry measurements.
	KindFloat
)

// String implements fmt.Stringer; the names double as the JSON encoding.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

func kindFromString(s string) (Kind, error) {
	switch s {
	case "string":
		return KindString, nil
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	}
	return 0, fmt.Errorf("result: unknown cell kind %q", s)
}

// Cell is one typed table value.
type Cell struct {
	Kind Kind
	S    string
	I    int64
	F    float64
}

// Str builds a string cell.
func Str(s string) Cell { return Cell{Kind: KindString, S: s} }

// Int builds an integer cell.
func Int(i int) Cell { return Cell{Kind: KindInt, I: int64(i)} }

// Float builds a float cell.
func Float(f float64) Cell { return Cell{Kind: KindFloat, F: f} }

// arg returns the cell's value for fmt formatting.
func (c Cell) arg() any {
	switch c.Kind {
	case KindInt:
		return c.I
	case KindFloat:
		return c.F
	default:
		return c.S
	}
}

// Column describes one typed table column. Name is the machine-readable
// key JSON and CSV emit; the remaining fields are display hints that let
// the text renderer reproduce the historical fixed-width output exactly.
type Column struct {
	Name string
	Kind Kind
	// Prec is the number of decimal places the value is displayed with
	// (a precision hint for structured renderers); 0 means unspecified,
	// in which case CSV emits the shortest round-trip representation.
	Prec int
	// Header is the column's display heading; HeaderFormat is the fmt
	// verb that positions it, including any literal separator text (e.g.
	// " %9s"). An empty HeaderFormat contributes nothing to the header
	// line — composite paper-vs-measured columns share one heading.
	Header       string
	HeaderFormat string
	// Format is the fmt verb the text renderer applies to each cell,
	// including any literal separator text (e.g. " %9.0f", "/%.3f").
	Format string
}

// Block is one renderable unit of an artifact: *Table, *Series, or *Text.
type Block interface {
	// blockType is the JSON discriminator ("table", "series", "text").
	blockType() string
	// appendText renders the block's fixed-width text form.
	appendText(b *strings.Builder)
}

// Table is a typed row/column block. Rows may be ragged: a row shorter
// than Columns simply omits its trailing cells (used when an optional
// measurement, such as a KDE fit, did not materialize).
type Table struct {
	Name    string
	Columns []Column
	Rows    [][]Cell
}

// Row appends one row and returns the table for chaining.
func (t *Table) Row(cells ...Cell) *Table {
	t.Rows = append(t.Rows, cells)
	return t
}

func (t *Table) blockType() string { return "table" }

func (t *Table) appendText(b *strings.Builder) {
	header := false
	for _, c := range t.Columns {
		if c.HeaderFormat != "" {
			header = true
			fmt.Fprintf(b, c.HeaderFormat, c.Header)
		}
	}
	if header {
		b.WriteString("\n")
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i >= len(t.Columns) {
				break
			}
			fmt.Fprintf(b, t.Columns[i].Format, cell.arg())
		}
		b.WriteString("\n")
	}
}

// Point is one series sample: an x coordinate and one y value per
// YLabels entry.
type Point struct {
	X float64
	Y []float64
}

// Series is figure-shaped data: labeled points in paper-axis order. The
// text fields are display hints; a Series with an empty PointFormat is a
// data-only block that contributes nothing to the text rendering (the
// figure's numbers travel in JSON/CSV while the text keeps its
// historical summary form).
type Series struct {
	Name    string
	XLabel  string
	YLabels []string
	Points  []Point
	// Prefix and Suffix are literal text emitted around the points.
	Prefix, Suffix string
	// PointFormat is the fmt verb applied per rendered point; WithX
	// prepends the x coordinate to the format arguments.
	PointFormat string
	WithX       bool
	// Every renders only every n-th point (0 or 1 renders all).
	Every int
}

// Point appends one sample and returns the series for chaining.
func (s *Series) Point(x float64, ys ...float64) *Series {
	s.Points = append(s.Points, Point{X: x, Y: ys})
	return s
}

func (s *Series) blockType() string { return "series" }

func (s *Series) appendText(b *strings.Builder) {
	b.WriteString(s.Prefix)
	if s.PointFormat != "" {
		every := s.Every
		if every <= 0 {
			every = 1
		}
		for i, p := range s.Points {
			if i%every != 0 {
				continue
			}
			args := make([]any, 0, 1+len(p.Y))
			if s.WithX {
				args = append(args, p.X)
			}
			for _, y := range p.Y {
				args = append(args, y)
			}
			fmt.Fprintf(b, s.PointFormat, args...)
		}
	}
	b.WriteString(s.Suffix)
}

// Text is a literal block: notes, paper comparisons, sparklines, and
// occupancy strips — presentation the structured blocks do not model.
type Text struct {
	Body string
}

func (t *Text) blockType() string { return "text" }

func (t *Text) appendText(b *strings.Builder) { b.WriteString(t.Body) }

// Artifact is one experiment's typed result: identity plus an ordered
// block list. Renderers consume it without re-running anything.
type Artifact struct {
	ID     string
	Title  string
	Blocks []Block
}

// New returns an empty artifact; runners append blocks and the
// experiments registry stamps ID and Title.
func New() *Artifact { return &Artifact{} }

// Add appends a block and returns the artifact for chaining.
func (a *Artifact) Add(b Block) *Artifact {
	a.Blocks = append(a.Blocks, b)
	return a
}

// Textf appends formatted literal text, merging into a trailing Text
// block so consecutive notes form one block.
func (a *Artifact) Textf(format string, args ...any) *Artifact {
	s := fmt.Sprintf(format, args...)
	if n := len(a.Blocks); n > 0 {
		if t, ok := a.Blocks[n-1].(*Text); ok {
			t.Body += s
			return a
		}
	}
	return a.Add(&Text{Body: s})
}

// Body renders the artifact's blocks as fixed-width text, without the
// "== id: title ==" banner.
func (a *Artifact) Body() string {
	var b strings.Builder
	for _, blk := range a.Blocks {
		blk.appendText(&b)
	}
	return b.String()
}

package result

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
)

// The JSON encoding is the artifact's wire form: /v1/experiments/{id}
// serves it, `pcapsim -format json` emits it, and CI parses it. Blocks
// are discriminated by a "type" field; cells travel as raw JSON values
// typed by their column (so a decoded artifact deep-equals the one
// encoded). Display hints (formats, prefixes) are carried too, which
// lets a client re-render the exact fixed-width text locally from the
// structured payload alone.

type jsonColumn struct {
	Name         string `json:"name"`
	Kind         string `json:"kind"`
	Prec         int    `json:"prec,omitempty"`
	Header       string `json:"header,omitempty"`
	HeaderFormat string `json:"header_format,omitempty"`
	Format       string `json:"format,omitempty"`
}

type jsonTable struct {
	Type    string       `json:"type"`
	Name    string       `json:"name,omitempty"`
	Columns []jsonColumn `json:"columns"`
	Rows    [][]any      `json:"rows"`
}

type jsonPoint struct {
	X float64   `json:"x"`
	Y []float64 `json:"y"`
}

type jsonSeries struct {
	Type        string      `json:"type"`
	Name        string      `json:"name,omitempty"`
	XLabel      string      `json:"x_label,omitempty"`
	YLabels     []string    `json:"y_labels,omitempty"`
	Points      []jsonPoint `json:"points"`
	Prefix      string      `json:"prefix,omitempty"`
	Suffix      string      `json:"suffix,omitempty"`
	PointFormat string      `json:"point_format,omitempty"`
	WithX       bool        `json:"with_x,omitempty"`
	Every       int         `json:"every,omitempty"`
}

type jsonText struct {
	Type string `json:"type"`
	Body string `json:"body"`
}

type jsonArtifact struct {
	ID     string            `json:"id"`
	Title  string            `json:"title"`
	Blocks []json.RawMessage `json:"blocks"`
}

// MarshalJSON implements json.Marshaler.
func (a *Artifact) MarshalJSON() ([]byte, error) {
	out := jsonArtifact{ID: a.ID, Title: a.Title}
	for _, blk := range a.Blocks {
		var v any
		switch b := blk.(type) {
		case *Table:
			jt := jsonTable{Type: b.blockType(), Name: b.Name}
			for _, c := range b.Columns {
				jt.Columns = append(jt.Columns, jsonColumn{
					Name: c.Name, Kind: c.Kind.String(), Prec: c.Prec,
					Header: c.Header, HeaderFormat: c.HeaderFormat, Format: c.Format,
				})
			}
			for _, row := range b.Rows {
				vals := make([]any, len(row))
				for i, cell := range row {
					vals[i] = cell.arg()
				}
				jt.Rows = append(jt.Rows, vals)
			}
			if jt.Rows == nil {
				jt.Rows = [][]any{}
			}
			v = jt
		case *Series:
			js := jsonSeries{
				Type: b.blockType(), Name: b.Name, XLabel: b.XLabel, YLabels: b.YLabels,
				Prefix: b.Prefix, Suffix: b.Suffix,
				PointFormat: b.PointFormat, WithX: b.WithX, Every: b.Every,
			}
			for _, p := range b.Points {
				y := p.Y
				if y == nil {
					y = []float64{}
				}
				js.Points = append(js.Points, jsonPoint{X: p.X, Y: y})
			}
			if js.Points == nil {
				js.Points = []jsonPoint{}
			}
			v = js
		case *Text:
			v = jsonText{Type: b.blockType(), Body: b.Body}
		default:
			return nil, fmt.Errorf("result: cannot encode block type %T", blk)
		}
		raw, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		out.Blocks = append(out.Blocks, raw)
	}
	if out.Blocks == nil {
		out.Blocks = []json.RawMessage{}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, re-typing cells from their
// column declarations so the decoded artifact deep-equals the encoded
// one.
func (a *Artifact) UnmarshalJSON(data []byte) error {
	var in jsonArtifact
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	a.ID, a.Title, a.Blocks = in.ID, in.Title, nil
	for i, raw := range in.Blocks {
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return fmt.Errorf("result: block %d: %w", i, err)
		}
		switch head.Type {
		case "table":
			var jt jsonTable
			// Decode through json.Number: a plain Unmarshal would hand
			// decodeCell float64s, silently rounding integer cells above
			// 2^53 before the exactness check can see them.
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.UseNumber()
			if err := dec.Decode(&jt); err != nil {
				return fmt.Errorf("result: block %d: %w", i, err)
			}
			t := &Table{Name: jt.Name}
			for _, c := range jt.Columns {
				k, err := kindFromString(c.Kind)
				if err != nil {
					return fmt.Errorf("result: block %d, column %q: %w", i, c.Name, err)
				}
				t.Columns = append(t.Columns, Column{
					Name: c.Name, Kind: k, Prec: c.Prec,
					Header: c.Header, HeaderFormat: c.HeaderFormat, Format: c.Format,
				})
			}
			if err := decodeRows(t, jt.Rows); err != nil {
				return fmt.Errorf("result: block %d: %w", i, err)
			}
			a.Blocks = append(a.Blocks, t)
		case "series":
			var js jsonSeries
			if err := json.Unmarshal(raw, &js); err != nil {
				return fmt.Errorf("result: block %d: %w", i, err)
			}
			s := &Series{
				Name: js.Name, XLabel: js.XLabel, YLabels: js.YLabels,
				Prefix: js.Prefix, Suffix: js.Suffix,
				PointFormat: js.PointFormat, WithX: js.WithX, Every: js.Every,
			}
			for _, p := range js.Points {
				s.Point(p.X, p.Y...)
			}
			a.Blocks = append(a.Blocks, s)
		case "text":
			var jt jsonText
			if err := json.Unmarshal(raw, &jt); err != nil {
				return fmt.Errorf("result: block %d: %w", i, err)
			}
			a.Blocks = append(a.Blocks, &Text{Body: jt.Body})
		default:
			return fmt.Errorf("result: block %d: unknown type %q", i, head.Type)
		}
	}
	return nil
}

// decodeRows re-types raw row values against the table's columns. Cells
// are decoded through json.Number so integer columns keep exact 64-bit
// values and float columns round-trip bit-identically.
func decodeRows(t *Table, rows [][]any) error {
	for ri, row := range rows {
		cells := make([]Cell, len(row))
		for ci, v := range row {
			if ci >= len(t.Columns) {
				return fmt.Errorf("row %d has %d cells for %d columns", ri, len(row), len(t.Columns))
			}
			cell, err := decodeCell(t.Columns[ci].Kind, v)
			if err != nil {
				return fmt.Errorf("row %d, column %q: %w", ri, t.Columns[ci].Name, err)
			}
			cells[ci] = cell
		}
		t.Rows = append(t.Rows, cells)
	}
	return nil
}

func decodeCell(k Kind, v any) (Cell, error) {
	switch k {
	case KindString:
		s, ok := v.(string)
		if !ok {
			return Cell{}, fmt.Errorf("want string, got %T", v)
		}
		return Str(s), nil
	case KindInt:
		f, ok := v.(float64)
		if ok && f == float64(int64(f)) {
			return Cell{Kind: KindInt, I: int64(f)}, nil
		}
		if n, ok := v.(json.Number); ok {
			i, err := strconv.ParseInt(n.String(), 10, 64)
			if err != nil {
				return Cell{}, err
			}
			return Cell{Kind: KindInt, I: i}, nil
		}
		return Cell{}, fmt.Errorf("want integer, got %T(%v)", v, v)
	case KindFloat:
		switch n := v.(type) {
		case float64:
			return Float(n), nil
		case json.Number:
			f, err := n.Float64()
			if err != nil {
				return Cell{}, err
			}
			return Float(f), nil
		}
		return Cell{}, fmt.Errorf("want number, got %T", v)
	}
	return Cell{}, fmt.Errorf("unknown kind %v", k)
}

package result

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Renderer turns an artifact into one output format. Implementations
// must be pure functions of the artifact: rendering never re-runs an
// experiment, and rendering the same artifact twice yields identical
// bytes (the property pcapsim's determinism guarantee reduces to).
type Renderer interface {
	// Name is the -format flag value selecting this renderer.
	Name() string
	// Ext is the file extension -out uses, without the dot.
	Ext() string
	// Render serializes the artifact.
	Render(a *Artifact) ([]byte, error)
}

// TextRenderer emits the historical fixed-width report: a banner line
// followed by each block's text form. It is byte-identical to the
// pre-result printf output (pinned by the experiments golden test).
type TextRenderer struct{}

// Name implements Renderer.
func (TextRenderer) Name() string { return "text" }

// Ext implements Renderer.
func (TextRenderer) Ext() string { return "txt" }

// Render implements Renderer; it never fails.
func (TextRenderer) Render(a *Artifact) ([]byte, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", a.ID, a.Title)
	body := a.Body()
	b.WriteString(body)
	if !strings.HasSuffix(body, "\n") {
		b.WriteString("\n")
	}
	return []byte(b.String()), nil
}

// JSONRenderer emits the wire encoding of json.go, indented, one
// document per artifact (a -exp all stream is a concatenation of
// documents, which jq and json.Decoder both consume).
type JSONRenderer struct{}

// Name implements Renderer.
func (JSONRenderer) Name() string { return "json" }

// Ext implements Renderer.
func (JSONRenderer) Ext() string { return "json" }

// Render implements Renderer.
func (JSONRenderer) Render(a *Artifact) ([]byte, error) {
	out, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CSVRenderer emits the artifact's data blocks as CSV sections: each
// table or series starts with a single-field "#table <name>" or
// "#series <name>" marker record, followed by a header record (column
// names / axis labels) and the data records. Text blocks carry no data
// and are skipped. Floats use a column's Prec when set, otherwise the
// shortest round-trip representation.
type CSVRenderer struct{}

// Name implements Renderer.
func (CSVRenderer) Name() string { return "csv" }

// Ext implements Renderer.
func (CSVRenderer) Ext() string { return "csv" }

// Render implements Renderer.
func (CSVRenderer) Render(a *Artifact) ([]byte, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	for bi, blk := range a.Blocks {
		switch b := blk.(type) {
		case *Table:
			if err := w.Write([]string{"#table " + blockName(b.Name, bi)}); err != nil {
				return nil, err
			}
			header := make([]string, len(b.Columns))
			for i, c := range b.Columns {
				header[i] = blockName(c.Name, i)
			}
			if err := w.Write(header); err != nil {
				return nil, err
			}
			for _, row := range b.Rows {
				rec := make([]string, len(row))
				for i, cell := range row {
					rec[i] = csvCell(cell, b.Columns[i])
				}
				if err := w.Write(rec); err != nil {
					return nil, err
				}
			}
		case *Series:
			if err := w.Write([]string{"#series " + blockName(b.Name, bi)}); err != nil {
				return nil, err
			}
			header := []string{blockName(b.XLabel, 0)}
			if b.XLabel == "" {
				header[0] = "x"
			}
			for i, y := range b.YLabels {
				if y == "" {
					y = fmt.Sprintf("y%d", i)
				}
				header = append(header, y)
			}
			if err := w.Write(header); err != nil {
				return nil, err
			}
			for _, p := range b.Points {
				rec := []string{formatFloat(p.X, 0)}
				for _, y := range p.Y {
					rec = append(rec, formatFloat(y, 0))
				}
				if err := w.Write(rec); err != nil {
					return nil, err
				}
			}
		case *Text:
			// Presentation-only; no data to export.
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func blockName(name string, i int) string {
	if name == "" {
		return fmt.Sprintf("col%d", i)
	}
	return name
}

func csvCell(c Cell, col Column) string {
	switch c.Kind {
	case KindInt:
		return strconv.FormatInt(c.I, 10)
	case KindFloat:
		return formatFloat(c.F, col.Prec)
	default:
		return c.S
	}
}

func formatFloat(f float64, prec int) string {
	if prec > 0 {
		return strconv.FormatFloat(f, 'f', prec, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// renderers is the registry -format resolves against.
var renderers = map[string]Renderer{
	"text": TextRenderer{},
	"json": JSONRenderer{},
	"csv":  CSVRenderer{},
}

// RendererFor resolves a -format flag value.
func RendererFor(name string) (Renderer, error) {
	r, ok := renderers[name]
	if !ok {
		return nil, fmt.Errorf("result: unknown format %q (have %s)", name, strings.Join(Formats(), ", "))
	}
	return r, nil
}

// Formats lists the registered renderer names, sorted.
func Formats() []string {
	out := make([]string, 0, len(renderers))
	for n := range renderers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package result

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func sampleArtifact() *Artifact {
	t := &Table{
		Name: "summary",
		Columns: []Column{
			{Name: "scheduler", Kind: KindString, Header: "scheduler", HeaderFormat: "%-14s", Format: "%-14s"},
			{Name: "co2_reduction_pct", Kind: KindFloat, Prec: 1, Header: "CO2 red.", HeaderFormat: " %13s", Format: " %12.1f%%"},
			{Name: "trials", Kind: KindInt, Header: "n", HeaderFormat: " %4s", Format: " %4d"},
		},
	}
	t.Row(Str("FIFO"), Float(0), Int(3))
	t.Row(Str("PCAPS"), Float(39.65), Int(3))
	s := &Series{
		Name: "frontier", XLabel: "relative_ect", YLabels: []string{"carbon_reduction_pct"},
		Prefix: "points:\n", PointFormat: "  (%.3f, %5.1f)", WithX: true, Suffix: "\n",
	}
	s.Point(1.006, 23.4).Point(1.024, 48.625)
	a := New().Add(t).Add(s)
	a.Textf("paper: PCAPS 39.7%%\n")
	a.ID, a.Title = "sample", "round-trip sample"
	return a
}

func TestJSONRoundTrip(t *testing.T) {
	a := sampleArtifact()
	enc, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, &back) {
		t.Fatalf("round trip diverged:\n in: %#v\nout: %#v", a, &back)
	}
	// Re-encoding the decoded artifact must reproduce the wire bytes.
	enc2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Fatalf("re-encoded bytes differ:\n%s\n%s", enc, enc2)
	}
	// The display hints travel with the payload, so a decoded artifact
	// re-renders the identical text.
	if a.Body() != back.Body() {
		t.Fatalf("decoded body differs:\n%q\n%q", a.Body(), back.Body())
	}
}

func TestTextRenderer(t *testing.T) {
	out, err := TextRenderer{}.Render(sampleArtifact())
	if err != nil {
		t.Fatal(err)
	}
	got := string(out)
	want := "== sample: round-trip sample ==\n" +
		"scheduler           CO2 red.    n\n" +
		"FIFO                    0.0%    3\n" +
		"PCAPS                  39.6%    3\n" +
		"points:\n" +
		"  (1.006,  23.4)  (1.024,  48.6)\n" +
		"paper: PCAPS 39.7%\n"
	if got != want {
		t.Fatalf("text rendering:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestCSVRenderer(t *testing.T) {
	out, err := CSVRenderer{}.Render(sampleArtifact())
	if err != nil {
		t.Fatal(err)
	}
	got := string(out)
	for _, needle := range []string{
		"#table summary\n",
		"scheduler,co2_reduction_pct,trials\n",
		"PCAPS,39.6,3\n", // Prec 1 rounds the display hint into the CSV
		"#series frontier\n",
		"relative_ect,carbon_reduction_pct\n",
		"1.024,48.625\n", // series values keep full precision
	} {
		if !strings.Contains(got, needle) {
			t.Fatalf("CSV missing %q:\n%s", needle, got)
		}
	}
	if strings.Contains(got, "paper:") {
		t.Fatalf("CSV leaked a text block:\n%s", got)
	}
}

func TestRaggedRows(t *testing.T) {
	tb := &Table{Columns: []Column{
		{Name: "name", Kind: KindString, Format: "%-6s"},
		{Name: "kde", Kind: KindFloat, Format: " kde=%.2f"},
	}}
	tb.Row(Str("full"), Float(1.5))
	tb.Row(Str("bare")) // optional measurement absent
	a := New().Add(tb)
	a.ID, a.Title = "ragged", "ragged rows"
	if got := a.Body(); got != "full   kde=1.50\nbare  \n" {
		t.Fatalf("ragged body %q", got)
	}
	enc, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, &back) {
		t.Fatalf("ragged round trip diverged")
	}
}

// TestJSONRoundTripLargeInt pins the exact-64-bit contract: integer
// cells above 2^53 (where float64 rounds) must survive encode→decode
// bit-for-bit.
func TestJSONRoundTripLargeInt(t *testing.T) {
	const big = int64(9007199254740993) // 2^53 + 1
	tb := &Table{Columns: []Column{{Name: "n", Kind: KindInt, Format: "%d"}}}
	tb.Rows = append(tb.Rows, []Cell{{Kind: KindInt, I: big}})
	a := New().Add(tb)
	a.ID, a.Title = "big", "large int"
	enc, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	got := back.Blocks[0].(*Table).Rows[0][0].I
	if got != big {
		t.Fatalf("large int decoded to %d, want %d", got, big)
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"unknown block type": `{"id":"x","title":"t","blocks":[{"type":"chart"}]}`,
		"unknown cell kind":  `{"id":"x","title":"t","blocks":[{"type":"table","columns":[{"name":"a","kind":"bool"}],"rows":[]}]}`,
		"cell/column excess": `{"id":"x","title":"t","blocks":[{"type":"table","columns":[{"name":"a","kind":"int"}],"rows":[[1,2]]}]}`,
		"non-integer int":    `{"id":"x","title":"t","blocks":[{"type":"table","columns":[{"name":"a","kind":"int"}],"rows":[[1.5]]}]}`,
		"string as float":    `{"id":"x","title":"t","blocks":[{"type":"table","columns":[{"name":"a","kind":"float"}],"rows":[["no"]]}]}`,
	}
	for name, raw := range cases {
		var a Artifact
		if err := json.Unmarshal([]byte(raw), &a); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRendererRegistry(t *testing.T) {
	if got := Formats(); !reflect.DeepEqual(got, []string{"csv", "json", "text"}) {
		t.Fatalf("Formats = %v", got)
	}
	for _, name := range Formats() {
		r, err := RendererFor(name)
		if err != nil {
			t.Fatal(err)
		}
		if r.Name() != name || r.Ext() == "" {
			t.Fatalf("renderer %q: Name=%q Ext=%q", name, r.Name(), r.Ext())
		}
	}
	if _, err := RendererFor("xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// Package workload synthesizes the data processing workloads of the
// paper's evaluation (§6.1): TPC-H-like query DAGs at 2/10/50 GB scales
// and Alibaba-production-like DAGs with power-law durations, submitted
// with Poisson interarrival times.
//
// The generators are the substitution documented in DESIGN.md for the real
// TPC-H binaries and the Alibaba cluster-trace-v2018: they reproduce the
// published shape statistics — TPC-H mean single-executor durations of
// 180 s / 386 s / 1,261 s for the three scales, Alibaba DAGs averaging 66
// nodes with a power-law total-duration distribution whose scaled mean is
// ≈133 s — while remaining deterministic under a seed.
//
// All times are in the experiment's real-time seconds: one carbon-trace
// interval (60 s) corresponds to one grid-hour, per the paper's
// 1-real-minute = 1-grid-hour scaling.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"pcaps/internal/arrivals"
	"pcaps/internal/dag"
)

// TPC-H scale factors used in the paper, in GB.
const (
	Scale2GB  = 2
	Scale10GB = 10
	Scale50GB = 50
)

// tpchMeanWork maps scale → mean total work in executor-seconds (§6.1).
var tpchMeanWork = map[int]float64{
	Scale2GB:  180,
	Scale10GB: 386,
	Scale50GB: 1261,
}

// tpchTasksPerScan maps scale → partition count for scan stages.
var tpchTasksPerScan = map[int]int{
	Scale2GB:  8,
	Scale10GB: 16,
	Scale50GB: 32,
}

// NumTPCHQueries is the number of distinct query templates (TPC-H has 22).
const NumTPCHQueries = 22

// tpchWeight returns the deterministic per-query work multiplier. Weights
// span roughly [0.4, 2.4] and average 1 across the 22 templates, mimicking
// the heavy spread of real TPC-H query costs.
func tpchWeight(q int) float64 {
	const phi = 0.618033988749895
	f := math.Mod(float64(q)*phi, 1) // low-discrepancy in [0,1)
	w := 0.4 + 2.0*f
	return w / 1.3909 // empirical mean of the 22 raw weights
}

// TPCHQuery builds the DAG for query template q (0..21) at the given scale
// in GB, assigning the result job ID and arrival time 0. The shape is
// deterministic per (q, scale): a fixed number of scan roots feeding a
// binary join tree and a short aggregation chain, the canonical Spark plan
// shape for TPC-H SQL.
func TPCHQuery(q, scale, jobID int) (*dag.Job, error) {
	meanWork, ok := tpchMeanWork[scale]
	if !ok {
		return nil, fmt.Errorf("workload: unsupported TPC-H scale %dGB", scale)
	}
	q = ((q % NumTPCHQueries) + NumTPCHQueries) % NumTPCHQueries
	totalWork := meanWork * tpchWeight(q)
	// Shape parameters vary deterministically with the template index.
	nScans := 2 + q%4    // 2..5 table scans
	nAggs := 1 + (q/4)%3 // 1..3 aggregation stages
	scanTasks := tpchTasksPerScan[scale]

	b := dag.NewBuilder(jobID, fmt.Sprintf("tpch-q%02d-%dg", q+1, scale))
	// Work split: scans 50%, joins 35%, aggregations 15%.
	scanWork := totalWork * 0.50 / float64(nScans)
	var scans []int
	for i := 0; i < nScans; i++ {
		scans = append(scans, b.Stage(fmt.Sprintf("scan%d", i), scanTasks, scanWork/float64(scanTasks)))
	}
	// Binary join tree over the scans.
	nJoins := nScans - 1
	joinWork := totalWork * 0.35 / float64(nJoins)
	joinTasks := scanTasks / 2
	if joinTasks < 1 {
		joinTasks = 1
	}
	frontier := scans
	for len(frontier) > 1 {
		var next []int
		for i := 0; i+1 < len(frontier); i += 2 {
			j := b.Stage("join", joinTasks, joinWork/float64(joinTasks))
			b.Edge(frontier[i], j)
			b.Edge(frontier[i+1], j)
			next = append(next, j)
		}
		if len(frontier)%2 == 1 {
			next = append(next, frontier[len(frontier)-1])
		}
		frontier = next
	}
	// Aggregation chain with shrinking parallelism.
	aggWork := totalWork * 0.15 / float64(nAggs)
	prev := frontier[0]
	for i := 0; i < nAggs; i++ {
		tasks := joinTasks >> uint(i+1)
		if tasks < 1 {
			tasks = 1
		}
		a := b.Stage(fmt.Sprintf("agg%d", i), tasks, aggWork/float64(tasks))
		b.Edge(prev, a)
		prev = a
	}
	return b.Build()
}

// TPCH samples a uniformly random query template and scale from the three
// paper scales.
func TPCH(r *rand.Rand, jobID int) *dag.Job {
	scales := []int{Scale2GB, Scale10GB, Scale50GB}
	j, err := TPCHQuery(r.Intn(NumTPCHQueries), scales[r.Intn(len(scales))], jobID)
	if err != nil {
		panic(err) // unreachable: inputs drawn from valid sets
	}
	return j
}

// AlibabaMeanWork is the scaled mean total duration of an Alibaba DAG:
// 7,989 s ÷ 60 ≈ 133 s (§6.1).
const AlibabaMeanWork = 7989.0 / 60

// AlibabaMeanNodes is the published mean DAG size.
const AlibabaMeanNodes = 66

// Alibaba generates one production-like DAG: a layered graph with
// power-law total work (Pareto tail, many short DAGs and few long ones)
// and ~66 stages on average.
func Alibaba(r *rand.Rand, jobID int) *dag.Job {
	// Pareto(α, xm) with α = 1.8 has mean α·xm/(α−1); choose xm to hit
	// AlibabaMeanWork, and cap the tail at 40× the mean so a single
	// monster job cannot dominate a whole experiment.
	const alpha = 1.8
	xm := AlibabaMeanWork * (alpha - 1) / alpha
	work := xm / math.Pow(1-r.Float64(), 1/alpha)
	if max := 40 * AlibabaMeanWork; work > max {
		work = max
	}

	// Node count concentrates near the mean with geometric spread.
	n := 5 + int(r.ExpFloat64()*float64(AlibabaMeanNodes-5))
	if n > 300 {
		n = 300
	}

	// Layered topology: chains dominate, with fan-out/fan-in mixers.
	layers := 3 + r.Intn(10)
	if layers > n {
		layers = n
	}
	b := dag.NewBuilder(jobID, fmt.Sprintf("alibaba-%d", jobID))
	// Distribute stages across layers (each layer ≥ 1 stage).
	layerOf := make([]int, n)
	for i := 0; i < n; i++ {
		if i < layers {
			layerOf[i] = i
		} else {
			layerOf[i] = r.Intn(layers)
		}
	}
	// Per-stage work shares (Dirichlet-ish via exponential draws).
	shares := make([]float64, n)
	var shareSum float64
	for i := range shares {
		shares[i] = r.ExpFloat64() + 0.05
		shareSum += shares[i]
	}
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		stWork := work * shares[i] / shareSum
		tasks := 1 + r.Intn(8)
		ids[i] = b.Stage(fmt.Sprintf("s%d", i), tasks, stWork/float64(tasks))
	}
	// Edges: every stage in layer ℓ > 0 gets 1..3 parents from earlier
	// layers (biased to the previous layer, Alibaba DAGs are chain-heavy).
	byLayer := make([][]int, layers)
	for i, id := range ids {
		byLayer[layerOf[i]] = append(byLayer[layerOf[i]], id)
	}
	var earlier []int
	for l := 0; l < layers; l++ {
		if l > 0 && len(byLayer[l]) > 0 {
			prev := byLayer[l-1]
			for _, id := range byLayer[l] {
				nParents := 1 + r.Intn(3)
				seen := map[int]bool{}
				for p := 0; p < nParents; p++ {
					var parent int
					if len(prev) > 0 && r.Float64() < 0.7 {
						parent = prev[r.Intn(len(prev))]
					} else {
						parent = earlier[r.Intn(len(earlier))]
					}
					if !seen[parent] {
						seen[parent] = true
						b.Edge(parent, id)
					}
				}
			}
		}
		earlier = append(earlier, byLayer[l]...)
	}
	j, err := b.Build()
	if err != nil {
		panic(err) // unreachable: layered construction is acyclic
	}
	return j
}

// Mix selects the workload family for Batch.
type Mix int

const (
	// MixTPCH draws all jobs from the TPC-H templates.
	MixTPCH Mix = iota
	// MixAlibaba draws all jobs from the Alibaba generator.
	MixAlibaba
	// MixBoth alternates families 50/50, as in the prototype trials.
	MixBoth
)

// String implements fmt.Stringer.
func (m Mix) String() string {
	switch m {
	case MixTPCH:
		return "tpch"
	case MixAlibaba:
		return "alibaba"
	case MixBoth:
		return "both"
	}
	return fmt.Sprintf("mix(%d)", int(m))
}

// BatchConfig parameterizes Batch.
type BatchConfig struct {
	// N is the number of jobs.
	N int
	// MeanInterarrival is the Poisson process's mean gap in seconds
	// (the paper's default is 30).
	MeanInterarrival float64
	// Mix selects the workload family.
	Mix Mix
	// Seed makes the batch reproducible.
	Seed int64
}

// Batch generates a continuously arriving batch of jobs: job IDs 0..N−1
// with exponential interarrival gaps — the paper's workload shape. It
// is a thin wrapper over Generate with a Poisson arrival process; the
// draw interleaving (job i's shape draws, then its gap draw) is
// identical, so batches are byte-for-byte the historical ones.
func Batch(cfg BatchConfig) []*dag.Job {
	mean := cfg.MeanInterarrival
	if mean <= 0 {
		mean = arrivals.DefaultPoissonMeanSec
	}
	jobs, err := Generate(GenConfig{
		N:        cfg.N,
		Arrivals: arrivals.Poisson{MeanSec: mean},
		Mix:      cfg.Mix,
		Seed:     cfg.Seed,
	})
	if err != nil {
		panic(err) // unreachable: Poisson is open-ended and classless
	}
	return jobs
}

// Class describes one heterogeneous job class: a named DAG family with
// an arrival weight and a work scale, so one batch can mix short
// interactive queries with heavy production DAGs.
type Class struct {
	// Name labels the class (job.Class, schedule CSV class column).
	Name string
	// Mix selects the class's DAG family.
	Mix Mix
	// Weight is the class's relative arrival share; classes are drawn
	// proportionally to their weights. Must be positive.
	Weight float64
	// WorkScale multiplies every stage duration of the class's jobs
	// (0 selects 1, the family's published scale).
	WorkScale float64
}

// GenConfig parameterizes Generate, the arrival-process-driven batch
// generator.
type GenConfig struct {
	// N is the number of jobs.
	N int
	// Arrivals is the open-loop arrival process; nil selects the
	// paper's Poisson at the 30-second mean.
	Arrivals arrivals.Process
	// Mix selects the workload family for homogeneous batches (Classes
	// empty).
	Mix Mix
	// Classes, when non-empty, makes the batch heterogeneous: each
	// arrival draws a class by weight (or takes the class the arrival
	// schedule names) and builds that class's DAG shape.
	Classes []Class
	// Seed makes the batch reproducible. Every stochastic choice —
	// DAG shapes, class picks, and the arrival process's draws — comes
	// from this one seeded stream.
	Seed int64
}

// fromMix draws one job of the given family — the historical Batch
// dispatch, byte-identical in its RNG consumption.
func fromMix(mix Mix, r *rand.Rand, id int) *dag.Job {
	switch mix {
	case MixAlibaba:
		return Alibaba(r, id)
	case MixBoth:
		if id%2 == 0 {
			return TPCH(r, id)
		}
		return Alibaba(r, id)
	default:
		return TPCH(r, id)
	}
}

// Generate builds a batch of jobs whose arrival times come from an
// arrival process and whose shapes come from a workload mix or a
// heterogeneous class set. Job IDs are 0..N−1 in arrival order.
//
// Generate is the materializing wrapper over Source: it drains a fresh
// source into a slice, so the batch is byte-for-byte what streaming
// consumers observe job by job.
//
// Errors are configuration errors: a finite schedule shorter than N, a
// schedule class label naming no declared class, or a non-positive
// class weight.
func Generate(cfg GenConfig) ([]*dag.Job, error) {
	src, err := NewSource(cfg)
	if err != nil {
		return nil, err
	}
	jobs := make([]*dag.Job, 0, cfg.N)
	for {
		j, err := src.Next()
		if err != nil {
			return nil, err
		}
		if j == nil {
			return jobs, nil
		}
		jobs = append(jobs, j)
	}
}

// TotalWork sums the batch's work in executor-seconds.
func TotalWork(jobs []*dag.Job) float64 {
	var w float64
	for _, j := range jobs {
		w += j.TotalWork()
	}
	return w
}

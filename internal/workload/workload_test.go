package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTPCHQueryValid(t *testing.T) {
	for q := 0; q < NumTPCHQueries; q++ {
		for _, scale := range []int{Scale2GB, Scale10GB, Scale50GB} {
			j, err := TPCHQuery(q, scale, 0)
			if err != nil {
				t.Fatalf("q%d %dGB: %v", q, scale, err)
			}
			if err := j.Validate(); err != nil {
				t.Fatalf("q%d %dGB invalid: %v", q, scale, err)
			}
			if len(j.Roots()) < 2 {
				t.Fatalf("q%d: want ≥2 scan roots, got %d", q, len(j.Roots()))
			}
			if len(j.Leaves()) != 1 {
				t.Fatalf("q%d: want single sink, got %d", q, len(j.Leaves()))
			}
		}
	}
}

func TestTPCHQueryDeterministic(t *testing.T) {
	a, _ := TPCHQuery(7, Scale10GB, 1)
	b, _ := TPCHQuery(7, Scale10GB, 2)
	if len(a.Stages) != len(b.Stages) || a.TotalWork() != b.TotalWork() {
		t.Fatal("same template differs across builds")
	}
}

func TestTPCHQueryBadScale(t *testing.T) {
	if _, err := TPCHQuery(0, 7, 0); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestTPCHMeanWorkMatchesPaper(t *testing.T) {
	// Mean total work across the 22 templates must match the published
	// single-executor durations within 5% for every scale.
	for scale, want := range tpchMeanWork {
		var sum float64
		for q := 0; q < NumTPCHQueries; q++ {
			j, err := TPCHQuery(q, scale, 0)
			if err != nil {
				t.Fatal(err)
			}
			sum += j.TotalWork()
		}
		mean := sum / NumTPCHQueries
		if math.Abs(mean-want) > 0.05*want {
			t.Fatalf("scale %dGB: mean work %v, want ≈%v", scale, mean, want)
		}
	}
}

func TestTPCHWorkSpread(t *testing.T) {
	// Queries must differ in cost (the paper's workloads are skewed).
	lo, hi := math.Inf(1), math.Inf(-1)
	for q := 0; q < NumTPCHQueries; q++ {
		j, _ := TPCHQuery(q, Scale10GB, 0)
		lo = math.Min(lo, j.TotalWork())
		hi = math.Max(hi, j.TotalWork())
	}
	if hi < 2*lo {
		t.Fatalf("work spread too flat: [%v, %v]", lo, hi)
	}
}

func TestAlibabaShapeStatistics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	const n = 3000
	var workSum, nodeSum float64
	var over2x int
	for i := 0; i < n; i++ {
		j := Alibaba(r, i)
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		workSum += j.TotalWork()
		nodeSum += float64(len(j.Stages))
		if j.TotalWork() > 2*AlibabaMeanWork {
			over2x++
		}
	}
	meanWork := workSum / n
	if math.Abs(meanWork-AlibabaMeanWork) > 0.25*AlibabaMeanWork {
		t.Fatalf("mean work %v, want ≈%v", meanWork, AlibabaMeanWork)
	}
	meanNodes := nodeSum / n
	if meanNodes < 40 || meanNodes > 95 {
		t.Fatalf("mean nodes %v, want ≈%d", meanNodes, AlibabaMeanNodes)
	}
	// Power law: a clear minority of jobs carry > 2× mean work.
	frac := float64(over2x) / n
	if frac < 0.02 || frac > 0.35 {
		t.Fatalf("heavy-tail fraction %v implausible for a power law", frac)
	}
}

func TestBatchArrivalsMonotone(t *testing.T) {
	jobs := Batch(BatchConfig{N: 50, MeanInterarrival: 30, Mix: MixTPCH, Seed: 1})
	if len(jobs) != 50 {
		t.Fatalf("len = %d", len(jobs))
	}
	if jobs[0].Arrival != 0 {
		t.Fatalf("first arrival = %v", jobs[0].Arrival)
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Arrival < jobs[i-1].Arrival {
			t.Fatalf("arrivals not monotone at %d", i)
		}
		if jobs[i].ID != i {
			t.Fatalf("job IDs not dense at %d", i)
		}
	}
}

func TestBatchMeanInterarrival(t *testing.T) {
	jobs := Batch(BatchConfig{N: 4000, MeanInterarrival: 30, Mix: MixTPCH, Seed: 5})
	gap := jobs[len(jobs)-1].Arrival / float64(len(jobs)-1)
	if math.Abs(gap-30) > 3 {
		t.Fatalf("mean interarrival %v, want ≈30", gap)
	}
}

func TestBatchDeterministic(t *testing.T) {
	a := Batch(BatchConfig{N: 20, Mix: MixBoth, Seed: 3})
	b := Batch(BatchConfig{N: 20, Mix: MixBoth, Seed: 3})
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].TotalWork() != b[i].TotalWork() {
			t.Fatalf("batch not deterministic at job %d", i)
		}
	}
	c := Batch(BatchConfig{N: 20, Mix: MixBoth, Seed: 4})
	if a[5].TotalWork() == c[5].TotalWork() && a[7].Arrival == c[7].Arrival {
		t.Fatal("different seeds produced identical batches")
	}
}

func TestBatchMixes(t *testing.T) {
	for _, mix := range []Mix{MixTPCH, MixAlibaba, MixBoth} {
		jobs := Batch(BatchConfig{N: 10, Mix: mix, Seed: 2})
		for _, j := range jobs {
			if err := j.Validate(); err != nil {
				t.Fatalf("mix %v job %d: %v", mix, j.ID, err)
			}
		}
	}
	if MixTPCH.String() != "tpch" || MixBoth.String() != "both" || MixAlibaba.String() != "alibaba" {
		t.Fatal("Mix.String broken")
	}
}

func TestTotalWork(t *testing.T) {
	jobs := Batch(BatchConfig{N: 5, Mix: MixTPCH, Seed: 9})
	var want float64
	for _, j := range jobs {
		want += j.TotalWork()
	}
	if got := TotalWork(jobs); got != want {
		t.Fatalf("TotalWork = %v, want %v", got, want)
	}
}

func TestQuickAlibabaAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		j := Alibaba(r, 0)
		return j.Validate() == nil && j.TotalWork() > 0 && len(j.Roots()) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTPCHQuery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TPCHQuery(i%NumTPCHQueries, Scale10GB, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlibaba(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Alibaba(r, i)
	}
}

package workload

import (
	"fmt"
	"math"
	"math/rand"

	"pcaps/internal/arrivals"
	"pcaps/internal/dag"
)

// Source yields the jobs of a generated batch one at a time, in arrival
// order, without materializing the batch: the lazy form of Generate for
// the hyperscale streaming engine (sim.RunStream). Configuration errors
// surface at NewSource; a schedule label naming no declared class — only
// detectable at its arrival — surfaces from the failing Next.
//
// The draw interleaving per job (class pick, then shape draws, then the
// arrival process's gap draw) is exactly Generate's, from the same
// single seeded stream, so draining a Source reproduces the materialized
// batch byte for byte — Generate itself is a loop over one.
type Source struct {
	cfg         GenConfig
	proc        arrivals.Process
	classed     arrivals.Classed
	byName      map[string]int
	totalWeight float64
	r           *rand.Rand
	t           float64
	i           int
}

// NewSource validates the configuration and positions a fresh source at
// the first arrival.
func NewSource(cfg GenConfig) (*Source, error) {
	proc := cfg.Arrivals
	if proc == nil {
		proc = arrivals.Poisson{MeanSec: arrivals.DefaultPoissonMeanSec}
	}
	if f, ok := proc.(arrivals.Finite); ok && cfg.N > f.Len() {
		return nil, fmt.Errorf("workload: batch of %d jobs exceeds the %d-arrival schedule", cfg.N, f.Len())
	}
	byName := make(map[string]int, len(cfg.Classes))
	var totalWeight float64
	for i, c := range cfg.Classes {
		if c.Weight <= 0 || math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0) {
			return nil, fmt.Errorf("workload: class %q weight %v is not positive", c.Name, c.Weight)
		}
		if _, dup := byName[c.Name]; dup {
			return nil, fmt.Errorf("workload: duplicate class name %q", c.Name)
		}
		byName[c.Name] = i
		totalWeight += c.Weight
	}
	classed, _ := proc.(arrivals.Classed)
	s := &Source{
		cfg:         cfg,
		proc:        proc,
		classed:     classed,
		byName:      byName,
		totalWeight: totalWeight,
		r:           rand.New(rand.NewSource(cfg.Seed)),
	}
	if a, ok := proc.(arrivals.Anchored); ok {
		s.t = a.Start()
	}
	return s, nil
}

// Next builds and returns the next job, or (nil, nil) once N jobs have
// been yielded. Each returned job is freshly built and owned by the
// caller.
func (s *Source) Next() (*dag.Job, error) {
	if s.i >= s.cfg.N {
		return nil, nil
	}
	i := s.i
	var j *dag.Job
	if len(s.cfg.Classes) == 0 {
		j = fromMix(s.cfg.Mix, s.r, i)
	} else {
		ci := -1
		if s.classed != nil {
			if label := s.classed.ClassAt(i); label != "" {
				idx, ok := s.byName[label]
				if !ok {
					return nil, fmt.Errorf("workload: schedule arrival %d names unknown class %q", i, label)
				}
				ci = idx
			}
		}
		if ci < 0 {
			// Weighted class pick; the draw precedes the job's shape
			// draws so a schedule with partial labels stays replayable.
			u := s.r.Float64() * s.totalWeight
			for k := range s.cfg.Classes {
				u -= s.cfg.Classes[k].Weight
				ci = k
				if u < 0 {
					break
				}
			}
		}
		c := s.cfg.Classes[ci]
		j = fromMix(c.Mix, s.r, i)
		j.Class = c.Name
		if c.WorkScale > 0 && c.WorkScale != 1 {
			for _, st := range j.Stages {
				st.TaskDuration *= c.WorkScale
			}
		}
	}
	j.Arrival = s.t
	s.t += s.proc.Gap(i, s.t, s.r)
	s.i++
	return j, nil
}

package workload

import (
	"math"
	"testing"

	"pcaps/internal/arrivals"
)

// TestGenerateMatchesBatch pins the byte-identity contract: Generate
// with an explicit Poisson process is the exact historical Batch — same
// shapes, same arrival times, for every mix.
func TestGenerateMatchesBatch(t *testing.T) {
	for _, mix := range []Mix{MixTPCH, MixAlibaba, MixBoth} {
		legacy := Batch(BatchConfig{N: 60, MeanInterarrival: 30, Mix: mix, Seed: 7})
		got, err := Generate(GenConfig{
			N:        60,
			Arrivals: arrivals.Poisson{MeanSec: 30},
			Mix:      mix,
			Seed:     7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(legacy) {
			t.Fatalf("mix %v: %d jobs vs %d", mix, len(got), len(legacy))
		}
		for i := range got {
			if got[i].Arrival != legacy[i].Arrival {
				t.Fatalf("mix %v job %d: arrival %v vs %v", mix, i, got[i].Arrival, legacy[i].Arrival)
			}
			if got[i].Name != legacy[i].Name || got[i].TotalWork() != legacy[i].TotalWork() {
				t.Fatalf("mix %v job %d: shape differs (%s/%v vs %s/%v)",
					mix, i, got[i].Name, got[i].TotalWork(), legacy[i].Name, legacy[i].TotalWork())
			}
			if got[i].Class != "" {
				t.Fatalf("mix %v job %d: homogeneous batch tagged class %q", mix, i, got[i].Class)
			}
		}
	}
}

func TestGenerateNilArrivalsDefaultsToPoisson(t *testing.T) {
	got, err := Generate(GenConfig{N: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := Batch(BatchConfig{N: 20, Seed: 3})
	for i := range got {
		if got[i].Arrival != want[i].Arrival {
			t.Fatalf("job %d: arrival %v vs %v", i, got[i].Arrival, want[i].Arrival)
		}
	}
}

func TestGenerateClasses(t *testing.T) {
	classes := []Class{
		{Name: "interactive", Mix: MixTPCH, Weight: 3, WorkScale: 0.25},
		{Name: "production", Mix: MixAlibaba, Weight: 1, WorkScale: 2},
	}
	jobs, err := Generate(GenConfig{N: 400, Classes: classes, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, j := range jobs {
		counts[j.Class]++
	}
	if len(counts) != 2 {
		t.Fatalf("classes drawn: %v", counts)
	}
	// 3:1 weights — the interactive share should be near 75%.
	share := float64(counts["interactive"]) / float64(len(jobs))
	if math.Abs(share-0.75) > 0.08 {
		t.Fatalf("interactive share %.2f, want ≈0.75 (counts %v)", share, counts)
	}

	// Determinism: identical config draws the identical class sequence.
	again, err := Generate(GenConfig{N: 400, Classes: classes, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Class != again[i].Class || jobs[i].Arrival != again[i].Arrival {
			t.Fatalf("job %d differs across identical seeds", i)
		}
	}
}

func TestGenerateWorkScale(t *testing.T) {
	base, err := Generate(GenConfig{N: 30, Classes: []Class{{Name: "c", Mix: MixTPCH, Weight: 1}}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := Generate(GenConfig{N: 30, Classes: []Class{{Name: "c", Mix: MixTPCH, Weight: 1, WorkScale: 2}}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		want := 2 * base[i].TotalWork()
		if math.Abs(scaled[i].TotalWork()-want) > 1e-9*want {
			t.Fatalf("job %d: scaled work %v, want %v", i, scaled[i].TotalWork(), want)
		}
	}
}

func TestGenerateScheduleClasses(t *testing.T) {
	proc := arrivals.Schedule{
		Times:   []float64{0, 10, 20, 30},
		Classes: []string{"a", "b", "", "a"},
	}
	classes := []Class{
		{Name: "a", Mix: MixTPCH, Weight: 1},
		{Name: "b", Mix: MixAlibaba, Weight: 1},
	}
	jobs, err := Generate(GenConfig{N: 4, Arrivals: proc, Classes: classes, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{0, 10, 20, 30} {
		if jobs[i].Arrival != want {
			t.Fatalf("job %d: arrival %v, want %v", i, jobs[i].Arrival, want)
		}
	}
	if jobs[0].Class != "a" || jobs[1].Class != "b" || jobs[3].Class != "a" {
		t.Fatalf("labeled arrivals took wrong classes: %q %q %q %q",
			jobs[0].Class, jobs[1].Class, jobs[2].Class, jobs[3].Class)
	}
	if jobs[2].Class != "a" && jobs[2].Class != "b" {
		t.Fatalf("unlabeled arrival drew class %q", jobs[2].Class)
	}
}

func TestGenerateErrors(t *testing.T) {
	short := arrivals.Schedule{Times: []float64{0, 1}}
	if _, err := Generate(GenConfig{N: 3, Arrivals: short, Seed: 1}); err == nil {
		t.Fatal("expected an error for a schedule shorter than N")
	}
	unknown := arrivals.Schedule{Times: []float64{0}, Classes: []string{"nope"}}
	if _, err := Generate(GenConfig{
		N: 1, Arrivals: unknown, Seed: 1,
		Classes: []Class{{Name: "a", Mix: MixTPCH, Weight: 1}},
	}); err == nil {
		t.Fatal("expected an error for an unknown schedule class label")
	}
	if _, err := Generate(GenConfig{
		N: 1, Seed: 1, Classes: []Class{{Name: "a", Mix: MixTPCH, Weight: 0}},
	}); err == nil {
		t.Fatal("expected an error for a zero class weight")
	}
	if _, err := Generate(GenConfig{
		N: 1, Seed: 1,
		Classes: []Class{{Name: "a", Mix: MixTPCH, Weight: 1}, {Name: "a", Mix: MixTPCH, Weight: 1}},
	}); err == nil {
		t.Fatal("expected an error for duplicate class names")
	}
}

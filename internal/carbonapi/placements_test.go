package carbonapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pcaps/internal/sim"
)

// stubPlacements lets the handler tests script backend behavior without
// restoring real snapshots.
type stubPlacements struct {
	fn func(req *PlacementRequest) ([]sim.Placement, error)
}

func (s stubPlacements) Place(_ context.Context, req *PlacementRequest) ([]sim.Placement, error) {
	return s.fn(req)
}

func postPlacementBody(t *testing.T, srv *httptest.Server, body string) (*http.Response, string) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/v1/placement", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}

func TestPlacementEnvelopes(t *testing.T) {
	decide := func(req *PlacementRequest) ([]sim.Placement, error) {
		n := 1
		if req.Policy == nil {
			n = len(req.Policies)
		}
		out := make([]sim.Placement, n)
		for i := range out {
			out[i] = sim.Placement{Scheduler: fmt.Sprintf("stub-%d", i), JobID: i}
		}
		return out, nil
	}
	srv := httptest.NewServer(NewServer(nil, WithPlacements(stubPlacements{decide})))
	defer srv.Close()

	// Single policy: the bare decision, no envelope.
	resp, body := postPlacementBody(t, srv, `{"policy":{"kind":"fifo"}}`)
	var single sim.Placement
	if err := json.Unmarshal([]byte(body), &single); err != nil {
		t.Fatalf("decode single: %v (%s)", err, body)
	}
	if resp.StatusCode != 200 || single.Scheduler != "stub-0" {
		t.Fatalf("single: status %d, decision %+v", resp.StatusCode, single)
	}

	// Batch: the decisions envelope, request order.
	resp, body = postPlacementBody(t, srv, `{"policies":[{"kind":"fifo"},{"kind":"decima"}]}`)
	var batch PlacementResponse
	if err := json.Unmarshal([]byte(body), &batch); err != nil {
		t.Fatalf("decode batch: %v (%s)", err, body)
	}
	if resp.StatusCode != 200 || len(batch.Decisions) != 2 ||
		batch.Decisions[0].Scheduler != "stub-0" || batch.Decisions[1].Scheduler != "stub-1" {
		t.Fatalf("batch: status %d, decisions %+v", resp.StatusCode, batch.Decisions)
	}
}

func TestPlacementErrorMapping(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		want   string
	}{
		{"invalid request is 400", fmt.Errorf("%w: policy.kind: nope", ErrInvalidPlacement), 400, "policy.kind: nope"},
		{"internal failure is 500", errors.New("disk on fire"), 500, "placing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(NewServer(nil, WithPlacements(stubPlacements{
				func(*PlacementRequest) ([]sim.Placement, error) { return nil, tc.err },
			})))
			defer srv.Close()
			resp, body := postPlacementBody(t, srv, `{"policy":{"kind":"fifo"}}`)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d (%s), want %d", resp.StatusCode, strings.TrimSpace(body), tc.status)
			}
			if !strings.Contains(body, tc.want) {
				t.Errorf("body %q missing %q", strings.TrimSpace(body), tc.want)
			}
		})
	}
}

// Package carbonapi implements the carbon-intensity service of the
// paper's prototype (§5.1, §6.3): an HTTP API that replays historical
// traces, standing in for Electricity Maps / WattTime, plus the client the
// schedulers' daemons poll. The server is stdlib net/http; responses are
// JSON. Endpoints:
//
//	GET /v1/grids                         → {"grids": ["PJM", ...]}
//	GET /v1/intensity?grid=DE&at=120      → current intensity at time 120 s
//	GET /v1/forecast?grid=DE&at=0&horizon=2880 → {low, high} bounds
//	GET /v1/trace?grid=DE&from=0&n=48     → a window of raw samples
//
// Times are experiment seconds (one trace interval = one grid-hour).
package carbonapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"sort"
	"strconv"

	"pcaps/internal/carbon"
)

// Server replays one or more traces over HTTP. The zero value is not
// usable; construct with NewServer.
type Server struct {
	traces map[string]*carbon.Trace
	mux    *http.ServeMux
}

// NewServer builds a server replaying the given traces, keyed by grid
// name.
func NewServer(traces map[string]*carbon.Trace) *Server {
	s := &Server{traces: traces, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/grids", s.handleGrids)
	s.mux.HandleFunc("/v1/intensity", s.handleIntensity)
	s.mux.HandleFunc("/v1/forecast", s.handleForecast)
	s.mux.HandleFunc("/v1/trace", s.handleTrace)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// IntensityResponse is the payload of /v1/intensity.
type IntensityResponse struct {
	Grid      string  `json:"grid"`
	At        float64 `json:"at_sec"`
	Intensity float64 `json:"intensity_gco2eq_kwh"`
	Interval  float64 `json:"interval_sec"`
}

// ForecastResponse is the payload of /v1/forecast: the (L, U) bounds the
// threshold designs consume.
type ForecastResponse struct {
	Grid    string  `json:"grid"`
	From    float64 `json:"from_sec"`
	Horizon float64 `json:"horizon_sec"`
	Low     float64 `json:"low_gco2eq_kwh"`
	High    float64 `json:"high_gco2eq_kwh"`
}

// TraceResponse is the payload of /v1/trace.
type TraceResponse struct {
	Grid     string    `json:"grid"`
	Interval float64   `json:"interval_sec"`
	From     int       `json:"from_index"`
	Values   []float64 `json:"values"`
}

func (s *Server) trace(w http.ResponseWriter, r *http.Request) (*carbon.Trace, string, bool) {
	grid := r.URL.Query().Get("grid")
	if grid == "" {
		http.Error(w, "missing grid parameter", http.StatusBadRequest)
		return nil, "", false
	}
	t, ok := s.traces[grid]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown grid %q", grid), http.StatusNotFound)
		return nil, "", false
	}
	return t, grid, true
}

func floatParam(r *http.Request, name string, def float64) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %w", name, err)
	}
	// ParseFloat accepts "NaN" and "Inf", which defeat range checks (NaN
	// comparisons are false) and int conversions downstream.
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("bad %s: non-finite value %v", name, v)
	}
	return v, nil
}

// writeJSON encodes v into a buffer before touching the ResponseWriter,
// so an encode failure (e.g. a non-finite float, which encoding/json
// rejects) becomes a logged 500 instead of a silent empty 200 body.
func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		log.Printf("carbonapi: encoding %T response: %v", v, err)
		http.Error(w, fmt.Sprintf("encoding response: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

func (s *Server) handleGrids(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(s.traces))
	for n := range s.traces {
		names = append(names, n)
	}
	sort.Strings(names)
	writeJSON(w, map[string][]string{"grids": names})
}

func (s *Server) handleIntensity(w http.ResponseWriter, r *http.Request) {
	t, grid, ok := s.trace(w, r)
	if !ok {
		return
	}
	at, err := floatParam(r, "at", 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, IntensityResponse{Grid: grid, At: at, Intensity: t.At(at), Interval: t.Interval})
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	t, grid, ok := s.trace(w, r)
	if !ok {
		return
	}
	at, err := floatParam(r, "at", 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	horizon, err := floatParam(r, "horizon", 48*t.Interval)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if horizon <= 0 {
		// A non-positive window would invert Trace.Bounds into
		// (+Inf, -Inf), which JSON cannot carry.
		http.Error(w, fmt.Sprintf("non-positive horizon %v", horizon), http.StatusBadRequest)
		return
	}
	// Clamp the window to the replayed trace so requests at or past the
	// trace end degenerate to the trace's final value instead of an
	// inverted scan.
	end := t.Duration()
	if at < 0 {
		at = 0
	}
	if at > end {
		at = end
	}
	if at+horizon > end {
		horizon = end - at
	}
	lo, hi := t.Bounds(at, horizon)
	writeJSON(w, ForecastResponse{Grid: grid, From: at, Horizon: horizon, Low: lo, High: hi})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	t, grid, ok := s.trace(w, r)
	if !ok {
		return
	}
	from, err := floatParam(r, "from", 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n, err := floatParam(r, "n", float64(len(t.Values)))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if n < 1 {
		http.Error(w, fmt.Sprintf("n must be at least 1, got %v", n), http.StatusBadRequest)
		return
	}
	// Clamp before converting: int(n) for n beyond MaxInt64 is
	// implementation-defined (MinInt64 on amd64) and would invert the
	// slice bounds below.
	if n > float64(len(t.Values)) {
		n = float64(len(t.Values))
	}
	i0 := t.Index(from)
	i1 := i0 + int(n)
	if i1 > len(t.Values) {
		i1 = len(t.Values)
	}
	writeJSON(w, TraceResponse{Grid: grid, Interval: t.Interval, From: i0, Values: t.Values[i0:i1]})
}

// Package carbonapi implements the carbon-intensity service of the
// paper's prototype (§5.1, §6.3): an HTTP API that replays historical
// traces, standing in for Electricity Maps / WattTime, plus the client the
// schedulers' daemons poll. The server is stdlib net/http; responses are
// JSON. Endpoints:
//
//	GET /v1/grids                         → {"grids": ["PJM", ...]}
//	GET /v1/intensity?grid=DE&at=120      → current intensity at time 120 s
//	GET /v1/forecast?grid=DE&at=0&horizon=2880 → {low, high} bounds
//	GET /v1/trace?grid=DE&from=0&n=48     → a window of raw samples
//	GET /v1/experiments                   → {"experiments": [{id, title}, ...]}
//	GET /v1/experiments/{id}              → run the artifact, structured JSON out
//	POST /v1/scenarios                    → validate + run a scenario spec (fast mode)
//	POST /v1/placement                    → one scheduling decision per policy on a snapshot
//
// The /v1/ prefix is the versioned surface: new endpoints appear only
// under it, and breaking changes would land under a /v2/ prefix instead
// of mutating /v1/ (DESIGN.md §4). The four trace endpoints predate the
// versioning and stay reachable unprefixed (/grids, /intensity,
// /forecast, /trace) for compatibility with existing pollers.
//
// The experiments endpoints are backed by a pluggable Experiments
// implementation (WithExperiments); without one they answer 404. The
// indirection keeps this package free of a dependency on the experiment
// runners, which themselves depend on this package's client.
//
// Times are experiment seconds (one trace interval = one grid-hour).
package carbonapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sort"
	"strconv"

	"pcaps/internal/carbon"
	"pcaps/internal/result"
)

// ExperimentInfo identifies one runnable experiment artifact.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// Experiments is the backend of the /v1/experiments endpoints: an
// artifact index plus on-demand execution. Implementations must be safe
// for concurrent Run calls — the server imposes no request serialization.
type Experiments interface {
	// List enumerates the runnable artifacts in stable order.
	List() []ExperimentInfo
	// Run executes one artifact and returns its structured result.
	Run(ctx context.Context, id string) (*result.Artifact, error)
}

// ErrInvalidScenario marks a scenario request the backend rejected
// before running anything (parse or validation failure); the handler
// answers 400 instead of 500 when a returned error wraps it.
var ErrInvalidScenario = errors.New("invalid scenario")

// Scenarios is the backend of POST /v1/scenarios: it parses, validates,
// and executes one user-supplied scenario spec (the declarative layer
// of internal/scenario — this package cannot import it, because the
// scenario compiler's carbonapi carbon source depends on this package's
// client; the indirection mirrors Experiments). Implementations must be
// safe for concurrent Run calls.
type Scenarios interface {
	// Run compiles and executes the raw spec document (JSON or the YAML
	// subset) and returns its artifact. Rejections wrap
	// ErrInvalidScenario.
	Run(ctx context.Context, spec []byte) (*result.Artifact, error)
}

// Server replays one or more traces over HTTP. The zero value is not
// usable; construct with NewServer.
type Server struct {
	traces      map[string]*carbon.Trace
	experiments Experiments
	scenarios   Scenarios
	placements  Placements
	mux         *http.ServeMux
}

// Option configures a Server.
type Option func(*Server)

// WithExperiments enables the /v1/experiments endpoints, backed by e
// (typically experiments.Service).
func WithExperiments(e Experiments) Option {
	return func(s *Server) { s.experiments = e }
}

// WithScenarios enables POST /v1/scenarios, backed by r (typically
// scenario.Service).
func WithScenarios(r Scenarios) Option {
	return func(s *Server) { s.scenarios = r }
}

// NewServer builds a server replaying the given traces, keyed by grid
// name.
func NewServer(traces map[string]*carbon.Trace, opts ...Option) *Server {
	s := &Server{traces: traces, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	// The four trace endpoints answer both versioned and (legacy)
	// unprefixed paths; the experiments and scenario services are
	// /v1/-only.
	for _, prefix := range []string{"/v1", ""} {
		s.mux.HandleFunc(prefix+"/grids", s.handleGrids)
		s.mux.HandleFunc(prefix+"/intensity", s.handleIntensity)
		s.mux.HandleFunc(prefix+"/forecast", s.handleForecast)
		s.mux.HandleFunc(prefix+"/trace", s.handleTrace)
	}
	s.mux.HandleFunc("/v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("/v1/experiments/{id}", s.handleExperimentRun)
	s.mux.HandleFunc("POST /v1/scenarios", s.handleScenarioRun)
	s.mux.HandleFunc("POST /v1/placement", s.handlePlacement)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// IntensityResponse is the payload of /v1/intensity.
type IntensityResponse struct {
	Grid      string  `json:"grid"`
	At        float64 `json:"at_sec"`
	Intensity float64 `json:"intensity_gco2eq_kwh"`
	Interval  float64 `json:"interval_sec"`
}

// ForecastResponse is the payload of /v1/forecast: the (L, U) bounds the
// threshold designs consume.
type ForecastResponse struct {
	Grid    string  `json:"grid"`
	From    float64 `json:"from_sec"`
	Horizon float64 `json:"horizon_sec"`
	Low     float64 `json:"low_gco2eq_kwh"`
	High    float64 `json:"high_gco2eq_kwh"`
}

// TraceResponse is the payload of /v1/trace.
type TraceResponse struct {
	Grid     string    `json:"grid"`
	Interval float64   `json:"interval_sec"`
	From     int       `json:"from_index"`
	Values   []float64 `json:"values"`
}

func (s *Server) trace(w http.ResponseWriter, r *http.Request) (*carbon.Trace, string, bool) {
	grid := r.URL.Query().Get("grid")
	if grid == "" {
		badRequest(w, badParam("grid", "missing parameter"))
		return nil, "", false
	}
	t, ok := s.traces[grid]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown grid %q", grid), http.StatusNotFound)
		return nil, "", false
	}
	return t, grid, true
}

func floatParam(r *http.Request, name string, def float64) (float64, *ParamError) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, badParam(name, "bad value %q", raw)
	}
	// ParseFloat accepts "NaN" and "Inf", which defeat range checks (NaN
	// comparisons are false) and int conversions downstream.
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, badParam(name, "non-finite value %v", v)
	}
	return v, nil
}

// writeJSON encodes v into a buffer before touching the ResponseWriter,
// so an encode failure (e.g. a non-finite float, which encoding/json
// rejects) becomes a logged 500 instead of a silent empty 200 body.
func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		log.Printf("carbonapi: encoding %T response: %v", v, err)
		http.Error(w, fmt.Sprintf("encoding response: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// ExperimentsResponse is the payload of /v1/experiments.
type ExperimentsResponse struct {
	Experiments []ExperimentInfo `json:"experiments"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	if s.experiments == nil {
		http.Error(w, "experiments service not enabled", http.StatusNotFound)
		return
	}
	infos := s.experiments.List()
	if infos == nil {
		infos = []ExperimentInfo{}
	}
	writeJSON(w, ExperimentsResponse{Experiments: infos})
}

func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	if s.experiments == nil {
		http.Error(w, "experiments service not enabled", http.StatusNotFound)
		return
	}
	id := r.PathValue("id")
	// Distinguish the 404 (unknown artifact) from a 500 (run failure)
	// via the index rather than error-string matching.
	known := false
	for _, info := range s.experiments.List() {
		if info.ID == id {
			known = true
			break
		}
	}
	if !known {
		http.Error(w, fmt.Sprintf("unknown experiment %q", id), http.StatusNotFound)
		return
	}
	art, err := s.experiments.Run(r.Context(), id)
	if err != nil {
		log.Printf("carbonapi: running experiment %q: %v", id, err)
		http.Error(w, fmt.Sprintf("running %q: %v", id, err), http.StatusInternalServerError)
		return
	}
	writeJSON(w, art)
}

// maxScenarioBytes bounds one POSTed spec document; real specs are a
// few kilobytes, so anything near the cap is a mistake or abuse.
const maxScenarioBytes = 1 << 20

func (s *Server) handleScenarioRun(w http.ResponseWriter, r *http.Request) {
	if s.scenarios == nil {
		http.Error(w, "scenario service not enabled", http.StatusNotFound)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxScenarioBytes+1))
	if err != nil {
		badRequest(w, badParam("body", "reading spec: %v", err))
		return
	}
	if len(body) > maxScenarioBytes {
		http.Error(w, fmt.Sprintf("spec exceeds %d bytes", maxScenarioBytes), http.StatusRequestEntityTooLarge)
		return
	}
	art, err := s.scenarios.Run(r.Context(), body)
	if err != nil {
		if errors.Is(err, ErrInvalidScenario) {
			badRequest(w, err)
			return
		}
		log.Printf("carbonapi: running scenario: %v", err)
		http.Error(w, fmt.Sprintf("running scenario: %v", err), http.StatusInternalServerError)
		return
	}
	writeJSON(w, art)
}

func (s *Server) handleGrids(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(s.traces))
	for n := range s.traces {
		names = append(names, n)
	}
	sort.Strings(names)
	writeJSON(w, map[string][]string{"grids": names})
}

func (s *Server) handleIntensity(w http.ResponseWriter, r *http.Request) {
	t, grid, ok := s.trace(w, r)
	if !ok {
		return
	}
	at, perr := floatParam(r, "at", 0)
	if perr != nil {
		badRequest(w, perr)
		return
	}
	writeJSON(w, IntensityResponse{Grid: grid, At: at, Intensity: t.At(at), Interval: t.Interval})
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	t, grid, ok := s.trace(w, r)
	if !ok {
		return
	}
	at, perr := floatParam(r, "at", 0)
	if perr != nil {
		badRequest(w, perr)
		return
	}
	horizon, perr := floatParam(r, "horizon", 48*t.Interval)
	if perr != nil {
		badRequest(w, perr)
		return
	}
	if horizon <= 0 {
		// A non-positive window would invert Trace.Bounds into
		// (+Inf, -Inf), which JSON cannot carry.
		badRequest(w, badParam("horizon", "non-positive horizon %v", horizon))
		return
	}
	// Clamp the window to the replayed trace so requests at or past the
	// trace end degenerate to the trace's final value instead of an
	// inverted scan.
	end := t.Duration()
	if at < 0 {
		at = 0
	}
	if at > end {
		at = end
	}
	if at+horizon > end {
		horizon = end - at
	}
	lo, hi := t.Bounds(at, horizon)
	writeJSON(w, ForecastResponse{Grid: grid, From: at, Horizon: horizon, Low: lo, High: hi})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	t, grid, ok := s.trace(w, r)
	if !ok {
		return
	}
	from, perr := floatParam(r, "from", 0)
	if perr != nil {
		badRequest(w, perr)
		return
	}
	n, perr := floatParam(r, "n", float64(len(t.Values)))
	if perr != nil {
		badRequest(w, perr)
		return
	}
	if n < 1 {
		badRequest(w, badParam("n", "must be at least 1, got %v", n))
		return
	}
	// Clamp before converting: int(n) for n beyond MaxInt64 is
	// implementation-defined (MinInt64 on amd64) and would invert the
	// slice bounds below.
	if n > float64(len(t.Values)) {
		n = float64(len(t.Values))
	}
	i0 := t.Index(from)
	i1 := i0 + int(n)
	if i1 > len(t.Values) {
		i1 = len(t.Values)
	}
	writeJSON(w, TraceResponse{Grid: grid, Interval: t.Interval, From: i0, Values: t.Values[i0:i1]})
}

package carbonapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pcaps/internal/carbon"
	"pcaps/internal/result"
)

// stubScenarios is an injectable Scenarios backend (the real one,
// scenario.Service, cannot be imported here — it depends on this
// package's client; its integration tests live in internal/scenario).
type stubScenarios struct {
	run func(ctx context.Context, spec []byte) (*result.Artifact, error)
}

func (s stubScenarios) Run(ctx context.Context, spec []byte) (*result.Artifact, error) {
	return s.run(ctx, spec)
}

func scenarioServer(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewServer(map[string]*carbon.Trace{}, opts...))
	t.Cleanup(srv.Close)
	return srv
}

func postScenario(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/scenarios", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestScenariosDisabled(t *testing.T) {
	srv := scenarioServer(t)
	if resp := postScenario(t, srv.URL, `{}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 when no backend is wired", resp.StatusCode)
	}
}

func TestScenariosMethodNotAllowed(t *testing.T) {
	srv := scenarioServer(t, WithScenarios(stubScenarios{
		run: func(context.Context, []byte) (*result.Artifact, error) { return &result.Artifact{}, nil },
	}))
	resp, err := http.Get(srv.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
}

func TestScenariosRunSuccess(t *testing.T) {
	art := &result.Artifact{ID: "user-spec", Title: "t"}
	var got []byte
	srv := scenarioServer(t, WithScenarios(stubScenarios{
		run: func(_ context.Context, spec []byte) (*result.Artifact, error) {
			got = append([]byte(nil), spec...)
			return art, nil
		},
	}))
	resp := postScenario(t, srv.URL, `{"name": "user-spec"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var decoded result.Artifact
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "user-spec" {
		t.Fatalf("artifact ID = %q", decoded.ID)
	}
	if string(got) != `{"name": "user-spec"}` {
		t.Fatalf("backend saw %q", got)
	}
}

func TestScenariosInvalidIs400(t *testing.T) {
	srv := scenarioServer(t, WithScenarios(stubScenarios{
		run: func(context.Context, []byte) (*result.Artifact, error) {
			return nil, fmt.Errorf("%w: scenario: workload.mix: empty workload", ErrInvalidScenario)
		},
	}))
	resp := postScenario(t, srv.URL, `{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "workload.mix") {
		t.Fatalf("400 body missing field name: %s", body)
	}
}

func TestScenariosRunFailureIs500(t *testing.T) {
	srv := scenarioServer(t, WithScenarios(stubScenarios{
		run: func(context.Context, []byte) (*result.Artifact, error) {
			return nil, errors.New("cluster exploded")
		},
	}))
	if resp := postScenario(t, srv.URL, `{}`); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
}

func TestScenariosOversizedSpecRejected(t *testing.T) {
	srv := scenarioServer(t, WithScenarios(stubScenarios{
		run: func(context.Context, []byte) (*result.Artifact, error) {
			t.Fatal("oversized spec reached the backend")
			return nil, nil
		},
	}))
	big := strings.Repeat("x", maxScenarioBytes+1)
	if resp := postScenario(t, srv.URL, big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

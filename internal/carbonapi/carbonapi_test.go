package carbonapi

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pcaps/internal/carbon"
)

func testServer(t *testing.T) (*httptest.Server, map[string]*carbon.Trace) {
	t.Helper()
	tr, err := carbon.New("DE", 60, []float64{400, 300, 200, 500})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := carbon.New("ZA", 60, []float64{700, 710})
	if err != nil {
		t.Fatal(err)
	}
	traces := map[string]*carbon.Trace{"DE": tr, "ZA": tr2}
	srv := httptest.NewServer(NewServer(traces))
	t.Cleanup(srv.Close)
	return srv, traces
}

func TestGrids(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	grids, err := c.Grids(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(grids) != 2 || grids[0] != "DE" || grids[1] != "ZA" {
		t.Fatalf("Grids = %v", grids)
	}
}

func TestIntensity(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	tests := []struct {
		at   float64
		want float64
	}{{0, 400}, {59, 400}, {60, 300}, {180, 500}, {1e6, 500}}
	for _, tt := range tests {
		got, err := c.Intensity(context.Background(), "DE", tt.at)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Fatalf("Intensity(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestForecast(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	lo, hi, err := c.Forecast(context.Background(), "DE", 0, 120)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 200 || hi != 400 {
		t.Fatalf("Forecast = %v, %v", lo, hi)
	}
}

func TestFetchTraceRoundTrip(t *testing.T) {
	srv, traces := testServer(t)
	c := NewClient(srv.URL)
	got, err := c.FetchTrace(context.Background(), "DE", 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Grid != "DE" || got.Interval != 60 {
		t.Fatalf("trace meta = %+v", got)
	}
	want := traces["DE"].Values[1:3]
	if len(got.Values) != 2 || got.Values[0] != want[0] || got.Values[1] != want[1] {
		t.Fatalf("values = %v, want %v", got.Values, want)
	}
}

func TestFetchTraceClampsWindow(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	got, err := c.FetchTrace(context.Background(), "ZA", 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != 2 {
		t.Fatalf("clamped window len = %d", len(got.Values))
	}
}

func TestErrorPaths(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	ctx := context.Background()
	if _, err := c.Intensity(ctx, "XX", 0); err == nil {
		t.Fatal("unknown grid accepted")
	}
	if _, err := c.Intensity(ctx, "", 0); err == nil {
		t.Fatal("missing grid accepted")
	}
	// Raw HTTP checks for malformed parameters.
	resp, err := http.Get(srv.URL + "/v1/intensity?grid=DE&at=abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad at param: status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/trace?grid=DE&n=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n param: status %d", resp.StatusCode)
	}
}

// TestForecastParamValidation covers the hardened /v1/forecast error
// paths: before validation, a non-positive horizon inverted Trace.Bounds
// into (+Inf, -Inf), json.Encoder refused the payload, and clients got
// an empty 200.
func TestForecastParamValidation(t *testing.T) {
	srv, _ := testServer(t) // DE = {400, 300, 200, 500} @ 60 s
	tests := []struct {
		name       string
		query      string
		wantStatus int
		wantBody   string // substring of the error body
		wantLo     float64
		wantHi     float64
	}{
		{name: "zero horizon", query: "grid=DE&horizon=0", wantStatus: 400, wantBody: "non-positive horizon"},
		{name: "negative horizon", query: "grid=DE&horizon=-60", wantStatus: 400, wantBody: "non-positive horizon"},
		{name: "bad at", query: "grid=DE&at=abc&horizon=60", wantStatus: 400, wantBody: "at: bad value"},
		{name: "bad horizon", query: "grid=DE&at=0&horizon=abc", wantStatus: 400, wantBody: "horizon: bad value"},
		{name: "NaN horizon", query: "grid=DE&horizon=NaN", wantStatus: 400, wantBody: "horizon: non-finite"},
		{name: "Inf at", query: "grid=DE&at=Inf&horizon=60", wantStatus: 400, wantBody: "at: non-finite"},
		{name: "unknown grid", query: "grid=XX&horizon=60", wantStatus: 404, wantBody: "unknown grid"},
		{name: "at past trace end clamps", query: "grid=DE&at=1e9&horizon=120", wantStatus: 200, wantLo: 500, wantHi: 500},
		{name: "negative at clamps", query: "grid=DE&at=-500&horizon=60", wantStatus: 200, wantLo: 300, wantHi: 400},
		{name: "horizon past end clamps", query: "grid=DE&at=180&horizon=1e12", wantStatus: 200, wantLo: 500, wantHi: 500},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, err := http.Get(srv.URL + "/v1/forecast?" + tt.query)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tt.wantStatus {
				t.Fatalf("status = %d, want %d (body %q)", resp.StatusCode, tt.wantStatus, body)
			}
			if len(body) == 0 {
				t.Fatal("empty response body")
			}
			if tt.wantStatus != http.StatusOK {
				if !strings.Contains(string(body), tt.wantBody) {
					t.Fatalf("body %q missing %q", body, tt.wantBody)
				}
				return
			}
			var out ForecastResponse
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatalf("decoding %q: %v", body, err)
			}
			if out.Low != tt.wantLo || out.High != tt.wantHi {
				t.Fatalf("bounds = (%v, %v), want (%v, %v)", out.Low, out.High, tt.wantLo, tt.wantHi)
			}
		})
	}
}

// TestForecastErrorVisibleToClient checks the client surfaces the
// server-side validation instead of decoding an empty body.
func TestForecastErrorVisibleToClient(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	_, _, err := c.Forecast(context.Background(), "DE", 0, 0)
	if err == nil || !strings.Contains(err.Error(), "non-positive horizon") {
		t.Fatalf("Forecast(horizon=0) err = %v, want non-positive horizon error", err)
	}
}

// TestWriteJSONEncodeError checks an unencodable value becomes a 500
// with a body, not a silent empty 200.
func TestWriteJSONEncodeError(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, math.Inf(1))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "encoding response") {
		t.Fatalf("body %q missing encode error", rec.Body.String())
	}
}

func TestTraceParamErrorsNamed(t *testing.T) {
	srv, _ := testServer(t)
	for query, want := range map[string]string{
		"grid=DE&from=abc": "from: bad value",
		"grid=DE&n=abc":    "n: bad value",
		"grid=DE&n=0":      "n: must be at least 1",
		// NaN defeats the n < 1 check (comparisons are false) and
		// int(NaN) is MinInt64 — this used to panic the slice below.
		"grid=DE&n=NaN":    "n: non-finite",
		"grid=DE&from=Inf": "from: non-finite",
	} {
		resp, err := http.Get(srv.URL + "/v1/trace?" + query)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), want) {
			t.Fatalf("%s: status %d body %q, want 400 with %q", query, resp.StatusCode, body, want)
		}
	}
}

// TestTraceHugeNClamps: a finite n beyond MaxInt64 must clamp to the
// trace length, not overflow int(n) into inverted slice bounds (which
// panicked the handler goroutine).
func TestTraceHugeNClamps(t *testing.T) {
	srv, traces := testServer(t)
	for _, n := range []string{"1e300", "9.3e18"} {
		resp, err := http.Get(srv.URL + "/v1/trace?grid=DE&n=" + n)
		if err != nil {
			t.Fatal(err)
		}
		var out TraceResponse
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("n=%s: %v", n, err)
		}
		if resp.StatusCode != http.StatusOK || len(out.Values) != len(traces["DE"].Values) {
			t.Fatalf("n=%s: status %d, %d values", n, resp.StatusCode, len(out.Values))
		}
	}
}

func TestClientBadServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens here
	if _, err := c.Grids(context.Background()); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

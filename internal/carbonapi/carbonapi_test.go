package carbonapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"pcaps/internal/carbon"
)

func testServer(t *testing.T) (*httptest.Server, map[string]*carbon.Trace) {
	t.Helper()
	tr, err := carbon.New("DE", 60, []float64{400, 300, 200, 500})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := carbon.New("ZA", 60, []float64{700, 710})
	if err != nil {
		t.Fatal(err)
	}
	traces := map[string]*carbon.Trace{"DE": tr, "ZA": tr2}
	srv := httptest.NewServer(NewServer(traces))
	t.Cleanup(srv.Close)
	return srv, traces
}

func TestGrids(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	grids, err := c.Grids(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(grids) != 2 || grids[0] != "DE" || grids[1] != "ZA" {
		t.Fatalf("Grids = %v", grids)
	}
}

func TestIntensity(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	tests := []struct {
		at   float64
		want float64
	}{{0, 400}, {59, 400}, {60, 300}, {180, 500}, {1e6, 500}}
	for _, tt := range tests {
		got, err := c.Intensity(context.Background(), "DE", tt.at)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Fatalf("Intensity(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestForecast(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	lo, hi, err := c.Forecast(context.Background(), "DE", 0, 120)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 200 || hi != 400 {
		t.Fatalf("Forecast = %v, %v", lo, hi)
	}
}

func TestFetchTraceRoundTrip(t *testing.T) {
	srv, traces := testServer(t)
	c := NewClient(srv.URL)
	got, err := c.FetchTrace(context.Background(), "DE", 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Grid != "DE" || got.Interval != 60 {
		t.Fatalf("trace meta = %+v", got)
	}
	want := traces["DE"].Values[1:3]
	if len(got.Values) != 2 || got.Values[0] != want[0] || got.Values[1] != want[1] {
		t.Fatalf("values = %v, want %v", got.Values, want)
	}
}

func TestFetchTraceClampsWindow(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	got, err := c.FetchTrace(context.Background(), "ZA", 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != 2 {
		t.Fatalf("clamped window len = %d", len(got.Values))
	}
}

func TestErrorPaths(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	ctx := context.Background()
	if _, err := c.Intensity(ctx, "XX", 0); err == nil {
		t.Fatal("unknown grid accepted")
	}
	if _, err := c.Intensity(ctx, "", 0); err == nil {
		t.Fatal("missing grid accepted")
	}
	// Raw HTTP checks for malformed parameters.
	resp, err := http.Get(srv.URL + "/v1/intensity?grid=DE&at=abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad at param: status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/trace?grid=DE&n=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n param: status %d", resp.StatusCode)
	}
}

func TestClientBadServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens here
	if _, err := c.Grids(context.Background()); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

package carbonapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// ParamError reports a request input the server rejected, naming the
// offending query parameter or body field — the same field-naming
// convention as sched.ParamError, applied to the HTTP surface. Every
// 400 this package writes originates from one of these (or from a
// backend rejection wrapping ErrInvalidScenario / ErrInvalidPlacement,
// which follow the same convention); the fielderr analyzer enforces it.
type ParamError struct {
	// Param is the query parameter or dotted body-field path.
	Param string
	// Msg explains the rejection.
	Msg string
}

// Error implements error as "param: message".
func (e *ParamError) Error() string { return e.Param + ": " + e.Msg }

// badParam builds a *ParamError for the named parameter.
func badParam(param, format string, args ...any) *ParamError {
	return &ParamError{Param: param, Msg: fmt.Sprintf(format, args...)}
}

// badRequest answers 400 with the typed error's field-naming message.
// It is the package's one blessed 400 writer: the fielderr analyzer
// forbids direct StatusBadRequest writes elsewhere and checks, at every
// call site of this sink, that the error is a *ParamError or was
// guarded with errors.Is/errors.As against a typed rejection.
//
//pcaps:fielderr-sink
func badRequest(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// decodeError converts a request-body decode failure into a
// *ParamError, naming the offending JSON field when the decoder
// reports one (type mismatches carry the dotted field path; the strict
// decoder's unknown-field message already names the field and is kept
// verbatim).
func decodeError(what string, err error) *ParamError {
	var ute *json.UnmarshalTypeError
	if errors.As(err, &ute) && ute.Field != "" {
		return badParam(ute.Field, "cannot decode %s value into %s", ute.Value, ute.Type)
	}
	var se *json.SyntaxError
	if errors.As(err, &se) {
		return badParam(what, "malformed JSON at offset %d: %v", se.Offset, err)
	}
	return badParam(what, "%v", err)
}

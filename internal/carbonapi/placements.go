package carbonapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"

	"pcaps/internal/sched"
	"pcaps/internal/sim"
)

// PlacementRequest is the body of POST /v1/placement: a policy (or a
// batch of policies) to evaluate against one serialized cluster
// snapshot. Exactly one of Policy and Policies must be set; a single
// policy answers with the bare decision, a batch with a
// PlacementResponse envelope in request order.
type PlacementRequest struct {
	// Policy is the deciding policy for a single-decision request.
	Policy *sched.Spec `json:"policy,omitempty"`
	// Policies asks for one independent decision per entry — each
	// policy sees the same snapshot, so the batch is a comparison, not
	// a sequence.
	Policies []sched.Spec `json:"policies,omitempty"`
	// Seed drives the stochastic policies' sampling (default 0).
	Seed int64 `json:"seed,omitempty"`
	// Snapshot is the scheduler-visible cluster state to decide on
	// (sim.Cluster.Snapshot's export).
	Snapshot *sim.Snapshot `json:"snapshot"`
}

// PlacementResponse is the batch envelope of POST /v1/placement.
type PlacementResponse struct {
	Decisions []sim.Placement `json:"decisions"`
}

// ErrInvalidPlacement marks a placement request the backend rejected
// before deciding anything (unknown policy, bad parameter, malformed
// snapshot); the handler answers 400 instead of 500 when a returned
// error wraps it. Rejection messages name the offending request field.
var ErrInvalidPlacement = errors.New("invalid placement request")

// Placements is the backend of POST /v1/placement (typically
// placement.Service). Implementations must be safe for concurrent
// Place calls — the server imposes no request serialization.
type Placements interface {
	// Place decides one placement per requested policy, in request
	// order. Rejections wrap ErrInvalidPlacement.
	Place(ctx context.Context, req *PlacementRequest) ([]sim.Placement, error)
}

// WithPlacements enables POST /v1/placement, backed by p (typically
// placement.Service).
func WithPlacements(p Placements) Option {
	return func(s *Server) { s.placements = p }
}

// maxPlacementBytes bounds one POSTed placement request. Snapshots
// embed their whole carbon trace (the green signals are functions of
// absolute trace time), so realistic requests reach a few hundred
// kilobytes; anything near this cap is a mistake or abuse.
const maxPlacementBytes = 8 << 20

func (s *Server) handlePlacement(w http.ResponseWriter, r *http.Request) {
	if s.placements == nil {
		http.Error(w, "placement service not enabled", http.StatusNotFound)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPlacementBytes+1))
	if err != nil {
		badRequest(w, badParam("body", "reading placement request: %v", err))
		return
	}
	if len(body) > maxPlacementBytes {
		http.Error(w, fmt.Sprintf("placement request exceeds %d bytes", maxPlacementBytes), http.StatusRequestEntityTooLarge)
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	// A misspelled field would otherwise silently fall back to a
	// default (e.g. "gama" running γ=0.5); reject it naming the field.
	dec.DisallowUnknownFields()
	var req PlacementRequest
	if err := dec.Decode(&req); err != nil {
		badRequest(w, decodeError("body", err))
		return
	}
	single := req.Policy != nil
	if single == (len(req.Policies) > 0) {
		badRequest(w, badParam("policy", "exactly one of policy and policies must be set"))
		return
	}
	decisions, err := s.placements.Place(r.Context(), &req)
	if err != nil {
		if errors.Is(err, ErrInvalidPlacement) {
			badRequest(w, err)
			return
		}
		log.Printf("carbonapi: placing: %v", err)
		http.Error(w, fmt.Sprintf("placing: %v", err), http.StatusInternalServerError)
		return
	}
	if single {
		writeJSON(w, decisions[0])
		return
	}
	writeJSON(w, PlacementResponse{Decisions: decisions})
}

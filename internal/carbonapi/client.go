package carbonapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"pcaps/internal/carbon"
	"pcaps/internal/result"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
)

// defaultTimeout bounds one ordinary request (trace polls, placement
// decisions) when the caller has not supplied an HTTPClient. Long
// synchronous operations raise it through longRunningClient.
const defaultTimeout = 5 * time.Second

// scenarioRunTimeout is the floor for POST /v1/scenarios, which
// synchronously runs a whole fast-mode scenario server-side.
const scenarioRunTimeout = 120 * time.Second

// Client talks to a carbon-intensity API server. It mirrors the Python
// daemon of the paper's prototype (§5.1), which polls an external carbon
// API and feeds the scheduling components.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8585".
	BaseURL string
	// HTTPClient defaults to a client with the defaultTimeout.
	HTTPClient *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: &http.Client{Timeout: defaultTimeout}}
}

// httpClient returns the configured HTTP client, or one with the
// documented default timeout when none is set.
func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: defaultTimeout}
}

// longRunningClient returns an HTTP client whose timeout is at least
// floor: a caller-supplied longer (or unlimited, 0) timeout is
// respected as-is; a shorter one is raised on a shallow copy, so
// transport and cookies are preserved. Callers needing a *shorter*
// bound pass a context deadline instead.
func (c *Client) longRunningClient(floor time.Duration) *http.Client {
	hc := c.httpClient()
	if hc.Timeout == 0 || hc.Timeout >= floor {
		return hc
	}
	cp := *hc
	cp.Timeout = floor
	return &cp
}

func (c *Client) get(ctx context.Context, path string, q url.Values, out any) error {
	u := fmt.Sprintf("%s%s?%s", c.BaseURL, path, q.Encode())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("carbonapi: %s: %s: %s", path, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON POSTs v as JSON and decodes the 200 response into out.
func (c *Client) postJSON(ctx context.Context, path string, v, out any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("carbonapi: %s: %s: %s", path, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Grids lists the grid names the server replays.
func (c *Client) Grids(ctx context.Context) ([]string, error) {
	var out map[string][]string
	if err := c.get(ctx, "/v1/grids", url.Values{}, &out); err != nil {
		return nil, err
	}
	return out["grids"], nil
}

// Intensity returns the carbon intensity of a grid at experiment time at.
func (c *Client) Intensity(ctx context.Context, grid string, at float64) (float64, error) {
	q := url.Values{"grid": {grid}, "at": {fmt.Sprint(at)}}
	var out IntensityResponse
	if err := c.get(ctx, "/v1/intensity", q, &out); err != nil {
		return 0, err
	}
	return out.Intensity, nil
}

// Forecast returns the (L, U) bounds over [at, at+horizon].
func (c *Client) Forecast(ctx context.Context, grid string, at, horizon float64) (lo, hi float64, err error) {
	q := url.Values{"grid": {grid}, "at": {fmt.Sprint(at)}, "horizon": {fmt.Sprint(horizon)}}
	var out ForecastResponse
	if err := c.get(ctx, "/v1/forecast", q, &out); err != nil {
		return 0, 0, err
	}
	return out.Low, out.High, nil
}

// Experiments lists the artifacts the server can run on demand.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	var out ExperimentsResponse
	if err := c.get(ctx, "/v1/experiments", url.Values{}, &out); err != nil {
		return nil, err
	}
	return out.Experiments, nil
}

// Experiment runs one artifact server-side and decodes the structured
// result. The artifact carries its display hints, so callers can
// re-render the server's exact text locally (result.TextRenderer) or
// consume the typed rows directly.
func (c *Client) Experiment(ctx context.Context, id string) (*result.Artifact, error) {
	var art result.Artifact
	if err := c.get(ctx, "/v1/experiments/"+url.PathEscape(id), url.Values{}, &art); err != nil {
		return nil, err
	}
	return &art, nil
}

// RunScenario POSTs a raw scenario spec document (JSON or the YAML
// subset) to /v1/scenarios and decodes the resulting artifact. The
// server validates the spec (400 on rejection) and runs it in fast
// mode.
func (c *Client) RunScenario(ctx context.Context, spec []byte) (*result.Artifact, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/scenarios", bytes.NewReader(spec))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// The endpoint synchronously runs a whole (fast-mode) scenario; the
	// default poll timeout would abandon legitimate runs mid-simulation
	// while the server keeps computing.
	resp, err := c.longRunningClient(scenarioRunTimeout).Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("carbonapi: /v1/scenarios: %s: %s", resp.Status, body)
	}
	var art result.Artifact
	if err := json.NewDecoder(resp.Body).Decode(&art); err != nil {
		return nil, err
	}
	return &art, nil
}

// Place asks the server for one scheduling decision: which stage (and
// executors) the named policy would pick on the given cluster snapshot.
// The server validates the spec and snapshot (400 on rejection, naming
// the offending field).
func (c *Client) Place(ctx context.Context, policy sched.Spec, seed int64, snap *sim.Snapshot) (*sim.Placement, error) {
	var out sim.Placement
	req := PlacementRequest{Policy: &policy, Seed: seed, Snapshot: snap}
	if err := c.postJSON(ctx, "/v1/placement", &req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PlaceBatch asks for one independent decision per policy on the same
// snapshot — a policy comparison in a single round-trip. Decisions
// return in request order.
func (c *Client) PlaceBatch(ctx context.Context, policies []sched.Spec, seed int64, snap *sim.Snapshot) ([]sim.Placement, error) {
	var out PlacementResponse
	req := PlacementRequest{Policies: policies, Seed: seed, Snapshot: snap}
	if err := c.postJSON(ctx, "/v1/placement", &req, &out); err != nil {
		return nil, err
	}
	return out.Decisions, nil
}

// FetchTrace downloads a window of n samples starting at experiment time
// from and materializes it as a local carbon.Trace, which the simulator
// and prototype consume directly.
func (c *Client) FetchTrace(ctx context.Context, grid string, from float64, n int) (*carbon.Trace, error) {
	q := url.Values{"grid": {grid}, "from": {fmt.Sprint(from)}, "n": {fmt.Sprint(n)}}
	var out TraceResponse
	if err := c.get(ctx, "/v1/trace", q, &out); err != nil {
		return nil, err
	}
	return carbon.New(out.Grid, out.Interval, out.Values)
}

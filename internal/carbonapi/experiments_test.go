package carbonapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"pcaps/internal/carbon"
	"pcaps/internal/result"
)

// stubExperiments is a deterministic Experiments backend: one known
// artifact, plus a failing one to drive the 500 path. It counts Run
// calls so the concurrency test can assert every request executed.
type stubExperiments struct {
	runs atomic.Int64
}

func (s *stubExperiments) List() []ExperimentInfo {
	return []ExperimentInfo{
		{ID: "table9", Title: "a stub table"},
		{ID: "broken", Title: "always fails"},
	}
}

func (s *stubExperiments) Run(ctx context.Context, id string) (*result.Artifact, error) {
	s.runs.Add(1)
	if id == "broken" {
		return nil, errors.New("substrate exploded")
	}
	t := &result.Table{
		Name: "rows",
		Columns: []result.Column{
			{Name: "k", Kind: result.KindString, Format: "%-4s"},
			{Name: "v", Kind: result.KindFloat, Format: " %6.2f"},
		},
	}
	t.Row(result.Str("a"), result.Float(1.25))
	a := result.New().Add(t)
	a.ID, a.Title = "table9", "a stub table"
	return a, nil
}

func expServer(t *testing.T) (*httptest.Server, *stubExperiments) {
	t.Helper()
	stub := &stubExperiments{}
	tr, err := carbon.New("DE", 60, []float64{100, 200, 300})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(map[string]*carbon.Trace{"DE": tr}, WithExperiments(stub)))
	t.Cleanup(srv.Close)
	return srv, stub
}

func TestExperimentsIndex(t *testing.T) {
	srv, _ := expServer(t)
	resp, err := http.Get(srv.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out ExperimentsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Experiments) != 2 || out.Experiments[0].ID != "table9" || out.Experiments[0].Title != "a stub table" {
		t.Fatalf("experiments = %+v", out.Experiments)
	}
}

func TestExperimentRunStructured(t *testing.T) {
	srv, _ := expServer(t)
	resp, err := http.Get(srv.URL + "/v1/experiments/table9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var art result.Artifact
	if err := json.NewDecoder(resp.Body).Decode(&art); err != nil {
		t.Fatal(err)
	}
	if art.ID != "table9" || len(art.Blocks) != 1 {
		t.Fatalf("artifact = %+v", art)
	}
	if got := art.Body(); got != "a      1.25\n" {
		t.Fatalf("decoded body %q", got)
	}
}

func TestExperimentRunErrors(t *testing.T) {
	srv, _ := expServer(t)
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/experiments/fig99", http.StatusNotFound}, // unknown ID
		{"/v1/experiments/broken", http.StatusInternalServerError},
		{"/experiments", http.StatusNotFound}, // the service is /v1/-only
	} {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s: status %d, want %d (%s)", tc.path, resp.StatusCode, tc.want, body)
		}
	}
}

func TestExperimentsDisabled(t *testing.T) {
	tr, err := carbon.New("DE", 60, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(map[string]*carbon.Trace{"DE": tr}))
	defer srv.Close()
	for _, path := range []string{"/v1/experiments", "/v1/experiments/table1"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "not enabled") {
			t.Errorf("GET %s without backend: %d %q", path, resp.StatusCode, body)
		}
	}
}

// TestExperimentRunConcurrent drives parallel requests through the
// handler; the race detector job guards the server side, and every
// request must come back complete and well-formed.
func TestExperimentRunConcurrent(t *testing.T) {
	srv, stub := expServer(t)
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/experiments/table9")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var art result.Artifact
			if err := json.NewDecoder(resp.Body).Decode(&art); err != nil {
				errs[i] = err
				return
			}
			if art.Body() != "a      1.25\n" {
				errs[i] = fmt.Errorf("body %q", art.Body())
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := stub.runs.Load(); got != n {
		t.Fatalf("backend ran %d times, want %d", got, n)
	}
}

// TestUnprefixedAliases pins the compatibility surface: the four trace
// endpoints answer with and without the /v1 prefix, identically.
func TestUnprefixedAliases(t *testing.T) {
	srv, _ := expServer(t)
	for _, pair := range [][2]string{
		{"/grids", "/v1/grids"},
		{"/intensity?grid=DE&at=0", "/v1/intensity?grid=DE&at=0"},
		{"/forecast?grid=DE&at=0&horizon=120", "/v1/forecast?grid=DE&at=0&horizon=120"},
		{"/trace?grid=DE&from=0&n=2", "/v1/trace?grid=DE&from=0&n=2"},
	} {
		var bodies [2]string
		for i, path := range pair {
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d (%s)", path, resp.StatusCode, b)
			}
			bodies[i] = string(b)
		}
		if bodies[0] != bodies[1] {
			t.Errorf("alias %s diverged from %s:\n%s\n%s", pair[0], pair[1], bodies[0], bodies[1])
		}
	}
}

// Package ablation isolates the design choices behind PCAPS (§4.1) and
// measures what each buys, per the ablation plan in DESIGN.md:
//
//   - the *shape* of the carbon-awareness threshold (the paper's
//     exponential Ψγ vs a linear ramp vs a hard step),
//   - the *importance signal* (precedence-derived relative importance vs
//     an importance-blind filter — the essential difference between PCAPS
//     and a pause/resume policy),
//   - the §5.1 carbon-scaled parallelism limit (on vs off),
//   - robustness to *forecast error* in the (L, U) bounds the threshold
//     relies on (§3 cites [13]: threshold designs remain near-optimal
//     when inputs are reasonably accurate),
//   - a suspend-resume baseline in the style of [33], which pauses the
//     whole cluster above a carbon threshold with no regard for DAG
//     structure.
package ablation

import (
	"fmt"
	"math"
	"math/rand"

	"pcaps/internal/core"
	"pcaps/internal/dag"
	"pcaps/internal/metrics"
	"pcaps/internal/result"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
)

// ThresholdShape selects the admission threshold's functional form.
type ThresholdShape int

const (
	// ShapeExponential is the paper's Ψγ (one-way-trading form).
	ShapeExponential ThresholdShape = iota
	// ShapeLinear ramps linearly from γL+(1−γ)U at r=0 to U at r=1.
	ShapeLinear
	// ShapeStep admits importance above γ at any carbon and below γ
	// only at carbon ≤ γL+(1−γ)U.
	ShapeStep
)

// String implements fmt.Stringer.
func (s ThresholdShape) String() string {
	switch s {
	case ShapeExponential:
		return "exponential"
	case ShapeLinear:
		return "linear"
	case ShapeStep:
		return "step"
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// FilterPCAPS is a PCAPS variant with every §4.1 design choice exposed as
// a knob, so each can be ablated independently. The default configuration
// (zero values, Gamma set) reproduces sched.PCAPS.
type FilterPCAPS struct {
	// PB is the wrapped probabilistic scheduler.
	PB sched.Probabilistic
	// Gamma is the carbon-awareness parameter.
	Gamma float64
	// Shape selects the threshold form.
	Shape ThresholdShape
	// UniformImportance discards the precedence-derived signal: every
	// sampled stage is treated as having importance γ (so admission
	// depends only on carbon) — the "importance-blind" ablation.
	UniformImportance bool
	// DisableParallelismScaling turns off the §5.1 limit scaling.
	DisableParallelismScaling bool
	// BoundsError distorts the forecast bounds the filter sees:
	// L' = L·(1+ε), U' = U·(1−ε), clamped to L' ≤ U'. Zero means exact
	// forecasts (the paper's assumption).
	BoundsError float64
	// Seed drives stage sampling.
	Seed int64

	rng *rand.Rand
}

// Name implements sim.Scheduler.
func (f *FilterPCAPS) Name() string {
	return fmt.Sprintf("PCAPS[%s,uniform=%t,noscale=%t,eps=%.2f]",
		f.Shape, f.UniformImportance, f.DisableParallelismScaling, f.BoundsError)
}

// bounds returns the (possibly distorted) forecast bounds.
func (f *FilterPCAPS) bounds(c *sim.Cluster) (float64, float64) {
	l, u := c.CarbonBounds()
	if l <= 0 {
		l = 1e-3
	}
	if f.BoundsError != 0 {
		l *= 1 + f.BoundsError
		u *= 1 - f.BoundsError
		if u < l {
			l, u = (l+u)/2, (l+u)/2
		}
	}
	if u < l {
		u = l
	}
	return l, u
}

// threshold evaluates the selected threshold form at importance r.
func (f *FilterPCAPS) threshold(r, l, u float64) float64 {
	base := f.Gamma*l + (1-f.Gamma)*u
	switch f.Shape {
	case ShapeLinear:
		return base + (u-base)*r
	case ShapeStep:
		if r >= f.Gamma {
			return u
		}
		return base
	default:
		psi, err := core.NewPsi(f.Gamma, l, u)
		if err != nil {
			return u
		}
		return psi.Value(r)
	}
}

// Pick implements sim.Scheduler, mirroring Algorithm 1 with the
// configured variations.
func (f *FilterPCAPS) Pick(c *sim.Cluster) sim.Decision {
	refs, probs := f.PB.Distribution(c)
	if len(refs) == 0 {
		return sim.DeferDecision
	}
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.Seed))
	}
	v := sampleIndex(f.rng, probs)
	r := core.RelativeImportance(probs, v)
	if f.UniformImportance {
		r = f.Gamma
	}
	l, u := f.bounds(c)
	if f.threshold(r, l, u) < c.Carbon() && c.BusyCount() > 0 {
		c.NoteDeferral(refs[v])
		return sim.DeferDecision
	}
	planned := f.PB.PlannedLimit(c, refs[v])
	limit := planned
	if !f.DisableParallelismScaling {
		if psi, err := core.NewPsi(f.Gamma, l, u); err == nil {
			limit = psi.ParallelismLimit(planned, c.Carbon())
		}
	}
	return sim.Decision{Ref: refs[v], Limit: limit}
}

func sampleIndex(rng *rand.Rand, probs []float64) int {
	x := rng.Float64()
	var cum float64
	for i, p := range probs {
		cum += p
		if x < cum {
			return i
		}
	}
	return len(probs) - 1
}

// SuspendResume is the [33]-style baseline: a single carbon threshold
// pauses all new work cluster-wide, with no knowledge of DAG structure or
// task importance. Theta ∈ [0, 1] places the pause threshold at
// θL + (1−θ)U; lower values pause more aggressively.
type SuspendResume struct {
	// Inner schedules whenever the cluster is unpaused.
	Inner sim.Scheduler
	// Theta positions the pause threshold between L and U.
	Theta float64
}

// Name implements sim.Scheduler.
func (s *SuspendResume) Name() string { return fmt.Sprintf("SuspendResume-%s", s.Inner.Name()) }

// Pick implements sim.Scheduler.
func (s *SuspendResume) Pick(c *sim.Cluster) sim.Decision {
	l, u := c.CarbonBounds()
	threshold := s.Theta*l + (1-s.Theta)*u
	if c.Carbon() > threshold && c.BusyCount() > 0 {
		return sim.DeferDecision
	}
	return s.Inner.Pick(c)
}

// Outcome is one variant's measured behaviour.
type Outcome struct {
	Name        string
	CarbonGrams float64
	ECT, AvgJCT float64
	Deferrals   int
}

// Compare runs every variant on the same batch and configuration and
// returns the outcomes in input order, with the carbon-agnostic baseline
// first.
func Compare(cfg sim.Config, jobs []*dag.Job, baseline sim.Scheduler, variants []sim.Scheduler) ([]Outcome, error) {
	return CompareWith(cfg, jobs, baseline, variants, nil)
}

// CompareWith is Compare with an injectable fan-out: each runs fn(i) for
// every index in [0, n), possibly concurrently (the simulations are
// independent — sim.Run clones the job templates). A nil each runs the
// suite serially. Outcomes come back in input order either way.
func CompareWith(cfg sim.Config, jobs []*dag.Job, baseline sim.Scheduler, variants []sim.Scheduler,
	each func(n int, fn func(i int))) ([]Outcome, error) {
	scheds := append([]sim.Scheduler{baseline}, variants...)
	outs := make([]Outcome, len(scheds))
	errs := make([]error, len(scheds))
	run := func(i int) {
		s := scheds[i]
		res, err := sim.Run(cfg, jobs, s)
		if err != nil {
			errs[i] = fmt.Errorf("ablation: %s: %w", s.Name(), err)
			return
		}
		outs[i] = Outcome{
			Name: s.Name(), CarbonGrams: res.CarbonGrams,
			ECT: res.ECT, AvgJCT: res.AvgJCT, Deferrals: res.Deferrals,
		}
	}
	if each == nil {
		for i := range scheds {
			run(i)
		}
	} else {
		each(len(scheds), run)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// Table formats outcomes as a typed result.Table relative to the first
// (baseline) row.
func Table(outs []Outcome) *result.Table {
	t := &result.Table{
		Name: "ablations",
		Columns: []result.Column{
			{Name: "variant", Kind: result.KindString, Header: "variant", HeaderFormat: "%-44s", Format: "%-44s"},
			{Name: "co2_delta_pct", Kind: result.KindFloat, Prec: 1, Header: "ΔCO2", HeaderFormat: " %12s", Format: " %+11.1f%%"},
			{Name: "relative_ect", Kind: result.KindFloat, Prec: 3, Header: "rel.ECT", HeaderFormat: " %10s", Format: " %10.3f"},
			{Name: "relative_jct", Kind: result.KindFloat, Prec: 3, Header: "rel.JCT", HeaderFormat: " %10s", Format: " %10.3f"},
			{Name: "deferrals", Kind: result.KindInt, Header: "defers", HeaderFormat: " %8s", Format: " %8d"},
		},
	}
	if len(outs) == 0 {
		return t
	}
	base := outs[0]
	for _, o := range outs {
		t.Row(result.Str(o.Name),
			result.Float(metrics.PercentChange(o.CarbonGrams, base.CarbonGrams)),
			result.Float(safeRatio(o.ECT, base.ECT)),
			result.Float(safeRatio(o.AvgJCT, base.AvgJCT)),
			result.Int(o.Deferrals))
	}
	return t
}

// Render formats outcomes as fixed-width text, the Table's text form.
func Render(outs []Outcome) string {
	if len(outs) == 0 {
		return ""
	}
	return result.New().Add(Table(outs)).Body()
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func init() {
	// Keep math imported even if clamping helpers churn.
	_ = math.Inf
}

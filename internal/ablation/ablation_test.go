package ablation

import (
	"math"
	"strings"
	"testing"

	"pcaps/internal/carbon"
	"pcaps/internal/dag"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func setup(t testing.TB) (sim.Config, []*dag.Job) {
	t.Helper()
	spec, err := carbon.GridByName("DE")
	if err != nil {
		t.Fatal(err)
	}
	tr := carbon.Synthesize(spec, 3000, 60, 17)
	jobs := workload.Batch(workload.BatchConfig{N: 40, MeanInterarrival: 30, Mix: workload.MixTPCH, Seed: 23})
	cfg := sim.Config{NumExecutors: 100, Trace: tr, MoveDelay: 1,
		HoldExecutors: true, IdleTimeout: 60, Seed: 1}
	return cfg, jobs
}

func runOne(t testing.TB, cfg sim.Config, jobs []*dag.Job, s sim.Scheduler) *sim.Result {
	t.Helper()
	res, err := sim.Run(cfg, jobs, s)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	return res
}

func TestDefaultVariantMatchesPCAPS(t *testing.T) {
	// FilterPCAPS with defaults is behaviourally equivalent to
	// sched.PCAPS (same admission rule, same sampling seed).
	cfg, jobs := setup(t)
	a := runOne(t, cfg, jobs, sched.NewPCAPS(sched.NewDecima(3), 0.5, 3))
	b := runOne(t, cfg, jobs, &FilterPCAPS{PB: sched.NewDecima(3), Gamma: 0.5, Seed: 3})
	if math.Abs(a.CarbonGrams-b.CarbonGrams) > 1e-6 || math.Abs(a.ECT-b.ECT) > 1e-6 {
		t.Fatalf("variant diverged from PCAPS: %v/%v vs %v/%v",
			a.CarbonGrams, a.ECT, b.CarbonGrams, b.ECT)
	}
}

func TestImportanceSignalMatters(t *testing.T) {
	// The importance-blind filter (uniform importance) must pay more
	// completion time per unit of carbon saved than true PCAPS: without
	// the precedence signal, bottleneck stages get deferred too.
	cfg, jobs := setup(t)
	aware := runOne(t, cfg, jobs, &FilterPCAPS{PB: sched.NewDecima(3), Gamma: 0.7, Seed: 3})
	blind := runOne(t, cfg, jobs, &FilterPCAPS{PB: sched.NewDecima(3), Gamma: 0.7, UniformImportance: true, Seed: 3})
	base := runOne(t, cfg, jobs, sched.NewDecima(3))
	awareEff := (base.CarbonGrams - aware.CarbonGrams) / math.Max(aware.ECT-base.ECT, 1)
	blindEff := (base.CarbonGrams - blind.CarbonGrams) / math.Max(blind.ECT-base.ECT, 1)
	if awareEff <= blindEff {
		t.Fatalf("precedence-aware efficiency %v not above importance-blind %v "+
			"(aware %v g / %v s, blind %v g / %v s, base %v g / %v s)",
			awareEff, blindEff, aware.CarbonGrams, aware.ECT,
			blind.CarbonGrams, blind.ECT, base.CarbonGrams, base.ECT)
	}
}

func TestThresholdShapesAllSaveCarbon(t *testing.T) {
	cfg, jobs := setup(t)
	base := runOne(t, cfg, jobs, sched.NewDecima(3))
	for _, shape := range []ThresholdShape{ShapeExponential, ShapeLinear, ShapeStep} {
		v := &FilterPCAPS{PB: sched.NewDecima(3), Gamma: 0.6, Shape: shape, Seed: 3}
		r := runOne(t, cfg, jobs, v)
		if r.CarbonGrams >= base.CarbonGrams {
			t.Fatalf("%v shape saved nothing: %v vs %v", shape, r.CarbonGrams, base.CarbonGrams)
		}
	}
}

func TestForecastErrorDegradesGracefully(t *testing.T) {
	// §3 / [13]: threshold designs tolerate modest forecast error. A 10%
	// distortion of (L, U) must not destroy savings or blow up ECT.
	cfg, jobs := setup(t)
	base := runOne(t, cfg, jobs, sched.NewDecima(3))
	exact := runOne(t, cfg, jobs, &FilterPCAPS{PB: sched.NewDecima(3), Gamma: 0.6, Seed: 3})
	noisy := runOne(t, cfg, jobs, &FilterPCAPS{PB: sched.NewDecima(3), Gamma: 0.6, BoundsError: 0.10, Seed: 3})
	exactSave := base.CarbonGrams - exact.CarbonGrams
	noisySave := base.CarbonGrams - noisy.CarbonGrams
	if noisySave < 0.3*exactSave {
		t.Fatalf("10%% forecast error collapsed savings: %v vs %v", noisySave, exactSave)
	}
	if noisy.ECT > 2*exact.ECT {
		t.Fatalf("10%% forecast error blew up ECT: %v vs %v", noisy.ECT, exact.ECT)
	}
}

func TestParallelismScalingContributes(t *testing.T) {
	// Disabling the §5.1 parallelism scaling must reduce carbon savings
	// (the limit is one of the two carbon levers).
	cfg, jobs := setup(t)
	on := runOne(t, cfg, jobs, &FilterPCAPS{PB: sched.NewDecima(3), Gamma: 0.6, Seed: 3})
	off := runOne(t, cfg, jobs, &FilterPCAPS{PB: sched.NewDecima(3), Gamma: 0.6, DisableParallelismScaling: true, Seed: 3})
	if on.CarbonGrams >= off.CarbonGrams {
		t.Fatalf("parallelism scaling saved nothing: on %v vs off %v", on.CarbonGrams, off.CarbonGrams)
	}
}

func TestSuspendResumeIsBluntInstrument(t *testing.T) {
	// Suspend-resume saves carbon but at a JCT cost well above PCAPS's
	// for comparable savings — precedence-blindness has a price.
	cfg, jobs := setup(t)
	base := runOne(t, cfg, jobs, sched.NewDecima(3))
	sr := runOne(t, cfg, jobs, &SuspendResume{Inner: sched.NewDecima(3), Theta: 0.5})
	if sr.CarbonGrams >= base.CarbonGrams {
		t.Fatalf("suspend-resume saved nothing: %v vs %v", sr.CarbonGrams, base.CarbonGrams)
	}
	if sr.AvgJCT <= base.AvgJCT {
		t.Fatalf("suspend-resume should cost JCT: %v vs %v", sr.AvgJCT, base.AvgJCT)
	}
}

func TestCompareAndRender(t *testing.T) {
	cfg, jobs := setup(t)
	outs, err := Compare(cfg, jobs, sched.NewDecima(3), []sim.Scheduler{
		&FilterPCAPS{PB: sched.NewDecima(3), Gamma: 0.5, Seed: 3},
		&SuspendResume{Inner: sched.NewDecima(3), Theta: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	text := Render(outs)
	if !strings.Contains(text, "Decima") || !strings.Contains(text, "SuspendResume") {
		t.Fatalf("render missing rows:\n%s", text)
	}
	if Render(nil) != "" {
		t.Fatal("empty render not empty")
	}
}

func TestShapeString(t *testing.T) {
	if ShapeExponential.String() != "exponential" || ShapeLinear.String() != "linear" || ShapeStep.String() != "step" {
		t.Fatal("shape names")
	}
}

package sim

import (
	"errors"
	"math"
	"testing"

	"pcaps/internal/dag"
)

// rootPlus builds a job whose root feeds the given sibling stages, each
// specified as {numTasks, duration}.
func rootPlus(t testing.TB, rootTasks int, rootDur float64, siblings ...[2]float64) *dag.Job {
	t.Helper()
	b := dag.NewBuilder(0, "fork")
	root := b.Stage("", rootTasks, rootDur)
	for _, s := range siblings {
		b.Edge(root, b.Stage("", int(s[0]), s[1]))
	}
	return b.MustBuild()
}

// TestHoldDispatchContinuesInPlace is the hold-mode churn regression
// test: a hold-dispatched stage now keeps its executor across task waves
// (dispatchReserved sets the in-application FIFO's no-limit), where the
// seed engine bounced every task through release → re-reserve →
// idle-expiry event. Results must be unchanged for a deterministic
// work-conserving scheduler; only the event count may drop.
func TestHoldDispatchContinuesInPlace(t *testing.T) {
	const tasks = 30
	mk := func() *dag.Job {
		b := dag.NewBuilder(0, "chainwide")
		a := b.Stage("", 1, 5)
		w := b.Stage("", tasks, 5)
		b.Edge(a, w)
		return b.MustBuild()
	}
	c := cfg(t, 1)
	c.HoldExecutors = true
	// A short timeout keeps every legacy expiry event inside the run, so
	// the event-count gap below is deterministic (expiries scheduled
	// within the last IdleTimeout seconds never fire — the run ends
	// first).
	c.IdleTimeout = 5

	fixed, err := Run(c, []*dag.Job{mk()}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	c.LegacyHoldWakeups = true
	legacy, err := Run(c, []*dag.Job{mk()}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.ECT != legacy.ECT || fixed.CarbonGrams != legacy.CarbonGrams {
		t.Fatalf("fix changed results: ECT %v vs %v, carbon %v vs %v",
			fixed.ECT, legacy.ECT, fixed.CarbonGrams, legacy.CarbonGrams)
	}
	// The wide stage is served by one held executor: the legacy path
	// emitted one extra (stale) idle-expiry event per task except the
	// final few whose expiries fall past the end of the run.
	if legacy.Events-fixed.Events < tasks-5 {
		t.Fatalf("expected ≥%d fewer events, got legacy %d vs fixed %d",
			tasks-5, legacy.Events, fixed.Events)
	}
}

// TestExpireHoldStaleByLaterReservation exercises the holdExpire
// comparison: an expiry event from an earlier reservation fires while the
// executor is held under a newer reservation and must be ignored, with
// the release happening only at the newer deadline.
func TestExpireHoldStaleByLaterReservation(t *testing.T) {
	// Stage 0 (1 task, 1 s) feeds stage 1 (1 task, 1 s) and stage 2
	// (1 task, 20 s). Executor 0 runs stage 0, is held at t=1 (expiry
	// t=6), is re-dispatched to stage 1 at t=1, and is held again at t=2
	// (expiry t=7). The t=6 event fires mid-hold and must be a no-op;
	// the t=7 event releases. Executor 1 runs stage 2 until t=21.
	b := dag.NewBuilder(0, "stale")
	a := b.Stage("", 1, 1)
	s1 := b.Stage("", 1, 1)
	long := b.Stage("", 1, 20)
	b.Edge(a, s1).Edge(a, long)
	j := b.MustBuild()

	c := cfg(t, 2)
	c.HoldExecutors = true
	c.IdleTimeout = 5
	res, err := Run(c, []*dag.Job{j}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ECT-21) > 1e-9 {
		t.Fatalf("ECT = %v, want 21", res.ECT)
	}
	// Executor 0: busy 0–2, then held 2–7 (the stale t=6 event must not
	// cut the hold short). Executor 1: busy 1–21. 27 exec-s at 300 g/kWh.
	want := 27 * 300.0 / 3600
	if math.Abs(res.CarbonGrams-want) > 1e-6 {
		t.Fatalf("CarbonGrams = %v, want %v (stale expiry released early?)", res.CarbonGrams, want)
	}
}

// TestIdleTimeoutNegativeHoldsForLifetime checks standalone mode without
// dynamic allocation: a negative IdleTimeout never schedules an expiry,
// so a held executor burns carbon until its job completes.
func TestIdleTimeoutNegativeHoldsForLifetime(t *testing.T) {
	b := dag.NewBuilder(0, "lifetime")
	a := b.Stage("", 1, 1)
	s1 := b.Stage("", 1, 1)
	long := b.Stage("", 1, 20)
	b.Edge(a, s1).Edge(a, long)
	j := b.MustBuild()

	c := cfg(t, 2)
	c.HoldExecutors = true
	c.IdleTimeout = -1
	res, err := Run(c, []*dag.Job{j}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	// Executor 0: busy 0–2, held 2–21 (released only by job completion),
	// 21 exec-s. Executor 1: busy 1–21, 20 exec-s. 41 total at 300 g/kWh.
	want := 41 * 300.0 / 3600
	if math.Abs(res.CarbonGrams-want) > 1e-6 {
		t.Fatalf("CarbonGrams = %v, want %v (lifetime hold released early?)", res.CarbonGrams, want)
	}
}

// TestFinishStageReleasesHeldExecutors checks that job completion frees
// the whole held pool at once: a second job blocked behind held
// executors starts exactly when the first job finishes.
func TestFinishStageReleasesHeldExecutors(t *testing.T) {
	// Job 0 has two root stages: 10 s and 2 s. The 2 s executor is held
	// (nothing else runnable) until job 0 completes at t=10.
	b := dag.NewBuilder(0, "roots")
	b.Stage("", 1, 10)
	b.Stage("", 1, 2)
	j0 := b.MustBuild()
	b2 := dag.NewBuilder(1, "blocked")
	b2.Stage("", 1, 5)
	j1 := b2.MustBuild()

	c := cfg(t, 2)
	c.HoldExecutors = true
	c.IdleTimeout = 60
	res, err := Run(c, []*dag.Job{j0, j1}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.JCTs[0]-10) > 1e-9 {
		t.Fatalf("job0 JCT = %v, want 10", res.JCTs[0])
	}
	if math.Abs(res.JCTs[1]-15) > 1e-9 {
		t.Fatalf("blocked job JCT = %v, want 15 (held executors not released?)", res.JCTs[1])
	}
	// Job 0 pays for the held window: 10 + 2 busy + 8 held exec-s.
	want := 20 * 300.0 / 3600
	if math.Abs(res.JobCarbon[0]-want) > 1e-6 {
		t.Fatalf("job0 carbon = %v, want %v", res.JobCarbon[0], want)
	}
}

// saturatedPicker always returns the first runnable stage with a limit of
// 1 and never defers — after the first assignment the stage is saturated,
// so every later Pick in the same event returns a stage that can accept
// no executor.
type saturatedPicker struct{ picks int }

func (s *saturatedPicker) Name() string { return "saturated" }
func (s *saturatedPicker) Pick(c *Cluster) Decision {
	s.picks++
	r := c.Runnable()
	if len(r) == 0 {
		return DeferDecision
	}
	return Decision{Ref: r[0], Limit: 1}
}

// TestSaturatedDecisionTreatedAsDefer checks the no-progress guard: a
// scheduler that keeps returning a saturated stage must not livelock the
// event loop (the assignment loop treats the zero-bind as a defer), and
// the batch still completes serially under the limit.
func TestSaturatedDecisionTreatedAsDefer(t *testing.T) {
	b := dag.NewBuilder(0, "wide")
	b.Stage("", 4, 10)
	j := b.MustBuild()
	c := cfg(t, 4)
	c.MaxEvents = 10_000 // fail fast if the guard regresses into livelock
	s := &saturatedPicker{}
	res, err := Run(c, []*dag.Job{j}, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ECT-40) > 1e-9 {
		t.Fatalf("ECT = %v, want 40 (limit-1 serialization)", res.ECT)
	}
}

// emptyPicker returns a non-defer decision with no stage.
type emptyPicker struct{}

func (emptyPicker) Name() string           { return "empty" }
func (emptyPicker) Pick(*Cluster) Decision { return Decision{} }

// TestEmptyDecisionIsNoProgressError checks that a scheduler returning
// neither a stage nor a defer is reported as errNoProgress instead of
// spinning.
func TestEmptyDecisionIsNoProgressError(t *testing.T) {
	j := chainJob(t, 0, 10)
	_, err := Run(cfg(t, 1), []*dag.Job{j}, emptyPicker{})
	if !errors.Is(err, errNoProgress) {
		t.Fatalf("err = %v, want errNoProgress", err)
	}
}

// allocProbe measures allocations of the view accessors mid-run, after
// enough events have passed for the cluster to be in a steady state.
type allocProbe struct {
	t     *testing.T
	picks int
	inner greedy
}

func (p *allocProbe) Name() string { return "allocprobe" }
func (p *allocProbe) Pick(c *Cluster) Decision {
	p.picks++
	if p.picks == 5 {
		if avg := testing.AllocsPerRun(50, func() {
			_ = c.Runnable()
			_ = c.ActiveJobs()
			_ = c.OutstandingWork()
		}); avg != 0 {
			p.t.Errorf("view accessors allocated %.1f/op inside one event", avg)
		}
	}
	return p.inner.Pick(c)
}

// TestViewsAllocationFreeWithinEvent checks the epoch cache: repeated
// Runnable/ActiveJobs/OutstandingWork calls within one scheduling event
// must not allocate.
func TestViewsAllocationFreeWithinEvent(t *testing.T) {
	jobs := []*dag.Job{
		rootPlus(t, 2, 7, [2]float64{3, 5}, [2]float64{2, 9}),
		rootPlus(t, 1, 13, [2]float64{2, 4}),
	}
	jobs[1].ID = 1
	probe := &allocProbe{t: t}
	if _, err := Run(cfg(t, 3), jobs, probe); err != nil {
		t.Fatal(err)
	}
	if probe.picks < 5 {
		t.Fatalf("probe ran %d picks, need ≥5", probe.picks)
	}
}

package sim

// Common-prefix group execution (see DESIGN.md §7). Sweep and comparison
// experiments run the same (cfg, jobs, seed) cell under several policy
// variants whose decisions coincide for long prefixes of the run — CAP at
// full quota is exactly its inner scheduler, and PCAPS over Decima shares
// Decima's sampling stream until the first filtered or parallelism-scaled
// decision. RunGroup exploits that: one master simulation advances the
// shared state while every attached variant's scheduler is consulted at
// each decision point; the moment a variant's decision would produce a
// different state transition, it forks onto a cheap in-memory clone of the
// cluster (µs, no JSON round-trip — contrast Cluster.Snapshot) and runs to
// completion independently. Determinism makes this sound: with identical
// seeds and identical decision effects, the shared trajectory is
// bit-for-bit the trajectory each variant would have produced alone.

import (
	"fmt"
	"math/rand"

	"pcaps/internal/dag"
)

// deferralSink receives NoteDeferral accounting for one group variant, so
// shadow schedulers evaluated on shared state keep separate counters.
type deferralSink struct {
	deferrals    int
	deferredWork float64
}

// groupVariant tracks one scheduler's progress through a group run.
type groupVariant struct {
	s      Scheduler
	sink   deferralSink
	result *Result
	err    error
}

// forkable reports whether a configuration supports lockstep group
// execution. Jitter and failure injection consume the cluster RNG (whose
// draw order would interleave across variants), stateful forecasters and
// observers cannot be cloned, and per-job usage rows are not worth the
// clone complexity — those configurations fall back to independent runs.
func forkable(cfg Config) bool {
	return cfg.DurationJitter == 0 && cfg.FailureRate == 0 &&
		cfg.Forecaster == nil && cfg.Observer == nil && !cfg.TrackJobUsage
}

// RunGroup simulates the batch under every scheduler, sharing the common
// decision prefix across variants (one state evolution, per-variant
// forks at divergence). Results are positionally parallel to scheds and
// byte-identical to len(scheds) independent Run calls. Configurations
// that cannot fork (see forkable) degrade to exactly those calls.
func RunGroup(cfg Config, jobs []*dag.Job, scheds []Scheduler) ([]*Result, error) {
	if len(scheds) == 0 {
		return nil, fmt.Errorf("sim: RunGroup needs at least one scheduler")
	}
	if len(scheds) == 1 || !forkable(cfg) {
		results := make([]*Result, len(scheds))
		for i, s := range scheds {
			r, err := Run(cfg, jobs, s)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	c, totalWork, err := newCluster(cfg, jobs)
	if err != nil {
		return nil, err
	}
	vs := make([]*groupVariant, len(scheds))
	for i, s := range scheds {
		vs[i] = &groupVariant{s: s}
	}
	attached := append([]*groupVariant(nil), vs...)

	events := 0
	for c.events.Len() > 0 {
		events++
		if events > c.cfg.MaxEvents {
			return nil, fmt.Errorf("sim: exceeded %d events (scheduler livelock?)", c.cfg.MaxEvents)
		}
		ev := c.pop()
		c.advance(ev.at)
		c.handleEvent(ev)
		attached, err = c.scheduleGroup(attached, events, totalWork)
		if err != nil {
			return nil, err
		}
		if !c.unfinished() && c.noTaskPending() {
			break
		}
	}

	// The master state is the final state of every still-attached variant.
	for i, v := range attached {
		c.deferrals = v.sink.deferrals
		c.deferredWork = v.sink.deferredWork
		if i > 0 {
			// Results must not share mutable backing arrays; buildResult
			// reuses c.usage directly, so give later variants a copy.
			c.usage = append([]float64(nil), c.usage...)
		}
		v.result, v.err = c.buildResult(v.s.Name(), totalWork, events)
	}
	results := make([]*Result, len(vs))
	for i, v := range vs {
		if v.err != nil {
			return nil, v.err
		}
		results[i] = v.result
	}
	return results, nil
}

// decisionEffect is the state transition a Decision produces: whether the
// pass ends (defer), which stage gains executors under which normalized
// limit, and how many executors bind. Two decisions with equal effects
// leave the cluster in identical states, so a shadow variant stays
// attached exactly while its effects match the master's.
type decisionEffect struct {
	deferred  bool
	job       *JobRun
	stage     *StageRun
	guardFail bool
	limit     int
	binds     int
}

// effectOf computes a decision's effect against the current cluster state
// without applying it, mirroring assign's guard, limit normalization, and
// bind loop in closed form.
func (c *Cluster) effectOf(d Decision) decisionEffect {
	if d.Defer {
		return decisionEffect{deferred: true}
	}
	j, st := d.Ref.Job, d.Ref.Stage
	e := decisionEffect{job: j, stage: st}
	if j == nil || st == nil {
		e.guardFail = true
		return e
	}
	if !j.Arrived || j.Done || !st.Runnable() {
		e.guardFail = true
		return e
	}
	limit := d.Limit
	if limit < 1 || limit > st.Stage.NumTasks {
		limit = st.Stage.NumTasks
	}
	e.limit = limit
	n := len(c.free)
	if d.MaxNew > 0 && d.MaxNew < n {
		n = d.MaxNew
	}
	if m := limit - st.Running; m < n {
		n = m
	}
	if m := st.RemainingTasks(); m < n {
		n = m
	}
	if c.cfg.PerJobCap > 0 {
		if m := c.cfg.PerJobCap - j.Executors; m < n {
			n = m
		}
	}
	if n < 0 {
		n = 0
	}
	e.binds = n
	return e
}

// scheduleGroup runs one scheduling pass in lockstep: the hold-mode
// dispatch (scheduler-independent) once, then per decision point every
// attached variant's Pick on the shared state. Variants whose decision
// effect diverges from the master's (variant 0) fork and finish on their
// own clone; the master's decision then advances the shared state. The
// returned slice holds the variants still attached.
func (c *Cluster) scheduleGroup(attached []*groupVariant, events int, totalWork float64) ([]*groupVariant, error) {
	if c.cfg.HoldExecutors && c.holdReadyCount > 0 {
		c.dispatchReserved()
	}
	for c.IdleCount() > 0 {
		if len(c.Runnable()) == 0 {
			return attached, nil
		}
		c.sink = &attached[0].sink
		d0 := attached[0].s.Pick(c)
		e0 := c.effectOf(d0)
		keep := attached[:1]
		for _, v := range attached[1:] {
			c.sink = &v.sink
			d := v.s.Pick(c)
			if c.effectOf(d) == e0 {
				keep = append(keep, v)
			} else {
				v.finishForked(c, d, events, totalWork)
			}
		}
		c.sink = nil
		attached = keep
		if d0.Defer {
			return attached, nil
		}
		if d0.Ref.Stage == nil || d0.Ref.Job == nil {
			return attached, fmt.Errorf("%w: %s returned empty decision", errNoProgress, attached[0].s.Name())
		}
		if n := c.assign(d0); n == 0 {
			return attached, nil
		}
	}
	return attached, nil
}

// finishForked detaches the variant at a divergent decision: clone the
// shared state, replay the variant's own decision there, finish the
// in-progress scheduling pass, and run the remaining event loop to
// completion under the variant's scheduler.
func (v *groupVariant) finishForked(master *Cluster, d Decision, events int, totalWork float64) {
	c, jm, sm := master.clone()
	c.deferrals = v.sink.deferrals
	c.deferredWork = v.sink.deferredWork
	d.Ref.Job = jm[d.Ref.Job]
	d.Ref.Stage = sm[d.Ref.Stage]
	if err := c.resumePass(v.s, d); err != nil {
		v.err = err
		return
	}
	ev, err := c.loopFrom(v.s, events)
	if err != nil {
		v.err = err
		return
	}
	v.result, v.err = c.buildResult(v.s.Name(), totalWork, ev)
}

// resumePass finishes the scheduling pass the fork interrupted, starting
// from the variant's own divergent decision. The hold-mode dispatch
// already ran on the master before any Pick, so the clone carries its
// effects and the pass resumes at the decision loop.
func (c *Cluster) resumePass(s Scheduler, d Decision) error {
	for {
		if d.Defer {
			return nil
		}
		if d.Ref.Stage == nil || d.Ref.Job == nil {
			return fmt.Errorf("%w: %s returned empty decision", errNoProgress, s.Name())
		}
		if n := c.assign(d); n == 0 {
			return nil
		}
		if c.IdleCount() == 0 {
			return nil
		}
		if len(c.Runnable()) == 0 {
			return nil
		}
		d = s.Pick(c)
	}
}

// clone deep-copies the simulation state in memory: executors, job and
// stage runtime records, the held/runnable indexes, both ID heaps, the
// event heap (sequence counter preserved — event ordering is part of the
// trajectory), and the usage timeline. Immutable structure is shared:
// *dag.Job and *dag.Stage are never mutated after validation, and the
// carbon trace is read-only. The returned maps translate master JobRun
// and StageRun pointers to their clones (for remapping in-flight
// decision refs). The cluster RNG is rebuilt from the seed — forkable()
// guarantees it was never drawn from.
func (c *Cluster) clone() (*Cluster, map[*JobRun]*JobRun, map[*StageRun]*StageRun) {
	n := &Cluster{
		cfg:            c.cfg,
		clock:          c.clock,
		rng:            rand.New(rand.NewSource(c.cfg.Seed)),
		busyCount:      c.busyCount,
		activeCount:    c.activeCount,
		holdReadyCount: c.holdReadyCount,
		doneCount:      c.doneCount,
		epoch:          c.epoch,
		// Force the cached views to rebuild on first use in the clone.
		runnableEpoch:    c.epoch - 1,
		outstandingEpoch: c.epoch - 1,
		deferrals:        c.deferrals,
		deferredWork:     c.deferredWork,
		retries:          c.retries,
		boundsClock:      c.boundsClock,
		boundsLo:         c.boundsLo,
		boundsHi:         c.boundsHi,
	}
	jm := make(map[*JobRun]*JobRun, len(c.jobs))
	sm := make(map[*StageRun]*StageRun, len(c.jobs)*4)
	n.jobs = make([]*JobRun, len(c.jobs))
	for i, j := range c.jobs {
		nj := &JobRun{}
		*nj = *j
		nj.Stages = make([]*StageRun, len(j.Stages))
		for k, st := range j.Stages {
			nst := &StageRun{}
			*nst = *st
			nj.Stages[k] = nst
			sm[st] = nst
		}
		nj.runnable = make([]*StageRun, len(j.runnable))
		for k, st := range j.runnable {
			nj.runnable[k] = sm[st]
		}
		nj.held = make([]*executor, len(j.held)) // filled after executors clone
		n.jobs[i] = nj
		jm[j] = nj
	}
	n.active = make([]*JobRun, len(c.active))
	for i, j := range c.active {
		n.active[i] = jm[j]
	}
	n.execs = make([]*executor, len(c.execs))
	for i, e := range c.execs {
		ne := &executor{}
		*ne = *e
		ne.job = jm[e.job]
		ne.stage = sm[e.stage]
		ne.reserved = jm[e.reserved]
		n.execs[i] = ne
		if ne.reserved != nil {
			ne.reserved.held[ne.heldPos] = ne
		}
	}
	n.free = append(make(intHeap, 0, cap(c.free)), c.free...)
	n.reservedIdle = append(intHeap(nil), c.reservedIdle...)
	n.events = eventHeap{items: make([]event, len(c.events.items)), seq: c.events.seq}
	for i, ev := range c.events.items {
		ev.job = jm[ev.job]
		if ev.exec != nil {
			ev.exec = n.execs[ev.exec.id]
		}
		n.events.items[i] = ev
	}
	n.usage = append(make([]float64, 0, cap(c.usage)), c.usage...)
	return n, jm, sm
}

package sim_test

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"pcaps/internal/carbon"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

// TestRunGroupMatchesSequential is the fork-determinism gate for the
// common-prefix group runner: for every (seed, policy group, cluster
// regime), RunGroup's results must be byte-identical — compared as
// canonical JSON, every field including per-job JCTs, usage timelines,
// and deferral counters — to simulating each policy from scratch with
// its own fresh cluster. This is the contract that lets the experiment
// runners group sweep cells without changing a single published digit.
func TestRunGroupMatchesSequential(t *testing.T) {
	t.Parallel()

	// A trace with a pronounced swing so carbon-aware wrappers actually
	// diverge from their inner policies mid-run (a flat trace would let
	// every variant ride the shared prefix to completion).
	mkTrace := func(t *testing.T) *carbon.Trace {
		t.Helper()
		vals := make([]float64, 600)
		for i := range vals {
			vals[i] = 300 + 250*math.Sin(float64(i)/10)
		}
		tr, err := carbon.New("swing", 60, vals)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	type group struct {
		name string
		mk   func(seed int64) []sim.Scheduler
	}
	groups := []group{
		{"fifo+cap", func(seed int64) []sim.Scheduler {
			return []sim.Scheduler{&sched.FIFO{}, sched.NewCAP(&sched.FIFO{}, 20)}
		}},
		{"wfair+cap", func(seed int64) []sim.Scheduler {
			return []sim.Scheduler{&sched.WeightedFair{}, sched.NewCAP(&sched.WeightedFair{}, 20)}
		}},
		{"decima+pcaps-sweep", func(seed int64) []sim.Scheduler {
			scheds := []sim.Scheduler{sched.NewDecima(seed)}
			for _, g := range []float64{0.25, 0.5, 0.9} {
				scheds = append(scheds, sched.NewPCAPS(sched.NewDecima(seed), g, seed))
			}
			return scheds
		}},
		{"decima+cap+pcaps", func(seed int64) []sim.Scheduler {
			return []sim.Scheduler{
				sched.NewDecima(seed),
				sched.NewCAP(sched.NewDecima(seed), 20),
				sched.NewPCAPS(sched.NewDecima(seed), 0.5, seed),
			}
		}},
	}
	regimes := []struct {
		name string
		cfg  func(tr *carbon.Trace, seed int64) sim.Config
	}{
		{"pool", func(tr *carbon.Trace, seed int64) sim.Config {
			return sim.Config{NumExecutors: 12, Trace: tr, Seed: seed}
		}},
		{"hold", func(tr *carbon.Trace, seed int64) sim.Config {
			return sim.Config{NumExecutors: 12, Trace: tr, Seed: seed,
				HoldExecutors: true, IdleTimeout: 60}
		}},
	}

	for _, seed := range []int64{1, 7, 42} {
		for _, g := range groups {
			for _, reg := range regimes {
				name := fmt.Sprintf("%s/%s/seed%d", g.name, reg.name, seed)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					tr := mkTrace(t)
					jobs := workload.Batch(workload.BatchConfig{
						N: 12, MeanInterarrival: 45, Mix: workload.MixTPCH, Seed: seed,
					})
					cfg := reg.cfg(tr, seed)
					got, err := sim.RunGroup(cfg, jobs, g.mk(seed))
					if err != nil {
						t.Fatalf("RunGroup: %v", err)
					}
					// Fresh scheduler instances for the from-scratch runs:
					// the group consumed the first set's internal state.
					for i, s := range g.mk(seed) {
						want, err := sim.Run(cfg, jobs, s)
						if err != nil {
							t.Fatalf("Run(%s): %v", s.Name(), err)
						}
						gb, wb := asJSON(t, got[i]), asJSON(t, want)
						if gb != wb {
							t.Errorf("variant %d (%s): grouped result differs from from-scratch run\n--- group ---\n%s\n--- scratch ---\n%s",
								i, s.Name(), gb, wb)
						}
					}
				})
			}
		}
	}
}

// TestRunGroupSingleAndFallback pins the degenerate paths: a one-element
// group and a non-forkable config (failure injection on) must both fall
// back to plain sequential runs.
func TestRunGroupSingleAndFallback(t *testing.T) {
	t.Parallel()
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = 300
	}
	tr, err := carbon.New("flat", 60, vals)
	if err != nil {
		t.Fatal(err)
	}
	jobs := workload.Batch(workload.BatchConfig{N: 6, MeanInterarrival: 30, Mix: workload.MixTPCH, Seed: 3})

	single := sim.Config{NumExecutors: 8, Trace: tr, Seed: 3}
	got, err := sim.RunGroup(single, jobs, []sim.Scheduler{&sched.FIFO{}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(single, jobs, &sched.FIFO{})
	if err != nil {
		t.Fatal(err)
	}
	if asJSON(t, got[0]) != asJSON(t, want) {
		t.Error("single-scheduler group differs from plain Run")
	}

	unforkable := sim.Config{NumExecutors: 8, Trace: tr, Seed: 3, FailureRate: 0.05}
	got, err = sim.RunGroup(unforkable, jobs, []sim.Scheduler{&sched.FIFO{}, sched.NewCAP(&sched.FIFO{}, 20)})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range []sim.Scheduler{&sched.FIFO{}, sched.NewCAP(&sched.FIFO{}, 20)} {
		want, err := sim.Run(unforkable, jobs, s)
		if err != nil {
			t.Fatal(err)
		}
		if asJSON(t, got[i]) != asJSON(t, want) {
			t.Errorf("fallback variant %d differs from plain Run", i)
		}
	}
}

func asJSON(t *testing.T, r *sim.Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

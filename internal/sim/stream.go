package sim

// Hyperscale streaming mode (DESIGN.md §10). RunStream is the memory-
// bounded twin of Run: jobs are admitted lazily from a JobSource as
// their arrival times come due, completed jobs' runtime state is retired
// eagerly back into a per-cluster pool (arena-backed stage records), and
// per-job outputs fold into constant-memory streaming reducers. Peak
// memory is proportional to the in-flight job count — offered load times
// sojourn time — not to the total number of jobs simulated, which is
// what lets one cluster process millions of jobs on thousands of
// executors without materializing any O(jobs) state.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"pcaps/internal/dag"
	"pcaps/internal/metrics"
)

// JobSource yields the jobs of a run lazily, in non-decreasing Arrival
// order, returning (nil, nil) when the stream is exhausted. The engine
// takes ownership of every yielded job (Validate normalizes edge lists
// in place), so sources must produce fresh jobs, never shared templates.
// workload.NewSource adapts the seeded generator to this contract.
type JobSource interface {
	Next() (*dag.Job, error)
}

// SliceSource adapts an in-memory batch to the JobSource contract,
// cloning each job on yield so shared templates stay read-only. It is
// the bridge the equivalence tests drive both engines through.
type SliceSource struct {
	Jobs []*dag.Job
	next int
}

// Next yields a clone of the next job, or (nil, nil) past the end.
func (s *SliceSource) Next() (*dag.Job, error) {
	if s.next >= len(s.Jobs) {
		return nil, nil
	}
	j := s.Jobs[s.next].Clone()
	s.next++
	return j, nil
}

// StreamStats is the constant-memory summary RunStream folds per-job
// outputs into. Quantiles are P² sketch estimates (deterministic for a
// given completion sequence, but not the exact order statistics — see
// metrics.P2Quantile); the backlog figures are exact.
type StreamStats struct {
	// Admitted counts jobs drawn from the source.
	Admitted int
	// PeakInFlight is the maximum number of jobs simultaneously admitted
	// and incomplete — the quantity the engine's memory is proportional to.
	PeakInFlight int
	// MeanInFlight is the time-weighted mean of the same depth.
	MeanInFlight float64
	// P50JCT, P95JCT, P99JCT are sketch estimates of the job-completion-
	// time quantiles in seconds.
	P50JCT, P95JCT, P99JCT float64
	// RecycledRuns counts JobRun records served from the retirement pool
	// rather than freshly allocated.
	RecycledRuns int
}

// streamState carries the reducers and retirement pool of one RunStream.
type streamState struct {
	pool    runPool
	backlog metrics.StreamBacklog
	p50     *metrics.P2Quantile
	p95     *metrics.P2Quantile
	p99     *metrics.P2Quantile

	perJob bool
	// jcts/jobCarbon are indexed by admission order; only populated when
	// perJob is set (PerJobOn defeats the memory bound by request).
	jcts      []float64
	jobCarbon []float64
	// sumJCT accumulates completion-order JCT sums for the PerJobOff
	// path; ect tracks the latest completion either way.
	sumJCT float64
	ect    float64
}

// RunStream simulates jobs drawn lazily from src under the scheduler
// until the source is exhausted and every admitted job completes. Small
// batches produce summaries identical to Run (bit-for-bit when
// PerJobResults is PerJobOn; AvgJCT differs only by float re-association
// otherwise) — pinned by TestRunStreamMatchesRun — while memory stays
// bounded by the in-flight job count.
//
// TrackJobUsage and Observer are incompatible with state retirement
// (both expose per-job state whose lifetime streaming deliberately
// ends early) and are rejected.
func RunStream(cfg Config, src JobSource, s Scheduler) (*Result, error) {
	if cfg.Trace == nil {
		return nil, errors.New("sim: config requires a carbon trace")
	}
	if cfg.NumExecutors < 1 {
		return nil, fmt.Errorf("sim: need at least one executor, got %d", cfg.NumExecutors)
	}
	if src == nil {
		return nil, errors.New("sim: RunStream requires a job source")
	}
	if cfg.TrackJobUsage {
		return nil, errors.New("sim: RunStream does not support TrackJobUsage (per-job state is retired eagerly)")
	}
	if cfg.Observer != nil {
		return nil, errors.New("sim: RunStream does not support Observer (retired state must not escape)")
	}
	if cfg.ForecastHorizon <= 0 {
		cfg.ForecastHorizon = 48 * cfg.Trace.Interval
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 20_000_000
	}
	if cfg.FailureRate < 0 || cfg.FailureRate > 0.9 {
		return nil, fmt.Errorf("sim: failure rate %v outside [0, 0.9]", cfg.FailureRate)
	}

	c := &Cluster{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), epoch: 1, streaming: true}
	c.boundsClock = math.NaN()
	c.execs = make([]*executor, cfg.NumExecutors)
	c.free = make(intHeap, 0, cfg.NumExecutors)
	for i := 0; i < cfg.NumExecutors; i++ {
		c.execs[i] = &executor{id: i, lastJob: -1}
		c.free.push(i)
	}
	c.usage = make([]float64, 0, len(cfg.Trace.Values))
	if next := cfg.Trace.NextChange(0); !math.IsInf(next, 1) {
		c.push(event{at: next, kind: evCarbon})
	}

	st := &streamState{
		p50:    metrics.NewP2Quantile(0.50),
		p95:    metrics.NewP2Quantile(0.95),
		p99:    metrics.NewP2Quantile(0.99),
		perJob: cfg.PerJobResults == PerJobOn,
	}

	var totalWork float64
	nextJob, err := fetch(src)
	if err != nil {
		return nil, err
	}
	if nextJob == nil {
		return nil, errors.New("sim: no jobs")
	}
	c.srcDone = false

	events := 0
	var lastArrival float64 = math.Inf(-1)
	for {
		// Admission beats the heap at ties: the classic engine seeds every
		// arrival before any other event, so at equal timestamps arrivals
		// carry the lowest sequence numbers and fire first. Reproducing
		// that rule here is what makes the two trajectories identical.
		admit := nextJob != nil && (c.events.Len() == 0 || nextJob.Arrival <= c.events.items[0].at)
		if !admit && c.events.Len() == 0 {
			break
		}
		events++
		if events > c.cfg.MaxEvents {
			return nil, fmt.Errorf("sim: exceeded %d events (scheduler livelock?)", c.cfg.MaxEvents)
		}
		if admit {
			j := nextJob
			if j.Arrival < lastArrival {
				return nil, fmt.Errorf("sim: job %d arrives at %v, before the prior admission at %v (sources must yield non-decreasing arrivals)", j.ID, j.Arrival, lastArrival)
			}
			lastArrival = j.Arrival
			if err := j.Validate(); err != nil {
				return nil, fmt.Errorf("sim: job %d: %w", j.ID, err)
			}
			totalWork += j.TotalWork()
			c.advance(j.Arrival)
			c.admit(st, j)
			if nextJob, err = fetch(src); err != nil {
				return nil, err
			}
			c.srcDone = nextJob == nil
		} else {
			ev := c.pop()
			c.advance(ev.at)
			c.handleEvent(ev)
		}
		if err := c.schedule(s); err != nil {
			return nil, err
		}
		c.retire(st)
		if !c.unfinished() && c.noTaskPending() {
			break
		}
	}
	if c.doneCount < c.admitted {
		return nil, fmt.Errorf("sim: %d of %d admitted jobs did not complete", c.admitted-c.doneCount, c.admitted)
	}
	return c.buildStreamResult(s.Name(), st, totalWork, events)
}

// fetch pulls the next job from the source, normalizing its error.
func fetch(src JobSource) (*dag.Job, error) {
	j, err := src.Next()
	if err != nil {
		return nil, fmt.Errorf("sim: job source: %w", err)
	}
	return j, nil
}

// admit activates one source job: acquire a pooled JobRun, count it, and
// run the same arrival transition the event handler applies.
//
//pcaps:hotpath
func (c *Cluster) admit(st *streamState, j *dag.Job) {
	jr := st.pool.acquire(j, c.admitted)
	c.admitted++
	st.backlog.Arrive(j.Arrival)
	c.arrive(jr)
}

// retire drains the jobs completed by the event just processed: their
// outputs fold into the reducers and their runtime records return to the
// pool. Retirement runs strictly after the event's scheduling pass, when
// nothing in the cluster references the finished job.
//
//pcaps:hotpath
func (c *Cluster) retire(st *streamState) {
	for i, j := range c.doneScratch {
		jct := j.CompletedAt - j.Job.Arrival
		st.p50.Add(jct)
		st.p95.Add(jct)
		st.p99.Add(jct)
		st.backlog.Complete(j.CompletedAt)
		if st.perJob {
			for len(st.jcts) <= j.index {
				//hot:alloc amortized growth of the explicitly requested per-job slices
				st.jcts = append(st.jcts, 0)
				//hot:alloc amortized growth of the explicitly requested per-job slices
				st.jobCarbon = append(st.jobCarbon, 0)
			}
			st.jcts[j.index] = jct
			st.jobCarbon[j.index] = j.CarbonGrams
		} else {
			st.sumJCT += jct
		}
		if j.CompletedAt > st.ect {
			st.ect = j.CompletedAt
		}
		st.pool.release(j)
		c.doneScratch[i] = nil
	}
	c.doneScratch = c.doneScratch[:0]
}

// buildStreamResult assembles the run summary from the reducers.
func (c *Cluster) buildStreamResult(name string, st *streamState, totalWork float64, events int) (*Result, error) {
	res := &Result{
		Scheduler:    name,
		ECT:          st.ect,
		Usage:        c.usage,
		Deferrals:    c.deferrals,
		DeferredWork: c.deferredWork,
		TaskRetries:  c.retries,
		TotalWork:    totalWork,
		Events:       events,
	}
	if st.perJob {
		res.JCTs = st.jcts
		res.JobCarbon = st.jobCarbon
		// Sum in admission order — the exact float-op sequence of the
		// classic buildResult, so the equivalence tests compare bits.
		var sum float64
		for _, jct := range st.jcts {
			sum += jct
		}
		res.AvgJCT = sum / float64(c.admitted)
	} else {
		res.AvgJCT = st.sumJCT / float64(c.admitted)
	}
	for i, u := range c.usage {
		res.CarbonGrams += u * c.cfg.Trace.Values[min(i, len(c.cfg.Trace.Values)-1)] / 3600
	}
	res.Stream = &StreamStats{
		Admitted:     c.admitted,
		PeakInFlight: st.backlog.Peak(),
		MeanInFlight: st.backlog.Mean(),
		P50JCT:       st.p50.Value(),
		P95JCT:       st.p95.Value(),
		P99JCT:       st.p99.Value(),
		RecycledRuns: st.pool.recycled,
	}
	return res, nil
}

// runPool recycles JobRun records between admissions. Stage records live
// in a per-JobRun arena ([]StageRun) whose capacity grows to the widest
// job seen and is then reused, so steady-state admission allocates
// nothing beyond the dag.Job itself. Released runs drop their dag and
// stage pointers: the pool must never extend a retired job's object
// lifetime, only its containers'.
type runPool struct {
	free     []*JobRun
	recycled int
}

// acquire returns a JobRun for the job, reusing a retired record's
// backing arrays when one is available.
//
//pcaps:hotpath
func (p *runPool) acquire(j *dag.Job, index int) *JobRun {
	var jr *JobRun
	if n := len(p.free); n > 0 {
		jr = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.recycled++
	} else {
		//hot:alloc pool miss; steady state reuses retired records
		jr = &JobRun{}
	}
	ns := len(j.Stages)
	arena, stages := jr.arena, jr.Stages
	if cap(arena) < ns {
		//hot:alloc arena growth to the widest job seen, then reused
		arena = make([]StageRun, ns)
	} else {
		arena = arena[:ns]
	}
	if cap(stages) < ns {
		//hot:alloc stage-pointer growth to the widest job seen, then reused
		stages = make([]*StageRun, ns)
	} else {
		stages = stages[:ns]
	}
	runnable, held, gen := jr.runnable[:0], jr.held[:0], jr.gen+1
	*jr = JobRun{Job: j, Stages: stages, arena: arena, index: index, runnable: runnable, held: held, gen: gen}
	for i, stg := range j.Stages {
		arena[i] = StageRun{Stage: stg, ParentsLeft: len(stg.Parents)}
		stages[i] = &arena[i]
	}
	return jr
}

// release retires a completed run back to the pool, clearing every
// pointer to the job's immutable structure so the dag becomes garbage
// the moment its run is recycled.
//
//pcaps:hotpath
func (p *runPool) release(jr *JobRun) {
	jr.Job = nil
	for i := range jr.arena {
		jr.arena[i].Stage = nil
	}
	//hot:alloc amortized free-list growth; bounded by peak in-flight jobs
	p.free = append(p.free, jr)
}

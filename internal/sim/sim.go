// Package sim is a discrete-event simulator of a Spark-style data
// processing cluster, modeled on the simulator of Mao et al. [48] that the
// paper extends (§5.2). It captures the first-order effects that matter to
// carbon-aware scheduling: per-stage task waves, per-stage parallelism
// limits, executor hand-off delays between jobs, per-job executor caps
// (the prototype's Kubernetes behaviour, Appendix A.1.2), and scheduling
// events on job arrivals, task completions, executor idling, and every
// carbon-intensity boundary (Alg. 1 line 2).
//
// Carbon accounting is ex post facto as in §5.2: busy executor-seconds are
// accumulated per carbon interval while the simulation runs and converted
// to gCO2eq afterwards, so accounting never perturbs scheduling.
//
// The scheduling core is incremental (see DESIGN.md): the cluster
// maintains a per-job runnable-stage index, an idle-executor free list,
// and per-job held-executor lists, all updated only at the transitions
// that can change them — job arrival, task dispatch, stage finish,
// hold expiry, and job completion. The Runnable/ActiveJobs/
// OutstandingWork accessors are epoch-cached views over that state, so
// the repeated Pick calls within one scheduling event cost no allocations
// and no full-state rescans.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"pcaps/internal/carbon"
	"pcaps/internal/dag"
)

// Config parameterizes one simulation run.
type Config struct {
	// NumExecutors is K, the number of machines.
	NumExecutors int
	// Trace is the carbon-intensity signal. Required.
	Trace *carbon.Trace
	// ForecastHorizon is the lookahead window, in experiment seconds,
	// over which the schedulers' L and U bounds are computed. The paper
	// uses 48 grid-hours; at the 1-min = 1-h scaling that is 48 samples.
	// Zero selects 48 trace intervals.
	ForecastHorizon float64
	// Forecaster supplies the (L, U) bounds; nil selects the paper's
	// oracle assumption (exact window extremes). Use
	// carbon.Persistence to study operation under realistic,
	// history-only forecasts.
	Forecaster carbon.Forecaster
	// MoveDelay is the executor hand-off latency in seconds incurred
	// when an executor switches to a different job (Spark executor
	// movement, §5.2). Within-job stage switches are free.
	MoveDelay float64
	// PerJobCap bounds the executors simultaneously assigned to one job;
	// 0 means unlimited. The paper's prototype uses 25 (§6.3).
	PerJobCap int
	// HoldExecutors models executor retention (Appendix A.1.2): an
	// executor granted to a job stays with that job — consuming
	// resources and emitting carbon — while it has no task to run, until
	// either the job completes or the executor has idled for
	// IdleTimeout (Spark's executorIdleTimeout). Retained executors
	// serve their job's newly runnable stages directly (the
	// in-application FIFO). This is the mechanism behind standalone
	// FIFO's blocking and its worse carbon footprint relative to
	// schedulers that actively manage executor placement (Fig. 15).
	HoldExecutors bool
	// IdleTimeout is the retention window in seconds for HoldExecutors
	// mode; 0 selects Spark's default of 60 s, negative values hold for
	// the job's whole lifetime (standalone mode without dynamic
	// allocation).
	IdleTimeout float64
	// LegacyHoldWakeups restores the seed engine's hold-mode task
	// hand-off: every task completion released the executor to the job's
	// held pool, re-dispatched it through the in-application FIFO at the
	// same instant, and scheduled an idle-timeout expiry event — so each
	// task produced an extra (almost always stale) expiry event whose
	// processing was itself a scheduling event. Those spurious wake-ups
	// are observable to deferring schedulers (CAP, PCAPS, GreenHadoop):
	// each is an extra decision point at which a deferral can be
	// reconsidered. The published experiment tables were produced under
	// that cadence, so the experiment configs set this flag for
	// byte-identical reproduction; new work should leave it false and
	// get the fixed behaviour — a hold-dispatched stage keeps its
	// executor across task waves (the in-place continuation), with no
	// per-task expiry churn. See DESIGN.md.
	LegacyHoldWakeups bool
	// DurationJitter is the relative standard deviation of task
	// durations (0 = deterministic).
	DurationJitter float64
	// FailureRate is the probability that a task attempt fails and is
	// retried on the same executor (transient failure injection; the
	// lost attempt still consumed executor time and carbon). Must be in
	// [0, 0.9].
	FailureRate float64
	// Seed drives task-duration jitter and failure injection.
	Seed int64
	// MaxEvents bounds the event loop as a hang guard; 0 selects a
	// generous default.
	MaxEvents int
	// PerJobResults gates the O(jobs) Result slices (JCTs, JobCarbon).
	// The zero value keeps them for Run (compatibility) and drops them
	// for RunStream (memory-bounded by construction); PerJobOn / PerJobOff
	// force either choice on either engine.
	PerJobResults PerJob
	// TrackJobUsage additionally records each job's busy
	// executor-seconds per carbon interval (Result.JobUsage) — the
	// per-job shading of the paper's occupancy plots (Fig. 6).
	TrackJobUsage bool
	// Observer, when non-nil, is invoked after each event's scheduling
	// pass completes, with the cluster in a consistent scheduler-visible
	// state — the capture point for Cluster.Snapshot exports. The
	// callback must not mutate cluster state and must not retain the
	// view slices across calls; Snapshot itself copies what it needs.
	Observer func(c *Cluster)
}

// PerJob selects whether a run retains per-job result slices.
type PerJob int

const (
	// PerJobDefault keeps per-job slices in Run and drops them in
	// RunStream — each engine's historical/natural behaviour.
	PerJobDefault PerJob = iota
	// PerJobOn always records Result.JCTs and Result.JobCarbon.
	PerJobOn
	// PerJobOff always drops them; AvgJCT/ECT/CarbonGrams still come out.
	PerJobOff
)

// StageRun is the runtime state of one stage of one job.
type StageRun struct {
	Stage *dag.Stage
	// Dispatched and Completed count tasks handed to executors and
	// finished, respectively.
	Dispatched, Completed int
	// Running is the number of executors currently bound to the stage.
	Running int
	// Limit is the parallelism limit in force, set each time a
	// scheduler (re)selects the stage. 0 means not yet scheduled.
	Limit int
	// ParentsLeft counts incomplete parent stages; the stage is
	// runnable when it reaches 0.
	ParentsLeft int
}

// Runnable reports whether the stage can accept a new executor under its
// current limit.
func (s *StageRun) Runnable() bool {
	return s.ParentsLeft == 0 && s.Dispatched < s.Stage.NumTasks
}

// RemainingTasks returns the number of undispatched tasks.
func (s *StageRun) RemainingTasks() int { return s.Stage.NumTasks - s.Dispatched }

// JobRun is the runtime state of one job.
type JobRun struct {
	Job    *dag.Job
	Stages []*StageRun
	// StagesDone counts completed stages.
	StagesDone int
	// Executors counts executors currently bound to the job.
	Executors int
	// Arrived reports whether the job's arrival event has fired.
	Arrived bool
	// index is the job's position in the batch, for usage attribution.
	index int
	// Done reports completion; CompletedAt is its timestamp.
	Done        bool
	CompletedAt float64
	// CarbonGrams accumulates the job's attributed carbon footprint.
	CarbonGrams float64

	// runnable is the incrementally maintained index of this job's
	// runnable stages (all parents complete, undispatched tasks left),
	// sorted by stage ID. Stages enter on arrival or when their last
	// parent finishes, and leave when their last task is dispatched.
	runnable []*StageRun
	// held lists the executors this job is retaining between tasks
	// (HoldExecutors mode), so hold-mode dispatch and job-completion
	// release never scan the whole cluster.
	held []*executor
	// arena backs Stages for pooled runs (RunStream): stage records live
	// contiguously and are reused across recycles. Nil in the classic
	// engine, where stage records are allocated individually.
	arena []StageRun
	// gen distinguishes successive occupants of a recycled record:
	// the pool increments it on every acquire, so pointer-keyed caches
	// (sched's critical-path memo) can detect that a *JobRun they
	// remember now runs a different job. Always 0 in the classic engine.
	gen int
	// holdReady mirrors len(held) > 0 && len(runnable) > 0 — the job can
	// serve a held executor right now. The cluster counts holdReady jobs
	// so the hold-mode dispatch pass is skipped entirely when no job has
	// both a parked executor and runnable work (the common case: after
	// every dispatch pass the count returns to zero, and it only rises
	// again at a stage finish, hold, or arrival transition).
	holdReady bool
}

// Generation returns the recycle count of this runtime record (always 0
// outside the streaming engine). A (pointer, generation) pair is a
// stable identity for caches that outlive one job's run: when the
// generation moves, the record was retired and now carries another job.
func (j *JobRun) Generation() int { return j.gen }

// RemainingWork returns the job's undone work in executor-seconds,
// counting both undispatched and in-flight tasks.
func (j *JobRun) RemainingWork() float64 {
	var w float64
	for _, s := range j.Stages {
		w += float64(s.Stage.NumTasks-s.Completed) * s.Stage.TaskDuration
	}
	return w
}

// StageRef identifies a runnable stage to a scheduler.
type StageRef struct {
	Job   *JobRun
	Stage *StageRun
}

// Decision is a scheduler's answer to one Pick call.
type Decision struct {
	// Ref is the stage to receive executors. Meaningless when Defer.
	Ref StageRef
	// Limit is the parallelism limit to apply to the stage (maximum
	// concurrent executors). Values < 1 mean "no limit" (the standalone
	// FIFO over-assignment behaviour of Appendix A.1.2).
	Limit int
	// MaxNew bounds how many executors this single decision may bind;
	// values < 1 mean unbounded. CAP uses it to enforce its quota
	// without preempting running work.
	MaxNew int
	// Defer stops all further assignment until the next scheduling
	// event, idling the remaining free executors (Alg. 1 line 10).
	Defer bool
}

// DeferDecision is the Decision that idles the cluster until the next
// scheduling event.
var DeferDecision = Decision{Defer: true}

// Scheduler chooses stages for idle executors. Pick is invoked repeatedly
// during a scheduling event while idle executors and runnable stages
// remain; returning Defer ends the event.
type Scheduler interface {
	Name() string
	Pick(c *Cluster) Decision
}

// executor is one machine.
type executor struct {
	id   int
	busy bool
	// job / stage the executor is bound to; nil when idle.
	job   *JobRun
	stage *StageRun
	// reserved is the job holding this executor between tasks in
	// HoldExecutors mode; nil otherwise. holdExpire is the time the
	// current reservation lapses.
	reserved   *JobRun
	holdExpire float64
	// lastJob remembers the previous binding's job index for move-delay
	// accounting (-1 before the first binding). Indices rather than
	// *JobRun pointers: the streaming engine recycles JobRun records
	// through a pool, so a pointer could alias a later job and silently
	// skip its hand-off delay, while indices are never reused.
	lastJob int
	// heldPos is this executor's index in reserved.held, for O(1)
	// removal. Meaningless when reserved is nil.
	heldPos int
	// inReservedIdle marks that the executor's ID is present in the
	// cluster's reservedIdle heap (entries are removed lazily).
	inReservedIdle bool
}

// Cluster is the simulation state exposed to schedulers.
type Cluster struct {
	cfg    Config
	clock  float64
	execs  []*executor
	jobs   []*JobRun
	events eventHeap
	rng    *rand.Rand
	// busyCount counts executors running a task; activeCount adds the
	// executors a job merely holds (HoldExecutors mode). Carbon and
	// quota decisions see activeCount — held executors burn power.
	busyCount   int
	activeCount int

	// free holds the IDs of executors in the shared idle pool, popped in
	// ascending order so assignment matches the historical full scan.
	free intHeap
	// reservedIdle holds the IDs of executors that are held by a job and
	// awaiting work (HoldExecutors mode). Entries go stale when an
	// executor is released or dispatched; staleness is detected on pop
	// via the executor's own state, and inReservedIdle keeps each ID at
	// most once in the heap.
	reservedIdle intHeap
	// reservedScratch is reused by dispatchReserved's drain.
	reservedScratch []int
	// holdReadyCount counts jobs with holdReady set; dispatchReserved is
	// a guaranteed no-op while it is zero.
	holdReadyCount int
	// active lists arrived, incomplete jobs in batch order — the
	// incremental form of the historical scan over all jobs.
	active []*JobRun
	// doneCount counts completed jobs, replacing the historical per-event
	// scan over all jobs in unfinished().
	doneCount int

	// streaming marks a RunStream-driven cluster: jobs are admitted from
	// a source (c.jobs stays empty), admitted counts them, srcDone
	// records source exhaustion, and finishStage parks completed jobs in
	// doneScratch for retirement after the event's scheduling pass.
	streaming   bool
	srcDone     bool
	admitted    int
	doneScratch []*JobRun

	// epoch counts state mutations that can change the scheduler-facing
	// views; the cached views below are rebuilt (into reused scratch)
	// only when their epoch falls behind. Within one scheduling event a
	// scheduler may call Runnable/ActiveJobs/OutstandingWork any number
	// of times for free.
	epoch            int
	runnableEpoch    int
	runnableView     []StageRef
	outstandingEpoch int
	outstanding      float64

	// usage[i] is busy executor-seconds accumulated during carbon
	// interval i.
	usage []float64
	// deferrals and deferredWork record PCAPS-style filter activity,
	// reported by wrapping schedulers through NoteDeferral.
	deferrals    int
	deferredWork float64
	// retries counts failed task attempts (failure injection).
	retries int
	// jobUsage mirrors usage per job when Config.TrackJobUsage is set.
	jobUsage [][]float64

	// sink, when non-nil, receives NoteDeferral accounting instead of the
	// cluster's own counters. The lockstep group runner (fork.go) points
	// it at the per-variant sink before each scheduler's Pick so shadow
	// schedulers evaluated on shared state never pollute each other.
	sink *deferralSink

	// boundsClock/boundsLo/boundsHi cache the oracle CarbonBounds for the
	// current clock value: CAP-style wrappers query the bounds on every
	// Pick, several times per scheduling event, and the answer only
	// changes when the clock moves. boundsClock is NaN when invalid.
	boundsClock        float64
	boundsLo, boundsHi float64
}

// Now returns the simulation clock in experiment seconds.
func (c *Cluster) Now() float64 { return c.clock }

// Carbon returns the current carbon intensity.
func (c *Cluster) Carbon() float64 { return c.cfg.Trace.At(c.clock) }

// CarbonBounds returns the forecast bounds (L, U) over the configured
// lookahead window starting now, from the configured forecaster (oracle
// by default, per the paper's assumption).
func (c *Cluster) CarbonBounds() (lo, hi float64) {
	if c.cfg.Forecaster != nil {
		// Forecasters may be stateful (history accumulation), so their
		// answers are never cached.
		return c.cfg.Forecaster.Bounds(c.cfg.Trace, c.clock, c.cfg.ForecastHorizon)
	}
	if c.boundsClock != c.clock {
		c.boundsLo, c.boundsHi = c.cfg.Trace.Bounds(c.clock, c.cfg.ForecastHorizon)
		c.boundsClock = c.clock
	}
	return c.boundsLo, c.boundsHi
}

// GreenFraction returns the local renewable (solar) capacity fraction now
// — the signal GreenHadoop schedules against.
func (c *Cluster) GreenFraction() float64 { return c.cfg.Trace.SolarFraction(c.clock) }

// GreenFractionAt returns the green fraction at an arbitrary future time
// (GreenHadoop plans over a window).
func (c *Cluster) GreenFractionAt(sec float64) float64 { return c.cfg.Trace.SolarFraction(sec) }

// CarbonInterval returns the trace sampling interval in seconds.
func (c *Cluster) CarbonInterval() float64 { return c.cfg.Trace.Interval }

// K returns the cluster size.
func (c *Cluster) K() int { return c.cfg.NumExecutors }

// PerJobCap returns the configured per-job executor cap (0 = uncapped),
// so policies can avoid proposing stages the assignment loop must reject.
func (c *Cluster) PerJobCap() int { return c.cfg.PerJobCap }

// BusyCount returns the number of executors consuming cluster resources:
// those running a task plus those held by a job between tasks in
// HoldExecutors mode. This is the E(t) of the paper's carbon model and the
// count CAP's quota gates on.
func (c *Cluster) BusyCount() int { return c.activeCount }

// RunningCount returns only the executors actually executing a task.
func (c *Cluster) RunningCount() int { return c.busyCount }

// IdleCount returns the number of executors in the shared free pool.
func (c *Cluster) IdleCount() int { return len(c.execs) - c.activeCount }

// Jobs returns all jobs in arrival order (including future and finished
// ones; check Arrived/Done).
func (c *Cluster) Jobs() []*JobRun { return c.jobs }

// invalidate marks every cached view stale. It must be called (at least
// once) on any state change that can alter what schedulers observe:
// arrivals, task dispatch, task completion, executor release, hold
// expiry, and job completion.
func (c *Cluster) invalidate() { c.epoch++ }

// ActiveJobs returns arrived, incomplete jobs in arrival order.
//
// The returned slice is a live view owned by the cluster: it is valid
// until the next state change (in practice, until the scheduler's Pick
// returns) and must not be retained or modified.
//
//pcaps:hotpath
func (c *Cluster) ActiveJobs() []*JobRun { return c.active }

// Runnable returns references to every stage that can accept work:
// arrived job, all parents complete, undispatched tasks remaining, and
// per-job cap not exhausted. Order is deterministic (job arrival order,
// then stage ID).
//
// The returned slice is an epoch-cached view owned by the cluster:
// repeated calls within one scheduling event return the same backing
// array without rebuilding. It is valid until the next state change and
// must not be retained or modified.
//
//pcaps:hotpath
func (c *Cluster) Runnable() []StageRef {
	if c.runnableEpoch != c.epoch {
		c.runnableView = c.runnableView[:0]
		for _, j := range c.active {
			if c.cfg.PerJobCap > 0 && j.Executors >= c.cfg.PerJobCap {
				continue
			}
			for _, s := range j.runnable {
				c.runnableView = append(c.runnableView, StageRef{Job: j, Stage: s})
			}
		}
		c.runnableEpoch = c.epoch
	}
	return c.runnableView
}

// OutstandingWork returns total undone work across active jobs, in
// executor-seconds. The sum is epoch-cached alongside the other views.
//
//pcaps:hotpath
func (c *Cluster) OutstandingWork() float64 {
	if c.outstandingEpoch != c.epoch {
		var w float64
		for _, j := range c.active {
			w += j.RemainingWork()
		}
		c.outstanding = w
		c.outstandingEpoch = c.epoch
	}
	return c.outstanding
}

// NoteDeferral lets carbon-aware wrapper schedulers record a filtered
// (deferred) stage so that the run report can estimate D(γ,c).
func (c *Cluster) NoteDeferral(ref StageRef) {
	var work float64
	if ref.Stage != nil {
		work = float64(ref.Stage.RemainingTasks()) * ref.Stage.Stage.TaskDuration
	}
	if c.sink != nil {
		c.sink.deferrals++
		c.sink.deferredWork += work
		return
	}
	c.deferrals++
	c.deferredWork += work
}

// errNoProgress guards against schedulers that return saturated stages.
var errNoProgress = errors.New("sim: scheduler made no progress")

// Result summarizes one run.
type Result struct {
	Scheduler string
	// ECT is the end-to-end completion time: the time the last job
	// finishes (experiments start at 0).
	ECT float64
	// AvgJCT is the mean job completion time (completion − arrival).
	AvgJCT float64
	// JCTs holds each job's completion time, indexed as cfg jobs. Nil
	// when per-job results are disabled (Config.PerJobResults).
	JCTs []float64
	// CarbonGrams is the total carbon footprint in gCO2eq assuming 1 kW
	// per busy executor.
	CarbonGrams float64
	// JobCarbon holds each job's attributed footprint in gCO2eq. Nil
	// when per-job results are disabled (Config.PerJobResults).
	JobCarbon []float64
	// Usage is busy executor-seconds per carbon interval (the timeline
	// consumed by core.DecomposeSavings).
	Usage []float64
	// JobUsage, when Config.TrackJobUsage is set, holds each job's busy
	// executor-seconds per carbon interval (rows index jobs as given).
	JobUsage [][]float64
	// Deferrals and DeferredWork report carbon-filter activity.
	Deferrals    int
	DeferredWork float64
	// Stream carries the streaming reducers' summary; non-nil only for
	// RunStream results.
	Stream *StreamStats
	// TaskRetries counts failed task attempts that were retried.
	TaskRetries int
	// TotalWork is the batch's total work in executor-seconds.
	TotalWork float64
	// Events is the number of processed simulation events.
	Events int
}

// Run simulates the batch of jobs under the scheduler until every job
// completes, returning the run summary. Jobs are deep-copied so templates
// can be reused across runs.
func Run(cfg Config, jobs []*dag.Job, s Scheduler) (*Result, error) {
	c, totalWork, err := newCluster(cfg, jobs)
	if err != nil {
		return nil, err
	}
	events, err := c.loopFrom(s, 0)
	if err != nil {
		return nil, err
	}
	return c.buildResult(s.Name(), totalWork, events)
}

// newCluster validates the configuration and builds the initial cluster
// state: executors in the free pool, cloned-and-validated jobs, arrival
// events, and the first carbon-boundary event. It returns the batch's
// total work in executor-seconds alongside the cluster.
func newCluster(cfg Config, jobs []*dag.Job) (*Cluster, float64, error) {
	if cfg.Trace == nil {
		return nil, 0, errors.New("sim: config requires a carbon trace")
	}
	if cfg.NumExecutors < 1 {
		return nil, 0, fmt.Errorf("sim: need at least one executor, got %d", cfg.NumExecutors)
	}
	if len(jobs) == 0 {
		return nil, 0, errors.New("sim: no jobs")
	}
	if cfg.ForecastHorizon <= 0 {
		cfg.ForecastHorizon = 48 * cfg.Trace.Interval
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 20_000_000
	}
	if cfg.FailureRate < 0 || cfg.FailureRate > 0.9 {
		return nil, 0, fmt.Errorf("sim: failure rate %v outside [0, 0.9]", cfg.FailureRate)
	}

	c := &Cluster{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), epoch: 1}
	c.boundsClock = math.NaN() // cache starts invalid (clock starts at 0)
	c.execs = make([]*executor, cfg.NumExecutors)
	c.free = make(intHeap, 0, cfg.NumExecutors)
	for i := 0; i < cfg.NumExecutors; i++ {
		c.execs[i] = &executor{id: i, lastJob: -1}
		c.free.push(i)
	}
	// Preallocate the usage timeline to the trace length so the per-event
	// accounting in advance never grows it.
	c.usage = make([]float64, 0, len(cfg.Trace.Values))
	if cfg.TrackJobUsage {
		c.jobUsage = make([][]float64, len(jobs))
	}
	var totalWork float64
	for idx, tpl := range jobs {
		// Clone before validating: Validate normalizes edge lists in
		// place, and templates are shared by concurrent runs (the
		// experiment engine fans cells out over a worker pool), so the
		// shared template must only ever be read.
		j := tpl.Clone()
		if err := j.Validate(); err != nil {
			return nil, 0, fmt.Errorf("sim: job %d: %w", tpl.ID, err)
		}
		run := &JobRun{Job: j, Stages: make([]*StageRun, len(j.Stages)), index: idx}
		for i, st := range j.Stages {
			run.Stages[i] = &StageRun{Stage: st, ParentsLeft: len(st.Parents)}
		}
		c.jobs = append(c.jobs, run)
		totalWork += j.TotalWork()
		c.push(event{at: j.Arrival, kind: evArrival, job: run})
	}
	// Seed carbon-boundary events lazily: push the first boundary; each
	// handler pushes the next. This keeps the heap small on long traces.
	if next := cfg.Trace.NextChange(0); !math.IsInf(next, 1) {
		c.push(event{at: next, kind: evCarbon})
	}
	return c, totalWork, nil
}

// handleEvent applies one popped event's state transition (the clock must
// already have advanced to ev.at).
func (c *Cluster) handleEvent(ev event) {
	switch ev.kind {
	case evArrival:
		c.arrive(ev.job)
	case evTaskDone:
		c.completeTask(ev.exec)
	case evCarbon:
		if next := c.cfg.Trace.NextChange(c.clock); !math.IsInf(next, 1) && c.unfinished() {
			c.push(event{at: next, kind: evCarbon})
		}
	case evHoldExpire:
		c.expireHold(ev.exec)
	}
}

// loopFrom drives the event loop to completion under one scheduler,
// starting from the cluster's current state with `events` events already
// processed (non-zero when resuming a forked clone). It returns the
// cumulative event count.
func (c *Cluster) loopFrom(s Scheduler, events int) (int, error) {
	for c.events.Len() > 0 {
		events++
		if events > c.cfg.MaxEvents {
			return events, fmt.Errorf("sim: exceeded %d events (scheduler livelock?)", c.cfg.MaxEvents)
		}
		ev := c.pop()
		c.advance(ev.at)
		c.handleEvent(ev)
		if err := c.schedule(s); err != nil {
			return events, err
		}
		if c.cfg.Observer != nil {
			c.cfg.Observer(c)
		}
		if !c.unfinished() && c.noTaskPending() {
			break
		}
	}
	return events, nil
}

// buildResult assembles the run summary from a finished cluster.
func (c *Cluster) buildResult(name string, totalWork float64, events int) (*Result, error) {
	res := &Result{
		Scheduler:    name,
		Usage:        c.usage,
		JobUsage:     c.jobUsage,
		Deferrals:    c.deferrals,
		DeferredWork: c.deferredWork,
		TaskRetries:  c.retries,
		TotalWork:    totalWork,
		Events:       events,
	}
	perJob := c.cfg.PerJobResults != PerJobOff
	var sumJCT float64
	for _, j := range c.jobs {
		if !j.Done {
			return nil, fmt.Errorf("sim: job %d did not complete", j.Job.ID)
		}
		jct := j.CompletedAt - j.Job.Arrival
		if perJob {
			res.JCTs = append(res.JCTs, jct)
			res.JobCarbon = append(res.JobCarbon, j.CarbonGrams)
		}
		sumJCT += jct
		if j.CompletedAt > res.ECT {
			res.ECT = j.CompletedAt
		}
	}
	res.AvgJCT = sumJCT / float64(len(c.jobs))
	for i, u := range c.usage {
		res.CarbonGrams += u * c.cfg.Trace.Values[min(i, len(c.cfg.Trace.Values)-1)] / 3600
	}
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// unfinished reports whether any job is incomplete. doneCount is
// maintained at the single place a job completes (finishStage), replacing
// the historical per-event scan over all jobs. A streaming cluster is
// unfinished while its source has jobs left or an admitted job runs.
func (c *Cluster) unfinished() bool {
	if c.streaming {
		return !c.srcDone || c.doneCount < c.admitted
	}
	return c.doneCount < len(c.jobs)
}

// updateHoldReady recomputes the job's holdReady bit and keeps the
// cluster-wide count in sync. It must be called after any mutation of
// j.held or j.runnable (and is cheap enough to call unconditionally).
func (c *Cluster) updateHoldReady(j *JobRun) {
	r := len(j.held) > 0 && len(j.runnable) > 0
	if r != j.holdReady {
		j.holdReady = r
		if r {
			c.holdReadyCount++
		} else {
			c.holdReadyCount--
		}
	}
}

// noTaskPending reports whether no task-completion events remain.
func (c *Cluster) noTaskPending() bool { return c.busyCount == 0 }

// arrive activates a job: it joins the active list (kept in batch order)
// and its root stages enter the runnable index.
func (c *Cluster) arrive(j *JobRun) {
	j.Arrived = true
	i := len(c.active)
	for i > 0 && c.active[i-1].index > j.index {
		i--
	}
	c.active = append(c.active, nil)
	copy(c.active[i+1:], c.active[i:])
	c.active[i] = j
	if cap(j.runnable) < len(j.Stages) {
		j.runnable = make([]*StageRun, 0, len(j.Stages))
	} else {
		j.runnable = j.runnable[:0] // pooled run: reuse the retired capacity
	}
	for _, s := range j.Stages {
		if s.ParentsLeft == 0 {
			j.runnable = append(j.runnable, s)
		}
	}
	c.updateHoldReady(j)
	c.invalidate()
}

// noteDispatch records one task hand-off on the stage; a fully dispatched
// stage leaves the runnable index.
func (c *Cluster) noteDispatch(j *JobRun, st *StageRun) {
	st.Dispatched++
	if st.Dispatched >= st.Stage.NumTasks {
		for i, s := range j.runnable {
			if s == st {
				j.runnable = append(j.runnable[:i], j.runnable[i+1:]...)
				break
			}
		}
		c.updateHoldReady(j)
	}
	c.invalidate()
}

// insertRunnable adds a newly ready stage to the job's runnable index,
// keeping stage-ID order (the in-application FIFO order).
func (c *Cluster) insertRunnable(j *JobRun, st *StageRun) {
	i := len(j.runnable)
	for i > 0 && j.runnable[i-1].Stage.ID > st.Stage.ID {
		i--
	}
	j.runnable = append(j.runnable, nil)
	copy(j.runnable[i+1:], j.runnable[i:])
	j.runnable[i] = st
	c.updateHoldReady(j)
}

// advance moves the clock to t, accumulating busy executor-seconds into
// the per-carbon-interval usage timeline and per-job carbon attribution.
func (c *Cluster) advance(t float64) {
	if t <= c.clock {
		c.clock = math.Max(c.clock, t)
		return
	}
	tr := c.cfg.Trace
	cur := c.clock
	for cur < t {
		next := tr.NextChange(cur)
		if next > t {
			next = t
		}
		span := next - cur
		if c.activeCount > 0 && span > 0 {
			idx := tr.Index(cur)
			for len(c.usage) <= idx {
				c.usage = append(c.usage, 0)
			}
			c.usage[idx] += float64(c.activeCount) * span
			grams := tr.At(cur) * span / 3600
			for _, e := range c.execs {
				j := e.job
				if !e.busy {
					j = e.reserved
				}
				if j == nil {
					continue
				}
				j.CarbonGrams += grams
				if c.jobUsage != nil {
					row := c.jobUsage[j.index]
					if row == nil {
						row = make([]float64, 0, len(tr.Values))
					}
					for len(row) <= idx {
						row = append(row, 0)
					}
					row[idx] += span
					c.jobUsage[j.index] = row
				}
			}
		}
		if math.IsInf(next, 1) {
			break
		}
		cur = next
	}
	c.clock = t
}

// schedule runs the assignment loop for the current event: first let
// job-held executors serve their own jobs (HoldExecutors mode), then
// repeatedly ask the scheduler for a stage and bind idle executors to it,
// until the scheduler defers, no executors are idle, or nothing is
// runnable.
func (c *Cluster) schedule(s Scheduler) error {
	if c.cfg.HoldExecutors && c.holdReadyCount > 0 {
		// holdReadyCount > 0 iff some job has both a parked executor and
		// runnable work; otherwise the drain pass is a guaranteed no-op
		// (it would pop and re-push every waiting ID), so skip it.
		c.dispatchReserved()
	}
	for c.IdleCount() > 0 {
		runnable := c.Runnable()
		if len(runnable) == 0 {
			return nil
		}
		d := s.Pick(c)
		if d.Defer {
			return nil
		}
		if d.Ref.Stage == nil || d.Ref.Job == nil {
			return fmt.Errorf("%w: %s returned empty decision", errNoProgress, s.Name())
		}
		if n := c.assign(d); n == 0 {
			// The chosen stage could not accept an executor (saturated
			// limit or per-job cap). A correct scheduler avoids this;
			// treat it as a defer rather than livelocking.
			return nil
		}
	}
	return nil
}

// assign binds idle executors to the decision's stage, honouring the
// parallelism limit, remaining tasks, and per-job cap. It returns the
// number of executors bound. Executors come off the free list in
// ascending-ID order, matching the historical whole-cluster scan.
func (c *Cluster) assign(d Decision) int {
	j, st := d.Ref.Job, d.Ref.Stage
	if !j.Arrived || j.Done || !st.Runnable() {
		return 0
	}
	limit := d.Limit
	if limit < 1 || limit > st.Stage.NumTasks {
		limit = st.Stage.NumTasks
	}
	st.Limit = limit
	n := 0
	for len(c.free) > 0 {
		if d.MaxNew > 0 && n >= d.MaxNew {
			break
		}
		if st.Running >= limit || st.RemainingTasks() == 0 {
			break
		}
		if c.cfg.PerJobCap > 0 && j.Executors >= c.cfg.PerJobCap {
			break
		}
		c.bind(c.execs[c.free.pop()], j, st)
		n++
	}
	return n
}

// dispatchReserved lets every job-held executor pull a task from its
// job's runnable stages (in-application FIFO: lowest stage ID first).
// Executors are drained from the reserved-idle heap in ascending-ID order
// — the order of the historical cluster scan — and those whose job has
// nothing runnable go back to waiting.
func (c *Cluster) dispatchReserved() {
	if len(c.reservedIdle) == 0 {
		return
	}
	ids := c.reservedScratch[:0]
	for len(c.reservedIdle) > 0 {
		id := c.reservedIdle.pop()
		e := c.execs[id]
		e.inReservedIdle = false
		if e.busy || e.reserved == nil {
			continue // stale entry: released or re-bound since pushed
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		e := c.execs[id]
		j := e.reserved
		if len(j.runnable) == 0 {
			c.reservedIdle.push(id)
			e.inReservedIdle = true
			continue
		}
		st := j.runnable[0]
		// Give the stage the in-application FIFO's "no limit" so the
		// executor continues in place across its task waves instead of
		// bouncing through release → re-reserve → expiry on every task.
		// The legacy mode keeps the limit unset, reproducing the seed
		// engine's per-task wake-up cadence (see Config.LegacyHoldWakeups).
		if !c.cfg.LegacyHoldWakeups && st.Limit == 0 {
			st.Limit = st.Stage.NumTasks
		}
		c.releaseHeld(e)
		e.reserved = nil
		e.busy = true
		e.job = j
		e.stage = st
		c.busyCount++
		st.Running++
		c.noteDispatch(j, st)
		c.push(event{at: c.clock + c.taskDuration(st), kind: evTaskDone, exec: e})
	}
	c.reservedScratch = ids[:0]
}

// bind starts a free-pool executor on the stage's next task.
func (c *Cluster) bind(e *executor, j *JobRun, st *StageRun) {
	delay := 0.0
	if e.lastJob != j.index {
		delay = c.cfg.MoveDelay
	}
	e.busy = true
	e.job = j
	e.stage = st
	c.busyCount++
	c.activeCount++
	j.Executors++
	st.Running++
	c.noteDispatch(j, st)
	c.push(event{at: c.clock + delay + c.taskDuration(st), kind: evTaskDone, exec: e})
}

// taskDuration samples one task's duration with optional jitter.
func (c *Cluster) taskDuration(st *StageRun) float64 {
	d := st.Stage.TaskDuration
	if c.cfg.DurationJitter > 0 {
		d *= 1 + c.cfg.DurationJitter*c.rng.NormFloat64()
		if d < st.Stage.TaskDuration/10 {
			d = st.Stage.TaskDuration / 10
		}
	}
	return d
}

// completeTask handles a task-done event: the attempt may fail and retry
// (failure injection); otherwise the executor either pulls the next task
// of its stage (when the limit allows) or goes idle; stage and job
// completion propagate to children.
func (c *Cluster) completeTask(e *executor) {
	st, j := e.stage, e.job
	if c.cfg.FailureRate > 0 && c.rng.Float64() < c.cfg.FailureRate {
		// The attempt is lost; the executor retries the task in place.
		c.retries++
		c.push(event{at: c.clock + c.taskDuration(st), kind: evTaskDone, exec: e})
		return
	}
	st.Completed++
	c.invalidate()
	if st.Completed == st.Stage.NumTasks {
		c.finishStage(j, st)
	}
	// Continue on the same stage when tasks remain and the limit holds.
	if st.RemainingTasks() > 0 && st.Running <= st.Limit {
		c.noteDispatch(j, st)
		c.push(event{at: c.clock + c.taskDuration(st), kind: evTaskDone, exec: e})
		return
	}
	// Release the executor: back to the job's held pool in standalone
	// mode (unless the job just finished), otherwise to the free pool.
	e.busy = false
	e.lastJob = j.index
	e.job = nil
	e.stage = nil
	st.Running--
	c.busyCount--
	if c.cfg.HoldExecutors && !j.Done {
		c.holdExecutor(e, j)
		return // still active: the job holds the executor
	}
	j.Executors--
	c.activeCount--
	c.free.push(e.id)
}

// holdExecutor parks a just-released executor in its job's held pool and
// schedules the idle-timeout expiry (hold-for-lifetime when IdleTimeout
// is negative).
func (c *Cluster) holdExecutor(e *executor, j *JobRun) {
	e.reserved = j
	e.heldPos = len(j.held)
	j.held = append(j.held, e)
	c.updateHoldReady(j)
	if !e.inReservedIdle {
		c.reservedIdle.push(e.id)
		e.inReservedIdle = true
	}
	if c.cfg.IdleTimeout >= 0 {
		timeout := c.cfg.IdleTimeout
		if timeout == 0 {
			timeout = 60 // Spark's executorIdleTimeout default
		}
		e.holdExpire = c.clock + timeout
		c.push(event{at: e.holdExpire, kind: evHoldExpire, exec: e})
	}
}

// releaseHeld unlinks the executor from its reserving job's held list.
func (c *Cluster) releaseHeld(e *executor) {
	held := e.reserved.held
	last := len(held) - 1
	moved := held[last]
	held[e.heldPos] = moved
	moved.heldPos = e.heldPos
	held[last] = nil
	e.reserved.held = held[:last]
	c.updateHoldReady(e.reserved)
}

// expireHold releases a still-reserved executor whose idle window lapsed.
// Stale expiry events (the executor was re-dispatched and re-reserved
// since) are detected by comparing against the current holdExpire.
func (c *Cluster) expireHold(e *executor) {
	if e.reserved == nil || e.busy || c.clock < e.holdExpire {
		return
	}
	j := e.reserved
	c.releaseHeld(e)
	e.reserved = nil
	j.Executors--
	c.activeCount--
	c.free.push(e.id)
	c.invalidate()
}

// finishStage propagates completion to children and detects job
// completion.
func (c *Cluster) finishStage(j *JobRun, st *StageRun) {
	j.StagesDone++
	for _, childID := range st.Stage.Children {
		child := j.Stages[childID]
		child.ParentsLeft--
		if child.ParentsLeft == 0 {
			c.insertRunnable(j, child)
		}
	}
	if j.StagesDone == len(j.Stages) {
		j.Done = true
		j.CompletedAt = c.clock
		c.doneCount++
		// Release every executor the job was holding (standalone mode).
		for _, e := range j.held {
			e.reserved = nil
			e.lastJob = j.index
			j.Executors--
			c.activeCount--
			c.free.push(e.id)
		}
		j.held = j.held[:0]
		j.runnable = j.runnable[:0]
		c.updateHoldReady(j)
		for i, job := range c.active {
			if job == j {
				copy(c.active[i:], c.active[i+1:])
				c.active[len(c.active)-1] = nil
				c.active = c.active[:len(c.active)-1]
				break
			}
		}
		if c.streaming {
			c.doneScratch = append(c.doneScratch, j)
		}
	}
	c.invalidate()
}

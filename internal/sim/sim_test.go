package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pcaps/internal/carbon"
	"pcaps/internal/dag"
)

// greedy is a minimal work-conserving test scheduler: first runnable
// stage, no parallelism limit.
type greedy struct{}

func (greedy) Name() string { return "greedy" }

func (greedy) Pick(c *Cluster) Decision {
	r := c.Runnable()
	if len(r) == 0 {
		return DeferDecision
	}
	return Decision{Ref: r[0]}
}

// alwaysDefer never schedules anything.
type alwaysDefer struct{}

func (alwaysDefer) Name() string           { return "defer" }
func (alwaysDefer) Pick(*Cluster) Decision { return DeferDecision }

func flatTrace(t testing.TB, intensity float64, samples int) *carbon.Trace {
	t.Helper()
	vals := make([]float64, samples)
	for i := range vals {
		vals[i] = intensity
	}
	tr, err := carbon.New("flat", 60, vals)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func chainJob(t testing.TB, id int, durations ...float64) *dag.Job {
	t.Helper()
	b := dag.NewBuilder(id, "chain")
	var ids []int
	for _, d := range durations {
		ids = append(ids, b.Stage("", 1, d))
	}
	b.Chain(ids...)
	return b.MustBuild()
}

func cfg(t testing.TB, k int) Config {
	t.Helper()
	return Config{NumExecutors: k, Trace: flatTrace(t, 300, 1000)}
}

func TestRunValidation(t *testing.T) {
	j := chainJob(t, 0, 10)
	if _, err := Run(Config{NumExecutors: 1}, []*dag.Job{j}, greedy{}); err == nil {
		t.Fatal("missing trace accepted")
	}
	if _, err := Run(cfg(t, 0), []*dag.Job{j}, greedy{}); err == nil {
		t.Fatal("zero executors accepted")
	}
	if _, err := Run(cfg(t, 1), nil, greedy{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	bad := &dag.Job{Stages: []*dag.Stage{{ID: 0, NumTasks: 0, TaskDuration: 1}}}
	if _, err := Run(cfg(t, 1), []*dag.Job{bad}, greedy{}); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestChainJobMakespan(t *testing.T) {
	// A serial chain on any number of executors takes the sum of
	// durations: precedence forces sequential execution.
	j := chainJob(t, 0, 10, 20, 30)
	res, err := Run(cfg(t, 4), []*dag.Job{j}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ECT-60) > 1e-9 {
		t.Fatalf("ECT = %v, want 60", res.ECT)
	}
	if math.Abs(res.AvgJCT-60) > 1e-9 {
		t.Fatalf("AvgJCT = %v, want 60", res.AvgJCT)
	}
}

func TestParallelStageWaves(t *testing.T) {
	// 8 tasks of 10 s on 4 executors: two waves, 20 s.
	b := dag.NewBuilder(0, "wide")
	b.Stage("", 8, 10)
	j := b.MustBuild()
	res, err := Run(cfg(t, 4), []*dag.Job{j}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ECT-20) > 1e-9 {
		t.Fatalf("ECT = %v, want 20", res.ECT)
	}
}

func TestParallelismLimitHonored(t *testing.T) {
	// 8 tasks of 10 s, 4 executors, but limit 2: four waves, 40 s.
	b := dag.NewBuilder(0, "limited")
	b.Stage("", 8, 10)
	j := b.MustBuild()
	limited := pickWithLimit{limit: 2}
	res, err := Run(cfg(t, 4), []*dag.Job{j}, &limited)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ECT-40) > 1e-9 {
		t.Fatalf("ECT = %v, want 40", res.ECT)
	}
}

type pickWithLimit struct{ limit int }

func (p *pickWithLimit) Name() string { return "limited" }
func (p *pickWithLimit) Pick(c *Cluster) Decision {
	r := c.Runnable()
	if len(r) == 0 {
		return DeferDecision
	}
	return Decision{Ref: r[0], Limit: p.limit}
}

func TestMoveDelayAppliedAcrossJobs(t *testing.T) {
	// One executor, one single-stage job, move delay 5: 5 + 10 = 15.
	b := dag.NewBuilder(0, "one")
	b.Stage("", 1, 10)
	j := b.MustBuild()
	c := cfg(t, 1)
	c.MoveDelay = 5
	res, err := Run(c, []*dag.Job{j}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ECT-15) > 1e-9 {
		t.Fatalf("ECT = %v, want 15", res.ECT)
	}
	// A chain within the same job pays the delay only once.
	j2 := chainJob(t, 0, 10, 10)
	res, err = Run(c, []*dag.Job{j2}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ECT-25) > 1e-9 {
		t.Fatalf("chain ECT = %v, want 25", res.ECT)
	}
}

func TestPerJobCap(t *testing.T) {
	// One 8-task stage, 8 executors, but per-job cap 2: 4 waves of 10 s.
	b := dag.NewBuilder(0, "capped")
	b.Stage("", 8, 10)
	j := b.MustBuild()
	c := cfg(t, 8)
	c.PerJobCap = 2
	res, err := Run(c, []*dag.Job{j}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ECT-40) > 1e-9 {
		t.Fatalf("ECT = %v, want 40", res.ECT)
	}
}

func TestArrivalsDelayStart(t *testing.T) {
	j := chainJob(t, 0, 10)
	j.Arrival = 100
	res, err := Run(cfg(t, 1), []*dag.Job{j}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ECT-110) > 1e-9 {
		t.Fatalf("ECT = %v, want 110", res.ECT)
	}
	if math.Abs(res.JCTs[0]-10) > 1e-9 {
		t.Fatalf("JCT = %v, want 10", res.JCTs[0])
	}
}

func TestCarbonAccountingFlatTrace(t *testing.T) {
	// 1 executor, 120 s of work at flat 300 g/kWh: 120·300/3600 = 10 g.
	j := chainJob(t, 0, 120)
	res, err := Run(cfg(t, 1), []*dag.Job{j}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CarbonGrams-10) > 1e-6 {
		t.Fatalf("CarbonGrams = %v, want 10", res.CarbonGrams)
	}
	if math.Abs(res.JobCarbon[0]-10) > 1e-6 {
		t.Fatalf("JobCarbon = %v, want 10", res.JobCarbon[0])
	}
	// Usage timeline: 60 s in each of the first two intervals.
	if len(res.Usage) != 2 || math.Abs(res.Usage[0]-60) > 1e-9 || math.Abs(res.Usage[1]-60) > 1e-9 {
		t.Fatalf("Usage = %v", res.Usage)
	}
}

func TestCarbonAccountingVaryingTrace(t *testing.T) {
	// Intensity 600 for interval 0, 0 for interval 1. Work spans both.
	tr, err := carbon.New("step", 60, []float64{600, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	j := chainJob(t, 0, 120)
	res, err := Run(Config{NumExecutors: 1, Trace: tr}, []*dag.Job{j}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	want := 60 * 600.0 / 3600 // only the first interval emits
	if math.Abs(res.CarbonGrams-want) > 1e-6 {
		t.Fatalf("CarbonGrams = %v, want %v", res.CarbonGrams, want)
	}
}

func TestUsageConservation(t *testing.T) {
	// Total busy executor-seconds equals total work when there are no
	// move delays and no jitter.
	jobs := []*dag.Job{chainJob(t, 0, 25, 35), chainJob(t, 1, 40)}
	jobs[1].Arrival = 10
	res, err := Run(cfg(t, 3), jobs, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	var usage float64
	for _, u := range res.Usage {
		usage += u
	}
	if math.Abs(usage-res.TotalWork) > 1e-6 {
		t.Fatalf("usage %v != work %v", usage, res.TotalWork)
	}
}

func TestDiamondPrecedence(t *testing.T) {
	// Diamond: 0(10) → {1(20), 2(5)} → 3(30). With 2 executors the two
	// middle stages run in parallel: 10 + 20 + 30 = 60.
	b := dag.NewBuilder(0, "diamond")
	s0 := b.Stage("", 1, 10)
	s1 := b.Stage("", 1, 20)
	s2 := b.Stage("", 1, 5)
	s3 := b.Stage("", 1, 30)
	b.Edge(s0, s1).Edge(s0, s2).Edge(s1, s3).Edge(s2, s3)
	j := b.MustBuild()
	res, err := Run(cfg(t, 2), []*dag.Job{j}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ECT-60) > 1e-9 {
		t.Fatalf("ECT = %v, want 60", res.ECT)
	}
}

func TestDeferringSchedulerFailsJobs(t *testing.T) {
	j := chainJob(t, 0, 10)
	_, err := Run(cfg(t, 1), []*dag.Job{j}, alwaysDefer{})
	if err == nil {
		t.Fatal("expected incomplete-job error")
	}
}

func TestDeterministicRuns(t *testing.T) {
	jobs := []*dag.Job{chainJob(t, 0, 13, 7), chainJob(t, 1, 9)}
	c := cfg(t, 2)
	c.DurationJitter = 0.2
	c.Seed = 42
	a, err := Run(c, jobs, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, jobs, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if a.ECT != b.ECT || a.CarbonGrams != b.CarbonGrams {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", a.ECT, a.CarbonGrams, b.ECT, b.CarbonGrams)
	}
	c.Seed = 43
	d, err := Run(c, jobs, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if a.ECT == d.ECT {
		t.Fatal("jitter seed had no effect")
	}
}

func TestJobTemplatesNotMutated(t *testing.T) {
	j := chainJob(t, 0, 10, 20)
	if _, err := Run(cfg(t, 1), []*dag.Job{j}, greedy{}); err != nil {
		t.Fatal(err)
	}
	// Run again from the same template: identical result proves the
	// first run did not mutate shared state.
	res, err := Run(cfg(t, 1), []*dag.Job{j}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ECT-30) > 1e-9 {
		t.Fatalf("second run ECT = %v, want 30", res.ECT)
	}
}

func TestMaxNewBoundsBinding(t *testing.T) {
	// A scheduler that allows only 1 new executor per decision still
	// completes, but the first wave starts with fewer executors.
	b := dag.NewBuilder(0, "wide")
	b.Stage("", 4, 10)
	j := b.MustBuild()
	s := &maxNewOne{}
	res, err := Run(cfg(t, 4), []*dag.Job{j}, s)
	if err != nil {
		t.Fatal(err)
	}
	// Each Pick binds one executor; the scheduling loop keeps calling
	// Pick within the same event, so all 4 still start at t=0.
	if math.Abs(res.ECT-10) > 1e-9 {
		t.Fatalf("ECT = %v, want 10", res.ECT)
	}
	if s.calls < 4 {
		t.Fatalf("Pick called %d times, want ≥4", s.calls)
	}
}

type maxNewOne struct{ calls int }

func (m *maxNewOne) Name() string { return "maxnew1" }
func (m *maxNewOne) Pick(c *Cluster) Decision {
	m.calls++
	r := c.Runnable()
	if len(r) == 0 {
		return DeferDecision
	}
	return Decision{Ref: r[0], MaxNew: 1}
}

func TestClusterAccessors(t *testing.T) {
	tr := flatTrace(t, 250, 100)
	j := chainJob(t, 0, 10)
	probe := &accessorProbe{t: t}
	if _, err := Run(Config{NumExecutors: 3, Trace: tr, ForecastHorizon: 120}, []*dag.Job{j}, probe); err != nil {
		t.Fatal(err)
	}
	if !probe.checked {
		t.Fatal("probe never ran")
	}
}

type accessorProbe struct {
	t       *testing.T
	checked bool
}

func (p *accessorProbe) Name() string { return "probe" }
func (p *accessorProbe) Pick(c *Cluster) Decision {
	if !p.checked {
		p.checked = true
		if c.K() != 3 {
			p.t.Errorf("K = %d", c.K())
		}
		if c.Carbon() != 250 {
			p.t.Errorf("Carbon = %v", c.Carbon())
		}
		if lo, hi := c.CarbonBounds(); lo != 250 || hi != 250 {
			p.t.Errorf("Bounds = %v,%v", lo, hi)
		}
		if c.IdleCount() != 3 || c.BusyCount() != 0 {
			p.t.Errorf("idle/busy = %d/%d", c.IdleCount(), c.BusyCount())
		}
		if got := c.OutstandingWork(); got != 10 {
			p.t.Errorf("OutstandingWork = %v", got)
		}
		if n := len(c.ActiveJobs()); n != 1 {
			p.t.Errorf("ActiveJobs = %d", n)
		}
	}
	r := c.Runnable()
	if len(r) == 0 {
		return DeferDecision
	}
	return Decision{Ref: r[0]}
}

func TestMultiJobInterleaving(t *testing.T) {
	// Two 1-stage jobs of 2 tasks × 10 s on 2 executors. FIFO-greedy
	// gives job 0 both executors, then job 1: ECT 20, JCTs {10, 20}.
	mk := func(id int) *dag.Job {
		b := dag.NewBuilder(id, "w")
		b.Stage("", 2, 10)
		return b.MustBuild()
	}
	res, err := Run(cfg(t, 2), []*dag.Job{mk(0), mk(1)}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ECT-20) > 1e-9 {
		t.Fatalf("ECT = %v, want 20", res.ECT)
	}
	if math.Abs(res.JCTs[0]-10) > 1e-9 || math.Abs(res.JCTs[1]-20) > 1e-9 {
		t.Fatalf("JCTs = %v", res.JCTs)
	}
}

func TestHoldExecutorsBlocksAndBurnsCarbon(t *testing.T) {
	// Standalone-mode semantics (Appendix A.1.2): job 0 is a fork-join
	// DAG — s0 (30 s) and s1 (10 s) in parallel, then s2 (10 s). With 2
	// executors, the one that finishes s1 at t=10 is HELD by job 0 until
	// the job completes at t=40, burning carbon while idle and blocking
	// job 1 (a 10 s one-stage job that arrived at t=0).
	b := dag.NewBuilder(0, "forkjoin")
	s0 := b.Stage("", 1, 30)
	s1 := b.Stage("", 1, 10)
	s2 := b.Stage("", 1, 10)
	b.Edge(s0, s2).Edge(s1, s2)
	j0 := b.MustBuild()
	b2 := dag.NewBuilder(1, "late")
	b2.Stage("", 1, 10)
	j1 := b2.MustBuild()

	c := cfg(t, 2)
	c.HoldExecutors = true
	res, err := Run(c, []*dag.Job{j0, j1}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 only starts after job 0 releases its executors at t=40.
	if math.Abs(res.JCTs[1]-50) > 1e-9 {
		t.Fatalf("blocked job JCT = %v, want 50", res.JCTs[1])
	}
	// Job 0's active executor-seconds: exec0 busy 0-40 (40), exec1 busy
	// 0-10 then held 10-40 (40 total): 80 exec-s at 300 g/kWh.
	if want := 80 * 300.0 / 3600; math.Abs(res.JobCarbon[0]-want) > 1e-6 {
		t.Fatalf("job0 carbon = %v, want %v", res.JobCarbon[0], want)
	}
	// Job 1 runs 10 s on one executor after the release.
	if want := 10 * 300.0 / 3600; math.Abs(res.JobCarbon[1]-want) > 1e-6 {
		t.Fatalf("job1 carbon = %v, want %v", res.JobCarbon[1], want)
	}
	// Without holding, the same batch costs only the worked seconds
	// (60 exec-s) and job 1 finishes at t=10 via the second executor...
	c.HoldExecutors = false
	free, err := Run(c, []*dag.Job{j0, j1}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if free.CarbonGrams >= res.CarbonGrams {
		t.Fatalf("hold mode should cost more carbon: %v vs %v", res.CarbonGrams, free.CarbonGrams)
	}
	if free.AvgJCT >= res.AvgJCT {
		t.Fatalf("hold mode should cost more JCT: %v vs %v", res.AvgJCT, free.AvgJCT)
	}
}

func TestHoldExecutorsReservedServeOwnJob(t *testing.T) {
	// A chain job in hold mode reuses its held executor for the next
	// stage without returning to the pool: ECT equals the chain length.
	j := chainJob(t, 0, 10, 20, 30)
	c := cfg(t, 2)
	c.HoldExecutors = true
	res, err := Run(c, []*dag.Job{j}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ECT-60) > 1e-9 {
		t.Fatalf("ECT = %v, want 60", res.ECT)
	}
}

func TestFailureInjection(t *testing.T) {
	b := dag.NewBuilder(0, "wide")
	b.Stage("", 40, 5)
	j := b.MustBuild()
	c := cfg(t, 4)
	c.FailureRate = 0.3
	c.Seed = 9
	res, err := Run(c, []*dag.Job{j}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TaskRetries == 0 {
		t.Fatal("30% failure rate produced no retries")
	}
	// Every retry costs one extra task duration of busy time.
	var usage float64
	for _, u := range res.Usage {
		usage += u
	}
	want := res.TotalWork + float64(res.TaskRetries)*5
	if math.Abs(usage-want) > 1e-6 {
		t.Fatalf("usage %v, want %v (work + retries)", usage, want)
	}
	// Failure-free run is cheaper and faster.
	c.FailureRate = 0
	clean, err := Run(c, []*dag.Job{j}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.ECT >= res.ECT || clean.CarbonGrams >= res.CarbonGrams {
		t.Fatalf("failures should cost time and carbon: %v/%v vs %v/%v",
			clean.ECT, clean.CarbonGrams, res.ECT, res.CarbonGrams)
	}
}

func TestFailureRateValidation(t *testing.T) {
	j := chainJob(t, 0, 10)
	c := cfg(t, 1)
	c.FailureRate = 0.95
	if _, err := Run(c, []*dag.Job{j}, greedy{}); err == nil {
		t.Fatal("failure rate > 0.9 accepted")
	}
	c.FailureRate = -0.1
	if _, err := Run(c, []*dag.Job{j}, greedy{}); err == nil {
		t.Fatal("negative failure rate accepted")
	}
}

// TestRuntimeInvariants drives a full randomized batch through an
// invariant-checking probe: stages handed to schedulers are always truly
// runnable, counts stay within bounds, and the clock never regresses.
func TestRuntimeInvariants(t *testing.T) {
	b := dag.NewBuilder(0, "a")
	s0 := b.Stage("", 3, 7)
	s1 := b.Stage("", 2, 5)
	b.Edge(s0, s1)
	j0 := b.MustBuild()
	b2 := dag.NewBuilder(1, "b")
	t0 := b2.Stage("", 4, 3)
	t1 := b2.Stage("", 1, 9)
	t2 := b2.Stage("", 2, 4)
	b2.Edge(t0, t1).Edge(t0, t2)
	j1 := b2.MustBuild()
	j1.Arrival = 5

	c := cfg(t, 3)
	c.HoldExecutors = true
	c.IdleTimeout = 10
	probe := &invariantProbe{t: t, k: 3}
	if _, err := Run(c, []*dag.Job{j0, j1}, probe); err != nil {
		t.Fatal(err)
	}
	if probe.calls == 0 {
		t.Fatal("probe never invoked")
	}
}

type invariantProbe struct {
	t     *testing.T
	k     int
	last  float64
	calls int
}

func (p *invariantProbe) Name() string { return "invariants" }
func (p *invariantProbe) Pick(c *Cluster) Decision {
	p.calls++
	if c.Now() < p.last {
		p.t.Fatalf("clock regressed: %v after %v", c.Now(), p.last)
	}
	p.last = c.Now()
	if c.BusyCount() < 0 || c.BusyCount() > p.k || c.IdleCount() < 0 {
		p.t.Fatalf("counts out of range: busy %d idle %d", c.BusyCount(), c.IdleCount())
	}
	if c.RunningCount() > c.BusyCount() {
		p.t.Fatalf("running %d exceeds active %d", c.RunningCount(), c.BusyCount())
	}
	r := c.Runnable()
	for _, ref := range r {
		if !ref.Job.Arrived || ref.Job.Done {
			p.t.Fatal("runnable stage from inactive job")
		}
		if ref.Stage.ParentsLeft != 0 {
			p.t.Fatal("runnable stage with incomplete parents")
		}
		if ref.Stage.RemainingTasks() <= 0 {
			p.t.Fatal("runnable stage without tasks")
		}
	}
	if len(r) == 0 {
		return DeferDecision
	}
	return Decision{Ref: r[0]}
}

// chaosScheduler makes random (but legal) decisions: random runnable
// stage, random limit, random MaxNew, occasional defers. Under any such
// scheduler the engine must preserve its invariants and finish the batch
// whenever the scheduler is eventually work-conserving.
type chaosScheduler struct {
	rng *rand.Rand
}

func (c *chaosScheduler) Name() string { return "chaos" }
func (c *chaosScheduler) Pick(cl *Cluster) Decision {
	r := cl.Runnable()
	if len(r) == 0 {
		return DeferDecision
	}
	// Defer sometimes, but never when the cluster is fully idle, so the
	// batch always completes.
	if cl.BusyCount() > 0 && c.rng.Float64() < 0.2 {
		return DeferDecision
	}
	ref := r[c.rng.Intn(len(r))]
	return Decision{
		Ref:    ref,
		Limit:  c.rng.Intn(ref.Stage.Stage.NumTasks + 2),
		MaxNew: c.rng.Intn(4),
	}
}

func TestQuickChaosSchedulerPreservesInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nJobs := 1 + r.Intn(6)
		var jobs []*dag.Job
		for i := 0; i < nJobs; i++ {
			b := dag.NewBuilder(i, "chaos")
			n := 1 + r.Intn(6)
			for s := 0; s < n; s++ {
				b.Stage("", 1+r.Intn(4), 0.5+r.Float64()*8)
			}
			for child := 1; child < n; child++ {
				for p := 0; p < child; p++ {
					if r.Float64() < 0.3 {
						b.Edge(p, child)
					}
				}
			}
			j := b.MustBuild()
			j.Arrival = r.Float64() * 100
			jobs = append(jobs, j)
		}
		c := Config{
			NumExecutors:  1 + r.Intn(6),
			Trace:         mustQuickTrace(r),
			MoveDelay:     r.Float64() * 3,
			HoldExecutors: r.Intn(2) == 0,
			IdleTimeout:   5 + r.Float64()*20,
			PerJobCap:     r.Intn(4), // 0 = unlimited
			Seed:          seed,
		}
		res, err := Run(c, jobs, &chaosScheduler{rng: rand.New(rand.NewSource(seed + 1))})
		if err != nil {
			return false
		}
		// Conservation: busy time is at least the total work, and every
		// job completed no earlier than its arrival plus critical path.
		var usage float64
		for _, u := range res.Usage {
			usage += u
		}
		if usage < res.TotalWork-1e-6 {
			return false
		}
		for i, j := range jobs {
			if res.JCTs[i] < j.CriticalPathLength()-1e-6 {
				return false
			}
		}
		return res.CarbonGrams >= 0 && res.ECT > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func mustQuickTrace(r *rand.Rand) *carbon.Trace {
	vals := make([]float64, 50+r.Intn(100))
	for i := range vals {
		vals[i] = 50 + r.Float64()*700
	}
	tr, err := carbon.New("quick", 60, vals)
	if err != nil {
		panic(err)
	}
	return tr
}

func TestJobUsageTracking(t *testing.T) {
	jobs := []*dag.Job{chainJob(t, 0, 90), chainJob(t, 1, 30)}
	jobs[1].Arrival = 10
	c := cfg(t, 2)
	c.TrackJobUsage = true
	res, err := Run(c, jobs, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JobUsage) != 2 {
		t.Fatalf("JobUsage rows = %d", len(res.JobUsage))
	}
	// Per-job rows sum to each job's work, and rows sum to Usage.
	sum := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	if math.Abs(sum(res.JobUsage[0])-90) > 1e-6 || math.Abs(sum(res.JobUsage[1])-30) > 1e-6 {
		t.Fatalf("per-job usage = %v / %v", sum(res.JobUsage[0]), sum(res.JobUsage[1]))
	}
	var total float64
	for _, row := range res.JobUsage {
		total += sum(row)
	}
	if math.Abs(total-sum(res.Usage)) > 1e-6 {
		t.Fatalf("job usage %v != cluster usage %v", total, sum(res.Usage))
	}
	// Disabled by default.
	res2, err := Run(cfg(t, 2), jobs, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.JobUsage != nil {
		t.Fatal("JobUsage tracked without opt-in")
	}
}

package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"pcaps/internal/dag"
)

// burstJobs builds n single-stage jobs all arriving at t=0 (the burst
// that bloats the event heap) with short tasks.
func burstJobs(t testing.TB, n int) []*dag.Job {
	t.Helper()
	jobs := make([]*dag.Job, n)
	for i := range jobs {
		jobs[i] = chainJob(t, i, 5)
	}
	return jobs
}

func TestEventHeapShrinksAfterBurst(t *testing.T) {
	var c Cluster
	const n = 8 * heapShrinkMin
	for i := 0; i < n; i++ {
		c.push(event{at: float64(i)})
	}
	grown := cap(c.events.items)
	if grown < n {
		t.Fatalf("heap capacity %d after %d pushes", grown, n)
	}
	for c.events.Len() > 16 {
		c.pop()
	}
	if got := cap(c.events.items); got > heapShrinkMin {
		t.Fatalf("event heap capacity %d after draining to 16 entries; want <= %d (grown to %d during the burst)", got, heapShrinkMin, grown)
	}
}

func TestIntHeapShrinksAfterBurst(t *testing.T) {
	var h intHeap
	const n = 8 * heapShrinkMin
	for i := 0; i < n; i++ {
		h.push(i)
	}
	grown := cap(h)
	for len(h) > 16 {
		h.pop()
	}
	if got := cap(h); got > heapShrinkMin {
		t.Fatalf("int heap capacity %d after draining to 16 entries; want <= %d (grown to %d during the burst)", got, heapShrinkMin, grown)
	}
}

// TestRunStreamRecyclesRuns drives a sequential stream (each job done
// before the next arrives) and checks the pool actually serves recycled
// records, the summary matches the classic engine's, and a recycled
// JobRun carries no state from its previous occupant — any leak
// (stage counters, held lists, runnable index) would desynchronize the
// trajectories and show up in the compared Results.
func TestRunStreamRecyclesRuns(t *testing.T) {
	const n = 40
	jobs := make([]*dag.Job, n)
	for i := range jobs {
		j := chainJob(t, i, 10, 10)
		j.Arrival = float64(i) * 100 // previous job long done: pool must recycle
		jobs[i] = j
	}
	cf := cfg(t, 4)
	classic, err := Run(cf, jobs, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := RunStream(cf, &SliceSource{Jobs: jobs}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Stream == nil {
		t.Fatal("RunStream result carries no StreamStats")
	}
	if streamed.Stream.RecycledRuns == 0 {
		t.Fatal("sequential stream recycled no JobRun records")
	}
	if streamed.Stream.Admitted != n {
		t.Fatalf("admitted %d jobs, want %d", streamed.Stream.Admitted, n)
	}
	if streamed.Stream.PeakInFlight != 1 {
		t.Fatalf("peak in-flight %d for a strictly sequential stream, want 1", streamed.Stream.PeakInFlight)
	}
	if streamed.AvgJCT != classic.AvgJCT || streamed.ECT != classic.ECT ||
		streamed.CarbonGrams != classic.CarbonGrams || streamed.Events != classic.Events {
		t.Fatalf("streamed summary diverged from classic: stream %+v classic %+v", streamed, classic)
	}
	if streamed.JCTs != nil {
		t.Fatal("PerJobDefault should drop per-job slices in RunStream")
	}
}

// TestRunStreamRepeatable runs the same stream twice and demands byte-
// identical results: the pool is per-run state, so nothing may persist
// from one run into the next.
func TestRunStreamRepeatable(t *testing.T) {
	jobs := burstJobs(t, 30)
	cf := cfg(t, 3)
	cf.PerJobResults = PerJobOn
	first, err := RunStream(cf, &SliceSource{Jobs: jobs}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunStream(cf, &SliceSource{Jobs: jobs}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Fatalf("repeated streams diverged:\n%s\n%s", a, b)
	}
	if len(first.JCTs) != 30 || len(first.JobCarbon) != 30 {
		t.Fatalf("PerJobOn kept %d JCTs / %d JobCarbon, want 30", len(first.JCTs), len(first.JobCarbon))
	}
}

func TestRunStreamValidation(t *testing.T) {
	cf := cfg(t, 2)
	src := func() *SliceSource { return &SliceSource{Jobs: burstJobs(t, 2)} }

	bad := cf
	bad.TrackJobUsage = true
	if _, err := RunStream(bad, src(), greedy{}); err == nil || !strings.Contains(err.Error(), "TrackJobUsage") {
		t.Fatalf("TrackJobUsage not rejected: %v", err)
	}
	bad = cf
	bad.Observer = func(*Cluster) {}
	if _, err := RunStream(bad, src(), greedy{}); err == nil || !strings.Contains(err.Error(), "Observer") {
		t.Fatalf("Observer not rejected: %v", err)
	}
	if _, err := RunStream(cf, nil, greedy{}); err == nil {
		t.Fatal("nil source not rejected")
	}
	if _, err := RunStream(cf, &SliceSource{}, greedy{}); err == nil || !strings.Contains(err.Error(), "no jobs") {
		t.Fatalf("empty source not rejected: %v", err)
	}

	// Arrivals must be non-decreasing: the admission rule depends on it.
	j0, j1 := chainJob(t, 0, 5), chainJob(t, 1, 5)
	j0.Arrival, j1.Arrival = 100, 0
	if _, err := RunStream(cf, &SliceSource{Jobs: []*dag.Job{j0, j1}}, greedy{}); err == nil || !strings.Contains(err.Error(), "non-decreasing") {
		t.Fatalf("out-of-order arrivals not rejected: %v", err)
	}
}

// TestRunStreamHoldMode covers the executor-retention path (held lists,
// reserved-idle heap, expiry events) against the classic engine, since
// recycled runs reuse their held-list backing arrays.
func TestRunStreamHoldMode(t *testing.T) {
	jobs := make([]*dag.Job, 25)
	for i := range jobs {
		j := chainJob(t, i, 15, 15, 15)
		j.Arrival = float64(i) * 40
		jobs[i] = j
	}
	cf := cfg(t, 6)
	cf.HoldExecutors = true
	cf.IdleTimeout = 30
	cf.MoveDelay = 2
	cf.PerJobResults = PerJobOn
	classic, err := Run(cf, jobs, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := RunStream(cf, &SliceSource{Jobs: jobs}, greedy{})
	if err != nil {
		t.Fatal(err)
	}
	streamed.Stream = nil
	a, _ := json.Marshal(classic)
	b, _ := json.Marshal(streamed)
	if string(a) != string(b) {
		t.Fatalf("hold-mode stream diverged from classic:\n%s\n%s", a, b)
	}
}

package sim

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"pcaps/internal/carbon"
	"pcaps/internal/workload"
)

// midRunSnapshot runs a short simulation and captures a snapshot at the
// n-th scheduling event with work in flight, so the snapshot exercises
// busy executors, partial stages, and multiple active jobs.
func midRunSnapshot(t *testing.T, seed int64, n int) *Snapshot {
	t.Helper()
	jobs := workload.Batch(workload.BatchConfig{N: 8, MeanInterarrival: 20, Mix: workload.MixBoth, Seed: seed})
	tr := carbon.SynthesizeAll(48, 60, seed)["PJM"]
	var snap *Snapshot
	events := 0
	cfg := Config{
		NumExecutors: 16,
		Trace:        tr,
		Seed:         seed,
		Observer: func(c *Cluster) {
			events++
			if snap == nil && events >= n && c.BusyCount() > 0 && len(c.ActiveJobs()) > 1 {
				snap = c.Snapshot()
			}
		},
	}
	if _, err := Run(cfg, jobs, &fifoForTest{}); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no mid-run snapshot captured; fixture too small")
	}
	return snap
}

// fifoForTest is a minimal in-package FIFO so the sim tests do not
// import internal/sched (which imports sim).
type fifoForTest struct{}

func (fifoForTest) Name() string { return "fifo-test" }
func (fifoForTest) Pick(c *Cluster) Decision {
	for _, ref := range c.Runnable() {
		return Decision{Ref: ref, Limit: ref.Stage.Stage.NumTasks}
	}
	return Decision{Defer: true}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	snap := midRunSnapshot(t, 42, 25)
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("decode with DisallowUnknownFields: %v", err)
	}
	if !reflect.DeepEqual(snap, &back) {
		t.Fatalf("snapshot did not survive the JSON round-trip:\n%s", raw)
	}
	// A second marshal must be byte-identical — the JSON form is the
	// wire contract of /v1/placement.
	raw2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatal("re-marshal not byte-identical")
	}
}

func TestSnapshotRestoreViews(t *testing.T) {
	snap := midRunSnapshot(t, 7, 40)
	c, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Now(); got != snap.TimeSec {
		t.Errorf("Now() = %v, want %v", got, snap.TimeSec)
	}
	if got := len(c.ActiveJobs()); got != len(snap.Jobs) {
		t.Errorf("ActiveJobs() = %d jobs, want %d", got, len(snap.Jobs))
	}
	var wantBusy, wantIdle int
	for _, e := range snap.Executors {
		switch e.State {
		case ExecBusy, ExecHeld:
			wantBusy++
		case ExecIdle:
			wantIdle++
		}
	}
	if got := c.BusyCount(); got != wantBusy {
		t.Errorf("BusyCount() = %d, want %d", got, wantBusy)
	}
	if got := c.IdleCount(); got != wantIdle {
		t.Errorf("IdleCount() = %d, want %d", got, wantIdle)
	}
	lo, hi := c.CarbonBounds()
	if lo != snap.Carbon.ForecastLow || hi != snap.Carbon.ForecastHigh {
		t.Errorf("CarbonBounds() = (%v, %v), want frozen (%v, %v)",
			lo, hi, snap.Carbon.ForecastLow, snap.Carbon.ForecastHigh)
	}
	if got, want := c.Carbon(), c.cfg.Trace.At(snap.TimeSec); got != want {
		t.Errorf("Carbon() = %v, want trace value %v", got, want)
	}
}

// TestSnapshotRestoreRejects pins that every malformed field is named by
// its JSON path — the placement API surfaces these verbatim as 400s.
func TestSnapshotRestoreRejects(t *testing.T) {
	base := func(t *testing.T) *Snapshot { return midRunSnapshot(t, 11, 20) }
	cases := []struct {
		name   string
		mutate func(*Snapshot)
		field  string
	}{
		{"no executors", func(s *Snapshot) { s.NumExecutors = 0 }, "snapshot.num_executors"},
		{"negative cap", func(s *Snapshot) { s.PerJobCap = -1 }, "snapshot.per_job_cap"},
		{"negative time", func(s *Snapshot) { s.TimeSec = -4 }, "snapshot.time_sec"},
		{"empty trace", func(s *Snapshot) { s.Carbon.Values = nil }, "snapshot.carbon"},
		{"inverted bounds", func(s *Snapshot) { s.Carbon.ForecastLow = 9; s.Carbon.ForecastHigh = 1 }, "snapshot.carbon.forecast_low"},
		{"executor count mismatch", func(s *Snapshot) { s.Executors = s.Executors[:len(s.Executors)-1] }, "snapshot.executors"},
		{"missing dag", func(s *Snapshot) { s.Jobs[0].DAG = nil }, "snapshot.jobs[0].dag"},
		{"stage count mismatch", func(s *Snapshot) { s.Jobs[0].Stages = s.Jobs[0].Stages[:1] }, "snapshot.jobs[0].stages"},
		{"overdispatched", func(s *Snapshot) { s.Jobs[0].Stages[0].Dispatched = 1 << 20 }, ".dispatched"},
		{"broken invariant", func(s *Snapshot) {
			st := &s.Jobs[0].Stages[0]
			st.Dispatched = st.Completed + st.Running + 1
		}, ""}, // lands on .dispatched or .running depending on headroom
		{"bad executor state", func(s *Snapshot) { s.Executors[0] = ExecutorSnapshot{State: "sleeping"} }, "snapshot.executors[0].state"},
		{"executor job out of range", func(s *Snapshot) {
			s.Executors[0] = ExecutorSnapshot{State: ExecBusy, Job: 99, Stage: 0}
		}, "snapshot.executors[0].job"},
		{"binding mismatch", func(s *Snapshot) {
			// Flip one busy executor to idle without fixing Running.
			for i, e := range s.Executors {
				if e.State == ExecBusy {
					s.Executors[i] = ExecutorSnapshot{State: ExecIdle, Job: -1, Stage: -1}
					return
				}
			}
		}, ".running"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base(t)
			tc.mutate(s)
			_, err := s.Restore()
			if err == nil {
				t.Fatal("Restore accepted a malformed snapshot")
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Errorf("error %q does not name field %q", err, tc.field)
			}
		})
	}
}

func TestPlaceBindsFreeExecutors(t *testing.T) {
	snap := midRunSnapshot(t, 3, 30)
	c, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	p := c.Place(fifoForTest{})
	if p.Defer {
		t.Fatal("FIFO deferred on a cluster with runnable work")
	}
	if p.Scheduler != "fifo-test" {
		t.Errorf("Scheduler = %q, want fifo-test", p.Scheduler)
	}
	free := c.IdleCount()
	if len(p.ExecutorIDs) > free {
		t.Errorf("placement binds %d executors with only %d free", len(p.ExecutorIDs), free)
	}
	seen := map[int]bool{}
	for i, id := range p.ExecutorIDs {
		if id < 0 || id >= snap.NumExecutors {
			t.Errorf("executor ID %d out of range", id)
		}
		if snap.Executors[id].State != ExecIdle {
			t.Errorf("executor %d bound but not idle in the snapshot", id)
		}
		if seen[id] {
			t.Errorf("executor %d bound twice", id)
		}
		seen[id] = true
		if i > 0 && p.ExecutorIDs[i-1] >= id {
			t.Errorf("executor IDs not ascending: %v", p.ExecutorIDs)
		}
	}
	// Place must not mutate: a second identical Pick sees identical state.
	p2 := c.Place(fifoForTest{})
	if !reflect.DeepEqual(p, p2) {
		t.Errorf("Place mutated cluster state:\nfirst  %+v\nsecond %+v", p, p2)
	}
}

package sim

import "container/heap"

type eventKind int

const (
	evArrival eventKind = iota
	evTaskDone
	evCarbon
	evHoldExpire
)

// event is one entry in the simulation's future-event list.
type event struct {
	at   float64
	kind eventKind
	job  *JobRun   // evArrival
	exec *executor // evTaskDone
	seq  int       // tiebreaker for deterministic ordering
}

// eventHeap is a min-heap on (at, seq). The sequence number makes
// simultaneous events process in insertion order, which keeps runs
// bit-for-bit reproducible.
type eventHeap struct {
	items []event
	seq   int
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) Less(i, j int) bool {
	if h.items[i].at != h.items[j].at {
		return h.items[i].at < h.items[j].at
	}
	return h.items[i].seq < h.items[j].seq
}

func (h *eventHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *eventHeap) Push(x any) { h.items = append(h.items, x.(event)) }

func (h *eventHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

func (c *Cluster) push(ev event) {
	ev.seq = c.events.seq
	c.events.seq++
	heap.Push(&c.events, ev)
}

func (c *Cluster) pop() event {
	return heap.Pop(&c.events).(event)
}

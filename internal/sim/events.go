package sim

type eventKind int

const (
	evArrival eventKind = iota
	evTaskDone
	evCarbon
	evHoldExpire
)

// event is one entry in the simulation's future-event list.
type event struct {
	at   float64
	kind eventKind
	job  *JobRun   // evArrival
	exec *executor // evTaskDone
	seq  int       // tiebreaker for deterministic ordering
}

// eventHeap is a min-heap on (at, seq). The sequence number makes
// simultaneous events process in insertion order, which keeps runs
// bit-for-bit reproducible. The heap is hand-rolled rather than built on
// container/heap: the standard interface passes elements as `any`, which
// boxes every pushed event onto the GC heap — one allocation per event on
// the simulator's hottest path. Sift operations on the concrete slice
// allocate nothing.
type eventHeap struct {
	items []event
	seq   int
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	if h.items[i].at != h.items[j].at {
		return h.items[i].at < h.items[j].at
	}
	return h.items[i].seq < h.items[j].seq
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && h.less(r, l) {
			min = r
		}
		if !h.less(min, i) {
			return
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
}

//pcaps:hotpath
func (c *Cluster) push(ev event) {
	h := &c.events
	ev.seq = h.seq
	h.seq++
	//hot:alloc amortized event-heap growth; steady state reuses the popped capacity
	h.items = append(h.items, ev)
	h.up(len(h.items) - 1)
}

// heapShrinkMin is the smallest backing-array capacity the pop paths
// will release. Below it the memory at stake is a few KiB and shrinking
// would only cause reallocation churn; above it, a heap left at 1/4
// occupancy after a burst drains is returned to half its capacity so a
// long-running streaming simulation's footprint follows its load.
const heapShrinkMin = 1024

//pcaps:hotpath
func (c *Cluster) pop() event {
	h := &c.events
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items[n] = event{} // drop pointers so finished runs free their jobs
	h.items = h.items[:n]
	if n > 0 {
		h.down(0)
	}
	if cp := cap(h.items); cp >= heapShrinkMin && n < cp/4 {
		//hot:alloc heap shrink after a burst drains; amortized by the 4:1 hysteresis
		items := make([]event, n, cp/2)
		copy(items, h.items)
		h.items = items
	}
	return top
}

// intHeap is an allocation-free min-heap of executor IDs. The simulator
// uses two: the shared idle pool and the reserved-but-idle set
// (HoldExecutors mode). Popping in ascending-ID order reproduces exactly
// the executor ordering of the historical O(K) scans, which is what keeps
// the incremental core byte-identical to the seed engine.
type intHeap []int

//pcaps:hotpath
func (h *intHeap) push(v int) {
	//hot:alloc amortized executor-heap growth; capacity reaches K and stays
	s := append(*h, v)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

//pcaps:hotpath
func (h *intHeap) pop() int {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && s[r] < s[l] {
			min = r
		}
		if s[min] >= s[i] {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	if cp := cap(s); cp >= heapShrinkMin && n < cp/4 {
		//hot:alloc heap shrink after a burst drains; amortized by the 4:1 hysteresis
		ns := make(intHeap, n, cp/2)
		copy(ns, s)
		s = ns
	}
	*h = s
	return top
}

package sim

import (
	"fmt"
	"math"
	"sort"

	"pcaps/internal/carbon"
	"pcaps/internal/dag"
)

// Snapshot is the serializable scheduler view of a cluster at one
// scheduling event: everything a Scheduler.Pick can observe — the
// active jobs with their per-stage progress, every executor's state,
// and the carbon signal with its frozen forecast bounds. A snapshot
// round-trips losslessly through JSON, and Restore rebuilds a cluster
// on which any scheduler's Pick returns exactly the decision it would
// have returned live (the contract the placement service and its
// equivalence tests pin).
//
// A snapshot is a point-in-time export: decisions computed from one are
// only as fresh as the capture. The carbon trace is embedded whole
// because the green-fraction signals are functions of absolute trace
// time (±48-interval windows), not just of the current value.
type Snapshot struct {
	// TimeSec is the simulation clock at capture.
	TimeSec float64 `json:"time_sec"`
	// NumExecutors is the cluster size K.
	NumExecutors int `json:"num_executors"`
	// PerJobCap bounds executors per job; 0 means unlimited.
	PerJobCap int `json:"per_job_cap,omitempty"`
	// Carbon is the signal and frozen forecast.
	Carbon CarbonSnapshot `json:"carbon"`
	// Jobs are the active (arrived, incomplete) jobs in batch order.
	Jobs []JobSnapshot `json:"jobs"`
	// Executors holds one entry per executor, indexed by executor ID.
	Executors []ExecutorSnapshot `json:"executors"`
}

// CarbonSnapshot embeds the carbon trace and the forecast bounds that
// were in force at capture. The bounds are frozen values rather than a
// forecaster reference, so a restored cluster reproduces the original
// forecaster's output — oracle or otherwise — without re-running it.
type CarbonSnapshot struct {
	Grid        string    `json:"grid"`
	IntervalSec float64   `json:"interval_sec"`
	Values      []float64 `json:"values"`
	// ForecastHorizonSec is the configured lookahead window.
	ForecastHorizonSec float64 `json:"forecast_horizon_sec"`
	// ForecastLow / ForecastHigh are the (L, U) bounds at capture time.
	ForecastLow  float64 `json:"forecast_low"`
	ForecastHigh float64 `json:"forecast_high"`
}

// JobSnapshot is one active job: its immutable DAG plus per-stage
// progress. Stage parallels DAG.Stages by stage ID.
type JobSnapshot struct {
	DAG    *dag.Job        `json:"dag"`
	Stages []StageSnapshot `json:"stages"`
}

// StageSnapshot is one stage's dispatch progress. The scheduler-visible
// invariant Dispatched = Completed + Running holds at every event
// boundary and is enforced on restore.
type StageSnapshot struct {
	Dispatched int `json:"dispatched"`
	Completed  int `json:"completed"`
	Running    int `json:"running"`
	// Limit is the parallelism limit in force (0: not yet scheduled).
	Limit int `json:"limit,omitempty"`
}

// Executor states in a snapshot.
const (
	// ExecIdle is an executor in the shared free pool.
	ExecIdle = "idle"
	// ExecBusy is an executor running a task of Job/Stage.
	ExecBusy = "busy"
	// ExecHeld is an executor retained by Job between tasks
	// (HoldExecutors mode).
	ExecHeld = "held"
)

// ExecutorSnapshot is one executor's state. Job indexes Snapshot.Jobs;
// Stage is a stage ID within that job. Both are -1 when inapplicable.
type ExecutorSnapshot struct {
	State string `json:"state"`
	Job   int    `json:"job"`
	Stage int    `json:"stage"`
}

// Snapshot exports the scheduler-visible cluster state. It is
// read-only: the returned snapshot owns copies of the mutable state
// (stage counters, trace values) and shares only the immutable job
// DAGs, so it stays valid after the simulation moves on.
func (c *Cluster) Snapshot() *Snapshot {
	tr := c.cfg.Trace
	lo, hi := c.CarbonBounds()
	horizon := c.cfg.ForecastHorizon
	if horizon <= 0 {
		horizon = 48 * tr.Interval
	}
	s := &Snapshot{
		TimeSec:      c.clock,
		NumExecutors: c.cfg.NumExecutors,
		PerJobCap:    c.cfg.PerJobCap,
		Carbon: CarbonSnapshot{
			Grid:               tr.Grid,
			IntervalSec:        tr.Interval,
			Values:             append([]float64(nil), tr.Values...),
			ForecastHorizonSec: horizon,
			ForecastLow:        lo,
			ForecastHigh:       hi,
		},
		Jobs:      make([]JobSnapshot, 0, len(c.active)),
		Executors: make([]ExecutorSnapshot, len(c.execs)),
	}
	index := make(map[*JobRun]int, len(c.active))
	for i, j := range c.active {
		index[j] = i
		js := JobSnapshot{DAG: j.Job, Stages: make([]StageSnapshot, len(j.Stages))}
		for si, st := range j.Stages {
			js.Stages[si] = StageSnapshot{
				Dispatched: st.Dispatched, Completed: st.Completed,
				Running: st.Running, Limit: st.Limit,
			}
		}
		s.Jobs = append(s.Jobs, js)
	}
	for i, e := range c.execs {
		es := ExecutorSnapshot{State: ExecIdle, Job: -1, Stage: -1}
		switch {
		case e.busy:
			es.State = ExecBusy
			es.Job = index[e.job]
			es.Stage = e.stage.Stage.ID
		case e.reserved != nil:
			es.State = ExecHeld
			es.Job = index[e.reserved]
		}
		s.Executors[i] = es
	}
	return s
}

// snapErr names the offending snapshot field by its JSON path.
func snapErr(field, format string, args ...any) error {
	return fmt.Errorf("sim: snapshot.%s: %s", field, fmt.Sprintf(format, args...))
}

// frozenBounds replays the forecast captured in a snapshot: a restored
// cluster must reproduce the original forecaster's (L, U) exactly, and
// the captured values do that for any forecaster.
type frozenBounds struct{ lo, hi float64 }

// Bounds implements carbon.Forecaster.
func (f frozenBounds) Bounds(*carbon.Trace, float64, float64) (lo, hi float64) { return f.lo, f.hi }

// Restore rebuilds a cluster in the snapshot's state, validating every
// field (errors name the offending field by JSON path). The cluster
// supports the scheduler view API and Place/Pick; it is not resumable
// as a simulation (no pending events). The snapshot's job DAGs are
// cloned, so the snapshot may be reused or mutated afterwards.
func (s *Snapshot) Restore() (*Cluster, error) {
	if s.NumExecutors < 1 {
		return nil, snapErr("num_executors", "need at least one executor, got %d", s.NumExecutors)
	}
	if s.PerJobCap < 0 {
		return nil, snapErr("per_job_cap", "negative per-job cap %d", s.PerJobCap)
	}
	if math.IsNaN(s.TimeSec) || math.IsInf(s.TimeSec, 0) || s.TimeSec < 0 {
		return nil, snapErr("time_sec", "bad capture time %v", s.TimeSec)
	}
	tr, err := carbon.New(s.Carbon.Grid, s.Carbon.IntervalSec, append([]float64(nil), s.Carbon.Values...))
	if err != nil {
		return nil, snapErr("carbon", "%v", err)
	}
	horizon := s.Carbon.ForecastHorizonSec
	if horizon <= 0 {
		horizon = 48 * tr.Interval
	}
	lo, hi := s.Carbon.ForecastLow, s.Carbon.ForecastHigh
	if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) || lo > hi {
		return nil, snapErr("carbon.forecast_low", "bad forecast bounds [%v, %v]", lo, hi)
	}
	if len(s.Executors) != s.NumExecutors {
		return nil, snapErr("executors", "%d executor entries for %d executors", len(s.Executors), s.NumExecutors)
	}

	c := &Cluster{
		cfg: Config{
			NumExecutors:    s.NumExecutors,
			Trace:           tr,
			ForecastHorizon: horizon,
			Forecaster:      frozenBounds{lo, hi},
			PerJobCap:       s.PerJobCap,
		},
		clock: s.TimeSec,
		epoch: 1,
	}
	for i, js := range s.Jobs {
		field := fmt.Sprintf("jobs[%d]", i)
		if js.DAG == nil {
			return nil, snapErr(field+".dag", "missing job DAG")
		}
		job := js.DAG.Clone()
		if err := job.Validate(); err != nil {
			return nil, snapErr(field+".dag", "%v", err)
		}
		if len(js.Stages) != len(job.Stages) {
			return nil, snapErr(field+".stages", "%d stage entries for %d stages", len(js.Stages), len(job.Stages))
		}
		run := &JobRun{Job: job, Stages: make([]*StageRun, len(job.Stages)), Arrived: true, index: i}
		for si, st := range job.Stages {
			ss := js.Stages[si]
			sf := fmt.Sprintf("%s.stages[%d]", field, si)
			if ss.Dispatched < 0 || ss.Dispatched > st.NumTasks {
				return nil, snapErr(sf+".dispatched", "%d dispatched of %d tasks", ss.Dispatched, st.NumTasks)
			}
			if ss.Completed < 0 || ss.Running < 0 {
				return nil, snapErr(sf+".completed", "negative progress (completed %d, running %d)", ss.Completed, ss.Running)
			}
			if ss.Completed+ss.Running != ss.Dispatched {
				return nil, snapErr(sf+".running", "dispatched %d ≠ completed %d + running %d", ss.Dispatched, ss.Completed, ss.Running)
			}
			if ss.Limit < 0 || ss.Limit > st.NumTasks {
				return nil, snapErr(sf+".limit", "limit %d outside [0, %d]", ss.Limit, st.NumTasks)
			}
			run.Stages[si] = &StageRun{
				Stage: st, Dispatched: ss.Dispatched, Completed: ss.Completed,
				Running: ss.Running, Limit: ss.Limit,
			}
		}
		// Derive ParentsLeft from parent completion, then the runnable
		// index — the same invariants arrive/finishStage maintain live.
		for si, st := range job.Stages {
			sr := run.Stages[si]
			for _, p := range st.Parents {
				if run.Stages[p].Completed < job.Stages[p].NumTasks {
					sr.ParentsLeft++
				}
			}
			if sr.ParentsLeft > 0 && sr.Dispatched > 0 {
				return nil, snapErr(fmt.Sprintf("%s.stages[%d].dispatched", field, si),
					"stage dispatched before its parents completed")
			}
			if sr.Completed == st.NumTasks {
				run.StagesDone++
			}
			if sr.Runnable() {
				run.runnable = append(run.runnable, sr)
			}
		}
		sort.Slice(run.runnable, func(a, b int) bool {
			return run.runnable[a].Stage.ID < run.runnable[b].Stage.ID
		})
		c.jobs = append(c.jobs, run)
		c.active = append(c.active, run)
	}

	c.execs = make([]*executor, s.NumExecutors)
	c.free = make(intHeap, 0, s.NumExecutors)
	// stageRunning cross-checks executor bindings against the per-stage
	// Running counters; keyed by (job index, stage ID).
	type jobStage struct{ job, stage int }
	stageRunning := map[jobStage]int{}
	for id, es := range s.Executors {
		field := fmt.Sprintf("executors[%d]", id)
		e := &executor{id: id}
		c.execs[id] = e
		switch es.State {
		case ExecIdle:
			c.free.push(id)
		case ExecBusy, ExecHeld:
			if es.Job < 0 || es.Job >= len(c.jobs) {
				return nil, snapErr(field+".job", "job index %d outside [0, %d)", es.Job, len(c.jobs))
			}
			j := c.jobs[es.Job]
			j.Executors++
			c.activeCount++
			if es.State == ExecHeld {
				e.reserved = j
				e.heldPos = len(j.held)
				j.held = append(j.held, e)
				c.reservedIdle.push(id)
				e.inReservedIdle = true
				continue
			}
			if es.Stage < 0 || es.Stage >= len(j.Stages) {
				return nil, snapErr(field+".stage", "stage ID %d outside [0, %d)", es.Stage, len(j.Stages))
			}
			e.busy = true
			e.job = j
			e.stage = j.Stages[es.Stage]
			c.busyCount++
			stageRunning[jobStage{es.Job, es.Stage}]++
		default:
			return nil, snapErr(field+".state", "unknown executor state %q (have %s, %s, %s)",
				es.State, ExecIdle, ExecBusy, ExecHeld)
		}
	}
	for ji, js := range s.Jobs {
		for si := range js.Stages {
			if got, want := stageRunning[jobStage{ji, si}], js.Stages[si].Running; got != want {
				return nil, snapErr(fmt.Sprintf("jobs[%d].stages[%d].running", ji, si),
					"%d running tasks but %d busy executors bound", want, got)
			}
		}
	}
	return c, nil
}

// Placement is the serializable form of one scheduling decision: what a
// scheduler's Pick chose on a cluster, plus the executors the engine
// would bind for it (ascending IDs, exactly the assignment order of the
// live event loop). When Defer is set the scheduler idles the cluster
// and the remaining fields are zero.
type Placement struct {
	// Scheduler is the deciding policy's display name.
	Scheduler string `json:"scheduler"`
	// Defer reports that no stage is scheduled until the next event.
	Defer bool `json:"defer,omitempty"`
	// JobID / StageID identify the chosen stage (DAG identifiers).
	JobID   int `json:"job_id"`
	StageID int `json:"stage_id"`
	// Limit is the parallelism limit the decision puts in force.
	Limit int `json:"limit"`
	// MaxNew bounds executors bound by this single decision (<1: none).
	MaxNew int `json:"max_new,omitempty"`
	// ExecutorIDs are the executors the decision binds, in assignment
	// order.
	ExecutorIDs []int `json:"executor_ids,omitempty"`
}

// Place runs one Pick of s against the cluster and reports the decision
// together with the executors the engine's assignment loop would bind —
// without mutating any scheduling state, so successive calls with fresh
// scheduler instances are independent.
func (c *Cluster) Place(s Scheduler) Placement {
	d := s.Pick(c)
	p := Placement{Scheduler: s.Name()}
	if d.Defer || d.Ref.Stage == nil || d.Ref.Job == nil {
		p.Defer = true
		return p
	}
	j, st := d.Ref.Job, d.Ref.Stage
	limit := d.Limit
	if limit < 1 || limit > st.Stage.NumTasks {
		limit = st.Stage.NumTasks
	}
	p.JobID = j.Job.ID
	p.StageID = st.Stage.ID
	p.Limit = limit
	p.MaxNew = d.MaxNew
	if !j.Arrived || j.Done || !st.Runnable() {
		return p
	}
	// The closed form of assign's bind loop: each bind advances Running,
	// Dispatched, and the job's executor count by one, so the bound
	// count is the smallest of the four headrooms and the free pool.
	n := limit - st.Running
	if r := st.RemainingTasks(); n > r {
		n = r
	}
	if d.MaxNew > 0 && n > d.MaxNew {
		n = d.MaxNew
	}
	if c.cfg.PerJobCap > 0 {
		if head := c.cfg.PerJobCap - j.Executors; n > head {
			n = head
		}
	}
	if n > len(c.free) {
		n = len(c.free)
	}
	if n > 0 {
		p.ExecutorIDs = c.free.peekN(n)
	}
	return p
}

// peekN returns the n smallest entries in ascending order without
// mutating the heap.
func (h intHeap) peekN(n int) []int {
	if n > len(h) {
		n = len(h)
	}
	if n <= 0 {
		return nil
	}
	cp := append(intHeap(nil), h...)
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, cp.pop())
	}
	return out
}

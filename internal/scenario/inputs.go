package scenario

import (
	"pcaps/internal/arrivals"
	"pcaps/internal/carbon"
	"pcaps/internal/dag"
)

// ResolvedCluster is one cluster's materialized carbon input.
type ResolvedCluster struct {
	// Name is the cluster/grid label.
	Name string
	// Grid is the power-grid identifier.
	Grid string
	// Trace is the full resolved carbon trace (the per-trial windows
	// the runs slice out of it derive from the cell seeds).
	Trace *carbon.Trace
	// SynthSeed is the seed a "synth" source was generated with (the
	// run seed offset by the grid's canonical index) — the value that
	// regenerates the trace via carbon.Synthesize or `tracegen -grid
	// NAME -seed SynthSeed`. Meaningless for csv/carbonapi sources.
	SynthSeed int64
}

// Inputs are a scenario's resolved, replayable inputs: every cluster's
// full carbon trace and the template job batch. `tracegen -scenario`
// serializes these as CSV for offline replay and external tooling.
type Inputs struct {
	// Clusters holds one entry per distinct cluster/grid the scenario
	// touches, in declaration order.
	Clusters []ResolvedCluster
	// Jobs is the template batch: the scenario's batch configuration
	// drawn at the spec seed. (Individual trials derive their batches
	// from per-cell seeds; the template documents the workload shape.)
	Jobs []*dag.Job
	// Mix, JobsN, InterarrivalSec, Seed, and Hours echo the resolved
	// batch/trace configuration, for provenance headers.
	Mix             string
	JobsN           int
	InterarrivalSec float64
	Seed            int64
	Hours           int
	// Arrivals is the resolved arrival process (csv schedules loaded);
	// the paper's Poisson when the spec declares none. InterarrivalSec
	// echoes its mean for the poisson kind and is 0 otherwise.
	Arrivals arrivals.Spec
	// Classes echoes the resolved heterogeneous class set (nil for
	// homogeneous batches).
	Classes []ClassSpec
}

// Inputs resolves the program's carbon sources and template workload
// without running any simulation.
func (p *Program) Inputs(env Env) (out *Inputs, err error) {
	defer func() {
		// The batch generator fails fast through the pool's panic path
		// (a csv schedule shorter than the batch); surface it as an
		// error here the way Run does.
		if rec := recover(); rec != nil {
			se, ok := rec.(simError)
			if !ok {
				panic(rec)
			}
			out, err = nil, se.err
		}
	}()
	r, err := newRunEnv(p.spec, env)
	if err != nil {
		return nil, err
	}

	var members []member
	switch {
	case p.spec.Sweep != nil:
		if len(p.spec.Clusters) > 0 {
			members, err = r.resolveMembers()
		} else {
			grid := p.spec.Sweep.Grid
			if grid == "" {
				grid = "DE"
			}
			members, err = r.gridMembers([]string{grid})
		}
	case p.spec.Federation != nil && len(p.spec.Federation.Topologies) > 0:
		seen := map[string]bool{}
		for _, topo := range p.spec.Federation.Topologies {
			ms, terr := r.gridMembers(topo)
			if terr != nil {
				err = terr
				break
			}
			for _, m := range ms {
				if !seen[m.key] {
					seen[m.key] = true
					members = append(members, m)
				}
			}
		}
	default:
		members, err = r.resolveMembers()
	}
	if err != nil {
		return nil, err
	}

	n := p.spec.Workload.Jobs
	switch {
	case p.spec.Sweep != nil:
		// Mirrors runSweep: fast shrinks the default batch only, an
		// explicit size is honored — Inputs must describe what Run
		// simulates.
		if n <= 0 {
			n = 50
			if r.fast {
				n = 25
			}
		}
	case p.spec.Federation != nil:
		if n <= 0 {
			n = 40
			if r.fast {
				n = 16
			}
		}
	default:
		if n <= 0 {
			if len(p.spec.Workload.Sizes) > 0 {
				n = p.spec.Workload.Sizes[0]
			} else {
				n = 25
			}
		}
	}

	inter := 0.0
	if r.arr.Kind == arrivals.KindPoisson {
		inter = r.arr.MeanSec
	}
	out = &Inputs{
		Jobs:            r.batch(n, r.seed),
		Mix:             r.mix.String(),
		JobsN:           n,
		InterarrivalSec: inter,
		Seed:            r.seed,
		Hours:           r.hours,
		Arrivals:        r.arr,
		Classes:         p.spec.Workload.Classes,
	}
	for _, m := range members {
		out.Clusters = append(out.Clusters, ResolvedCluster{
			Name: m.key, Grid: m.grid, Trace: m.trace,
			SynthSeed: synthSeedFor(r.seed, m.grid),
		})
	}
	return out, nil
}

package scenario

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"

	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
	"pcaps/internal/result"
)

func bootServer(t *testing.T, svc *Service) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(carbonapi.NewServer(
		map[string]*carbon.Trace{}, carbonapi.WithScenarios(svc)))
	t.Cleanup(srv.Close)
	return srv
}

// TestScenarioOverHTTPMatchesLocal is the end-to-end integration test:
// a user-supplied spec POSTed to /v1/scenarios returns the same
// artifact as a local fast-mode compile-and-run — one spec, one
// pipeline, two surfaces.
func TestScenarioOverHTTPMatchesLocal(t *testing.T) {
	raw, err := os.ReadFile("../../examples/scenarios/minimal.json")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(*spec)
	if err != nil {
		t.Fatal(err)
	}
	local, err := prog.Run(Env{Fast: true})
	if err != nil {
		t.Fatal(err)
	}

	srv := bootServer(t, &Service{})
	remote, err := carbonapi.NewClient(srv.URL).RunScenario(context.Background(), raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local, remote) {
		t.Fatalf("HTTP artifact diverged from local run:\n%+v\n%+v", local, remote)
	}
	// The re-rendered text matches too: display hints travel with the
	// wire artifact.
	lt, _ := result.TextRenderer{}.Render(local)
	rt, _ := result.TextRenderer{}.Render(remote)
	if !bytes.Equal(lt, rt) {
		t.Fatalf("re-rendered texts differ:\n%s\n%s", lt, rt)
	}
}

// TestScenarioOverHTTPYAML: the endpoint accepts the YAML dialect too.
func TestScenarioOverHTTPYAML(t *testing.T) {
	raw, err := os.ReadFile("../../examples/scenarios/federation.yaml")
	if err != nil {
		t.Fatal(err)
	}
	srv := bootServer(t, &Service{})
	art, err := carbonapi.NewClient(srv.URL).RunScenario(context.Background(), raw)
	if err != nil {
		t.Fatal(err)
	}
	if art.ID != "three-region-federation" || len(art.Blocks) == 0 {
		t.Fatalf("unexpected artifact: %+v", art)
	}
}

// TestServiceRejectsInvalidSpec: parse and validation failures wrap
// carbonapi.ErrInvalidScenario (the handler's 400 signal) and name the
// offending field.
func TestServiceRejectsInvalidSpec(t *testing.T) {
	svc := &Service{}
	cases := map[string]string{
		"malformed": `{"name": `,
		"unknown field": `{"name": "x", "workload": {"mix": "tpch"}, "sede": 1,
			"baseline": {"kind": "fifo"}, "policies": [{"kind": "cap"}]}`,
		"invalid": `{"name": "x", "workload": {"mix": "warp"}, "baseline": {"kind": "fifo"}, "policies": [{"kind": "cap"}]}`,
	}
	for name, doc := range cases {
		_, err := svc.Run(context.Background(), []byte(doc))
		if !errors.Is(err, carbonapi.ErrInvalidScenario) {
			t.Fatalf("%s: want ErrInvalidScenario, got %v", name, err)
		}
	}
}

// TestServiceRejectsInvalidSpecOverHTTP: the wrapped rejection becomes
// a 400 with the field named, not a 500.
func TestServiceRejectsInvalidSpecOverHTTP(t *testing.T) {
	srv := bootServer(t, &Service{})
	resp, err := http.Post(srv.URL+"/v1/scenarios", "application/json",
		bytes.NewReader([]byte(`{"name": "x", "workload": {"mix": "warp"}}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte("workload.mix")) {
		t.Fatalf("400 body does not name the field: %s", body)
	}
}

// TestServiceGatesExternalSources: csv/carbonapi sources are refused by
// default (the server would read its own filesystem or dial out on the
// requester's behalf) and permitted only when explicitly enabled.
func TestServiceGatesExternalSources(t *testing.T) {
	doc := []byte(`{
		"name": "x",
		"clusters": [{"name": "f", "grid": "DE", "source": "csv", "csv": "/etc/hostname"}],
		"workload": {"mix": "tpch", "jobs": 4},
		"baseline": {"kind": "fifo"},
		"policies": [{"kind": "cap"}]
	}`)
	_, err := (&Service{}).Run(context.Background(), doc)
	if !errors.Is(err, carbonapi.ErrInvalidScenario) {
		t.Fatalf("external source accepted by default: %v", err)
	}
	// With the gate open the spec proceeds to source resolution (and
	// fails there, on the non-trace file — proving the gate, not the
	// parser, was the barrier).
	_, err = (&Service{AllowExternalSources: true}).Run(context.Background(), doc)
	if err == nil || errors.Is(err, carbonapi.ErrInvalidScenario) {
		t.Fatalf("gate did not open: %v", err)
	}
}

// routerList builds n distinct-named round-robin router entries.
func routerList(n int) string {
	entries := make([]string, n)
	for i := range entries {
		entries[i] = fmt.Sprintf(`{"kind": "round-robin", "name": "r%d"}`, i)
	}
	return strings.Join(entries, ",")
}

// TestServiceEnforcesScaleCeilings: fast mode shrinks defaults, not
// explicit sizes — a tiny valid POST asking for a gigantic trace or
// batch must be a 400-class rejection naming the field, not hours of
// server work.
func TestServiceEnforcesScaleCeilings(t *testing.T) {
	svc := &Service{}
	cases := map[string]string{
		"hours": `{"name": "x", "hours": 500000000, "workload": {"mix": "tpch"},
			"baseline": {"kind": "fifo"}, "policies": [{"kind": "cap"}]}`,
		"workload.jobs": `{"name": "x", "workload": {"mix": "tpch", "jobs": 10000000},
			"baseline": {"kind": "fifo"}, "policies": [{"kind": "cap"}]}`,
		"trials": `{"name": "x", "trials": 100000, "workload": {"mix": "tpch"},
			"baseline": {"kind": "fifo"}, "policies": [{"kind": "cap"}]}`,
		"sweep.values": `{"name": "x", "workload": {"mix": "tpch"},
			"baseline": {"kind": "fifo"},
			"sweep": {"values": [` + strings.Repeat("2,", 100) + `2], "policy": {"kind": "cap"}}}`,
		"federation.routers": `{"name": "x", "workload": {"mix": "tpch"}, "grids": ["DE"],
			"federation": {"routers": [` + routerList(40) + `]}}`,
		"workload.sizes": `{"name": "x", "workload": {"mix": "tpch", "sizes": [` + strings.Repeat("5,", 50) + `5]},
			"baseline": {"kind": "fifo"}, "policies": [{"kind": "cap"}]}`,
	}
	for field, doc := range cases {
		_, err := svc.Run(context.Background(), []byte(doc))
		if !errors.Is(err, carbonapi.ErrInvalidScenario) {
			t.Fatalf("%s: oversized spec not rejected: %v", field, err)
		}
		if !strings.Contains(err.Error(), field) {
			t.Fatalf("%s: rejection does not name the field: %v", field, err)
		}
	}
	// The built-in scale itself stays under every ceiling.
	raw := []byte(`{"name": "ok", "hours": 26304, "trials": 3,
		"workload": {"mix": "tpch", "jobs": 8}, "grids": ["DE"],
		"baseline": {"kind": "fifo"}, "policies": [{"kind": "cap"}]}`)
	if _, err := svc.Run(context.Background(), raw); err != nil {
		t.Fatalf("full-scale spec rejected: %v", err)
	}
}

// TestServiceConcurrent: concurrent POSTs of distinct specs are safe
// (the compiled programs share only the read-only synth cache).
func TestServiceConcurrent(t *testing.T) {
	raw, err := os.ReadFile("../../examples/scenarios/minimal.json")
	if err != nil {
		t.Fatal(err)
	}
	srv := bootServer(t, &Service{})
	client := carbonapi.NewClient(srv.URL)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := client.RunScenario(context.Background(), raw)
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Parse decodes a scenario spec from JSON or the YAML subset (yaml.go),
// detected by the first non-space byte: '{' selects JSON. Unknown
// fields are rejected on both paths, so a typo'd knob fails loudly
// instead of silently selecting a default. The spec is validated before
// being returned.
func Parse(data []byte) (*Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("scenario: empty spec")
	}
	if trimmed[0] == '{' {
		return parseStrictJSON(data)
	}
	tree, err := yamlToTree(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// Round-tripping the YAML tree through encoding/json reuses the
	// Spec's JSON schema — field names, number coercion, and the strict
	// unknown-field check — so the two formats cannot drift.
	enc, err := json.Marshal(tree)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return parseStrictJSON(enc)
}

func parseStrictJSON(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	// A trailing second document would be silently dropped otherwise.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a spec file. Extension selects the format
// (.json → JSON, .yaml/.yml → YAML); anything else is sniffed by
// content as in Parse.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		return parseStrictJSON(data)
	case ".yaml", ".yml":
		tree, err := yamlToTree(data)
		if err != nil {
			return nil, fmt.Errorf("scenario: %s: %w", path, err)
		}
		enc, err := json.Marshal(tree)
		if err != nil {
			return nil, fmt.Errorf("scenario: %s: %w", path, err)
		}
		return parseStrictJSON(enc)
	default:
		return Parse(data)
	}
}

package scenario

import (
	"context"
	"fmt"

	"pcaps/internal/carbonapi"
	"pcaps/internal/result"
)

// Service implements carbonapi.Scenarios: POST /v1/scenarios parses,
// validates, compiles, and runs one user-supplied spec. Every run is
// forced into fast mode, the same policy as the /v1/experiments
// service — the HTTP surface is for validation, smoke runs, and
// inspection; full-scale matrices stay behind pcapsim -scenario.
//
// Unlike experiments.Service there is no result cache: the spec space
// is unbounded, and a run is already seconds in fast mode. Service is
// safe for concurrent use — each Run compiles its own program and every
// stochastic choice derives from the spec's seed.
type Service struct {
	// Pool bounds each run's cell fan-out; nil runs serially.
	Pool Pool
	// Traces overrides carbon-source resolution (tests); nil selects
	// the default Sources.
	Traces TraceProvider
	// AllowExternalSources permits "csv" and "carbonapi" cluster
	// sources. Off by default: a POSTed spec would otherwise read the
	// server's filesystem or make the server dial out on the
	// requester's behalf.
	AllowExternalSources bool
}

// Server-side scale ceilings. Fast mode shrinks the *defaults*, not
// explicitly requested sizes, so without these a small valid POST
// ({"hours": 5e8} or a million-job batch) would make the server
// synthesize gigabytes or simulate for hours on a requester's behalf.
// The ceilings are the paper's own full-scale settings — anything a
// built-in artifact needs fits; anything larger belongs in
// `pcapsim -scenario` on the requester's machine.
const (
	maxServiceHours    = 3 * 26304 // three paper trace lengths
	maxServiceJobs     = 500
	maxServiceTrials   = 10
	maxServiceValues   = 64 // sweep points
	maxServiceClusters = 24 // per topology, and topologies per spec
	maxServicePolicies = 32
	maxServiceRouters  = 16
	maxServiceSizes    = 8     // batch-size axis entries
	maxServiceExec     = 10000 // simulated executors per cluster (paper: 100)
)

// checkLimits rejects specs beyond the service ceilings, naming the
// field like every other validation error.
func checkLimits(spec *Spec) error {
	switch {
	case spec.Hours > maxServiceHours:
		return fieldErr("hours", "%d exceeds the service ceiling of %d", spec.Hours, maxServiceHours)
	case spec.Workload.Jobs > maxServiceJobs:
		return fieldErr("workload.jobs", "%d exceeds the service ceiling of %d", spec.Workload.Jobs, maxServiceJobs)
	case spec.Trials > maxServiceTrials:
		return fieldErr("trials", "%d exceeds the service ceiling of %d", spec.Trials, maxServiceTrials)
	case len(spec.Clusters) > maxServiceClusters:
		return fieldErr("clusters", "%d clusters exceed the service ceiling of %d", len(spec.Clusters), maxServiceClusters)
	case len(spec.Policies) > maxServicePolicies:
		return fieldErr("policies", "%d policies exceed the service ceiling of %d", len(spec.Policies), maxServicePolicies)
	}
	if e := spec.Engine; e != nil && e.Executors > maxServiceExec {
		return fieldErr("engine.executors", "%d exceeds the service ceiling of %d", e.Executors, maxServiceExec)
	}
	for i, c := range spec.Clusters {
		if c.Executors > maxServiceExec {
			return fieldErr(fmt.Sprintf("clusters[%d].executors", i), "%d exceeds the service ceiling of %d", c.Executors, maxServiceExec)
		}
	}
	if len(spec.Workload.Sizes) > maxServiceSizes {
		return fieldErr("workload.sizes", "%d batch sizes exceed the service ceiling of %d", len(spec.Workload.Sizes), maxServiceSizes)
	}
	for i, n := range spec.Workload.Sizes {
		if n > maxServiceJobs {
			return fieldErr(fmt.Sprintf("workload.sizes[%d]", i), "%d exceeds the service ceiling of %d", n, maxServiceJobs)
		}
	}
	if sw := spec.Sweep; sw != nil && len(sw.Values) > maxServiceValues {
		return fieldErr("sweep.values", "%d sweep points exceed the service ceiling of %d", len(sw.Values), maxServiceValues)
	}
	if f := spec.Federation; f != nil {
		if len(f.Routers) > maxServiceRouters {
			return fieldErr("federation.routers", "%d routers exceed the service ceiling of %d", len(f.Routers), maxServiceRouters)
		}
		if len(f.Topologies) > maxServiceClusters {
			return fieldErr("federation.topologies", "%d topologies exceed the service ceiling of %d", len(f.Topologies), maxServiceClusters)
		}
		for i, topo := range f.Topologies {
			if len(topo) > maxServiceClusters {
				return fieldErr(fmt.Sprintf("federation.topologies[%d]", i), "%d members exceed the service ceiling of %d", len(topo), maxServiceClusters)
			}
		}
	}
	return nil
}

// Run implements carbonapi.Scenarios.
func (s *Service) Run(ctx context.Context, raw []byte) (*result.Artifact, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spec, err := Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", carbonapi.ErrInvalidScenario, err)
	}
	if !s.AllowExternalSources {
		for i, c := range spec.Clusters {
			if c.Source != "" && c.Source != "synth" {
				return nil, fmt.Errorf("%w: %w", carbonapi.ErrInvalidScenario,
					fieldErr(fmt.Sprintf("clusters[%d].source", i),
						"source %q is disabled on this server (synthesized grids only)", c.Source))
			}
		}
		// An arrivals schedule file would likewise read the server's
		// filesystem on the requester's behalf.
		if a := spec.Workload.Arrivals; a != nil && a.Kind == "csv" {
			return nil, fmt.Errorf("%w: %w", carbonapi.ErrInvalidScenario,
				fieldErr("workload.arrivals.kind",
					"csv schedules are disabled on this server (generated arrival kinds only)"))
		}
	}
	if err := checkLimits(spec); err != nil {
		return nil, fmt.Errorf("%w: %w", carbonapi.ErrInvalidScenario, err)
	}
	prog, err := Compile(*spec)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", carbonapi.ErrInvalidScenario, err)
	}
	return prog.Run(Env{Pool: s.Pool, Fast: true, Traces: s.Traces})
}

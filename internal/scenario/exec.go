package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
	"pcaps/internal/seed"
)

// Pool bounds the worker goroutines a compiled scenario fans its cells
// out over. ForEach must run fn(i) exactly once for every i in [0, n)
// and return only when all calls finish; implementations may run them
// in any order and with any concurrency, because every cell derives its
// randomness from its own identity (seed.Derive), never from execution
// order. internal/experiments adapts its shared-budget pool to this
// interface so built-in artifacts and nested scenario cells draw from
// one process-wide worker budget.
type Pool interface {
	ForEach(n int, fn func(i int))
}

// serialPool runs cells on the calling goroutine; the nil-Pool default.
type serialPool struct{}

func (serialPool) ForEach(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// tokenPool is a standalone worker pool with the same contract as the
// experiment engine's: the caller always works, extras are spawned only
// while permits are free (non-blocking, so nested fan-outs degrade to
// serial instead of deadlocking), and a worker panic stops dispatch and
// re-raises in the caller.
type tokenPool struct {
	tokens chan struct{}
}

// NewPool returns a Pool bounded to the given parallelism: 0 selects
// GOMAXPROCS, 1 forces the serial path.
func NewPool(parallel int) Pool {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &tokenPool{tokens: make(chan struct{}, parallel-1)}
}

// ForEach implements Pool.
func (p *tokenPool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	next.Store(-1)
	work := func() {
		defer func() {
			if r := recover(); r != nil {
				failed.Store(true)
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
			}
		}()
		for !failed.Load() {
			i := int(next.Add(1))
			if i >= n {
				return
			}
			fn(i)
		}
	}
spawn:
	for extras := 0; extras < n-1; extras++ {
		select {
		case p.tokens <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.tokens }()
				work()
			}()
		default:
			break spawn
		}
	}
	work()
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// TraceProvider resolves one cluster's carbon source to a trace. hours
// and synthSeed apply to the "synth" source (the seed already carries
// the grid's derivation offset); csv and carbonapi sources return the
// trace as stored/served. Injected by tests and by servers that must
// not touch the filesystem or network on behalf of a request.
type TraceProvider interface {
	Trace(c ClusterSpec, hours int, synthSeed int64) (*carbon.Trace, error)
}

// Sources is the default TraceProvider: calibrated synthesis (cached,
// like the experiment engine's trace cache), CSV files, and live
// carbonapi fetches.
type Sources struct {
	// FetchTimeout bounds one carbonapi fetch (0: 30 s — a full
	// three-year trace is ~26k samples).
	FetchTimeout time.Duration
}

type synthKey struct {
	grid  string
	hours int
	seed  int64
}

type synthEntry struct {
	once sync.Once
	tr   *carbon.Trace
}

// synthCache shares synthesized traces across scenario runs; traces are
// read-only after construction, so concurrent reuse is safe. Entries
// are capped: a long-lived server answering specs with ever-new
// (seed, hours) pairs must not accumulate traces forever, so past the
// cap new keys synthesize uncached (correctness is unaffected — the
// cache is purely a de-duplication of pure-function results).
var (
	synthCache      sync.Map // synthKey → *synthEntry
	synthCacheCount atomic.Int64
)

// maxSynthCacheEntries bounds the cache: 64 three-year traces ≈ 13 MB,
// comfortably above what `-exp all` plus the examples touch.
const maxSynthCacheEntries = 64

// Trace implements TraceProvider.
func (s Sources) Trace(c ClusterSpec, hours int, synthSeed int64) (*carbon.Trace, error) {
	switch src := c.Source; src {
	case "", "synth":
		spec, err := carbon.GridByName(c.Grid)
		if err != nil {
			return nil, err
		}
		key := synthKey{grid: c.Grid, hours: hours, seed: synthSeed}
		if v, ok := synthCache.Load(key); ok {
			e := v.(*synthEntry)
			e.once.Do(func() { e.tr = carbon.Synthesize(spec, hours, 60, synthSeed) })
			return e.tr, nil
		}
		if synthCacheCount.Load() >= maxSynthCacheEntries {
			return carbon.Synthesize(spec, hours, 60, synthSeed), nil
		}
		v, loaded := synthCache.LoadOrStore(key, &synthEntry{})
		if !loaded {
			synthCacheCount.Add(1)
		}
		e := v.(*synthEntry)
		e.once.Do(func() { e.tr = carbon.Synthesize(spec, hours, 60, synthSeed) })
		return e.tr, nil
	case "csv":
		f, err := os.Open(c.CSV)
		if err != nil {
			return nil, fmt.Errorf("scenario: carbon source for %q: %w", c.Grid, err)
		}
		defer f.Close()
		return carbon.ReadCSV(f, c.Grid, 60)
	case "carbonapi":
		timeout := s.FetchTimeout
		if timeout <= 0 {
			timeout = 30 * time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		client := carbonapi.NewClient(c.URL)
		// Relax the client's default 5-second poll timeout: a full
		// three-year trace window legitimately takes longer. The context
		// deadline above still bounds the call.
		client.HTTPClient = &http.Client{Timeout: timeout}
		tr, err := client.FetchTrace(ctx, c.Grid, 0, hours)
		if err != nil {
			return nil, fmt.Errorf("scenario: carbon source for %q: %w", c.Grid, err)
		}
		return tr, nil
	default:
		return nil, fieldErr("source", "unknown carbon source %q", c.Source)
	}
}

// trialWindow replays the experiment engine's randomized trial windows
// byte-for-byte: a uniformly random start offset into the trace drawn
// from an RNG seeded by the cell's identity (domain-separated from the
// job batch, which consumes the undecorated cell seed).
func trialWindow(tr *carbon.Trace, windowHours int, cellSeed int64) *carbon.Trace {
	maxStart := len(tr.Values) - windowHours
	if maxStart < 1 {
		return tr
	}
	rng := rand.New(rand.NewSource(seed.Derive(cellSeed, "trace-offset")))
	off := float64(rng.Intn(maxStart)) * tr.Interval
	return tr.Slice(off, float64(windowHours)*tr.Interval)
}

// synthSeedFor derives the synthesis seed of one grid the way the
// experiment engine's env does: the run seed offset by the grid's index
// in the canonical Table 1 order, so a scenario and a built-in artifact
// replaying the same grid at the same seed see identical intensities.
func synthSeedFor(runSeed int64, grid string) int64 {
	for i, spec := range carbon.Grids() {
		if spec.Name == grid {
			return runSeed + int64(i)*1000003
		}
	}
	return runSeed
}

package scenario

import (
	"fmt"

	fed "pcaps/internal/federation"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
)

// Defaults applied when a policy omits its parameter; the paper's
// mid-range settings (CAP B=20 as in Figs. 10/14, PCAPS γ=0.5).
const (
	defaultCAPB       = 20
	defaultPCAPSGamma = 0.5
)

// policyFactory builds one fresh scheduler per run, seeded with the
// cell's seed — scheduler instances carry per-run scratch and must not
// be shared across cells.
type policyFactory func(seed int64) sim.Scheduler

// policyName resolves a policy's display label.
func policyName(p PolicySpec) string {
	if p.Name != "" {
		return p.Name
	}
	return p.Kind
}

// compilePolicy lowers a validated PolicySpec to a constructor. The
// spec has passed Validate, so unknown kinds are programming errors.
func compilePolicy(p PolicySpec) (policyFactory, error) {
	switch p.Kind {
	case "fifo":
		return func(int64) sim.Scheduler { return &sched.FIFO{} }, nil
	case "kube-default":
		return func(int64) sim.Scheduler { return sched.NewKubeDefault() }, nil
	case "weighted-fair":
		return func(int64) sim.Scheduler { return &sched.WeightedFair{} }, nil
	case "decima":
		return func(seed int64) sim.Scheduler { return sched.NewDecima(seed) }, nil
	case "uniformpb":
		return func(int64) sim.Scheduler { return &sched.UniformPB{} }, nil
	case "greenhadoop":
		return func(int64) sim.Scheduler { return sched.NewGreenHadoop() }, nil
	case "cap":
		b := p.B
		if b <= 0 {
			b = defaultCAPB
		}
		inner := PolicySpec{Kind: "fifo"}
		if p.Inner != nil {
			inner = *p.Inner
		}
		buildInner, err := compilePolicy(inner)
		if err != nil {
			return nil, err
		}
		return func(seed int64) sim.Scheduler { return sched.NewCAP(buildInner(seed), b) }, nil
	case "pcaps":
		gamma := p.Gamma
		if gamma == 0 {
			gamma = defaultPCAPSGamma
		}
		buildPB, err := compileProbabilistic(p.Inner)
		if err != nil {
			return nil, err
		}
		return func(seed int64) sim.Scheduler { return sched.NewPCAPS(buildPB(seed), gamma, seed) }, nil
	}
	return nil, fmt.Errorf("scenario: unknown policy kind %q", p.Kind)
}

// compileProbabilistic builds PCAPS's inner probabilistic policy
// (decima by default).
func compileProbabilistic(p *PolicySpec) (func(seed int64) sched.Probabilistic, error) {
	kind := "decima"
	if p != nil {
		kind = p.Kind
	}
	switch kind {
	case "decima":
		return func(seed int64) sched.Probabilistic { return sched.NewDecima(seed) }, nil
	case "uniformpb":
		return func(int64) sched.Probabilistic { return &sched.UniformPB{} }, nil
	}
	return nil, fmt.Errorf("scenario: pcaps cannot wrap policy kind %q", kind)
}

// bindSweepValue instantiates the sweep's policy template at one
// parameter value: cap sweeps B, pcaps sweeps γ.
func bindSweepValue(template PolicySpec, value float64) PolicySpec {
	switch template.Kind {
	case "cap":
		template.B = int(value)
	case "pcaps":
		template.Gamma = value
	}
	return template
}

// compileRouter lowers a RouterSpec to a fresh-router constructor
// (routers carry per-run state; the federation engine Resets them, but
// a new instance per run keeps cells independent under fan-out).
func compileRouter(r RouterSpec) (func() fed.Router, error) {
	switch r.Kind {
	case "round-robin":
		return func() fed.Router { return fed.NewRoundRobin() }, nil
	case "lowest-intensity":
		return func() fed.Router { return fed.NewLowestIntensity() }, nil
	case "forecast-aware":
		h := r.Hysteresis
		return func() fed.Router {
			fa := fed.NewForecastAware()
			if h != 0 {
				fa.Hysteresis = h
			}
			return fa
		}, nil
	}
	return nil, fmt.Errorf("scenario: unknown router kind %q", r.Kind)
}

// routerName resolves a router row's display label.
func routerName(r RouterSpec) string {
	if r.Name != "" {
		return r.Name
	}
	return "fed:" + r.Kind
}

package scenario

import (
	"fmt"

	fed "pcaps/internal/federation"
	"pcaps/internal/sched"
)

// policyFactory builds one fresh scheduler per run, seeded with the
// cell's seed — scheduler instances carry per-run scratch and must not
// be shared across cells. It is the registry's factory type; the alias
// keeps the compile call sites readable.
type policyFactory = sched.Factory

// policyName resolves a policy's display label.
func policyName(p PolicySpec) string {
	if p.Name != "" {
		return p.Name
	}
	return p.Kind
}

// sched lowers the scenario shape (which adds a display name per node)
// to the registry's Spec.
func (p PolicySpec) sched() sched.Spec {
	s := sched.Spec{Kind: p.Kind, B: p.B, Gamma: p.Gamma}
	if p.Inner != nil {
		inner := p.Inner.sched()
		s.Inner = &inner
	}
	return s
}

// compilePolicy lowers a validated PolicySpec to a constructor through
// the shared policy registry — the same table the placement service
// builds from, so defaults and inner wiring cannot drift between the
// two surfaces. The spec has passed Validate, so a rejection here is a
// programming error.
func compilePolicy(p PolicySpec) (policyFactory, error) {
	f, err := sched.Default().New(p.sched())
	if err != nil {
		return nil, fmt.Errorf("scenario: compiling policy %q: %w", policyName(p), err)
	}
	return f, nil
}

// bindSweepValue instantiates the sweep's policy template at one
// parameter value, bound to the parameter the kind's registry entry
// exposes (cap → B, pcaps → γ).
func bindSweepValue(template PolicySpec, value float64) PolicySpec {
	switch sched.Default().SweepParam(template.Kind) {
	case "b":
		template.B = sched.Int(int(value))
	case "gamma":
		template.Gamma = sched.Float(value)
	}
	return template
}

// compileRouter lowers a RouterSpec to a fresh-router constructor
// (routers carry per-run state; the federation engine Resets them, but
// a new instance per run keeps cells independent under fan-out).
func compileRouter(r RouterSpec) (func() fed.Router, error) {
	switch r.Kind {
	case "round-robin":
		return func() fed.Router { return fed.NewRoundRobin() }, nil
	case "lowest-intensity":
		return func() fed.Router { return fed.NewLowestIntensity() }, nil
	case "forecast-aware":
		h := r.Hysteresis
		return func() fed.Router {
			fa := fed.NewForecastAware()
			if h != 0 {
				fa.Hysteresis = h
			}
			return fa
		}, nil
	}
	return nil, fmt.Errorf("scenario: unknown router kind %q", r.Kind)
}

// routerName resolves a router row's display label.
func routerName(r RouterSpec) string {
	if r.Name != "" {
		return r.Name
	}
	return "fed:" + r.Kind
}

package scenario

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"pcaps/internal/arrivals"
	"pcaps/internal/carbon"
	"pcaps/internal/cluster"
	"pcaps/internal/dag"
	fed "pcaps/internal/federation"
	"pcaps/internal/metrics"
	"pcaps/internal/result"
	"pcaps/internal/seed"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

// Env carries the execution-level knobs the caller — CLI, HTTP service,
// or the experiments registry — owns, as opposed to the scenario's own
// description. The zero value runs serially with the default carbon
// sources at full scale.
type Env struct {
	// Pool fans cells out; nil runs serially. Results are identical
	// either way (per-cell seed derivation).
	Pool Pool
	// Fast shrinks the matrix for smoke runs the way the experiment
	// engine's fast mode does: one trial, small batches, short traces.
	Fast bool
	// Traces resolves carbon sources; nil selects Sources{}.
	Traces TraceProvider
}

// Program is a compiled scenario, ready to run. Compile validates and
// lowers the spec once; Run may be called repeatedly (each run
// re-resolves carbon sources, so a live carbonapi source observes the
// server's current traces).
type Program struct {
	spec Spec
}

// Compile validates a spec and lowers it into a runnable program.
func Compile(s Spec) (*Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// Compile every policy and router now so a bad spec fails before
	// any simulation starts; Run recompiles cheaply.
	if s.Baseline != nil {
		if _, err := compilePolicy(*s.Baseline); err != nil {
			return nil, err
		}
	}
	for _, p := range s.Policies {
		if _, err := compilePolicy(p); err != nil {
			return nil, err
		}
	}
	if s.Sweep != nil {
		if _, err := compilePolicy(s.Sweep.Policy); err != nil {
			return nil, err
		}
	}
	if f := s.Federation; f != nil {
		for _, r := range f.Routers {
			if _, err := compileRouter(r); err != nil {
				return nil, err
			}
			if r.Policy != nil {
				if _, err := compilePolicy(*r.Policy); err != nil {
					return nil, err
				}
			}
		}
		if f.Member != nil {
			if _, err := compilePolicy(*f.Member); err != nil {
				return nil, err
			}
		}
	}
	return &Program{spec: s}, nil
}

// Spec returns the program's (validated) spec.
func (p *Program) Spec() Spec { return p.spec }

// simError carries a mid-cell simulation failure across the worker
// pool's panic path back to Run, which converts it to an error.
type simError struct{ err error }

// mustRun runs one member simulation, aborting the whole program on
// failure (fail-fast through the pool, like the experiment engine).
func mustRun(cfg sim.Config, jobs []*dag.Job, s sim.Scheduler) *sim.Result {
	res, err := sim.Run(cfg, jobs, s)
	if err != nil {
		panic(simError{fmt.Errorf("scenario: %s: %w", s.Name(), err)})
	}
	return res
}

// mustRunStream runs one member simulation through the streaming engine,
// drawing jobs lazily from a fresh workload source (fail-fast through the
// pool, like mustRun).
func mustRunStream(cfg sim.Config, src sim.JobSource, s sim.Scheduler) *sim.Result {
	res, err := sim.RunStream(cfg, src, s)
	if err != nil {
		panic(simError{fmt.Errorf("scenario: %s: %w", s.Name(), err)})
	}
	return res
}

// mustRunGroup runs one cell's policy variants as a common-prefix group
// (sim.RunGroup): one shared simulation up to the first policy-divergent
// decision, per-variant forks after. Results are positionally parallel
// to scheds and byte-identical to len(scheds) mustRun calls.
func mustRunGroup(cfg sim.Config, jobs []*dag.Job, scheds []sim.Scheduler) []*sim.Result {
	res, err := sim.RunGroup(cfg, jobs, scheds)
	if err != nil {
		panic(simError{fmt.Errorf("scenario: %w", err)})
	}
	return res
}

// runEnv is the resolved execution state shared by the three families.
type runEnv struct {
	spec   Spec
	fast   bool
	pool   Pool
	traces TraceProvider
	seed   int64
	hours  int
	// arr is the resolved arrival process description (csv schedules
	// loaded); proc is the corresponding generator, shared across cells
	// (processes are stateless — every draw comes from the cell's RNG).
	arr     arrivals.Spec
	proc    arrivals.Process
	mix     workload.Mix
	classes []workload.Class
}

// mixOf maps the spec's mix names onto the workload families.
func mixOf(s string) workload.Mix {
	switch s {
	case "alibaba":
		return workload.MixAlibaba
	case "both":
		return workload.MixBoth
	default:
		return workload.MixTPCH
	}
}

// newRunEnv resolves the execution state shared by Run and Inputs:
// seed 42, fast-scaled trace length, the arrival process (the paper's
// 30-second Poisson unless workload.arrivals says otherwise, with csv
// schedules read here, once per run), and the workload mix or class
// set. The spec is assumed validated (Compile ran).
func newRunEnv(spec Spec, env Env) (*runEnv, error) {
	r := &runEnv{spec: spec, fast: env.Fast, pool: env.Pool, traces: env.Traces}
	if r.pool == nil {
		r.pool = serialPool{}
	}
	if r.traces == nil {
		r.traces = Sources{}
	}
	r.seed = spec.Seed
	if r.seed == 0 {
		r.seed = 42
	}
	r.hours = spec.Hours
	if r.hours <= 0 {
		if r.fast {
			r.hours = 4000
		} else {
			r.hours = carbon.PaperHours
		}
	}
	if a := spec.Workload.Arrivals; a != nil {
		r.arr = a.arrivals()
		if r.arr.Kind == arrivals.KindCSV {
			loaded, err := readSchedule(a.CSV)
			if err != nil {
				return nil, err
			}
			r.arr = loaded
		}
	} else {
		r.arr = arrivals.Spec{Kind: arrivals.KindPoisson, MeanSec: arrivals.DefaultPoissonMeanSec}
		if m := spec.Workload.MeanInterarrivalSec; m != nil {
			r.arr.MeanSec = *m
		}
	}
	proc, err := arrivals.New(r.arr)
	if err != nil {
		return nil, fmt.Errorf("scenario: workload.arrivals: %w", err)
	}
	r.proc = proc
	r.mix = mixOf(spec.Workload.Mix)
	for _, c := range spec.Workload.Classes {
		r.classes = append(r.classes, workload.Class{
			Name: c.Name, Mix: mixOf(c.Mix), Weight: c.Weight, WorkScale: c.WorkScale,
		})
	}
	return r, nil
}

// readSchedule loads a csv arrival schedule from disk.
func readSchedule(path string) (arrivals.Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return arrivals.Spec{}, fmt.Errorf("scenario: workload.arrivals.csv: %w", err)
	}
	defer f.Close()
	s, err := arrivals.ReadCSV(f)
	if err != nil {
		return arrivals.Spec{}, fmt.Errorf("scenario: workload.arrivals.csv: %s: %w", path, err)
	}
	return s, nil
}

// member is one resolved cluster/grid axis entry.
type member struct {
	// key is the seed-derivation domain and display label (grid name,
	// or cluster name for explicit clusters).
	key string
	// grid keys the carbon signals.
	grid string
	// trace is the full resolved carbon trace.
	trace *carbon.Trace
	// executors overrides the member's cluster size (0: default).
	executors int
}

// Run executes the compiled scenario and returns its artifact, stamped
// with the spec's name and title (the experiments registry re-stamps
// built-ins with their artifact IDs).
func (p *Program) Run(env Env) (art *result.Artifact, err error) {
	defer func() {
		if r := recover(); r != nil {
			se, ok := r.(simError)
			if !ok {
				panic(r)
			}
			art, err = nil, se.err
		}
	}()
	r, err := newRunEnv(p.spec, env)
	if err != nil {
		return nil, err
	}
	switch {
	case p.spec.Sweep != nil:
		art, err = r.runSweep()
	case p.spec.Federation != nil:
		art, err = r.runFederation()
	default:
		art, err = r.runComparison()
	}
	if err != nil {
		return nil, err
	}
	art.ID = p.spec.Name
	art.Title = p.spec.Title
	if art.Title == "" {
		art.Title = "scenario " + p.spec.Name
	}
	return art, nil
}

// resolveMembers materializes the scenario's cluster axis: explicit
// clusters with their declared carbon sources, or synthesized grids
// (the engine default set when neither is given).
func (r *runEnv) resolveMembers() ([]member, error) {
	if len(r.spec.Clusters) > 0 {
		out := make([]member, len(r.spec.Clusters))
		for i, c := range r.spec.Clusters {
			name := c.Name
			if name == "" {
				name = c.Grid
			}
			tr, err := r.traces.Trace(c, r.hours, synthSeedFor(r.seed, c.Grid))
			if err != nil {
				return nil, err
			}
			out[i] = member{key: name, grid: c.Grid, trace: tr, executors: c.Executors}
		}
		return out, nil
	}
	grids := r.spec.Grids
	if len(grids) == 0 {
		if r.fast {
			grids = []string{"DE"}
		} else {
			grids = []string{"PJM", "CAISO", "ON", "DE", "NSW", "ZA"}
		}
	}
	return r.gridMembers(grids)
}

func (r *runEnv) gridMembers(grids []string) ([]member, error) {
	out := make([]member, len(grids))
	for i, g := range grids {
		tr, err := r.traces.Trace(ClusterSpec{Grid: g}, r.hours, synthSeedFor(r.seed, g))
		if err != nil {
			return nil, err
		}
		out[i] = member{key: g, grid: g, trace: tr}
	}
	return out, nil
}

// baseConfig builds one member simulation's engine configuration: the
// Spark-standalone simulator environment (§5.2) or the Kubernetes
// prototype (§6.3), with the spec's engine overrides applied. The
// defaults reproduce the experiment engine's simConfig/protoConfig
// byte-for-byte, LegacyHoldWakeups included (DESIGN.md).
func (r *runEnv) baseConfig(tr *carbon.Trace, cellSeed int64, m member) sim.Config {
	var cfg sim.Config
	if r.spec.Proto {
		c := cluster.PaperConfig()
		c.Seed = cellSeed
		cfg = c.SimConfig(tr)
	} else {
		cfg = sim.Config{
			NumExecutors:      100,
			Trace:             tr,
			MoveDelay:         1,
			HoldExecutors:     true,
			IdleTimeout:       60,
			LegacyHoldWakeups: true,
			Seed:              cellSeed,
		}
	}
	if e := r.spec.Engine; e != nil {
		if e.Executors > 0 {
			cfg.NumExecutors = e.Executors
		}
		switch {
		case e.PerJobCap > 0:
			cfg.PerJobCap = e.PerJobCap
		case e.PerJobCap < 0:
			cfg.PerJobCap = 0
		}
		if e.MoveDelaySec > 0 {
			cfg.MoveDelay = e.MoveDelaySec
		}
		if e.IdleTimeoutSec != 0 {
			cfg.IdleTimeout = e.IdleTimeoutSec
		}
	}
	if m.executors > 0 {
		cfg.NumExecutors = m.executors
	}
	return cfg
}

func (r *runEnv) batch(n int, batchSeed int64) []*dag.Job {
	jobs, err := workload.Generate(workload.GenConfig{
		N: n, Arrivals: r.proc, Mix: r.mix, Classes: r.classes, Seed: batchSeed,
	})
	if err != nil {
		// Configuration errors a validated spec can still hit (a csv
		// schedule shorter than the batch); fail-fast through the pool.
		panic(simError{fmt.Errorf("scenario: workload: %w", err)})
	}
	return jobs
}

// source opens the same seeded job stream batch materializes, lazily —
// each caller gets a fresh source, so every policy of a streaming cell
// observes the identical arrival sequence.
func (r *runEnv) source(n int, batchSeed int64) sim.JobSource {
	src, err := workload.NewSource(workload.GenConfig{
		N: n, Arrivals: r.proc, Mix: r.mix, Classes: r.classes, Seed: batchSeed,
	})
	if err != nil {
		panic(simError{fmt.Errorf("scenario: workload: %w", err)})
	}
	return src
}

// streaming reports whether the spec selects the hyperscale engine.
func (r *runEnv) streaming() bool {
	return r.spec.Engine != nil && r.spec.Engine.Stream
}

// pricing returns the scenario's carbon pricing, or nil when unpriced.
func (r *runEnv) pricing() *carbon.Pricing {
	if r.spec.CarbonPriceUSDPerTonne <= 0 {
		return nil
	}
	return &carbon.Pricing{USDPerTonne: r.spec.CarbonPriceUSDPerTonne}
}

func (r *runEnv) appendNotes(a *result.Artifact) {
	for _, n := range r.spec.Notes {
		a.Textf("%s", n)
	}
}

// ---------------------------------------------------------------------------
// Comparison family: baseline vs policies across the member axis, the
// shape of the paper's per-grid comparisons (Figs. 10 and 14).

type comparisonCell struct {
	member, size, trial int
}

func (r *runEnv) runComparison() (*result.Artifact, error) {
	members, err := r.resolveMembers()
	if err != nil {
		return nil, err
	}
	trials := r.spec.Trials
	if trials <= 0 {
		trials = 3
	}
	if r.fast {
		trials = 1
	}
	var sizes []int
	if len(r.spec.Workload.Sizes) > 0 {
		// Fast mode shrinks defaults only; an explicitly declared size
		// axis is honored as written.
		sizes = r.spec.Workload.Sizes
	} else {
		sizes = []int{25, 50, 100}
		if r.fast {
			sizes = []int{25}
		}
		if r.spec.Workload.Jobs > 0 {
			sizes = []int{r.spec.Workload.Jobs}
		}
	}

	baseline, err := compilePolicy(*r.spec.Baseline)
	if err != nil {
		return nil, err
	}
	factories := map[string]policyFactory{}
	names := make([]string, 0, len(r.spec.Policies))
	for _, p := range r.spec.Policies {
		f, err := compilePolicy(p)
		if err != nil {
			return nil, err
		}
		name := policyName(p)
		factories[name] = f
		names = append(names, name)
	}
	// Rows render in name order, matching the historical per-grid
	// tables.
	sort.Strings(names)

	// Enumerate the member × size × trial matrix in rendering order;
	// cells fan out over the pool and fold back in this order, so the
	// artifact is identical at any parallelism.
	var cells []comparisonCell
	for mi := range members {
		for _, size := range sizes {
			for t := 0; t < trials; t++ {
				cells = append(cells, comparisonCell{member: mi, size: size, trial: t})
			}
		}
	}
	runs := make([]map[string]*sim.Result, len(cells))
	r.pool.ForEach(len(cells), func(i int) {
		c := cells[i]
		m := members[c.member]
		cellSeed := seed.Derive(r.seed, m.key, int64(c.size), int64(c.trial))
		tr := trialWindow(m.trace, 60+c.size, cellSeed)
		cfg := r.baseConfig(tr, cellSeed, m)
		if r.streaming() {
			// Hyperscale mode: each policy drains a fresh copy of the
			// same seeded job stream through the memory-bounded engine.
			// Summaries are identical to the classic path (the RunStream
			// equivalence contract, DESIGN.md §10); the comparison reads
			// only CarbonGrams and ECT, which need no per-job slices.
			out := map[string]*sim.Result{
				"": mustRunStream(cfg, r.source(c.size, cellSeed), baseline(cellSeed)),
			}
			for _, name := range names {
				out[name] = mustRunStream(cfg, r.source(c.size, cellSeed), factories[name](cellSeed))
			}
			runs[i] = out
			return
		}
		jobs := r.batch(c.size, cellSeed)
		// The baseline and every policy run as one common-prefix group:
		// variants share the simulation until their first divergent
		// decision (sim.RunGroup), which is most of the run for wrapper
		// policies in low-carbon windows.
		scheds := make([]sim.Scheduler, 0, len(names)+1)
		scheds = append(scheds, baseline(cellSeed))
		for _, name := range names {
			scheds = append(scheds, factories[name](cellSeed))
		}
		group := mustRunGroup(cfg, jobs, scheds)
		out := map[string]*sim.Result{"": group[0]}
		for k, name := range names {
			out[name] = group[k+1]
		}
		runs[i] = out
	})

	type agg struct {
		carbonPct, ects, grams map[string][]float64
		baseGrams              map[string][]float64
	}
	ag := agg{
		carbonPct: map[string][]float64{}, ects: map[string][]float64{},
		grams: map[string][]float64{}, baseGrams: map[string][]float64{},
	}
	perKey := func(name, key string) string { return name + "\x00" + key }
	for i, c := range cells {
		key := members[c.member].key
		base := runs[i][""]
		ag.baseGrams[key] = append(ag.baseGrams[key], base.CarbonGrams)
		for _, name := range names {
			res := runs[i][name]
			k := perKey(name, key)
			ag.carbonPct[k] = append(ag.carbonPct[k], -metrics.PercentChange(res.CarbonGrams, base.CarbonGrams))
			ag.ects[k] = append(ag.ects[k], res.ECT/base.ECT)
			ag.grams[k] = append(ag.grams[k], res.CarbonGrams)
		}
	}

	selected := r.spec.Metrics
	if len(selected) == 0 {
		selected = []string{MetricCarbonReduction, MetricRelativeECT}
		if r.pricing() != nil {
			selected = append(selected, MetricCostUSD)
		}
	}

	a := result.New()
	table := func(name string, prec int, format string, row func(policy, key string) float64, rows []string) *result.Table {
		cols := []result.Column{
			{Name: "scheduler", Kind: result.KindString, Header: "scheduler", HeaderFormat: "%-12s", Format: "%-12s"},
		}
		for _, m := range members {
			cols = append(cols, result.Column{
				Name: m.key, Kind: result.KindFloat, Prec: prec,
				Header: m.key, HeaderFormat: "%10s", Format: format,
			})
		}
		t := &result.Table{Name: name, Columns: cols}
		for _, policy := range rows {
			cells := []result.Cell{result.Str(policy)}
			for _, m := range members {
				cells = append(cells, result.Float(row(policy, m.key)))
			}
			t.Rows = append(t.Rows, cells)
		}
		return t
	}
	for _, metric := range selected {
		switch metric {
		case MetricCarbonReduction:
			a.Textf("carbon reduction (%%):\n")
			a.Add(table("carbon_reduction_pct", 1, "%10.1f", func(policy, key string) float64 {
				return metrics.Summarize(ag.carbonPct[perKey(policy, key)]).Mean
			}, names))
		case MetricRelativeECT:
			a.Textf("relative ECT:\n")
			a.Add(table("relative_ect", 3, "%10.3f", func(policy, key string) float64 {
				return metrics.Summarize(ag.ects[perKey(policy, key)]).Mean
			}, names))
		case MetricCostUSD:
			price := r.pricing()
			baseName := policyName(*r.spec.Baseline)
			a.Textf("carbon cost (USD @ $%.0f/tCO2eq):\n", price.USDPerTonne)
			rows := append([]string{baseName}, names...)
			a.Add(table("cost_usd", 4, "%10.4f", func(policy, key string) float64 {
				// Pricing is linear, so the cost of the mean emissions
				// equals the mean of per-trial costs (pinned by the
				// carbon package's linearity test).
				if policy == baseName {
					return price.Cost(metrics.Summarize(ag.baseGrams[key]).Mean)
				}
				return price.Cost(metrics.Summarize(ag.grams[perKey(policy, key)]).Mean)
			}, rows))
		}
	}
	r.appendNotes(a)
	return a, nil
}

// ---------------------------------------------------------------------------
// Sweep family: one policy template instantiated per parameter value,
// normalized against a baseline — the shape of the paper's γ and B
// sweeps (Figs. 7, 8, 11, 12).

// sweepPoint aggregates trials of one parameter setting.
type sweepPoint struct {
	param           float64
	carbonPct, ects []float64
}

// sweepTable builds the historical sweep table: one row per parameter
// value, mean ± std for carbon reduction and relative ECT.
func sweepTable(label string, pts []sweepPoint) *result.Table {
	t := &result.Table{
		Name: "sweep",
		Columns: []result.Column{
			{Name: "param", Kind: result.KindFloat, Prec: 2, Header: label, HeaderFormat: "%8s", Format: "%8.2f"},
			{Name: "carbon_reduction_pct_mean", Kind: result.KindFloat, Prec: 1,
				Header: "carbon red. (%)", HeaderFormat: " %16s", Format: " %10.1f"},
			{Name: "carbon_reduction_pct_std", Kind: result.KindFloat, Prec: 1, Format: " ±%4.1f"},
			{Name: "relative_ect_mean", Kind: result.KindFloat, Prec: 3,
				Header: "relative ECT", HeaderFormat: " %18s", Format: " %12.3f"},
			{Name: "relative_ect_std", Kind: result.KindFloat, Prec: 3, Format: " ±%.3f"},
		},
	}
	for _, p := range pts {
		c := metrics.Summarize(p.carbonPct)
		e := metrics.Summarize(p.ects)
		t.Row(result.Float(p.param),
			result.Float(c.Mean), result.Float(c.Std),
			result.Float(e.Mean), result.Float(e.Std))
	}
	return t
}

// sweepState is one trial's stage-1 output: the shared batch and
// configuration plus the baseline run every parameter point normalizes
// against.
type sweepState struct {
	jobs []*dag.Job
	cfg  sim.Config
	base *sim.Result
}

func (r *runEnv) runSweep() (*result.Artifact, error) {
	sw := r.spec.Sweep
	var m member
	if len(r.spec.Clusters) > 0 {
		members, err := r.resolveMembers()
		if err != nil {
			return nil, err
		}
		m = members[0]
	} else {
		grid := sw.Grid
		if grid == "" {
			grid = "DE"
		}
		members, err := r.gridMembers([]string{grid})
		if err != nil {
			return nil, err
		}
		m = members[0]
	}
	trials := r.spec.Trials
	if trials <= 0 {
		trials = 5
	}
	if r.fast {
		trials = 1
	}
	n := r.spec.Workload.Jobs
	if n <= 0 {
		n = 50
		// Fast mode shrinks the default batch only; an explicit size is
		// honored (the built-in sweep artifacts never set one, so their
		// goldens see the historical 25-job fast batches).
		if r.fast {
			n = 25
		}
	}
	baseline, err := compilePolicy(*r.spec.Baseline)
	if err != nil {
		return nil, err
	}
	values := sw.Values
	pts := make([]sweepPoint, len(values))
	aware := make([]policyFactory, len(values))
	for i, v := range values {
		pts[i].param = v
		f, err := compilePolicy(bindSweepValue(sw.Policy, v))
		if err != nil {
			return nil, err
		}
		aware[i] = f
	}

	// One cell per trial: the baseline and every parameter point run as a
	// common-prefix group over the trial's shared (cfg, jobs, seed) —
	// neighboring sweep values share almost every scheduling decision, so
	// sim.RunGroup simulates the shared prefix once and forks per value.
	// The fold walks trials in order so the sample order matches a serial
	// sweep exactly.
	states := make([]sweepState, trials)
	runs := make([][]*sim.Result, trials)
	r.pool.ForEach(trials, func(t int) {
		cellSeed := seed.Derive(r.seed, m.key, int64(t))
		jobs := r.batch(n, cellSeed)
		tr := trialWindow(m.trace, 60+n, cellSeed)
		cfg := r.baseConfig(tr, cellSeed, m)
		scheds := make([]sim.Scheduler, 0, len(values)+1)
		scheds = append(scheds, baseline(cellSeed))
		for i := range values {
			scheds = append(scheds, aware[i](cellSeed))
		}
		group := mustRunGroup(cfg, jobs, scheds)
		states[t] = sweepState{jobs: jobs, cfg: cfg, base: group[0]}
		runs[t] = group[1:]
	})
	for t := 0; t < trials; t++ {
		for i := range values {
			res := runs[t][i]
			pts[i].carbonPct = append(pts[i].carbonPct, -metrics.PercentChange(res.CarbonGrams, states[t].base.CarbonGrams))
			pts[i].ects = append(pts[i].ects, res.ECT/states[t].base.ECT)
		}
	}
	label := sw.Label
	if label == "" {
		label = sw.Policy.Kind
	}
	a := result.New().Add(sweepTable(label, pts))
	r.appendNotes(a)
	return a, nil
}

// ---------------------------------------------------------------------------
// Federation family: routing policies (and optional single-grid pins)
// over one or more multi-cluster topologies.

// fedVariant is one table row: a label, an optional pin (every member
// replays that one member's window), a router, and the member
// scheduler.
type fedVariant struct {
	name   string
	pin    int // -1: route across the topology
	router func() fed.Router
	sched  policyFactory
}

// fedAgg averages federation summaries across trials.
type fedAgg struct {
	sumCarbon, sumMakespan, sumJCT float64
	n                              int
}

func (a *fedAgg) add(s metrics.FederationSummary) {
	a.sumCarbon += s.CarbonGrams
	a.sumMakespan += s.Makespan
	a.sumJCT += s.AvgJCT
	a.n++
}

func (a *fedAgg) summary() metrics.FederationSummary {
	n := float64(a.n)
	return metrics.FederationSummary{
		CarbonGrams: a.sumCarbon / n,
		Makespan:    a.sumMakespan / n,
		AvgJCT:      a.sumJCT / n,
	}
}

func (r *runEnv) runFederation() (*result.Artifact, error) {
	f := r.spec.Federation
	// Resolve the topologies: explicit grid-name sets, or the spec's
	// clusters/grids as a single topology.
	var topologies [][]member
	if len(f.Topologies) > 0 {
		for _, topo := range f.Topologies {
			ms, err := r.gridMembers(topo)
			if err != nil {
				return nil, err
			}
			topologies = append(topologies, ms)
		}
	} else {
		ms, err := r.resolveMembers()
		if err != nil {
			return nil, err
		}
		topologies = [][]member{ms}
	}

	trials := r.spec.Trials
	if trials <= 0 {
		trials = 3
	}
	njobs := r.spec.Workload.Jobs
	if njobs <= 0 {
		njobs = 40
	}
	if r.fast {
		trials = 1
		if r.spec.Workload.Jobs <= 0 {
			njobs = 16
		}
	}
	window := 60 + njobs // hours: generous for the batch

	memberPolicy := PolicySpec{Kind: "fifo"}
	if f.Member != nil {
		memberPolicy = *f.Member
	}
	defaultSched, err := compilePolicy(memberPolicy)
	if err != nil {
		return nil, err
	}
	variantsFor := func(members []member) ([]fedVariant, error) {
		var vs []fedVariant
		if f.SinglePins {
			for mi, m := range members {
				rr, err := compileRouter(RouterSpec{Kind: "round-robin"})
				if err != nil {
					return nil, err
				}
				vs = append(vs, fedVariant{name: "single:" + m.key, pin: mi, router: rr, sched: defaultSched})
			}
		}
		for _, rs := range f.Routers {
			router, err := compileRouter(rs)
			if err != nil {
				return nil, err
			}
			sched := defaultSched
			if rs.Policy != nil {
				sched, err = compilePolicy(*rs.Policy)
				if err != nil {
					return nil, err
				}
			}
			vs = append(vs, fedVariant{name: routerName(rs), pin: -1, router: router, sched: sched})
		}
		return vs, nil
	}

	// Cells are (topology, trial); each cell runs every variant over
	// the same batch and windows.
	type cellID struct{ topo, trial int }
	var cells []cellID
	for ti := range topologies {
		for t := 0; t < trials; t++ {
			cells = append(cells, cellID{ti, t})
		}
	}
	topoKey := func(members []member) string {
		keys := make([]string, len(members))
		for i, m := range members {
			keys[i] = m.key
		}
		return strings.Join(keys, "+")
	}

	results := make([]map[string]metrics.FederationSummary, len(cells))
	r.pool.ForEach(len(cells), func(i int) {
		c := cells[i]
		members := topologies[c.topo]
		cellSeed := seed.Derive(r.seed, topoKey(members), int64(c.trial))
		jobs := r.batch(njobs, cellSeed)
		windows := make([]*carbon.Trace, len(members))
		for mi, m := range members {
			windows[mi] = trialWindow(m.trace, window, seed.Derive(cellSeed, m.key))
		}
		variants, err := variantsFor(members)
		if err != nil {
			panic(simError{err})
		}
		out := make(map[string]metrics.FederationSummary)
		for _, v := range variants {
			clusters := make([]fed.ClusterSpec, len(members))
			for ci := range members {
				src := ci
				if v.pin >= 0 {
					src = v.pin
				}
				m := members[src]
				tr := windows[src]
				clusters[ci] = fed.ClusterSpec{
					Name:         fmt.Sprintf("%s-%d", m.key, ci),
					Grid:         m.grid,
					Trace:        tr,
					Config:       r.baseConfig(tr, cellSeed, m),
					NewScheduler: v.sched,
				}
			}
			fedRun := &fed.Federation{Clusters: clusters, Router: v.router(), Seed: cellSeed}
			res, err := fedRun.Run(jobs)
			if err != nil {
				panic(simError{fmt.Errorf("scenario: federation %s: %w", v.name, err)})
			}
			out[v.name] = res.Summary
		}
		results[i] = out
	})

	price := r.pricing()
	cols := metrics.FederationColumns()
	if price != nil {
		cols = append(cols, result.Column{
			Name: "cost_usd", Kind: result.KindFloat, Prec: 4,
			Header: "cost (USD)", HeaderFormat: " %12s", Format: " %12.4f",
		})
	}

	// Fold per topology in cell order; aggregation is a serial mean, so
	// the artifact is identical at any parallelism.
	art := result.New()
	for ti, members := range topologies {
		agg := map[string]*fedAgg{}
		for i, c := range cells {
			if c.topo != ti {
				continue
			}
			//det:unordered per-name fold into independent aggregators; each key's mean is unaffected by visit order
			for name, s := range results[i] {
				a := agg[name]
				if a == nil {
					a = &fedAgg{}
					agg[name] = a
				}
				a.add(s)
			}
		}
		variants, err := variantsFor(members)
		if err != nil {
			return nil, err
		}
		baselineName := routerName(f.Routers[0])
		base := agg[baselineName].summary()
		memberK := r.baseConfig(nil, 0, members[0]).NumExecutors
		art.Textf("scenario %s — %d clusters × %d executors, %d jobs, avg of %d trial(s):\n",
			topoKey(members), len(members), memberK, njobs, trials)
		t := &result.Table{Name: topoKey(members), Columns: cols}
		for _, v := range variants {
			s := agg[v.name].summary()
			row := s.Row(v.name, base)
			if price != nil {
				row = append(row, result.Float(price.Cost(s.CarbonGrams)))
			}
			t.Rows = append(t.Rows, row)
		}
		art.Add(t)
		if ti < len(topologies)-1 {
			art.Textf("\n")
		}
	}
	r.appendNotes(art)
	return art, nil
}

package scenario

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
	"pcaps/internal/sched"
)

func renderText(t *testing.T, p *Program, env Env) string {
	t.Helper()
	art, err := p.Run(env)
	if err != nil {
		t.Fatal(err)
	}
	return art.Body()
}

// TestRunSerialParallelDeterminism: a compiled scenario is a pure
// function of (spec, fast) — the worker pool must not be observable.
func TestRunSerialParallelDeterminism(t *testing.T) {
	specs := []Spec{
		{
			Name: "cmp", Grids: []string{"DE", "ON"}, Trials: 2,
			Workload: WorkloadSpec{Mix: "tpch", Jobs: 8},
			Baseline: &PolicySpec{Kind: "fifo"},
			Policies: []PolicySpec{{Name: "CAP", Kind: "cap", B: sched.Int(10)}, {Name: "PCAPS", Kind: "pcaps"}},
		},
		{
			Name: "swp", Grids: nil, Workload: WorkloadSpec{Mix: "tpch", Jobs: 8},
			Baseline: &PolicySpec{Kind: "fifo"},
			Sweep:    &SweepSpec{Values: []float64{0.3, 0.8}, Policy: PolicySpec{Kind: "pcaps"}},
		},
		{
			Name: "fed", Workload: WorkloadSpec{Mix: "tpch", Jobs: 8},
			Federation: &FederationSpec{
				Topologies: [][]string{{"DE", "ON"}},
				SinglePins: true,
				Routers:    []RouterSpec{{Kind: "round-robin"}, {Kind: "forecast-aware"}},
			},
		},
	}
	for _, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := Compile(spec)
			if err != nil {
				t.Fatal(err)
			}
			serial := renderText(t, prog, Env{Fast: true})
			parallel := renderText(t, prog, Env{Fast: true, Pool: NewPool(4)})
			if serial != parallel {
				t.Fatalf("serial and parallel bodies differ:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
			}
		})
	}
}

// TestCSVSource: a cluster can replay a trace from disk; the run
// consumes exactly the stored samples.
func TestCSVSource(t *testing.T) {
	spec, err := carbon.GridByName("ON")
	if err != nil {
		t.Fatal(err)
	}
	tr := carbon.Synthesize(spec, 500, 60, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "on.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s := Spec{
		Name:     "csv-replay",
		Clusters: []ClusterSpec{{Name: "replay", Grid: "ON", Source: "csv", CSV: path}},
		Workload: WorkloadSpec{Mix: "tpch", Jobs: 6},
		Baseline: &PolicySpec{Kind: "fifo"},
		Policies: []PolicySpec{{Name: "CAP", Kind: "cap", B: sched.Int(10)}},
	}
	prog, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	in, err := prog.Inputs(Env{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Clusters) != 1 || !reflect.DeepEqual(in.Clusters[0].Trace.Values, tr.Values) {
		t.Fatalf("csv source did not resolve to the stored trace")
	}
	body := renderText(t, prog, Env{Fast: true})
	if !strings.Contains(body, "replay") {
		t.Fatalf("cluster label missing from artifact:\n%s", body)
	}
}

// TestCarbonAPISource: a cluster can fetch its trace from a live
// carbonapi server — the scenario layer rides the same /v1/trace
// endpoint the prototype's daemon polls.
func TestCarbonAPISource(t *testing.T) {
	traces := carbon.SynthesizeAll(400, 60, 42)
	srv := httptest.NewServer(carbonapi.NewServer(traces))
	defer srv.Close()

	s := Spec{
		Name: "live",
		Clusters: []ClusterSpec{
			{Name: "remote-de", Grid: "DE", Source: "carbonapi", URL: srv.URL},
		},
		Workload: WorkloadSpec{Mix: "tpch", Jobs: 6},
		Baseline: &PolicySpec{Kind: "fifo"},
		Policies: []PolicySpec{{Name: "PCAPS", Kind: "pcaps"}},
		Hours:    400,
	}
	prog, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	in, err := prog.Inputs(Env{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Clusters[0].Trace.Values, traces["DE"].Values) {
		t.Fatal("carbonapi source did not fetch the served trace")
	}
	if body := renderText(t, prog, Env{Fast: true}); !strings.Contains(body, "remote-de") {
		t.Fatalf("cluster label missing from artifact:\n%s", body)
	}
}

// TestCarbonPriceColumn: the cost table appears exactly when a price is
// set — unpriced scenarios (and therefore the built-in golden
// artifacts) are unchanged.
func TestCarbonPriceColumn(t *testing.T) {
	base := Spec{
		Name: "p", Grids: []string{"DE"},
		Workload: WorkloadSpec{Mix: "tpch", Jobs: 6},
		Baseline: &PolicySpec{Kind: "fifo"},
		Policies: []PolicySpec{{Name: "CAP", Kind: "cap", B: sched.Int(10)}},
	}
	unpriced, err := Compile(base)
	if err != nil {
		t.Fatal(err)
	}
	if body := renderText(t, unpriced, Env{Fast: true}); strings.Contains(body, "cost") {
		t.Fatalf("unpriced scenario grew a cost table:\n%s", body)
	}

	base.CarbonPriceUSDPerTonne = 100
	priced, err := Compile(base)
	if err != nil {
		t.Fatal(err)
	}
	body := renderText(t, priced, Env{Fast: true})
	if !strings.Contains(body, "carbon cost (USD @ $100/tCO2eq):") {
		t.Fatalf("priced scenario missing cost table:\n%s", body)
	}
	// The baseline row appears in the cost table (absolute dollars make
	// it meaningful there, unlike the relative tables).
	if !strings.Contains(body, "fifo") {
		t.Fatalf("cost table missing baseline row:\n%s", body)
	}
}

// TestFederationPriceColumn: federation tables gain the cost column
// when priced.
func TestFederationPriceColumn(t *testing.T) {
	s := Spec{
		Name:                   "fp",
		Workload:               WorkloadSpec{Mix: "tpch", Jobs: 6},
		CarbonPriceUSDPerTonne: 25,
		Federation: &FederationSpec{
			Topologies: [][]string{{"DE", "ON"}},
			Routers:    []RouterSpec{{Kind: "round-robin"}, {Kind: "lowest-intensity"}},
		},
	}
	prog, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if body := renderText(t, prog, Env{Fast: true}); !strings.Contains(body, "cost (USD)") {
		t.Fatalf("priced federation missing cost column:\n%s", body)
	}
}

// TestMetricSelection: Metrics restricts the comparison artifact to the
// named tables.
func TestMetricSelection(t *testing.T) {
	s := Spec{
		Name: "m", Grids: []string{"DE"},
		Workload: WorkloadSpec{Mix: "tpch", Jobs: 6},
		Baseline: &PolicySpec{Kind: "fifo"},
		Policies: []PolicySpec{{Name: "CAP", Kind: "cap", B: sched.Int(10)}},
		Metrics:  []string{MetricRelativeECT},
	}
	prog, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	body := renderText(t, prog, Env{Fast: true})
	if strings.Contains(body, "carbon reduction") {
		t.Fatalf("deselected metric rendered:\n%s", body)
	}
	if !strings.Contains(body, "relative ECT:") {
		t.Fatalf("selected metric missing:\n%s", body)
	}
}

// TestRunReportsSourceFailure: a spec that validates but cannot resolve
// its carbon source at run time (the CSV vanished) surfaces an error,
// not a panic — and does so before any simulation starts.
func TestRunReportsSourceFailure(t *testing.T) {
	s := Spec{
		Name:     "gone",
		Clusters: []ClusterSpec{{Name: "x", Grid: "DE", Source: "csv", CSV: filepath.Join(t.TempDir(), "missing.csv")}},
		Workload: WorkloadSpec{Mix: "tpch", Jobs: 4},
		Baseline: &PolicySpec{Kind: "fifo"},
		Policies: []PolicySpec{{Name: "CAP", Kind: "cap", B: sched.Int(10)}},
	}
	prog, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(Env{Fast: true}); err == nil || !strings.Contains(err.Error(), "missing.csv") {
		t.Fatalf("missing trace file not reported: %v", err)
	}
}

// TestInputsResolvesFederationTopologies: Inputs dedupes the grids of
// every topology and reports the resolved batch shape.
func TestInputsResolvesFederationTopologies(t *testing.T) {
	s := Spec{
		Name:     "fi",
		Workload: WorkloadSpec{Mix: "both"},
		Federation: &FederationSpec{
			Topologies: [][]string{{"DE", "ON"}, {"ON", "ZA"}},
			Routers:    []RouterSpec{{Kind: "round-robin"}},
		},
	}
	prog, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	in, err := prog.Inputs(Env{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, c := range in.Clusters {
		names = append(names, c.Name)
	}
	if !reflect.DeepEqual(names, []string{"DE", "ON", "ZA"}) {
		t.Fatalf("resolved clusters = %v", names)
	}
	if in.JobsN != 16 || in.Mix != "both" || in.Seed != 42 {
		t.Fatalf("resolved batch = %+v", in)
	}
	if len(in.Jobs) != 16 {
		t.Fatalf("template batch has %d jobs", len(in.Jobs))
	}
}

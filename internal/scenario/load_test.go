package scenario

import (
	"reflect"
	"strings"
	"testing"

	"pcaps/internal/sched"
)

const yamlSpec = `
# comments are stripped, including trailing ones
name: demo          # trailing comment
title: "a: quoted title"
seed: 9
grids: [DE, CAISO]  # inline flow list
workload:
  mix: tpch
  jobs: 10
trials: 2
baseline:
  kind: fifo
policies:
  - name: PCAPS
    kind: pcaps
    gamma: 0.75
    inner:
      kind: decima
  - kind: cap
    b: 10
notes:
  - "line one\n"
`

func TestParseYAMLSpec(t *testing.T) {
	got, err := Parse([]byte(yamlSpec))
	if err != nil {
		t.Fatal(err)
	}
	want := &Spec{
		Name:     "demo",
		Title:    "a: quoted title",
		Seed:     9,
		Grids:    []string{"DE", "CAISO"},
		Workload: WorkloadSpec{Mix: "tpch", Jobs: 10},
		Trials:   2,
		Baseline: &PolicySpec{Kind: "fifo"},
		Policies: []PolicySpec{
			{Name: "PCAPS", Kind: "pcaps", Gamma: sched.Float(0.75), Inner: &PolicySpec{Kind: "decima"}},
			{Kind: "cap", B: sched.Int(10)},
		},
		Notes: []string{"line one\n"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed spec = %+v, want %+v", got, want)
	}
}

// TestParseYAMLEquivalentToJSON: the same scenario in either dialect
// decodes to the same Spec (the YAML tree is funneled through the JSON
// schema).
func TestParseYAMLEquivalentToJSON(t *testing.T) {
	jsonSpec := `{
		"name": "demo", "title": "a: quoted title", "seed": 9,
		"grids": ["DE", "CAISO"],
		"workload": {"mix": "tpch", "jobs": 10},
		"trials": 2,
		"baseline": {"kind": "fifo"},
		"policies": [
			{"name": "PCAPS", "kind": "pcaps", "gamma": 0.75, "inner": {"kind": "decima"}},
			{"kind": "cap", "b": 10}
		],
		"notes": ["line one\n"]
	}`
	fromYAML, err := Parse([]byte(yamlSpec))
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Parse([]byte(jsonSpec))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromYAML, fromJSON) {
		t.Fatalf("YAML and JSON decode diverged:\n%+v\n%+v", fromYAML, fromJSON)
	}
}

// TestParseRejectsUnknownFields: a typo'd knob must fail loudly, in
// both dialects.
func TestParseRejectsUnknownFields(t *testing.T) {
	for _, doc := range []string{
		`{"name": "x", "workload": {"mix": "tpch"}, "sede": 7}`,
		"name: x\nworkload:\n  mix: tpch\nsede: 7\n",
	} {
		if _, err := Parse([]byte(doc)); err == nil || !strings.Contains(err.Error(), "sede") {
			t.Fatalf("unknown field accepted or unnamed: %v", err)
		}
	}
}

// TestYAMLFlowListQuotedCommas: a comma inside a quoted scalar is
// content, not a separator; an unterminated quote is rejected, not
// guessed at.
func TestYAMLFlowListQuotedCommas(t *testing.T) {
	tree, err := yamlToTree([]byte(`vals: ["a, b", 'c, d', plain]` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	got := tree.(map[string]any)["vals"]
	want := []any{"a, b", "c, d", "plain"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("flow list = %#v, want %#v", got, want)
	}
	if _, err := yamlToTree([]byte(`vals: ["a, b]` + "\n")); err == nil {
		t.Fatal("unterminated quoted scalar accepted")
	}
}

func TestParseRejectsMalformedYAML(t *testing.T) {
	cases := map[string]string{
		"tabs":              "name: x\n\tworkload: 1\n",
		"flow map":          "name: x\nworkload: {mix: tpch}\n",
		"bare scalar":       "just words\n",
		"unterminated flow": "name: x\ngrids: [DE, CAISO\n",
		"empty":             "   \n",
	}
	for name, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Fatalf("%s: malformed YAML accepted", name)
		}
	}
}

func TestParseRejectsTrailingDocument(t *testing.T) {
	doc := `{"name": "x", "workload": {"mix": "tpch"}, "baseline": {"kind": "fifo"}, "policies": [{"kind": "cap"}]}{"name": "y"}`
	if _, err := Parse([]byte(doc)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing document accepted: %v", err)
	}
}

// TestLoadExampleGallery: every checked-in example spec must parse and
// compile — the gallery is documentation that cannot drift.
func TestLoadExampleGallery(t *testing.T) {
	for _, path := range []string{
		"../../examples/scenarios/minimal.json",
		"../../examples/scenarios/gamma-sweep.json",
		"../../examples/scenarios/federation.yaml",
		"../../examples/scenarios/priced.json",
		"../../examples/scenarios/burst-overload.yaml",
		"../../examples/scenarios/hyperscale.yaml",
	} {
		spec, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, err := Compile(*spec); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
}

package scenario

import (
	"strings"
	"testing"

	"pcaps/internal/sched"
)

// validComparison returns a minimal passing comparison spec tests
// mutate into invalid shapes.
func validComparison() Spec {
	return Spec{
		Name:     "t",
		Grids:    []string{"DE"},
		Workload: WorkloadSpec{Mix: "tpch", Jobs: 8},
		Baseline: &PolicySpec{Kind: "fifo"},
		Policies: []PolicySpec{{Kind: "pcaps"}},
	}
}

// TestValidateRejects is the table-driven reject suite: every invalid
// spec must fail validation with an error naming the offending field,
// mirroring experiments.Options.validate's style — a typo surfaces as a
// clear message before any simulation starts, never as a nil-trace
// panic inside a worker.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub []string // all must appear in the error text
	}{
		{"missing name", func(s *Spec) { s.Name = "" }, []string{"name", "missing scenario name"}},
		{"unknown grid", func(s *Spec) { s.Grids = []string{"BOGUS"} }, []string{`grids[0]`, `unknown grid "BOGUS"`}},
		{"duplicate grid", func(s *Spec) { s.Grids = []string{"DE", "DE"} }, []string{`grids[1]`, `duplicate grid "DE"`}},
		{"empty workload", func(s *Spec) { s.Workload.Mix = "" }, []string{"workload.mix", "empty workload"}},
		{"unknown mix", func(s *Spec) { s.Workload.Mix = "spark" }, []string{"workload.mix", `unknown workload mix "spark"`}},
		{"negative jobs", func(s *Spec) { s.Workload.Jobs = -3 }, []string{"workload.jobs", "negative batch size"}},
		{"negative seed", func(s *Spec) { s.Seed = -1 }, []string{"seed", "negative seed"}},
		{"negative horizon", func(s *Spec) { s.Hours = -24 }, []string{"hours", "negative trace horizon"}},
		{"negative trials", func(s *Spec) { s.Trials = -1 }, []string{"trials", "negative trial count"}},
		{"grids and clusters", func(s *Spec) {
			s.Clusters = []ClusterSpec{{Grid: "DE"}}
		}, []string{"clusters", "mutually exclusive"}},
		{"duplicate cluster names", func(s *Spec) {
			s.Grids = nil
			s.Clusters = []ClusterSpec{
				{Name: "eu", Grid: "DE"},
				{Name: "eu", Grid: "CAISO"},
			}
		}, []string{"clusters[1].name", `duplicate cluster name "eu"`}},
		{"cluster grid unknown for synth", func(s *Spec) {
			s.Grids = nil
			s.Clusters = []ClusterSpec{{Grid: "NOPE"}}
		}, []string{"clusters[0].grid", `unknown grid "NOPE"`}},
		{"csv source without path", func(s *Spec) {
			s.Grids = nil
			s.Clusters = []ClusterSpec{{Grid: "DE", Source: "csv"}}
		}, []string{"clusters[0].csv", "file path"}},
		{"carbonapi source without url", func(s *Spec) {
			s.Grids = nil
			s.Clusters = []ClusterSpec{{Grid: "DE", Source: "carbonapi"}}
		}, []string{"clusters[0].url", "base URL"}},
		{"unknown source", func(s *Spec) {
			s.Grids = nil
			s.Clusters = []ClusterSpec{{Grid: "DE", Source: "psychic"}}
		}, []string{"clusters[0].source", `unknown carbon source "psychic"`}},
		{"missing baseline", func(s *Spec) { s.Baseline = nil }, []string{"baseline", "need a baseline"}},
		{"no policies", func(s *Spec) { s.Policies = nil }, []string{"policies", "at least one policy"}},
		{"unknown policy kind", func(s *Spec) {
			s.Policies = []PolicySpec{{Kind: "lrucache"}}
		}, []string{"policies[0].kind", `unknown policy kind "lrucache"`}},
		{"duplicate policy name", func(s *Spec) {
			s.Policies = []PolicySpec{{Name: "A", Kind: "fifo"}, {Name: "A", Kind: "decima"}}
		}, []string{"policies[1].name", `duplicate policy name "A"`}},
		{"pcaps wrapping non-probabilistic", func(s *Spec) {
			s.Policies = []PolicySpec{{Kind: "pcaps", Inner: &PolicySpec{Kind: "fifo"}}}
		}, []string{"policies[0].inner.kind", "probabilistic"}},
		{"inner on plain policy", func(s *Spec) {
			s.Policies = []PolicySpec{{Kind: "fifo", Inner: &PolicySpec{Kind: "fifo"}}}
		}, []string{"policies[0].inner", "takes no inner policy"}},
		{"gamma out of range", func(s *Spec) {
			s.Policies = []PolicySpec{{Kind: "pcaps", Gamma: sched.Float(1.5)}}
		}, []string{"policies[0].gamma", "outside"}},
		// Explicit zeros are errors, never a silent rebind to the default
		// (the pointer params exist to make that distinction).
		{"explicit zero gamma", func(s *Spec) {
			s.Policies = []PolicySpec{{Kind: "pcaps", Gamma: sched.Float(0)}}
		}, []string{"policies[0].gamma", "gamma 0 outside (0, 1]"}},
		{"explicit zero b", func(s *Spec) {
			s.Policies = []PolicySpec{{Kind: "cap", B: sched.Int(0)}}
		}, []string{"policies[0].b", "CAP quota 0 below 1"}},
		{"unknown metric", func(s *Spec) { s.Metrics = []string{"qps"} }, []string{"metrics[0]", `unknown metric "qps"`}},
		{"cost metric without price", func(s *Spec) {
			s.Metrics = []string{MetricCostUSD}
		}, []string{"metrics[0]", "carbon_price_usd_per_tonne"}},
		{"negative price", func(s *Spec) { s.CarbonPriceUSDPerTonne = -5 }, []string{"carbon_price_usd_per_tonne", "negative carbon price"}},
		{"sweep without values", func(s *Spec) {
			s.Grids, s.Policies = nil, nil
			s.Sweep = &SweepSpec{Policy: PolicySpec{Kind: "cap"}}
		}, []string{"sweep.values", "empty parameter sweep"}},
		{"sweep of unsweepable kind", func(s *Spec) {
			s.Grids, s.Policies = nil, nil
			s.Sweep = &SweepSpec{Values: []float64{1}, Policy: PolicySpec{Kind: "fifo"}}
		}, []string{"sweep.policy.kind", "no sweepable parameter"}},
		{"sweep alongside grids", func(s *Spec) {
			s.Policies = nil
			s.Sweep = &SweepSpec{Values: []float64{2}, Policy: PolicySpec{Kind: "cap"}}
		}, []string{"grids", "sweep.grid"}},
		{"sweep gamma value out of range", func(s *Spec) {
			s.Grids, s.Policies = nil, nil
			s.Sweep = &SweepSpec{Values: []float64{0.5, 2.5}, Policy: PolicySpec{Kind: "pcaps"}}
		}, []string{"sweep.values[1]", "outside (0, 1]"}},
		{"sweep zero value would run the default", func(s *Spec) {
			s.Grids, s.Policies = nil, nil
			s.Sweep = &SweepSpec{Values: []float64{0}, Policy: PolicySpec{Kind: "cap"}}
		}, []string{"sweep.values[0]", "below 1"}},
		{"policy name collides with baseline", func(s *Spec) {
			s.Policies = []PolicySpec{{Name: "fifo", Kind: "cap"}}
		}, []string{"policies[0].name", "collides with the baseline"}},
		{"router without clusters", func(s *Spec) {
			s.Grids = nil
			s.Baseline = nil
			s.Policies = nil
			s.Federation = &FederationSpec{Routers: []RouterSpec{{Kind: "round-robin"}}}
		}, []string{"federation.routers", "router without clusters"}},
		{"federation without routers", func(s *Spec) {
			s.Baseline = nil
			s.Policies = nil
			s.Federation = &FederationSpec{}
		}, []string{"federation.routers", "at least one router"}},
		{"unknown router kind", func(s *Spec) {
			s.Baseline = nil
			s.Policies = nil
			s.Federation = &FederationSpec{Routers: []RouterSpec{{Kind: "sticky"}}}
		}, []string{"federation.routers[0].kind", `unknown router kind "sticky"`}},
		{"empty topology", func(s *Spec) {
			s.Grids, s.Baseline, s.Policies = nil, nil, nil
			s.Federation = &FederationSpec{
				Topologies: [][]string{{}},
				Routers:    []RouterSpec{{Kind: "round-robin"}},
			}
		}, []string{"federation.topologies[0]", "empty topology"}},
		{"topologies alongside grids", func(s *Spec) {
			s.Baseline, s.Policies = nil, nil
			s.Federation = &FederationSpec{
				Topologies: [][]string{{"ON"}},
				Routers:    []RouterSpec{{Kind: "round-robin"}},
			}
		}, []string{"federation.topologies", "mutually exclusive"}},
		{"reserved router name", func(s *Spec) {
			s.Baseline, s.Policies = nil, nil
			s.Federation = &FederationSpec{
				SinglePins: true,
				Routers:    []RouterSpec{{Name: "single:DE", Kind: "lowest-intensity"}},
			}
		}, []string{"federation.routers[0].name", "reserved"}},
		{"gamma on non-pcaps policy", func(s *Spec) {
			s.Policies = []PolicySpec{{Kind: "cap", Gamma: sched.Float(0.9)}}
		}, []string{"policies[0].gamma", "takes no gamma"}},
		{"b on non-cap policy", func(s *Spec) {
			s.Policies = []PolicySpec{{Kind: "pcaps", B: sched.Int(5)}}
		}, []string{"policies[0].b", "takes no CAP quota"}},
		{"knobs on pcaps inner", func(s *Spec) {
			s.Policies = []PolicySpec{{Kind: "pcaps", Inner: &PolicySpec{Kind: "decima", Gamma: sched.Float(0.9)}}}
		}, []string{"policies[0].inner", "only a kind"}},
		{"duplicate metric", func(s *Spec) {
			s.Metrics = []string{MetricRelativeECT, MetricRelativeECT}
		}, []string{"metrics[1]", "duplicate metric"}},
		{"sweep and federation", func(s *Spec) {
			s.Sweep = &SweepSpec{Values: []float64{1}, Policy: PolicySpec{Kind: "cap"}}
			s.Federation = &FederationSpec{Routers: []RouterSpec{{Kind: "round-robin"}}}
		}, []string{"sweep", "mutually exclusive"}},
		// An explicit zero interarrival is an error, never a silent rebind
		// to the 30-second default (the field is a pointer so the two are
		// distinguishable).
		{"explicit zero interarrival", func(s *Spec) {
			zero := 0.0
			s.Workload.MeanInterarrivalSec = &zero
		}, []string{"workload.mean_interarrival_sec", "not positive"}},
		{"negative interarrival", func(s *Spec) {
			neg := -3.0
			s.Workload.MeanInterarrivalSec = &neg
		}, []string{"workload.mean_interarrival_sec", "not positive"}},
		{"interarrival alongside arrivals", func(s *Spec) {
			m := 30.0
			s.Workload.MeanInterarrivalSec = &m
			s.Workload.Arrivals = &ArrivalsSpec{Kind: "constant", RPS: 1}
		}, []string{"workload.mean_interarrival_sec", "mutually exclusive"}},
		{"unknown arrival kind", func(s *Spec) {
			s.Workload.Arrivals = &ArrivalsSpec{Kind: "poison"}
		}, []string{"workload.arrivals.kind", `unknown arrival kind "poison"`}},
		{"constant without rps", func(s *Spec) {
			s.Workload.Arrivals = &ArrivalsSpec{Kind: "constant"}
		}, []string{"workload.arrivals.rps", "positive rate"}},
		{"burst without burst_sec", func(s *Spec) {
			s.Workload.Arrivals = &ArrivalsSpec{Kind: "burst", RPS: 1, PeakRPS: 4, PeriodSec: 100}
		}, []string{"workload.arrivals.burst_sec", "positive burst duration"}},
		{"peak below base", func(s *Spec) {
			s.Workload.Arrivals = &ArrivalsSpec{Kind: "ramp", RPS: 4, PeakRPS: 1, PeriodSec: 100}
		}, []string{"workload.arrivals.peak_rps", "below base rate"}},
		{"knob on wrong arrival kind", func(s *Spec) {
			s.Workload.Arrivals = &ArrivalsSpec{Kind: "poisson", RPS: 2}
		}, []string{"workload.arrivals.rps", "does not apply"}},
		{"csv arrival without path", func(s *Spec) {
			s.Workload.Arrivals = &ArrivalsSpec{Kind: "csv"}
		}, []string{"workload.arrivals.csv", "schedule file path"}},
		{"csv path on generated kind", func(s *Spec) {
			s.Workload.Arrivals = &ArrivalsSpec{Kind: "diurnal", RPS: 1, PeakRPS: 2, PeriodSec: 60, CSV: "x.csv"}
		}, []string{"workload.arrivals.csv", "does not apply"}},
		{"explicit zero mean_sec", func(s *Spec) {
			zero := 0.0
			s.Workload.Arrivals = &ArrivalsSpec{Kind: "poisson", MeanSec: &zero}
		}, []string{"workload.arrivals.mean_sec", "not positive"}},
		{"mix alongside classes", func(s *Spec) {
			s.Workload.Classes = []ClassSpec{{Name: "a", Mix: "tpch", Weight: 1}}
		}, []string{"workload.mix", "mutually exclusive"}},
		{"class without name", func(s *Spec) {
			s.Workload.Mix = ""
			s.Workload.Classes = []ClassSpec{{Mix: "tpch", Weight: 1}}
		}, []string{"workload.classes[0].name", "missing class name"}},
		{"duplicate class name", func(s *Spec) {
			s.Workload.Mix = ""
			s.Workload.Classes = []ClassSpec{
				{Name: "a", Mix: "tpch", Weight: 1},
				{Name: "a", Mix: "alibaba", Weight: 1},
			}
		}, []string{"workload.classes[1].name", `duplicate class name "a"`}},
		{"class with unknown mix", func(s *Spec) {
			s.Workload.Mix = ""
			s.Workload.Classes = []ClassSpec{{Name: "a", Mix: "spark", Weight: 1}}
		}, []string{"workload.classes[0].mix", `unknown workload mix "spark"`}},
		{"class with zero weight", func(s *Spec) {
			s.Workload.Mix = ""
			s.Workload.Classes = []ClassSpec{{Name: "a", Mix: "tpch"}}
		}, []string{"workload.classes[0].weight", "not positive"}},
		{"class with negative work scale", func(s *Spec) {
			s.Workload.Mix = ""
			s.Workload.Classes = []ClassSpec{{Name: "a", Mix: "tpch", Weight: 1, WorkScale: -2}}
		}, []string{"workload.classes[0].work_scale", "non-negative"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validComparison()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("invalid spec accepted: %+v", s)
			}
			for _, sub := range tc.wantSub {
				if !strings.Contains(err.Error(), sub) {
					t.Fatalf("error %q does not name %q", err, sub)
				}
			}
			if !strings.HasPrefix(err.Error(), "scenario: ") {
				t.Fatalf("error %q missing package prefix", err)
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	specs := map[string]Spec{
		"comparison": validComparison(),
		"sweep": {
			Name:     "s",
			Workload: WorkloadSpec{Mix: "tpch"},
			Baseline: &PolicySpec{Kind: "fifo"},
			Sweep:    &SweepSpec{Grid: "CAISO", Values: []float64{0.5, 1}, Policy: PolicySpec{Kind: "pcaps"}},
		},
		"federation": {
			Name:     "f",
			Workload: WorkloadSpec{Mix: "tpch"},
			Federation: &FederationSpec{
				Topologies: [][]string{{"DE", "ON"}},
				SinglePins: true,
				Routers:    []RouterSpec{{Kind: "round-robin"}, {Kind: "forecast-aware"}},
			},
		},
		"burst arrivals with classes": {
			Name: "b",
			Workload: WorkloadSpec{
				Jobs:     8,
				Arrivals: &ArrivalsSpec{Kind: "burst", RPS: 0.5, PeakRPS: 4, PeriodSec: 300, BurstSec: 30},
				Classes: []ClassSpec{
					{Name: "interactive", Mix: "tpch", Weight: 3, WorkScale: 0.5},
					{Name: "production", Mix: "alibaba", Weight: 1, WorkScale: 2},
				},
			},
			Baseline: &PolicySpec{Kind: "fifo"},
			Policies: []PolicySpec{{Kind: "pcaps"}},
		},
		"csv arrivals": {
			Name:     "csv",
			Workload: WorkloadSpec{Mix: "tpch", Jobs: 4, Arrivals: &ArrivalsSpec{Kind: "csv", CSV: "sched.csv"}},
			Baseline: &PolicySpec{Kind: "fifo"},
			Policies: []PolicySpec{{Kind: "pcaps"}},
		},
		"explicit clusters": {
			Name: "c",
			Clusters: []ClusterSpec{
				{Name: "eu", Grid: "DE"},
				{Name: "file", Grid: "X", Source: "csv", CSV: "x.csv"},
				{Name: "live", Grid: "DE", Source: "carbonapi", URL: "http://localhost:1"},
			},
			Workload: WorkloadSpec{Mix: "both", Jobs: 4},
			Baseline: &PolicySpec{Kind: "fifo"},
			Policies: []PolicySpec{{Kind: "cap", B: sched.Int(10)}},
		},
	}
	for name, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s spec rejected: %v", name, err)
		}
	}
}

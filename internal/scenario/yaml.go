package scenario

// A minimal YAML-subset reader, so scenario files can be written in the
// config dialect operators expect without adding a dependency (the
// toolchain is frozen; see ROADMAP). The subset covers what scenario
// specs need — block maps and lists nested by indentation, inline flow
// lists of scalars ("[DE, CAISO]"), quoted and plain scalars, and '#'
// comments — and nothing else: no anchors, no multi-document streams,
// no multi-line strings, no flow maps. Input outside the subset is
// rejected with a line-numbered error rather than guessed at. The
// parsed tree is handed to encoding/json, so the strict unknown-field
// checking of the JSON path applies to YAML specs too.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

type yamlLine struct {
	num    int // 1-based source line
	indent int
	text   string // content with indentation stripped
}

// yamlToTree parses the subset into nested map[string]any / []any /
// scalar values.
func yamlToTree(data []byte) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		text := stripYAMLComment(raw)
		trimmed := strings.TrimLeft(text, " ")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		if strings.ContainsRune(text[:len(text)-len(trimmed)], '\t') {
			return nil, fmt.Errorf("yaml line %d: tabs are not allowed in indentation", i+1)
		}
		lines = append(lines, yamlLine{num: i + 1, indent: len(text) - len(trimmed), text: strings.TrimRight(trimmed, " ")})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	v, next, err := parseYAMLBlock(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("yaml line %d: unexpected dedent past the document root", lines[next].num)
	}
	return v, nil
}

// stripYAMLComment removes a trailing '# ...' comment, respecting
// quoted strings. A quote opens a string only in value position (after
// start-of-line, ':', ',', '[', or a '- ' marker) — an apostrophe
// inside a plain scalar ("Europe's") is content, not a delimiter, so a
// comment after it is still stripped.
func stripYAMLComment(s string) string {
	var quote byte
	prev := byte(0) // last non-space byte outside quotes
	for i := 0; i < len(s); i++ {
		c := s[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch {
		case (c == '\'' || c == '"') &&
			(prev == 0 || prev == ':' || prev == ',' || prev == '[' || prev == '-'):
			quote = c
		case c == '#':
			// YAML requires a '#' starting a comment to be at the line
			// start or preceded by whitespace.
			if i == 0 || s[i-1] == ' ' {
				return s[:i]
			}
		}
		if c != ' ' {
			prev = c
		}
	}
	return s
}

// parseYAMLBlock parses one block (map or list) whose items sit at
// exactly `indent`, returning the value and the index of the first
// unconsumed line.
func parseYAMLBlock(lines []yamlLine, start, indent int) (any, int, error) {
	if strings.HasPrefix(lines[start].text, "- ") || lines[start].text == "-" {
		return parseYAMLList(lines, start, indent)
	}
	return parseYAMLMap(lines, start, indent)
}

func parseYAMLMap(lines []yamlLine, start, indent int) (any, int, error) {
	out := map[string]any{}
	i := start
	for i < len(lines) {
		ln := lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, 0, fmt.Errorf("yaml line %d: unexpected indentation", ln.num)
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, 0, fmt.Errorf("yaml line %d: list item inside a mapping", ln.num)
		}
		key, rest, err := splitYAMLKey(ln)
		if err != nil {
			return nil, 0, err
		}
		if _, dup := out[key]; dup {
			return nil, 0, fmt.Errorf("yaml line %d: duplicate key %q", ln.num, key)
		}
		if rest != "" {
			v, err := parseYAMLScalarOrFlow(rest, ln.num)
			if err != nil {
				return nil, 0, err
			}
			out[key] = v
			i++
			continue
		}
		// "key:" alone introduces a nested block — or an empty value
		// when the next line dedents.
		if i+1 < len(lines) && lines[i+1].indent > indent {
			v, next, err := parseYAMLBlock(lines, i+1, lines[i+1].indent)
			if err != nil {
				return nil, 0, err
			}
			out[key] = v
			i = next
			continue
		}
		out[key] = nil
		i++
	}
	return out, i, nil
}

func parseYAMLList(lines []yamlLine, start, indent int) (any, int, error) {
	out := []any{}
	i := start
	for i < len(lines) {
		ln := lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, 0, fmt.Errorf("yaml line %d: unexpected indentation", ln.num)
		}
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			return nil, 0, fmt.Errorf("yaml line %d: expected a '- ' list item", ln.num)
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		if rest == "" {
			// "-" alone: the item is the nested block that follows.
			if i+1 >= len(lines) || lines[i+1].indent <= indent {
				out = append(out, nil)
				i++
				continue
			}
			v, next, err := parseYAMLBlock(lines, i+1, lines[i+1].indent)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, v)
			i = next
			continue
		}
		if key, after, err := splitYAMLKey(yamlLine{num: ln.num, text: rest}); err == nil {
			// "- key: ..." starts an inline map item; its remaining keys
			// sit two columns deeper (aligned under the key).
			item := map[string]any{}
			if after != "" {
				v, err := parseYAMLScalarOrFlow(after, ln.num)
				if err != nil {
					return nil, 0, err
				}
				item[key] = v
			} else if i+1 < len(lines) && lines[i+1].indent > indent+2 {
				v, next, err := parseYAMLBlock(lines, i+1, lines[i+1].indent)
				if err != nil {
					return nil, 0, err
				}
				item[key] = v
				i = next - 1
			} else {
				item[key] = nil
			}
			if i+1 < len(lines) && lines[i+1].indent == indent+2 &&
				!strings.HasPrefix(lines[i+1].text, "- ") {
				more, next, err := parseYAMLMap(lines, i+1, indent+2)
				if err != nil {
					return nil, 0, err
				}
				// Merge in sorted-key order so which duplicate gets
				// reported does not depend on map iteration order.
				merged := more.(map[string]any)
				keys := make([]string, 0, len(merged))
				for k := range merged {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					if _, dup := item[k]; dup {
						return nil, 0, fmt.Errorf("yaml line %d: duplicate key %q", lines[i+1].num, k)
					}
					item[k] = merged[k]
				}
				i = next - 1
			}
			out = append(out, item)
			i++
			continue
		}
		v, err := parseYAMLScalarOrFlow(rest, ln.num)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, v)
		i++
	}
	return out, i, nil
}

// splitYAMLKey splits "key: value" / "key:" into key and the remaining
// value text, respecting quoted keys.
func splitYAMLKey(ln yamlLine) (key, rest string, err error) {
	text := ln.text
	if strings.HasPrefix(text, `"`) || strings.HasPrefix(text, `'`) {
		q := text[0]
		end := strings.IndexByte(text[1:], q)
		if end < 0 {
			return "", "", fmt.Errorf("yaml line %d: unterminated quoted key", ln.num)
		}
		key = text[1 : 1+end]
		text = text[2+end:]
		if !strings.HasPrefix(text, ":") {
			return "", "", fmt.Errorf("yaml line %d: expected ':' after quoted key", ln.num)
		}
		rest = strings.TrimLeft(text[1:], " ")
		return key, rest, nil
	}
	idx := strings.Index(text, ":")
	// A mapping key's ':' must end the line or be followed by a space;
	// "http://..." alone is a scalar, not a key.
	for idx >= 0 && idx+1 < len(text) && text[idx+1] != ' ' {
		next := strings.Index(text[idx+1:], ":")
		if next < 0 {
			idx = -1
			break
		}
		idx += 1 + next
	}
	if idx < 0 {
		return "", "", fmt.Errorf("yaml line %d: expected 'key: value'", ln.num)
	}
	key = strings.TrimSpace(text[:idx])
	if key == "" {
		return "", "", fmt.Errorf("yaml line %d: empty mapping key", ln.num)
	}
	return key, strings.TrimLeft(text[idx+1:], " "), nil
}

// parseYAMLScalarOrFlow parses a scalar or an inline flow list of
// scalars ("[DE, CAISO, ON]").
func parseYAMLScalarOrFlow(s string, num int) (any, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("yaml line %d: unterminated flow list", num)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		out := []any{}
		if inner == "" {
			return out, nil
		}
		parts, err := splitFlowItems(inner, num)
		if err != nil {
			return nil, err
		}
		for _, part := range parts {
			v, err := parseYAMLScalarOrFlow(part, num)
			if err != nil {
				return nil, err
			}
			if _, nested := v.([]any); nested {
				return nil, fmt.Errorf("yaml line %d: nested flow lists are outside the supported subset", num)
			}
			out = append(out, v)
		}
		return out, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("yaml line %d: flow mappings are outside the supported subset", num)
	}
	return parseYAMLScalar(s, num)
}

// splitFlowItems splits a flow list's interior on commas, respecting
// quoted scalars (a comma inside quotes is content, not a separator).
// Unterminated quotes are rejected rather than guessed at.
func splitFlowItems(s string, num int) ([]string, error) {
	var parts []string
	start := 0
	var quote byte
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == ',':
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	if quote != 0 {
		return nil, fmt.Errorf("yaml line %d: unterminated quoted scalar in flow list", num)
	}
	return append(parts, s[start:]), nil
}

func parseYAMLScalar(s string, num int) (any, error) {
	if len(s) >= 2 {
		// Double quotes process escape sequences (\n and friends, as in
		// JSON); single quotes are literal.
		if s[0] == '"' && s[len(s)-1] == '"' {
			if u, err := strconv.Unquote(s); err == nil {
				return u, nil
			}
			return s[1 : len(s)-1], nil
		}
		if s[0] == '\'' && s[len(s)-1] == '\'' {
			return s[1 : len(s)-1], nil
		}
	}
	switch s {
	case "null", "~", "":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pcaps/internal/arrivals"
)

// TestRunBurstArrivalsWithClasses: an arrivals-driven heterogeneous
// comparison runs end to end and stays deterministic under the pool.
func TestRunBurstArrivalsWithClasses(t *testing.T) {
	spec := Spec{
		Name:  "burst",
		Grids: []string{"DE"},
		Workload: WorkloadSpec{
			Jobs:     8,
			Arrivals: &ArrivalsSpec{Kind: "burst", RPS: 0.01, PeakRPS: 0.2, PeriodSec: 600, BurstSec: 60},
			Classes: []ClassSpec{
				{Name: "interactive", Mix: "tpch", Weight: 3, WorkScale: 0.5},
				{Name: "production", Mix: "alibaba", Weight: 1, WorkScale: 2},
			},
		},
		Baseline: &PolicySpec{Kind: "fifo"},
		Policies: []PolicySpec{{Name: "PCAPS", Kind: "pcaps"}},
	}
	prog, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	serial := renderText(t, prog, Env{Fast: true})
	parallel := renderText(t, prog, Env{Fast: true, Pool: NewPool(4)})
	if serial != parallel {
		t.Fatalf("serial and parallel bodies differ:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}

	in, err := prog.Inputs(Env{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if in.Arrivals.Kind != arrivals.KindBurst {
		t.Fatalf("Inputs echoes arrival kind %q, want burst", in.Arrivals.Kind)
	}
	if len(in.Classes) != 2 {
		t.Fatalf("Inputs echoes %d classes, want 2", len(in.Classes))
	}
	for _, j := range in.Jobs {
		if j.Class != "interactive" && j.Class != "production" {
			t.Fatalf("template job %d has class %q", j.ID, j.Class)
		}
	}
}

// TestRunCSVSchedule: a csv arrival schedule on disk drives the batch —
// arrivals replay the file's times and classes exactly.
func TestRunCSVSchedule(t *testing.T) {
	sched := arrivals.Spec{
		Kind:    arrivals.KindCSV,
		Times:   []float64{0, 15, 15.5, 200},
		Classes: []string{"short", "short", "long", "short"},
	}
	path := filepath.Join(t.TempDir(), "sched.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := arrivals.WriteCSV(f, sched, "# generated=test"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	spec := Spec{
		Name:  "replay",
		Grids: []string{"DE"},
		Workload: WorkloadSpec{
			Jobs:     4,
			Arrivals: &ArrivalsSpec{Kind: "csv", CSV: path},
			Classes: []ClassSpec{
				{Name: "short", Mix: "tpch", Weight: 1},
				{Name: "long", Mix: "alibaba", Weight: 1, WorkScale: 2},
			},
		},
		Baseline: &PolicySpec{Kind: "fifo"},
		Policies: []PolicySpec{{Name: "PCAPS", Kind: "pcaps"}},
	}
	prog, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	in, err := prog.Inputs(Env{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range in.Jobs {
		if j.Arrival != sched.Times[i] {
			t.Fatalf("job %d arrives at %v, want %v", i, j.Arrival, sched.Times[i])
		}
		if j.Class != sched.Classes[i] {
			t.Fatalf("job %d has class %q, want %q", i, j.Class, sched.Classes[i])
		}
	}
	if _, err := prog.Run(Env{Fast: true}); err != nil {
		t.Fatal(err)
	}

	// A batch larger than the schedule is a run-time error, not a panic.
	spec.Workload.Jobs = 10
	prog, err = Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(Env{Fast: true}); err == nil || !strings.Contains(err.Error(), "schedule") {
		t.Fatalf("short schedule error = %v, want a schedule-length error", err)
	}
	if _, err := prog.Inputs(Env{Fast: true}); err == nil {
		t.Fatal("Inputs accepted a batch beyond the schedule")
	}

	// A missing schedule file surfaces with the file's path.
	spec.Workload.Jobs = 2
	spec.Workload.Arrivals.CSV = filepath.Join(t.TempDir(), "missing.csv")
	prog, err = Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(Env{Fast: true}); err == nil || !strings.Contains(err.Error(), "workload.arrivals.csv") {
		t.Fatalf("missing file error = %v", err)
	}
}

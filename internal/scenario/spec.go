// Package scenario is the declarative experiment layer: a typed,
// validated specification of one carbon-aware scheduling scenario —
// workload mix and batch configuration, cluster topology, a carbon
// source per cluster (synthesized grid, CSV trace, or a live carbonapi
// URL), a scheduler policy set with CAP/PCAPS parameters, an optional
// federation topology with a routing policy, seed, and metric selection
// — that compiles into the same simulation cells the experiment engine
// runs. Specs load from JSON or a YAML subset (Load/Parse), compile
// with Compile, and execute through Program.Run into a result.Artifact,
// so user-authored scenarios share one execution path with the built-in
// paper artifacts: the sweeps, per-grid comparison, and federation
// runner families in internal/experiments are themselves declared as
// Specs and compiled through this package (their golden tests pin the
// bytes).
//
// Determinism contract: a compiled scenario is a pure function of
// (Spec, fast flag) — every stochastic choice derives from
// seed.Derive over the spec seed and the cell's identity, so the same
// spec produces identical artifacts at any parallelism, in the CLI and
// over HTTP alike. See DESIGN.md §5.
package scenario

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"pcaps/internal/arrivals"
	"pcaps/internal/carbon"
	"pcaps/internal/sched"
)

// Spec is one declarative scenario. The zero fields of the optional
// knobs select the engine defaults documented on each field; Validate
// reports the first offending field by its JSON name.
//
// Exactly one experiment family is selected by the section present:
//
//   - Sweep      → a parameter sweep of one policy against a baseline
//   - Federation → multi-cluster routing over a topology
//   - otherwise  → a baseline-vs-policies comparison across the
//     clusters (or grids)
type Spec struct {
	// Name identifies the scenario; it becomes the artifact ID.
	Name string `json:"name"`
	// Title is the artifact's display title (defaults to "scenario <name>").
	Title string `json:"title,omitempty"`
	// Seed drives every stochastic choice; 0 selects 42.
	Seed int64 `json:"seed,omitempty"`
	// Hours is the synthesized trace length (0: 4000 fast, else the
	// paper's three years).
	Hours int `json:"hours,omitempty"`
	// Proto selects the Kubernetes-prototype cluster environment (§6.3:
	// 100 executors, 25-executor per-job cap, pod-start delay) instead
	// of the Spark-standalone simulator environment (§5.2).
	Proto bool `json:"proto,omitempty"`
	// Grids names synthesized paper grids to compare across (comparison
	// family) or to build a federation topology from. Empty selects the
	// engine default (all six; "DE" alone in fast mode). Mutually
	// exclusive with Clusters.
	Grids []string `json:"grids,omitempty"`
	// Clusters declares explicit clusters, each with its own carbon
	// source. Mutually exclusive with Grids.
	Clusters []ClusterSpec `json:"clusters,omitempty"`
	// Workload is the job batch configuration.
	Workload WorkloadSpec `json:"workload"`
	// Trials is the randomized trials per configuration (0: family
	// default; fast mode always runs one).
	Trials int `json:"trials,omitempty"`
	// Baseline is the policy every comparison or sweep normalizes
	// against. Required for those families.
	Baseline *PolicySpec `json:"baseline,omitempty"`
	// Policies is the comparison family's policy set; rows render in
	// name order.
	Policies []PolicySpec `json:"policies,omitempty"`
	// Sweep selects the parameter-sweep family.
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Federation selects the multi-cluster routing family.
	Federation *FederationSpec `json:"federation,omitempty"`
	// Metrics selects the comparison family's summary tables; empty
	// selects carbon_reduction_pct and relative_ect (plus cost_usd when
	// a carbon price is set).
	Metrics []string `json:"metrics,omitempty"`
	// CarbonPriceUSDPerTonne prices emissions via carbon.Pricing: when
	// positive, comparison and federation artifacts gain a dollar-cost
	// column/table (sweeps report relative numbers only and reject a
	// price). Because the price is a positive linear scaling of
	// intensity, it never changes a scheduling decision — only the
	// account.
	CarbonPriceUSDPerTonne float64 `json:"carbon_price_usd_per_tonne,omitempty"`
	// Notes are literal text lines appended after the tables (the
	// built-ins carry the paper comparisons here).
	Notes []string `json:"notes,omitempty"`
	// Engine overrides individual simulator-environment knobs.
	Engine *EngineSpec `json:"engine,omitempty"`
}

// WorkloadSpec configures the job batch of every trial.
type WorkloadSpec struct {
	// Mix is the workload family: "tpch", "alibaba", or "both". Mutually
	// exclusive with Classes, which carry their own per-class mixes.
	Mix string `json:"mix,omitempty"`
	// Jobs is the batch size (0: family default).
	Jobs int `json:"jobs,omitempty"`
	// Sizes runs the comparison family at several batch sizes and
	// averages across them (default 25/50/100 when Jobs is unset).
	Sizes []int `json:"sizes,omitempty"`
	// MeanInterarrivalSec is the Poisson interarrival mean. Omitted (nil)
	// means the paper's 30-second default; an explicit 0 is rejected
	// rather than silently selecting the default. Mutually exclusive
	// with Arrivals (which carries its own rate fields).
	MeanInterarrivalSec *float64 `json:"mean_interarrival_sec,omitempty"`
	// Arrivals selects a non-Poisson open-loop arrival process
	// (internal/arrivals); nil keeps the paper's Poisson batch.
	Arrivals *ArrivalsSpec `json:"arrivals,omitempty"`
	// Classes makes the batch heterogeneous: each arrival draws one of
	// the named classes by weight (or takes the class its schedule row
	// names) and builds that class's DAG family at its work scale.
	Classes []ClassSpec `json:"classes,omitempty"`
}

// ArrivalsSpec declares the workload's arrival process — the scenario
// grammar over arrivals.Spec. Exactly the fields of the selected kind
// apply; see internal/arrivals for the per-kind semantics.
type ArrivalsSpec struct {
	// Kind selects the process: poisson, constant, ramp, burst, diurnal,
	// or csv.
	Kind string `json:"kind"`
	// MeanSec is the poisson kind's mean interarrival gap. Omitted (nil)
	// means the paper's 30-second default; an explicit 0 is rejected.
	MeanSec *float64 `json:"mean_sec,omitempty"`
	// RPS is the base rate in jobs/second (constant rate, ramp start,
	// off-burst rate, diurnal trough).
	RPS float64 `json:"rps,omitempty"`
	// PeakRPS is the high rate (ramp end, in-burst rate, diurnal peak).
	PeakRPS float64 `json:"peak_rps,omitempty"`
	// PeriodSec is the shape's time scale (ramp rise time, burst/diurnal
	// cycle length).
	PeriodSec float64 `json:"period_sec,omitempty"`
	// BurstSec is the burst kind's spike duration per period.
	BurstSec float64 `json:"burst_sec,omitempty"`
	// CSV is the csv kind's schedule file (class,arrival_sec columns,
	// the shape `tracegen -scenario` emits and arrivals.ReadCSV decodes).
	CSV string `json:"csv,omitempty"`
}

// ClassSpec declares one heterogeneous workload class.
type ClassSpec struct {
	// Name labels the class (job.Class, schedule class column).
	Name string `json:"name"`
	// Mix is the class's DAG family: "tpch", "alibaba", or "both".
	Mix string `json:"mix"`
	// Weight is the class's relative arrival share; must be positive.
	Weight float64 `json:"weight"`
	// WorkScale multiplies the class's stage durations (0: 1, the
	// family's published scale).
	WorkScale float64 `json:"work_scale,omitempty"`
}

// arrivals lowers the scenario grammar to the arrivals package's spec.
// The csv kind's schedule is not loaded here — times are resolved from
// the file at run time; validation substitutes a placeholder.
func (a *ArrivalsSpec) arrivals() arrivals.Spec {
	s := arrivals.Spec{
		Kind:      a.Kind,
		RPS:       a.RPS,
		PeakRPS:   a.PeakRPS,
		PeriodSec: a.PeriodSec,
		BurstSec:  a.BurstSec,
	}
	if a.MeanSec != nil {
		s.MeanSec = *a.MeanSec
	}
	return s
}

// ClusterSpec declares one cluster and its carbon source.
type ClusterSpec struct {
	// Name labels the cluster in results; defaults to Grid.
	Name string `json:"name,omitempty"`
	// Grid is the power-grid identifier: the GridSpec name for "synth",
	// the label for "csv", the server-side grid name for "carbonapi".
	Grid string `json:"grid"`
	// Source selects where the carbon trace comes from: "synth"
	// (default, the calibrated generator), "csv" (a file in WriteCSV /
	// Electricity Maps shape), or "carbonapi" (fetched from a live
	// carbonapi server).
	Source string `json:"source,omitempty"`
	// CSV is the trace file path for Source "csv".
	CSV string `json:"csv,omitempty"`
	// URL is the carbonapi base URL for Source "carbonapi".
	URL string `json:"url,omitempty"`
	// Executors overrides the cluster's executor count (0: engine
	// default).
	Executors int `json:"executors,omitempty"`
}

// PolicySpec declares one scheduling policy.
type PolicySpec struct {
	// Name is the row label; defaults to Kind.
	Name string `json:"name,omitempty"`
	// Kind is one of fifo, kube-default, weighted-fair, decima,
	// uniformpb, greenhadoop, cap, pcaps.
	Kind string `json:"kind"`
	// B is CAP's minimum machine quota, at least 1. Omitted (nil) means
	// the registry default (sched.DefaultCAPB = 20); an explicit 0 is
	// rejected rather than silently selecting the default. Use
	// sched.Int for literals.
	B *int `json:"b,omitempty"`
	// Gamma is PCAPS's carbon-awareness parameter in (0, 1]. Omitted
	// (nil) means the registry default (sched.DefaultPCAPSGamma = 0.5);
	// an explicit 0 is rejected rather than silently selecting the
	// default. Use sched.Float for literals.
	Gamma *float64 `json:"gamma,omitempty"`
	// Inner is the policy CAP wraps (default fifo) or the probabilistic
	// policy PCAPS interfaces with (decima or uniformpb; default
	// decima).
	Inner *PolicySpec `json:"inner,omitempty"`
}

// SweepSpec declares a parameter sweep: Policy is instantiated once per
// value, with the value bound to the parameter its Kind exposes (cap →
// B, pcaps → Gamma), and every run is normalized against the spec's
// Baseline.
type SweepSpec struct {
	// Grid pins the sweep to one synthesized grid (default "DE", the
	// paper's sweep grid).
	Grid string `json:"grid,omitempty"`
	// Label heads the parameter column (default the swept kind).
	Label string `json:"label,omitempty"`
	// Values are the parameter settings, in rendering order.
	Values []float64 `json:"values"`
	// Policy is the swept policy template.
	Policy PolicySpec `json:"policy"`
}

// RouterSpec declares one federated routing policy row.
type RouterSpec struct {
	// Name labels the row; defaults to "fed:<kind>".
	Name string `json:"name,omitempty"`
	// Kind is one of round-robin, lowest-intensity, forecast-aware.
	Kind string `json:"kind"`
	// Hysteresis is forecast-aware's switching margin (0: the package
	// default of 5%).
	Hysteresis float64 `json:"hysteresis,omitempty"`
	// Policy overrides the member-cluster scheduler for this row.
	Policy *PolicySpec `json:"policy,omitempty"`
}

// FederationSpec declares the multi-cluster routing family.
type FederationSpec struct {
	// Topologies lists grid-name sets; each becomes one comparison
	// block with synthesized members. Empty selects one topology from
	// the spec's Clusters (or Grids).
	Topologies [][]string `json:"topologies,omitempty"`
	// Routers are the federated rows, in order; the first is the
	// baseline the "vs" column compares against.
	Routers []RouterSpec `json:"routers"`
	// SinglePins adds one "single:<grid>" row per topology member:
	// the same cluster count with every member pinned to that one
	// grid's window — the no-geographic-diversity baseline.
	SinglePins bool `json:"single_pins,omitempty"`
	// Member is the default member-cluster scheduler (default fifo).
	Member *PolicySpec `json:"member,omitempty"`
}

// EngineSpec overrides individual simulation-environment knobs; zero
// fields keep the environment's defaults.
type EngineSpec struct {
	// Executors is the cluster size K.
	Executors int `json:"executors,omitempty"`
	// PerJobCap bounds executors per job (-1 removes the prototype cap).
	PerJobCap int `json:"per_job_cap,omitempty"`
	// MoveDelaySec is the executor hand-off latency.
	MoveDelaySec float64 `json:"move_delay_sec,omitempty"`
	// IdleTimeoutSec is the hold-mode idle window.
	IdleTimeoutSec float64 `json:"idle_timeout_sec,omitempty"`
	// Stream runs each cell through the memory-bounded streaming engine
	// (sim.RunStream over a lazy workload source) instead of
	// materializing the batch — the hyperscale mode of DESIGN.md §10.
	// Summaries are identical to the classic engine's; only the
	// common-prefix group sharing is given up. Comparison family only.
	Stream bool `json:"stream,omitempty"`
}

// Known enumerations, used by validation and by error messages. Policy
// kinds are not listed here: the sched.Default registry is their single
// source of truth.
var (
	routerKinds = []string{"round-robin", "lowest-intensity", "forecast-aware"}
	sourceKinds = []string{"synth", "csv", "carbonapi"}
	mixKinds    = []string{"tpch", "alibaba", "both"}
	metricKinds = []string{MetricCarbonReduction, MetricRelativeECT, MetricCostUSD}
)

// Spec-level scale ceilings: sanity bounds on the CLI path, far above
// the paper's scales but low enough to reject a typo'd axis before it
// allocates. (The HTTP service enforces its own much lower ceilings in
// checkLimits — a shared server cannot absorb hyperscale runs.)
const (
	// MaxSpecJobs bounds workload.jobs and each workload.sizes entry.
	MaxSpecJobs = 5_000_000
	// MaxSpecExecutors bounds engine.executors and each
	// clusters[i].executors.
	MaxSpecExecutors = 100_000
)

// Metric names Spec.Metrics selects among.
const (
	MetricCarbonReduction = "carbon_reduction_pct"
	MetricRelativeECT     = "relative_ect"
	MetricCostUSD         = "cost_usd"
)

func oneOf(v string, set []string) bool {
	for _, s := range set {
		if v == s {
			return true
		}
	}
	return false
}

// fieldErr reports a validation failure naming the offending field by
// its JSON path, mirroring experiments.Options.validate's style.
func fieldErr(field, format string, args ...any) error {
	return fmt.Errorf("scenario: %s: %s", field, fmt.Sprintf(format, args...))
}

// validatePolicy delegates the parameter checks to the shared policy
// registry (the same table compilePolicy builds from), relocating the
// registry's relative field paths under this spec's field.
func validatePolicy(field string, p PolicySpec) error {
	if err := sched.Default().Check(p.sched()); err != nil {
		var pe *sched.ParamError
		if errors.As(err, &pe) {
			return fieldErr(field+"."+pe.Field, "%s", pe.Msg)
		}
		return fieldErr(field, "%v", err)
	}
	return nil
}

func validateGrid(field, name string) error {
	if _, err := carbon.GridByName(name); err != nil {
		known := make([]string, 0, 6)
		for _, g := range carbon.Grids() {
			known = append(known, g.Name)
		}
		return fieldErr(field, "unknown grid %q (have %s)", name, strings.Join(known, ", "))
	}
	return nil
}

// Validate checks the spec without resolving carbon sources or running
// anything; Compile calls it first. Errors name the offending field.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fieldErr("name", "missing scenario name")
	}
	if s.Seed < 0 {
		return fieldErr("seed", "negative seed %d", s.Seed)
	}
	if s.Hours < 0 {
		return fieldErr("hours", "negative trace horizon %d hours", s.Hours)
	}
	if s.Trials < 0 {
		return fieldErr("trials", "negative trial count %d", s.Trials)
	}
	if err := s.validateWorkload(); err != nil {
		return err
	}
	if len(s.Grids) > 0 && len(s.Clusters) > 0 {
		return fieldErr("clusters", "grids and clusters are mutually exclusive; declare the topology once")
	}
	seen := map[string]bool{}
	for i, g := range s.Grids {
		field := fmt.Sprintf("grids[%d]", i)
		if err := validateGrid(field, g); err != nil {
			return err
		}
		if seen[g] {
			return fieldErr(field, "duplicate grid %q in grid set", g)
		}
		seen[g] = true
	}
	names := map[string]bool{}
	for i, c := range s.Clusters {
		field := fmt.Sprintf("clusters[%d]", i)
		if c.Grid == "" {
			return fieldErr(field+".grid", "missing grid name")
		}
		src := c.Source
		if src == "" {
			src = "synth"
		}
		switch src {
		case "synth":
			if err := validateGrid(field+".grid", c.Grid); err != nil {
				return err
			}
		case "csv":
			if c.CSV == "" {
				return fieldErr(field+".csv", "csv source needs a file path")
			}
		case "carbonapi":
			if c.URL == "" {
				return fieldErr(field+".url", "carbonapi source needs a base URL")
			}
		default:
			return fieldErr(field+".source", "unknown carbon source %q (have %s)", src, strings.Join(sourceKinds, ", "))
		}
		if c.Executors < 0 {
			return fieldErr(field+".executors", "negative executor count %d", c.Executors)
		}
		if c.Executors > MaxSpecExecutors {
			return fieldErr(field+".executors", "%d exceeds the spec ceiling of %d", c.Executors, MaxSpecExecutors)
		}
		name := c.Name
		if name == "" {
			name = c.Grid
		}
		if names[name] {
			return fieldErr(field+".name", "duplicate cluster name %q", name)
		}
		names[name] = true
	}
	if s.CarbonPriceUSDPerTonne < 0 {
		return fieldErr("carbon_price_usd_per_tonne", "negative carbon price %v", s.CarbonPriceUSDPerTonne)
	}
	if e := s.Engine; e != nil {
		if e.Executors < 0 {
			return fieldErr("engine.executors", "negative executor count %d", e.Executors)
		}
		if e.Executors > MaxSpecExecutors {
			return fieldErr("engine.executors", "%d exceeds the spec ceiling of %d", e.Executors, MaxSpecExecutors)
		}
		if e.Stream && (s.Sweep != nil || s.Federation != nil) {
			// Sweeps and federations lean on batch replay (common-prefix
			// groups, per-member routing of one materialized batch); the
			// flag would be silently ignored there.
			return fieldErr("engine.stream", "the streaming engine applies to comparison scenarios only")
		}
	}
	if s.Sweep != nil && s.Federation != nil {
		return fieldErr("sweep", "sweep and federation are mutually exclusive families")
	}
	switch {
	case s.Sweep != nil:
		return s.validateSweep()
	case s.Federation != nil:
		return s.validateFederation()
	default:
		return s.validateComparison()
	}
}

func (s *Spec) validateWorkload() error {
	w := s.Workload
	if len(w.Classes) > 0 {
		if w.Mix != "" {
			// The mix would be silently shadowed by the per-class mixes.
			return fieldErr("workload.mix", "mix and classes are mutually exclusive; classes carry their own mixes")
		}
	} else {
		if w.Mix == "" {
			return fieldErr("workload.mix", "empty workload (have %s)", strings.Join(mixKinds, ", "))
		}
		if !oneOf(w.Mix, mixKinds) {
			return fieldErr("workload.mix", "unknown workload mix %q (have %s)", w.Mix, strings.Join(mixKinds, ", "))
		}
	}
	names := map[string]bool{}
	for i, c := range w.Classes {
		field := fmt.Sprintf("workload.classes[%d]", i)
		if c.Name == "" {
			return fieldErr(field+".name", "missing class name")
		}
		if names[c.Name] {
			return fieldErr(field+".name", "duplicate class name %q", c.Name)
		}
		names[c.Name] = true
		if !oneOf(c.Mix, mixKinds) {
			return fieldErr(field+".mix", "unknown workload mix %q (have %s)", c.Mix, strings.Join(mixKinds, ", "))
		}
		if c.Weight <= 0 || math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0) {
			return fieldErr(field+".weight", "class weight %v is not positive", c.Weight)
		}
		if c.WorkScale < 0 || math.IsNaN(c.WorkScale) || math.IsInf(c.WorkScale, 0) {
			return fieldErr(field+".work_scale", "work scale %v is not a non-negative finite number", c.WorkScale)
		}
	}
	if s.Workload.Jobs < 0 {
		return fieldErr("workload.jobs", "negative batch size %d", s.Workload.Jobs)
	}
	if s.Workload.Jobs > MaxSpecJobs {
		return fieldErr("workload.jobs", "%d exceeds the spec ceiling of %d", s.Workload.Jobs, MaxSpecJobs)
	}
	for i, n := range s.Workload.Sizes {
		if n <= 0 {
			return fieldErr(fmt.Sprintf("workload.sizes[%d]", i), "non-positive batch size %d", n)
		}
		if n > MaxSpecJobs {
			return fieldErr(fmt.Sprintf("workload.sizes[%d]", i), "%d exceeds the spec ceiling of %d", n, MaxSpecJobs)
		}
	}
	if len(s.Workload.Sizes) > 0 {
		// sizes is the comparison family's multi-size axis; anywhere
		// else it would be silently dropped, and alongside jobs one of
		// the two would silently win.
		if s.Sweep != nil || s.Federation != nil {
			return fieldErr("workload.sizes", "multi-size batches apply to comparison scenarios only")
		}
		if s.Workload.Jobs > 0 {
			return fieldErr("workload.sizes", "jobs and sizes are mutually exclusive; declare the batch once")
		}
	}
	if m := w.MeanInterarrivalSec; m != nil {
		if w.Arrivals != nil {
			// One of the two rates would silently win.
			return fieldErr("workload.mean_interarrival_sec", "mean_interarrival_sec and arrivals are mutually exclusive; declare the arrival process once")
		}
		if *m <= 0 || math.IsNaN(*m) || math.IsInf(*m, 0) {
			return fieldErr("workload.mean_interarrival_sec", "interarrival %v is not positive (omit the field for the 30 s default)", *m)
		}
	}
	return s.validateArrivals()
}

// validateArrivals checks workload.arrivals, relocating the arrivals
// package's field errors under the spec path the way validatePolicy
// relocates sched.ParamError.
func (s *Spec) validateArrivals() error {
	a := s.Workload.Arrivals
	if a == nil {
		return nil
	}
	if a.MeanSec != nil && (*a.MeanSec <= 0 || math.IsNaN(*a.MeanSec) || math.IsInf(*a.MeanSec, 0)) {
		return fieldErr("workload.arrivals.mean_sec", "interarrival %v is not positive (omit the field for the 30 s default)", *a.MeanSec)
	}
	as := a.arrivals()
	if as.Kind == arrivals.KindCSV {
		if a.CSV == "" {
			return fieldErr("workload.arrivals.csv", "csv kind needs a schedule file path")
		}
		// The schedule is loaded at run time; validate the other fields
		// against a placeholder so misapplied knobs are still rejected.
		as.Times = []float64{0}
	} else if a.CSV != "" {
		return fieldErr("workload.arrivals.csv", "field does not apply to the %s kind", as.Kind)
	}
	if err := as.Validate(); err != nil {
		var fe *arrivals.FieldError
		if errors.As(err, &fe) {
			return fieldErr("workload.arrivals."+fe.Field, "%s", fe.Msg)
		}
		return fieldErr("workload.arrivals", "%v", err)
	}
	return nil
}

func (s *Spec) validateComparison() error {
	if s.Baseline == nil {
		return fieldErr("baseline", "comparison scenarios need a baseline policy")
	}
	if err := validatePolicy("baseline", *s.Baseline); err != nil {
		return err
	}
	if len(s.Policies) == 0 {
		return fieldErr("policies", "comparison scenarios need at least one policy")
	}
	baseName := policyName(*s.Baseline)
	seen := map[string]bool{}
	for i, p := range s.Policies {
		field := fmt.Sprintf("policies[%d]", i)
		if err := validatePolicy(field, p); err != nil {
			return err
		}
		name := policyName(p)
		if seen[name] {
			return fieldErr(field+".name", "duplicate policy name %q", name)
		}
		// A collision with the baseline's name would make the cost
		// table's baseline row shadow the policy's own.
		if name == baseName {
			return fieldErr(field+".name", "policy name %q collides with the baseline", name)
		}
		seen[name] = true
	}
	seenMetrics := map[string]bool{}
	for i, m := range s.Metrics {
		field := fmt.Sprintf("metrics[%d]", i)
		if !oneOf(m, metricKinds) {
			return fieldErr(field, "unknown metric %q (have %s)", m, strings.Join(metricKinds, ", "))
		}
		if m == MetricCostUSD && s.CarbonPriceUSDPerTonne <= 0 {
			return fieldErr(field, "cost_usd needs carbon_price_usd_per_tonne > 0")
		}
		if seenMetrics[m] {
			return fieldErr(field, "duplicate metric %q", m)
		}
		seenMetrics[m] = true
	}
	return nil
}

func (s *Spec) validateSweep() error {
	sw := s.Sweep
	if s.Baseline == nil {
		return fieldErr("baseline", "sweep scenarios need a baseline policy")
	}
	if err := validatePolicy("baseline", *s.Baseline); err != nil {
		return err
	}
	// A sweep runs on exactly one cluster: sweep.grid (synthesized) or
	// a single explicit cluster. Extra axes would be silently dropped,
	// so they are rejected instead.
	if len(s.Grids) > 0 {
		return fieldErr("grids", "sweep scenarios pin their grid via sweep.grid (or a single cluster)")
	}
	if len(s.Clusters) > 1 {
		return fieldErr("clusters", "sweep scenarios run on one cluster, got %d", len(s.Clusters))
	}
	if sw.Grid != "" {
		if len(s.Clusters) > 0 {
			return fieldErr("sweep.grid", "sweep.grid and clusters are mutually exclusive")
		}
		if err := validateGrid("sweep.grid", sw.Grid); err != nil {
			return err
		}
	}
	if len(sw.Values) == 0 {
		return fieldErr("sweep.values", "empty parameter sweep")
	}
	if err := validatePolicy("sweep.policy", sw.Policy); err != nil {
		return err
	}
	param := sched.Default().SweepParam(sw.Policy.Kind)
	if param == "" {
		return fieldErr("sweep.policy.kind", "kind %q has no sweepable parameter (have %s)",
			sw.Policy.Kind, strings.Join(sched.Default().Sweepable(), ", "))
	}
	// Each bound value must itself be a valid parameter; in particular
	// an out-of-range value would otherwise be rejected only at compile
	// time, without the sweep row's field path.
	for i, v := range sw.Values {
		field := fmt.Sprintf("sweep.values[%d]", i)
		switch param {
		case "gamma":
			if v <= 0 || v > 1 {
				return fieldErr(field, "gamma %v outside (0, 1]", v)
			}
		case "b":
			if v < 1 {
				return fieldErr(field, "CAP quota %v below 1", v)
			}
			if v != math.Trunc(v) {
				// B is an executor count; silently truncating would
				// label the row with a parameter that never ran.
				return fieldErr(field, "CAP quota %v is not an integer", v)
			}
		}
	}
	if len(s.Metrics) > 0 {
		return fieldErr("metrics", "metric selection applies to comparison scenarios only")
	}
	if s.CarbonPriceUSDPerTonne > 0 {
		// Sweep rows are relative (carbon reduction %, relative ECT);
		// a price would be silently dropped, so it is rejected instead.
		return fieldErr("carbon_price_usd_per_tonne", "carbon pricing applies to comparison and federation scenarios only")
	}
	if len(s.Policies) > 0 {
		return fieldErr("policies", "sweep scenarios take their policy from sweep.policy")
	}
	return nil
}

func (s *Spec) validateFederation() error {
	f := s.Federation
	if len(f.Routers) == 0 {
		return fieldErr("federation.routers", "federation scenarios need at least one router")
	}
	if len(f.Topologies) == 0 && len(s.Clusters) == 0 && len(s.Grids) == 0 {
		return fieldErr("federation.routers", "router without clusters: declare clusters, grids, or federation.topologies")
	}
	if len(f.Topologies) > 0 && (len(s.Clusters) > 0 || len(s.Grids) > 0) {
		// Topologies would silently win; the topology must be declared
		// exactly once.
		return fieldErr("federation.topologies", "topologies and grids/clusters are mutually exclusive; declare the topology once")
	}
	for ti, topo := range f.Topologies {
		if len(topo) == 0 {
			return fieldErr(fmt.Sprintf("federation.topologies[%d]", ti), "empty topology")
		}
		seen := map[string]bool{}
		for gi, g := range topo {
			field := fmt.Sprintf("federation.topologies[%d][%d]", ti, gi)
			if err := validateGrid(field, g); err != nil {
				return err
			}
			if seen[g] {
				return fieldErr(field, "duplicate grid %q in topology", g)
			}
			seen[g] = true
		}
	}
	rnames := map[string]bool{}
	for i, r := range f.Routers {
		field := fmt.Sprintf("federation.routers[%d]", i)
		if r.Kind == "" {
			return fieldErr(field+".kind", "missing router kind (have %s)", strings.Join(routerKinds, ", "))
		}
		// "single:<grid>" names the synthetic pin rows; a router reusing
		// the prefix would collide in the per-cell results map and
		// silently shadow a pin's numbers.
		if strings.HasPrefix(r.Name, "single:") {
			return fieldErr(field+".name", "prefix \"single:\" is reserved for the pinned baselines")
		}
		if !oneOf(r.Kind, routerKinds) {
			return fieldErr(field+".kind", "unknown router kind %q (have %s)", r.Kind, strings.Join(routerKinds, ", "))
		}
		if r.Policy != nil {
			if err := validatePolicy(field+".policy", *r.Policy); err != nil {
				return err
			}
		}
		name := r.Name
		if name == "" {
			name = "fed:" + r.Kind
		}
		if rnames[name] {
			return fieldErr(field+".name", "duplicate router name %q", name)
		}
		rnames[name] = true
	}
	if f.Member != nil {
		if err := validatePolicy("federation.member", *f.Member); err != nil {
			return err
		}
	}
	if len(s.Metrics) > 0 {
		return fieldErr("metrics", "metric selection applies to comparison scenarios only")
	}
	if len(s.Policies) > 0 || s.Baseline != nil {
		return fieldErr("policies", "federation scenarios take member policies from federation.member and federation.routers[].policy")
	}
	return nil
}

// Package federation simulates a geographically distributed deployment:
// K member clusters, each pinned to a different power grid (and therefore
// to a different carbon-intensity trace), with a job router in front. Jobs
// arrive at the federation, a routing policy assigns each to one cluster
// at its arrival instant, and the per-cluster scheduler (FIFO, CAP,
// PCAPS, ...) takes over from there — routing composes with, and happens
// strictly before, per-cluster scheduling, mirroring how a global load
// balancer sits in front of independent regional control planes.
//
// The paper evaluates its schedulers against one grid at a time; its own
// motivation — carbon intensity varies hugely across regions and hours —
// points at cross-region placement as the next lever. This package opens
// that scenario family on top of the existing substrates: carbon.Trace
// supplies each region's signal, carbon.Forecaster the (L, U) routing
// bounds, and internal/sim runs each member cluster unchanged.
//
// Determinism rules (see DESIGN.md "Federation layer"): routing is a
// serial fold over jobs in arrival order, router state is reset at the
// start of every run, and each member cluster derives its simulation seed
// from the federation seed and the cluster's own identity — so a
// federation run is a pure function of (jobs, specs, router, seed) and
// experiment cells can fan out over workers without changing results.
package federation

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pcaps/internal/carbon"
	"pcaps/internal/dag"
	"pcaps/internal/metrics"
	"pcaps/internal/seed"
	"pcaps/internal/sim"
)

// ClusterSpec describes one member cluster of the federation.
type ClusterSpec struct {
	// Name labels the cluster in results; defaults to Grid. Distinct
	// names are recommended when several clusters share a grid.
	Name string
	// Grid is the power-grid identifier the Signals source is queried
	// with ("DE", "CAISO", ...).
	Grid string
	// Trace is the cluster's carbon-intensity signal, consumed by the
	// member simulation and by the default trace-backed Signals.
	Trace *carbon.Trace
	// Config is the member cluster's engine configuration. Trace and
	// Seed are overridden per run (the seed is derived from the
	// federation seed and the cluster identity).
	Config sim.Config
	// NewScheduler builds the member cluster's scheduler. A fresh
	// instance is built per run, seeded with the cluster's derived seed,
	// because scheduler instances carry per-run scratch.
	NewScheduler func(seed int64) sim.Scheduler
}

// JobInfo is what routers observe about a job at routing time.
type JobInfo struct {
	Job *dag.Job
	// Arrival is the job's arrival time in experiment seconds.
	Arrival float64
	// Work is the job's total work in executor-seconds.
	Work float64
	// CriticalPath is the DAG's critical-path length in seconds, the
	// lower bound on the job's span at any parallelism.
	CriticalPath float64
}

// ClusterState is the per-cluster snapshot a router sees for one routing
// decision. Intensity and the (Low, High) bounds come from the
// federation's Signals source; RoutedJobs/RoutedWork account for
// everything the router has already sent to the cluster, the cheap load
// proxy available before the member simulations run.
type ClusterState struct {
	Index int
	Name  string
	// Executors is the cluster's effective per-job parallelism (the
	// per-job cap when set, the cluster size otherwise).
	Executors int
	// Intensity is the grid's carbon intensity at the job's arrival.
	Intensity float64
	// Low and High are the forecast bounds over [arrival, arrival+Span].
	Low, High float64
	// Span is the job's estimated wall span on this cluster in seconds:
	// max(critical path, work / effective parallelism).
	Span float64
	// RoutedJobs and RoutedWork count what this router run has already
	// assigned to the cluster.
	RoutedJobs int
	RoutedWork float64
}

// Router assigns each arriving job to a member cluster. Implementations
// may keep state across Route calls (round-robin counters, hysteresis
// anchors); Reset is invoked at the start of every federation run so one
// router instance yields identical assignments on identical inputs.
type Router interface {
	Name() string
	Reset()
	// Route returns the index of the chosen cluster in [0, len(clusters)).
	// The clusters slice is owned by the federation engine and only valid
	// for the duration of the call.
	Route(job JobInfo, clusters []ClusterState) int
}

// Federation wires clusters, a router, and a signal source together.
type Federation struct {
	Clusters []ClusterSpec
	Router   Router
	// Signals supplies routing-time intensities and forecast bounds; nil
	// selects a trace-backed source over the clusters' own traces using
	// Forecaster.
	Signals Signals
	// Forecaster shapes the default trace-backed signals; nil selects
	// the paper's oracle assumption (carbon.Oracle).
	Forecaster carbon.Forecaster
	// Seed drives every member simulation (domain-separated per
	// cluster) and the per-cluster scheduler construction.
	Seed int64
}

// ClusterResult pairs one member cluster with its share of the run.
type ClusterResult struct {
	Name string
	// Jobs is the number of jobs routed to the cluster.
	Jobs int
	// Sim is the member simulation outcome; nil when no jobs were
	// routed here (the cluster stayed dark and emitted nothing).
	Sim *sim.Result
}

// Result summarizes one federation run.
type Result struct {
	Router string
	// Assignments maps each input job (by position) to the index of the
	// cluster it was routed to.
	Assignments []int
	// PerCluster holds each member cluster's outcome in spec order.
	PerCluster []ClusterResult
	// Summary is the federated carbon/throughput account.
	Summary metrics.FederationSummary
}

// clusterSeed derives a member cluster's simulation seed from the
// federation seed and the cluster's identity, domain-separated through
// the same recipe the experiment engine uses for cell seeds — so adding
// or reordering sibling clusters never perturbs an unrelated member.
func clusterSeed(base int64, name string, index int) int64 {
	return seed.Derive(base, "federation/"+name, int64(index))
}

func (f *Federation) validate() error {
	if len(f.Clusters) == 0 {
		return errors.New("federation: no clusters")
	}
	if f.Router == nil {
		return errors.New("federation: no router")
	}
	seen := map[string]*carbon.Trace{}
	for i, c := range f.Clusters {
		if c.Trace == nil {
			return fmt.Errorf("federation: cluster %d (%s) has no trace", i, c.Name)
		}
		if c.NewScheduler == nil {
			return fmt.Errorf("federation: cluster %d (%s) has no scheduler factory", i, c.Name)
		}
		if c.Config.NumExecutors < 1 {
			return fmt.Errorf("federation: cluster %d (%s) has no executors", i, c.Name)
		}
		// Signals are grid-keyed, so clusters sharing a grid must share
		// one trace — otherwise the router would score one cluster with
		// another's signal.
		if prev, ok := seen[c.Grid]; ok && prev != c.Trace {
			return fmt.Errorf("federation: clusters sharing grid %q must share one trace (signals are grid-keyed)", c.Grid)
		}
		seen[c.Grid] = c.Trace
	}
	return nil
}

// effectiveParallelism is the per-job executor bound used for span
// estimates: the per-job cap when configured, the cluster size otherwise.
func effectiveParallelism(cfg sim.Config) int {
	k := cfg.NumExecutors
	if cfg.PerJobCap > 0 && cfg.PerJobCap < k {
		k = cfg.PerJobCap
	}
	return k
}

// Run routes the jobs and simulates every member cluster. Jobs are routed
// in arrival order (ties broken by input position); each member cluster
// then runs the engine over its share with a derived seed. Input jobs are
// templates shared across runs — the engine clones them — so the same
// batch can be fed to several routers for comparison.
func (f *Federation) Run(jobs []*dag.Job) (*Result, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, errors.New("federation: no jobs")
	}
	names := make([]string, len(f.Clusters))
	for i, c := range f.Clusters {
		names[i] = c.Name
		if names[i] == "" {
			names[i] = c.Grid
		}
	}
	sig := f.Signals
	if sig == nil {
		traces := make(map[string]*carbon.Trace, len(f.Clusters))
		for _, c := range f.Clusters {
			traces[c.Grid] = c.Trace
		}
		sig = &TraceSignals{Traces: traces, Forecaster: f.Forecaster}
	}

	// Route in arrival order, ties broken by input position, so the
	// router observes the same sequence a live admission point would.
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Arrival < jobs[order[b]].Arrival
	})

	f.Router.Reset()
	assignments := make([]int, len(jobs))
	shares := make([][]*dag.Job, len(f.Clusters))
	states := make([]ClusterState, len(f.Clusters))
	routedJobs := make([]int, len(f.Clusters))
	routedWork := make([]float64, len(f.Clusters))
	// Clusters sharing a grid see identical signals; memoize per job so
	// the ClientSignals path issues one intensity request per distinct
	// grid and one forecast request per distinct (grid, span), not one
	// of each per cluster.
	type boundsKey struct {
		grid string
		span float64
	}
	type bounds struct{ lo, hi float64 }
	intensityCache := make(map[string]float64, len(f.Clusters))
	boundsCache := make(map[boundsKey]bounds, len(f.Clusters))
	for _, ji := range order {
		j := jobs[ji]
		info := JobInfo{Job: j, Arrival: j.Arrival, Work: j.TotalWork(), CriticalPath: j.CriticalPathLength()}
		clear(intensityCache)
		clear(boundsCache)
		for ci, spec := range f.Clusters {
			eff := effectiveParallelism(spec.Config)
			span := math.Max(info.CriticalPath, info.Work/float64(eff))
			if span <= 0 {
				span = spec.Trace.Interval
			}
			intensity, ok := intensityCache[spec.Grid]
			if !ok {
				var err error
				intensity, err = sig.Intensity(spec.Grid, info.Arrival)
				if err != nil {
					return nil, fmt.Errorf("federation: intensity for %s: %w", names[ci], err)
				}
				intensityCache[spec.Grid] = intensity
			}
			bk := boundsKey{grid: spec.Grid, span: span}
			b, ok := boundsCache[bk]
			if !ok {
				lo, hi, err := sig.Bounds(spec.Grid, info.Arrival, span)
				if err != nil {
					return nil, fmt.Errorf("federation: forecast for %s: %w", names[ci], err)
				}
				b = bounds{lo: lo, hi: hi}
				boundsCache[bk] = b
			}
			states[ci] = ClusterState{
				Index:      ci,
				Name:       names[ci],
				Executors:  eff,
				Intensity:  intensity,
				Low:        b.lo,
				High:       b.hi,
				Span:       span,
				RoutedJobs: routedJobs[ci],
				RoutedWork: routedWork[ci],
			}
		}
		idx := f.Router.Route(info, states)
		if idx < 0 || idx >= len(f.Clusters) {
			return nil, fmt.Errorf("federation: router %s returned cluster %d of %d",
				f.Router.Name(), idx, len(f.Clusters))
		}
		assignments[ji] = idx
		routedJobs[idx]++
		routedWork[idx] += info.Work
		shares[idx] = append(shares[idx], j)
	}

	// Simulate every member cluster over its share.
	var acct metrics.FederationAccountant
	per := make([]ClusterResult, len(f.Clusters))
	for ci, spec := range f.Clusters {
		per[ci] = ClusterResult{Name: names[ci], Jobs: len(shares[ci])}
		if len(shares[ci]) == 0 {
			acct.Add(metrics.ClusterShare{Name: names[ci]})
			continue
		}
		cfg := spec.Config
		cfg.Trace = spec.Trace
		cfg.Seed = clusterSeed(f.Seed, names[ci], ci)
		res, err := sim.Run(cfg, shares[ci], spec.NewScheduler(cfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("federation: cluster %s: %w", names[ci], err)
		}
		per[ci].Sim = res
		acct.Add(metrics.ClusterShare{
			Name:        names[ci],
			Jobs:        len(shares[ci]),
			CarbonGrams: res.CarbonGrams,
			Work:        res.TotalWork,
			Makespan:    res.ECT,
			JCTs:        res.JCTs,
		})
	}
	return &Result{
		Router:      f.Router.Name(),
		Assignments: assignments,
		PerCluster:  per,
		Summary:     acct.Summary(),
	}, nil
}

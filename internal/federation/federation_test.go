package federation

import (
	"math"
	"net/http/httptest"
	"reflect"
	"testing"

	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
	"pcaps/internal/dag"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
)

func flatTrace(t *testing.T, grid string, value float64, n int) *carbon.Trace {
	t.Helper()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = value
	}
	tr, err := carbon.New(grid, 60, vals)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func stepTrace(t *testing.T, grid string, vals []float64) *carbon.Trace {
	t.Helper()
	tr, err := carbon.New(grid, 60, vals)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func fifoSpec(grid string, tr *carbon.Trace) ClusterSpec {
	return ClusterSpec{
		Grid:         grid,
		Trace:        tr,
		Config:       sim.Config{NumExecutors: 8},
		NewScheduler: func(int64) sim.Scheduler { return &sched.FIFO{} },
	}
}

func testJobs(n int, gap float64) []*dag.Job {
	jobs := make([]*dag.Job, 0, n)
	for i := 0; i < n; i++ {
		b := dag.NewBuilder(i, "fed")
		b.Stage("s", 4, 30)
		j := b.MustBuild()
		j.Arrival = float64(i) * gap
		jobs = append(jobs, j)
	}
	return jobs
}

func TestRoundRobinDistribution(t *testing.T) {
	f := &Federation{
		Clusters: []ClusterSpec{
			fifoSpec("A", flatTrace(t, "A", 100, 48)),
			fifoSpec("B", flatTrace(t, "B", 200, 48)),
			fifoSpec("C", flatTrace(t, "C", 300, 48)),
		},
		Router: NewRoundRobin(),
		Seed:   1,
	}
	res, err := f.Run(testJobs(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	if !reflect.DeepEqual(res.Assignments, want) {
		t.Fatalf("assignments = %v, want %v", res.Assignments, want)
	}
	for i, pc := range res.PerCluster {
		if pc.Jobs != 3 || pc.Sim == nil {
			t.Fatalf("cluster %d share = %d jobs (sim nil=%v), want 3", i, pc.Jobs, pc.Sim == nil)
		}
	}
	if res.Summary.Jobs != 9 {
		t.Fatalf("summary jobs = %d", res.Summary.Jobs)
	}
}

func TestRunDeterminism(t *testing.T) {
	mk := func() *Federation {
		return &Federation{
			Clusters: []ClusterSpec{
				fifoSpec("A", stepTrace(t, "A", []float64{100, 400, 100, 400, 100, 400, 100, 400})),
				fifoSpec("B", stepTrace(t, "B", []float64{300, 120, 300, 120, 300, 120, 300, 120})),
			},
			Router: NewForecastAware(),
			Seed:   7,
		}
	}
	jobs := testJobs(12, 45)
	a, err := mk().Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Same instance re-run (Reset must clear hysteresis state) and a
	// fresh instance must both reproduce the first run exactly.
	f := mk()
	b1, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []*Result{b1, b2} {
		if !reflect.DeepEqual(a.Assignments, other.Assignments) {
			t.Fatalf("assignments diverged: %v vs %v", a.Assignments, other.Assignments)
		}
		if a.Summary.CarbonGrams != other.Summary.CarbonGrams || a.Summary.Makespan != other.Summary.Makespan {
			t.Fatalf("summary diverged: %+v vs %+v", a.Summary, other.Summary)
		}
	}
}

func TestLowestIntensityBeatsRoundRobin(t *testing.T) {
	clusters := []ClusterSpec{
		fifoSpec("dirty", flatTrace(t, "dirty", 700, 96)),
		fifoSpec("clean", flatTrace(t, "clean", 100, 96)),
	}
	jobs := testJobs(10, 30)
	rr, err := (&Federation{Clusters: clusters, Router: NewRoundRobin(), Seed: 3}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	li, err := (&Federation{Clusters: clusters, Router: NewLowestIntensity(), Seed: 3}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if li.Summary.CarbonGrams >= rr.Summary.CarbonGrams {
		t.Fatalf("lowest-intensity %v g not below round-robin %v g",
			li.Summary.CarbonGrams, rr.Summary.CarbonGrams)
	}
	for i, idx := range li.Assignments {
		if idx != 1 {
			t.Fatalf("job %d routed to dirty cluster", i)
		}
	}
	// The dark cluster emitted nothing and has no simulation.
	if li.PerCluster[0].Sim != nil || li.PerCluster[0].Jobs != 0 {
		t.Fatalf("dirty cluster should be dark: %+v", li.PerCluster[0])
	}
}

func TestForecastAwareHysteresis(t *testing.T) {
	r := NewForecastAware() // default 5% margin
	states := func(a, b float64) []ClusterState {
		return []ClusterState{
			{Index: 0, Name: "A", Low: a, High: a},
			{Index: 1, Name: "B", Low: b, High: b},
		}
	}
	var job JobInfo
	if got := r.Route(job, states(100, 95)); got != 1 {
		t.Fatalf("initial pick = %d, want 1 (cleaner)", got)
	}
	// Challenger A (100) is within 5% of the incumbent B (102): stick.
	if got := r.Route(job, states(100, 102)); got != 1 {
		t.Fatalf("within-margin pick = %d, want incumbent 1", got)
	}
	// Incumbent degrades past the margin: switch.
	if got := r.Route(job, states(100, 120)); got != 0 {
		t.Fatalf("beyond-margin pick = %d, want 0", got)
	}
	// The new incumbent now enjoys the same stickiness.
	if got := r.Route(job, states(103, 100)); got != 0 {
		t.Fatalf("post-switch within-margin pick = %d, want incumbent 0", got)
	}
	// Reset clears the anchor: a fresh run picks the current best.
	r.Reset()
	if got := r.Route(job, states(100, 102)); got != 0 {
		t.Fatalf("post-reset pick = %d, want 0", got)
	}
}

// badRouter returns an out-of-range index.
type badRouter struct{}

func (badRouter) Name() string                      { return "bad" }
func (badRouter) Reset()                            {}
func (badRouter) Route(JobInfo, []ClusterState) int { return 99 }

func TestRunValidation(t *testing.T) {
	tr := flatTrace(t, "A", 100, 8)
	jobs := testJobs(2, 10)
	if _, err := (&Federation{Router: NewRoundRobin()}).Run(jobs); err == nil {
		t.Fatal("no clusters accepted")
	}
	if _, err := (&Federation{Clusters: []ClusterSpec{fifoSpec("A", tr)}}).Run(jobs); err == nil {
		t.Fatal("no router accepted")
	}
	if _, err := (&Federation{Clusters: []ClusterSpec{fifoSpec("A", tr)}, Router: NewRoundRobin()}).Run(nil); err == nil {
		t.Fatal("no jobs accepted")
	}
	if _, err := (&Federation{Clusters: []ClusterSpec{fifoSpec("A", tr)}, Router: badRouter{}}).Run(jobs); err == nil {
		t.Fatal("out-of-range route accepted")
	}
	spec := fifoSpec("A", tr)
	spec.NewScheduler = nil
	if _, err := (&Federation{Clusters: []ClusterSpec{spec}, Router: NewRoundRobin()}).Run(jobs); err == nil {
		t.Fatal("missing scheduler factory accepted")
	}
	// Clusters sharing a grid must share one trace: signals are
	// grid-keyed, so divergent windows would score one cluster with the
	// other's signal.
	conflicting := []ClusterSpec{
		fifoSpec("A", tr),
		fifoSpec("A", flatTrace(t, "A", 500, 8)),
	}
	if _, err := (&Federation{Clusters: conflicting, Router: NewRoundRobin()}).Run(jobs); err == nil {
		t.Fatal("same-grid clusters with different traces accepted")
	}
	// The same trace shared across same-grid clusters stays legal (the
	// single-grid experiment baselines rely on it).
	sharing := []ClusterSpec{fifoSpec("A", tr), fifoSpec("A", tr)}
	if _, err := (&Federation{Clusters: sharing, Router: NewRoundRobin()}).Run(jobs); err != nil {
		t.Fatalf("same-grid same-trace clusters rejected: %v", err)
	}
}

// TestClientSignalsMatchTraceSignals drives the router through the
// carbonapi HTTP server and checks the daemon path reproduces the local
// trace-backed run exactly (the server's forecast is the same oracle).
func TestClientSignalsMatchTraceSignals(t *testing.T) {
	trA := stepTrace(t, "A", []float64{100, 400, 150, 380, 90, 420, 110, 400})
	trB := stepTrace(t, "B", []float64{300, 120, 280, 110, 320, 100, 300, 130})
	clusters := []ClusterSpec{fifoSpec("A", trA), fifoSpec("B", trB)}
	jobs := testJobs(10, 50)

	local, err := (&Federation{Clusters: clusters, Router: NewForecastAware(), Seed: 5}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(carbonapi.NewServer(map[string]*carbon.Trace{"A": trA, "B": trB}))
	defer srv.Close()
	remote, err := (&Federation{
		Clusters: clusters,
		Router:   NewForecastAware(),
		Signals:  &ClientSignals{Client: carbonapi.NewClient(srv.URL)},
		Seed:     5,
	}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local.Assignments, remote.Assignments) {
		t.Fatalf("HTTP-backed assignments %v != trace-backed %v", remote.Assignments, local.Assignments)
	}
	if math.Abs(local.Summary.CarbonGrams-remote.Summary.CarbonGrams) > 1e-9 {
		t.Fatalf("HTTP-backed carbon %v != trace-backed %v",
			remote.Summary.CarbonGrams, local.Summary.CarbonGrams)
	}
}

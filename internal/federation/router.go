package federation

// RoundRobin is the throughput-fair baseline: clusters take turns in
// index order, ignoring carbon entirely.
type RoundRobin struct{ next int }

// NewRoundRobin returns a fresh round-robin router.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Router.
func (r *RoundRobin) Name() string { return "round-robin" }

// Reset implements Router.
func (r *RoundRobin) Reset() { r.next = 0 }

// Route implements Router.
func (r *RoundRobin) Route(_ JobInfo, clusters []ClusterState) int {
	idx := r.next % len(clusters)
	r.next++
	return idx
}

// LowestIntensity routes each job to the cluster whose grid is cleanest
// right now (ties broken by lowest index). It is greedy and myopic: a
// grid that is cheap at arrival but about to peak still attracts the
// job — the failure mode ForecastAware exists to avoid.
type LowestIntensity struct{}

// NewLowestIntensity returns the greedy current-intensity router.
func NewLowestIntensity() *LowestIntensity { return &LowestIntensity{} }

// Name implements Router.
func (LowestIntensity) Name() string { return "lowest-intensity" }

// Reset implements Router.
func (LowestIntensity) Reset() {}

// Route implements Router.
func (LowestIntensity) Route(_ JobInfo, clusters []ClusterState) int {
	best := 0
	for i := 1; i < len(clusters); i++ {
		if clusters[i].Intensity < clusters[best].Intensity {
			best = i
		}
	}
	return best
}

// DefaultHysteresis is ForecastAware's default switching margin: a new
// cluster must look at least 5% cleaner than the incumbent to win the
// job.
const DefaultHysteresis = 0.05

// ForecastAware routes on expected carbon over the job's estimated span:
// each cluster is scored by the midpoint of its forecast (L, U) bounds
// over [arrival, arrival+span] (carbon.Forecaster supplies the bounds;
// under the paper's oracle assumption the midpoint is the window's
// min/max average). A hysteresis margin keeps the router anchored to its
// previous choice unless a challenger is decisively better, so
// near-equal grids do not thrash jobs — and executor move-delay and
// cache warmth with them — back and forth every arrival.
type ForecastAware struct {
	// Hysteresis is the relative margin a challenger must clear; zero
	// selects DefaultHysteresis, negative disables hysteresis.
	Hysteresis float64

	last int
}

// NewForecastAware returns a forecast-driven router with the default
// hysteresis margin.
func NewForecastAware() *ForecastAware { return &ForecastAware{last: -1} }

// Name implements Router.
func (f *ForecastAware) Name() string { return "forecast-aware" }

// Reset implements Router.
func (f *ForecastAware) Reset() { f.last = -1 }

// score is the expected intensity over the job's span on one cluster.
func (f *ForecastAware) score(c ClusterState) float64 { return (c.Low + c.High) / 2 }

// Route implements Router.
func (f *ForecastAware) Route(_ JobInfo, clusters []ClusterState) int {
	best := 0
	for i := 1; i < len(clusters); i++ {
		if f.score(clusters[i]) < f.score(clusters[best]) {
			best = i
		}
	}
	margin := f.Hysteresis
	if margin == 0 {
		margin = DefaultHysteresis
	}
	if f.last >= 0 && f.last < len(clusters) && f.last != best {
		// Stick with the incumbent unless the challenger clears the
		// margin.
		if f.score(clusters[f.last]) <= f.score(clusters[best])*(1+margin) {
			return f.last
		}
	}
	f.last = best
	return best
}

package federation

import (
	"context"
	"fmt"

	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
)

// Signals supplies the routing-time carbon observations: the current
// intensity of a grid and forecast bounds over a horizon. The two
// implementations are a local trace-backed source (simulation) and an
// HTTP-backed source over the carbonapi service (the prototype's daemon
// path).
type Signals interface {
	Intensity(grid string, at float64) (float64, error)
	Bounds(grid string, at, horizon float64) (lo, hi float64, err error)
}

// TraceSignals reads intensities and bounds straight from local traces —
// the simulation path, exact and allocation-free.
type TraceSignals struct {
	Traces map[string]*carbon.Trace
	// Forecaster shapes the bounds; nil selects carbon.Oracle (the
	// paper's exact-forecast assumption).
	Forecaster carbon.Forecaster
}

func (s *TraceSignals) trace(grid string) (*carbon.Trace, error) {
	t, ok := s.Traces[grid]
	if !ok {
		return nil, fmt.Errorf("federation: no trace for grid %q", grid)
	}
	return t, nil
}

// Intensity implements Signals.
func (s *TraceSignals) Intensity(grid string, at float64) (float64, error) {
	t, err := s.trace(grid)
	if err != nil {
		return 0, err
	}
	return t.At(at), nil
}

// Bounds implements Signals.
func (s *TraceSignals) Bounds(grid string, at, horizon float64) (lo, hi float64, err error) {
	t, err := s.trace(grid)
	if err != nil {
		return 0, 0, err
	}
	f := s.Forecaster
	if f == nil {
		f = carbon.Oracle{}
	}
	lo, hi = f.Bounds(t, at, horizon)
	return lo, hi, nil
}

// ClientSignals polls a carbonapi HTTP server for every observation —
// the same path the prototype's quota daemon exercises (§5.1), so a
// router in front of live regional feeds is one base URL away.
type ClientSignals struct {
	Client *carbonapi.Client
	// Ctx bounds every request; nil selects context.Background (the
	// client's own HTTP timeout still applies).
	Ctx context.Context
}

func (s *ClientSignals) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// Intensity implements Signals.
func (s *ClientSignals) Intensity(grid string, at float64) (float64, error) {
	return s.Client.Intensity(s.ctx(), grid, at)
}

// Bounds implements Signals.
func (s *ClientSignals) Bounds(grid string, at, horizon float64) (lo, hi float64, err error) {
	return s.Client.Forecast(s.ctx(), grid, at, horizon)
}

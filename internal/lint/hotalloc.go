package lint

import (
	"go/ast"
	"go/types"
)

// HotPathMarker annotates a function whose steady-state execution must
// not allocate: Pick implementations, the simulator's view accessors,
// the solver inner loops — everything the AllocsPerRun guard tests pin.
// hotalloc statically checks the body of every annotated function for
// allocating constructs; the dynamic guards remain the ground truth,
// but the analyzer catches the regression at compile time instead of at
// test time (and covers branches a guard's fixed input never takes).
const HotPathMarker = "//pcaps:hotpath"

// hotAllocMarker waives one hotalloc finding. Legitimate reasons are
// narrow: amortized scratch growth that reaches a steady state (the
// solver's level ladder), or one-time lazy initialization on the first
// call (a policy's RNG). The reason is mandatory and inventoried.
const hotAllocMarker = "//hot:alloc"

// HotAlloc checks //pcaps:hotpath-annotated functions for allocating
// constructs: make/new, map writes, escaping composite literals and
// closures, append without reuse evidence, fmt calls, string
// concatenation and conversion, and interface boxing of non-pointer
// values.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs in //pcaps:hotpath-annotated functions",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcAnnotated(fn, HotPathMarker) {
				continue
			}
			p.checkHotFunc(fn)
		}
	}
}

// checkHotFunc walks one annotated function body.
func (p *Pass) checkHotFunc(fn *ast.FuncDecl) {
	reused := p.reusedSlices(fn)
	flag := func(n ast.Node, format string, args ...any) {
		if reason, waived := p.waiverAt(n, hotAllocMarker); waived {
			p.Waive(n.Pos(), hotAllocMarker, reason)
			return
		}
		p.Report(n.Pos(), format, args...)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			p.checkHotCall(n, reused, flag)
		case *ast.CompositeLit:
			switch p.typeOf(n).Underlying().(type) {
			case *types.Slice:
				flag(n, "slice literal allocates on the hot path")
			case *types.Map:
				flag(n, "map literal allocates on the hot path")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					flag(n, "&composite literal escapes to the heap on the hot path")
				}
			}
		case *ast.FuncLit:
			// A closure bound to a local variable and only called stays
			// on the stack; anything else (call argument, return value,
			// go/defer, field assignment) escapes.
			if !p.funcLitIsLocal(fn, n) {
				flag(n, "escaping closure allocates on the hot path")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := p.typeOf(idx.X).Underlying().(*types.Map); isMap {
						flag(n, "map write may allocate on the hot path")
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if tv, ok := p.Info.Types[n]; ok && tv.Value == nil {
					if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
						flag(n, "string concatenation allocates on the hot path")
					}
				}
			}
		case *ast.GoStmt:
			flag(n, "goroutine launch on the hot path")
		}
		return true
	})
}

// checkHotCall handles the call-shaped rules: builtins, fmt, string
// conversions, and interface boxing of arguments.
func (p *Pass) checkHotCall(call *ast.CallExpr, reused map[types.Object]bool, flag func(ast.Node, string, ...any)) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				flag(call, "make allocates on the hot path")
			case "new":
				flag(call, "new allocates on the hot path")
			case "append":
				if len(call.Args) > 0 && !p.appendHasReuseEvidence(call.Args[0], reused) {
					flag(call, "append without reuse evidence (reslice the destination with s[:0], or grow scratch outside the hot path)")
				}
			}
			return
		}
	}
	// Conversions: string([]byte), []byte(string), string([]rune), ...
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type.Underlying(), p.typeOf(call.Args[0]).Underlying()
		if isStringByteConversion(to, from) {
			flag(call, "string conversion allocates on the hot path")
		}
		return
	}
	// fmt.* always boxes its variadic operands.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkgPath, fname, ok := p.pkgLevelCallee(sel); ok && pkgPath == "fmt" {
			flag(call, "fmt.%s allocates (variadic boxing) on the hot path", fname)
			return
		}
	}
	// Interface boxing: a non-pointer concrete argument passed to an
	// interface-typed parameter is copied to the heap.
	sig, ok := p.calleeSignature(call)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := p.typeOf(arg)
		if at == nil || isUntypedNil(at) {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Interface, *types.Pointer:
			continue
		}
		flag(arg, "argument boxes %s into interface %s on the hot path", at, pt)
	}
}

// reusedSlices collects objects assigned from a reslice expression —
// X = X[:0] (in-place scratch reset) or X := Y[:0] (a view over
// preallocated scratch). Appending to either reuses existing backing
// storage at steady state.
func (p *Pass) reusedSlices(fn *ast.FuncDecl) map[types.Object]bool {
	reused := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if _, ok := ast.Unparen(rhs).(*ast.SliceExpr); !ok || i >= len(assign.Lhs) {
				continue
			}
			if lobj := p.objectOf(assign.Lhs[i]); lobj != nil {
				reused[lobj] = true
			}
		}
		return true
	})
	return reused
}

// appendHasReuseEvidence accepts append destinations that are reslices
// (append(s[:0], ...)) or objects resliced in place elsewhere in the
// function (s = s[:0]; ...; s = append(s, ...)).
func (p *Pass) appendHasReuseEvidence(dst ast.Expr, reused map[types.Object]bool) bool {
	dst = ast.Unparen(dst)
	if _, ok := dst.(*ast.SliceExpr); ok {
		return true
	}
	if obj := p.objectOf(dst); obj != nil && reused[obj] {
		return true
	}
	return false
}

// funcLitIsLocal reports whether the closure is the RHS of a
// short-variable declaration or assignment to a plain local identifier.
func (p *Pass) funcLitIsLocal(fn *ast.FuncDecl, lit *ast.FuncLit) bool {
	local := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if ast.Unparen(rhs) != lit || i >= len(assign.Lhs) {
				continue
			}
			if _, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok {
				local = true
			}
		}
		return true
	})
	return local
}

// calleeSignature resolves the called function's signature, if the call
// is an ordinary (non-builtin, non-conversion) call.
func (p *Pass) calleeSignature(call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

// paramTypeAt returns the type of parameter i, expanding the variadic
// tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := params.At(n - 1).Type()
		if slice, ok := last.(*types.Slice); ok {
			return slice.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return params.At(i).Type()
}

func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

func isUntypedNil(t types.Type) bool {
	basic, ok := t.(*types.Basic)
	return ok && basic.Kind() == types.UntypedNil
}

func isStringByteConversion(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	basic, ok := t.(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	slice, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	elem, ok := slice.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	k := elem.Kind()
	return k == types.Uint8 || k == types.Int32
}

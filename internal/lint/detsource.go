package lint

import (
	"go/ast"
	"go/types"
)

// detAmbientMarker waives one detsource finding. The reason is
// mandatory and inventoried: ambient inputs are only ever legitimate
// when the measured quantity is itself wall-clock (fig20's live Pick
// latency) — everything else breaks run purity.
const detAmbientMarker = "//det:ambient"

// detForbidden maps package path → function name → explanation. Only
// package-level functions are matched: rand.Intn (global source) is
// forbidden, (*rand.Rand).Intn on a seeded generator is fine.
var detForbidden = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock input; derive times from the simulation clock",
		"Since": "wall-clock input; derive durations from the simulation clock",
		"Until": "wall-clock input; derive durations from the simulation clock",
	},
	"os": {
		"Getenv":    "ambient environment read; thread configuration through Config/Spec",
		"LookupEnv": "ambient environment read; thread configuration through Config/Spec",
		"Environ":   "ambient environment read; thread configuration through Config/Spec",
	},
}

// detRandGlobals are the math/rand package-level functions that draw
// from the shared global source. Constructors (New, NewSource, NewZipf)
// are allowed — they are how seeded generators are built.
var detRandGlobals = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

// DetSource forbids ambient inputs — wall-clock time, the global
// math/rand source, environment variables, and literal-constant RNG
// seeds — in the determinism-critical packages. A run must be a pure
// function of (spec, jobs, seed); any of these constructs makes it a
// function of the machine it ran on.
var DetSource = &Analyzer{
	Name:     "detsource",
	Doc:      "forbid wall-clock, global-randomness, and environment reads in determinism-critical packages",
	Packages: inDetPackages("detsource"),
	Run:      runDetSource,
}

func runDetSource(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, fname, ok := p.pkgLevelCallee(sel)
			if !ok {
				return true
			}
			if why := detForbiddenWhy(pkgPath, fname); why != "" {
				if reason, waived := p.waiverAt(call, detAmbientMarker); waived {
					p.Waive(call.Pos(), detAmbientMarker, reason)
					return true
				}
				p.Report(call.Pos(), "%s.%s: %s", pkgImportName(pkgPath), fname, why)
				return true
			}
			// Seeded construction is allowed, but the seed must come
			// from somewhere — a literal constant hard-codes one stream
			// for every run and bypasses internal/seed's domain
			// separation.
			if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && fname == "NewSource" && len(call.Args) == 1 {
				if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok {
					if reason, waived := p.waiverAt(call, detAmbientMarker); waived {
						p.Waive(call.Pos(), detAmbientMarker, reason)
						return true
					}
					p.Report(call.Pos(), "rand.NewSource(%s): literal RNG seed; derive seeds via internal/seed", lit.Value)
				}
			}
			return true
		})
	}
}

func detForbiddenWhy(pkgPath, fname string) string {
	if m, ok := detForbidden[pkgPath]; ok {
		return m[fname]
	}
	if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && detRandGlobals[fname] {
		return "draws from the shared global source; construct a *rand.Rand from a seed derived via internal/seed"
	}
	return ""
}

// pkgLevelCallee resolves pkg.Fn selector calls to (package path,
// function name). Method calls and non-package selectors return ok =
// false.
func (p *Pass) pkgLevelCallee(sel *ast.SelectorExpr) (string, string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	obj, ok := p.Info.Uses[id]
	if !ok {
		return "", "", false
	}
	pkgName, ok := obj.(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pkgName.Imported().Path(), sel.Sel.Name, true
}

func pkgImportName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

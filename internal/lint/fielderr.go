package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"net/http"
	"strings"
)

// FieldErrSinkMarker designates the one blessed 400 writer in an API
// package: a function that takes the typed error and answers
// http.StatusBadRequest with its field-naming message. All other 400
// writes are violations — routing every rejection through the sink is
// what lets the analyzer check, at each call site, that the error is
// typed.
const FieldErrSinkMarker = "//pcaps:fielderr-sink"

// errUntypedMarker waives one untyped-400 finding; errUnknownFieldsMarker
// waives one missing-DisallowUnknownFields finding. Reasons are
// mandatory and inventoried.
const (
	errUntypedMarker       = "//err:untyped"
	errUnknownFieldsMarker = "//err:unknownfields"
)

// FieldErr enforces the carbonapi error contract (DESIGN.md §§4–6):
// every 400-path originates from a typed field-naming error
// (*ParamError, or a sentinel guarded via errors.Is/errors.As — the
// ErrInvalidScenario / ErrInvalidPlacement conventions), and every
// json.Decoder in handler code calls DisallowUnknownFields so a
// misspelled request field is rejected by name instead of silently
// taking a default.
var FieldErr = &Analyzer{
	Name: "fielderr",
	Doc:  "require typed field-naming errors on 400 paths and DisallowUnknownFields on handler decoders",
	Packages: func(path string) bool {
		return path == "pcaps/internal/carbonapi" ||
			(strings.Contains(path, "testdata") && strings.HasSuffix(path, "/fielderr"))
	},
	Run: runFieldErr,
}

func runFieldErr(p *Pass) {
	sinks := p.fieldErrSinks()
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			isSink := funcAnnotated(fn, FieldErrSinkMarker)
			p.checkBadRequestWrites(fn, isSink)
			p.checkSinkCalls(fn, sinks)
			if p.isHandlerFunc(fn) {
				p.checkDecoders(fn)
			}
		}
	}
}

// fieldErrSinks collects the objects of //pcaps:fielderr-sink-annotated
// functions in this package.
func (p *Pass) fieldErrSinks() map[types.Object]bool {
	sinks := make(map[types.Object]bool)
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !funcAnnotated(fn, FieldErrSinkMarker) {
				continue
			}
			if obj := p.Info.Defs[fn.Name]; obj != nil {
				sinks[obj] = true
			}
		}
	}
	return sinks
}

// checkBadRequestWrites flags direct 400 writes (http.Error or
// WriteHeader with StatusBadRequest) outside the annotated sink.
func (p *Pass) checkBadRequestWrites(fn *ast.FuncDecl, isSink bool) {
	if isSink {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if !p.isBadRequestConst(arg) {
				continue
			}
			if reason, waived := p.waiverAt(call, errUntypedMarker); waived {
				p.Waive(call.Pos(), errUntypedMarker, reason)
				return true
			}
			p.Report(call.Pos(), "direct 400 write: route rejections through the %s sink with a typed field-naming error", FieldErrSinkMarker)
			return true
		}
		return true
	})
}

// isBadRequestConst reports whether the expression is the constant 400.
func (p *Pass) isBadRequestConst(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v == http.StatusBadRequest
}

// checkSinkCalls verifies that every call to a sink passes a typed
// error: static type *ParamError, or an identifier guarded by
// errors.Is against an ErrInvalid* sentinel (or errors.As into a
// *ParamError) in an enclosing if condition.
func (p *Pass) checkSinkCalls(fn *ast.FuncDecl, sinks map[types.Object]bool) {
	if len(sinks) == 0 {
		return
	}
	var stack []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := p.calleeObject(call)
			if callee == nil || !sinks[callee] {
				return true
			}
			for _, arg := range call.Args {
				if !p.isErrorTyped(arg) {
					continue
				}
				if p.isTypedFieldError(arg) || p.guardedTyped(stack, arg) {
					continue
				}
				if reason, waived := p.waiverAt(call, errUntypedMarker); waived {
					p.Waive(call.Pos(), errUntypedMarker, reason)
					continue
				}
				p.Report(arg.Pos(), "untyped error reaches the 400 sink: construct a *ParamError naming the offending field, or guard with errors.Is/errors.As against a typed rejection")
			}
			return true
		})
	}
	walk(fn.Body)
}

// isErrorTyped reports whether the expression's static type implements
// (or is) error.
func (p *Pass) isErrorTyped(e ast.Expr) bool {
	t := p.typeOf(e)
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	return types.AssignableTo(t, errType)
}

// isTypedFieldError accepts expressions whose static type is
// *ParamError (any package — internal/sched's and internal/carbonapi's
// conventions share the name and Field+Msg shape).
func (p *Pass) isTypedFieldError(e ast.Expr) bool {
	return isParamErrorType(p.typeOf(e))
}

func isParamErrorType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "ParamError"
}

// guardedTyped reports whether the argument identifier is, in one of
// the enclosing if conditions, checked with errors.Is against an
// ErrInvalid* sentinel or errors.As into a *ParamError.
func (p *Pass) guardedTyped(stack []ast.Node, arg ast.Expr) bool {
	obj := p.objectOf(arg)
	if obj == nil {
		return false
	}
	for _, n := range stack {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		if p.condProvesTyped(ifStmt.Cond, obj) {
			return true
		}
	}
	return false
}

// condProvesTyped scans a condition for errors.Is(obj, ErrInvalid*) or
// errors.As(obj, &(*ParamError)).
func (p *Pass) condProvesTyped(cond ast.Expr, obj types.Object) bool {
	proved := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, fname, ok := p.pkgLevelCallee(sel)
		if !ok || pkgPath != "errors" || len(call.Args) != 2 {
			return true
		}
		if p.objectOf(call.Args[0]) != obj {
			return true
		}
		switch fname {
		case "Is":
			if target := p.objectOf(call.Args[1]); target != nil && strings.HasPrefix(target.Name(), "ErrInvalid") {
				proved = true
			}
		case "As":
			if unary, ok := ast.Unparen(call.Args[1]).(*ast.UnaryExpr); ok {
				if isParamErrorType(p.typeOf(unary.X)) {
					proved = true
				}
			}
		}
		return !proved
	})
	return proved
}

// isHandlerFunc reports whether the function takes an
// http.ResponseWriter parameter — the analyzer's definition of
// "handler code". Client-side decoders (reading responses we produced)
// are exempt: DisallowUnknownFields there would break forward
// compatibility with a newer server.
func (p *Pass) isHandlerFunc(fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok {
			continue
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			continue
		}
		if named.Obj().Name() == "ResponseWriter" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net/http" {
			return true
		}
	}
	return false
}

// checkDecoders requires DisallowUnknownFields on every json.Decoder
// whose Decode runs inside a handler function.
func (p *Pass) checkDecoders(fn *ast.FuncDecl) {
	// Objects on which DisallowUnknownFields is called.
	strict := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "DisallowUnknownFields" {
			return true
		}
		if obj := p.objectOf(sel.X); obj != nil {
			strict[obj] = true
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Decode" || !p.isJSONDecoder(sel.X) {
			return true
		}
		if obj := p.objectOf(sel.X); obj != nil && strict[obj] {
			return true
		}
		if reason, waived := p.waiverAt(call, errUnknownFieldsMarker); waived {
			p.Waive(call.Pos(), errUnknownFieldsMarker, reason)
			return true
		}
		p.Report(call.Pos(), "handler decoder without DisallowUnknownFields: a misspelled request field would silently take a default")
		return true
	})
}

// isJSONDecoder reports whether the expression is an
// *encoding/json.Decoder.
func (p *Pass) isJSONDecoder(e ast.Expr) bool {
	t := p.typeOf(e)
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Decoder" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "encoding/json"
}

// calleeObject resolves the called function to its object (plain ident
// or method/selector call).
func (p *Pass) calleeObject(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		return p.Info.Uses[fun.Sel]
	}
	return nil
}

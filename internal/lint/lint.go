// Package lint implements pcapslint, the repository's custom static
// analyzer suite. Every result in this reproduction rests on one
// invariant — a run is a pure function of (spec, jobs, seed) — and the
// golden/race/alloc tests enforce it only dynamically: a stray
// time.Now, an unseeded math/rand call, or an unsorted map range can
// survive until a golden flakes. The four analyzers here turn those
// determinism, hot-path, and API-error contracts (DESIGN.md §§3–7) into
// machine-checked source-level rules:
//
//	detsource — no ambient time/randomness/environment in
//	            determinism-critical packages
//	maporder  — no order-dependent map iteration there either
//	hotalloc  — functions annotated //pcaps:hotpath must not contain
//	            allocating constructs
//	fielderr  — every 400-path in internal/carbonapi originates from a
//	            typed field-naming error, and handler-side JSON decoders
//	            reject unknown fields
//
// The suite is modelled on golang.org/x/tools/go/analysis but is built
// on the standard library alone (go/ast + go/types over `go list
// -export` data), because the module is deliberately dependency-free:
// pcapslint must be runnable in the same hermetic environment as the
// tier-1 tests. The driver lives in cmd/pcapslint and is wired through
// `make lint` / `make vet`; DESIGN.md §8 documents each analyzer's
// contract and waiver syntax.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Pass carries one type-checked package through an analyzer, mirroring
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags   []Diagnostic
	waivers []Waiver
	// analyzer is the pass owner; set by Run.
	analyzer *Analyzer
	// comments caches per-file line→comment-text lookups for waiver
	// scanning.
	comments map[*ast.File]lineComments
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Waiver records one annotation that suppressed a diagnostic. Waivers
// are not silent: the driver inventories every one so that exceptions
// to the contracts stay visible in `make lint` output.
type Waiver struct {
	Analyzer string
	Pos      token.Position
	Marker   string // the annotation, e.g. "//det:unordered"
	Reason   string
}

func (w Waiver) String() string {
	return fmt.Sprintf("%s: %s: waived [%s] %s", w.Pos, w.Analyzer, w.Marker, w.Reason)
}

// Analyzer is one static check. Run appends findings via Pass.Report
// and waiver records via Pass.Waive.
type Analyzer struct {
	Name string
	Doc  string
	// Packages restricts the analyzer to import paths for which the
	// predicate returns true; nil means every loaded package.
	Packages func(path string) bool
	Run      func(*Pass)
}

// Report records a violation at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Waive records that the annotation at pos suppressed a finding.
func (p *Pass) Waive(pos token.Pos, marker, reason string) {
	p.waivers = append(p.waivers, Waiver{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Marker:   marker,
		Reason:   reason,
	})
}

// lineComments maps a line number to the comment texts that start on it.
type lineComments map[int][]string

// waiverAt looks for a waiver annotation with the given marker (e.g.
// "//det:unordered") attached to the node: on the node's own line or on
// the line directly above it. It returns the trimmed reason and whether
// the annotation was found; an annotation without a reason does not
// count — waivers must say why.
func (p *Pass) waiverAt(node ast.Node, marker string) (string, bool) {
	file := p.fileOf(node.Pos())
	if file == nil {
		return "", false
	}
	if p.comments == nil {
		p.comments = make(map[*ast.File]lineComments)
	}
	lc, ok := p.comments[file]
	if !ok {
		lc = make(lineComments)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				line := p.Fset.Position(c.Pos()).Line
				lc[line] = append(lc[line], c.Text)
			}
		}
		p.comments[file] = lc
	}
	line := p.Fset.Position(node.Pos()).Line
	for _, l := range []int{line, line - 1} {
		for _, text := range lc[l] {
			if reason, ok := waiverReason(text, marker); ok {
				return reason, true
			}
		}
	}
	return "", false
}

// waiverReason parses "//<marker> <reason>" comment text. The marker
// must match exactly (e.g. "//det:unordered"); a non-empty reason is
// required for the waiver to take effect.
func waiverReason(comment, marker string) (string, bool) {
	text := strings.TrimSpace(comment)
	if !strings.HasPrefix(text, marker) {
		return "", false
	}
	rest := text[len(marker):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //det:unorderedX
	}
	reason := strings.TrimSpace(rest)
	if reason == "" {
		return "", false
	}
	return reason, true
}

func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// funcAnnotated reports whether the function declaration's doc comment
// carries the given marker (e.g. "//pcaps:hotpath") as a standalone
// directive line.
func funcAnnotated(fn *ast.FuncDecl, marker string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// DetPackages is the determinism-critical package set of DESIGN.md §§3,
// 5, 7: everything on the simulate/schedule/solve path whose output is
// pinned by goldens and serial-vs-parallel equality. detsource and
// maporder run here.
var DetPackages = []string{
	"pcaps/internal/sim",
	"pcaps/internal/sched",
	"pcaps/internal/optimal",
	"pcaps/internal/core",
	"pcaps/internal/ksearch",
	"pcaps/internal/experiments",
	"pcaps/internal/scenario",
	"pcaps/internal/federation",
	"pcaps/internal/workload",
	"pcaps/internal/arrivals",
}

// inDetPackages matches the determinism-critical set. Fixture packages
// (internal/lint/testdata) opt in by ending their import path with the
// analyzer's name, so the contract is testable outside the real tree.
func inDetPackages(name string) func(string) bool {
	return func(path string) bool {
		for _, p := range DetPackages {
			if path == p {
				return true
			}
		}
		return strings.HasSuffix(path, "/"+name) && strings.Contains(path, "testdata")
	}
}

// Suite returns the four analyzers in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{DetSource, MapOrder, HotAlloc, FieldErr}
}

// Result is the outcome of running a suite over loaded packages.
type Result struct {
	Diagnostics []Diagnostic
	Waivers     []Waiver
}

// Run applies each analyzer to each loaded package it matches and
// returns all findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	var res Result
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Packages != nil && !a.Packages(pkg.PkgPath) {
				continue
			}
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				analyzer: a,
			}
			a.Run(pass)
			res.Diagnostics = append(res.Diagnostics, pass.diags...)
			res.Waivers = append(res.Waivers, pass.waivers...)
		}
	}
	sortByPos := func(pi, pj token.Position) bool {
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		return sortByPos(res.Diagnostics[i].Pos, res.Diagnostics[j].Pos)
	})
	sort.Slice(res.Waivers, func(i, j int) bool {
		return sortByPos(res.Waivers[i].Pos, res.Waivers[j].Pos)
	})
	return res
}

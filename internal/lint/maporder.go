package lint

import (
	"go/ast"
	"go/types"
)

// detUnorderedMarker waives one maporder finding: the author asserts the
// loop body is genuinely order-independent (e.g. integer counting,
// set membership collection that is sorted elsewhere). The reason is
// mandatory and inventoried. Note that float accumulation is NOT
// order-independent — addition does not associate in IEEE 754.
const detUnorderedMarker = "//det:unordered"

// MapOrder flags `for range` over map values in determinism-critical
// packages. Go randomizes map iteration order per run, so any map range
// whose body's effect depends on visit order silently breaks the
// serial-vs-parallel and golden guarantees. A range is accepted without
// a waiver only when it provably feeds a sort: the loop body collects
// keys or values into slices, and every one of those slices is passed
// to a sort.* / slices.Sort* call later in the same function.
var MapOrder = &Analyzer{
	Name:     "maporder",
	Doc:      "flag order-dependent map iteration in determinism-critical packages",
	Packages: inDetPackages("maporder"),
	Run:      runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			p.checkMapRanges(fn)
		}
	}
}

func (p *Pass) checkMapRanges(fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if reason, waived := p.waiverAt(rng, detUnorderedMarker); waived {
			p.Waive(rng.Pos(), detUnorderedMarker, reason)
			return true
		}
		if p.feedsSort(fn, rng) {
			return true
		}
		p.Report(rng.Pos(), "range over map %s: iteration order is randomized; collect and sort keys, or annotate %s <reason>",
			types.ExprString(rng.X), detUnorderedMarker)
		return true
	})
}

// feedsSort reports whether every slice the loop body appends to is
// subsequently passed to a recognized sorting call within the same
// function. A loop that appends to nothing (or to something never
// sorted) does not qualify.
func (p *Pass) feedsSort(fn *ast.FuncDecl, rng *ast.RangeStmt) bool {
	// Collect the objects appended to inside the loop body.
	var appended []types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !p.isBuiltin(call.Fun, "append") || len(call.Args) == 0 {
				continue
			}
			// The append target must be the assignee (s = append(s, ...)).
			if i >= len(assign.Lhs) {
				continue
			}
			if obj := p.objectOf(assign.Lhs[i]); obj != nil {
				appended = append(appended, obj)
			}
		}
		return true
	})
	if len(appended) == 0 {
		return false
	}
	// Every appended slice must reach a sort call later in the function.
	for _, obj := range appended {
		if !p.sortedAfter(fn, rng, obj) {
			return false
		}
	}
	return true
}

// sortedAfter reports whether obj is an argument of a sort.* or
// slices.Sort* call positioned after the range statement in fn.
func (p *Pass) sortedAfter(fn *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, fname, ok := p.pkgLevelCallee(sel)
		if !ok {
			return true
		}
		isSort := pkgPath == "sort" ||
			(pkgPath == "slices" && len(fname) >= 4 && fname[:4] == "Sort")
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if p.objectOf(arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// objectOf resolves an expression to the variable it names, seeing
// through parentheses. Selector expressions resolve to the field.
func (p *Pass) objectOf(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[e]; obj != nil {
			return obj
		}
		return p.Info.Defs[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	}
	return nil
}

// isBuiltin reports whether fun names the given predeclared builtin.
func (p *Pass) isBuiltin(fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := p.Info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

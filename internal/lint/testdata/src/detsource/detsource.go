// Package detsource is a pcapslint fixture: its import path opts into
// the determinism-critical set, and each construct below carries a
// `// want` or `// waived` marker the analyzer tests assert against.
package detsource

import (
	"math/rand"
	"os"
	"time"
)

// wallClock uses ambient time twice; both calls are violations.
func wallClock() time.Duration {
	start := time.Now()      // want `time\.Now: wall-clock input`
	return time.Since(start) // want `time\.Since: wall-clock input`
}

// globalRand draws from math/rand's shared global source.
func globalRand() int {
	return rand.Intn(10) // want `rand\.Intn: draws from the shared global source`
}

// envRead pulls configuration out of the ambient environment.
func envRead() string {
	return os.Getenv("PCAPS_MODE") // want `os\.Getenv: ambient environment read`
}

// fixedSeed hard-codes one RNG stream for every run.
func fixedSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `literal RNG seed`
}

// seeded builds a generator from a seed threaded in by the caller —
// the sanctioned construction, no finding.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// perRand calls Intn on a seeded *rand.Rand, not the global source —
// allowed.
func perRand(r *rand.Rand) int {
	return r.Intn(10)
}

// measuredLatency is the one legitimate ambient-time shape: the
// measured quantity is itself wall-clock, and the waiver says so.
func measuredLatency() int64 {
	//det:ambient fixture: the measured quantity is wall-clock itself
	t0 := time.Now() // waived `det:ambient fixture: the measured quantity is wall-clock itself`
	return t0.UnixNano()
}

// Package hotalloc is a pcapslint fixture: functions annotated
// //pcaps:hotpath are checked for allocating constructs, and each
// construct below carries a `// want` or `// waived` marker the
// analyzer tests assert against.
package hotalloc

import "fmt"

type scratch struct {
	buf  []int
	name string
}

func sink(v any) {}

// hotMake allocates a fresh slice every call.
//
//pcaps:hotpath
func hotMake(n int) []int {
	return make([]int, n) // want `make allocates`
}

// hotNew heap-allocates per call.
//
//pcaps:hotpath
func hotNew() *scratch {
	return new(scratch) // want `new allocates`
}

// hotAppend grows a nil slice with no reuse evidence.
//
//pcaps:hotpath
func hotAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append without reuse evidence`
	}
	return out
}

// hotReuse appends into a reslice of preallocated scratch — the
// sanctioned shape, no finding.
//
//pcaps:hotpath
func (s *scratch) hotReuse(xs []int) []int {
	out := s.buf[:0]
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// hotLit builds a slice literal per call.
//
//pcaps:hotpath
func hotLit() []int {
	return []int{1, 2, 3} // want `slice literal allocates`
}

// hotAddr escapes a composite literal to the heap.
//
//pcaps:hotpath
func hotAddr() *scratch {
	return &scratch{} // want `&composite literal escapes`
}

// hotClosure passes a closure to a callee, forcing it to escape.
//
//pcaps:hotpath
func hotClosure(visit func(func(int))) {
	visit(func(x int) {}) // want `escaping closure allocates`
}

// hotLocalClosure binds the closure to a local and only calls it — it
// stays on the stack, no finding.
//
//pcaps:hotpath
func hotLocalClosure(n int) int {
	double := func(x int) int { return 2 * x }
	return double(n)
}

// hotMapWrite may trigger a bucket allocation.
//
//pcaps:hotpath
func hotMapWrite(counts map[string]int, k string) {
	counts[k] = 1 // want `map write may allocate`
}

// hotConcat builds a new string per call.
//
//pcaps:hotpath
func (s *scratch) hotConcat(prefix string) string {
	return prefix + s.name // want `string concatenation allocates`
}

// hotBytes copies the string's bytes to a fresh slice.
//
//pcaps:hotpath
func hotBytes(s string) []byte {
	return []byte(s) // want `string conversion allocates`
}

// hotSprintf allocates via variadic boxing and the formatted result.
//
//pcaps:hotpath
func hotSprintf(n int) string {
	return fmt.Sprintf("n=%d", n) // want `fmt\.Sprintf allocates`
}

// hotBox passes a non-pointer value to an interface parameter.
//
//pcaps:hotpath
func hotBox(x int) {
	sink(x) // want `boxes int into interface`
}

// hotGo launches a goroutine, allocating its stack.
//
//pcaps:hotpath
func hotGo(f func()) {
	go f() // want `goroutine launch`
}

// hotLazyGrow is amortized scratch growth, waived with a reason.
//
//pcaps:hotpath
func (s *scratch) hotLazyGrow(n int) {
	if cap(s.buf) < n {
		//hot:alloc fixture: one-time scratch growth to the high-water mark
		s.buf = make([]int, n) // waived `hot:alloc fixture: one-time scratch growth to the high-water mark`
	}
	s.buf = s.buf[:n]
}

// hotBareWaiver carries a marker with no reason — it does not count,
// and the finding stands.
//
//pcaps:hotpath
func hotBareWaiver(n int) []int {
	//hot:alloc
	return make([]int, n) // want `make allocates`
}

// coldPath is unannotated: the same constructs are fine off the hot
// path.
func coldPath(n int) []int {
	return make([]int, n)
}

// Package fielderr is a pcapslint fixture: a self-contained mirror of
// the carbonapi error contract — one blessed sink, a ParamError type,
// an ErrInvalid* sentinel — with `// want` and `// waived` markers the
// analyzer tests assert against.
package fielderr

import (
	"encoding/json"
	"errors"
	"net/http"
)

var ErrInvalidThing = errors.New("thing: invalid")

type ParamError struct {
	Param string
	Msg   string
}

func (e *ParamError) Error() string { return e.Param + ": " + e.Msg }

// badRequest is the blessed 400 writer.
//
//pcaps:fielderr-sink
func badRequest(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// direct writes a 400 without going through the sink.
func direct(w http.ResponseWriter) {
	http.Error(w, "nope", http.StatusBadRequest) // want `direct 400 write`
}

// typed routes a *ParamError through the sink — the sanctioned shape.
func typed(w http.ResponseWriter) {
	badRequest(w, &ParamError{Param: "n", Msg: "must be positive"})
}

// untyped hands the sink a bare error with no field-naming guarantee.
func untyped(w http.ResponseWriter, err error) {
	badRequest(w, err) // want `untyped error reaches the 400 sink`
}

// guardedIs reaches the sink only after errors.Is proves the rejection
// is the typed sentinel — allowed.
func guardedIs(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrInvalidThing) {
		badRequest(w, err)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// guardedAs reaches the sink only after errors.As proves the error is
// a *ParamError — allowed.
func guardedAs(w http.ResponseWriter, err error) {
	var pe *ParamError
	if errors.As(err, &pe) {
		badRequest(w, err)
	}
}

// waivedSink suppresses the untyped finding with a reasoned waiver.
func waivedSink(w http.ResponseWriter, err error) {
	//err:untyped fixture: upstream already formats field-shaped messages
	badRequest(w, err) // waived `err:untyped fixture: upstream already formats field-shaped messages`
}

// decodeLoose decodes a request body without DisallowUnknownFields, so
// a misspelled field silently takes its default.
func decodeLoose(w http.ResponseWriter, r *http.Request) {
	var v struct{ N int }
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&v); err != nil { // want `handler decoder without DisallowUnknownFields`
		badRequest(w, &ParamError{Param: "body", Msg: err.Error()})
	}
}

// decodeStrict is the sanctioned handler-decoder shape.
func decodeStrict(w http.ResponseWriter, r *http.Request) {
	var v struct{ N int }
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		badRequest(w, &ParamError{Param: "body", Msg: err.Error()})
	}
}

// decodeWaived suppresses the decoder finding with a reasoned waiver.
func decodeWaived(w http.ResponseWriter, r *http.Request) {
	var v struct{ N int }
	dec := json.NewDecoder(r.Body)
	//err:unknownfields fixture: mirror endpoint accepts forward-compatible payloads
	if err := dec.Decode(&v); err != nil { // waived `err:unknownfields fixture: mirror endpoint accepts forward-compatible payloads`
		badRequest(w, &ParamError{Param: "body", Msg: err.Error()})
	}
}

// clientDecode has no ResponseWriter parameter: it is client code, and
// the unknown-fields rule does not apply.
func clientDecode(r *http.Request) int {
	var v struct{ N int }
	dec := json.NewDecoder(r.Body)
	_ = dec.Decode(&v)
	return v.N
}

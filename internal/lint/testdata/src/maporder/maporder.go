// Package maporder is a pcapslint fixture: its import path opts into
// the determinism-critical set, and each construct below carries a
// `// want` or `// waived` marker the analyzer tests assert against.
package maporder

import "sort"

// sumFloats folds map values in iteration order; float addition does
// not associate, so the result depends on the randomized order.
func sumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `range over map m: iteration order is randomized`
		total += v
	}
	return total
}

// collectsUnsorted appends keys but never sorts them, so callers see a
// randomized slice.
func collectsUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map m: iteration order is randomized`
		keys = append(keys, k)
	}
	return keys
}

// collectsSorted is the sanctioned shape: every slice the loop feeds
// reaches a sort call afterwards, so no finding.
func collectsSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// countsWaived iterates only to count; the author asserts order
// independence with a reasoned waiver.
func countsWaived(m map[string]int) int {
	n := 0
	//det:unordered fixture: integer counting is independent of visit order
	for range m { // waived `det:unordered fixture: integer counting is independent of visit order`
		n++
	}
	return n
}

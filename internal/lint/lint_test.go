package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// markerRe matches the fixture expectation syntax: `// want `<regex>“
// expects a diagnostic on that line whose message matches, and
// `// waived `<regex>“ expects a recorded waiver whose "marker reason"
// string matches. This is the analysistest convention, reduced to what
// the homegrown driver needs.
var markerRe = regexp.MustCompile("// (want|waived) `([^`]+)`")

// runFixture loads testdata/src/<name> as a package, runs one analyzer
// over it, and checks the diagnostics and waivers against the fixture's
// inline markers — every marker must be hit, and nothing unexpected may
// be reported.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir("../..", dir, "pcaps/internal/lint/testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	res := Run([]*Package{pkg}, []*Analyzer{a})

	type expect struct {
		kind string // "want" or "waived"
		re   *regexp.Regexp
		hit  bool
	}
	expects := make(map[string][]*expect) // "file:line" → expectations
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range markerRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s:%d: bad marker pattern %q: %v", path, i+1, m[2], err)
				}
				key := fmt.Sprintf("%s:%d", path, i+1)
				expects[key] = append(expects[key], &expect{kind: m[1], re: re})
			}
		}
	}

	match := func(kind, key, text string) bool {
		for _, e := range expects[key] {
			if e.kind == kind && !e.hit && e.re.MatchString(text) {
				e.hit = true
				return true
			}
		}
		return false
	}
	for _, d := range res.Diagnostics {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if !match("want", key, d.Message) {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for _, w := range res.Waivers {
		key := fmt.Sprintf("%s:%d", w.Pos.Filename, w.Pos.Line)
		if !match("waived", key, strings.TrimPrefix(w.Marker, "//")+" "+w.Reason) {
			t.Errorf("unexpected waiver at %s: [%s] %s", key, w.Marker, w.Reason)
		}
	}
	for key, list := range expects {
		for _, e := range list {
			if !e.hit {
				t.Errorf("%s: expected %s matching %q, got none", key, e.kind, e.re)
			}
		}
	}
}

func TestDetSourceFixture(t *testing.T) { runFixture(t, DetSource, "detsource") }
func TestMapOrderFixture(t *testing.T)  { runFixture(t, MapOrder, "maporder") }
func TestHotAllocFixture(t *testing.T)  { runFixture(t, HotAlloc, "hotalloc") }
func TestFieldErrFixture(t *testing.T)  { runFixture(t, FieldErr, "fielderr") }

// TestRepoIsClean runs the whole suite over the real module: the lint
// gate is part of the test suite, not only of `make lint`, so a
// violation cannot land through a path that skips the Makefile.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint skipped in -short mode")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	res := Run(pkgs, Suite())
	for _, d := range res.Diagnostics {
		t.Errorf("%s", d)
	}
}

// Package loading for pcapslint. The suite type-checks real packages
// with the standard library alone: `go list -export -deps -json`
// supplies compiled export data (from the build cache) for every
// dependency, and the listed packages' own sources are parsed and
// checked against it. This is the same shape golang.org/x/tools'
// go/packages driver uses, reduced to what four analyzers need — one
// syntax+types view per non-test compilation unit.

package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir over the given
// patterns and decodes the JSON stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}
	return pkgs, nil
}

// exportLookup adapts a path→export-file map to the gc importer's
// lookup interface.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load lists the patterns in dir (a module directory) and type-checks
// every matched package's non-test compilation unit. Test files are
// excluded by construction (GoFiles only): the contracts govern
// shipped code, and goldens/alloc guards already police the tests.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		exports[p.ImportPath] = p.Export
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	var pkgs []*Package
	for _, t := range targets {
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{
			Importer: importer.ForCompiler(fset, "gc", exportLookup(exports)),
		}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: t.ImportPath,
			Dir:     t.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}

// LoadDir parses every .go file directly inside dir as one package and
// type-checks it, resolving imports through export data listed from
// moduleDir. This is the fixture loader: testdata packages are invisible
// to `go list ./...`, but their imports (stdlib or module-internal) are
// still listable.
func LoadDir(moduleDir, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", e.Name(), err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		patterns := make([]string, 0, len(importSet))
		for p := range importSet {
			patterns = append(patterns, p)
		}
		listed, err := goList(moduleDir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			exports[p.ImportPath] = p.Export
		}
	}
	info := newInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", exportLookup(exports)),
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		PkgPath: importPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// Package seed derives domain-separated RNG seeds from a base seed and
// an identity: a string domain plus integer coordinates, hashed with
// FNV-1a. Both the experiment engine (per-cell seeds, so serial and
// parallel sweeps draw identical randomness) and the federation layer
// (per-cluster simulation seeds) build their determinism guarantees on
// this one recipe — changing it invalidates recorded outputs everywhere,
// which is exactly why it lives in one place.
package seed

import (
	"encoding/binary"
	"hash/fnv"
)

// Derive hashes the base seed, the domain string, and the coordinates
// into a non-negative seed. The result is a pure function of its
// arguments: two identities differing in any component (or in
// coordinate order) get independent streams, and the same identity
// always gets the same stream.
func Derive(base int64, domain string, coords ...int64) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(base))
	h.Write(buf[:])
	h.Write([]byte(domain))
	for _, c := range coords {
		binary.LittleEndian.PutUint64(buf[:], uint64(c))
		h.Write(buf[:])
	}
	return int64(h.Sum64() >> 1)
}

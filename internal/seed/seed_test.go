package seed

import "testing"

func TestDeriveStableAndSeparated(t *testing.T) {
	a := Derive(42, "DE", 25, 0)
	if a != Derive(42, "DE", 25, 0) {
		t.Fatal("Derive is not deterministic")
	}
	if a < 0 {
		t.Fatalf("Derive returned negative seed %d", a)
	}
	distinct := []int64{
		Derive(42, "DE", 25, 0),
		Derive(43, "DE", 25, 0),            // base
		Derive(42, "ZA", 25, 0),            // domain
		Derive(42, "DE", 26, 0),            // coord value
		Derive(42, "DE", 0, 25),            // coord order
		Derive(42, "DE", 25),               // coord count
		Derive(42, "federation/DE", 25, 0), // domain prefix
	}
	seen := map[int64]int{}
	for i, s := range distinct {
		if j, ok := seen[s]; ok {
			t.Fatalf("identities %d and %d collide on %d", i, j, s)
		}
		seen[s] = i
	}
}

// TestDeriveMatchesHistoricalRecipe pins the exact output for one
// identity: recorded experiment artifacts (byte-identical reports,
// BENCH_*.json trajectories) depend on this recipe never changing.
func TestDeriveMatchesHistoricalRecipe(t *testing.T) {
	// The FNV-1a fold of (42, "DE", 25, 0) as little-endian 8-byte words.
	const want = 5112272584797408434
	if got := Derive(42, "DE", 25, 0); got != want {
		t.Fatalf("Derive(42, DE, 25, 0) = %d, want %d — the recipe changed; recorded artifacts are invalidated", got, want)
	}
}

package metrics

import "sort"

// Streaming reducers for the hyperscale engine (DESIGN.md §10): constant-
// memory substitutes for the O(jobs) reductions above. Quantiles come
// from the P² sketch of Jain & Chlamtac (CACM 1985) — five markers per
// tracked quantile, parabolic interpolation between them — and the
// backlog step function is folded into its time-weighted mean and peak
// as events stream past instead of being materialized and re-sorted.
// Both are deterministic: identical observation sequences produce
// identical answers, so artifact digits built on them are stable; but a
// sketch quantile is an estimate, not the order statistic Quantile
// returns, and the two must not be compared bit-for-bit.

// P2Quantile estimates a single quantile of a stream in O(1) memory.
// The zero value is not ready; construct with NewP2Quantile.
type P2Quantile struct {
	p float64
	n int64
	// q and pos are the five marker heights and (1-based) positions;
	// want holds the desired positions, advanced by inc per observation.
	q    [5]float64
	pos  [5]int64
	want [5]float64
	inc  [5]float64
}

// NewP2Quantile returns a sketch tracking the q-th quantile, q in (0,1).
func NewP2Quantile(q float64) *P2Quantile {
	s := &P2Quantile{p: q}
	s.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	s.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return s
}

// Add folds one observation into the sketch.
//
//pcaps:hotpath
func (s *P2Quantile) Add(x float64) {
	s.n++
	if s.n <= 5 {
		// Insertion-sort the first five observations into the markers.
		i := int(s.n) - 1
		s.q[i] = x
		for i > 0 && s.q[i-1] > s.q[i] {
			s.q[i-1], s.q[i] = s.q[i], s.q[i-1]
			i--
		}
		for k := range s.pos {
			s.pos[k] = int64(k + 1)
		}
		return
	}
	// Locate the cell and clamp the extremes.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x >= s.q[4]:
		s.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := range s.want {
		s.want[i] += s.inc[i]
	}
	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.want[i] - float64(s.pos[i])
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			sign := int64(1)
			if d < 0 {
				sign = -1
			}
			nq := s.parabolic(i, sign)
			if s.q[i-1] < nq && nq < s.q[i+1] {
				s.q[i] = nq
			} else {
				s.q[i] = s.linear(i, sign)
			}
			s.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic marker adjustment.
func (s *P2Quantile) parabolic(i int, d int64) float64 {
	df := float64(d)
	n0, n1, n2 := float64(s.pos[i-1]), float64(s.pos[i]), float64(s.pos[i+1])
	return s.q[i] + df/(n2-n0)*
		((n1-n0+df)*(s.q[i+1]-s.q[i])/(n2-n1)+
			(n2-n1-df)*(s.q[i]-s.q[i-1])/(n1-n0))
}

// linear is the fallback adjustment when the parabola overshoots a
// neighbouring marker.
func (s *P2Quantile) linear(i int, d int64) float64 {
	j := i + int(d)
	return s.q[i] + float64(d)*(s.q[j]-s.q[i])/float64(s.pos[j]-s.pos[i])
}

// Count returns the number of observations folded in.
func (s *P2Quantile) Count() int64 { return s.n }

// Value returns the current quantile estimate. With five or fewer
// observations it is exact (the Quantile convention on the sorted
// sample); beyond that it is the sketch's center marker.
func (s *P2Quantile) Value() float64 {
	if s.n == 0 {
		return 0
	}
	if s.n <= 5 {
		xs := append([]float64(nil), s.q[:s.n]...)
		sort.Float64s(xs)
		return Quantile(xs, s.p)
	}
	return s.q[2]
}

// StreamBacklog folds the in-flight job count into its time-weighted
// mean and peak without materializing the step function. Events must be
// observed in non-decreasing time order — the order a discrete-event
// engine produces them in. The zero value is ready to use.
type StreamBacklog struct {
	depth    int
	peak     int
	area     float64
	lastT    float64
	firstT   float64
	observed bool
}

// advance accrues the current depth up to time t.
//
//pcaps:hotpath
func (b *StreamBacklog) advance(t float64) {
	if !b.observed {
		b.observed = true
		b.firstT = t
		b.lastT = t
		return
	}
	if t > b.lastT {
		b.area += float64(b.depth) * (t - b.lastT)
		b.lastT = t
	}
}

// Arrive records a job entering the system at time t.
//
//pcaps:hotpath
func (b *StreamBacklog) Arrive(t float64) {
	b.advance(t)
	b.depth++
	if b.depth > b.peak {
		b.peak = b.depth
	}
}

// Complete records a job leaving the system at time t.
//
//pcaps:hotpath
func (b *StreamBacklog) Complete(t float64) {
	b.advance(t)
	b.depth--
}

// Peak returns the maximum observed depth.
func (b *StreamBacklog) Peak() int { return b.peak }

// Mean returns the time-weighted mean depth over [first event, last
// event], the span BacklogStats uses. Engine event order applies depth
// changes at equal timestamps in arrival-before-completion order (the
// order the events fired), whereas the materialized Backlog sorts
// completions first at ties — ties have zero duration, so the mean is
// unaffected, but the streamed Peak can exceed the sorted one by the
// number of simultaneous hand-offs.
func (b *StreamBacklog) Mean() float64 {
	span := b.lastT - b.firstT
	if span <= 0 {
		return 0
	}
	return b.area / span
}

package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Std != 2 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.CoeffVar-0.4) > 1e-12 {
		t.Fatalf("CoeffVar = %v", s.CoeffVar)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty Summary = %+v", z)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Quantile([]float64{3, 1, 2}, 0.5); got != 2 {
		t.Fatalf("unsorted Quantile = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty Quantile should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestQuadrants(t *testing.T) {
	pts := []Point{
		{0.5, 0.5}, // both better
		{1.5, 0.5}, // carbon only
		{0.5, 1.5}, // time only
		{1.5, 1.5}, // both worse
	}
	q := Quadrants(pts, 1, 1)
	if q.BothBetter != 0.25 || q.CarbonOnly != 0.25 || q.TimeOnly != 0.25 || q.BothWorse != 0.25 {
		t.Fatalf("Quadrants = %+v", q)
	}
	sum := q.BothBetter + q.CarbonOnly + q.TimeOnly + q.BothWorse
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("shares sum to %v", sum)
	}
	if z := Quadrants(nil, 1, 1); z.BothBetter != 0 {
		t.Fatalf("empty Quadrants = %+v", z)
	}
}

func TestKDE2DConcentratesOnCluster(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var pts []Point
	for i := 0; i < 300; i++ {
		pts = append(pts, Point{1 + 0.05*r.NormFloat64(), 0.7 + 0.05*r.NormFloat64()})
	}
	k, err := NewKDE2D(pts)
	if err != nil {
		t.Fatal(err)
	}
	center := k.Density(1, 0.7)
	far := k.Density(2, 2)
	if center <= 10*far {
		t.Fatalf("density not concentrated: center %v, far %v", center, far)
	}
	mode := k.Mode(40)
	if math.Abs(mode.X-1) > 0.1 || math.Abs(mode.Y-0.7) > 0.1 {
		t.Fatalf("mode = %+v, want near (1, 0.7)", mode)
	}
}

func TestKDE2DErrors(t *testing.T) {
	if _, err := NewKDE2D(nil); err == nil {
		t.Fatal("empty KDE accepted")
	}
	if _, err := NewKDE2D([]Point{{1, 1}}); err == nil {
		t.Fatal("single-point KDE accepted")
	}
	if _, err := NewKDE2D([]Point{{1, 1}, {1, 2}}); err == nil {
		t.Fatal("zero-x-variance KDE accepted")
	}
}

func TestKDE2DIntegratesToOneApprox(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var pts []Point
	for i := 0; i < 100; i++ {
		pts = append(pts, Point{r.NormFloat64(), r.NormFloat64()})
	}
	k, err := NewKDE2D(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoid-free Riemann sum over a wide box.
	const lo, hi, n = -6.0, 6.0, 120
	h := (hi - lo) / n
	var total float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			total += k.Density(lo+(float64(i)+0.5)*h, lo+(float64(j)+0.5)*h) * h * h
		}
	}
	if math.Abs(total-1) > 0.05 {
		t.Fatalf("KDE mass = %v, want ≈1", total)
	}
}

func TestPolyFitExactCubic(t *testing.T) {
	// y = 2 − x + 0.5x² + 0.25x³ sampled exactly.
	want := []float64{2, -1, 0.5, 0.25}
	var pts []Point
	for x := -3.0; x <= 3; x += 0.5 {
		pts = append(pts, Point{x, PolyEval(want, x)})
	}
	got, err := PolyFit(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("coef[%d] = %v, want %v (all %v)", i, got[i], want[i], got)
		}
	}
}

func TestPolyFitNoisyLine(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var pts []Point
	for i := 0; i < 500; i++ {
		x := r.Float64() * 10
		pts = append(pts, Point{x, 3 + 2*x + 0.01*r.NormFloat64()})
	}
	coef, err := PolyFit(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-3) > 0.01 || math.Abs(coef[1]-2) > 0.01 {
		t.Fatalf("line fit = %v", coef)
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]Point{{1, 1}}, 3); err == nil {
		t.Fatal("underdetermined fit accepted")
	}
	if _, err := PolyFit([]Point{{1, 1}, {1, 2}, {1, 3}, {1, 4}}, 3); err == nil {
		t.Fatal("singular fit accepted")
	}
	if _, err := PolyFit([]Point{{1, 1}, {2, 2}}, -1); err == nil {
		t.Fatal("negative degree accepted")
	}
}

func TestNormalizeAndPercentChange(t *testing.T) {
	got := Normalize([]float64{2, 4}, 2)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("Normalize = %v", got)
	}
	if got := Normalize([]float64{5}, 0); got[0] != 5 {
		t.Fatalf("zero-base Normalize = %v", got)
	}
	if pc := PercentChange(75, 100); pc != -25 {
		t.Fatalf("PercentChange = %v", pc)
	}
	if pc := PercentChange(5, 0); pc != 0 {
		t.Fatalf("zero-base PercentChange = %v", pc)
	}
}

func TestQuickQuadrantSharesSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{r.Float64() * 2, r.Float64() * 2}
		}
		q := Quadrants(pts, 1, 1)
		sum := q.BothBetter + q.CarbonOnly + q.TimeOnly + q.BothWorse
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPolyFitInterpolatesDegreePoints(t *testing.T) {
	// deg+1 distinct points are interpolated exactly by a deg-fit.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		deg := 1 + r.Intn(3)
		pts := make([]Point, deg+1)
		for i := range pts {
			pts[i] = Point{float64(i) + r.Float64()*0.5, r.NormFloat64() * 10}
		}
		coef, err := PolyFit(pts, deg)
		if err != nil {
			return false
		}
		for _, p := range pts {
			if math.Abs(PolyEval(coef, p.X)-p.Y) > 1e-5*(1+math.Abs(p.Y)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKDEDensity(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Point{r.NormFloat64(), r.NormFloat64()}
	}
	k, err := NewKDE2D(pts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Density(0.5, -0.5)
	}
}

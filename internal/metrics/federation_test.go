package metrics

import (
	"math"
	"testing"
)

func TestFederationAccountant(t *testing.T) {
	var a FederationAccountant
	a.Add(ClusterShare{Name: "A", Jobs: 2, CarbonGrams: 100, Work: 7200, Makespan: 300, JCTs: []float64{100, 200}})
	a.Add(ClusterShare{Name: "B", Jobs: 1, CarbonGrams: 50, Work: 3600, Makespan: 600, JCTs: []float64{60}})
	a.Add(ClusterShare{Name: "dark"}) // no jobs routed
	s := a.Summary()
	if s.Jobs != 3 {
		t.Fatalf("Jobs = %d, want 3", s.Jobs)
	}
	if s.CarbonGrams != 150 || s.Work != 10800 {
		t.Fatalf("totals = %v g, %v exec-s", s.CarbonGrams, s.Work)
	}
	if s.Makespan != 600 {
		t.Fatalf("Makespan = %v, want slowest member 600", s.Makespan)
	}
	if want := (100.0 + 200 + 60) / 3; s.AvgJCT != want {
		t.Fatalf("AvgJCT = %v, want %v", s.AvgJCT, want)
	}
	if want := 10800.0 / 600; s.Throughput != want {
		t.Fatalf("Throughput = %v, want %v", s.Throughput, want)
	}
	if want := 150.0 / 3; math.Abs(s.GramsPerExecHour-want) > 1e-12 {
		t.Fatalf("GramsPerExecHour = %v, want %v", s.GramsPerExecHour, want)
	}
	if len(s.Shares) != 3 || s.Shares[2].Name != "dark" {
		t.Fatalf("Shares = %+v", s.Shares)
	}
}

func TestFederationAccountantEmpty(t *testing.T) {
	var a FederationAccountant
	s := a.Summary()
	if s.Jobs != 0 || s.AvgJCT != 0 || s.Throughput != 0 || s.GramsPerExecHour != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

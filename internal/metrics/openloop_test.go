package metrics

import (
	"math"
	"testing"
)

func TestBacklogHandComputed(t *testing.T) {
	// Jobs: arrive 0, 1, 2; complete 4, 3, 6.
	// t=0 →1, t=1 →2, t=2 →3, t=3 →2, t=4 →1, t=6 →0.
	steps := Backlog([]float64{0, 1, 2}, []float64{4, 3, 6})
	want := []Point{{0, 1}, {1, 2}, {2, 3}, {3, 2}, {4, 1}, {6, 0}}
	if len(steps) != len(want) {
		t.Fatalf("steps = %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("step %d = %v, want %v", i, steps[i], want[i])
		}
	}
	// Time-weighted mean over [0,6]:
	// 1·1 + 2·1 + 3·1 + 2·1 + 1·2 = 10; 10/6.
	mean, peak := BacklogStats(steps)
	if peak != 3 {
		t.Fatalf("peak = %v, want 3", peak)
	}
	if math.Abs(mean-10.0/6.0) > 1e-12 {
		t.Fatalf("mean = %v, want %v", mean, 10.0/6.0)
	}
}

func TestBacklogTieCompletionBeforeArrival(t *testing.T) {
	// One job completes at t=5 exactly as the next arrives: the backlog
	// must not report a depth-2 instant.
	steps := Backlog([]float64{0, 5}, []float64{5, 9})
	_, peak := BacklogStats(steps)
	if peak != 1 {
		t.Fatalf("peak = %v, want 1 (completion applies before the simultaneous arrival)", peak)
	}
}

func TestBacklogEmptyAndSingle(t *testing.T) {
	if steps := Backlog(nil, nil); len(steps) != 0 {
		t.Fatalf("empty backlog = %v", steps)
	}
	mean, peak := BacklogStats([]Point{{3, 1}})
	if mean != 0 || peak != 1 {
		t.Fatalf("single-step stats = %v, %v", mean, peak)
	}
}

func TestSummarizeOpenLoopHandComputed(t *testing.T) {
	// Four jobs arriving every 10 s; JCTs 20, 20, 40, 20 with
	// critical paths 15, 15, 15, 15.
	arr := []float64{0, 10, 20, 30}
	jcts := []float64{20, 20, 40, 20}
	cps := []float64{15, 15, 15, 15}
	s := SummarizeOpenLoop(arr, jcts, cps)

	// Completions: 20, 30, 60, 50. Events:
	// 0→1, 10→2, 20→2 (completion then arrival), 30→2, 50→1, 60→0.
	// Mean backlog: (1·10 + 2·10 + 2·10 + 2·20 + 1·10)/60 = 100/60.
	if math.Abs(s.MeanBacklog-100.0/60.0) > 1e-12 {
		t.Fatalf("mean backlog = %v, want %v", s.MeanBacklog, 100.0/60.0)
	}
	if s.PeakBacklog != 2 {
		t.Fatalf("peak backlog = %v, want 2", s.PeakBacklog)
	}
	if s.P50JCT != 20 {
		t.Fatalf("p50 = %v, want 20", s.P50JCT)
	}
	// Sorted JCTs: 20,20,20,40. p99 position = 0.99·3 = 2.97 →
	// 20·0.03 + 40·0.97 = 39.4.
	if math.Abs(s.P99JCT-39.4) > 1e-12 {
		t.Fatalf("p99 = %v, want 39.4", s.P99JCT)
	}
	// Queue delay: mean of (5, 5, 25, 5) = 10.
	if math.Abs(s.MeanQueueDelay-10) > 1e-12 {
		t.Fatalf("queue delay = %v, want 10", s.MeanQueueDelay)
	}
	// Goodput: 4 jobs over [0, 60] = 240 jobs/hr.
	if math.Abs(s.GoodputJobsPerHr-240) > 1e-12 {
		t.Fatalf("goodput = %v, want 240", s.GoodputJobsPerHr)
	}
}

func TestSummarizeOpenLoopEmpty(t *testing.T) {
	if s := SummarizeOpenLoop(nil, nil, nil); s != (OpenLoop{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestP2QuantileSmallSampleExact: with five or fewer observations the
// sketch must report the exact Quantile of the sorted sample, whatever
// order the values arrive in.
func TestP2QuantileSmallSampleExact(t *testing.T) {
	obs := []float64{8, 1, 5, 3, 9}
	for n := 1; n <= len(obs); n++ {
		for _, q := range []float64{0.5, 0.95, 0.99} {
			s := NewP2Quantile(q)
			for _, x := range obs[:n] {
				s.Add(x)
			}
			sorted := append([]float64(nil), obs[:n]...)
			want := Quantile(sorted, q)
			if got := s.Value(); got != want {
				t.Errorf("n=%d q=%v: Value() = %v, want exact %v", n, q, got, want)
			}
			if s.Count() != int64(n) {
				t.Errorf("n=%d: Count() = %d", n, s.Count())
			}
		}
	}
	if got := NewP2Quantile(0.5).Value(); got != 0 {
		t.Errorf("empty sketch Value() = %v, want 0", got)
	}
}

// TestP2QuantilePaperFixture pins the sketch to the worked example of
// Jain & Chlamtac (CACM 1985, Table I): after folding the paper's 20
// observations, the p50 center marker must land on the published
// estimate 4.44 (the exact median is 2.43 — the gap is the documented
// sketch error, which is why artifacts label these digits as estimates).
func TestP2QuantilePaperFixture(t *testing.T) {
	obs := []float64{
		0.02, 0.15, 0.74, 3.39, 0.83, 22.37, 10.15, 15.43, 38.62, 15.92,
		34.60, 10.28, 1.47, 0.40, 0.05, 11.39, 0.27, 0.42, 0.09, 11.37,
	}
	s := NewP2Quantile(0.5)
	for _, x := range obs {
		s.Add(x)
	}
	if got := s.Value(); math.Abs(got-4.44) > 0.01 {
		t.Fatalf("p50 after the paper's 20 observations = %v, want 4.44 ± 0.01", got)
	}
}

// TestP2QuantileConvergesOnUniform: on a large shuffled uniform sample
// the estimate must land within a tight relative band of the true
// quantile, and identical streams must produce identical estimates
// (determinism is what lets goldens pin sketch-derived digits).
func TestP2QuantileConvergesOnUniform(t *testing.T) {
	const n = 20_001
	run := func() map[float64]float64 {
		rng := rand.New(rand.NewSource(7))
		perm := rng.Perm(n)
		sketches := map[float64]*P2Quantile{
			0.50: NewP2Quantile(0.50),
			0.95: NewP2Quantile(0.95),
			0.99: NewP2Quantile(0.99),
		}
		for _, v := range perm {
			for _, s := range sketches {
				s.Add(float64(v))
			}
		}
		out := make(map[float64]float64, len(sketches))
		for q, s := range sketches {
			out[q] = s.Value()
		}
		return out
	}
	got := run()
	for q, v := range got {
		want := q * (n - 1)
		if math.Abs(v-want) > 0.02*n {
			t.Errorf("q=%v: estimate %v, want %v ± %v", q, v, want, 0.02*n)
		}
	}
	if again := run(); !mapsEqual(got, again) {
		t.Fatalf("identical streams diverged: %v vs %v", got, again)
	}
}

func mapsEqual(a, b map[float64]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestStreamBacklogHandComputed folds a small arrival/completion
// sequence and checks the peak and time-weighted mean against hand
// arithmetic. Depth timeline: 1 on [0,2), 2 on [2,3), a zero-width
// hand-off at t=3 (complete then arrive), 2 on [3,5), 1 on [5,9);
// area = 2 + 2 + 4 + 4 = 12 over span 9.
func TestStreamBacklogHandComputed(t *testing.T) {
	var b StreamBacklog
	b.Arrive(0)
	b.Arrive(2)
	b.Complete(3)
	b.Arrive(3)
	b.Complete(5)
	b.Complete(9)
	if b.Peak() != 2 {
		t.Errorf("Peak() = %d, want 2", b.Peak())
	}
	if want := 12.0 / 9.0; math.Abs(b.Mean()-want) > 1e-12 {
		t.Errorf("Mean() = %v, want %v", b.Mean(), want)
	}
}

// TestStreamBacklogMatchesMaterialized: on a larger generated sequence
// the streamed mean must equal BacklogStats over the materialized step
// function (ties have zero duration, so tie-order differences between
// the two reductions cannot move the mean).
func TestStreamBacklogMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var arrivals, completions []float64
	var b StreamBacklog
	clock := 0.0
	for i := 0; i < 500; i++ {
		clock += rng.Float64() * 4
		arrivals = append(arrivals, clock)
		completions = append(completions, clock+1+rng.Float64()*40)
	}
	// Replay in engine order: merged, arrivals before completions at ties.
	ci := 0
	sorted := append([]float64(nil), completions...)
	sortFloats(sorted)
	for _, a := range arrivals {
		for ci < len(sorted) && sorted[ci] < a {
			b.Complete(sorted[ci])
			ci++
		}
		b.Arrive(a)
	}
	for ; ci < len(sorted); ci++ {
		b.Complete(sorted[ci])
	}
	mean, peak := BacklogStats(Backlog(arrivals, completions))
	if math.Abs(b.Mean()-mean) > 1e-9 {
		t.Errorf("streamed mean %v != materialized mean %v", b.Mean(), mean)
	}
	// The streamed peak counts arrivals before simultaneous completions,
	// so it can only meet or exceed the sorted reduction's peak.
	if float64(b.Peak()) < peak {
		t.Errorf("streamed peak %d below materialized peak %v", b.Peak(), peak)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

// TestStreamBacklogZeroValueAndDegenerate: the zero value is ready, and
// a span-free observation sequence reports a zero mean rather than NaN.
func TestStreamBacklogZeroValueAndDegenerate(t *testing.T) {
	var empty StreamBacklog
	if empty.Peak() != 0 || empty.Mean() != 0 {
		t.Errorf("zero value: Peak=%d Mean=%v", empty.Peak(), empty.Mean())
	}
	var b StreamBacklog
	b.Arrive(5)
	b.Complete(5)
	if b.Mean() != 0 {
		t.Errorf("zero-span Mean() = %v, want 0", b.Mean())
	}
	if b.Peak() != 1 {
		t.Errorf("zero-span Peak() = %d, want 1", b.Peak())
	}
}

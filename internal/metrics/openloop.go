package metrics

import (
	"math"
	"sort"
)

// Open-loop queueing metrics: under an open-loop arrival process the
// cluster cannot push back on submissions, so the interesting questions
// become how deep the backlog of in-flight jobs grows, how long jobs
// spend queued beyond their inherent critical path, and what fraction
// of the offered work the cluster actually absorbs over the horizon.
// These are the columns of the overload artifact (DESIGN.md §9).

// Backlog reconstructs the number of in-flight jobs over time from the
// per-job arrival and completion times (completions[i] corresponds to
// arrivals[i]). The result is a right-continuous step function sampled
// at every event: Points[k].Y is the backlog immediately after the
// event at Points[k].X. At equal times, completions are applied before
// arrivals, so a job handed off exactly as another arrives never
// inflates the peak.
func Backlog(arrivals, completions []float64) []Point {
	type event struct {
		t     float64
		delta int
	}
	evs := make([]event, 0, len(arrivals)+len(completions))
	for _, t := range arrivals {
		evs = append(evs, event{t, +1})
	}
	for _, t := range completions {
		evs = append(evs, event{t, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].delta < evs[j].delta // completions first
	})
	out := make([]Point, 0, len(evs))
	depth := 0
	for _, e := range evs {
		depth += e.delta
		if n := len(out); n > 0 && out[n-1].X == e.t {
			out[n-1].Y = float64(depth)
			continue
		}
		out = append(out, Point{X: e.t, Y: float64(depth)})
	}
	return out
}

// BacklogStats reduces a backlog step function to its peak and its
// time-weighted mean over [first event, last event]. A single event (or
// none) has zero duration and yields a zero mean.
func BacklogStats(steps []Point) (mean, peak float64) {
	for _, p := range steps {
		if p.Y > peak {
			peak = p.Y
		}
	}
	if len(steps) < 2 {
		return 0, peak
	}
	var area float64
	for i := 1; i < len(steps); i++ {
		area += steps[i-1].Y * (steps[i].X - steps[i-1].X)
	}
	span := steps[len(steps)-1].X - steps[0].X
	if span <= 0 {
		return 0, peak
	}
	return area / span, peak
}

// OpenLoop summarizes one run of an open-loop batch.
type OpenLoop struct {
	// MeanBacklog and PeakBacklog characterize the in-flight job count:
	// time-weighted mean and maximum depth.
	MeanBacklog, PeakBacklog float64
	// P50JCT, P95JCT, and P99JCT are job-completion-time quantiles in
	// seconds (sojourn time: completion − arrival).
	P50JCT, P95JCT, P99JCT float64
	// MeanQueueDelay is the mean excess of JCT over the job's ideal
	// lower bound (its critical-path length): time attributable to
	// queueing and contention rather than the job's own serial work.
	MeanQueueDelay float64
	// GoodputJobsPerHr is the completion rate over the batch's active
	// span (first arrival to last completion), in jobs per hour of
	// experiment time. Under overload it saturates at the cluster's
	// service capacity while the offered rate keeps climbing.
	GoodputJobsPerHr float64
}

// SummarizeOpenLoop computes the open-loop summary from parallel
// per-job slices: arrival times, job completion times (JCTs as sojourn
// times, the simulator's convention), and each job's critical-path
// length (the zero-contention lower bound on its JCT).
func SummarizeOpenLoop(arrivals, jcts, criticalPaths []float64) OpenLoop {
	n := len(jcts)
	if n == 0 {
		return OpenLoop{}
	}
	completions := make([]float64, n)
	var delay float64
	lastDone := math.Inf(-1)
	for i := 0; i < n; i++ {
		completions[i] = arrivals[i] + jcts[i]
		if completions[i] > lastDone {
			lastDone = completions[i]
		}
		delay += jcts[i] - criticalPaths[i]
	}
	mean, peak := BacklogStats(Backlog(arrivals, completions))
	s := OpenLoop{
		MeanBacklog:    mean,
		PeakBacklog:    peak,
		P50JCT:         Quantile(jcts, 0.50),
		P95JCT:         Quantile(jcts, 0.95),
		P99JCT:         Quantile(jcts, 0.99),
		MeanQueueDelay: delay / float64(n),
	}
	span := lastDone - arrivals[0]
	if span > 0 {
		s.GoodputJobsPerHr = float64(n) / span * 3600
	}
	return s
}

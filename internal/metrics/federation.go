package metrics

// ClusterShare is one member cluster's contribution to a federated run:
// the jobs it served, the carbon it emitted, the work it completed, and
// its local makespan and per-job completion times. A dark cluster (no
// jobs routed) contributes a zero share.
type ClusterShare struct {
	Name        string
	Jobs        int
	CarbonGrams float64
	// Work is completed work in executor-seconds.
	Work float64
	// Makespan is the cluster-local end-to-end completion time.
	Makespan float64
	// JCTs are the cluster's per-job completion times.
	JCTs []float64
}

// FederationSummary is the cross-cluster account of one federated run.
type FederationSummary struct {
	Jobs        int
	CarbonGrams float64
	// Work is total completed work in executor-seconds.
	Work float64
	// Makespan is the federation-wide completion time (clusters run in
	// parallel, so the slowest member defines it).
	Makespan float64
	// AvgJCT is the mean job completion time across every routed job.
	AvgJCT float64
	// Throughput is completed work per second of federation makespan,
	// in executor-seconds per second.
	Throughput float64
	// GramsPerExecHour is the run's carbon efficiency: gCO2eq emitted
	// per executor-hour of completed work.
	GramsPerExecHour float64
	// Shares holds the per-cluster breakdown in Add order.
	Shares []ClusterShare
}

// FederationAccountant folds per-cluster outcomes into a federation-wide
// carbon/throughput account. The zero value is ready to use.
type FederationAccountant struct {
	shares []ClusterShare
}

// Add records one cluster's share.
func (a *FederationAccountant) Add(s ClusterShare) { a.shares = append(a.shares, s) }

// Summary computes the federated account over everything added so far.
func (a *FederationAccountant) Summary() FederationSummary {
	out := FederationSummary{Shares: a.shares}
	var sumJCT float64
	for _, s := range a.shares {
		out.Jobs += s.Jobs
		out.CarbonGrams += s.CarbonGrams
		out.Work += s.Work
		if s.Makespan > out.Makespan {
			out.Makespan = s.Makespan
		}
		for _, jct := range s.JCTs {
			sumJCT += jct
		}
	}
	if out.Jobs > 0 {
		out.AvgJCT = sumJCT / float64(out.Jobs)
	}
	if out.Makespan > 0 {
		out.Throughput = out.Work / out.Makespan
	}
	if out.Work > 0 {
		out.GramsPerExecHour = out.CarbonGrams / (out.Work / 3600)
	}
	return out
}

package metrics

import "pcaps/internal/result"

// ClusterShare is one member cluster's contribution to a federated run:
// the jobs it served, the carbon it emitted, the work it completed, and
// its local makespan and per-job completion times. A dark cluster (no
// jobs routed) contributes a zero share.
type ClusterShare struct {
	Name        string
	Jobs        int
	CarbonGrams float64
	// Work is completed work in executor-seconds.
	Work float64
	// Makespan is the cluster-local end-to-end completion time.
	Makespan float64
	// JCTs are the cluster's per-job completion times.
	JCTs []float64
}

// FederationSummary is the cross-cluster account of one federated run.
type FederationSummary struct {
	Jobs        int
	CarbonGrams float64
	// Work is total completed work in executor-seconds.
	Work float64
	// Makespan is the federation-wide completion time (clusters run in
	// parallel, so the slowest member defines it).
	Makespan float64
	// AvgJCT is the mean job completion time across every routed job.
	AvgJCT float64
	// Throughput is completed work per second of federation makespan,
	// in executor-seconds per second.
	Throughput float64
	// GramsPerExecHour is the run's carbon efficiency: gCO2eq emitted
	// per executor-hour of completed work.
	GramsPerExecHour float64
	// Shares holds the per-cluster breakdown in Add order.
	Shares []ClusterShare
}

// FederationColumns is the typed column set of a federation comparison
// table: one row per routing policy, carbon and completion metrics
// rendered against a round-robin baseline. The display formats reproduce
// the pcapsim federation artifact's fixed-width layout.
func FederationColumns() []result.Column {
	return []result.Column{
		{Name: "policy", Kind: result.KindString, Header: "policy", HeaderFormat: "  %-22s", Format: "  %-22s"},
		{Name: "gco2eq", Kind: result.KindFloat, Prec: 1, Header: "gCO2eq", HeaderFormat: " %12s", Format: " %12.1f"},
		{Name: "vs_rr_pct", Kind: result.KindFloat, Prec: 1, Header: "vs RR", HeaderFormat: " %9s", Format: " %+8.1f%%"},
		{Name: "makespan_sec", Kind: result.KindFloat, Header: "makespan", HeaderFormat: " %11s", Format: " %9.0f s"},
		{Name: "avg_jct_sec", Kind: result.KindFloat, Header: "avg JCT", HeaderFormat: " %10s", Format: " %8.0f s"},
	}
}

// Row renders the summary as one FederationColumns table row, with the
// carbon delta taken against the given baseline summary.
func (s FederationSummary) Row(policy string, baseline FederationSummary) []result.Cell {
	return []result.Cell{
		result.Str(policy),
		result.Float(s.CarbonGrams),
		result.Float(PercentChange(s.CarbonGrams, baseline.CarbonGrams)),
		result.Float(s.Makespan),
		result.Float(s.AvgJCT),
	}
}

// FederationAccountant folds per-cluster outcomes into a federation-wide
// carbon/throughput account. The zero value is ready to use.
type FederationAccountant struct {
	shares []ClusterShare
}

// Add records one cluster's share.
func (a *FederationAccountant) Add(s ClusterShare) { a.shares = append(a.shares, s) }

// Summary computes the federated account over everything added so far.
func (a *FederationAccountant) Summary() FederationSummary {
	out := FederationSummary{Shares: a.shares}
	var sumJCT float64
	for _, s := range a.shares {
		out.Jobs += s.Jobs
		out.CarbonGrams += s.CarbonGrams
		out.Work += s.Work
		if s.Makespan > out.Makespan {
			out.Makespan = s.Makespan
		}
		for _, jct := range s.JCTs {
			sumJCT += jct
		}
	}
	if out.Jobs > 0 {
		out.AvgJCT = sumJCT / float64(out.Jobs)
	}
	if out.Makespan > 0 {
		out.Throughput = out.Work / out.Makespan
	}
	if out.Work > 0 {
		out.GramsPerExecHour = out.CarbonGrams / (out.Work / 3600)
	}
	return out
}

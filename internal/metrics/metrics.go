// Package metrics provides the statistical machinery the paper's
// evaluation plots rely on: summary statistics with standard deviations
// (every figure's shaded region), quantiles, two-dimensional Gaussian
// kernel density estimation (the contour clusters of Fig. 9), quadrant
// analysis of per-job outcomes (Fig. 9's annotations), and least-squares
// polynomial fitting (the cubic trend lines of Fig. 13).
package metrics

import (
	"errors"
	"math"
	"sort"
)

// Summary holds the moments of a sample.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
	CoeffVar            float64
}

// Summarize computes sample statistics (population standard deviation, as
// the paper's coefficient-of-variation table does).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	if s.Mean != 0 {
		s.CoeffVar = s.Std / math.Abs(s.Mean)
	}
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Point is a 2-D sample (e.g. one trial's normalized JCT and carbon).
type Point struct{ X, Y float64 }

// QuadrantShares reports the fraction of points in each quadrant around
// the pivot (Fig. 9 splits the plane at the (1,1) baseline point).
// Quadrants are labeled as in the figure: the "better" quadrant is
// x < pivotX and y < pivotY (less time, less carbon).
type QuadrantShares struct {
	// BothBetter: x < px, y < py. CarbonOnly: x ≥ px, y < py.
	// TimeOnly: x < px, y ≥ py. BothWorse: x ≥ px, y ≥ py.
	BothBetter, CarbonOnly, TimeOnly, BothWorse float64
}

// Quadrants computes quadrant shares around (px, py).
func Quadrants(pts []Point, px, py float64) QuadrantShares {
	var q QuadrantShares
	if len(pts) == 0 {
		return q
	}
	inc := 1 / float64(len(pts))
	for _, p := range pts {
		switch {
		case p.X < px && p.Y < py:
			q.BothBetter += inc
		case p.X >= px && p.Y < py:
			q.CarbonOnly += inc
		case p.X < px && p.Y >= py:
			q.TimeOnly += inc
		default:
			q.BothWorse += inc
		}
	}
	return q
}

// KDE2D is a two-dimensional Gaussian kernel density estimator with a
// diagonal bandwidth chosen by Scott's rule, as used for the outcome
// clusters in Fig. 9.
type KDE2D struct {
	pts    []Point
	hx, hy float64
}

// NewKDE2D fits the estimator to the points. It returns an error for
// fewer than two points or degenerate (zero-variance) data, for which a
// kernel bandwidth cannot be derived.
func NewKDE2D(pts []Point) (*KDE2D, error) {
	if len(pts) < 2 {
		return nil, errors.New("metrics: KDE needs at least two points")
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	sx, sy := Summarize(xs).Std, Summarize(ys).Std
	if sx == 0 || sy == 0 {
		return nil, errors.New("metrics: KDE needs non-degenerate data")
	}
	// Scott's rule for d=2: h_i = σ_i · n^(−1/6).
	n := float64(len(pts))
	factor := math.Pow(n, -1.0/6)
	return &KDE2D{pts: append([]Point(nil), pts...), hx: sx * factor, hy: sy * factor}, nil
}

// Density evaluates the estimated density at (x, y).
func (k *KDE2D) Density(x, y float64) float64 {
	var sum float64
	for _, p := range k.pts {
		dx := (x - p.X) / k.hx
		dy := (y - p.Y) / k.hy
		sum += math.Exp(-0.5 * (dx*dx + dy*dy))
	}
	norm := float64(len(k.pts)) * 2 * math.Pi * k.hx * k.hy
	return sum / norm
}

// Mode returns the grid point with maximal density over an n×n grid
// spanning the data's bounding box — the "hot spot" Fig. 9 annotates.
func (k *KDE2D) Mode(n int) Point {
	if n < 2 {
		n = 2
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range k.pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	best := Point{minX, minY}
	bestD := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := minX + (maxX-minX)*float64(i)/float64(n-1)
			y := minY + (maxY-minY)*float64(j)/float64(n-1)
			if d := k.Density(x, y); d > bestD {
				bestD = d
				best = Point{x, y}
			}
		}
	}
	return best
}

// PolyFit fits a least-squares polynomial of the given degree to the
// points and returns its coefficients c[0] + c[1]x + … + c[deg]x^deg.
// Fig. 13 uses degree 3. It solves the normal equations by Gaussian
// elimination with partial pivoting; an error is returned when the system
// is singular (e.g. fewer distinct x values than deg+1).
func PolyFit(pts []Point, deg int) ([]float64, error) {
	if deg < 0 {
		return nil, errors.New("metrics: negative degree")
	}
	if len(pts) < deg+1 {
		return nil, errors.New("metrics: not enough points for degree")
	}
	m := deg + 1
	// Normal equations: A c = b with A[i][j] = Σ x^(i+j), b[i] = Σ y·x^i.
	a := make([][]float64, m)
	b := make([]float64, m)
	pow := make([]float64, 2*m-1)
	for _, p := range pts {
		xp := 1.0
		for k := 0; k < 2*m-1; k++ {
			pow[k] += xp
			xp *= p.X
		}
		xp = 1.0
		for i := 0; i < m; i++ {
			b[i] += p.Y * xp
			xp *= p.X
		}
	}
	for i := 0; i < m; i++ {
		a[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			a[i][j] = pow[i+j]
		}
	}
	return solve(a, b)
}

// PolyEval evaluates a polynomial (coefficients low-order first) at x.
func PolyEval(coef []float64, x float64) float64 {
	var y float64
	for i := len(coef) - 1; i >= 0; i-- {
		y = y*x + coef[i]
	}
	return y
}

// solve performs Gaussian elimination with partial pivoting on a·x = b,
// mutating its arguments.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, errors.New("metrics: singular system")
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		x[i] = b[i]
		for j := i + 1; j < n; j++ {
			x[i] -= a[i][j] * x[j]
		}
		x[i] /= a[i][i]
	}
	return x, nil
}

// Normalize divides each value by base, the "relative to baseline"
// transform every table and figure applies. A zero base returns a copy.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if base != 0 {
			out[i] = x / base
		} else {
			out[i] = x
		}
	}
	return out
}

// PercentChange returns 100·(x−base)/base, the paper's "% reduction"
// convention (negative = reduction when x < base).
func PercentChange(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (x - base) / base
}

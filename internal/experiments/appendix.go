package experiments

import (
	"math"
	"sort"
	"time"

	"pcaps/internal/dag"
	"pcaps/internal/metrics"
	"pcaps/internal/result"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func init() {
	register("fig16", "job-count sweep, simulator (Fig 16 / A.2.1)", fig16)
	register("fig17", "job-count sweep, prototype (Fig 17 / A.2.1)", fig17)
	register("fig18", "interarrival sweep, simulator (Fig 18 / A.2.2)", fig18)
	register("fig19", "interarrival sweep, prototype (Fig 19 / A.2.2)", fig19)
	registerSerial("fig20", "scheduler invocation latency vs queue length (Fig 20 / A.2.3)", fig20)
}

// jobCountSettings are the Appendix A.2.1 batch sizes.
var jobCountSettings = []float64{12, 25, 50, 100, 200}

// arrivalSettings are the Appendix A.2.2 mean interarrival times (s).
var arrivalSettings = []float64{7.5, 15, 30, 60, 120}

// runAxis executes the sweep: for each setting, trials of Decima, CAP,
// and PCAPS against the environment's baseline.
func runAxis(opt Options, label string, proto bool, mix workload.Mix,
	settings []float64, build func(v float64, seed int64) (njobs int, interarrival float64)) (*result.Artifact, error) {
	e := newEnv(opt.scoped("DE"))
	trials := opt.Trials
	if trials <= 0 {
		trials = 3
	}
	if opt.Fast {
		trials = 1
		if len(settings) > 3 {
			settings = settings[:3]
		}
	}
	type agg struct{ carbon, ect, jct []float64 }
	names := []string{"Decima", "CAP", "PCAPS"}
	rows := map[string]map[float64]*agg{}
	for _, nm := range names {
		rows[nm] = map[float64]*agg{}
		for _, s := range settings {
			rows[nm][s] = &agg{}
		}
	}
	// One cell per (setting, trial), fanned out over the pool; the seed
	// folds the setting's bits in so every axis point draws independent
	// randomness regardless of execution order.
	type axisCell struct {
		setting float64
		trial   int
	}
	var cells []axisCell
	for _, setting := range settings {
		for trial := 0; trial < trials; trial++ {
			cells = append(cells, axisCell{setting: setting, trial: trial})
		}
	}
	runs := make([]map[string]*sim.Result, len(cells))
	forEach(opt.pool, len(cells), func(i int) {
		c := cells[i]
		seed := cellSeed(e.opt.Seed, "DE", int64(math.Float64bits(c.setting)), int64(c.trial))
		njobs, inter := build(c.setting, seed)
		jobs := batch(njobs, inter, mix, seed)
		window := 60 + njobs*int(inter+29)/30/1 // rough sizing; Slice clamps
		tr := e.trialTrace("DE", window, seed)
		cfg := simConfig(tr, seed)
		baseSched := sim.Scheduler(&sched.FIFO{})
		capInner := func() sim.Scheduler { return &sched.FIFO{} }
		if proto {
			cfg = protoConfig(tr, seed)
			baseSched = sched.NewKubeDefault()
			capInner = func() sim.Scheduler { return sched.NewKubeDefault() }
		}
		// Grouped by shared decision prefix (see mustRunGroup): the CAP
		// wrapper with its inner policy, PCAPS with its Decima base.
		g := mustRunGroup(cfg, jobs, baseSched, sched.NewCAP(capInner(), 20))
		p := mustRunGroup(cfg, jobs,
			sched.NewDecima(seed), sched.NewPCAPS(sched.NewDecima(seed), 0.5, seed))
		runs[i] = map[string]*sim.Result{
			"": g[0], "CAP": g[1],
			"Decima": p[0], "PCAPS": p[1],
		}
	})
	for i, c := range cells {
		base := runs[i][""]
		for _, nm := range names {
			r := runs[i][nm]
			a := rows[nm][c.setting]
			a.carbon = append(a.carbon, -metrics.PercentChange(r.CarbonGrams, base.CarbonGrams))
			a.ect = append(a.ect, r.ECT/base.ECT)
			a.jct = append(a.jct, r.AvgJCT/base.AvgJCT)
		}
	}
	t := &result.Table{
		Name: "axis",
		Columns: []result.Column{
			{Name: "setting", Kind: result.KindFloat, Prec: 1, Header: label, HeaderFormat: "%-8s", Format: "%-8.1f"},
			{Name: "policy", Kind: result.KindString, Header: "policy", HeaderFormat: " %-8s", Format: " %-8s"},
			{Name: "carbon_reduction_pct", Kind: result.KindFloat, Prec: 1,
				Header: "carbon red.(%)", HeaderFormat: " %14s", Format: " %14.1f"},
			{Name: "relative_ect", Kind: result.KindFloat, Prec: 3, Header: "rel. ECT", HeaderFormat: " %12s", Format: " %12.3f"},
			{Name: "relative_jct", Kind: result.KindFloat, Prec: 3, Header: "rel. JCT", HeaderFormat: " %12s", Format: " %12.3f"},
		},
	}
	for _, setting := range settings {
		for _, nm := range names {
			a := rows[nm][setting]
			t.Row(result.Float(setting), result.Str(nm),
				result.Float(metrics.Summarize(a.carbon).Mean),
				result.Float(metrics.Summarize(a.ect).Mean),
				result.Float(metrics.Summarize(a.jct).Mean))
		}
	}
	return result.New().Add(t), nil
}

// fig16 varies the total number of jobs in the simulator (A.2.1).
func fig16(opt Options) (*result.Artifact, error) {
	a, err := runAxis(opt, "jobs", false, workload.MixTPCH, jobCountSettings,
		func(v float64, seed int64) (int, float64) { return int(v), 30 })
	if err != nil {
		return nil, err
	}
	a.Textf("paper: orderings stay constant; small batches are noisy; CAP-FIFO's JCT grows with batch size\n")
	return a, nil
}

// fig17 varies the total number of jobs in the prototype (A.2.1).
func fig17(opt Options) (*result.Artifact, error) {
	a, err := runAxis(opt, "jobs", true, workload.MixBoth, []float64{25, 50, 100},
		func(v float64, seed int64) (int, float64) { return int(v), 30 })
	if err != nil {
		return nil, err
	}
	a.Textf("paper: mirrors the simulator, but CAP's JCT does not inflate with batch size (capped default blocks less)\n")
	return a, nil
}

// fig18 varies the Poisson interarrival time in the simulator (A.2.2).
func fig18(opt Options) (*result.Artifact, error) {
	a, err := runAxis(opt, "1/λ(s)", false, workload.MixTPCH, arrivalSettings,
		func(v float64, seed int64) (int, float64) { return 50, v })
	if err != nil {
		return nil, err
	}
	a.Textf("paper: under heavy load (small 1/λ) PCAPS and Decima gain more vs FIFO\n")
	return a, nil
}

// fig19 varies the Poisson interarrival time in the prototype (A.2.2).
func fig19(opt Options) (*result.Artifact, error) {
	a, err := runAxis(opt, "1/λ(s)", true, workload.MixBoth, arrivalSettings,
		func(v float64, seed int64) (int, float64) { return 50, v })
	if err != nil {
		return nil, err
	}
	a.Textf("paper: mirrors the simulator; PCAPS and Decima improve at heavy load\n")
	return a, nil
}

// fig20 measures scheduler-invocation latency as a function of the
// number of outstanding jobs (A.2.3): FIFO and CAP-FIFO stay in the
// microsecond range; Decima and PCAPS grow with queue length; PCAPS adds
// a small constant over Decima.
//
// Unlike every other runner, fig20 deliberately stays serial and off the
// worker pool: it reports wall-clock Pick latencies, which concurrent
// simulations on sibling cores would skew — RunAll likewise holds it
// back until the other artifacts' fan-out has drained. Its measured
// values are inherently run-to-run noise, so they are the one part of a
// report body that is not byte-reproducible (the table's structure and
// row set are).
func fig20(opt Options) (*result.Artifact, error) {
	e := newEnv(opt.scoped("DE"))
	tr := e.traces["DE"]
	queueSizes := []int{1, 5, 10, 25, 50, 75, 100}
	if opt.Fast {
		queueSizes = []int{1, 10, 50}
	}
	reps := 200
	if opt.Fast {
		reps = 50
	}
	t := &result.Table{
		Name: "latency_us",
		Columns: []result.Column{
			{Name: "jobs", Kind: result.KindInt, Header: "jobs", HeaderFormat: "%-8s", Format: "%-8d"},
			{Name: "fifo", Kind: result.KindFloat, Prec: 2, Header: "FIFO", HeaderFormat: " %12s", Format: " %12.2f"},
			{Name: "cap_fifo", Kind: result.KindFloat, Prec: 2, Header: "CAP-FIFO", HeaderFormat: " %12s", Format: " %12.2f"},
			{Name: "decima", Kind: result.KindFloat, Prec: 2, Header: "Decima", HeaderFormat: " %12s", Format: " %12.2f"},
			{Name: "pcaps", Kind: result.KindFloat, Prec: 2, Header: "PCAPS",
				HeaderFormat: " %12s   (µs per invocation)", Format: " %12.2f"},
		},
	}
	for _, qn := range queueSizes {
		seed := e.opt.Seed
		jobs := batch(qn, 0.001, workload.MixTPCH, seed) // all queued at once
		lat := measurePickLatency(simConfig(tr, seed), jobs, reps, map[string]func() sim.Scheduler{
			"FIFO":     func() sim.Scheduler { return &sched.FIFO{} },
			"CAP-FIFO": func() sim.Scheduler { return sched.NewCAP(&sched.FIFO{}, 20) },
			"Decima":   func() sim.Scheduler { return sched.NewDecima(seed) },
			"PCAPS":    func() sim.Scheduler { return sched.NewPCAPS(sched.NewDecima(seed), 0.5, seed) },
		})
		t.Row(result.Int(qn),
			result.Float(lat["FIFO"]), result.Float(lat["CAP-FIFO"]),
			result.Float(lat["Decima"]), result.Float(lat["PCAPS"]))
	}
	a := result.New().Add(t)
	a.Textf("paper: decision-rule policies stay <5 ms; Decima/PCAPS grow with queue length; PCAPS adds a constant few ms over Decima (sub-20 ms overall)\n")
	return a, nil
}

// latencyProbe captures a live cluster snapshot mid-run and times Pick
// calls of each candidate scheduler against it.
type latencyProbe struct {
	reps    int
	targets map[string]func() sim.Scheduler
	out     map[string]float64
	done    bool
	inner   sched.FIFO
}

func (p *latencyProbe) Name() string { return "latency-probe" }

func (p *latencyProbe) Pick(c *sim.Cluster) sim.Decision {
	if !p.done && len(c.Runnable()) > 0 {
		p.done = true
		// Measure in sorted-name order so the measurement sequence (and
		// any cache-warming cross-talk between candidates) is the same
		// every run; only the timed digits themselves are live.
		names := make([]string, 0, len(p.targets))
		for name := range p.targets {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s := p.targets[name]()
			//det:ambient fig20 measures live wall-clock Pick latency; its digits are masked in the goldens
			start := time.Now()
			for i := 0; i < p.reps; i++ {
				s.Pick(c)
			}
			//det:ambient fig20 measures live wall-clock Pick latency; its digits are masked in the goldens
			p.out[name] = float64(time.Since(start).Microseconds()) / float64(p.reps)
		}
	}
	return p.inner.Pick(c)
}

func measurePickLatency(cfg sim.Config, jobs []*dag.Job, reps int, targets map[string]func() sim.Scheduler) map[string]float64 {
	probe := &latencyProbe{reps: reps, targets: targets, out: map[string]float64{}}
	mustRun(cfg, jobs, probe)
	return probe.out
}

package experiments

import (
	"fmt"
	"strings"

	"pcaps/internal/core"
	"pcaps/internal/dag"
	"pcaps/internal/metrics"
	"pcaps/internal/optimal"
	"pcaps/internal/result"
)

func init() { register("fig1", "motivating example: four policies on one DAG (§1, Fig 1)", fig1) }

// motivatingJob is the Fig. 1 example: a fork-join DAG whose long
// green→purple chain must be prioritized to finish early. The short side
// branches carry lower stage IDs, so the FIFO baseline runs them first
// and delays the bottleneck chain — the pathology the figure motivates.
// Stage durations are in hours (slots).
func motivatingJob() *dag.Job {
	b := dag.NewBuilder(0, "motivating")
	src := b.Stage("src", 1, 1)
	sides := make([]int, 6)
	for i := range sides {
		sides[i] = b.Stage(fmt.Sprintf("side%d", i), 1, 2)
	}
	green := b.Stage("green", 1, 3)   // bottleneck chain, part 1
	purple := b.Stage("purple", 1, 3) // bottleneck chain, part 2
	sink := b.Stage("sink", 1, 2)
	for _, id := range sides {
		b.Edge(src, id).Edge(id, sink)
	}
	b.Edge(src, green).Edge(green, purple).Edge(purple, sink)
	return b.MustBuild()
}

// fig1Carbon is an 18-hour trace with a pronounced early peak, the shape
// sketched on the left of Fig. 1: the job's execution window overlaps the
// peak, so carbon-aware policies must decide what to run through it.
func fig1Carbon() []float64 {
	return []float64{
		250, 380, 520, 650, 650, 600, 450, 350, 280,
		230, 210, 200, 200, 210, 230, 260, 300, 340,
	}
}

// pcapsToy runs the slotted analogue of Algorithm 1 on the motivating
// instance: at each slot, eligible stages are scored by downstream
// critical path, converted to relative importance, and admitted through
// the Ψγ filter; at least one stage runs whenever the machine pool is
// otherwise idle (the liveness override).
func pcapsToy(inst optimal.Instance, gamma float64) (*optimal.Schedule, error) {
	psi, err := core.NewPsi(gamma, minOf(inst.Carbon), maxOf(inst.Carbon))
	if err != nil {
		return nil, err
	}
	durs := make([]int, len(inst.Job.Stages))
	for i, st := range inst.Job.Stages {
		durs[i] = int(st.TaskDuration)
	}
	cp := inst.Job.CriticalPathDown()
	maxCP := 0.0
	for _, v := range cp {
		if v > maxCP {
			maxCP = v
		}
	}
	rem := append([]int(nil), durs...)
	sched := &optimal.Schedule{}
	for t := 0; t < 10*len(inst.Carbon); t++ {
		var eligible []int
		for _, st := range inst.Job.Stages {
			if rem[st.ID] == 0 {
				continue
			}
			ready := true
			for _, p := range st.Parents {
				if rem[p] != 0 {
					ready = false
					break
				}
			}
			if ready {
				eligible = append(eligible, st.ID)
			}
		}
		if len(eligible) == 0 {
			break
		}
		// Relative importance: downstream critical path against the
		// best eligible stage; consider stages most-important-first so
		// bottlenecks claim machines during expensive hours.
		sortByCPDesc(eligible, cp)
		bestCP := 0.0
		for _, id := range eligible {
			if cp[id] > bestCP {
				bestCP = cp[id]
			}
		}
		price := inst.Carbon[min(t, len(inst.Carbon)-1)]
		var run []int
		for _, id := range eligible {
			if len(run) >= inst.K {
				break
			}
			r := 1.0
			if bestCP > 0 {
				r = cp[id] / bestCP
			}
			if psi.Admits(r, price) || len(run) == 0 && t > 0 && allIdleAfter(sched) {
				run = append(run, id)
			}
		}
		// Liveness: if nothing admitted and nothing running, run the
		// most important stage.
		if len(run) == 0 {
			mostImportant := eligible[0]
			for _, id := range eligible {
				if cp[id] > cp[mostImportant] {
					mostImportant = id
				}
			}
			if allIdleAfter(sched) {
				run = append(run, mostImportant)
			}
		}
		sched.Slots = append(sched.Slots, run)
		for _, id := range run {
			rem[id]--
		}
	}
	return sched, nil
}

// allIdleAfter reports whether the previous slot ran nothing (the toy
// model's "no machines currently busy" condition).
func allIdleAfter(s *optimal.Schedule) bool {
	if len(s.Slots) == 0 {
		return true
	}
	return len(s.Slots[len(s.Slots)-1]) == 0
}

// sortByCPDesc orders stage IDs by downstream critical path, descending
// (stable insertion sort; the slices are tiny).
func sortByCPDesc(ids []int, cp []float64) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && cp[ids[j]] > cp[ids[j-1]]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// fig1 regenerates the motivating comparison: FIFO, T-OPT, C-OPT (18-hour
// deadline), and PCAPS on the example DAG. Paper: C-OPT −51.2% carbon at
// +28.5% time; PCAPS −23.1% carbon and 7% earlier completion, both vs
// FIFO.
func fig1(opt Options) (*result.Artifact, error) {
	carbonTrace := fig1Carbon()
	// As in the paper, C-OPT may use the whole 18-hour window as its
	// deadline (their FIFO takes 14 hours, ours 13).
	inst := optimal.Instance{Job: motivatingJob(), K: 4, Carbon: carbonTrace, Deadline: 18}

	// The four policies are independent solves; T-OPT and C-OPT are the
	// expensive searches, so fanning them out over the pool roughly
	// halves the artifact's wall-clock. Each solver gets a private clone
	// of the job because optimal's validation normalizes edge lists in
	// place.
	solvers := []func(optimal.Instance) (*optimal.Schedule, error){
		optimal.ListSchedule,
		optimal.TOpt,
		optimal.COpt,
		func(in optimal.Instance) (*optimal.Schedule, error) { return pcapsToy(in, 0.8) },
	}
	scheds := make([]*optimal.Schedule, len(solvers))
	errs := make([]error, len(solvers))
	forEach(opt.pool, len(solvers), func(i int) {
		local := inst
		local.Job = inst.Job.Clone()
		scheds[i], errs[i] = solvers[i](local)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	fifo, topt, copt, pc := scheds[0], scheds[1], scheds[2], scheds[3]
	if err := optimal.Validate(inst, pc); err != nil {
		return nil, fmt.Errorf("fig1: PCAPS toy schedule invalid: %w", err)
	}

	baseC, baseT := fifo.CarbonCost(carbonTrace), fifo.Makespan()
	t := &result.Table{
		Name: "policies",
		Columns: []result.Column{
			{Name: "policy", Kind: result.KindString, Header: "policy", HeaderFormat: "%-7s", Format: "%-7s"},
			{Name: "hours", Kind: result.KindInt, Header: "hours", HeaderFormat: " %9s", Format: " %9d"},
			{Name: "time_delta_pct", Kind: result.KindFloat, Prec: 1, Header: "Δtime", HeaderFormat: " %12s", Format: " %+11.1f%%"},
			{Name: "carbon", Kind: result.KindFloat, Header: "carbon", HeaderFormat: " %10s", Format: " %10.0f"},
			{Name: "carbon_delta_pct", Kind: result.KindFloat, Prec: 1, Header: "Δcarbon", HeaderFormat: " %12s", Format: " %+11.1f%%"},
		},
	}
	row := func(name string, s *optimal.Schedule) {
		c := s.CarbonCost(carbonTrace)
		t.Row(result.Str(name), result.Int(s.Makespan()),
			result.Float(metrics.PercentChange(float64(s.Makespan()), float64(baseT))),
			result.Float(c), result.Float(metrics.PercentChange(c, baseC)))
	}
	row("FIFO", fifo)
	row("T-OPT", topt)
	row("C-OPT", copt)
	row("PCAPS", pc)
	a := result.New().Add(t)
	a.Textf("paper: C-OPT −51.2%% carbon / +28.5%% time; PCAPS −23.1%% carbon / −7%% time (vs FIFO)\n")
	a.Textf("%s", renderTimeline("FIFO ", fifo, inst)+renderTimeline("C-OPT", copt, inst)+renderTimeline("PCAPS", pc, inst))
	return a, nil
}

// renderTimeline draws an ASCII occupancy strip: one row per policy,
// digits = number of stages running that hour.
func renderTimeline(name string, s *optimal.Schedule, inst optimal.Instance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s |", name)
	for _, ids := range s.Slots {
		if len(ids) == 0 {
			b.WriteString("·")
		} else {
			fmt.Fprintf(&b, "%d", len(ids))
		}
	}
	b.WriteString("|\n")
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package experiments

import (
	"pcaps/internal/ablation"
	"pcaps/internal/result"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func init() {
	register("ablation", "design-choice ablations (DESIGN.md)", ablationReport)
	order = append(order, "ablation")
}

// ablationReport runs the DESIGN.md ablation suite: threshold shape,
// importance signal, parallelism scaling, forecast error, and the
// suspend-resume baseline, all against carbon-agnostic Decima on the DE
// grid.
func ablationReport(opt Options) (*result.Artifact, error) {
	e := newEnv(opt.scoped("DE"))
	n := opt.Jobs
	if n <= 0 {
		n = 50
	}
	if opt.Fast {
		n = 25
	}
	seed := e.opt.Seed
	jobs := batch(n, 30, workload.MixTPCH, seed)
	tr := e.trialTrace("DE", 60+n, cellSeed(e.opt.Seed, "DE", int64(n)))
	cfg := simConfig(tr, seed)
	gamma := 0.6
	mk := func() sched.Probabilistic { return sched.NewDecima(seed) }
	variants := []sim.Scheduler{
		&ablation.FilterPCAPS{PB: mk(), Gamma: gamma, Seed: seed},
		&ablation.FilterPCAPS{PB: mk(), Gamma: gamma, Shape: ablation.ShapeLinear, Seed: seed},
		&ablation.FilterPCAPS{PB: mk(), Gamma: gamma, Shape: ablation.ShapeStep, Seed: seed},
		&ablation.FilterPCAPS{PB: mk(), Gamma: gamma, UniformImportance: true, Seed: seed},
		&ablation.FilterPCAPS{PB: mk(), Gamma: gamma, DisableParallelismScaling: true, Seed: seed},
		&ablation.FilterPCAPS{PB: mk(), Gamma: gamma, BoundsError: 0.05, Seed: seed},
		&ablation.FilterPCAPS{PB: mk(), Gamma: gamma, BoundsError: 0.15, Seed: seed},
		&ablation.SuspendResume{Inner: mk(), Theta: 0.5},
	}
	// Every entry is an independent simulation; hand Compare the pool's
	// fan-out so the suite spreads across the worker budget.
	outs, err := ablation.CompareWith(cfg, jobs, sched.NewDecima(seed), variants,
		func(n int, fn func(i int)) { forEach(e.opt.pool, n, fn) })
	if err != nil {
		return nil, err
	}
	a := result.New().Add(ablation.Table(outs))
	a.Textf("(γ=%.1f, %d TPC-H jobs, DE grid; baseline row is carbon-agnostic Decima)\n"+
		"reading: exponential Ψγ with the precedence signal should pay the least ECT/JCT per unit of carbon saved;\n"+
		"importance-blind and suspend-resume variants save carbon but defer bottlenecks\n", gamma, n)
	return a, nil
}

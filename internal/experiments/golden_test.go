package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden rewrites the recorded artifact text instead of comparing
// against it: go test ./internal/experiments -run TestGoldenFastText -update
var updateGolden = flag.Bool("update", false, "rewrite golden artifact files")

// TestGoldenFastText pins the text rendering of every artifact's fast run
// to the bytes recorded in testdata/golden/ — the pre-refactor pcapsim
// stdout. The structured result model must reproduce those bytes exactly
// through the text renderer; any diff here is a rendering regression, not
// a formatting preference. fig20's latency columns are live wall-clock
// measurements, so that artifact is compared with its digits masked (the
// table's structure and row set are still pinned byte-for-byte).
func TestGoldenFastText(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(id, Options{Fast: true, Seed: 42})
			if err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			got := rep.Render()
			path := filepath.Join("testdata", "golden", id+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			want := string(wantBytes)
			if id == "fig20" {
				got, want = maskTimings(got), maskTimings(want)
			}
			if got != want {
				t.Fatalf("rendered text diverged from recorded output:\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

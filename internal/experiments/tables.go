package experiments

import (
	"pcaps/internal/metrics"
	"pcaps/internal/result"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func init() {
	register("table1", "carbon intensity trace characteristics", table1)
	register("table2", "prototype results summary (§6.3)", table2)
	register("table3", "simulator results summary (§6.4)", table3)
}

// paperTable1 holds the published Table 1 values for side-by-side
// rendering: min, max, mean, coefficient of variation.
var paperTable1 = map[string][4]float64{
	"PJM":   {293, 567, 425, 0.110},
	"CAISO": {83, 451, 274, 0.309},
	"ON":    {12, 179, 50, 0.654},
	"DE":    {130, 765, 440, 0.280},
	"NSW":   {267, 817, 647, 0.143},
	"ZA":    {586, 785, 713, 0.046},
}

// table1 regenerates Table 1: carbon-trace characteristics per grid,
// measured columns next to the paper's published quadruple.
func table1(opt Options) (*result.Artifact, error) {
	e := newEnv(opt)
	t := &result.Table{
		Name: "traces",
		Columns: []result.Column{
			{Name: "grid", Kind: result.KindString, Header: "grid", HeaderFormat: "%-6s", Format: "%-6s"},
			{Name: "min", Kind: result.KindFloat, Header: "min", HeaderFormat: " %9s", Format: " %9.0f"},
			{Name: "max", Kind: result.KindFloat, Header: "max", HeaderFormat: " %9s", Format: " %9.0f"},
			{Name: "mean", Kind: result.KindFloat, Header: "mean", HeaderFormat: " %9s", Format: " %9.0f"},
			{Name: "coeff_var", Kind: result.KindFloat, Prec: 3, Header: "coeff.var", HeaderFormat: " %10s", Format: " %10.3f"},
			{Name: "paper_min", Kind: result.KindFloat, Header: "paper(min/max/mean/cv)", HeaderFormat: "   %s", Format: "   %.0f"},
			{Name: "paper_max", Kind: result.KindFloat, Format: "/%.0f"},
			{Name: "paper_mean", Kind: result.KindFloat, Format: "/%.0f"},
			{Name: "paper_cv", Kind: result.KindFloat, Prec: 3, Format: "/%.3f"},
		},
	}
	for _, name := range e.opt.Grids {
		tr, ok := e.traces[name]
		if !ok {
			continue
		}
		s := tr.Stats()
		p := paperTable1[name]
		t.Row(result.Str(name),
			result.Float(s.Min), result.Float(s.Max), result.Float(s.Mean), result.Float(s.CoeffVar),
			result.Float(p[0]), result.Float(p[1]), result.Float(p[2]), result.Float(p[3]))
	}
	a := result.New().Add(t)
	a.Textf("(%d hourly samples per grid; paper uses 26,304)\n", e.opt.Hours)
	return a, nil
}

// normTriple holds one scheduler's three Table 2/3 metrics, normalized to
// the experiment's baseline.
type normTriple struct {
	carbonPct float64 // CO2 reduction % (positive = reduction)
	ect, jct  float64 // ratios vs baseline
	n         int
}

func (a *normTriple) add(base, r *sim.Result) {
	a.carbonPct += -metrics.PercentChange(r.CarbonGrams, base.CarbonGrams)
	a.ect += r.ECT / base.ECT
	a.jct += r.AvgJCT / base.AvgJCT
	a.n++
}

func (a *normTriple) cells(name string) []result.Cell {
	n := float64(a.n)
	if a.n == 0 {
		n = 1
	}
	return []result.Cell{
		result.Str(name),
		result.Float(a.carbonPct / n), result.Float(a.ect / n), result.Float(a.jct / n),
	}
}

// schedulerTable is the shared Table 2/3 shape: one row per scheduler,
// three metrics normalized to the named baseline.
func schedulerTable(baseline string) *result.Table {
	return &result.Table{
		Name: "summary",
		Columns: []result.Column{
			{Name: "scheduler", Kind: result.KindString, Header: "scheduler", HeaderFormat: "%-14s", Format: "%-14s"},
			{Name: "co2_reduction_pct", Kind: result.KindFloat, Prec: 1, Header: "CO2 red.", HeaderFormat: " %13s", Format: " %12.1f%%"},
			{Name: "avg_ect", Kind: result.KindFloat, Prec: 3, Header: "avg ECT", HeaderFormat: " %10s", Format: " %10.3f"},
			{Name: "avg_jct", Kind: result.KindFloat, Prec: 3, Header: "avg JCT",
				HeaderFormat: " %10s   (normalized to " + baseline + ")", Format: " %10.3f"},
		},
	}
}

// matrixCell is one (grid, batch size, trial) coordinate of a table's
// experiment matrix.
type matrixCell struct {
	grid        string
	size, trial int
}

// matrixCells enumerates the full grid × size × trial matrix in rendering
// order; runners fan the cells out over the pool and fold the per-cell
// results back in this order, so aggregation is independent of which
// worker finishes first.
func matrixCells(grids []string, sizes []int, trials int) []matrixCell {
	cells := make([]matrixCell, 0, len(grids)*len(sizes)*trials)
	for _, grid := range grids {
		for _, size := range sizes {
			for trial := 0; trial < trials; trial++ {
				cells = append(cells, matrixCell{grid: grid, size: size, trial: trial})
			}
		}
	}
	return cells
}

// tableMatrix runs one scheduler set over the full matrix and averages
// each scheduler's metrics, normalized to names[0] (the baseline).
func tableMatrix(e *env, sizes []int, trials int, names []string,
	run func(c matrixCell, seed int64) map[string]*sim.Result) map[string]*normTriple {
	cells := matrixCells(e.opt.Grids, sizes, trials)
	runs := make([]map[string]*sim.Result, len(cells))
	forEach(e.opt.pool, len(cells), func(i int) {
		c := cells[i]
		runs[i] = run(c, cellSeed(e.opt.Seed, c.grid, int64(c.size), int64(c.trial)))
	})
	aggs := map[string]*normTriple{}
	for _, n := range names {
		aggs[n] = &normTriple{}
	}
	for _, rs := range runs {
		base := rs[names[0]]
		for _, n := range names {
			aggs[n].add(base, rs[n])
		}
	}
	return aggs
}

// tableSizes resolves the batch-size and trial axes shared by Tables 2/3.
func tableSizes(opt Options) (sizes []int, trials int) {
	sizes = []int{25, 50, 100}
	trials = opt.Trials
	if trials <= 0 {
		trials = 3
	}
	if opt.Fast {
		sizes = []int{25}
		trials = 1
	}
	if opt.Jobs > 0 {
		sizes = []int{opt.Jobs}
	}
	return sizes, trials
}

// table2 regenerates Table 2: prototype results averaged over the six
// grids, batch sizes {25,50,100}, metrics normalized to the
// Spark/Kubernetes default. Paper: Decima 1.2% / 0.857 / 0.852; CAP
// 24.7% / 1.126 / 1.996; PCAPS 32.9% / 1.013 / 1.381.
func table2(opt Options) (*result.Artifact, error) {
	e := newEnv(opt)
	sizes, trials := tableSizes(e.opt)
	names := []string{"default", "Decima", "CAP", "PCAPS"}
	aggs := tableMatrix(e, sizes, trials, names, func(c matrixCell, seed int64) map[string]*sim.Result {
		jobs := batch(c.size, 30, workload.MixBoth, seed)
		window := 60 + c.size // hours: generous for the batch
		tr := e.trialTrace(c.grid, window, seed)
		// Grouped by shared decision prefix: CAP over the default FIFO is
		// exactly the default while the quota stays at K, and PCAPS shares
		// Decima's sampling stream until its first filtered decision.
		g := mustRunGroup(protoConfig(tr, seed), jobs,
			sched.NewKubeDefault(), sched.NewCAP(sched.NewKubeDefault(), 20))
		p := mustRunGroup(protoConfig(tr, seed), jobs,
			sched.NewDecima(seed), sched.NewPCAPS(sched.NewDecima(seed), 0.5, seed))
		return map[string]*sim.Result{
			"default": g[0], "CAP": g[1],
			"Decima": p[0], "PCAPS": p[1],
		}
	})
	t := schedulerTable("default")
	for _, n := range names {
		t.Rows = append(t.Rows, aggs[n].cells(n))
	}
	a := result.New().Add(t)
	a.Textf("paper:        default 0%%/1.0/1.0 · Decima 1.2%%/0.857/0.852 · CAP 24.7%%/1.126/1.996 · PCAPS 32.9%%/1.013/1.381\n")
	return a, nil
}

// table3 regenerates Table 3: simulator results, normalized to Spark
// standalone FIFO. Paper carbon reductions: W.Fair 12.1%, Decima 21.5%,
// GreenHadoop 8.2%, CAP-FIFO 22.7%, CAP-W.Fair 34.2%, CAP-Decima 31.1%,
// PCAPS 39.7%.
func table3(opt Options) (*result.Artifact, error) {
	e := newEnv(opt)
	sizes, trials := tableSizes(e.opt)
	names := []string{"FIFO", "W.Fair", "Decima", "GreenHadoop", "CAP-FIFO", "CAP-W.Fair", "CAP-Decima", "PCAPS"}
	aggs := tableMatrix(e, sizes, trials, names, func(c matrixCell, seed int64) map[string]*sim.Result {
		jobs := batch(c.size, 30, workload.MixTPCH, seed)
		tr := e.trialTrace(c.grid, 60+c.size, seed)
		cfg := simConfig(tr, seed)
		// Each CAP wrapper groups with its inner scheduler (identical
		// decisions while the quota stays at K), and PCAPS with the
		// Decima pair it samples from.
		f := mustRunGroup(cfg, jobs, &sched.FIFO{}, sched.NewCAP(&sched.FIFO{}, 20))
		w := mustRunGroup(cfg, jobs, &sched.WeightedFair{}, sched.NewCAP(&sched.WeightedFair{}, 20))
		d := mustRunGroup(cfg, jobs,
			sched.NewDecima(seed), sched.NewCAP(sched.NewDecima(seed), 20),
			sched.NewPCAPS(sched.NewDecima(seed), 0.5, seed))
		return map[string]*sim.Result{
			"FIFO": f[0], "CAP-FIFO": f[1],
			"W.Fair": w[0], "CAP-W.Fair": w[1],
			"Decima": d[0], "CAP-Decima": d[1], "PCAPS": d[2],
			"GreenHadoop": mustRun(cfg, jobs, sched.NewGreenHadoop()),
		}
	})
	t := schedulerTable("FIFO")
	for _, n := range names {
		t.Rows = append(t.Rows, aggs[n].cells(n))
	}
	a := result.New().Add(t)
	a.Textf("paper CO2 red.: W.Fair 12.1%% · Decima 21.5%% · GreenHadoop 8.2%% · CAP-FIFO 22.7%% · CAP-W.Fair 34.2%% · CAP-Decima 31.1%% · PCAPS 39.7%%\n")
	a.Textf("paper ECT:      0.972 · 0.970 · 1.077 · 1.108 · 1.011(WF) · 1.061(Dec) · 1.045(PCAPS)\n")
	return a, nil
}

package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pcaps/internal/carbon"
	"pcaps/internal/seed"
)

// pool bounds the total worker goroutines of one experiment run. A single
// pool is created per Run/RunAll call and shared by every nested forEach
// (artifact fan-out, per-runner cell fan-out), so Options.Parallel is a
// true process-wide cap rather than a per-level multiplier.
type pool struct {
	// tokens holds permits for extra worker goroutines beyond the
	// calling one; capacity is parallel-1 so callers plus extras never
	// exceed the requested parallelism.
	tokens chan struct{}
}

func newPool(parallel int) *pool {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &pool{tokens: make(chan struct{}, parallel-1)}
}

// forEach runs fn(i) for every i in [0, n). The calling goroutine always
// works through the cells itself; extra workers are spawned only while
// pool permits are free (non-blocking acquire, so nested fan-outs can
// never deadlock — they just proceed serially when the budget is spent).
// A nil pool runs serially. Worker panics are captured, stop further
// cells from being dispatched, and the first one is re-raised in the
// caller after in-flight workers drain — preserving mustRun's fail-fast
// contract across goroutine boundaries without minutes of wasted
// simulation behind a doomed run.
//
// fn must make every stochastic choice from seeds derived via cellSeed so
// that results do not depend on which worker runs which cell or in what
// order; callers collect per-cell outputs into index i of a pre-sized
// slice and fold them serially afterwards.
func forEach(p *pool, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	next.Store(-1)
	work := func() {
		defer func() {
			if r := recover(); r != nil {
				failed.Store(true)
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
			}
		}()
		for !failed.Load() {
			i := int(next.Add(1))
			if i >= n {
				return
			}
			fn(i)
		}
	}
	if p != nil {
	spawn:
		for extras := 0; extras < n-1; extras++ {
			select {
			case p.tokens <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-p.tokens }()
					work()
				}()
			default:
				break spawn // budget spent; the caller still works
			}
		}
	}
	work()
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// cellSeed derives the RNG seed of one experiment cell from the run seed
// and the cell's coordinates (grid name plus integer axes such as batch
// size and trial index). Hashing makes each cell's stochastic choices a
// pure function of its identity rather than of how many draws earlier
// cells made, so serial and parallel execution produce identical results.
func cellSeed(base int64, grid string, coords ...int64) int64 {
	return seed.Derive(base, grid, coords...)
}

// traceKey identifies one synthesized trace.
type traceKey struct {
	grid  string
	hours int
	seed  int64
}

// traceEntry carries the once-guard so concurrent first misses on the
// same key synthesize exactly one trace between them.
type traceEntry struct {
	once sync.Once
	tr   *carbon.Trace
}

// traceCache shares synthesized traces across runners and workers.
// Traces are read-only after construction (every accessor is a pure
// lookup and Slice returns views), so concurrent reuse is safe;
// re-synthesizing the three paper years per runner dominated `-exp all`
// startup before the cache.
var traceCache sync.Map // traceKey → *traceEntry

func cachedTrace(spec carbon.GridSpec, hours int, seed int64) *carbon.Trace {
	key := traceKey{grid: spec.Name, hours: hours, seed: seed}
	v, _ := traceCache.LoadOrStore(key, &traceEntry{})
	e := v.(*traceEntry)
	e.once.Do(func() { e.tr = carbon.Synthesize(spec, hours, 60, seed) })
	return e.tr
}

package experiments

import (
	"sync"

	"pcaps/internal/carbon"
	"pcaps/internal/scenario"
	"pcaps/internal/seed"
)

// pool bounds the total worker goroutines of one experiment run. A single
// pool is created per Run/RunAll call and shared by every nested forEach
// (artifact fan-out, per-runner cell fan-out), so Options.Parallel is a
// true process-wide cap rather than a per-level multiplier. The worker
// machinery itself lives in internal/scenario (scenario.NewPool): one
// implementation of the non-blocking shared-budget pool serves both the
// hand-written runners here and compiled scenarios.
type pool struct {
	inner scenario.Pool
}

func newPool(parallel int) *pool {
	return &pool{inner: scenario.NewPool(parallel)}
}

// forEach runs fn(i) for every i in [0, n). The calling goroutine always
// works through the cells itself; extra workers are spawned only while
// pool permits are free (non-blocking acquire, so nested fan-outs can
// never deadlock — they just proceed serially when the budget is spent).
// A nil pool runs serially. Worker panics are captured, stop further
// cells from being dispatched, and the first one is re-raised in the
// caller after in-flight workers drain — preserving mustRun's fail-fast
// contract across goroutine boundaries without minutes of wasted
// simulation behind a doomed run.
//
// fn must make every stochastic choice from seeds derived via cellSeed so
// that results do not depend on which worker runs which cell or in what
// order; callers collect per-cell outputs into index i of a pre-sized
// slice and fold them serially afterwards.
func forEach(p *pool, n int, fn func(i int)) {
	if p == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.inner.ForEach(n, fn)
}

// cellSeed derives the RNG seed of one experiment cell from the run seed
// and the cell's coordinates (grid name plus integer axes such as batch
// size and trial index). Hashing makes each cell's stochastic choices a
// pure function of its identity rather than of how many draws earlier
// cells made, so serial and parallel execution produce identical results.
func cellSeed(base int64, grid string, coords ...int64) int64 {
	return seed.Derive(base, grid, coords...)
}

// traceKey identifies one synthesized trace.
type traceKey struct {
	grid  string
	hours int
	seed  int64
}

// traceEntry carries the once-guard so concurrent first misses on the
// same key synthesize exactly one trace between them.
type traceEntry struct {
	once sync.Once
	tr   *carbon.Trace
}

// traceCache shares synthesized traces across runners and workers.
// Traces are read-only after construction (every accessor is a pure
// lookup and Slice returns views), so concurrent reuse is safe;
// re-synthesizing the three paper years per runner dominated `-exp all`
// startup before the cache.
var traceCache sync.Map // traceKey → *traceEntry

func cachedTrace(spec carbon.GridSpec, hours int, seed int64) *carbon.Trace {
	key := traceKey{grid: spec.Name, hours: hours, seed: seed}
	v, _ := traceCache.LoadOrStore(key, &traceEntry{})
	e := v.(*traceEntry)
	e.once.Do(func() { e.tr = carbon.Synthesize(spec, hours, 60, seed) })
	return e.tr
}

package experiments

import (
	"fmt"

	"pcaps/internal/arrivals"
	"pcaps/internal/result"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func init() {
	register("hyperscale", "streaming engine at scale: jobs × executors × policies, memory-bounded", runHyperscale)
}

// hyperscaleMeanWork is the mean TPC-H job work in executor-seconds
// (uniform over the three paper scales), used to capacity-match the
// offered rate to the cluster size.
const hyperscaleMeanWork = (180.0 + 386.0 + 1261.0) / 3

// hyperscaleRho is the target utilization of each cell. It must stay
// below every policy's worst-case service capacity or the in-flight
// population — the quantity streaming memory is proportional to — grows
// with the job count instead of staying bounded: CAP's quota floor is
// half the cluster (below), so 0.4 leaves headroom even in its dirtiest
// carbon stretches.
const hyperscaleRho = 0.4

// hyperscaleCells is the full-mode scale matrix: the job-count and
// executor-count axes the roadmap names, crossed. Full mode is a
// deliberate heavyweight (the PCAPS 1M × 5000 cell dominates — Decima's
// Pick is linear in the in-flight population, which scales with the
// cluster under capacity-matched arrivals); budget on the order of an
// hour. -fast runs one small cell in seconds.
var hyperscaleCells = []struct{ jobs, execs int }{
	{100_000, 1000},
	{100_000, 5000},
	{1_000_000, 1000},
	{1_000_000, 5000},
}

// fastHyperscaleCells keeps the golden/fast path cheap while still
// exercising the same streaming machinery end to end.
var fastHyperscaleCells = []struct{ jobs, execs int }{
	{2000, 200},
}

// runHyperscale drives the streaming engine (sim.RunStream) through the
// scale matrix under FIFO, CAP, and PCAPS on the DE grid: jobs are
// admitted lazily from a capacity-matched constant arrival stream and
// retired as they complete, so even the million-job cells hold only the
// in-flight population in memory. Every reported number is a
// deterministic function of the cell seed (JCT quantiles are P² sketch
// estimates — DESIGN.md §10); wall-clock throughput and peak RSS live in
// BenchmarkHyperscaleStream, not here, so the artifact stays
// golden-stable.
func runHyperscale(opt Options) (*result.Artifact, error) {
	e := newEnv(opt.scoped("DE"))
	cells := hyperscaleCells
	if opt.Fast {
		cells = fastHyperscaleCells
	}
	policyNames := []string{"fifo", "cap", "pcaps"}
	newSched := func(k, execs int, seed int64) sim.Scheduler {
		switch k {
		case 0:
			return &sched.FIFO{}
		case 1:
			// Two departures from the paper defaults, both required for a
			// sustainable open-loop stream: the quota floor scales with
			// the cluster (DefaultCAPB = 20 is an absolute count tuned to
			// K = 100 and would throttle thousands of executors to a
			// sliver), and WorkConserving redirects picks the assignment
			// loop cannot act on — FIFO's head-of-line blocking under
			// carbon-scaled limits otherwise collapses CAP's service rate
			// to a single stage's width, unbounded backlog at any rho.
			cw := sched.NewCAP(&sched.FIFO{}, execs/2)
			cw.WorkConserving = true
			return cw
		default:
			return sched.NewPCAPS(sched.NewDecima(seed), sched.DefaultPCAPSGamma, seed)
		}
	}

	type runOut struct {
		stream *sim.StreamStats
		carbon float64
		ect    float64
		events int
	}
	runs := make([]runOut, len(cells)*len(policyNames))
	forEach(e.opt.pool, len(runs), func(i int) {
		ci, pi := i/len(policyNames), i%len(policyNames)
		cell := cells[ci]
		seed := cellSeed(e.opt.Seed, "DE", int64(cell.jobs), int64(cell.execs))
		rps := hyperscaleRho * float64(cell.execs) / hyperscaleMeanWork
		// Window the trace to the expected span; past its end the
		// intensity holds at the final sample (carbon.Trace.At clamps).
		windowHours := int(float64(cell.jobs)/rps/60) + 200
		tr := e.trialTrace("DE", windowHours, seed)
		cfg := sim.Config{
			NumExecutors: cell.execs,
			Trace:        tr,
			MoveDelay:    1,
			Seed:         seed,
			// ~tens of events per job across a million jobs: give the
			// livelock guard room well past the default 20M.
			MaxEvents: 2_000_000_000,
		}
		proc, err := arrivals.New(arrivals.Spec{Kind: arrivals.KindConstant, RPS: rps})
		if err != nil {
			panic(fmt.Sprintf("experiments: hyperscale: %v", err))
		}
		src, err := workload.NewSource(workload.GenConfig{
			N:        cell.jobs,
			Arrivals: proc,
			Mix:      workload.MixTPCH,
			Seed:     seed,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: hyperscale: %v", err))
		}
		res, err := sim.RunStream(cfg, src, newSched(pi, cell.execs, seed))
		if err != nil {
			panic(fmt.Sprintf("experiments: hyperscale: %v", err))
		}
		runs[i] = runOut{stream: res.Stream, carbon: res.CarbonGrams, ect: res.ECT, events: res.Events}
	})

	t := &result.Table{
		Name: "hyperscale",
		Columns: []result.Column{
			{Name: "jobs", Kind: result.KindInt, Header: "jobs", HeaderFormat: "%8s", Format: "%8d"},
			{Name: "executors", Kind: result.KindInt, Header: "execs", HeaderFormat: " %6s", Format: " %6d"},
			{Name: "scheduler", Kind: result.KindString, Header: "scheduler", HeaderFormat: " %-9s", Format: " %-9s"},
			{Name: "peak_inflight", Kind: result.KindInt, Header: "peak infl", HeaderFormat: " %9s", Format: " %9d"},
			{Name: "mean_inflight", Kind: result.KindFloat, Prec: 1, Header: "mean infl", HeaderFormat: " %9s", Format: " %9.1f"},
			{Name: "p50_jct_s", Kind: result.KindFloat, Prec: 0, Header: "p50 JCT", HeaderFormat: " %8s", Format: " %8.0f"},
			{Name: "p99_jct_s", Kind: result.KindFloat, Prec: 0, Header: "p99 JCT", HeaderFormat: " %8s", Format: " %8.0f"},
			{Name: "goodput_jobs_hr", Kind: result.KindFloat, Prec: 0, Header: "goodput/hr", HeaderFormat: " %10s", Format: " %10.0f"},
			{Name: "carbon_kg", Kind: result.KindFloat, Prec: 1, Header: "carbon kg", HeaderFormat: " %9s", Format: " %9.1f"},
			{Name: "events_m", Kind: result.KindFloat, Prec: 1, Header: "events M", HeaderFormat: " %8s", Format: " %8.1f"},
		},
	}
	for ci, cell := range cells {
		for pi, pol := range policyNames {
			r := runs[ci*len(policyNames)+pi]
			goodput := 0.0
			if r.ect > 0 {
				goodput = float64(r.stream.Admitted) / r.ect * 3600
			}
			t.Row(
				result.Int(cell.jobs), result.Int(cell.execs), result.Str(pol),
				result.Int(r.stream.PeakInFlight), result.Float(r.stream.MeanInFlight),
				result.Float(r.stream.P50JCT), result.Float(r.stream.P99JCT),
				result.Float(goodput), result.Float(r.carbon/1000),
				result.Float(float64(r.events)/1e6),
			)
		}
	}
	a := result.New()
	a.Textf("streaming engine, DE grid, constant arrivals at %.0f%% capacity:\n", hyperscaleRho*100)
	a.Add(t)
	a.Textf("peak/mean infl: in-flight jobs (the engine's memory bound); JCT quantiles are P² sketch estimates\n")
	return a, nil
}

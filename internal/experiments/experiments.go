// Package experiments contains one runner per table and figure of the
// paper's evaluation (§6 and Appendix A). Each runner regenerates the
// artifact's rows or series from the simulator/prototype substrates as a
// typed result.Artifact — structured tables and series next to the
// paper's published values — which the pluggable renderers in
// internal/result turn into fixed-width text, JSON, or CSV.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"

	"pcaps/internal/carbon"
	"pcaps/internal/cluster"
	"pcaps/internal/dag"
	"pcaps/internal/result"
	"pcaps/internal/scenario"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Grids restricts the carbon traces used (default: all six).
	Grids []string
	// Trials is the number of randomized trials per configuration
	// (paper defaults differ per figure; zero selects each
	// experiment's default).
	Trials int
	// Jobs overrides the batch size where a single size is used.
	Jobs int
	// Seed drives every stochastic choice.
	Seed int64
	// Hours is the synthetic trace length (default: three paper years).
	Hours int
	// Fast shrinks the experiment matrix for tests and smoke runs: one
	// grid, one batch size, minimal trials.
	Fast bool
	// Parallel bounds the worker goroutines used to fan independent
	// experiment cells out over the cores: 0 selects
	// runtime.GOMAXPROCS(0), 1 forces the serial path. The bound is
	// shared across nested fan-outs (RunAll's artifact level and each
	// runner's cell level draw from one pool), so it caps the whole run.
	// Every cell seeds its randomness from its own identity (see
	// cellSeed), so reports are byte-identical across Parallel settings.
	Parallel int

	// pool is the shared worker budget, created once per Run/RunAll
	// entry and threaded through scoped() copies.
	pool *pool
}

// scoped returns a copy of o restricted to the given grids, preserving
// the execution fields (seed, hours, fast mode, parallelism, pool).
// Runners that pin a grid (sweeps, ablations) use it instead of building
// an Options literal, which would silently drop the shared pool.
func (o Options) scoped(grids ...string) Options {
	o.Grids = grids
	o.Trials = 0
	o.Jobs = 0
	return o
}

// validate rejects options the runners cannot execute: unknown grid
// names, which would otherwise surface as nil-trace panics deep inside a
// worker, and duplicate grid names, which would silently run the same
// grid twice through some runners' cell matrices (inflating its weight
// in every cross-grid average).
func (o Options) validate() error {
	// Negative knobs were never meaningful (zero already selects the
	// defaults) and the scenario layer rejects them; failing here keeps
	// every artifact — spec-compiled or bespoke — behaving identically
	// under e.g. `-exp all -seed -5`.
	switch {
	case o.Seed < 0:
		return fmt.Errorf("experiments: negative seed %d", o.Seed)
	case o.Trials < 0:
		return fmt.Errorf("experiments: negative trial count %d", o.Trials)
	case o.Jobs < 0:
		return fmt.Errorf("experiments: negative batch size %d", o.Jobs)
	case o.Hours < 0:
		return fmt.Errorf("experiments: negative trace horizon %d hours", o.Hours)
	}
	known := map[string]bool{}
	var names []string
	for _, spec := range carbon.Grids() {
		known[spec.Name] = true
		names = append(names, spec.Name)
	}
	seen := map[string]bool{}
	for _, g := range o.Grids {
		if !known[g] {
			return fmt.Errorf("experiments: unknown grid %q (have %s)", g, strings.Join(names, ", "))
		}
		if seen[g] {
			return fmt.Errorf("experiments: duplicate grid %q in grid set", g)
		}
		seen[g] = true
	}
	return nil
}

func (o Options) withDefaults() Options {
	if len(o.Grids) == 0 {
		if o.Fast {
			o.Grids = []string{"DE"}
		} else {
			o.Grids = []string{"PJM", "CAISO", "ON", "DE", "NSW", "ZA"}
		}
	}
	if o.Hours <= 0 {
		if o.Fast {
			o.Hours = 4000
		} else {
			o.Hours = carbon.PaperHours
		}
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Report is an executed experiment artifact.
type Report struct {
	// ID is the artifact identifier ("table2", "fig13", ...).
	ID string
	// Title describes the artifact (registry metadata; also stamped on
	// the artifact itself).
	Title string
	// Artifact is the typed result: structured tables, series, and
	// notes that every renderer consumes.
	Artifact *result.Artifact
}

// Body returns the report's fixed-width text body, without the banner.
func (r *Report) Body() string { return r.Artifact.Body() }

// Render returns the report as printable text, delegating to the text
// renderer — the historical pcapsim stdout format, byte for byte.
func (r *Report) Render() string {
	out, _ := result.TextRenderer{}.Render(r.Artifact) // text rendering cannot fail
	return string(out)
}

// Runner produces one artifact's blocks; the registry stamps identity.
type Runner func(Options) (*result.Artifact, error)

// Info is one registry entry's metadata.
type Info struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// entry pairs a runner with its title so artifact metadata exists
// without running anything (pcapsim -list, the /v1/experiments index).
type entry struct {
	title string
	run   Runner
}

// registry maps artifact IDs to runners, populated by init() in each file.
var registry = map[string]entry{}

var order = []string{
	"table1", "table2", "table3",
	"fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
	"fig18", "fig19", "fig20",
}

func register(id, title string, r Runner) { registry[id] = entry{title: title, run: r} }

// serialOnly marks artifacts whose measurements sibling runners would
// corrupt (wall-clock timing); RunAll executes them alone after the
// concurrent fan-out drains.
var serialOnly = map[string]bool{}

// registerSerial registers a runner that must not share the machine with
// other artifacts while it runs.
func registerSerial(id, title string, r Runner) {
	register(id, title, r)
	serialOnly[id] = true
}

// IDs lists the available artifact IDs in paper order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, id := range order {
		if _, ok := registry[id]; ok {
			out = append(out, id)
		}
	}
	var extra []string
	for id := range registry {
		found := false
		for _, o := range order {
			if o == id {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, id)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// List returns every artifact's metadata in paper order.
func List() []Info {
	ids := IDs()
	out := make([]Info, len(ids))
	for i, id := range ids {
		out[i] = Info{ID: id, Title: registry[id].title}
	}
	return out
}

// Run executes one artifact's runner.
func Run(id string, opt Options) (*Report, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown artifact %q (have %v)", id, IDs())
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.pool == nil {
		opt.pool = newPool(opt.Parallel)
	}
	art, err := e.run(opt)
	if err != nil {
		return nil, err
	}
	art.ID, art.Title = id, e.title
	return &Report{ID: id, Title: e.title, Artifact: art}, nil
}

// RunAll executes the named artifacts, fanning the runners themselves out
// over the worker pool, and returns the reports in the requested order.
// Runners additionally parallelize their own (grid, size, trial) cells,
// so `-exp all` keeps every core busy even in fast mode, where most
// runners collapse to a handful of cells. Artifacts registered as
// serial-only (timing measurements) run alone after the fan-out drains.
//
// On failure the first error in request order is returned together with
// the reports slice, whose entries are non-nil for every artifact that
// completed before the run was cut short — callers can render all the
// finished artifacts (not just a contiguous prefix; a slot after the
// failing one may well have finished first) instead of discarding a long
// run's output.
func RunAll(ids []string, opt Options) ([]*Report, error) {
	if opt.pool == nil {
		opt.pool = newPool(opt.Parallel)
	}
	reports := make([]*Report, len(ids))
	errs := make([]error, len(ids))
	var concurrent, alone []int
	for i, id := range ids {
		if serialOnly[id] {
			alone = append(alone, i)
		} else {
			concurrent = append(concurrent, i)
		}
	}
	// Fail fast: once any artifact errors, remaining cells return
	// immediately instead of simulating for minutes before the error
	// surfaces.
	var failed atomic.Bool
	run := func(i int) {
		if failed.Load() {
			return
		}
		reports[i], errs[i] = Run(ids[i], opt)
		if errs[i] != nil {
			failed.Store(true)
		}
	}
	forEach(opt.pool, len(concurrent), func(k int) { run(concurrent[k]) })
	for _, i := range alone {
		run(i)
	}
	for i, err := range errs {
		if err != nil {
			return reports, fmt.Errorf("%s: %w", ids[i], err)
		}
	}
	return reports, nil
}

// env bundles the shared inputs of one experiment.
type env struct {
	opt    Options
	traces map[string]*carbon.Trace
}

func newEnv(opt Options) *env {
	opt = opt.withDefaults()
	e := &env{opt: opt, traces: map[string]*carbon.Trace{}}
	for i, spec := range carbon.Grids() {
		for _, want := range opt.Grids {
			if spec.Name == want {
				e.traces[spec.Name] = cachedTrace(spec, opt.Hours, opt.Seed+int64(i)*1000003)
			}
		}
	}
	return e
}

// trialTrace returns the trace window for one randomized trial: a
// uniformly random start offset into the grid's three-year history, as
// the prototype experiments do (§6.1). The offset is drawn from a
// dedicated RNG seeded by the cell's identity, so the window depends only
// on the cell — not on how many draws other cells made first — and
// serial and parallel sweeps see identical windows. The cell seed is
// domain-separated first because callers feed the same value to
// workload.Batch; without separation the offset would be the first draw
// of the very stream the job batch consumes.
func (e *env) trialTrace(grid string, windowHours int, seed int64) *carbon.Trace {
	tr := e.traces[grid]
	maxStart := len(tr.Values) - windowHours
	if maxStart < 1 {
		return tr
	}
	rng := rand.New(rand.NewSource(cellSeed(seed, "trace-offset")))
	off := float64(rng.Intn(maxStart)) * tr.Interval
	return tr.Slice(off, float64(windowHours)*tr.Interval)
}

// simConfig is the Spark-standalone simulator environment (§5.2): all
// executors shared, applications retain executors per Spark's dynamic
// allocation semantics.
func simConfig(tr *carbon.Trace, seed int64) sim.Config {
	return sim.Config{
		NumExecutors:  100,
		Trace:         tr,
		MoveDelay:     1,
		HoldExecutors: true,
		IdleTimeout:   60,
		// The published tables were generated under the seed engine's
		// per-task hold-expiry wake-up cadence, which deferring
		// schedulers can observe; opt into it so every artifact stays
		// byte-identical (sim.Config.LegacyHoldWakeups, DESIGN.md).
		LegacyHoldWakeups: true,
		Seed:              seed,
	}
}

// protoConfig is the Kubernetes prototype environment (§6.3).
func protoConfig(tr *carbon.Trace, seed int64) sim.Config {
	cfg := cluster.PaperConfig()
	cfg.Seed = seed
	return cfg.SimConfig(tr)
}

// batch draws a workload batch.
func batch(n int, interarrival float64, mix workload.Mix, seed int64) []*dag.Job {
	return workload.Batch(workload.BatchConfig{N: n, MeanInterarrival: interarrival, Mix: mix, Seed: seed})
}

// mustRun runs one simulation, panicking on configuration errors (the
// experiment matrix is fixed at compile time, so failures are bugs).
func mustRun(cfg sim.Config, jobs []*dag.Job, s sim.Scheduler) *sim.Result {
	res, err := sim.Run(cfg, jobs, s)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", s.Name(), err))
	}
	return res
}

// mustRunGroup runs one cell's scheduler variants as a common-prefix
// group (sim.RunGroup): the shared decision prefix simulates once and
// variants fork at their first divergent decision. Results are
// positionally parallel to scheds and byte-identical to len(scheds)
// mustRun calls.
func mustRunGroup(cfg sim.Config, jobs []*dag.Job, scheds ...sim.Scheduler) []*sim.Result {
	res, err := sim.RunGroup(cfg, jobs, scheds)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// scenarioPool adapts the experiment engine's shared-budget worker pool
// to the scenario layer's Pool interface, so a built-in artifact
// declared as a scenario spec draws its cell workers from the same
// process-wide budget as every other runner.
type scenarioPool struct{ p *pool }

// ForEach implements scenario.Pool.
func (a scenarioPool) ForEach(n int, fn func(i int)) { forEach(a.p, n, fn) }

// runSpec compiles and executes a scenario spec under the run's
// options. The sweeps, per-grid, and federation runner families declare
// their experiments as specs and execute through this one path — the
// same compile-and-run pipeline `pcapsim -scenario` and POST
// /v1/scenarios use for user-authored scenarios (their golden tests pin
// the refactor to the historical bytes).
func runSpec(opt Options, spec scenario.Spec) (*result.Artifact, error) {
	prog, err := scenario.Compile(spec)
	if err != nil {
		return nil, err
	}
	return prog.Run(scenario.Env{Pool: scenarioPool{opt.pool}, Fast: opt.Fast})
}

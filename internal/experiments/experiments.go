// Package experiments contains one runner per table and figure of the
// paper's evaluation (§6 and Appendix A). Each runner regenerates the
// artifact's rows or series from the simulator/prototype substrates and
// renders them next to the paper's published values, so EXPERIMENTS.md
// can record paper-vs-measured for every artifact.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"pcaps/internal/carbon"
	"pcaps/internal/cluster"
	"pcaps/internal/dag"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Grids restricts the carbon traces used (default: all six).
	Grids []string
	// Trials is the number of randomized trials per configuration
	// (paper defaults differ per figure; zero selects each
	// experiment's default).
	Trials int
	// Jobs overrides the batch size where a single size is used.
	Jobs int
	// Seed drives every stochastic choice.
	Seed int64
	// Hours is the synthetic trace length (default: three paper years).
	Hours int
	// Fast shrinks the experiment matrix for tests and smoke runs: one
	// grid, one batch size, minimal trials.
	Fast bool
}

func (o Options) withDefaults() Options {
	if len(o.Grids) == 0 {
		if o.Fast {
			o.Grids = []string{"DE"}
		} else {
			o.Grids = []string{"PJM", "CAISO", "ON", "DE", "NSW", "ZA"}
		}
	}
	if o.Hours <= 0 {
		if o.Fast {
			o.Hours = 4000
		} else {
			o.Hours = carbon.PaperHours
		}
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Report is a rendered experiment artifact.
type Report struct {
	// ID is the artifact identifier ("table2", "fig13", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Body is the rendered rows/series.
	Body string
}

// Render returns the report as printable text.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	b.WriteString(r.Body)
	if !strings.HasSuffix(r.Body, "\n") {
		b.WriteString("\n")
	}
	return b.String()
}

// Runner produces one artifact.
type Runner func(Options) (*Report, error)

// registry maps artifact IDs to runners, populated by init() in each file.
var registry = map[string]Runner{}

var order = []string{
	"table1", "table2", "table3",
	"fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
	"fig18", "fig19", "fig20",
}

func register(id string, r Runner) { registry[id] = r }

// IDs lists the available artifact IDs in paper order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, id := range order {
		if _, ok := registry[id]; ok {
			out = append(out, id)
		}
	}
	var extra []string
	for id := range registry {
		found := false
		for _, o := range order {
			if o == id {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, id)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// Run executes one artifact's runner.
func Run(id string, opt Options) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown artifact %q (have %v)", id, IDs())
	}
	return r(opt)
}

// env bundles the shared inputs of one experiment.
type env struct {
	opt    Options
	traces map[string]*carbon.Trace
	rng    *rand.Rand
}

func newEnv(opt Options) *env {
	opt = opt.withDefaults()
	e := &env{opt: opt, rng: rand.New(rand.NewSource(opt.Seed)), traces: map[string]*carbon.Trace{}}
	for i, spec := range carbon.Grids() {
		for _, want := range opt.Grids {
			if spec.Name == want {
				e.traces[spec.Name] = carbon.Synthesize(spec, opt.Hours, 60, opt.Seed+int64(i)*1000003)
			}
		}
	}
	return e
}

// trialTrace returns the trace window for one randomized trial: a
// uniformly random start offset into the grid's three-year history, as
// the prototype experiments do (§6.1).
func (e *env) trialTrace(grid string, windowHours int) *carbon.Trace {
	tr := e.traces[grid]
	maxStart := len(tr.Values) - windowHours
	if maxStart < 1 {
		return tr
	}
	off := float64(e.rng.Intn(maxStart)) * tr.Interval
	return tr.Slice(off, float64(windowHours)*tr.Interval)
}

// simConfig is the Spark-standalone simulator environment (§5.2): all
// executors shared, applications retain executors per Spark's dynamic
// allocation semantics.
func simConfig(tr *carbon.Trace, seed int64) sim.Config {
	return sim.Config{
		NumExecutors:  100,
		Trace:         tr,
		MoveDelay:     1,
		HoldExecutors: true,
		IdleTimeout:   60,
		Seed:          seed,
	}
}

// protoConfig is the Kubernetes prototype environment (§6.3).
func protoConfig(tr *carbon.Trace, seed int64) sim.Config {
	cfg := cluster.PaperConfig()
	cfg.Seed = seed
	return cfg.SimConfig(tr)
}

// batch draws a workload batch.
func batch(n int, interarrival float64, mix workload.Mix, seed int64) []*dag.Job {
	return workload.Batch(workload.BatchConfig{N: n, MeanInterarrival: interarrival, Mix: mix, Seed: seed})
}

// mustRun runs one simulation, panicking on configuration errors (the
// experiment matrix is fixed at compile time, so failures are bugs).
func mustRun(cfg sim.Config, jobs []*dag.Job, s sim.Scheduler) *sim.Result {
	res, err := sim.Run(cfg, jobs, s)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", s.Name(), err))
	}
	return res
}

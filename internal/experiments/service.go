package experiments

import (
	"context"
	"sync"

	"pcaps/internal/carbonapi"
	"pcaps/internal/result"
)

// Service implements carbonapi.Experiments: the artifact registry served
// over HTTP, with on-demand execution. Every run is forced into Fast
// mode so a request costs seconds, not a full paper sweep — the /v1
// surface is a smoke-and-inspection endpoint, not a batch farm; the full
// matrices stay behind pcapsim.
//
// Service is safe for concurrent use: each Run builds its own worker
// pool, every stochastic choice is derived from per-cell seed hashing,
// and the shared trace cache is read-only after construction — the same
// properties the parallel experiment engine already relies on.
//
// Because a run is a pure function of (id, Options) and Options is fixed
// for the Service's lifetime, completed artifacts are cached per ID with
// a once-guard: concurrent requests for the same artifact share a single
// simulation, and repeat fetches are free. Cached artifacts are
// immutable after Run returns, so handing the same pointer to concurrent
// encoders is safe. Concurrent requests for *distinct* artifacts still
// run independently (bounded by the registry's size).
type Service struct {
	// Options is the template each request starts from (seed, grids,
	// parallelism). Fast is forced; the zero value serves the standard
	// fast configuration. Must not be mutated after the first Run.
	Options Options

	mu    sync.Mutex
	cache map[string]*serviceRun
}

// serviceRun is one artifact's cached outcome; the once-guard
// deduplicates concurrent first requests.
type serviceRun struct {
	once sync.Once
	art  *result.Artifact
	err  error
}

// List implements carbonapi.Experiments.
func (s *Service) List() []carbonapi.ExperimentInfo {
	infos := List()
	out := make([]carbonapi.ExperimentInfo, len(infos))
	for i, info := range infos {
		out[i] = carbonapi.ExperimentInfo{ID: info.ID, Title: info.Title}
	}
	return out
}

// Run implements carbonapi.Experiments.
func (s *Service) Run(ctx context.Context, id string) (*result.Artifact, error) {
	// Runners are not cancellable mid-simulation; honor an
	// already-expired context rather than starting doomed work.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.cache == nil {
		s.cache = map[string]*serviceRun{}
	}
	r, ok := s.cache[id]
	if !ok {
		r = &serviceRun{}
		s.cache[id] = r
	}
	s.mu.Unlock()
	r.once.Do(func() {
		opt := s.Options
		opt.Fast = true
		rep, err := Run(id, opt)
		if err != nil {
			// A failure is as deterministic as a success (unknown ID,
			// invalid grid set), so caching it is correct too.
			r.err = err
			return
		}
		r.art = rep.Artifact
	})
	return r.art, r.err
}

package experiments

import (
	"pcaps/internal/result"
	"pcaps/internal/scenario"
	"pcaps/internal/sched"
	"pcaps/internal/workload"
)

func init() {
	register("fig10", "prototype carbon reduction and ECT per grid (Fig 10)", fig10)
	register("fig14", "simulator carbon reduction and ECT per grid (Fig 14)", fig14)
}

// The per-grid comparisons are declared as scenario specs and compiled
// through internal/scenario's comparison family: for each grid, trials
// of the carbon-aware policy set vs a baseline across the 25/50/100-job
// batch sizes, reporting mean carbon reduction and relative ECT. The
// golden tests pin the compiled artifacts to the hand-written runners'
// bytes.

// perGridSpec assembles the shared comparison shape from the run
// options.
func perGridSpec(opt Options, name string, proto bool, mix workload.Mix,
	baseline scenario.PolicySpec, policies []scenario.PolicySpec, paperNote string) scenario.Spec {
	return scenario.Spec{
		Name:     name,
		Seed:     opt.Seed,
		Hours:    opt.Hours,
		Trials:   opt.Trials,
		Proto:    proto,
		Grids:    opt.Grids,
		Workload: scenario.WorkloadSpec{Mix: mix.String(), Jobs: opt.Jobs},
		Baseline: &baseline,
		Policies: policies,
		Notes:    []string{paperNote},
	}
}

// fig10 regenerates the prototype per-grid comparison (Fig. 10): PCAPS,
// CAP, and Decima vs the Spark/Kubernetes default across the six grids.
func fig10(opt Options) (*result.Artifact, error) {
	return runSpec(opt, perGridSpec(opt, "fig10", true, workload.MixBoth,
		scenario.PolicySpec{Kind: "kube-default"},
		[]scenario.PolicySpec{
			{Name: "Decima", Kind: "decima"},
			{Name: "CAP", Kind: "cap", B: sched.Int(20), Inner: &scenario.PolicySpec{Kind: "kube-default"}},
			{Name: "PCAPS", Kind: "pcaps", Gamma: sched.Float(0.5), Inner: &scenario.PolicySpec{Kind: "decima"}},
		},
		"paper: variable grids (CAISO, ON, DE) yield the largest reductions and ECT costs; flat ZA yields minimal change; Decima is ~flat everywhere\n"))
}

// fig14 regenerates the simulator per-grid comparison (Fig. 14): PCAPS,
// CAP-FIFO, and Decima vs FIFO.
func fig14(opt Options) (*result.Artifact, error) {
	return runSpec(opt, perGridSpec(opt, "fig14", false, workload.MixTPCH,
		scenario.PolicySpec{Kind: "fifo"},
		[]scenario.PolicySpec{
			{Name: "Decima", Kind: "decima"},
			{Name: "CAP-FIFO", Kind: "cap", B: sched.Int(20), Inner: &scenario.PolicySpec{Kind: "fifo"}},
			{Name: "PCAPS", Kind: "pcaps", Gamma: sched.Float(0.5), Inner: &scenario.PolicySpec{Kind: "decima"}},
		},
		"paper: same grid ordering as Fig 10, with Decima's baseline reduction higher than in the prototype (A.1.2)\n"))
}

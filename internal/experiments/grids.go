package experiments

import (
	"pcaps/internal/metrics"
	"pcaps/internal/result"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func init() {
	register("fig10", "prototype carbon reduction and ECT per grid (Fig 10)", fig10)
	register("fig14", "simulator carbon reduction and ECT per grid (Fig 14)", fig14)
}

// gridRow aggregates one scheduler's per-grid outcomes.
type gridRow struct {
	carbonPct, ects map[string][]float64
}

func newGridRow(grids []string) *gridRow {
	g := &gridRow{carbonPct: map[string][]float64{}, ects: map[string][]float64{}}
	for _, name := range grids {
		g.carbonPct[name] = nil
		g.ects[name] = nil
	}
	return g
}

// perGridTable is one of the two fig10/14 sub-tables: scheduler rows,
// one typed column per grid.
func perGridTable(name string, grids []string, prec int, format string) *result.Table {
	cols := []result.Column{
		{Name: "scheduler", Kind: result.KindString, Header: "scheduler", HeaderFormat: "%-12s", Format: "%-12s"},
	}
	for _, g := range grids {
		cols = append(cols, result.Column{
			Name: g, Kind: result.KindFloat, Prec: prec,
			Header: g, HeaderFormat: "%10s", Format: format,
		})
	}
	return &result.Table{Name: name, Columns: cols}
}

// perGrid runs the per-grid comparison of Figs. 10 and 14: for each grid,
// trials of {aware schedulers} vs a baseline, reporting carbon reduction
// and relative ECT.
func perGrid(opt Options, proto bool, mix workload.Mix,
	baseline func(seed int64) sim.Scheduler,
	schedulers map[string]func(seed int64) sim.Scheduler, paperNote string) (*result.Artifact, error) {
	e := newEnv(opt)
	trials := opt.Trials
	if trials <= 0 {
		trials = 3
	}
	if opt.Fast {
		trials = 1
	}
	sizes := []int{25, 50, 100}
	if opt.Fast {
		sizes = []int{25}
	}
	if opt.Jobs > 0 {
		sizes = []int{opt.Jobs}
	}
	rows := map[string]*gridRow{}
	names := make([]string, 0, len(schedulers))
	for name := range schedulers {
		names = append(names, name)
	}
	// Deterministic iteration order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		rows[name] = newGridRow(e.opt.Grids)
	}
	// Fan the (grid, size, trial) cells out over the pool; each cell runs
	// its baseline plus every scheduler, and the per-cell results fold
	// back in matrix order so the report is identical at any parallelism.
	cells := matrixCells(e.opt.Grids, sizes, trials)
	runs := make([]map[string]*sim.Result, len(cells))
	forEach(e.opt.pool, len(cells), func(i int) {
		c := cells[i]
		seed := cellSeed(e.opt.Seed, c.grid, int64(c.size), int64(c.trial))
		jobs := batch(c.size, 30, mix, seed)
		tr := e.trialTrace(c.grid, 60+c.size, seed)
		cfg := simConfig(tr, seed)
		if proto {
			cfg = protoConfig(tr, seed)
		}
		out := map[string]*sim.Result{"": mustRun(cfg, jobs, baseline(seed))}
		for _, name := range names {
			out[name] = mustRun(cfg, jobs, schedulers[name](seed))
		}
		runs[i] = out
	})
	for i, c := range cells {
		base := runs[i][""]
		for _, name := range names {
			r := runs[i][name]
			rows[name].carbonPct[c.grid] = append(rows[name].carbonPct[c.grid],
				-metrics.PercentChange(r.CarbonGrams, base.CarbonGrams))
			rows[name].ects[c.grid] = append(rows[name].ects[c.grid], r.ECT/base.ECT)
		}
	}
	a := result.New()
	a.Textf("carbon reduction (%%):\n")
	carbonT := perGridTable("carbon_reduction_pct", e.opt.Grids, 1, "%10.1f")
	for _, name := range names {
		cells := []result.Cell{result.Str(name)}
		for _, g := range e.opt.Grids {
			cells = append(cells, result.Float(metrics.Summarize(rows[name].carbonPct[g]).Mean))
		}
		carbonT.Rows = append(carbonT.Rows, cells)
	}
	a.Add(carbonT)
	a.Textf("relative ECT:\n")
	ectT := perGridTable("relative_ect", e.opt.Grids, 3, "%10.3f")
	for _, name := range names {
		cells := []result.Cell{result.Str(name)}
		for _, g := range e.opt.Grids {
			cells = append(cells, result.Float(metrics.Summarize(rows[name].ects[g]).Mean))
		}
		ectT.Rows = append(ectT.Rows, cells)
	}
	a.Add(ectT)
	a.Textf("%s", paperNote)
	return a, nil
}

// fig10 regenerates the prototype per-grid comparison (Fig. 10): PCAPS,
// CAP, and Decima vs the Spark/Kubernetes default across the six grids.
func fig10(opt Options) (*result.Artifact, error) {
	return perGrid(opt, true, workload.MixBoth,
		func(seed int64) sim.Scheduler { return sched.NewKubeDefault() },
		map[string]func(seed int64) sim.Scheduler{
			"Decima": func(seed int64) sim.Scheduler { return sched.NewDecima(seed) },
			"CAP":    func(seed int64) sim.Scheduler { return sched.NewCAP(sched.NewKubeDefault(), 20) },
			"PCAPS":  func(seed int64) sim.Scheduler { return sched.NewPCAPS(sched.NewDecima(seed), 0.5, seed) },
		},
		"paper: variable grids (CAISO, ON, DE) yield the largest reductions and ECT costs; flat ZA yields minimal change; Decima is ~flat everywhere\n")
}

// fig14 regenerates the simulator per-grid comparison (Fig. 14): PCAPS,
// CAP-FIFO, and Decima vs FIFO.
func fig14(opt Options) (*result.Artifact, error) {
	return perGrid(opt, false, workload.MixTPCH,
		func(seed int64) sim.Scheduler { return &sched.FIFO{} },
		map[string]func(seed int64) sim.Scheduler{
			"Decima":   func(seed int64) sim.Scheduler { return sched.NewDecima(seed) },
			"CAP-FIFO": func(seed int64) sim.Scheduler { return sched.NewCAP(&sched.FIFO{}, 20) },
			"PCAPS":    func(seed int64) sim.Scheduler { return sched.NewPCAPS(sched.NewDecima(seed), 0.5, seed) },
		},
		"paper: same grid ordering as Fig 10, with Decima's baseline reduction higher than in the prototype (A.1.2)\n")
}

package experiments

import (
	"pcaps/internal/dag"
	"pcaps/internal/metrics"
	"pcaps/internal/result"
	"pcaps/internal/scenario"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func init() {
	register("fig7", "prototype PCAPS trade-off vs γ (Fig 7)", fig7)
	register("fig8", "prototype CAP trade-off vs B (Fig 8)", fig8)
	register("fig11", "simulator PCAPS trade-off vs γ (Fig 11)", fig11)
	register("fig12", "simulator CAP-FIFO trade-off vs B (Fig 12)", fig12)
	register("fig13", "PCAPS vs CAP-Decima trade-off frontier (Fig 13)", fig13)
}

// The four parameter sweeps are declared as scenario specs and compiled
// through internal/scenario — the same layer `pcapsim -scenario` runs
// user specs through. The sweep executes in the DE grid with 50-job
// batches (25 fast), each carbon-aware setting normalized against the
// trial's baseline run; the golden tests pin the compiled artifacts to
// the hand-written runners' bytes.

// sweepSpec assembles the shared sweep shape from the run options.
func sweepSpec(opt Options, name string, proto bool, mix workload.Mix,
	baseline, swept scenario.PolicySpec, label string, values []float64, note string) scenario.Spec {
	return scenario.Spec{
		Name:     name,
		Seed:     opt.Seed,
		Hours:    opt.Hours,
		Trials:   opt.Trials,
		Proto:    proto,
		Workload: scenario.WorkloadSpec{Mix: mix.String(), Jobs: opt.Jobs},
		Baseline: &baseline,
		Sweep: &scenario.SweepSpec{
			Grid:   "DE",
			Label:  label,
			Values: values,
			Policy: swept,
		},
		Notes: []string{note},
	}
}

var (
	pcapsDecima = scenario.PolicySpec{Kind: "pcaps", Inner: &scenario.PolicySpec{Kind: "decima"}}
	capKube     = scenario.PolicySpec{Kind: "cap", Inner: &scenario.PolicySpec{Kind: "kube-default"}}
	capFIFO     = scenario.PolicySpec{Kind: "cap", Inner: &scenario.PolicySpec{Kind: "fifo"}}
	gammaValues = []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	bValues     = []float64{5, 20, 40, 60, 80}
)

// fig7 regenerates the prototype PCAPS γ-sweep: carbon reduction and
// relative ECT vs the Spark/Kubernetes default for five carbon-awareness
// settings (Fig. 7).
func fig7(opt Options) (*result.Artifact, error) {
	return runSpec(opt, sweepSpec(opt, "fig7", true, workload.MixBoth,
		scenario.PolicySpec{Kind: "kube-default"}, pcapsDecima, "γ", gammaValues,
		"paper: carbon savings grow with γ, steeply near γ→1, at the cost of longer ECT\n"))
}

// fig8 regenerates the prototype CAP B-sweep (Fig. 8).
func fig8(opt Options) (*result.Artifact, error) {
	return runSpec(opt, sweepSpec(opt, "fig8", true, workload.MixBoth,
		scenario.PolicySpec{Kind: "kube-default"}, capKube, "B", bValues,
		"paper: smaller B (stricter quota) saves more carbon but sacrifices more ECT than PCAPS\n"))
}

// fig11 regenerates the simulator PCAPS γ-sweep vs FIFO (Fig. 11).
func fig11(opt Options) (*result.Artifact, error) {
	return runSpec(opt, sweepSpec(opt, "fig11", false, workload.MixTPCH,
		scenario.PolicySpec{Kind: "fifo"}, pcapsDecima, "γ", gammaValues,
		"paper: savings improve with γ, most pronounced approaching 1\n"))
}

// fig12 regenerates the simulator CAP-FIFO B-sweep vs FIFO (Fig. 12).
func fig12(opt Options) (*result.Artifact, error) {
	return runSpec(opt, sweepSpec(opt, "fig12", false, workload.MixTPCH,
		scenario.PolicySpec{Kind: "fifo"}, capFIFO, "B", bValues,
		"paper: CAP-FIFO sacrifices more ECT than PCAPS for the same savings; the increase begins at milder settings\n"))
}

// trialState is one trial's stage-1 output in fig13's two-stage
// frontier: the shared batch and configuration plus the baseline run
// every stage-2 parameter point normalizes against.
type trialState struct {
	jobs []*dag.Job
	cfg  sim.Config
	base *sim.Result
}

// frontierSeries renders one method's trade-off cloud: x = relative ECT,
// y = carbon reduction %.
func frontierSeries(name, display string, pts []metrics.Point) *result.Series {
	s := &result.Series{
		Name: name, XLabel: "relative_ect", YLabels: []string{"carbon_reduction_pct"},
		Prefix:      display + " points (relative ECT, carbon red. %):\n",
		PointFormat: "  (%.3f, %5.1f)", WithX: true,
		Suffix: "\n",
	}
	for _, p := range pts {
		s.Point(p.X, p.Y)
	}
	return s
}

// fig13 regenerates the PCAPS vs CAP-Decima trade-off frontier: trials
// across γ ∈ [0.1, 1.0] and B ∈ {5, …, 85}, a cubic fit per method, and
// the paper's two frontier comparisons. The frontier's cross-method
// banding does not fit the declarative sweep shape, so it stays a
// hand-written runner.
func fig13(opt Options) (*result.Artifact, error) {
	e := newEnv(opt.scoped("DE"))
	trials := opt.Trials
	if trials <= 0 {
		trials = 3
	}
	gammas := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	bs := []int{5, 15, 25, 35, 45, 55, 65, 75, 85}
	n := 50
	if opt.Fast {
		trials = 1
		gammas = []float64{0.3, 0.6, 0.9}
		bs = []int{15, 45, 75}
		n = 25
	}
	// One cell per trial: the Decima baseline and every (γ, B) point run
	// as a common-prefix group over the trial's shared (cfg, jobs, seed)
	// — neighboring parameter values share almost every decision, so the
	// shared prefix simulates once (sim.RunGroup). Folded back in
	// trial-major order, exactly the historical sample order.
	states := make([]trialState, trials)
	perTrial := len(gammas) + len(bs)
	runs := make([]*sim.Result, trials*perTrial)
	forEach(opt.pool, trials, func(t int) {
		seed := cellSeed(opt.Seed, "DE", int64(t))
		jobs := batch(n, 30, workload.MixTPCH, seed)
		tr := e.trialTrace("DE", 60+n, seed)
		cfg := simConfig(tr, seed)
		scheds := make([]sim.Scheduler, 0, perTrial+1)
		scheds = append(scheds, sched.NewDecima(seed))
		for _, g := range gammas {
			scheds = append(scheds, sched.NewPCAPS(sched.NewDecima(seed), g, seed))
		}
		for _, b := range bs {
			scheds = append(scheds, sched.NewCAP(sched.NewDecima(seed), b))
		}
		group := mustRunGroup(cfg, jobs, scheds...)
		states[t] = trialState{jobs: jobs, cfg: cfg, base: group[0]}
		copy(runs[t*perTrial:(t+1)*perTrial], group[1:])
	})
	var pcapsPts, capPts []metrics.Point // X = relative ECT, Y = carbon reduction %
	for t := 0; t < trials; t++ {
		base := states[t].base
		point := func(r *sim.Result) metrics.Point {
			return metrics.Point{X: r.ECT / base.ECT, Y: -metrics.PercentChange(r.CarbonGrams, base.CarbonGrams)}
		}
		for i := range gammas {
			pcapsPts = append(pcapsPts, point(runs[t*perTrial+i]))
		}
		for i := range bs {
			capPts = append(capPts, point(runs[t*perTrial+len(gammas)+i]))
		}
	}
	a := result.New()
	render := func(name, display string, pts []metrics.Point) {
		a.Add(frontierSeries(name, display, pts))
		if coef, err := metrics.PolyFit(pts, 3); err == nil {
			a.Textf("  cubic fit: %.1f %+.1fx %+.1fx² %+.1fx³\n", coef[0], coef[1], coef[2], coef[3])
		}
	}
	render("pcaps_frontier", "PCAPS", pcapsPts)
	render("cap_decima_frontier", "CAP-Decima", capPts)

	// The paper's two comparisons: mean ECT increase among trials with
	// 35-45% savings, and mean savings among trials with ECT +0-10%.
	band := func(pts []metrics.Point, loS, hiS float64) (float64, int) {
		var sum float64
		var n int
		for _, p := range pts {
			if p.Y >= loS && p.Y <= hiS {
				sum += (p.X - 1) * 100
				n++
			}
		}
		if n == 0 {
			return 0, 0
		}
		return sum / float64(n), n
	}
	savingsBand := func(pts []metrics.Point) (float64, int) {
		var sum float64
		var n int
		for _, p := range pts {
			if p.X >= 1.0 && p.X <= 1.10 {
				sum += p.Y
				n++
			}
		}
		if n == 0 {
			return 0, 0
		}
		return sum / float64(n), n
	}
	pe, pn := band(pcapsPts, 35, 45)
	ce, cn := band(capPts, 35, 45)
	a.Textf("ECT increase at 35-45%% savings: PCAPS %+.1f%% (n=%d) vs CAP-Decima %+.1f%% (n=%d); paper +7.9%% vs +42.7%%\n", pe, pn, ce, cn)
	ps, pn2 := savingsBand(pcapsPts)
	cs, cn2 := savingsBand(capPts)
	a.Textf("savings at ECT +0-10%%: PCAPS %.1f%% (n=%d) vs CAP-Decima %.1f%% (n=%d); paper 35.6%% vs 20.1%%\n", ps, pn2, cs, cn2)
	return a, nil
}

package experiments

import (
	"pcaps/internal/dag"
	"pcaps/internal/metrics"
	"pcaps/internal/result"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func init() {
	register("fig7", "prototype PCAPS trade-off vs γ (Fig 7)", fig7)
	register("fig8", "prototype CAP trade-off vs B (Fig 8)", fig8)
	register("fig11", "simulator PCAPS trade-off vs γ (Fig 11)", fig11)
	register("fig12", "simulator CAP-FIFO trade-off vs B (Fig 12)", fig12)
	register("fig13", "PCAPS vs CAP-Decima trade-off frontier (Fig 13)", fig13)
}

// sweepPoint aggregates trials of one parameter setting.
type sweepPoint struct {
	param           float64
	carbonPct, ects []float64
}

// trialState is one trial's stage-1 output in the two-stage sweeps: the
// shared batch and configuration plus the baseline run every stage-2
// parameter point normalizes against.
type trialState struct {
	jobs []*dag.Job
	cfg  sim.Config
	base *sim.Result
}

// sweepTable builds the shared sweep shape: one row per parameter value,
// mean ± std for carbon reduction and relative ECT.
func sweepTable(label string, pts []sweepPoint) *result.Table {
	t := &result.Table{
		Name: "sweep",
		Columns: []result.Column{
			{Name: "param", Kind: result.KindFloat, Prec: 2, Header: label, HeaderFormat: "%8s", Format: "%8.2f"},
			{Name: "carbon_reduction_pct_mean", Kind: result.KindFloat, Prec: 1,
				Header: "carbon red. (%)", HeaderFormat: " %16s", Format: " %10.1f"},
			{Name: "carbon_reduction_pct_std", Kind: result.KindFloat, Prec: 1, Format: " ±%4.1f"},
			{Name: "relative_ect_mean", Kind: result.KindFloat, Prec: 3,
				Header: "relative ECT", HeaderFormat: " %18s", Format: " %12.3f"},
			{Name: "relative_ect_std", Kind: result.KindFloat, Prec: 3, Format: " ±%.3f"},
		},
	}
	for _, p := range pts {
		c := metrics.Summarize(p.carbonPct)
		e := metrics.Summarize(p.ects)
		t.Row(result.Float(p.param),
			result.Float(c.Mean), result.Float(c.Std),
			result.Float(e.Mean), result.Float(e.Std))
	}
	return t
}

// sweep runs a parameter sweep in the DE grid with 50-job batches,
// comparing each carbon-aware configuration against a baseline run.
func sweep(opt Options, proto bool, mix workload.Mix,
	baseline func(seed int64) sim.Scheduler,
	params []float64, aware func(p float64, seed int64) sim.Scheduler) []sweepPoint {
	e := newEnv(opt.scoped("DE"))
	trials := opt.Trials
	if trials <= 0 {
		trials = 5
	}
	if opt.Fast {
		trials = 1
	}
	n := opt.Jobs
	if n <= 0 {
		n = 50
	}
	if opt.Fast {
		n = 25
	}
	pts := make([]sweepPoint, len(params))
	for i, p := range params {
		pts[i].param = p
	}
	// Stage 1: baselines, one cell per trial. Stage 2: every (trial,
	// param) run against its trial's baseline. Both stages fan out over
	// the pool; the fold below walks trials in order so the appended
	// sample order matches a serial sweep exactly.
	states := make([]trialState, trials)
	forEach(opt.pool, trials, func(t int) {
		seed := cellSeed(opt.Seed, "DE", int64(t))
		jobs := batch(n, 30, mix, seed)
		tr := e.trialTrace("DE", 60+n, seed)
		cfg := simConfig(tr, seed)
		if proto {
			cfg = protoConfig(tr, seed)
		}
		states[t] = trialState{jobs: jobs, cfg: cfg, base: mustRun(cfg, jobs, baseline(seed))}
	})
	runs := make([]*sim.Result, trials*len(params))
	forEach(opt.pool, len(runs), func(k int) {
		t, i := k/len(params), k%len(params)
		seed := cellSeed(opt.Seed, "DE", int64(t))
		runs[k] = mustRun(states[t].cfg, states[t].jobs, aware(params[i], seed))
	})
	for t := 0; t < trials; t++ {
		for i := range params {
			r := runs[t*len(params)+i]
			pts[i].carbonPct = append(pts[i].carbonPct, -metrics.PercentChange(r.CarbonGrams, states[t].base.CarbonGrams))
			pts[i].ects = append(pts[i].ects, r.ECT/states[t].base.ECT)
		}
	}
	return pts
}

// fig7 regenerates the prototype PCAPS γ-sweep: carbon reduction and
// relative ECT vs the Spark/Kubernetes default for five carbon-awareness
// settings (Fig. 7).
func fig7(opt Options) (*result.Artifact, error) {
	pts := sweep(opt, true, workload.MixBoth,
		func(seed int64) sim.Scheduler { return sched.NewKubeDefault() },
		[]float64{0.1, 0.25, 0.5, 0.75, 1.0},
		func(g float64, seed int64) sim.Scheduler { return sched.NewPCAPS(sched.NewDecima(seed), g, seed) })
	a := result.New().Add(sweepTable("γ", pts))
	a.Textf("paper: carbon savings grow with γ, steeply near γ→1, at the cost of longer ECT\n")
	return a, nil
}

// fig8 regenerates the prototype CAP B-sweep (Fig. 8).
func fig8(opt Options) (*result.Artifact, error) {
	pts := sweep(opt, true, workload.MixBoth,
		func(seed int64) sim.Scheduler { return sched.NewKubeDefault() },
		[]float64{5, 20, 40, 60, 80},
		func(b float64, seed int64) sim.Scheduler { return sched.NewCAP(sched.NewKubeDefault(), int(b)) })
	a := result.New().Add(sweepTable("B", pts))
	a.Textf("paper: smaller B (stricter quota) saves more carbon but sacrifices more ECT than PCAPS\n")
	return a, nil
}

// fig11 regenerates the simulator PCAPS γ-sweep vs FIFO (Fig. 11).
func fig11(opt Options) (*result.Artifact, error) {
	pts := sweep(opt, false, workload.MixTPCH,
		func(seed int64) sim.Scheduler { return &sched.FIFO{} },
		[]float64{0.1, 0.25, 0.5, 0.75, 1.0},
		func(g float64, seed int64) sim.Scheduler { return sched.NewPCAPS(sched.NewDecima(seed), g, seed) })
	a := result.New().Add(sweepTable("γ", pts))
	a.Textf("paper: savings improve with γ, most pronounced approaching 1\n")
	return a, nil
}

// fig12 regenerates the simulator CAP-FIFO B-sweep vs FIFO (Fig. 12).
func fig12(opt Options) (*result.Artifact, error) {
	pts := sweep(opt, false, workload.MixTPCH,
		func(seed int64) sim.Scheduler { return &sched.FIFO{} },
		[]float64{5, 20, 40, 60, 80},
		func(b float64, seed int64) sim.Scheduler { return sched.NewCAP(&sched.FIFO{}, int(b)) })
	a := result.New().Add(sweepTable("B", pts))
	a.Textf("paper: CAP-FIFO sacrifices more ECT than PCAPS for the same savings; the increase begins at milder settings\n")
	return a, nil
}

// frontierSeries renders one method's trade-off cloud: x = relative ECT,
// y = carbon reduction %.
func frontierSeries(name, display string, pts []metrics.Point) *result.Series {
	s := &result.Series{
		Name: name, XLabel: "relative_ect", YLabels: []string{"carbon_reduction_pct"},
		Prefix:      display + " points (relative ECT, carbon red. %):\n",
		PointFormat: "  (%.3f, %5.1f)", WithX: true,
		Suffix: "\n",
	}
	for _, p := range pts {
		s.Point(p.X, p.Y)
	}
	return s
}

// fig13 regenerates the PCAPS vs CAP-Decima trade-off frontier: trials
// across γ ∈ [0.1, 1.0] and B ∈ {5, …, 85}, a cubic fit per method, and
// the paper's two frontier comparisons.
func fig13(opt Options) (*result.Artifact, error) {
	e := newEnv(opt.scoped("DE"))
	trials := opt.Trials
	if trials <= 0 {
		trials = 3
	}
	gammas := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	bs := []int{5, 15, 25, 35, 45, 55, 65, 75, 85}
	n := 50
	if opt.Fast {
		trials = 1
		gammas = []float64{0.3, 0.6, 0.9}
		bs = []int{15, 45, 75}
		n = 25
	}
	// Stage 1: one Decima baseline per trial; stage 2: every (trial, γ)
	// and (trial, B) run, folded back in trial-major order.
	states := make([]trialState, trials)
	forEach(opt.pool, trials, func(t int) {
		seed := cellSeed(opt.Seed, "DE", int64(t))
		jobs := batch(n, 30, workload.MixTPCH, seed)
		tr := e.trialTrace("DE", 60+n, seed)
		cfg := simConfig(tr, seed)
		states[t] = trialState{jobs: jobs, cfg: cfg, base: mustRun(cfg, jobs, sched.NewDecima(seed))}
	})
	perTrial := len(gammas) + len(bs)
	runs := make([]*sim.Result, trials*perTrial)
	forEach(opt.pool, len(runs), func(k int) {
		t, i := k/perTrial, k%perTrial
		seed := cellSeed(opt.Seed, "DE", int64(t))
		st := states[t]
		if i < len(gammas) {
			runs[k] = mustRun(st.cfg, st.jobs, sched.NewPCAPS(sched.NewDecima(seed), gammas[i], seed))
		} else {
			runs[k] = mustRun(st.cfg, st.jobs, sched.NewCAP(sched.NewDecima(seed), bs[i-len(gammas)]))
		}
	})
	var pcapsPts, capPts []metrics.Point // X = relative ECT, Y = carbon reduction %
	for t := 0; t < trials; t++ {
		base := states[t].base
		point := func(r *sim.Result) metrics.Point {
			return metrics.Point{X: r.ECT / base.ECT, Y: -metrics.PercentChange(r.CarbonGrams, base.CarbonGrams)}
		}
		for i := range gammas {
			pcapsPts = append(pcapsPts, point(runs[t*perTrial+i]))
		}
		for i := range bs {
			capPts = append(capPts, point(runs[t*perTrial+len(gammas)+i]))
		}
	}
	a := result.New()
	render := func(name, display string, pts []metrics.Point) {
		a.Add(frontierSeries(name, display, pts))
		if coef, err := metrics.PolyFit(pts, 3); err == nil {
			a.Textf("  cubic fit: %.1f %+.1fx %+.1fx² %+.1fx³\n", coef[0], coef[1], coef[2], coef[3])
		}
	}
	render("pcaps_frontier", "PCAPS", pcapsPts)
	render("cap_decima_frontier", "CAP-Decima", capPts)

	// The paper's two comparisons: mean ECT increase among trials with
	// 35-45% savings, and mean savings among trials with ECT +0-10%.
	band := func(pts []metrics.Point, loS, hiS float64) (float64, int) {
		var sum float64
		var n int
		for _, p := range pts {
			if p.Y >= loS && p.Y <= hiS {
				sum += (p.X - 1) * 100
				n++
			}
		}
		if n == 0 {
			return 0, 0
		}
		return sum / float64(n), n
	}
	savingsBand := func(pts []metrics.Point) (float64, int) {
		var sum float64
		var n int
		for _, p := range pts {
			if p.X >= 1.0 && p.X <= 1.10 {
				sum += p.Y
				n++
			}
		}
		if n == 0 {
			return 0, 0
		}
		return sum / float64(n), n
	}
	pe, pn := band(pcapsPts, 35, 45)
	ce, cn := band(capPts, 35, 45)
	a.Textf("ECT increase at 35-45%% savings: PCAPS %+.1f%% (n=%d) vs CAP-Decima %+.1f%% (n=%d); paper +7.9%% vs +42.7%%\n", pe, pn, ce, cn)
	ps, pn2 := savingsBand(pcapsPts)
	cs, cn2 := savingsBand(capPts)
	a.Textf("savings at ECT +0-10%%: PCAPS %.1f%% (n=%d) vs CAP-Decima %.1f%% (n=%d); paper 35.6%% vs 20.1%%\n", ps, pn2, cs, cn2)
	return a, nil
}

package experiments

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
	"pcaps/internal/result"
)

func serviceServer(t *testing.T) *carbonapi.Client {
	t.Helper()
	spec, err := carbon.GridByName("DE")
	if err != nil {
		t.Fatal(err)
	}
	traces := map[string]*carbon.Trace{"DE": carbon.Synthesize(spec, 200, 60, 42)}
	srv := httptest.NewServer(carbonapi.NewServer(traces, carbonapi.WithExperiments(&Service{})))
	t.Cleanup(srv.Close)
	return carbonapi.NewClient(srv.URL)
}

// TestServiceListMatchesRegistry pins the /v1/experiments index to the
// local registry: same IDs, same titles, paper order.
func TestServiceListMatchesRegistry(t *testing.T) {
	client := serviceServer(t)
	infos, err := client.Experiments(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := List()
	if len(infos) != len(want) {
		t.Fatalf("server lists %d artifacts, registry has %d", len(infos), len(want))
	}
	for i := range want {
		if infos[i].ID != want[i].ID || infos[i].Title != want[i].Title {
			t.Fatalf("infos[%d] = %+v, want %+v", i, infos[i], want[i])
		}
	}
}

// TestServiceRoundTrip runs one artifact through the full wire path —
// server-side fast run, JSON over HTTP, client-side decode — and checks
// the decoded artifact is the one a local fast run produces.
func TestServiceRoundTrip(t *testing.T) {
	client := serviceServer(t)
	got, err := client.Experiment(context.Background(), "table1")
	if err != nil {
		t.Fatal(err)
	}
	local, err := Run("table1", Options{Fast: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, local.Artifact) {
		t.Fatalf("wire artifact diverged from local run:\n got: %#v\nwant: %#v", got, local.Artifact)
	}
	if got.Body() != local.Body() {
		t.Fatalf("decoded body differs:\n%s\n%s", got.Body(), local.Body())
	}
}

func TestServiceUnknownID(t *testing.T) {
	client := serviceServer(t)
	_, err := client.Experiment(context.Background(), "fig99")
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("want a 404 error, got %v", err)
	}
}

// TestServiceConcurrentRuns exercises concurrent on-demand runs of the
// same artifact; results must agree (the run is a pure function of the
// request options).
func TestServiceConcurrentRuns(t *testing.T) {
	client := serviceServer(t)
	const n = 4
	bodies := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			art, err := client.Experiment(context.Background(), "table1")
			if err != nil {
				errs[i] = err
				return
			}
			bodies[i] = art.Body()
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("concurrent runs diverged:\n%s\n%s", bodies[0], bodies[i])
		}
	}
}

// TestServiceCachesRuns: a run is a pure function of (id, Options), so
// repeat requests must return the same cached artifact instead of
// re-simulating.
func TestServiceCachesRuns(t *testing.T) {
	s := &Service{}
	ctx := context.Background()
	a1, err := s.Run(ctx, "table1")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Run(ctx, "table1")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("repeat request re-ran the artifact instead of hitting the cache")
	}
	// Failures are deterministic too, and cached as such.
	if _, err := s.Run(ctx, "fig99"); err == nil {
		t.Fatal("unknown artifact accepted")
	}
	if _, err := s.Run(ctx, "fig99"); err == nil {
		t.Fatal("cached unknown-artifact error lost")
	}
}

// TestArtifactJSONRoundTrip is the structured-output acceptance gate:
// every artifact's fast run must encode to JSON, decode back to a
// deep-equal artifact, and re-render the identical text body.
func TestArtifactJSONRoundTrip(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(id, Options{Fast: true, Seed: 42})
			if err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			enc, err := json.Marshal(rep.Artifact)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			var back result.Artifact
			if err := json.Unmarshal(enc, &back); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(rep.Artifact, &back) {
				t.Fatalf("round trip diverged:\n in: %#v\nout: %#v", rep.Artifact, &back)
			}
			if got, want := back.Body(), rep.Body(); got != want {
				t.Fatalf("re-rendered body differs:\n--- decoded ---\n%s\n--- original ---\n%s", got, want)
			}
		})
	}
}

package experiments

import (
	"fmt"
	"strings"

	"pcaps/internal/carbon"
	fed "pcaps/internal/federation"
	"pcaps/internal/metrics"
	"pcaps/internal/result"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func init() {
	register("federation", "multi-grid federation: routing policies vs single-grid baselines", federationTable)
}

// fedVariant is one row of the federation table: a routing policy, the
// member-cluster scheduler family, and optionally a single-grid pin (the
// geographic-diversity baseline: same cluster count, every member on the
// same grid).
type fedVariant struct {
	name   string
	single string // when set, every cluster replays this grid's window
	router func() fed.Router
	sched  func(seed int64) sim.Scheduler
}

func fifoMember(int64) sim.Scheduler { return &sched.FIFO{} }
func capMember(int64) sim.Scheduler  { return sched.NewCAP(&sched.FIFO{}, 20) }

// fedVariants enumerates the rows for one scenario in rendering order.
func fedVariants(scenario []string) []fedVariant {
	vs := make([]fedVariant, 0, len(scenario)+4)
	for _, g := range scenario {
		vs = append(vs, fedVariant{
			name:   "single:" + g,
			single: g,
			router: func() fed.Router { return fed.NewRoundRobin() },
			sched:  fifoMember,
		})
	}
	return append(vs,
		fedVariant{name: "fed:round-robin", router: func() fed.Router { return fed.NewRoundRobin() }, sched: fifoMember},
		fedVariant{name: "fed:lowest-intensity", router: func() fed.Router { return fed.NewLowestIntensity() }, sched: fifoMember},
		fedVariant{name: "fed:forecast-aware", router: func() fed.Router { return fed.NewForecastAware() }, sched: fifoMember},
		fedVariant{name: "fed:forecast+CAP", router: func() fed.Router { return fed.NewForecastAware() }, sched: capMember},
	)
}

// fedScenarios resolves the multi-grid scenario list: an explicit -grids
// subset becomes the single scenario (a lone grid degenerates to a
// one-cluster federation where every router agrees — the restriction is
// honored rather than silently widened back to the default family);
// without a subset, a default family spanning the paper's grid set.
// Options.validate has already rejected duplicate grid names, so the
// subset is usable as-is.
func fedScenarios(opt Options) [][]string {
	if len(opt.Grids) > 0 {
		return [][]string{opt.Grids}
	}
	if opt.Fast {
		return [][]string{{"CAISO", "ON", "DE"}}
	}
	return [][]string{
		{"CAISO", "ON", "DE"},
		{"PJM", "NSW", "ZA"},
		{"PJM", "CAISO", "ON", "DE", "NSW", "ZA"},
	}
}

// federationTable regenerates the federation comparison: for each
// multi-grid scenario, single-grid pins vs federated routing policies,
// every run over the identical job batch and per-grid trace windows.
func federationTable(opt Options) (*result.Artifact, error) {
	scenarios := fedScenarios(opt)
	trials := opt.Trials
	if trials <= 0 {
		trials = 3
	}
	njobs := opt.Jobs
	if njobs <= 0 {
		njobs = 40
	}
	if opt.Fast {
		trials = 1
		if opt.Jobs <= 0 {
			njobs = 16
		}
	}

	// Cells are (scenario, trial); each cell runs every variant over the
	// same batch and windows, and cells fan out over the shared pool.
	type cellID struct{ scenario, trial int }
	var cells []cellID
	for si := range scenarios {
		for t := 0; t < trials; t++ {
			cells = append(cells, cellID{si, t})
		}
	}
	envs := make([]*env, len(scenarios))
	for si, sc := range scenarios {
		envs[si] = newEnv(opt.scoped(sc...))
	}
	window := 60 + njobs // hours: generous for the batch

	results := make([]map[string]metrics.FederationSummary, len(cells))
	forEach(opt.pool, len(cells), func(i int) {
		c := cells[i]
		scenario := scenarios[c.scenario]
		e := envs[c.scenario]
		seed := cellSeed(opt.Seed, strings.Join(scenario, "+"), int64(c.trial))
		jobs := batch(njobs, 30, workload.MixTPCH, seed)
		traces := make(map[string]*carbon.Trace, len(scenario))
		for _, g := range scenario {
			traces[g] = e.trialTrace(g, window, cellSeed(seed, g))
		}
		out := make(map[string]metrics.FederationSummary)
		for _, v := range fedVariants(scenario) {
			clusters := make([]fed.ClusterSpec, len(scenario))
			for ci, g := range scenario {
				grid := g
				if v.single != "" {
					grid = v.single
				}
				tr := traces[grid]
				clusters[ci] = fed.ClusterSpec{
					Name:         fmt.Sprintf("%s-%d", grid, ci),
					Grid:         grid,
					Trace:        tr,
					Config:       simConfig(tr, seed),
					NewScheduler: v.sched,
				}
			}
			f := &fed.Federation{Clusters: clusters, Router: v.router(), Seed: seed}
			res, err := f.Run(jobs)
			if err != nil {
				panic(fmt.Sprintf("experiments: federation %s: %v", v.name, err))
			}
			out[v.name] = res.Summary
		}
		results[i] = out
	})

	// Fold per scenario in cell order; aggregation is a serial mean, so
	// the report is identical at any parallelism.
	art := result.New()
	for si, scenario := range scenarios {
		agg := map[string]*fedAgg{}
		for i, c := range cells {
			if c.scenario != si {
				continue
			}
			for name, s := range results[i] {
				a := agg[name]
				if a == nil {
					a = &fedAgg{}
					agg[name] = a
				}
				a.add(s)
			}
		}
		base := agg["fed:round-robin"].summary()
		// Member size comes from the same simConfig the cells use, so the
		// header cannot drift from the simulated capacity.
		memberK := simConfig(nil, 0).NumExecutors
		art.Textf("scenario %s — %d clusters × %d executors, %d jobs, avg of %d trial(s):\n",
			strings.Join(scenario, "+"), len(scenario), memberK, njobs, trials)
		t := &result.Table{Name: strings.Join(scenario, "+"), Columns: metrics.FederationColumns()}
		for _, v := range fedVariants(scenario) {
			t.Rows = append(t.Rows, agg[v.name].summary().Row(v.name, base))
		}
		art.Add(t)
		if si < len(scenarios)-1 {
			art.Textf("\n")
		}
	}
	art.Textf("(single:<grid> pins every member cluster to one grid's window — the no-geographic-diversity baseline;\n")
	art.Textf(" fed:* route across the scenario's grids. Members run FIFO except fed:forecast+CAP, which runs CAP-FIFO.)\n")
	return art, nil
}

// fedAgg averages federation summaries across trials.
type fedAgg struct {
	sumCarbon, sumMakespan, sumJCT float64
	n                              int
}

func (a *fedAgg) add(s metrics.FederationSummary) {
	a.sumCarbon += s.CarbonGrams
	a.sumMakespan += s.Makespan
	a.sumJCT += s.AvgJCT
	a.n++
}

// summary folds the trial means back into a FederationSummary so the
// averaged row renders through the same metrics table shape as a single
// run.
func (a *fedAgg) summary() metrics.FederationSummary {
	n := float64(a.n)
	return metrics.FederationSummary{
		CarbonGrams: a.sumCarbon / n,
		Makespan:    a.sumMakespan / n,
		AvgJCT:      a.sumJCT / n,
	}
}

package experiments

import (
	"pcaps/internal/result"
	"pcaps/internal/scenario"
	"pcaps/internal/sched"
)

func init() {
	register("federation", "multi-grid federation: routing policies vs single-grid baselines", federationTable)
}

// fedTopologies resolves the multi-grid topology list: an explicit
// -grids subset becomes the single topology (a lone grid degenerates to
// a one-cluster federation where every router agrees — the restriction
// is honored rather than silently widened back to the default family);
// without a subset, a default family spanning the paper's grid set.
// Options.validate has already rejected duplicate grid names, so the
// subset is usable as-is.
func fedTopologies(opt Options) [][]string {
	if len(opt.Grids) > 0 {
		return [][]string{opt.Grids}
	}
	if opt.Fast {
		return [][]string{{"CAISO", "ON", "DE"}}
	}
	return [][]string{
		{"CAISO", "ON", "DE"},
		{"PJM", "NSW", "ZA"},
		{"PJM", "CAISO", "ON", "DE", "NSW", "ZA"},
	}
}

// federationTable regenerates the federation comparison, declared as a
// scenario spec: for each multi-grid topology, single-grid pins vs
// federated routing policies, every run over the identical job batch
// and per-grid trace windows. Members run FIFO except the forecast+CAP
// row, whose member scheduler is CAP-FIFO.
func federationTable(opt Options) (*result.Artifact, error) {
	return runSpec(opt, scenario.Spec{
		Name:     "federation",
		Seed:     opt.Seed,
		Hours:    opt.Hours,
		Trials:   opt.Trials,
		Workload: scenario.WorkloadSpec{Mix: "tpch", Jobs: opt.Jobs},
		Federation: &scenario.FederationSpec{
			Topologies: fedTopologies(opt),
			SinglePins: true,
			Member:     &scenario.PolicySpec{Kind: "fifo"},
			Routers: []scenario.RouterSpec{
				{Name: "fed:round-robin", Kind: "round-robin"},
				{Name: "fed:lowest-intensity", Kind: "lowest-intensity"},
				{Name: "fed:forecast-aware", Kind: "forecast-aware"},
				{Name: "fed:forecast+CAP", Kind: "forecast-aware",
					Policy: &scenario.PolicySpec{Kind: "cap", B: sched.Int(20), Inner: &scenario.PolicySpec{Kind: "fifo"}}},
			},
		},
		Notes: []string{
			"(single:<grid> pins every member cluster to one grid's window — the no-geographic-diversity baseline;\n",
			" fed:* route across the scenario's grids. Members run FIFO except fed:forecast+CAP, which runs CAP-FIFO.)\n",
		},
	})
}

package experiments

import (
	"strings"
	"testing"
)

// TestFederationHonorsGridRestriction: an explicit -grids subset must
// become the scenario — including a lone grid, which degenerates to a
// one-cluster federation — never be silently widened to the default
// scenario family.
func TestFederationHonorsGridRestriction(t *testing.T) {
	rep, err := Run("federation", Options{Fast: true, Seed: 42, Grids: []string{"DE"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Body(), "scenario DE —") {
		t.Fatalf("missing single-grid scenario header:\n%s", rep.Body())
	}
	if strings.Contains(rep.Body(), "CAISO") {
		t.Fatalf("grid restriction widened to default scenarios:\n%s", rep.Body())
	}
	// With one cluster every router routes identically, so all rows
	// match round-robin exactly.
	for _, line := range strings.Split(rep.Body(), "\n") {
		if strings.Contains(line, "fed:") && !strings.Contains(line, "+0.0%") && !strings.Contains(line, "fed:forecast+CAP") {
			t.Fatalf("one-cluster federation row diverged from RR: %q", line)
		}
	}
}

func TestFederationPairScenario(t *testing.T) {
	rep, err := Run("federation", Options{Fast: true, Seed: 42, Grids: []string{"ON", "ZA"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Body(), "scenario ON+ZA —") || !strings.Contains(rep.Body(), "fed:lowest-intensity") {
		t.Fatalf("unexpected pair-scenario body:\n%s", rep.Body())
	}
}

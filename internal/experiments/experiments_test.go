package experiments

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fastOpt() Options { return Options{Fast: true, Seed: 42} }

// TestAllArtifactsRunFast exercises every registered artifact in fast
// mode: each must produce a non-empty, correctly labeled report.
func TestAllArtifactsRunFast(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(id, fastOpt())
			if err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			if rep.ID != id {
				t.Fatalf("report ID = %q", rep.ID)
			}
			if rep.Title == "" || len(rep.Body()) < 20 {
				t.Fatalf("degenerate report: %+v", rep)
			}
			if !strings.Contains(rep.Render(), id) {
				t.Fatal("Render missing artifact ID")
			}
		})
	}
}

func TestIDsCoverPaperArtifacts(t *testing.T) {
	want := []string{
		"table1", "table2", "table3",
		"fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "ablation", "federation", "hyperscale", "overload",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	if _, err := Run("fig99", fastOpt()); err == nil {
		t.Fatal("unknown artifact accepted")
	}
}

func TestTable1MatchesPaperBounds(t *testing.T) {
	rep, err := Run("table1", Options{Fast: true, Grids: []string{"DE", "ZA"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The exact extremes are matched by construction; spot-check they
	// appear in the rendered rows.
	for _, needle := range []string{"130", "765", "586", "785"} {
		if !strings.Contains(rep.Body(), needle) {
			t.Fatalf("table1 missing %s:\n%s", needle, rep.Body())
		}
	}
}

func TestFig1QualitativeShape(t *testing.T) {
	rep, err := Run("fig1", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	// C-OPT must reduce carbon by far more than PCAPS, which must not be
	// slower than FIFO.
	if !strings.Contains(rep.Body(), "C-OPT") || !strings.Contains(rep.Body(), "PCAPS") {
		t.Fatalf("fig1 missing policies:\n%s", rep.Body())
	}
	lines := strings.Split(rep.Body(), "\n")
	var coptNeg, pcapsNeg bool
	for _, l := range lines {
		if strings.HasPrefix(l, "C-OPT") && strings.Contains(l, "-") {
			coptNeg = true
		}
		if strings.HasPrefix(l, "PCAPS") && strings.Contains(l, "-") {
			pcapsNeg = true
		}
	}
	if !coptNeg || !pcapsNeg {
		t.Fatalf("fig1 carbon reductions missing:\n%s", rep.Body())
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if len(o.Grids) != 6 || o.Hours != 26304 || o.Seed == 0 {
		t.Fatalf("defaults = %+v", o)
	}
	f := Options{Fast: true}.withDefaults()
	if len(f.Grids) != 1 || f.Hours >= 26304 {
		t.Fatalf("fast defaults = %+v", f)
	}
}

func TestTrialTraceWindows(t *testing.T) {
	e := newEnv(Options{Fast: true, Seed: 3})
	tr := e.trialTrace("DE", 100, cellSeed(3, "DE", 0))
	if len(tr.Values) != 100 {
		t.Fatalf("window = %d samples", len(tr.Values))
	}
	// Different cells land at different offsets (with high probability).
	a := e.trialTrace("DE", 100, cellSeed(3, "DE", 1))
	b := e.trialTrace("DE", 100, cellSeed(3, "DE", 2))
	same := true
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("trial windows identical across cells")
	}
	// The same cell always sees the same window, no matter how many other
	// draws happened in between — the property parallel execution needs.
	c := e.trialTrace("DE", 100, cellSeed(3, "DE", 1))
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			t.Fatal("same cell produced different windows")
		}
	}
}

// maskTimings collapses numbers (and the column padding their width
// changes) to '#', used to compare fig20 bodies whose latency columns are
// live wall-clock measurements (see the fig20 runner comment) and
// therefore differ even between two serial runs.
var (
	numberRun = regexp.MustCompile(`[0-9][0-9.]*`)
	spaceRun  = regexp.MustCompile(` +`)
)

func maskTimings(s string) string {
	return spaceRun.ReplaceAllString(numberRun.ReplaceAllString(s, "#"), " ")
}

// TestSerialParallelDeterminism is the regression gate for the parallel
// experiment engine: for every artifact, the serial path (Parallel: 1)
// must produce byte-identical report bodies at the same seed across the
// fanned-out worker counts the CLI exposes (Parallel: 2, 4, and 0 —
// GOMAXPROCS). With the common-prefix group runner underneath, this also
// proves that forked sweep cells land on the same bytes regardless of
// which worker simulates them. fig20's measured latencies are masked;
// its structure must still match byte-for-byte.
func TestSerialParallelDeterminism(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial, err := Run(id, Options{Fast: true, Seed: 42, Parallel: 1})
			if err != nil {
				t.Fatalf("serial Run(%s): %v", id, err)
			}
			sb := serial.Body()
			if id == "fig20" {
				sb = maskTimings(sb)
			}
			for _, workers := range []int{2, 4, 0} {
				par, err := Run(id, Options{Fast: true, Seed: 42, Parallel: workers})
				if err != nil {
					t.Fatalf("Run(%s, parallel=%d): %v", id, workers, err)
				}
				pb := par.Body()
				if id == "fig20" {
					pb = maskTimings(pb)
				}
				if sb != pb {
					t.Fatalf("serial and parallel=%d bodies differ for %s:\n--- serial ---\n%s\n--- parallel ---\n%s", workers, id, sb, pb)
				}
			}
		})
	}
}

func TestRunAllOrderAndErrors(t *testing.T) {
	ids := []string{"table1", "fig1"}
	reports, err := RunAll(ids, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if reports[i].ID != id {
			t.Fatalf("reports[%d].ID = %q, want %q", i, reports[i].ID, id)
		}
	}
	if _, err := RunAll([]string{"table1", "fig99"}, fastOpt()); err == nil {
		t.Fatal("RunAll accepted an unknown artifact")
	}
}

func TestForEachCoversAllCellsOnce(t *testing.T) {
	for _, parallel := range []int{1, 3, 16} {
		const n = 100
		counts := make([]int32, n)
		var mu sync.Mutex
		forEach(newPool(parallel), n, func(i int) { mu.Lock(); counts[i]++; mu.Unlock() })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("parallel=%d: cell %d ran %d times", parallel, i, c)
			}
		}
	}
	forEach(newPool(4), 0, func(int) { t.Fatal("fn called for n=0") })
	// A nil pool degenerates to a serial loop.
	ran := 0
	forEach(nil, 3, func(int) { ran++ })
	if ran != 3 {
		t.Fatalf("nil pool ran %d of 3 cells", ran)
	}
}

// TestForEachSharedBudget pins the Options.Parallel contract: nested
// fan-outs draw extra workers from one pool, so total concurrency stays
// within the requested bound instead of multiplying per level.
func TestForEachSharedBudget(t *testing.T) {
	p := newPool(3)
	var cur, peak atomic.Int64
	var inner func(depth int)
	inner = func(depth int) {
		forEach(p, 4, func(int) {
			if depth > 0 {
				inner(depth - 1)
				return
			}
			// Only leaf cells count: an ancestor frame is blocked in the
			// recursive call, so each goroutine contributes at most one.
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
	}
	inner(2)
	if got := peak.Load(); got > 3 {
		t.Fatalf("peak concurrency %d exceeds the requested bound of 3", got)
	}
}

func TestForEachPropagatesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate")
		}
	}()
	forEach(newPool(4), 8, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

func TestRunRejectsUnknownGrid(t *testing.T) {
	_, err := Run("table2", Options{Fast: true, Seed: 42, Grids: []string{"BOGUS"}})
	if err == nil || !strings.Contains(err.Error(), `unknown grid "BOGUS"`) {
		t.Fatalf("want an unknown-grid error, got: %v", err)
	}
}

// TestRunRejectsDuplicateGrids: a repeated grid (e.g. -grids DE,DE) used
// to silently run the grid twice through some runners' cell matrices,
// doubling its weight in cross-grid averages; it is now a validation
// error before any simulation starts.
func TestRunRejectsDuplicateGrids(t *testing.T) {
	for _, set := range [][]string{{"DE", "DE"}, {"DE", "CAISO", "DE"}} {
		_, err := Run("table2", Options{Fast: true, Seed: 42, Grids: set})
		if err == nil || !strings.Contains(err.Error(), `duplicate grid "DE"`) {
			t.Fatalf("grids %v: want a duplicate-grid error, got: %v", set, err)
		}
	}
	// A non-degenerate subset still passes validation.
	if _, err := Run("table1", Options{Fast: true, Seed: 42, Grids: []string{"DE", "CAISO"}}); err != nil {
		t.Fatalf("distinct grids rejected: %v", err)
	}
}

// TestListCarriesTitles: registry metadata exists without running
// anything (pcapsim -list and /v1/experiments depend on it).
func TestListCarriesTitles(t *testing.T) {
	infos := List()
	ids := IDs()
	if len(infos) != len(ids) {
		t.Fatalf("List has %d entries, IDs %d", len(infos), len(ids))
	}
	for i, info := range infos {
		if info.ID != ids[i] {
			t.Fatalf("List[%d].ID = %q, want %q", i, info.ID, ids[i])
		}
		if info.Title == "" {
			t.Fatalf("artifact %q has no title", info.ID)
		}
	}
	if infos[1].Title != "prototype results summary (§6.3)" {
		t.Fatalf("table2 title = %q", infos[1].Title)
	}
}

func TestCellSeedDistinguishesCoordinates(t *testing.T) {
	seen := map[int64]string{}
	for _, grid := range []string{"DE", "CAISO"} {
		for size := int64(0); size < 4; size++ {
			for trial := int64(0); trial < 4; trial++ {
				s := cellSeed(42, grid, size, trial)
				if s < 0 {
					t.Fatalf("negative seed %d", s)
				}
				key := fmt.Sprintf("%s/%d/%d", grid, size, trial)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s both map to %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
	if cellSeed(1, "DE", 2) == cellSeed(2, "DE", 1) {
		t.Fatal("base seed and coordinate are interchangeable")
	}
}

package experiments

import (
	"strings"
	"testing"
)

func fastOpt() Options { return Options{Fast: true, Seed: 42} }

// TestAllArtifactsRunFast exercises every registered artifact in fast
// mode: each must produce a non-empty, correctly labeled report.
func TestAllArtifactsRunFast(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(id, fastOpt())
			if err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			if rep.ID != id {
				t.Fatalf("report ID = %q", rep.ID)
			}
			if rep.Title == "" || len(rep.Body) < 20 {
				t.Fatalf("degenerate report: %+v", rep)
			}
			if !strings.Contains(rep.Render(), id) {
				t.Fatal("Render missing artifact ID")
			}
		})
	}
}

func TestIDsCoverPaperArtifacts(t *testing.T) {
	want := []string{
		"table1", "table2", "table3",
		"fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "ablation",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	if _, err := Run("fig99", fastOpt()); err == nil {
		t.Fatal("unknown artifact accepted")
	}
}

func TestTable1MatchesPaperBounds(t *testing.T) {
	rep, err := Run("table1", Options{Fast: true, Grids: []string{"DE", "ZA"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The exact extremes are matched by construction; spot-check they
	// appear in the rendered rows.
	for _, needle := range []string{"130", "765", "586", "785"} {
		if !strings.Contains(rep.Body, needle) {
			t.Fatalf("table1 missing %s:\n%s", needle, rep.Body)
		}
	}
}

func TestFig1QualitativeShape(t *testing.T) {
	rep, err := Run("fig1", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	// C-OPT must reduce carbon by far more than PCAPS, which must not be
	// slower than FIFO.
	if !strings.Contains(rep.Body, "C-OPT") || !strings.Contains(rep.Body, "PCAPS") {
		t.Fatalf("fig1 missing policies:\n%s", rep.Body)
	}
	lines := strings.Split(rep.Body, "\n")
	var coptNeg, pcapsNeg bool
	for _, l := range lines {
		if strings.HasPrefix(l, "C-OPT") && strings.Contains(l, "-") {
			coptNeg = true
		}
		if strings.HasPrefix(l, "PCAPS") && strings.Contains(l, "-") {
			pcapsNeg = true
		}
	}
	if !coptNeg || !pcapsNeg {
		t.Fatalf("fig1 carbon reductions missing:\n%s", rep.Body)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if len(o.Grids) != 6 || o.Hours != 26304 || o.Seed == 0 {
		t.Fatalf("defaults = %+v", o)
	}
	f := Options{Fast: true}.withDefaults()
	if len(f.Grids) != 1 || f.Hours >= 26304 {
		t.Fatalf("fast defaults = %+v", f)
	}
}

func TestTrialTraceWindows(t *testing.T) {
	e := newEnv(Options{Fast: true, Seed: 3})
	tr := e.trialTrace("DE", 100)
	if len(tr.Values) != 100 {
		t.Fatalf("window = %d samples", len(tr.Values))
	}
	// Different draws land at different offsets (with high probability).
	a := e.trialTrace("DE", 100)
	b := e.trialTrace("DE", 100)
	same := true
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("trial windows identical across draws")
	}
}

package experiments

import (
	"fmt"
	"strings"

	"pcaps/internal/dag"
	"pcaps/internal/metrics"
	"pcaps/internal/result"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func init() {
	register("fig5", "48-hour carbon intensity snapshots (Fig 5)", fig5)
	register("fig6", "executor occupancy timelines, 5 executors / 20 jobs / DE (Fig 6)", fig6)
	register("fig9", "per-job carbon vs JCT scatter, prototype (Fig 9)", fig9)
	register("fig15", "standalone FIFO vs prototype default, identical batch (Fig 15 / A.1.2)", fig15)
}

// fig5 renders 48-hour snapshots of the six grids (Fig. 5): one series
// per grid carrying every hourly sample, with the text form showing
// every fourth value plus a sparkline.
func fig5(opt Options) (*result.Artifact, error) {
	e := newEnv(opt)
	a := result.New()
	const hours = 48
	for _, name := range e.opt.Grids {
		tr, ok := e.traces[name]
		if !ok {
			continue
		}
		// A mid-January window: day 14 of the trace year.
		win := tr.Slice(14*24*tr.Interval, hours*tr.Interval)
		s := &result.Series{
			Name: name, XLabel: "hour", YLabels: []string{"gco2eq_per_kwh"},
			Prefix:      fmt.Sprintf("%-6s", name),
			PointFormat: " %4.0f", Every: 4,
			Suffix: "  (every 4th hour)\n",
		}
		for i, v := range win.Values {
			s.Point(float64(i), v)
		}
		a.Add(s)
		a.Textf("%s", "      "+sparkline(win.Values)+"\n")
	}
	a.Textf("paper: DE and CAISO swing widely over the day; ZA is nearly flat\n")
	return a, nil
}

// sparkline draws values as a row of density glyphs.
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

// occupancyStrip renders per-interval busy executor counts as digits.
func occupancyStrip(res *sim.Result, interval float64, k int, upTo int) string {
	var b strings.Builder
	for i := 0; i < upTo; i++ {
		occ := 0.0
		if i < len(res.Usage) {
			occ = res.Usage[i] / interval
		}
		d := int(occ + 0.5)
		if d > 9 {
			d = 9
		}
		if d == 0 {
			b.WriteString("·")
		} else {
			fmt.Fprintf(&b, "%d", d)
		}
	}
	return b.String()
}

// fig6 visualizes executor occupancy for Decima, PCAPS, and CAP-FIFO on a
// 5-executor cluster with 20 TPC-H jobs over 15 hours in the DE grid
// (Fig. 6). Each policy is one table row: the occupancy and dominant-job
// strips travel as string cells, the footprint numbers as floats.
func fig6(opt Options) (*result.Artifact, error) {
	e := newEnv(opt.scoped("DE"))
	tr := e.traces["DE"].Slice(0, 200*60)
	seed := e.opt.Seed
	jobs := batch(20, 30, workload.MixTPCH, seed)
	cfg := simConfig(tr, seed)
	cfg.NumExecutors = 5
	cfg.TrackJobUsage = true
	const hours = 40 // the experiment's visible window (paper shows 15)
	policies := []struct {
		name string
		s    sim.Scheduler
	}{
		{"Decima", sched.NewDecima(seed)},
		{"PCAPS", sched.NewPCAPS(sched.NewDecima(seed), 0.5, seed)},
		{"CAP-FIFO", sched.NewCAP(&sched.FIFO{}, 1)},
	}
	results := make([]*sim.Result, len(policies))
	forEach(e.opt.pool, len(policies), func(i int) {
		results[i] = mustRun(cfg, jobs, policies[i].s)
	})
	t := &result.Table{
		Name: "occupancy",
		Columns: []result.Column{
			{Name: "policy", Kind: result.KindString, Format: "%-9s"},
			{Name: "occupancy_strip", Kind: result.KindString, Format: " |%s|"},
			{Name: "carbon_grams", Kind: result.KindFloat, Format: " carbon=%6.0f g"},
			{Name: "ect_sec", Kind: result.KindFloat, Format: "  ECT=%5.0f s"},
			{Name: "dominant_job_strip", Kind: result.KindString,
				Format: "\n          |%s| (dominant job per hour)"},
		},
	}
	for i, p := range policies {
		r := results[i]
		t.Row(result.Str(p.name),
			result.Str(occupancyStrip(r, tr.Interval, 5, hours)),
			result.Float(r.CarbonGrams), result.Float(r.ECT),
			result.Str(dominantJobStrip(r, hours)))
	}
	a := result.New().Add(t)
	dec, pc, cap := results[0], results[1], results[2]
	a.Textf("%-9s |%s| (gCO2eq/kWh per hour)\n", "carbon", sparkline(tr.Values[:hours]))
	if pc.CarbonGrams >= dec.CarbonGrams || pc.CarbonGrams >= cap.CarbonGrams {
		a.Textf("note: paper shows PCAPS with the lowest footprint of the three\n")
	} else {
		a.Textf("as in the paper, PCAPS achieves the lowest footprint of the three schedules\n")
	}
	return a, nil
}

// fig9 regenerates the per-job scatter (Fig. 9): one point per trial of
// (normalized avg JCT, normalized per-job carbon) for moderate PCAPS and
// CAP in the prototype. The raw scatter travels as data-only series; the
// text keeps its historical quadrant/KDE summary, built as table rows
// (the KDE cells are absent when too few points support a fit).
func fig9(opt Options) (*result.Artifact, error) {
	e := newEnv(opt)
	trials := opt.Trials
	if trials <= 0 {
		trials = 4
	}
	if opt.Fast {
		trials = 2
	}
	n := opt.Jobs
	if n <= 0 {
		n = 50
	}
	// One cell per (grid, trial); every cell runs its own baseline plus
	// both policies, and the scatter points fold back in matrix order.
	type scatterCell struct {
		grid  string
		trial int
	}
	var cells []scatterCell
	for _, grid := range e.opt.Grids {
		for trial := 0; trial < trials; trial++ {
			cells = append(cells, scatterCell{grid: grid, trial: trial})
		}
	}
	type scatterRuns struct{ base, pc, cp *sim.Result }
	runs := make([]scatterRuns, len(cells))
	forEach(e.opt.pool, len(cells), func(i int) {
		c := cells[i]
		seed := cellSeed(e.opt.Seed, c.grid, int64(c.trial))
		jobs := batch(n, 30, workload.MixBoth, seed)
		tr := e.trialTrace(c.grid, 60+n, seed)
		cfg := protoConfig(tr, seed)
		// The baseline and CAP share a decision prefix (identical while
		// the quota stays at K); PCAPS runs alone — its Decima base isn't
		// in this cell.
		g := mustRunGroup(cfg, jobs,
			sched.NewKubeDefault(), sched.NewCAP(sched.NewKubeDefault(), 20))
		runs[i] = scatterRuns{
			base: g[0],
			cp:   g[1],
			pc:   mustRun(cfg, jobs, sched.NewPCAPS(sched.NewDecima(seed), 0.5, seed)),
		}
	})
	var pcapsPts, capPts []metrics.Point
	for _, r := range runs {
		perJob := func(res *sim.Result) float64 { return res.CarbonGrams / float64(n) }
		pcapsPts = append(pcapsPts, metrics.Point{X: r.pc.AvgJCT / r.base.AvgJCT, Y: perJob(r.pc) / perJob(r.base)})
		capPts = append(capPts, metrics.Point{X: r.cp.AvgJCT / r.base.AvgJCT, Y: perJob(r.cp) / perJob(r.base)})
	}
	a := result.New()
	t := &result.Table{
		Name: "quadrants",
		Columns: []result.Column{
			{Name: "policy", Kind: result.KindString, Format: "%-6s"},
			{Name: "both_better_pct", Kind: result.KindFloat, Prec: 1, Format: " quadrants: both-better %.1f%%"},
			{Name: "carbon_only_pct", Kind: result.KindFloat, Prec: 1, Format: ", carbon-only %.1f%%"},
			{Name: "time_only_pct", Kind: result.KindFloat, Prec: 1, Format: ", time-only %.1f%%"},
			{Name: "both_worse_pct", Kind: result.KindFloat, Prec: 1, Format: ", both-worse %.1f%%"},
			{Name: "carbon_improved_pct", Kind: result.KindFloat, Prec: 1, Format: " (carbon improved: %.1f%%)"},
			{Name: "kde_mode_jct", Kind: result.KindFloat, Prec: 2, Format: "\n       KDE hot spot: JCT %.2f"},
			{Name: "kde_mode_carbon", Kind: result.KindFloat, Prec: 2, Format: ", per-job carbon %.2f"},
		},
	}
	addPolicy := func(name, seriesName string, pts []metrics.Point) {
		s := &result.Series{
			Name: seriesName, XLabel: "normalized_avg_jct",
			YLabels: []string{"normalized_per_job_carbon"},
		}
		for _, p := range pts {
			s.Point(p.X, p.Y)
		}
		a.Add(s)
		q := metrics.Quadrants(pts, 1, 1)
		row := []result.Cell{
			result.Str(name),
			result.Float(100 * q.BothBetter), result.Float(100 * q.CarbonOnly),
			result.Float(100 * q.TimeOnly), result.Float(100 * q.BothWorse),
			result.Float(100 * (q.BothBetter + q.CarbonOnly)),
		}
		if kde, err := metrics.NewKDE2D(pts); err == nil {
			m := kde.Mode(30)
			row = append(row, result.Float(m.X), result.Float(m.Y))
		}
		t.Rows = append(t.Rows, row)
	}
	addPolicy("PCAPS", "pcaps_scatter", pcapsPts)
	addPolicy("CAP", "cap_scatter", capPts)
	a.Add(t)
	a.Textf("paper: PCAPS improves per-job carbon in 95.8%% of trials and both metrics in 25.7%%; CAP both in 2.1%%\n")
	return a, nil
}

// dominantJobStrip renders, for each interval, a letter identifying the
// job with the largest executor usage — the per-job shading of Fig. 6
// ("each job is a unique shade of blue").
func dominantJobStrip(res *sim.Result, upTo int) string {
	var b strings.Builder
	for i := 0; i < upTo; i++ {
		best, bestU := -1, 0.0
		for jIdx, row := range res.JobUsage {
			if i < len(row) && row[i] > bestU {
				best, bestU = jIdx, row[i]
			}
		}
		if best < 0 {
			b.WriteString("·")
		} else {
			b.WriteByte(byte('a' + best%26))
		}
	}
	return b.String()
}

// jobsInSystem returns the number of arrived-but-incomplete jobs per
// carbon interval.
func jobsInSystem(jobs []*dag.Job, res *sim.Result, interval float64, upTo int) []int {
	out := make([]int, upTo)
	for i := range out {
		t0 := float64(i) * interval
		for j, job := range jobs {
			completion := job.Arrival + res.JCTs[j]
			if job.Arrival <= t0 && completion > t0 {
				out[i]++
			}
		}
	}
	return out
}

// fig15 regenerates the fidelity contrast of Appendix A.1.2: an identical
// batch of 50 TPC-H jobs under the simulator's standalone FIFO and the
// prototype's capped default, with occupancy and jobs-in-system
// timelines.
func fig15(opt Options) (*result.Artifact, error) {
	e := newEnv(opt.scoped("DE"))
	seed := e.opt.Seed
	n := 50
	if opt.Fast {
		n = 25
	}
	jobs := batch(n, 30, workload.MixTPCH, seed)
	tr := e.traces["DE"]
	// The simulator and prototype runs are independent; run the pair
	// concurrently.
	pair := make([]*sim.Result, 2)
	forEach(e.opt.pool, 2, func(i int) {
		if i == 0 {
			pair[0] = mustRun(simConfig(tr, seed), jobs, &sched.FIFO{})
		} else {
			pair[1] = mustRun(protoConfig(tr, seed), jobs, sched.NewKubeDefault())
		}
	})
	fifo, proto := pair[0], pair[1]
	hours := len(fifo.Usage)
	if len(proto.Usage) > hours {
		hours = len(proto.Usage)
	}
	a := result.New()
	strip := func(name string, r *sim.Result) {
		a.Textf("%-10s busy |%s| (0-9 ≈ 0-100 executors)\n", name,
			scaledOccupancy(r, tr.Interval, hours))
		sys := jobsInSystem(jobs, r, tr.Interval, hours)
		var sb strings.Builder
		for _, v := range sys {
			if v == 0 {
				sb.WriteString("·")
			} else if v > 9 {
				sb.WriteString("+")
			} else {
				fmt.Fprintf(&sb, "%d", v)
			}
		}
		a.Textf("%-10s jobs |%s|\n", name, sb.String())
	}
	strip("simulator", fifo)
	strip("prototype", proto)
	t := &result.Table{
		Name: "fidelity",
		Columns: []result.Column{
			{Name: "metric", Kind: result.KindString, Format: "%s"},
			{Name: "prototype_vs_simulator_pct", Kind: result.KindFloat, Prec: 1,
				Format: ": prototype vs simulator FIFO %+.1f%%"},
			{Name: "paper", Kind: result.KindString, Format: " (paper %s)"},
		},
	}
	t.Row(result.Str("carbon"),
		result.Float(metrics.PercentChange(proto.CarbonGrams, fifo.CarbonGrams)), result.Str("−18.8%"))
	t.Row(result.Str("avg JCT"),
		result.Float(metrics.PercentChange(proto.AvgJCT, fifo.AvgJCT)), result.Str("−22.1%"))
	a.Add(t)
	return a, nil
}

// scaledOccupancy renders busy executors on a 0-9 scale of the cluster
// size (100 executors).
func scaledOccupancy(res *sim.Result, interval float64, upTo int) string {
	var b strings.Builder
	for i := 0; i < upTo; i++ {
		occ := 0.0
		if i < len(res.Usage) {
			occ = res.Usage[i] / interval
		}
		d := int(occ/100*9 + 0.5)
		if d > 9 {
			d = 9
		}
		if d == 0 {
			b.WriteString("·")
		} else {
			fmt.Fprintf(&b, "%d", d)
		}
	}
	return b.String()
}

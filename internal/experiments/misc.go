package experiments

import (
	"fmt"
	"strings"

	"pcaps/internal/carbon"
	"pcaps/internal/dag"
	"pcaps/internal/metrics"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func init() {
	register("fig5", fig5)
	register("fig6", fig6)
	register("fig9", fig9)
	register("fig15", fig15)
}

// fig5 renders 48-hour snapshots of the six grids (Fig. 5).
func fig5(opt Options) (*Report, error) {
	e := newEnv(opt)
	var b strings.Builder
	const hours = 48
	for _, name := range e.opt.Grids {
		tr, ok := e.traces[name]
		if !ok {
			continue
		}
		// A mid-January window: day 14 of the trace year.
		win := tr.Slice(14*24*tr.Interval, hours*tr.Interval)
		fmt.Fprintf(&b, "%-6s", name)
		for i, v := range win.Values {
			if i%4 == 0 {
				fmt.Fprintf(&b, " %4.0f", v)
			}
		}
		b.WriteString("  (every 4th hour)\n")
		b.WriteString("      " + sparkline(win.Values) + "\n")
	}
	b.WriteString("paper: DE and CAISO swing widely over the day; ZA is nearly flat\n")
	return &Report{ID: "fig5", Title: "48-hour carbon intensity snapshots (Fig 5)", Body: b.String()}, nil
}

// sparkline draws values as a row of density glyphs.
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

// occupancyStrip renders per-interval busy executor counts as digits.
func occupancyStrip(res *sim.Result, interval float64, k int, upTo int) string {
	var b strings.Builder
	for i := 0; i < upTo; i++ {
		occ := 0.0
		if i < len(res.Usage) {
			occ = res.Usage[i] / interval
		}
		d := int(occ + 0.5)
		if d > 9 {
			d = 9
		}
		if d == 0 {
			b.WriteString("·")
		} else {
			fmt.Fprintf(&b, "%d", d)
		}
	}
	return b.String()
}

// fig6 visualizes executor occupancy for Decima, PCAPS, and CAP-FIFO on a
// 5-executor cluster with 20 TPC-H jobs over 15 hours in the DE grid
// (Fig. 6).
func fig6(opt Options) (*Report, error) {
	e := newEnv(opt.scoped("DE"))
	tr := e.traces["DE"].Slice(0, 200*60)
	seed := e.opt.Seed
	jobs := batch(20, 30, workload.MixTPCH, seed)
	cfg := simConfig(tr, seed)
	cfg.NumExecutors = 5
	cfg.TrackJobUsage = true
	const hours = 40 // the experiment's visible window (paper shows 15)
	var b strings.Builder
	policies := []struct {
		name string
		s    sim.Scheduler
	}{
		{"Decima", sched.NewDecima(seed)},
		{"PCAPS", sched.NewPCAPS(sched.NewDecima(seed), 0.5, seed)},
		{"CAP-FIFO", sched.NewCAP(&sched.FIFO{}, 1)},
	}
	results := make([]*sim.Result, len(policies))
	forEach(e.opt.pool, len(policies), func(i int) {
		results[i] = mustRun(cfg, jobs, policies[i].s)
	})
	for i, p := range policies {
		r := results[i]
		fmt.Fprintf(&b, "%-9s |%s| carbon=%6.0f g  ECT=%5.0f s\n",
			p.name, occupancyStrip(r, tr.Interval, 5, hours), r.CarbonGrams, r.ECT)
		fmt.Fprintf(&b, "%-9s |%s| (dominant job per hour)\n", "", dominantJobStrip(r, hours))
	}
	dec, pc, cap := results[0], results[1], results[2]
	fmt.Fprintf(&b, "%-9s |%s| (gCO2eq/kWh per hour)\n", "carbon", sparkline(tr.Values[:hours]))
	if pc.CarbonGrams >= dec.CarbonGrams || pc.CarbonGrams >= cap.CarbonGrams {
		b.WriteString("note: paper shows PCAPS with the lowest footprint of the three\n")
	} else {
		b.WriteString("as in the paper, PCAPS achieves the lowest footprint of the three schedules\n")
	}
	return &Report{ID: "fig6", Title: "executor occupancy timelines, 5 executors / 20 jobs / DE (Fig 6)", Body: b.String()}, nil
}

// fig9 regenerates the per-job scatter (Fig. 9): one point per trial of
// (normalized avg JCT, normalized per-job carbon) for moderate PCAPS and
// CAP in the prototype, with quadrant shares and KDE hot spots.
func fig9(opt Options) (*Report, error) {
	e := newEnv(opt)
	trials := opt.Trials
	if trials <= 0 {
		trials = 4
	}
	if opt.Fast {
		trials = 2
	}
	n := opt.Jobs
	if n <= 0 {
		n = 50
	}
	// One cell per (grid, trial); every cell runs its own baseline plus
	// both policies, and the scatter points fold back in matrix order.
	type scatterCell struct {
		grid  string
		trial int
	}
	var cells []scatterCell
	for _, grid := range e.opt.Grids {
		for trial := 0; trial < trials; trial++ {
			cells = append(cells, scatterCell{grid: grid, trial: trial})
		}
	}
	type scatterRuns struct{ base, pc, cp *sim.Result }
	runs := make([]scatterRuns, len(cells))
	forEach(e.opt.pool, len(cells), func(i int) {
		c := cells[i]
		seed := cellSeed(e.opt.Seed, c.grid, int64(c.trial))
		jobs := batch(n, 30, workload.MixBoth, seed)
		tr := e.trialTrace(c.grid, 60+n, seed)
		cfg := protoConfig(tr, seed)
		runs[i] = scatterRuns{
			base: mustRun(cfg, jobs, sched.NewKubeDefault()),
			pc:   mustRun(cfg, jobs, sched.NewPCAPS(sched.NewDecima(seed), 0.5, seed)),
			cp:   mustRun(cfg, jobs, sched.NewCAP(sched.NewKubeDefault(), 20)),
		}
	})
	var pcapsPts, capPts []metrics.Point
	for _, r := range runs {
		perJob := func(res *sim.Result) float64 { return res.CarbonGrams / float64(n) }
		pcapsPts = append(pcapsPts, metrics.Point{X: r.pc.AvgJCT / r.base.AvgJCT, Y: perJob(r.pc) / perJob(r.base)})
		capPts = append(capPts, metrics.Point{X: r.cp.AvgJCT / r.base.AvgJCT, Y: perJob(r.cp) / perJob(r.base)})
	}
	var b strings.Builder
	render := func(name string, pts []metrics.Point) {
		q := metrics.Quadrants(pts, 1, 1)
		fmt.Fprintf(&b, "%-6s quadrants: both-better %.1f%%, carbon-only %.1f%%, time-only %.1f%%, both-worse %.1f%% (carbon improved: %.1f%%)\n",
			name, 100*q.BothBetter, 100*q.CarbonOnly, 100*q.TimeOnly, 100*q.BothWorse,
			100*(q.BothBetter+q.CarbonOnly))
		if kde, err := metrics.NewKDE2D(pts); err == nil {
			m := kde.Mode(30)
			fmt.Fprintf(&b, "       KDE hot spot: JCT %.2f, per-job carbon %.2f\n", m.X, m.Y)
		}
	}
	render("PCAPS", pcapsPts)
	render("CAP", capPts)
	b.WriteString("paper: PCAPS improves per-job carbon in 95.8% of trials and both metrics in 25.7%; CAP both in 2.1%\n")
	return &Report{ID: "fig9", Title: "per-job carbon vs JCT scatter, prototype (Fig 9)", Body: b.String()}, nil
}

// dominantJobStrip renders, for each interval, a letter identifying the
// job with the largest executor usage — the per-job shading of Fig. 6
// ("each job is a unique shade of blue").
func dominantJobStrip(res *sim.Result, upTo int) string {
	var b strings.Builder
	for i := 0; i < upTo; i++ {
		best, bestU := -1, 0.0
		for jIdx, row := range res.JobUsage {
			if i < len(row) && row[i] > bestU {
				best, bestU = jIdx, row[i]
			}
		}
		if best < 0 {
			b.WriteString("·")
		} else {
			b.WriteByte(byte('a' + best%26))
		}
	}
	return b.String()
}

// jobsInSystem returns the number of arrived-but-incomplete jobs per
// carbon interval.
func jobsInSystem(jobs []*dag.Job, res *sim.Result, interval float64, upTo int) []int {
	out := make([]int, upTo)
	for i := range out {
		t0 := float64(i) * interval
		for j, job := range jobs {
			completion := job.Arrival + res.JCTs[j]
			if job.Arrival <= t0 && completion > t0 {
				out[i]++
			}
		}
	}
	return out
}

// fig15 regenerates the fidelity contrast of Appendix A.1.2: an identical
// batch of 50 TPC-H jobs under the simulator's standalone FIFO and the
// prototype's capped default, with occupancy and jobs-in-system
// timelines.
func fig15(opt Options) (*Report, error) {
	e := newEnv(opt.scoped("DE"))
	seed := e.opt.Seed
	n := 50
	if opt.Fast {
		n = 25
	}
	jobs := batch(n, 30, workload.MixTPCH, seed)
	tr := e.traces["DE"]
	// The simulator and prototype runs are independent; run the pair
	// concurrently.
	pair := make([]*sim.Result, 2)
	forEach(e.opt.pool, 2, func(i int) {
		if i == 0 {
			pair[0] = mustRun(simConfig(tr, seed), jobs, &sched.FIFO{})
		} else {
			pair[1] = mustRun(protoConfig(tr, seed), jobs, sched.NewKubeDefault())
		}
	})
	fifo, proto := pair[0], pair[1]
	hours := len(fifo.Usage)
	if len(proto.Usage) > hours {
		hours = len(proto.Usage)
	}
	var b strings.Builder
	strip := func(name string, r *sim.Result) {
		fmt.Fprintf(&b, "%-10s busy |%s| (0-9 ≈ 0-100 executors)\n", name,
			scaledOccupancy(r, tr.Interval, hours))
		sys := jobsInSystem(jobs, r, tr.Interval, hours)
		var sb strings.Builder
		for _, v := range sys {
			if v == 0 {
				sb.WriteString("·")
			} else if v > 9 {
				sb.WriteString("+")
			} else {
				fmt.Fprintf(&sb, "%d", v)
			}
		}
		fmt.Fprintf(&b, "%-10s jobs |%s|\n", name, sb.String())
	}
	strip("simulator", fifo)
	strip("prototype", proto)
	fmt.Fprintf(&b, "carbon: prototype vs simulator FIFO %+.1f%% (paper −18.8%%)\n",
		metrics.PercentChange(proto.CarbonGrams, fifo.CarbonGrams))
	fmt.Fprintf(&b, "avg JCT: prototype vs simulator FIFO %+.1f%% (paper −22.1%%)\n",
		metrics.PercentChange(proto.AvgJCT, fifo.AvgJCT))
	return &Report{ID: "fig15", Title: "standalone FIFO vs prototype default, identical batch (Fig 15 / A.1.2)", Body: b.String()}, nil
}

// scaledOccupancy renders busy executors on a 0-9 scale of the cluster
// size (100 executors).
func scaledOccupancy(res *sim.Result, interval float64, upTo int) string {
	var b strings.Builder
	for i := 0; i < upTo; i++ {
		occ := 0.0
		if i < len(res.Usage) {
			occ = res.Usage[i] / interval
		}
		d := int(occ/100*9 + 0.5)
		if d > 9 {
			d = 9
		}
		if d == 0 {
			b.WriteString("·")
		} else {
			fmt.Fprintf(&b, "%d", d)
		}
	}
	return b.String()
}

// silence the carbon import when builds shuffle helpers around.
var _ = carbon.PaperHours

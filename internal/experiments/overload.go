package experiments

import (
	"fmt"

	"pcaps/internal/arrivals"
	"pcaps/internal/metrics"
	"pcaps/internal/result"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

func init() {
	register("overload", "open-loop overload: arrival shapes × policies (backlog, tail JCT)", runOverload)
}

// overloadShapes is the arrival-shape axis: the paper's Poisson batch
// plus the open-loop shapes that stress the cluster — a matched-rate
// deterministic stream, a rate ramp past capacity, periodic bursts, and
// a diurnal cycle. Rates are in jobs/second of experiment time.
var overloadShapes = []struct {
	name string
	spec arrivals.Spec
}{
	{"poisson", arrivals.Spec{Kind: arrivals.KindPoisson, MeanSec: 30}},
	{"constant", arrivals.Spec{Kind: arrivals.KindConstant, RPS: 1.0 / 15}},
	{"ramp", arrivals.Spec{Kind: arrivals.KindRamp, RPS: 1.0 / 60, PeakRPS: 1.0 / 6, PeriodSec: 1800}},
	{"burst", arrivals.Spec{Kind: arrivals.KindBurst, RPS: 1.0 / 60, PeakRPS: 1.0 / 3, PeriodSec: 600, BurstSec: 60}},
	{"diurnal", arrivals.Spec{Kind: arrivals.KindDiurnal, RPS: 1.0 / 60, PeakRPS: 1.0 / 6, PeriodSec: 1440}},
}

// overloadAgg accumulates one (shape, policy) cell's summaries across
// trials.
type overloadAgg struct {
	sum    metrics.OpenLoop
	carbon float64
	n      int
}

func (a *overloadAgg) add(s metrics.OpenLoop, carbonGrams float64) {
	a.sum.MeanBacklog += s.MeanBacklog
	a.sum.PeakBacklog += s.PeakBacklog
	a.sum.P50JCT += s.P50JCT
	a.sum.P95JCT += s.P95JCT
	a.sum.P99JCT += s.P99JCT
	a.sum.MeanQueueDelay += s.MeanQueueDelay
	a.sum.GoodputJobsPerHr += s.GoodputJobsPerHr
	a.carbon += carbonGrams
	a.n++
}

// runOverload compares FIFO, CAP, and PCAPS under every arrival shape
// on the DE grid, reporting open-loop queueing metrics: backlog depth,
// JCT quantiles, queueing delay beyond the critical path, goodput, and
// the carbon account. Each (shape, trial) cell runs the three policies
// as one common-prefix group over the shape's batch.
func runOverload(opt Options) (*result.Artifact, error) {
	e := newEnv(opt.scoped("DE"))
	trials := opt.Trials
	if trials <= 0 {
		trials = 3
	}
	n := opt.Jobs
	if n <= 0 {
		n = 80
	}
	if opt.Fast {
		trials = 1
		if opt.Jobs <= 0 {
			n = 30
		}
	}
	procs := make([]arrivals.Process, len(overloadShapes))
	for i, sh := range overloadShapes {
		p, err := arrivals.New(sh.spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: overload shape %s: %w", sh.name, err)
		}
		procs[i] = p
	}
	policyNames := []string{"fifo", "cap", "pcaps"}
	newScheds := func(seed int64) []sim.Scheduler {
		return []sim.Scheduler{
			&sched.FIFO{},
			sched.NewCAP(&sched.FIFO{}, sched.DefaultCAPB),
			sched.NewPCAPS(sched.NewDecima(seed), sched.DefaultPCAPSGamma, seed),
		}
	}

	// One cell per (shape, trial); the fold walks cells in matrix order,
	// so the artifact is identical at any parallelism.
	type overloadCell struct{ shape, trial int }
	var cells []overloadCell
	for si := range overloadShapes {
		for t := 0; t < trials; t++ {
			cells = append(cells, overloadCell{shape: si, trial: t})
		}
	}
	type cellOut struct {
		open   []metrics.OpenLoop
		carbon []float64
	}
	runs := make([]cellOut, len(cells))
	forEach(e.opt.pool, len(cells), func(i int) {
		c := cells[i]
		seed := cellSeed(e.opt.Seed, "DE", int64(c.shape), int64(c.trial))
		jobs, err := workload.Generate(workload.GenConfig{
			N: n, Arrivals: procs[c.shape], Mix: workload.MixBoth, Seed: seed,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: overload: %v", err))
		}
		arr := make([]float64, len(jobs))
		cps := make([]float64, len(jobs))
		for k, j := range jobs {
			arr[k] = j.Arrival
			cps[k] = j.CriticalPathLength()
		}
		tr := e.trialTrace("DE", 60+n, seed)
		cfg := simConfig(tr, seed)
		group := mustRunGroup(cfg, jobs, newScheds(seed)...)
		out := cellOut{
			open:   make([]metrics.OpenLoop, len(group)),
			carbon: make([]float64, len(group)),
		}
		for k, res := range group {
			out.open[k] = metrics.SummarizeOpenLoop(arr, res.JCTs, cps)
			out.carbon[k] = res.CarbonGrams
		}
		runs[i] = out
	})

	aggs := make([]overloadAgg, len(overloadShapes)*len(policyNames))
	for i, c := range cells {
		for k := range policyNames {
			aggs[c.shape*len(policyNames)+k].add(runs[i].open[k], runs[i].carbon[k])
		}
	}

	t := &result.Table{
		Name: "overload",
		Columns: []result.Column{
			{Name: "arrivals", Kind: result.KindString, Header: "arrivals", HeaderFormat: "%-9s", Format: "%-9s"},
			{Name: "scheduler", Kind: result.KindString, Header: "scheduler", HeaderFormat: " %-9s", Format: " %-9s"},
			{Name: "mean_backlog", Kind: result.KindFloat, Prec: 2, Header: "backlog", HeaderFormat: " %8s", Format: " %8.2f"},
			{Name: "peak_backlog", Kind: result.KindFloat, Prec: 1, Header: "peak", HeaderFormat: " %6s", Format: " %6.1f"},
			{Name: "p50_jct_s", Kind: result.KindFloat, Prec: 0, Header: "p50 JCT", HeaderFormat: " %8s", Format: " %8.0f"},
			{Name: "p99_jct_s", Kind: result.KindFloat, Prec: 0, Header: "p99 JCT", HeaderFormat: " %8s", Format: " %8.0f"},
			{Name: "queue_delay_s", Kind: result.KindFloat, Prec: 0, Header: "queue", HeaderFormat: " %7s", Format: " %7.0f"},
			{Name: "goodput_jobs_hr", Kind: result.KindFloat, Prec: 1, Header: "goodput/hr", HeaderFormat: " %10s", Format: " %10.1f"},
			{Name: "carbon_g", Kind: result.KindFloat, Prec: 0, Header: "carbon g", HeaderFormat: " %9s", Format: " %9.0f"},
		},
	}
	for si, sh := range overloadShapes {
		for k, pol := range policyNames {
			a := aggs[si*len(policyNames)+k]
			div := float64(a.n)
			t.Row(
				result.Str(sh.name), result.Str(pol),
				result.Float(a.sum.MeanBacklog/div), result.Float(a.sum.PeakBacklog/div),
				result.Float(a.sum.P50JCT/div), result.Float(a.sum.P99JCT/div),
				result.Float(a.sum.MeanQueueDelay/div), result.Float(a.sum.GoodputJobsPerHr/div),
				result.Float(a.carbon/div),
			)
		}
	}
	a := result.New()
	a.Textf("open-loop arrivals, DE grid, %d jobs, avg of %d trial(s):\n", n, trials)
	a.Add(t)
	a.Textf("backlog: time-weighted mean in-flight jobs; queue: mean JCT excess over the critical path\n")
	return a, nil
}

//go:build !race

package ksearch

import "testing"

// TestHotPathsAllocationFree pins the zero-allocation discipline of the
// threshold machinery's steady-state paths: Alpha's fixed-point solve,
// the Quota binary search, and the MinQuota scan are all called per
// scheduling decision (or per trace interval) by the CAP wrapper, so
// they must not allocate after construction. Compiled out under -race,
// whose instrumentation perturbs allocation counts.
func TestHotPathsAllocationFree(t *testing.T) {
	th, err := NewThresholds(100, 20, 130, 765)
	if err != nil {
		t.Fatal(err)
	}
	intensities := []float64{300, 500, 650, 400, 250, 200, 130, 765}

	var f float64
	var n int
	cases := []struct {
		name string
		fn   func()
	}{
		{"Alpha", func() { f = Alpha(100, 130, 765) }},
		{"Thresholds.Quota", func() { n = th.Quota(412) }},
		{"Thresholds.MinQuota", func() { n = th.MinQuota(intensities) }},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(200, tc.fn); avg != 0 {
			t.Errorf("%s allocates %.1f per call; hot paths must stay allocation-free", tc.name, avg)
		}
	}
	_, _ = f, n
}

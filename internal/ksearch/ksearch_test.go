package ksearch

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAlphaSolvesEquation(t *testing.T) {
	tests := []struct {
		k    int
		l, u float64
	}{
		{1, 50, 500}, {10, 50, 500}, {80, 130, 765}, {95, 12, 179}, {5, 586, 785},
	}
	for _, tt := range tests {
		a := Alpha(tt.k, tt.l, tt.u)
		if a <= 1 {
			t.Fatalf("Alpha(%d,%v,%v) = %v, want > 1", tt.k, tt.l, tt.u, a)
		}
		lhs := math.Pow(1+1/(float64(tt.k)*a), float64(tt.k))
		rhs := (tt.u - tt.l) / (tt.u * (1 - 1/a))
		if math.Abs(lhs-rhs) > 1e-6*math.Max(lhs, 1) {
			t.Fatalf("Alpha(%d,%v,%v): residual lhs=%v rhs=%v", tt.k, tt.l, tt.u, lhs, rhs)
		}
	}
}

func TestNewThresholdsValidation(t *testing.T) {
	if _, err := NewThresholds(10, 0, 100, 200); err == nil {
		t.Fatal("B=0 accepted")
	}
	if _, err := NewThresholds(10, 11, 100, 200); err == nil {
		t.Fatal("B>K accepted")
	}
	if _, err := NewThresholds(10, 2, -1, 200); err == nil {
		t.Fatal("negative L accepted")
	}
	if _, err := NewThresholds(10, 2, 300, 200); err == nil {
		t.Fatal("L>U accepted")
	}
}

func TestThresholdStructure(t *testing.T) {
	th, err := NewThresholds(100, 20, 130, 765)
	if err != nil {
		t.Fatal(err)
	}
	if len(th.Phi) != 81 {
		t.Fatalf("len(Phi) = %d, want 81", len(th.Phi))
	}
	if th.Phi[0] != 765 {
		t.Fatalf("Phi[0] = %v, want U", th.Phi[0])
	}
	// Φ_{B+1} = U/α by construction.
	if got, want := th.Phi[1], 765/th.Alpha; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Phi[1] = %v, want U/α = %v", got, want)
	}
	for i := 1; i < len(th.Phi); i++ {
		if th.Phi[i] > th.Phi[i-1] {
			t.Fatalf("Phi not non-increasing at %d: %v > %v", i, th.Phi[i], th.Phi[i-1])
		}
		if th.Phi[i] < th.L-1e-9 || th.Phi[i] > th.U+1e-9 {
			t.Fatalf("Phi[%d] = %v outside [L,U]", i, th.Phi[i])
		}
	}
}

func TestQuotaMonotoneDecreasingInCarbon(t *testing.T) {
	th, err := NewThresholds(100, 20, 130, 765)
	if err != nil {
		t.Fatal(err)
	}
	prev := th.K + 1
	for c := 0.0; c <= 900; c += 5 {
		q := th.Quota(c)
		if q < th.B || q > th.K {
			t.Fatalf("Quota(%v) = %d outside [B,K]", c, q)
		}
		if q > prev {
			t.Fatalf("Quota not non-increasing: Quota(%v)=%d after %d", c, q, prev)
		}
		prev = q
	}
}

func TestQuotaExtremes(t *testing.T) {
	th, err := NewThresholds(100, 20, 130, 765)
	if err != nil {
		t.Fatal(err)
	}
	if q := th.Quota(765); q != 20 {
		t.Fatalf("Quota(U) = %d, want B=20", q)
	}
	if q := th.Quota(1e9); q != 20 {
		t.Fatalf("Quota(huge) = %d, want B=20", q)
	}
	if q := th.Quota(0); q != 100 {
		t.Fatalf("Quota(0) = %d, want K=100", q)
	}
	// Just below the last threshold: full cluster.
	if q := th.Quota(th.Phi[len(th.Phi)-1] - 1e-6); q != 100 {
		t.Fatalf("Quota(below Φ_K) = %d, want 100", q)
	}
}

func TestDegenerateBEqualsK(t *testing.T) {
	th, err := NewThresholds(50, 50, 100, 700)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{0, 100, 400, 700, 1e6} {
		if q := th.Quota(c); q != 50 {
			t.Fatalf("Quota(%v) = %d, want 50", c, q)
		}
	}
}

func TestDegenerateFlatCarbon(t *testing.T) {
	// L = U: condition i) of §3 — no fluctuation, so CAP must act
	// carbon-agnostically (full quota below U).
	th, err := NewThresholds(50, 5, 400, 400)
	if err != nil {
		t.Fatal(err)
	}
	if q := th.Quota(399.99); q != 50 {
		t.Fatalf("Quota just below flat carbon = %d, want K", q)
	}
	if q := th.Quota(400); q != 5 {
		t.Fatalf("Quota at U = %d, want B", q)
	}
}

func TestMinQuota(t *testing.T) {
	th, err := NewThresholds(100, 20, 130, 765)
	if err != nil {
		t.Fatal(err)
	}
	if m := th.MinQuota([]float64{130, 200, 765}); m != 20 {
		t.Fatalf("MinQuota = %d, want 20", m)
	}
	if m := th.MinQuota([]float64{100, 120}); m != 100 {
		t.Fatalf("MinQuota(all low) = %d, want 100", m)
	}
	if m := th.MinQuota(nil); m != 100 {
		t.Fatalf("MinQuota(empty) = %d, want K", m)
	}
}

func TestQuickQuotaWithinBoundsAndMonotone(t *testing.T) {
	f := func(rawK, rawB uint8, rawL, rawU float64, c1, c2 float64) bool {
		k := int(rawK%100) + 1
		b := int(rawB)%k + 1
		l := 1 + math.Mod(math.Abs(rawL), 500)
		u := l + math.Mod(math.Abs(rawU), 500)
		th, err := NewThresholds(k, b, l, u)
		if err != nil {
			return false
		}
		x1 := math.Mod(math.Abs(c1), 1200)
		x2 := math.Mod(math.Abs(c2), 1200)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		q1, q2 := th.Quota(x1), th.Quota(x2)
		return q1 >= b && q1 <= k && q2 >= b && q2 <= k && q1 >= q2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAlphaAtLeastOne(t *testing.T) {
	f := func(rawK uint8, rawL, rawU float64) bool {
		k := int(rawK%120) + 1
		l := 1 + math.Mod(math.Abs(rawL), 800)
		u := l + 1e-6 + math.Mod(math.Abs(rawU), 800)
		a := Alpha(k, l, u)
		return a > 1 && !math.IsNaN(a) && !math.IsInf(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNewThresholds(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewThresholds(100, 20, 130, 765); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuota(b *testing.B) {
	th, err := NewThresholds(100, 20, 130, 765)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		th.Quota(float64(i % 900))
	}
}

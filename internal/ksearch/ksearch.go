// Package ksearch implements the k-search threshold machinery behind CAP
// (§4.2). CAP frames carbon-aware resource provisioning as repeated rounds
// of (K−B)-search over time-varying carbon intensities: the threshold set
//
//	Φ_B     = U
//	Φ_{i+B} = U − (U − U/α)·[1 + 1/((K−B)α)]^{i−1},  i ∈ {1, …, K−B}
//
// where α solves [1 + 1/((K−B)α)]^{K−B} = (U−L) / (U·(1−1/α)), maps the
// current carbon intensity to a machine quota: cheap periods unlock all K
// machines, expensive periods throttle the cluster down to the floor B that
// guarantees continuous progress.
package ksearch

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by NewThresholds.
var (
	ErrBadBounds = errors.New("ksearch: require 0 < L ≤ U")
	ErrBadQuota  = errors.New("ksearch: require 1 ≤ B ≤ K")
)

// Thresholds holds the solved threshold set for a (K, B, L, U) instance.
// The zero value is unusable; construct with NewThresholds.
type Thresholds struct {
	K, B  int
	L, U  float64
	Alpha float64
	// Phi[i] is Φ_{B+i} for i in 0..K−B; Phi[0] = U and the sequence is
	// non-increasing, approaching L.
	Phi []float64
}

// Alpha solves [1 + 1/(kα)]^k = (U−L)/(U(1−1/α)) for α > 1 by bisection.
// k must be ≥ 1 and 0 < L < U. The left side is continuous and the
// difference LHS−RHS is strictly increasing on (1, ∞), going from −∞ to
// 1 − (U−L)/U > 0, so a unique root exists.
//
//pcaps:hotpath
func Alpha(k int, l, u float64) float64 {
	lhs := func(a float64) float64 {
		return math.Pow(1+1/(float64(k)*a), float64(k))
	}
	rhs := func(a float64) float64 {
		return (u - l) / (u * (1 - 1/a))
	}
	lo, hi := 1+1e-12, 2.0
	for lhs(hi)-rhs(hi) < 0 && hi < 1e12 {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if lhs(mid)-rhs(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// NewThresholds computes the CAP threshold set for a cluster of K machines
// with minimum quota B and forecast carbon bounds L ≤ U.
//
// Degenerate instances are handled as the paper's design implies: when
// B = K the quota is pinned to K; when L = U there is nothing to hedge
// against and every threshold equals U (CAP acts carbon-agnostically).
func NewThresholds(k, b int, l, u float64) (*Thresholds, error) {
	if !(l > 0) || !(u >= l) || math.IsInf(u, 1) || math.IsNaN(l) || math.IsNaN(u) {
		return nil, fmt.Errorf("%w: L=%v U=%v", ErrBadBounds, l, u)
	}
	if b < 1 || b > k {
		return nil, fmt.Errorf("%w: K=%d B=%d", ErrBadQuota, k, b)
	}
	t := &Thresholds{K: k, B: b, L: l, U: u}
	n := k - b
	t.Phi = make([]float64, n+1)
	t.Phi[0] = u
	if n == 0 {
		t.Alpha = 1
		return t, nil
	}
	if u-l < 1e-12*u {
		t.Alpha = 1
		for i := range t.Phi {
			t.Phi[i] = u
		}
		return t, nil
	}
	t.Alpha = Alpha(n, l, u)
	step := 1 + 1/(float64(n)*t.Alpha)
	pow := 1.0
	for i := 1; i <= n; i++ {
		t.Phi[i] = u - (u-u/t.Alpha)*pow
		pow *= step
	}
	// Guard against floating-point drift: clamp into [L, U] and enforce
	// monotonicity so Quota is well defined.
	for i := 1; i <= n; i++ {
		if t.Phi[i] < l {
			t.Phi[i] = l
		}
		if t.Phi[i] > t.Phi[i-1] {
			t.Phi[i] = t.Phi[i-1]
		}
	}
	return t, nil
}

// Quota returns the resource quota r(t) for carbon intensity c: the index
// (in machines) of the largest threshold ≤ c, i.e. the paper's
// r(t) ← argmax_{i} Φ_i : Φ_i ≤ c(t). Because Φ decreases from U toward L
// as the index grows, high carbon maps to the floor B and carbon below
// every threshold unlocks all K machines.
//
//pcaps:hotpath
func (t *Thresholds) Quota(c float64) int {
	// Phi[i] = Φ_{B+i} is non-increasing in i; find the smallest i with
	// Φ_{B+i} ≤ c. Binary search over the reversed ordering.
	lo, hi := 0, len(t.Phi) // search window [lo, hi)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.Phi[mid] <= c {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(t.Phi) {
		return t.K // c below every threshold: all machines available
	}
	return t.B + lo
}

// MinQuota returns M(B, c), the minimum quota CAP would set over the trace
// values supplied — the quantity that drives CAP's carbon stretch factor
// (Theorem 4.5).
//
//pcaps:hotpath
func (t *Thresholds) MinQuota(intensities []float64) int {
	m := t.K
	for _, c := range intensities {
		if q := t.Quota(c); q < m {
			m = q
		}
	}
	return m
}

// Package dag models precedence-constrained data processing jobs.
//
// A Job is a directed acyclic graph whose nodes are Stages. Following the
// Spark model used by the paper (§2.2), each stage encapsulates a set of
// tasks that are parallelizable over partitions of input data, and an edge
// u → v means stage v cannot start until stage u has completed. The package
// provides construction, validation, topological utilities, and the
// critical-path computations the schedulers rely on.
package dag

import (
	"errors"
	"fmt"
	"sort"
)

// Stage is one node of a job DAG: a set of identical, independent tasks
// that may run in parallel once every parent stage has finished.
type Stage struct {
	// ID is the stage's index within its job. Stage IDs are dense:
	// a job with n stages uses IDs 0..n-1.
	ID int
	// Name is an optional human-readable label ("map", "shuffle-3", ...).
	Name string
	// NumTasks is the number of tasks in the stage. Must be ≥ 1.
	NumTasks int
	// TaskDuration is the mean duration of one task in seconds of
	// experiment time on one executor. Must be > 0.
	TaskDuration float64
	// Parents and Children are stage IDs of direct predecessors and
	// successors. They are kept sorted and deduplicated by Validate.
	Parents  []int
	Children []int
}

// Work returns the stage's total work in executor-seconds.
func (s *Stage) Work() float64 { return float64(s.NumTasks) * s.TaskDuration }

// Job is a directed acyclic graph of stages plus arrival metadata.
type Job struct {
	// ID uniquely identifies the job within an experiment.
	ID int
	// Name is an optional label ("tpch-q17-10g", "alibaba-774", ...).
	Name string
	// Stages holds the job's stages indexed by Stage.ID.
	Stages []*Stage
	// Arrival is the job's submission time in seconds of experiment time.
	Arrival float64
	// Class optionally names the workload class the job was drawn from
	// (heterogeneous batches, internal/arrivals); "" for homogeneous
	// batches.
	Class string
}

// Errors returned by Validate.
var (
	ErrEmptyJob      = errors.New("dag: job has no stages")
	ErrCyclic        = errors.New("dag: job graph contains a cycle")
	ErrBadStageID    = errors.New("dag: stage IDs must be dense 0..n-1")
	ErrBadEdge       = errors.New("dag: edge references unknown stage")
	ErrBadTasks      = errors.New("dag: stage must have at least one task")
	ErrBadDuration   = errors.New("dag: task duration must be positive")
	ErrAsymmetricDAG = errors.New("dag: parent/child lists are inconsistent")
)

// Validate checks structural invariants: dense IDs, positive task counts
// and durations, edges referencing valid stages, parent/child symmetry,
// and acyclicity. It also normalizes (sorts, dedups) edge lists in place.
func (j *Job) Validate() error {
	if len(j.Stages) == 0 {
		return ErrEmptyJob
	}
	n := len(j.Stages)
	for i, s := range j.Stages {
		if s == nil || s.ID != i {
			return fmt.Errorf("%w: stage %d", ErrBadStageID, i)
		}
		if s.NumTasks < 1 {
			return fmt.Errorf("%w: stage %d", ErrBadTasks, i)
		}
		if s.TaskDuration <= 0 {
			return fmt.Errorf("%w: stage %d", ErrBadDuration, i)
		}
		s.Parents = normalize(s.Parents)
		s.Children = normalize(s.Children)
		for _, p := range s.Parents {
			if p < 0 || p >= n {
				return fmt.Errorf("%w: stage %d parent %d", ErrBadEdge, i, p)
			}
		}
		for _, c := range s.Children {
			if c < 0 || c >= n {
				return fmt.Errorf("%w: stage %d child %d", ErrBadEdge, i, c)
			}
		}
	}
	for _, s := range j.Stages {
		for _, p := range s.Parents {
			if !contains(j.Stages[p].Children, s.ID) {
				return fmt.Errorf("%w: %d→%d", ErrAsymmetricDAG, p, s.ID)
			}
		}
		for _, c := range s.Children {
			if !contains(j.Stages[c].Parents, s.ID) {
				return fmt.Errorf("%w: %d→%d", ErrAsymmetricDAG, s.ID, c)
			}
		}
	}
	if _, err := j.TopoOrder(); err != nil {
		return err
	}
	return nil
}

func normalize(ids []int) []int {
	if len(ids) == 0 {
		return ids
	}
	sort.Ints(ids)
	out := ids[:1]
	for _, v := range ids[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func contains(ids []int, v int) bool {
	for _, x := range ids {
		if x == v {
			return true
		}
	}
	return false
}

// TopoOrder returns the stage IDs in a topological order (Kahn's
// algorithm, smallest-ID-first for determinism) or ErrCyclic.
func (j *Job) TopoOrder() ([]int, error) {
	n := len(j.Stages)
	indeg := make([]int, n)
	for _, s := range j.Stages {
		indeg[s.ID] = len(s.Parents)
	}
	// ready is kept sorted ascending; n is small (tens of stages) so a
	// linear-insertion "priority queue" is simpler and fast enough.
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, c := range j.Stages[v].Children {
			indeg[c]--
			if indeg[c] == 0 {
				ready = insertSorted(ready, c)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCyclic
	}
	return order, nil
}

func insertSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

// Roots returns the IDs of stages with no parents.
func (j *Job) Roots() []int {
	var out []int
	for _, s := range j.Stages {
		if len(s.Parents) == 0 {
			out = append(out, s.ID)
		}
	}
	return out
}

// Leaves returns the IDs of stages with no children.
func (j *Job) Leaves() []int {
	var out []int
	for _, s := range j.Stages {
		if len(s.Children) == 0 {
			out = append(out, s.ID)
		}
	}
	return out
}

// TotalWork returns the job's total work in executor-seconds, i.e. the
// optimal single-machine makespan OPT₁(J) used by the paper's analysis.
func (j *Job) TotalWork() float64 {
	var w float64
	for _, s := range j.Stages {
		w += s.Work()
	}
	return w
}

// CriticalPathDown returns, for every stage, the length in seconds of the
// longest chain of serial work starting at that stage and ending at a leaf,
// inclusive of the stage itself. A stage's serial contribution is
// TaskDuration (tasks are parallelizable, so a stage contributes one task
// "wave" under unlimited executors). This is the downstream bottleneck
// pressure PCAPS-style schedulers prioritize.
func (j *Job) CriticalPathDown() []float64 {
	order, err := j.TopoOrder()
	if err != nil {
		return nil
	}
	cp := make([]float64, len(j.Stages))
	for i := len(order) - 1; i >= 0; i-- {
		s := j.Stages[order[i]]
		var best float64
		for _, c := range s.Children {
			if cp[c] > best {
				best = cp[c]
			}
		}
		cp[s.ID] = s.TaskDuration + best
	}
	return cp
}

// CriticalPathWorkDown is like CriticalPathDown but measures total
// *work* (NumTasks × TaskDuration) along the heaviest downstream chain,
// a proxy for how much cluster time is blocked behind each stage.
func (j *Job) CriticalPathWorkDown() []float64 {
	order, err := j.TopoOrder()
	if err != nil {
		return nil
	}
	cp := make([]float64, len(j.Stages))
	for i := len(order) - 1; i >= 0; i-- {
		s := j.Stages[order[i]]
		var best float64
		for _, c := range s.Children {
			if cp[c] > best {
				best = cp[c]
			}
		}
		cp[s.ID] = s.Work() + best
	}
	return cp
}

// CriticalPathLength returns the length in seconds of the job's longest
// chain (the makespan lower bound under unlimited executors).
func (j *Job) CriticalPathLength() float64 {
	var best float64
	for _, v := range j.CriticalPathDown() {
		if v > best {
			best = v
		}
	}
	return best
}

// Descendants returns the set of stages reachable from stage id
// (excluding id itself), as a boolean slice indexed by stage ID.
func (j *Job) Descendants(id int) []bool {
	seen := make([]bool, len(j.Stages))
	stack := append([]int(nil), j.Stages[id].Children...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		stack = append(stack, j.Stages[v].Children...)
	}
	return seen
}

// NumDescendants returns the number of stages reachable from stage id.
func (j *Job) NumDescendants(id int) int {
	n := 0
	for _, b := range j.Descendants(id) {
		if b {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the job. Runtime layers mutate scheduling
// state but never the DAG itself; Clone exists so that generators can hand
// the same template to multiple experiments safely.
func (j *Job) Clone() *Job {
	c := &Job{ID: j.ID, Name: j.Name, Arrival: j.Arrival, Class: j.Class, Stages: make([]*Stage, len(j.Stages))}
	for i, s := range j.Stages {
		ns := *s
		ns.Parents = append([]int(nil), s.Parents...)
		ns.Children = append([]int(nil), s.Children...)
		c.Stages[i] = &ns
	}
	return c
}

// Builder incrementally assembles a valid Job. It exists so generators and
// tests can declare DAG shape without hand-maintaining symmetric edge lists.
type Builder struct {
	job *Job
}

// NewBuilder returns a Builder for a job with the given ID and name.
func NewBuilder(id int, name string) *Builder {
	return &Builder{job: &Job{ID: id, Name: name}}
}

// Stage appends a stage and returns its ID.
func (b *Builder) Stage(name string, numTasks int, taskDuration float64) int {
	id := len(b.job.Stages)
	b.job.Stages = append(b.job.Stages, &Stage{
		ID: id, Name: name, NumTasks: numTasks, TaskDuration: taskDuration,
	})
	return id
}

// Edge adds a precedence edge parent → child.
func (b *Builder) Edge(parent, child int) *Builder {
	b.job.Stages[parent].Children = append(b.job.Stages[parent].Children, child)
	b.job.Stages[child].Parents = append(b.job.Stages[child].Parents, parent)
	return b
}

// Chain adds edges forming a linear chain through the given stage IDs.
func (b *Builder) Chain(ids ...int) *Builder {
	for i := 1; i < len(ids); i++ {
		b.Edge(ids[i-1], ids[i])
	}
	return b
}

// Build validates and returns the job.
func (b *Builder) Build() (*Job, error) {
	if err := b.job.Validate(); err != nil {
		return nil, err
	}
	return b.job, nil
}

// MustBuild is Build that panics on error; for tests and literals.
func (b *Builder) MustBuild() *Job {
	j, err := b.Build()
	if err != nil {
		panic(err)
	}
	return j
}

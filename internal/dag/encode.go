package dag

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the job as a Graphviz digraph: one node per stage
// labeled "name (tasks×duration)", one edge per precedence constraint.
// Critical-path stages are highlighted, mirroring the bottleneck framing
// of the paper's figures.
func (j *Job) WriteDOT(w io.Writer) error {
	cp := j.CriticalPathDown()
	maxCP := 0.0
	for _, v := range cp {
		if v > maxCP {
			maxCP = v
		}
	}
	// The critical chain: walk from the max-cp root, always following
	// the child with the largest remaining critical path.
	onChain := make([]bool, len(j.Stages))
	cur := -1
	for _, r := range j.Roots() {
		if cur < 0 || cp[r] > cp[cur] {
			cur = r
		}
	}
	for cur >= 0 {
		onChain[cur] = true
		next := -1
		for _, c := range j.Stages[cur].Children {
			if next < 0 || cp[c] > cp[next] {
				next = c
			}
		}
		cur = next
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box];\n", j.Name)
	for _, s := range j.Stages {
		label := s.Name
		if label == "" {
			label = fmt.Sprintf("s%d", s.ID)
		}
		attrs := ""
		if onChain[s.ID] {
			attrs = ", style=filled, fillcolor=lightcoral"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%d×%.1fs\"%s];\n", s.ID, label, s.NumTasks, s.TaskDuration, attrs)
	}
	for _, s := range j.Stages {
		for _, c := range s.Children {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", s.ID, c)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// jobJSON is the serialized form of a Job. Only parent edges are stored;
// children are reconstructed on load.
type jobJSON struct {
	ID      int         `json:"id"`
	Name    string      `json:"name"`
	Arrival float64     `json:"arrival_sec"`
	Class   string      `json:"class,omitempty"`
	Stages  []stageJSON `json:"stages"`
}

type stageJSON struct {
	Name         string  `json:"name,omitempty"`
	NumTasks     int     `json:"num_tasks"`
	TaskDuration float64 `json:"task_duration_sec"`
	Parents      []int   `json:"parents,omitempty"`
}

// MarshalJSON implements json.Marshaler for Job.
func (j *Job) MarshalJSON() ([]byte, error) {
	out := jobJSON{ID: j.ID, Name: j.Name, Arrival: j.Arrival, Class: j.Class}
	for _, s := range j.Stages {
		parents := append([]int(nil), s.Parents...)
		sort.Ints(parents)
		out.Stages = append(out.Stages, stageJSON{
			Name: s.Name, NumTasks: s.NumTasks, TaskDuration: s.TaskDuration, Parents: parents,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler for Job, validating the
// decoded graph.
func (j *Job) UnmarshalJSON(data []byte) error {
	var in jobJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	decoded := Job{ID: in.ID, Name: in.Name, Arrival: in.Arrival, Class: in.Class}
	for i, s := range in.Stages {
		decoded.Stages = append(decoded.Stages, &Stage{
			ID: i, Name: s.Name, NumTasks: s.NumTasks, TaskDuration: s.TaskDuration,
			Parents: append([]int(nil), s.Parents...),
		})
	}
	// Rebuild child edges from parent lists.
	for _, s := range decoded.Stages {
		for _, p := range s.Parents {
			if p < 0 || p >= len(decoded.Stages) {
				return fmt.Errorf("%w: stage %d parent %d", ErrBadEdge, s.ID, p)
			}
			decoded.Stages[p].Children = append(decoded.Stages[p].Children, s.ID)
		}
	}
	if err := decoded.Validate(); err != nil {
		return err
	}
	*j = decoded
	return nil
}

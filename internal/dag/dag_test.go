package dag

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond returns the classic 4-stage diamond DAG: 0 → {1,2} → 3.
func diamond(t testing.TB) *Job {
	t.Helper()
	b := NewBuilder(0, "diamond")
	s0 := b.Stage("src", 4, 10)
	s1 := b.Stage("left", 2, 20)
	s2 := b.Stage("right", 8, 5)
	s3 := b.Stage("sink", 1, 30)
	b.Edge(s0, s1).Edge(s0, s2).Edge(s1, s3).Edge(s2, s3)
	return b.MustBuild()
}

func TestValidateDiamond(t *testing.T) {
	j := diamond(t)
	if err := j.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		job  *Job
		want error
	}{
		{"empty", &Job{}, ErrEmptyJob},
		{"zero tasks", &Job{Stages: []*Stage{{ID: 0, NumTasks: 0, TaskDuration: 1}}}, ErrBadTasks},
		{"zero duration", &Job{Stages: []*Stage{{ID: 0, NumTasks: 1, TaskDuration: 0}}}, ErrBadDuration},
		{"negative duration", &Job{Stages: []*Stage{{ID: 0, NumTasks: 1, TaskDuration: -2}}}, ErrBadDuration},
		{"sparse ids", &Job{Stages: []*Stage{{ID: 1, NumTasks: 1, TaskDuration: 1}}}, ErrBadStageID},
		{
			"edge out of range",
			&Job{Stages: []*Stage{{ID: 0, NumTasks: 1, TaskDuration: 1, Children: []int{5}}}},
			ErrBadEdge,
		},
		{
			"asymmetric edge",
			&Job{Stages: []*Stage{
				{ID: 0, NumTasks: 1, TaskDuration: 1, Children: []int{1}},
				{ID: 1, NumTasks: 1, TaskDuration: 1},
			}},
			ErrAsymmetricDAG,
		},
		{
			"self cycle",
			&Job{Stages: []*Stage{
				{ID: 0, NumTasks: 1, TaskDuration: 1, Parents: []int{0}, Children: []int{0}},
			}},
			ErrCyclic,
		},
		{
			"two cycle",
			&Job{Stages: []*Stage{
				{ID: 0, NumTasks: 1, TaskDuration: 1, Parents: []int{1}, Children: []int{1}},
				{ID: 1, NumTasks: 1, TaskDuration: 1, Parents: []int{0}, Children: []int{0}},
			}},
			ErrCyclic,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.job.Validate(); !errors.Is(err, tt.want) {
				t.Fatalf("Validate = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	j := diamond(t)
	order, err := j.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, s := range j.Stages {
		for _, c := range s.Children {
			if pos[s.ID] >= pos[c] {
				t.Fatalf("topo order violates edge %d→%d: %v", s.ID, c, order)
			}
		}
	}
	if order[0] != 0 || order[len(order)-1] != 3 {
		t.Fatalf("unexpected order %v", order)
	}
}

func TestRootsLeaves(t *testing.T) {
	j := diamond(t)
	if got := j.Roots(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Roots = %v", got)
	}
	if got := j.Leaves(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Leaves = %v", got)
	}
}

func TestTotalWork(t *testing.T) {
	j := diamond(t)
	want := 4*10.0 + 2*20.0 + 8*5.0 + 1*30.0
	if got := j.TotalWork(); got != want {
		t.Fatalf("TotalWork = %v, want %v", got, want)
	}
}

func TestCriticalPathDown(t *testing.T) {
	j := diamond(t)
	cp := j.CriticalPathDown()
	// Stage 3: 30. Stage 1: 20+30=50. Stage 2: 5+30=35. Stage 0: 10+50=60.
	want := []float64{60, 50, 35, 30}
	for i, w := range want {
		if cp[i] != w {
			t.Fatalf("cp[%d] = %v, want %v (all %v)", i, cp[i], w, cp)
		}
	}
	if got := j.CriticalPathLength(); got != 60 {
		t.Fatalf("CriticalPathLength = %v, want 60", got)
	}
}

func TestCriticalPathWorkDown(t *testing.T) {
	j := diamond(t)
	cp := j.CriticalPathWorkDown()
	// Stage 3: 30. Stage 1: 40+30=70. Stage 2: 40+30=70. Stage 0: 40+70=110.
	want := []float64{110, 70, 70, 30}
	for i, w := range want {
		if cp[i] != w {
			t.Fatalf("cpw[%d] = %v, want %v (all %v)", i, cp[i], w, cp)
		}
	}
}

func TestDescendants(t *testing.T) {
	j := diamond(t)
	d := j.Descendants(0)
	if d[0] || !d[1] || !d[2] || !d[3] {
		t.Fatalf("Descendants(0) = %v", d)
	}
	if n := j.NumDescendants(0); n != 3 {
		t.Fatalf("NumDescendants(0) = %d", n)
	}
	if n := j.NumDescendants(3); n != 0 {
		t.Fatalf("NumDescendants(3) = %d", n)
	}
}

func TestCloneIsDeep(t *testing.T) {
	j := diamond(t)
	c := j.Clone()
	c.Stages[0].NumTasks = 99
	c.Stages[0].Children[0] = 3
	if j.Stages[0].NumTasks == 99 {
		t.Fatal("Clone shares stage structs")
	}
	if j.Stages[0].Children[0] == 3 {
		t.Fatal("Clone shares edge slices")
	}
}

func TestChainBuilder(t *testing.T) {
	b := NewBuilder(7, "chain")
	ids := []int{b.Stage("a", 1, 1), b.Stage("b", 1, 1), b.Stage("c", 1, 1)}
	b.Chain(ids...)
	j := b.MustBuild()
	order, err := j.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if order[i] != id {
			t.Fatalf("order = %v", order)
		}
	}
	if got := j.CriticalPathLength(); got != 3 {
		t.Fatalf("chain critical path = %v", got)
	}
}

// randomJob builds a random layered DAG; edges only go from lower to higher
// IDs, so it is acyclic by construction.
func randomJob(r *rand.Rand) *Job {
	n := 1 + r.Intn(20)
	b := NewBuilder(0, "rand")
	for i := 0; i < n; i++ {
		b.Stage("", 1+r.Intn(10), 0.5+r.Float64()*10)
	}
	for c := 1; c < n; c++ {
		for p := 0; p < c; p++ {
			if r.Float64() < 0.25 {
				b.Edge(p, c)
			}
		}
	}
	return b.MustBuild()
}

func TestQuickTopoOrderRespectsEdges(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		j := randomJob(rand.New(rand.NewSource(seed)))
		order, err := j.TopoOrder()
		if err != nil || len(order) != len(j.Stages) {
			return false
		}
		pos := make([]int, len(j.Stages))
		for i, id := range order {
			pos[id] = i
		}
		for _, s := range j.Stages {
			for _, c := range s.Children {
				if pos[s.ID] >= pos[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCriticalPathBounds(t *testing.T) {
	f := func(seed int64) bool {
		j := randomJob(rand.New(rand.NewSource(seed)))
		cp := j.CriticalPathDown()
		// Critical path of each stage is at least its own duration and at
		// least every child's critical path.
		for _, s := range j.Stages {
			if cp[s.ID] < s.TaskDuration {
				return false
			}
			for _, c := range s.Children {
				if cp[s.ID] < cp[c] {
					return false
				}
			}
		}
		// Global critical path never exceeds total work.
		return j.CriticalPathLength() <= j.TotalWork()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickValidateAfterClone(t *testing.T) {
	f := func(seed int64) bool {
		j := randomJob(rand.New(rand.NewSource(seed)))
		c := j.Clone()
		return c.Validate() == nil && c.TotalWork() == j.TotalWork()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeDedups(t *testing.T) {
	j := &Job{Stages: []*Stage{
		{ID: 0, NumTasks: 1, TaskDuration: 1, Children: []int{1, 1, 1}},
		{ID: 1, NumTasks: 1, TaskDuration: 1, Parents: []int{0, 0}},
	}}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(j.Stages[0].Children) != 1 || len(j.Stages[1].Parents) != 1 {
		t.Fatalf("edges not deduped: %v %v", j.Stages[0].Children, j.Stages[1].Parents)
	}
}

func BenchmarkTopoOrder(b *testing.B) {
	j := randomJob(rand.New(rand.NewSource(42)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := j.TopoOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCriticalPath(b *testing.B) {
	j := randomJob(rand.New(rand.NewSource(42)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.CriticalPathDown()
	}
}

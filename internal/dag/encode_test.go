package dag

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteDOT(t *testing.T) {
	j := diamond(t)
	var b strings.Builder
	if err := j.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	dot := b.String()
	for _, needle := range []string{
		"digraph", "rankdir=LR", "n0 -> n1", "n0 -> n2", "n1 -> n3", "n2 -> n3",
		"4×10.0s", "lightcoral",
	} {
		if !strings.Contains(dot, needle) {
			t.Fatalf("DOT missing %q:\n%s", needle, dot)
		}
	}
	// The diamond's critical chain is 0 → 1 → 3 (left branch is longer):
	// exactly three highlighted nodes.
	if got := strings.Count(dot, "lightcoral"); got != 3 {
		t.Fatalf("highlighted %d nodes, want 3:\n%s", got, dot)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	j := diamond(t)
	j.Arrival = 123.5
	data, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var got Job
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != j.ID || got.Name != j.Name || got.Arrival != j.Arrival {
		t.Fatalf("meta = %+v", got)
	}
	if len(got.Stages) != len(j.Stages) || got.TotalWork() != j.TotalWork() {
		t.Fatalf("structure lost: %d stages, %v work", len(got.Stages), got.TotalWork())
	}
	order1, _ := j.TopoOrder()
	order2, _ := got.TopoOrder()
	for i := range order1 {
		if order1[i] != order2[i] {
			t.Fatalf("topo order changed: %v vs %v", order1, order2)
		}
	}
}

func TestUnmarshalRejectsBadGraphs(t *testing.T) {
	cases := []string{
		`{"id":0,"stages":[]}`,
		`{"id":0,"stages":[{"num_tasks":0,"task_duration_sec":1}]}`,
		`{"id":0,"stages":[{"num_tasks":1,"task_duration_sec":1,"parents":[7]}]}`,
		`not json`,
	}
	for _, raw := range cases {
		var j Job
		if err := json.Unmarshal([]byte(raw), &j); err == nil {
			t.Fatalf("accepted %q", raw)
		}
	}
}

func TestQuickJSONRoundTripPreservesWork(t *testing.T) {
	f := func(seed int64) bool {
		j := randomJob(rand.New(rand.NewSource(seed)))
		data, err := json.Marshal(j)
		if err != nil {
			return false
		}
		var got Job
		if err := json.Unmarshal(data, &got); err != nil {
			return false
		}
		return got.Validate() == nil &&
			got.TotalWork() == j.TotalWork() &&
			got.CriticalPathLength() == j.CriticalPathLength()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

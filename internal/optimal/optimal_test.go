package optimal

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pcaps/internal/dag"
)

// unitStage builds jobs whose stages all have NumTasks = 1.
func toyJob(t testing.TB) *dag.Job {
	t.Helper()
	// 0(2) → 1(1), 0 → 2(3), {1,2} → 3(1)
	b := dag.NewBuilder(0, "toy")
	s0 := b.Stage("", 1, 2)
	s1 := b.Stage("", 1, 1)
	s2 := b.Stage("", 1, 3)
	s3 := b.Stage("", 1, 1)
	b.Edge(s0, s1).Edge(s0, s2).Edge(s1, s3).Edge(s2, s3)
	return b.MustBuild()
}

func flat(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestTOptToy(t *testing.T) {
	// Critical path: 2 + 3 + 1 = 6 slots; K=2 suffices to hit it.
	inst := Instance{Job: toyJob(t), K: 2, Carbon: flat(20, 100)}
	s, err := TOpt(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 6 {
		t.Fatalf("T-OPT makespan = %d, want 6", s.Makespan())
	}
	if err := Validate(inst, s); err != nil {
		t.Fatal(err)
	}
}

func TestTOptSingleMachine(t *testing.T) {
	// One machine: makespan equals total work (7 slots).
	inst := Instance{Job: toyJob(t), K: 1, Carbon: flat(20, 100)}
	s, err := TOpt(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 7 {
		t.Fatalf("K=1 makespan = %d, want 7", s.Makespan())
	}
	if err := Validate(inst, s); err != nil {
		t.Fatal(err)
	}
}

func TestCOptDefersToCheapSlots(t *testing.T) {
	// Carbon: expensive first 6 slots, cheap afterwards. With a loose
	// deadline C-OPT shifts work into the cheap region; with a tight
	// deadline it must pay the expensive slots.
	carbon := append(flat(6, 500), flat(14, 50)...)
	j := toyJob(t)
	tight := Instance{Job: j, K: 2, Carbon: carbon, Deadline: 6}
	st, err := COpt(tight)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(tight, st); err != nil {
		t.Fatal(err)
	}
	loose := Instance{Job: j, K: 2, Carbon: carbon, Deadline: 13}
	sl, err := COpt(loose)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(loose, sl); err != nil {
		t.Fatal(err)
	}
	ct, cl := st.CarbonCost(carbon), sl.CarbonCost(carbon)
	if cl >= ct {
		t.Fatalf("loose deadline carbon %v not below tight %v", cl, ct)
	}
	// 7 work slots all in the cheap region: 7·50.
	if cl != 7*50 {
		t.Fatalf("loose C-OPT carbon = %v, want 350", cl)
	}
	if sl.Makespan() > 13 {
		t.Fatalf("C-OPT exceeded deadline: %d", sl.Makespan())
	}
}

func TestCOptInfeasibleDeadline(t *testing.T) {
	inst := Instance{Job: toyJob(t), K: 2, Carbon: flat(20, 100), Deadline: 5}
	if _, err := COpt(inst); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestCOptMatchesTOptCostOnFlatCarbon(t *testing.T) {
	// On flat carbon every complete schedule costs work·c; C-OPT's cost
	// must equal that and it must still meet the deadline.
	inst := Instance{Job: toyJob(t), K: 2, Carbon: flat(20, 100), Deadline: 10}
	s, err := COpt(inst)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CarbonCost(inst.Carbon); got != 700 {
		t.Fatalf("flat carbon cost = %v, want 700", got)
	}
}

func TestListScheduleFeasible(t *testing.T) {
	inst := Instance{Job: toyJob(t), K: 2, Carbon: flat(20, 100)}
	s, err := ListSchedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(inst, s); err != nil {
		t.Fatal(err)
	}
	topt, err := TOpt(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() < topt.Makespan() {
		t.Fatalf("list schedule (%d) beat T-OPT (%d)", s.Makespan(), topt.Makespan())
	}
}

func TestValidationErrors(t *testing.T) {
	inst := Instance{Job: toyJob(t), K: 2, Carbon: flat(20, 100)}
	// Capacity violation.
	bad := &Schedule{Slots: [][]int{{0, 1, 2}}}
	if err := Validate(inst, bad); err == nil {
		t.Fatal("capacity violation accepted")
	}
	// Precedence violation: stage 1 before 0 completes.
	bad = &Schedule{Slots: [][]int{{0, 1}}}
	if err := Validate(inst, bad); err == nil {
		t.Fatal("precedence violation accepted")
	}
	// Incomplete schedule.
	bad = &Schedule{Slots: [][]int{{0}}}
	if err := Validate(inst, bad); err == nil {
		t.Fatal("incomplete schedule accepted")
	}
}

func TestRejectsMultiTaskStages(t *testing.T) {
	b := dag.NewBuilder(0, "wide")
	b.Stage("", 4, 1)
	inst := Instance{Job: b.MustBuild(), K: 2, Carbon: flat(5, 100)}
	if _, err := TOpt(inst); !errors.Is(err, ErrBadJob) {
		t.Fatalf("err = %v, want ErrBadJob", err)
	}
}

func TestRejectsHugeInstances(t *testing.T) {
	b := dag.NewBuilder(0, "huge")
	for i := 0; i < 16; i++ {
		b.Stage("", 1, 9)
	}
	inst := Instance{Job: b.MustBuild(), K: 2, Carbon: flat(5, 100)}
	if _, err := TOpt(inst); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

// randomUnitJob builds a small random DAG with unit-task stages.
func randomUnitJob(r *rand.Rand) *dag.Job {
	n := 2 + r.Intn(5)
	b := dag.NewBuilder(0, "rand")
	for i := 0; i < n; i++ {
		b.Stage("", 1, float64(1+r.Intn(3)))
	}
	for c := 1; c < n; c++ {
		for p := 0; p < c; p++ {
			if r.Float64() < 0.3 {
				b.Edge(p, c)
			}
		}
	}
	return b.MustBuild()
}

func TestQuickTOptBounds(t *testing.T) {
	// T-OPT lies between the critical path and total work, and beats or
	// ties list scheduling.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		j := randomUnitJob(r)
		k := 1 + r.Intn(3)
		inst := Instance{Job: j, K: k, Carbon: flat(40, 100)}
		topt, err := TOpt(inst)
		if err != nil {
			return false
		}
		if Validate(inst, topt) != nil {
			return false
		}
		ls, err := ListSchedule(inst)
		if err != nil {
			return false
		}
		cp := int(j.CriticalPathLength())
		work := int(j.TotalWork())
		m := topt.Makespan()
		return m >= cp && m <= work && m <= ls.Makespan()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCOptNeverWorseThanList(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		j := randomUnitJob(r)
		k := 1 + r.Intn(3)
		carbon := make([]float64, 40)
		for i := range carbon {
			carbon[i] = 50 + r.Float64()*500
		}
		ls, err := ListSchedule(Instance{Job: j, K: k, Carbon: carbon})
		if err != nil {
			return false
		}
		inst := Instance{Job: j, K: k, Carbon: carbon, Deadline: ls.Makespan() + 8}
		copt, err := COpt(inst)
		if err != nil {
			return false
		}
		if Validate(inst, copt) != nil {
			return false
		}
		return copt.CarbonCost(carbon) <= ls.CarbonCost(carbon)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Package optimal computes exact reference schedules for small DAG
// instances — the T-OPT (time-optimal) and C-OPT (carbon-optimal with a
// deadline) policies of the paper's motivating example (Fig. 1). DAG
// scheduling is NP-hard [36], so these are exponential dynamic programs
// over the stage-remaining-work state space, intended for instances of at
// most a dozen stages and a few dozen time slots; they exist to quantify
// how far heuristic and carbon-aware policies sit from the two optima.
//
// The model matches Fig. 1: time is slotted (one slot = one grid-hour),
// each stage is a unit of serial work lasting an integral number of
// slots, at most K stages run per slot, execution is preemptive at slot
// granularity, and a slot of execution costs the slot's carbon intensity.
package optimal

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pcaps/internal/dag"
)

// Instance is a small scheduling instance.
type Instance struct {
	// Job supplies the DAG. Stage durations are interpreted as integer
	// slot counts (TaskDuration rounded up); NumTasks must be 1.
	Job *dag.Job
	// K is the machine count.
	K int
	// Carbon holds the per-slot carbon intensities; scheduling beyond
	// the last slot reuses the final value.
	Carbon []float64
	// Deadline is the completion deadline in slots for C-OPT.
	Deadline int
}

// Schedule is a slot-indexed execution plan: Slots[t] lists the stage IDs
// running during slot t.
type Schedule struct {
	Slots [][]int
}

// Makespan returns the number of slots until the last stage finishes.
func (s *Schedule) Makespan() int { return len(s.Slots) }

// CarbonCost sums the carbon of every stage-slot under the instance's
// per-slot intensities.
func (s *Schedule) CarbonCost(carbon []float64) float64 {
	var total float64
	for t, ids := range s.Slots {
		total += carbonAt(carbon, t) * float64(len(ids))
	}
	return total
}

func carbonAt(carbon []float64, t int) float64 {
	if len(carbon) == 0 {
		return 0
	}
	if t >= len(carbon) {
		return carbon[len(carbon)-1]
	}
	return carbon[t]
}

// Errors returned by the solvers.
var (
	ErrTooLarge   = errors.New("optimal: instance too large for exact search")
	ErrInfeasible = errors.New("optimal: no schedule meets the deadline")
	ErrBadJob     = errors.New("optimal: stages must have exactly one task")
)

// maxStates bounds the DP state space as a safety valve.
const maxStates = 2_000_000

// durations validates and extracts integral slot durations.
func durations(inst Instance) ([]int, error) {
	if inst.Job == nil || inst.K < 1 {
		return nil, fmt.Errorf("optimal: need a job and at least one machine")
	}
	if err := inst.Job.Validate(); err != nil {
		return nil, err
	}
	durs := make([]int, len(inst.Job.Stages))
	states := 1.0
	for i, st := range inst.Job.Stages {
		if st.NumTasks != 1 {
			return nil, fmt.Errorf("%w: stage %d has %d", ErrBadJob, i, st.NumTasks)
		}
		durs[i] = int(math.Ceil(st.TaskDuration))
		if durs[i] < 1 {
			durs[i] = 1
		}
		states *= float64(durs[i] + 1)
		if states > maxStates {
			return nil, ErrTooLarge
		}
	}
	return durs, nil
}

// state is the remaining slot count per stage, encoded for memoization.
type state []uint8

func (s state) key() string { return string(s) }

// eligible returns the stages that may run: incomplete with all parents
// complete.
func eligible(j *dag.Job, s state) []int {
	var out []int
	for _, st := range j.Stages {
		if s[st.ID] == 0 {
			continue
		}
		ok := true
		for _, p := range st.Parents {
			if s[p] != 0 {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, st.ID)
		}
	}
	return out
}

// subsets enumerates the size-m subsets of ids, invoking fn for each;
// fn returning false stops the enumeration.
func subsets(ids []int, m int, fn func([]int) bool) {
	pick := make([]int, 0, m)
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(pick) == m {
			return fn(pick)
		}
		for i := start; i < len(ids); i++ {
			pick = append(pick, ids[i])
			if !rec(i + 1) {
				return false
			}
			pick = pick[:len(pick)-1]
		}
		return true
	}
	rec(0)
}

// TOpt computes a makespan-optimal schedule. The DP value f(state) — the
// minimum number of slots to drain the remaining work — is
// time-invariant, so memoization is on the state alone. Running fewer
// than min(K, |eligible|) stages in a slot can never shorten a makespan,
// so only maximal subsets are branched on.
func TOpt(inst Instance) (*Schedule, error) {
	durs, err := durations(inst)
	if err != nil {
		return nil, err
	}
	j := inst.Job
	start := make(state, len(durs))
	for i, d := range durs {
		start[i] = uint8(d)
	}
	memo := map[string]int{}
	var solve func(s state) int
	solve = func(s state) int {
		done := true
		for _, r := range s {
			if r != 0 {
				done = false
				break
			}
		}
		if done {
			return 0
		}
		if v, ok := memo[s.key()]; ok {
			return v
		}
		memo[s.key()] = 1 << 20 // guard against (impossible) cycles
		el := eligible(j, s)
		m := inst.K
		if m > len(el) {
			m = len(el)
		}
		best := 1 << 20
		subsets(el, m, func(run []int) bool {
			next := append(state(nil), s...)
			for _, id := range run {
				next[id]--
			}
			if v := 1 + solve(next); v < best {
				best = v
			}
			return true
		})
		memo[s.key()] = best
		return best
	}
	total := solve(start)
	// Reconstruct a schedule by re-walking the DP greedily.
	sched := &Schedule{}
	cur := append(state(nil), start...)
	for t := 0; t < total; t++ {
		el := eligible(j, cur)
		m := inst.K
		if m > len(el) {
			m = len(el)
		}
		var chosen []int
		subsets(el, m, func(run []int) bool {
			next := append(state(nil), cur...)
			for _, id := range run {
				next[id]--
			}
			if 1+solve(next) == solve(cur) {
				chosen = append([]int(nil), run...)
				return false
			}
			return true
		})
		sort.Ints(chosen)
		sched.Slots = append(sched.Slots, chosen)
		for _, id := range chosen {
			cur[id]--
		}
	}
	return sched, nil
}

// COpt computes a carbon-optimal schedule finishing within the deadline:
// it minimizes the summed intensity of all stage-slots, idling machines
// through expensive hours whenever the remaining slack allows. The DP is
// over (slot, state); a T-OPT residual bound prunes states that can no
// longer meet the deadline.
func COpt(inst Instance) (*Schedule, error) {
	durs, err := durations(inst)
	if err != nil {
		return nil, err
	}
	if inst.Deadline < 1 {
		return nil, fmt.Errorf("optimal: C-OPT requires a positive deadline")
	}
	j := inst.Job
	start := make(state, len(durs))
	for i, d := range durs {
		start[i] = uint8(d)
	}
	// Residual makespan lower bound via the T-OPT DP.
	residualMemo := map[string]int{}
	var residual func(s state) int
	residual = func(s state) int {
		done := true
		for _, r := range s {
			if r != 0 {
				done = false
				break
			}
		}
		if done {
			return 0
		}
		if v, ok := residualMemo[s.key()]; ok {
			return v
		}
		residualMemo[s.key()] = 1 << 20
		el := eligible(j, s)
		m := inst.K
		if m > len(el) {
			m = len(el)
		}
		best := 1 << 20
		subsets(el, m, func(run []int) bool {
			next := append(state(nil), s...)
			for _, id := range run {
				next[id]--
			}
			if v := 1 + residual(next); v < best {
				best = v
			}
			return true
		})
		residualMemo[s.key()] = best
		return best
	}
	if residual(start) > inst.Deadline {
		return nil, ErrInfeasible
	}

	type tkey struct {
		t int
		k string
	}
	memo := map[tkey]float64{}
	const inf = math.MaxFloat64 / 4
	var solve func(t int, s state) float64
	solve = func(t int, s state) float64 {
		done := true
		for _, r := range s {
			if r != 0 {
				done = false
				break
			}
		}
		if done {
			return 0
		}
		if residual(s) > inst.Deadline-t {
			return inf
		}
		key := tkey{t, s.key()}
		if v, ok := memo[key]; ok {
			return v
		}
		memo[key] = inf
		el := eligible(j, s)
		maxRun := inst.K
		if maxRun > len(el) {
			maxRun = len(el)
		}
		price := carbonAt(inst.Carbon, t)
		best := inf
		// Consider every run-count from 0 (idle the slot) to maxRun.
		for m := 0; m <= maxRun; m++ {
			subsets(el, m, func(run []int) bool {
				next := append(state(nil), s...)
				for _, id := range run {
					next[id]--
				}
				cost := price*float64(m) + solve(t+1, next)
				if cost < best {
					best = cost
				}
				return true
			})
		}
		memo[key] = best
		return best
	}
	total := solve(0, start)
	if total >= inf {
		return nil, ErrInfeasible
	}
	// Reconstruct.
	sched := &Schedule{}
	cur := append(state(nil), start...)
	for t := 0; ; t++ {
		done := true
		for _, r := range cur {
			if r != 0 {
				done = false
				break
			}
		}
		if done {
			break
		}
		el := eligible(j, cur)
		maxRun := inst.K
		if maxRun > len(el) {
			maxRun = len(el)
		}
		price := carbonAt(inst.Carbon, t)
		var chosen []int
		found := false
		for m := 0; m <= maxRun && !found; m++ {
			subsets(el, m, func(run []int) bool {
				next := append(state(nil), cur...)
				for _, id := range run {
					next[id]--
				}
				if math.Abs(price*float64(m)+solve(t+1, next)-solve(t, cur)) < 1e-9 {
					chosen = append([]int(nil), run...)
					found = true
					return false
				}
				return true
			})
		}
		sort.Ints(chosen)
		sched.Slots = append(sched.Slots, chosen)
		for _, id := range chosen {
			cur[id]--
		}
	}
	return sched, nil
}

// ListSchedule produces the greedy carbon-agnostic FIFO baseline: at each
// slot, run the lowest-ID eligible stages up to K. It is the slotted
// analogue of Spark's FIFO stage order and Graham list scheduling.
func ListSchedule(inst Instance) (*Schedule, error) {
	durs, err := durations(inst)
	if err != nil {
		return nil, err
	}
	cur := make(state, len(durs))
	for i, d := range durs {
		cur[i] = uint8(d)
	}
	sched := &Schedule{}
	for {
		el := eligible(inst.Job, cur)
		if len(el) == 0 {
			break
		}
		m := inst.K
		if m > len(el) {
			m = len(el)
		}
		run := el[:m]
		sched.Slots = append(sched.Slots, append([]int(nil), run...))
		for _, id := range run {
			cur[id]--
		}
	}
	return sched, nil
}

// Validate checks a schedule against the instance: capacity, precedence,
// and completion. It returns nil for a feasible complete schedule.
func Validate(inst Instance, s *Schedule) error {
	durs, err := durations(inst)
	if err != nil {
		return err
	}
	rem := append([]int(nil), durs...)
	for t, ids := range s.Slots {
		if len(ids) > inst.K {
			return fmt.Errorf("optimal: slot %d runs %d > K stages", t, len(ids))
		}
		seen := map[int]bool{}
		for _, id := range ids {
			if id < 0 || id >= len(rem) {
				return fmt.Errorf("optimal: slot %d has unknown stage %d", t, id)
			}
			if seen[id] {
				return fmt.Errorf("optimal: slot %d runs stage %d twice", t, id)
			}
			seen[id] = true
			if rem[id] <= 0 {
				return fmt.Errorf("optimal: stage %d runs past completion at slot %d", id, t)
			}
			for _, p := range inst.Job.Stages[id].Parents {
				if rem[p] > 0 {
					return fmt.Errorf("optimal: stage %d runs before parent %d finished (slot %d)", id, p, t)
				}
			}
		}
		for _, id := range ids {
			rem[id]--
		}
	}
	for id, r := range rem {
		if r > 0 {
			return fmt.Errorf("optimal: stage %d incomplete (%d slots left)", id, r)
		}
	}
	return nil
}

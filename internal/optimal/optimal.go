// Package optimal computes exact reference schedules for small DAG
// instances — the T-OPT (time-optimal) and C-OPT (carbon-optimal with a
// deadline) policies of the paper's motivating example (Fig. 1). DAG
// scheduling is NP-hard [36], so these are exponential dynamic programs
// over the stage-remaining-work state space, intended for instances of at
// most a dozen stages and a few dozen time slots; they exist to quantify
// how far heuristic and carbon-aware policies sit from the two optima.
//
// The model matches Fig. 1: time is slotted (one slot = one grid-hour),
// each stage is a unit of serial work lasting an integral number of
// slots, at most K stages run per slot, execution is preemptive at slot
// granularity, and a slot of execution costs the slot's carbon intensity.
//
// Both DPs run on a per-solve scratch arena (see DESIGN.md §7): the
// remaining-work vector is a mixed-radix number whose packed index keys
// dense memo arrays, the state is mutated in place (decrement/undo)
// during subset enumeration, and eligibility buffers are reused per
// recursion depth — the hot path performs no per-state allocations and
// no string key conversions.
package optimal

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pcaps/internal/dag"
)

// Instance is a small scheduling instance.
type Instance struct {
	// Job supplies the DAG. Stage durations are interpreted as integer
	// slot counts (TaskDuration rounded up); NumTasks must be 1.
	Job *dag.Job
	// K is the machine count.
	K int
	// Carbon holds the per-slot carbon intensities; scheduling beyond
	// the last slot reuses the final value (see carbonAt). C-OPT
	// requires a non-empty trace (ErrNoCarbon).
	Carbon []float64
	// Deadline is the completion deadline in slots for C-OPT.
	Deadline int
}

// Schedule is a slot-indexed execution plan: Slots[t] lists the stage IDs
// running during slot t.
type Schedule struct {
	Slots [][]int
}

// Makespan returns the number of slots until the last stage finishes.
func (s *Schedule) Makespan() int { return len(s.Slots) }

// CarbonCost sums the carbon of every stage-slot under the instance's
// per-slot intensities. An empty intensity slice prices every slot at
// zero (C-OPT itself rejects empty traces with ErrNoCarbon).
func (s *Schedule) CarbonCost(carbon []float64) float64 {
	var total float64
	for t, ids := range s.Slots {
		total += carbonAt(carbon, t) * float64(len(ids))
	}
	return total
}

// carbonAt prices slot t. Out-of-range slots deliberately clamp to the
// final sample — the instance's trace covers the planning window, and a
// schedule that runs past it keeps paying the last observed intensity
// rather than running free. Empty traces price at zero; solver entry
// points that need a real signal reject them up front (ErrNoCarbon).
//
//pcaps:hotpath
func carbonAt(carbon []float64, t int) float64 {
	if len(carbon) == 0 {
		return 0
	}
	if t >= len(carbon) {
		return carbon[len(carbon)-1]
	}
	return carbon[t]
}

// Errors returned by the solvers.
var (
	ErrTooLarge   = errors.New("optimal: instance too large for exact search")
	ErrInfeasible = errors.New("optimal: no schedule meets the deadline")
	ErrBadJob     = errors.New("optimal: stages must have exactly one task")
	// ErrNoCarbon rejects C-OPT instances with an empty carbon trace: a
	// carbon-optimal schedule against no signal is meaningless, and the
	// historical behaviour (silently pricing every slot at zero) hid
	// caller bugs.
	ErrNoCarbon = errors.New("optimal: carbon trace is empty")
)

// maxStates bounds the DP state space as a safety valve.
const maxStates = 2_000_000

// maxDenseSlots caps the dense (slot, state) C-OPT memo at 32 MiB;
// larger products fall back to a hashed memo with a capacity hint.
const maxDenseSlots = 4 << 20

// tGuard is the T-OPT "unreachable" value: larger than any feasible
// makespan, and the in-progress marker that guards (impossible) cycles.
const tGuard = 1 << 20

// inf is the C-OPT infeasibility cost.
const inf = math.MaxFloat64 / 4

// durations validates and extracts integral slot durations.
func durations(inst Instance) ([]int, error) {
	if inst.Job == nil || inst.K < 1 {
		return nil, fmt.Errorf("optimal: need a job and at least one machine")
	}
	if err := inst.Job.Validate(); err != nil {
		return nil, err
	}
	durs := make([]int, len(inst.Job.Stages))
	states := 1.0
	for i, st := range inst.Job.Stages {
		if st.NumTasks != 1 {
			return nil, fmt.Errorf("%w: stage %d has %d", ErrBadJob, i, st.NumTasks)
		}
		durs[i] = int(math.Ceil(st.TaskDuration))
		if durs[i] < 1 {
			durs[i] = 1
		}
		states *= float64(durs[i] + 1)
		if states > maxStates {
			return nil, ErrTooLarge
		}
	}
	return durs, nil
}

// solver is the preallocated scratch arena of one solve call. The
// remaining-work vector rem is a mixed-radix number with per-stage
// strides; idx is its packed value, maintained incrementally as the
// subset enumeration decrements and restores stages in place. All memo
// tables are dense arrays keyed by idx (T-OPT) or slot·n+idx (C-OPT).
type solver struct {
	job      *dag.Job
	k        int
	deadline int
	carbon   []float64

	stride []int // stride[i] = Π_{j<i} (durs[j]+1)
	n      int   // total packed states, Π (durs[i]+1)
	rem    []uint8
	idx    int

	// topt is the T-OPT / residual-bound memo: -1 unknown, tGuard in
	// progress, otherwise the minimum slots to drain the state.
	topt []int32

	// copt is the dense C-OPT memo (slot-major), used when the
	// (deadline+1)·n product fits maxDenseSlots; -1 unknown. coptMap is
	// the fallback for larger products.
	copt    []float64
	coptMap map[int64]float64

	// levels holds one eligibility buffer per DP recursion depth, so a
	// parent's subset enumeration survives its children's. recon is the
	// reconstruction walk's private buffer pair.
	levels    [][]int
	reconElig []int
	reconPick []int
}

func newSolver(inst Instance) (*solver, error) {
	durs, err := durations(inst)
	if err != nil {
		return nil, err
	}
	sv := &solver{
		job:      inst.Job,
		k:        inst.K,
		deadline: inst.Deadline,
		carbon:   inst.Carbon,
		stride:   make([]int, len(durs)),
		rem:      make([]uint8, len(durs)),
	}
	sv.n = 1
	for i, d := range durs {
		sv.stride[i] = sv.n
		sv.n *= d + 1
		sv.rem[i] = uint8(d)
	}
	sv.idx = sv.n - 1 // every digit at its radix maximum
	sv.topt = make([]int32, sv.n)
	for i := range sv.topt {
		sv.topt[i] = -1
	}
	sv.reconElig = make([]int, 0, len(durs))
	sv.reconPick = make([]int, 0, len(durs))
	return sv, nil
}

// level returns depth d's eligibility buffer, growing the ladder on
// first use (amortized across the whole solve).
//
//pcaps:hotpath
func (sv *solver) level(d int) []int {
	for len(sv.levels) <= d {
		//hot:alloc amortized ladder growth; each depth allocates once per solver lifetime
		sv.levels = append(sv.levels, make([]int, 0, len(sv.rem)))
	}
	return sv.levels[d]
}

// eligibleInto fills buf with the stages that may run in the current
// state: incomplete with all parents complete, in ascending stage-ID
// order (the enumeration and reconstruction order).
//
//pcaps:hotpath
func (sv *solver) eligibleInto(buf []int) []int {
	buf = buf[:0]
	for _, st := range sv.job.Stages {
		if sv.rem[st.ID] == 0 {
			continue
		}
		ok := true
		for _, p := range st.Parents {
			if sv.rem[p] != 0 {
				ok = false
				break
			}
		}
		if ok {
			buf = append(buf, st.ID)
		}
	}
	return buf
}

// run applies one chosen stage-slot in place; undo restores it.
//
//pcaps:hotpath
func (sv *solver) run(id int) { sv.rem[id]--; sv.idx -= sv.stride[id] }

//pcaps:hotpath
func (sv *solver) undo(id int) { sv.rem[id]++; sv.idx += sv.stride[id] }

// tsolve is the T-OPT DP: the minimum number of slots to drain the
// current state. The value is time-invariant, so memoization is on the
// packed state alone. Running fewer than min(K, |eligible|) stages in a
// slot can never shorten a makespan, so only maximal subsets branch.
func (sv *solver) tsolve(d int) int32 {
	if sv.idx == 0 {
		return 0
	}
	if v := sv.topt[sv.idx]; v >= 0 {
		return v
	}
	here := sv.idx
	sv.topt[here] = tGuard
	el := sv.eligibleInto(sv.level(d))
	sv.levels[d] = el
	m := sv.k
	if m > len(el) {
		m = len(el)
	}
	best := sv.tEnum(el, m, 0, d)
	sv.topt[here] = best
	return best
}

// tEnum enumerates the size-m subsets of el[start:] in lexicographic
// order, mutating the state in place and scoring each completed choice.
func (sv *solver) tEnum(el []int, m, start, d int) int32 {
	if m == 0 {
		return 1 + sv.tsolve(d+1)
	}
	best := int32(tGuard)
	for i := start; i+m <= len(el); i++ {
		sv.run(el[i])
		if v := sv.tEnum(el, m-1, i+1, d); v < best {
			best = v
		}
		sv.undo(el[i])
	}
	return best
}

// tFind locates the first size-m subset (lexicographic order, matching
// the historical reconstruction) whose successor state proves the
// memoized optimum, accumulating it into reconPick.
func (sv *solver) tFind(el []int, m, start int, want int32) bool {
	if m == 0 {
		return 1+sv.tsolve(0) == want
	}
	for i := start; i+m <= len(el); i++ {
		sv.run(el[i])
		sv.reconPick = append(sv.reconPick, el[i])
		if sv.tFind(el, m-1, i+1, want) {
			sv.undo(el[i])
			return true
		}
		sv.reconPick = sv.reconPick[:len(sv.reconPick)-1]
		sv.undo(el[i])
	}
	return false
}

// TOpt computes a makespan-optimal schedule.
func TOpt(inst Instance) (*Schedule, error) {
	sv, err := newSolver(inst)
	if err != nil {
		return nil, err
	}
	total := int(sv.tsolve(0))
	// Reconstruct a schedule by re-walking the memoized DP greedily.
	sched := &Schedule{Slots: make([][]int, 0, total)}
	for t := 0; t < total; t++ {
		el := sv.eligibleInto(sv.reconElig)
		sv.reconElig = el
		m := sv.k
		if m > len(el) {
			m = len(el)
		}
		want := sv.tsolve(0)
		sv.reconPick = sv.reconPick[:0]
		if !sv.tFind(el, m, 0, want) {
			return nil, fmt.Errorf("optimal: T-OPT reconstruction lost the optimum at slot %d", t)
		}
		chosen := append([]int(nil), sv.reconPick...)
		sort.Ints(chosen)
		sched.Slots = append(sched.Slots, chosen)
		for _, id := range chosen {
			sv.run(id)
		}
	}
	return sched, nil
}

// cget reads the C-OPT memo for (slot t, current state): -1 is unknown.
//
//pcaps:hotpath
func (sv *solver) cget(t int) float64 {
	if sv.copt != nil {
		return sv.copt[t*sv.n+sv.idx]
	}
	if v, ok := sv.coptMap[int64(t)*int64(sv.n)+int64(sv.idx)]; ok {
		return v
	}
	return -1
}

//pcaps:hotpath
func (sv *solver) cset(t int, v float64) {
	if sv.copt != nil {
		sv.copt[t*sv.n+sv.idx] = v
		return
	}
	//hot:alloc map fallback engages only past the 4M-cell dense-memo cap; the dense path above is allocation-free
	sv.coptMap[int64(t)*int64(sv.n)+int64(sv.idx)] = v
}

// csolve is the C-OPT DP over (slot, state): the minimum summed
// intensity of all remaining stage-slots, finishing by the deadline. A
// T-OPT residual bound prunes states that can no longer meet it.
func (sv *solver) csolve(t, d int) float64 {
	if sv.idx == 0 {
		return 0
	}
	if int(sv.tsolve(d)) > sv.deadline-t {
		return inf
	}
	if v := sv.cget(t); v >= 0 {
		return v
	}
	here := sv.idx
	_ = here
	sv.cset(t, inf) // in-progress guard
	el := sv.eligibleInto(sv.level(d))
	sv.levels[d] = el
	maxRun := sv.k
	if maxRun > len(el) {
		maxRun = len(el)
	}
	price := carbonAt(sv.carbon, t)
	best := inf
	// Consider every run-count from 0 (idle the slot) to maxRun.
	for m := 0; m <= maxRun; m++ {
		if c := sv.cEnum(el, m, 0, t, d, price*float64(m)); c < best {
			best = c
		}
	}
	sv.cset(t, best)
	return best
}

// cEnum enumerates the size-m subsets of el[start:] in lexicographic
// order; base carries the slot's price·m term so leaf costs match the
// historical expression exactly.
func (sv *solver) cEnum(el []int, m, start, t, d int, base float64) float64 {
	if m == 0 {
		return base + sv.csolve(t+1, d+1)
	}
	best := inf
	for i := start; i+m <= len(el); i++ {
		sv.run(el[i])
		if c := sv.cEnum(el, m-1, i+1, t, d, base); c < best {
			best = c
		}
		sv.undo(el[i])
	}
	return best
}

// cFind mirrors the historical C-OPT reconstruction: the first subset
// (run-counts ascending, then lexicographic) whose cost matches the
// memoized optimum within 1e-9.
func (sv *solver) cFind(el []int, m, start, t int, base, want float64) bool {
	if m == 0 {
		return math.Abs(base+sv.csolve(t+1, 0)-want) < 1e-9
	}
	for i := start; i+m <= len(el); i++ {
		sv.run(el[i])
		sv.reconPick = append(sv.reconPick, el[i])
		if sv.cFind(el, m-1, i+1, t, base, want) {
			sv.undo(el[i])
			return true
		}
		sv.reconPick = sv.reconPick[:len(sv.reconPick)-1]
		sv.undo(el[i])
	}
	return false
}

// COpt computes a carbon-optimal schedule finishing within the deadline:
// it minimizes the summed intensity of all stage-slots, idling machines
// through expensive hours whenever the remaining slack allows.
func COpt(inst Instance) (*Schedule, error) {
	if len(inst.Carbon) == 0 {
		return nil, ErrNoCarbon
	}
	if inst.Deadline < 1 {
		return nil, fmt.Errorf("optimal: C-OPT requires a positive deadline")
	}
	sv, err := newSolver(inst)
	if err != nil {
		return nil, err
	}
	if int(sv.tsolve(0)) > inst.Deadline {
		return nil, ErrInfeasible
	}
	// Memo over (slot, state): dense when the product fits the cap,
	// hashed with a capacity hint otherwise.
	slots := inst.Deadline + 1
	if cells := slots * sv.n; cells <= maxDenseSlots {
		sv.copt = make([]float64, cells)
		for i := range sv.copt {
			sv.copt[i] = -1
		}
	} else {
		sv.coptMap = make(map[int64]float64, 1<<14)
	}
	total := sv.csolve(0, 0)
	if total >= inf {
		return nil, ErrInfeasible
	}
	// Reconstruct by re-walking the memoized DP.
	sched := &Schedule{}
	for t := 0; sv.idx != 0; t++ {
		el := sv.eligibleInto(sv.reconElig)
		sv.reconElig = el
		maxRun := sv.k
		if maxRun > len(el) {
			maxRun = len(el)
		}
		price := carbonAt(sv.carbon, t)
		want := sv.csolve(t, 0)
		found := false
		for m := 0; m <= maxRun && !found; m++ {
			sv.reconPick = sv.reconPick[:0]
			found = sv.cFind(el, m, 0, t, price*float64(m), want)
		}
		if !found {
			return nil, fmt.Errorf("optimal: C-OPT reconstruction lost the optimum at slot %d", t)
		}
		chosen := append([]int(nil), sv.reconPick...)
		sort.Ints(chosen)
		sched.Slots = append(sched.Slots, chosen)
		for _, id := range chosen {
			sv.run(id)
		}
	}
	return sched, nil
}

// ListSchedule produces the greedy carbon-agnostic FIFO baseline: at each
// slot, run the lowest-ID eligible stages up to K. It is the slotted
// analogue of Spark's FIFO stage order and Graham list scheduling.
func ListSchedule(inst Instance) (*Schedule, error) {
	sv, err := newSolver(inst)
	if err != nil {
		return nil, err
	}
	sched := &Schedule{}
	for {
		el := sv.eligibleInto(sv.reconElig)
		sv.reconElig = el
		if len(el) == 0 {
			break
		}
		m := sv.k
		if m > len(el) {
			m = len(el)
		}
		run := el[:m]
		sched.Slots = append(sched.Slots, append([]int(nil), run...))
		for _, id := range run {
			sv.run(id)
		}
	}
	return sched, nil
}

// Validate checks a schedule against the instance: capacity, precedence,
// and completion. It returns nil for a feasible complete schedule.
func Validate(inst Instance, s *Schedule) error {
	durs, err := durations(inst)
	if err != nil {
		return err
	}
	rem := append([]int(nil), durs...)
	seen := make(map[int]bool, len(durs))
	for t, ids := range s.Slots {
		if len(ids) > inst.K {
			return fmt.Errorf("optimal: slot %d runs %d > K stages", t, len(ids))
		}
		clear(seen)
		for _, id := range ids {
			if id < 0 || id >= len(rem) {
				return fmt.Errorf("optimal: slot %d has unknown stage %d", t, id)
			}
			if seen[id] {
				return fmt.Errorf("optimal: slot %d runs stage %d twice", t, id)
			}
			seen[id] = true
			if rem[id] <= 0 {
				return fmt.Errorf("optimal: stage %d runs past completion at slot %d", id, t)
			}
			for _, p := range inst.Job.Stages[id].Parents {
				if rem[p] > 0 {
					return fmt.Errorf("optimal: stage %d runs before parent %d finished (slot %d)", id, p, t)
				}
			}
		}
		for _, id := range ids {
			rem[id]--
		}
	}
	for id, r := range rem {
		if r > 0 {
			return fmt.Errorf("optimal: stage %d incomplete (%d slots left)", id, r)
		}
	}
	return nil
}

// Package placement is the backend of carbonapi's POST /v1/placement:
// it exposes the paper's scheduling policies as a stateless decision
// service. A request carries a policy spec (resolved through the same
// sched registry the scenario compiler uses) and a serialized cluster
// snapshot (sim.Snapshot); the service restores the snapshot and runs
// one Pick per policy, returning the decision an embedded simulator
// would have made live — the inverse of wiring a simulator into a
// scheduler webhook, and the building block for driving real cluster
// schedulers (a Kubernetes extender, a load generator) from the
// paper's policies.
//
// Decisions are pure functions of (policy, seed, snapshot): restoring
// a snapshot shares nothing between requests, and the shared registry
// is immutable, so concurrent Place calls need no locking.
package placement

import (
	"context"
	"errors"
	"fmt"

	"pcaps/internal/carbonapi"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
)

// Service implements carbonapi.Placements.
type Service struct {
	// Registry overrides the policy table; nil selects sched.Default().
	Registry *sched.Registry
}

func (s *Service) registry() *sched.Registry {
	if s.Registry != nil {
		return s.Registry
	}
	return sched.Default()
}

// invalid marks a rejection the HTTP handler maps to a 400.
func invalid(format string, args ...any) error {
	return fmt.Errorf("%w: %s", carbonapi.ErrInvalidPlacement, fmt.Sprintf(format, args...))
}

// Place implements carbonapi.Placements: validate every policy spec,
// restore the snapshot once, and run one independent Pick per policy
// against it. Each policy gets a fresh scheduler instance seeded with
// the request seed; Place never mutates the restored scheduling state,
// so batch entries see identical cluster state.
func (s *Service) Place(ctx context.Context, req *carbonapi.PlacementRequest) ([]sim.Placement, error) {
	reg := s.registry()
	type named struct {
		field string
		spec  sched.Spec
	}
	var specs []named
	switch {
	case req.Policy != nil:
		specs = []named{{field: "policy", spec: *req.Policy}}
	case len(req.Policies) > 0:
		for i, p := range req.Policies {
			specs = append(specs, named{field: fmt.Sprintf("policies[%d]", i), spec: p})
		}
	default:
		return nil, invalid("policy: missing policy spec")
	}
	factories := make([]sched.Factory, len(specs))
	for i, n := range specs {
		f, err := reg.New(n.spec)
		if err != nil {
			var pe *sched.ParamError
			if errors.As(err, &pe) {
				return nil, invalid("%s.%s: %s", n.field, pe.Field, pe.Msg)
			}
			return nil, invalid("%s: %v", n.field, err)
		}
		factories[i] = f
	}
	if req.Snapshot == nil {
		return nil, invalid("snapshot: missing cluster snapshot")
	}
	cluster, err := req.Snapshot.Restore()
	if err != nil {
		// Restore errors already name the field (snapshot.jobs[i]...).
		return nil, invalid("%v", err)
	}
	out := make([]sim.Placement, len(factories))
	for i, f := range factories {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = cluster.Place(f(req.Seed))
	}
	return out, nil
}

package placement_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
	"pcaps/internal/placement"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

// equivalenceSpecs covers every registered policy kind, plus the
// parameterized variants the paper sweeps.
func equivalenceSpecs() []sched.Spec {
	specs := []sched.Spec{
		{Kind: "fifo"},
		{Kind: "kube-default"},
		{Kind: "weighted-fair"},
		{Kind: "decima"},
		{Kind: "uniformpb"},
		{Kind: "greenhadoop"},
		{Kind: "cap"},
		{Kind: "cap", B: sched.Int(10), Inner: &sched.Spec{Kind: "decima"}},
		{Kind: "pcaps"},
		{Kind: "pcaps", Gamma: sched.Float(0.9), Inner: &sched.Spec{Kind: "uniformpb"}},
	}
	return specs
}

func specLabel(s sched.Spec) string {
	raw, _ := json.Marshal(s)
	return string(raw)
}

// capture holds one mid-run observation: the serialized snapshot and
// the decision every policy made live on the very same cluster state.
type capture struct {
	event int
	raw   []byte // snapshot JSON, as it would travel over the wire
	live  []sim.Placement
}

// captureRun simulates a batch and, at a few interesting events,
// records the snapshot alongside each policy's live decision.
func captureRun(t *testing.T, seed int64, specs []sched.Spec) []capture {
	t.Helper()
	reg := sched.Default()
	factories := make([]sched.Factory, len(specs))
	for i, s := range specs {
		f, err := reg.New(s)
		if err != nil {
			t.Fatalf("New(%s): %v", specLabel(s), err)
		}
		factories[i] = f
	}
	jobs := workload.Batch(workload.BatchConfig{N: 10, MeanInterarrival: 25, Mix: workload.MixBoth, Seed: seed})
	tr := carbon.SynthesizeAll(48, 60, seed)["CAISO"]
	var caps []capture
	events := 0
	cfg := sim.Config{
		NumExecutors: 20,
		Trace:        tr,
		Seed:         seed,
		Observer: func(c *sim.Cluster) {
			events++
			// Sample a spread of cluster states: early (mostly idle),
			// mid-run (contended), late (draining).
			if events != 5 && events != 30 && events != 90 {
				return
			}
			snap := c.Snapshot()
			raw, err := json.Marshal(snap)
			if err != nil {
				t.Errorf("marshal snapshot at event %d: %v", events, err)
				return
			}
			cp := capture{event: events, raw: raw}
			for _, f := range factories {
				// A fresh instance per capture: scheduler scratch state
				// must not leak between decisions, mirroring what the
				// placement service does server-side.
				cp.live = append(cp.live, c.Place(f(seed)))
			}
			caps = append(caps, cp)
		},
	}
	// Drive the run with a mid-pack policy so captures see held and
	// busy executors under a realistic dispatch pattern.
	driver, err := reg.New(sched.Spec{Kind: "weighted-fair"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(cfg, jobs, driver(seed)); err != nil {
		t.Fatal(err)
	}
	if len(caps) == 0 {
		t.Fatal("no captures; fixture too small")
	}
	return caps
}

// TestDecisionEquivalence is the contract of the whole snapshot layer:
// for every registered policy, Pick on the live cluster equals Pick on
// a cluster restored from the JSON-round-tripped snapshot.
func TestDecisionEquivalence(t *testing.T) {
	specs := equivalenceSpecs()
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			for _, cp := range captureRun(t, seed, specs) {
				var snap sim.Snapshot
				if err := json.Unmarshal(cp.raw, &snap); err != nil {
					t.Fatalf("event %d: decode snapshot: %v", cp.event, err)
				}
				cluster, err := snap.Restore()
				if err != nil {
					t.Fatalf("event %d: restore: %v", cp.event, err)
				}
				for i, spec := range specs {
					f, err := sched.Default().New(spec)
					if err != nil {
						t.Fatal(err)
					}
					got := cluster.Place(f(seed))
					if !reflect.DeepEqual(got, cp.live[i]) {
						t.Errorf("event %d, policy %s:\nlive     %+v\nrestored %+v",
							cp.event, specLabel(spec), cp.live[i], got)
					}
				}
			}
		})
	}
}

// TestServiceMatchesHTTP proves the full wire path: POSTing the
// snapshot through a real server yields the same decision as calling
// the backend locally.
func TestServiceMatchesHTTP(t *testing.T) {
	specs := equivalenceSpecs()
	const seed = int64(42)
	caps := captureRun(t, seed, specs)

	srv := httptest.NewServer(carbonapi.NewServer(nil, carbonapi.WithPlacements(&placement.Service{})))
	defer srv.Close()
	client := carbonapi.NewClient(srv.URL)

	cp := caps[len(caps)-1]
	var snap sim.Snapshot
	if err := json.Unmarshal(cp.raw, &snap); err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		got, err := client.Place(context.Background(), spec, seed, &snap)
		if err != nil {
			t.Fatalf("Place(%s): %v", specLabel(spec), err)
		}
		if !reflect.DeepEqual(*got, cp.live[i]) {
			t.Errorf("policy %s:\nlive %+v\nhttp %+v", specLabel(spec), cp.live[i], *got)
		}
	}
	// The batch endpoint returns the same decisions in request order.
	batch, err := client.PlaceBatch(context.Background(), specs, seed, &snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, cp.live) {
		t.Errorf("batch decisions diverge:\nlive  %+v\nbatch %+v", cp.live, batch)
	}
}

// testSnapshot builds one small valid snapshot for handler tests.
func testSnapshot(t *testing.T) *sim.Snapshot {
	t.Helper()
	caps := captureRun(t, 1, []sched.Spec{{Kind: "fifo"}})
	var snap sim.Snapshot
	if err := json.Unmarshal(caps[0].raw, &snap); err != nil {
		t.Fatal(err)
	}
	return &snap
}

func postPlacement(t *testing.T, url string, body []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/placement", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(raw)
}

func TestPlacementHandlerRejects(t *testing.T) {
	snap := testSnapshot(t)
	snapJSON, _ := json.Marshal(snap)
	srv := httptest.NewServer(carbonapi.NewServer(nil, carbonapi.WithPlacements(&placement.Service{})))
	defer srv.Close()

	mutated := func(mutate func(*sim.Snapshot)) []byte {
		var s sim.Snapshot
		if err := json.Unmarshal(snapJSON, &s); err != nil {
			t.Fatal(err)
		}
		mutate(&s)
		body, _ := json.Marshal(carbonapi.PlacementRequest{Policy: &sched.Spec{Kind: "fifo"}, Snapshot: &s})
		return body
	}
	req := func(v any) []byte {
		body, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	cases := []struct {
		name   string
		body   []byte
		status int
		want   string // substring the error must carry
	}{
		{"not json", []byte("{"), http.StatusBadRequest, "body: unexpected EOF"},
		{"unknown top-level field", []byte(`{"policyy":{"kind":"fifo"}}`), http.StatusBadRequest, "policyy"},
		{"neither policy nor policies", req(carbonapi.PlacementRequest{Snapshot: snap}),
			http.StatusBadRequest, "exactly one of policy and policies"},
		{"both policy and policies", req(map[string]any{
			"policy": sched.Spec{Kind: "fifo"}, "policies": []sched.Spec{{Kind: "fifo"}}, "snapshot": snap,
		}), http.StatusBadRequest, "exactly one of policy and policies"},
		{"unknown policy kind", req(carbonapi.PlacementRequest{Policy: &sched.Spec{Kind: "srpt"}, Snapshot: snap}),
			http.StatusBadRequest, `policy.kind: unknown policy kind "srpt"`},
		{"zero gamma", req(carbonapi.PlacementRequest{Policy: &sched.Spec{Kind: "pcaps", Gamma: sched.Float(0)}, Snapshot: snap}),
			http.StatusBadRequest, "policy.gamma: gamma 0 outside (0, 1]"},
		{"zero b in batch", req(carbonapi.PlacementRequest{Policies: []sched.Spec{{Kind: "fifo"}, {Kind: "cap", B: sched.Int(0)}}, Snapshot: snap}),
			http.StatusBadRequest, "policies[1].b: CAP quota 0 below 1"},
		{"missing snapshot", req(carbonapi.PlacementRequest{Policy: &sched.Spec{Kind: "fifo"}}),
			http.StatusBadRequest, "snapshot: missing cluster snapshot"},
		{"malformed snapshot counters", mutated(func(s *sim.Snapshot) { s.Jobs[0].Stages[0].Dispatched = 1 << 20 }),
			http.StatusBadRequest, "snapshot.jobs[0].stages[0].dispatched"},
		{"zero executors", mutated(func(s *sim.Snapshot) { s.NumExecutors = 0 }),
			http.StatusBadRequest, "snapshot.num_executors"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postPlacement(t, srv.URL, tc.body)
			if status != tc.status {
				t.Fatalf("status = %d (%s), want %d", status, strings.TrimSpace(body), tc.status)
			}
			if !strings.Contains(body, tc.want) {
				t.Errorf("body %q missing %q", strings.TrimSpace(body), tc.want)
			}
		})
	}
}

func TestPlacementDisabledIs404(t *testing.T) {
	srv := httptest.NewServer(carbonapi.NewServer(nil))
	defer srv.Close()
	status, body := postPlacement(t, srv.URL, []byte(`{}`))
	if status != http.StatusNotFound {
		t.Fatalf("status = %d (%s), want 404", status, strings.TrimSpace(body))
	}
	if !strings.Contains(body, "not enabled") {
		t.Errorf("body %q should say the service is not enabled", strings.TrimSpace(body))
	}
}

func TestPlacementOversizedIs413(t *testing.T) {
	srv := httptest.NewServer(carbonapi.NewServer(nil, carbonapi.WithPlacements(&placement.Service{})))
	defer srv.Close()
	big := append([]byte(`{"pad":"`), bytes.Repeat([]byte("x"), 9<<20)...)
	big = append(big, []byte(`"}`)...)
	status, _ := postPlacement(t, srv.URL, big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", status)
	}
}

// TestPlacementConcurrent hammers one server with overlapping requests
// across policies; run under -race this pins the no-shared-state claim
// of the Placements contract.
func TestPlacementConcurrent(t *testing.T) {
	snap := testSnapshot(t)
	specs := equivalenceSpecs()
	srv := httptest.NewServer(carbonapi.NewServer(nil, carbonapi.WithPlacements(&placement.Service{})))
	defer srv.Close()
	client := carbonapi.NewClient(srv.URL)

	// Sequential reference decisions, one per spec.
	want := make([]sim.Placement, len(specs))
	for i, s := range specs {
		p, err := client.Place(context.Background(), s, 3, snap)
		if err != nil {
			t.Fatalf("reference Place(%s): %v", specLabel(s), err)
		}
		want[i] = *p
	}

	var wg sync.WaitGroup
	errs := make(chan error, 4*len(specs))
	for round := 0; round < 4; round++ {
		for i, s := range specs {
			wg.Add(1)
			go func(i int, s sched.Spec) {
				defer wg.Done()
				p, err := client.Place(context.Background(), s, 3, snap)
				if err != nil {
					errs <- fmt.Errorf("Place(%s): %v", specLabel(s), err)
					return
				}
				if !reflect.DeepEqual(*p, want[i]) {
					errs <- fmt.Errorf("policy %s: concurrent decision %+v != sequential %+v", specLabel(s), *p, want[i])
				}
			}(i, s)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

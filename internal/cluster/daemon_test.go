package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
)

// faultyCarbonServer mimics a misbehaving carbon API: intensity and
// forecast responses are well-formed JSON but carry the configured
// (possibly nonsensical) values.
func faultyCarbonServer(t *testing.T, intensity, lo, hi float64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/v1/intensity":
			fmt.Fprintf(w, `{"grid":"DE","at_sec":0,"intensity_gco2eq_kwh":%g,"interval_sec":60}`, intensity)
		case "/v1/forecast":
			fmt.Fprintf(w, `{"grid":"DE","from_sec":0,"horizon_sec":2880,"low_gco2eq_kwh":%g,"high_gco2eq_kwh":%g}`, lo, hi)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestQuotaDaemonRejectsBadServerValues: inverted or negative values
// from a misbehaving server must not reach the k-search quota; the
// daemon errors descriptively and the installed quota keeps its last
// good value.
func TestQuotaDaemonRejectsBadServerValues(t *testing.T) {
	tr := deTrace(t)
	good := httptest.NewServer(carbonapi.NewServer(map[string]*carbon.Trace{"DE": tr}))
	defer good.Close()

	q := NewResourceQuota(PaperExecutorShape, 100)
	d := &QuotaDaemon{
		Client: carbonapi.NewClient(good.URL),
		Grid:   "DE",
		K:      100, B: 20,
		Quota: q,
		Now:   func() float64 { return 0 },
	}
	ctx := context.Background()
	goodQuota, err := d.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if goodQuota < 20 || goodQuota > 100 {
		t.Fatalf("good quota out of range: %d", goodQuota)
	}

	tests := []struct {
		name              string
		intensity, lo, hi float64
		wantErrContains   string
	}{
		{"inverted bounds", 400, 500, 100, "bad forecast bounds"},
		{"negative low bound", 400, -50, 300, "bad forecast bounds"},
		{"both bounds negative", 400, -20, -5, "bad forecast bounds"},
		{"negative intensity", -1, 100, 500, "bad intensity"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d.Client = carbonapi.NewClient(faultyCarbonServer(t, tt.intensity, tt.lo, tt.hi).URL)
			_, err := d.Step(ctx)
			if err == nil {
				t.Fatal("faulty server values accepted")
			}
			if !strings.Contains(err.Error(), tt.wantErrContains) {
				t.Fatalf("err = %v, want mention of %q", err, tt.wantErrContains)
			}
			if d.LastQuota() != goodQuota {
				t.Fatalf("LastQuota = %d, want last good %d", d.LastQuota(), goodQuota)
			}
			if q.MaxExecutors() != goodQuota {
				t.Fatalf("installed quota = %d, want last good %d", q.MaxExecutors(), goodQuota)
			}
		})
	}

	// Negative low bound case: hi < lo already covered; a server
	// recovering restores normal operation.
	d.Client = carbonapi.NewClient(good.URL)
	if _, err := d.Step(ctx); err != nil {
		t.Fatalf("recovered server rejected: %v", err)
	}
}

// TestQuotaDaemonAcceptsZeroLowBound: a zero lower bound is a legitimate
// carbon-free interval, floored for the threshold math rather than
// rejected.
func TestQuotaDaemonAcceptsZeroLowBound(t *testing.T) {
	srv := faultyCarbonServer(t, 400, 0, 500)
	d := &QuotaDaemon{
		Client: carbonapi.NewClient(srv.URL),
		Grid:   "DE",
		K:      100, B: 20,
		Quota: NewResourceQuota(PaperExecutorShape, 100),
		Now:   func() float64 { return 0 },
	}
	if _, err := d.Step(context.Background()); err != nil {
		t.Fatalf("zero low bound rejected: %v", err)
	}
}

package cluster

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
	"pcaps/internal/sched"
	"pcaps/internal/workload"
)

func deTrace(t testing.TB) *carbon.Trace {
	t.Helper()
	spec, err := carbon.GridByName("DE")
	if err != nil {
		t.Fatal(err)
	}
	return carbon.Synthesize(spec, 3000, 60, 17)
}

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig()
	if cfg.Executors() != 100 {
		t.Fatalf("Executors = %d, want 100", cfg.Executors())
	}
	sc := cfg.SimConfig(deTrace(t))
	if sc.NumExecutors != 100 || sc.PerJobCap != 25 || !sc.HoldExecutors {
		t.Fatalf("SimConfig = %+v", sc)
	}
}

func TestRunValidation(t *testing.T) {
	jobs := workload.Batch(workload.BatchConfig{N: 2, Seed: 1})
	if _, err := Run(Config{}, deTrace(t), jobs, &sched.FIFO{}); err == nil {
		t.Fatal("zero-worker config accepted")
	}
}

func TestPrototypeTable2Shape(t *testing.T) {
	// The Table 2 relationships on one trial: Decima ≈ default in
	// carbon (both are pod-bound); CAP and PCAPS reduce carbon by >10%
	// with bounded ECT increases.
	tr := deTrace(t)
	jobs := workload.Batch(workload.BatchConfig{N: 30, MeanInterarrival: 30, Mix: workload.MixTPCH, Seed: 5})
	cfg := PaperConfig()

	def, err := Run(cfg, tr, jobs, sched.NewKubeDefault())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Run(cfg, tr, jobs, sched.NewDecima(3))
	if err != nil {
		t.Fatal(err)
	}
	capRes, err := Run(cfg, tr, jobs, sched.NewCAP(sched.NewKubeDefault(), 20))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Run(cfg, tr, jobs, sched.NewPCAPS(sched.NewDecima(3), 0.5, 3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.CarbonGrams-def.CarbonGrams) > 0.15*def.CarbonGrams {
		t.Fatalf("Decima carbon %v too far from default %v", dec.CarbonGrams, def.CarbonGrams)
	}
	if capRes.CarbonGrams > 0.9*def.CarbonGrams {
		t.Fatalf("CAP carbon %v did not reduce ≥10%% vs default %v", capRes.CarbonGrams, def.CarbonGrams)
	}
	if pc.CarbonGrams > 0.9*def.CarbonGrams {
		t.Fatalf("PCAPS carbon %v did not reduce ≥10%% vs default %v", pc.CarbonGrams, def.CarbonGrams)
	}
	if pc.ECT > 1.25*def.ECT {
		t.Fatalf("PCAPS ECT %v blew past default %v", pc.ECT, def.ECT)
	}
	if capRes.ECT < pc.ECT*0.95 {
		t.Fatalf("CAP ECT %v should not beat PCAPS %v (Table 2 ordering)", capRes.ECT, pc.ECT)
	}
}

func TestResourceQuota(t *testing.T) {
	q := NewResourceQuota(PaperExecutorShape, 10)
	if q.MaxExecutors() != 10 {
		t.Fatalf("MaxExecutors = %d", q.MaxExecutors())
	}
	if got := q.Admit(4); got != 4 {
		t.Fatalf("Admit(4) = %d", got)
	}
	if got := q.Admit(8); got != 6 {
		t.Fatalf("Admit(8) = %d, want 6 (clamped)", got)
	}
	if got := q.Admit(1); got != 0 {
		t.Fatalf("Admit at capacity = %d", got)
	}
	// Shrinking the quota never evicts: usage stays at 10.
	q.SetMaxExecutors(3)
	if q.Used() != 10 {
		t.Fatalf("Used after shrink = %d", q.Used())
	}
	if got := q.Admit(1); got != 0 {
		t.Fatalf("Admit under shrunk quota = %d", got)
	}
	q.Release(8)
	if q.Used() != 2 {
		t.Fatalf("Used after release = %d", q.Used())
	}
	if got := q.Admit(5); got != 1 {
		t.Fatalf("Admit after release = %d, want 1 (3-2)", got)
	}
	q.Release(100)
	if q.Used() != 0 {
		t.Fatalf("over-release not clamped: %d", q.Used())
	}
	q.SetMaxExecutors(-5)
	if q.MaxExecutors() != 0 {
		t.Fatalf("negative quota not clamped: %d", q.MaxExecutors())
	}
}

func TestQuotaDaemonAgainstHTTPAPI(t *testing.T) {
	tr := deTrace(t)
	srv := httptest.NewServer(carbonapi.NewServer(map[string]*carbon.Trace{"DE": tr}))
	defer srv.Close()

	now := 0.0
	q := NewResourceQuota(PaperExecutorShape, 100)
	d := &QuotaDaemon{
		Client: carbonapi.NewClient(srv.URL),
		Grid:   "DE",
		K:      100, B: 20,
		Quota: q,
		Now:   func() float64 { return now },
	}
	ctx := context.Background()

	// Find a high-carbon and a low-carbon hour in the first two days.
	hiAt, loAt := 0.0, 0.0
	hi, lo := math.Inf(-1), math.Inf(1)
	for sec := 0.0; sec < 48*60; sec += 60 {
		v := tr.At(sec)
		if v > hi {
			hi, hiAt = v, sec
		}
		if v < lo {
			lo, loAt = v, sec
		}
	}

	now = hiAt
	quotaHi, err := d.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	now = loAt
	quotaLo, err := d.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if quotaHi >= quotaLo {
		t.Fatalf("quota at high carbon (%d) not below quota at low carbon (%d)", quotaHi, quotaLo)
	}
	if quotaHi < 20 || quotaLo > 100 {
		t.Fatalf("quotas out of range: %d, %d", quotaHi, quotaLo)
	}
	if q.MaxExecutors() != quotaLo {
		t.Fatalf("quota object holds %d, want %d", q.MaxExecutors(), quotaLo)
	}
	if d.LastQuota() != quotaLo {
		t.Fatalf("LastQuota = %d", d.LastQuota())
	}
}

func TestQuotaDaemonErrors(t *testing.T) {
	d := &QuotaDaemon{}
	if _, err := d.Step(context.Background()); err == nil {
		t.Fatal("unconfigured daemon accepted")
	}
	srv := httptest.NewServer(carbonapi.NewServer(map[string]*carbon.Trace{}))
	defer srv.Close()
	d = &QuotaDaemon{
		Client: carbonapi.NewClient(srv.URL),
		Grid:   "NOPE",
		K:      10, B: 2,
		Quota: NewResourceQuota(PaperExecutorShape, 10),
		Now:   func() float64 { return 0 },
	}
	if _, err := d.Step(context.Background()); err == nil {
		t.Fatal("unknown grid accepted")
	}
}

func TestFig15FidelityContrast(t *testing.T) {
	// Appendix A.1.2 / Fig 15: the prototype's capped default behaviour
	// improves on standalone FIFO in both carbon and average JCT for an
	// identical batch.
	tr := deTrace(t)
	jobs := workload.Batch(workload.BatchConfig{N: 50, MeanInterarrival: 30, Mix: workload.MixTPCH, Seed: 11})

	standalone := PaperConfig()
	standalone.PerJobCap = 0 // standalone FIFO over-assigns freely
	fifo, err := Run(standalone, tr, jobs, &sched.FIFO{})
	if err != nil {
		t.Fatal(err)
	}
	proto, err := Run(PaperConfig(), tr, jobs, sched.NewKubeDefault())
	if err != nil {
		t.Fatal(err)
	}
	if proto.CarbonGrams >= fifo.CarbonGrams {
		t.Fatalf("prototype carbon %v not below standalone %v", proto.CarbonGrams, fifo.CarbonGrams)
	}
	if proto.AvgJCT > fifo.AvgJCT*1.05 {
		t.Fatalf("prototype JCT %v worse than standalone %v", proto.AvgJCT, fifo.AvgJCT)
	}
}

func TestQuotaDaemonRunLoop(t *testing.T) {
	tr := deTrace(t)
	srv := httptest.NewServer(carbonapi.NewServer(map[string]*carbon.Trace{"DE": tr}))
	defer srv.Close()
	q := NewResourceQuota(PaperExecutorShape, 100)
	d := &QuotaDaemon{
		Client: carbonapi.NewClient(srv.URL),
		Grid:   "DE",
		K:      100, B: 20,
		Quota: q,
		Now:   func() float64 { return 0 },
		Poll:  time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := d.Run(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("Run returned %v, want deadline exceeded", err)
	}
	if d.LastQuota() < 20 || d.LastQuota() > 100 {
		t.Fatalf("daemon never installed a quota: %d", d.LastQuota())
	}
	if q.MaxExecutors() != d.LastQuota() {
		t.Fatalf("quota object %d != daemon decision %d", q.MaxExecutors(), d.LastQuota())
	}
}

func TestQuotaDaemonClampsB(t *testing.T) {
	tr := deTrace(t)
	srv := httptest.NewServer(carbonapi.NewServer(map[string]*carbon.Trace{"DE": tr}))
	defer srv.Close()
	d := &QuotaDaemon{
		Client: carbonapi.NewClient(srv.URL),
		Grid:   "DE",
		K:      10, B: 99, // B > K must clamp, not error
		Quota: NewResourceQuota(PaperExecutorShape, 10),
		Now:   func() float64 { return 0 },
	}
	quota, err := d.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if quota != 10 {
		t.Fatalf("clamped quota = %d, want 10", quota)
	}
	d.B = 0 // below 1 must clamp to 1
	if _, err := d.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestResourceQuotaMemoryBound(t *testing.T) {
	// A quota can be memory-bound rather than CPU-bound.
	shape := ExecutorShape{CPUMillis: 1000, MemoryMB: 1024}
	q := NewResourceQuota(shape, 4)
	// Manually shrink only memory by rebuilding with a tighter shape
	// ratio: 4 pods of CPU but memory for 2.
	q.mu.Lock()
	q.hardMem = 2 * shape.MemoryMB
	q.mu.Unlock()
	if got := q.MaxExecutors(); got != 2 {
		t.Fatalf("memory-bound MaxExecutors = %d, want 2", got)
	}
	if got := q.Admit(0); got != 0 {
		t.Fatalf("Admit(0) = %d", got)
	}
	if got := q.Admit(-3); got != 0 {
		t.Fatalf("Admit(-3) = %d", got)
	}
}

package cluster

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"pcaps/internal/carbonapi"
	"pcaps/internal/core"
)

// QuotaDaemon is the prototype's CAP daemon (§5.1): it polls a
// carbon-intensity HTTP API, computes the k-search quota for the current
// intensity and forecast bounds, and writes the corresponding executor
// limit into the namespace ResourceQuota. It runs concurrently with the
// cluster; no scheduler changes are required — that is CAP's selling
// point.
type QuotaDaemon struct {
	// Client and Grid select the intensity feed.
	Client *carbonapi.Client
	Grid   string
	// K and B parameterize the CAP thresholds.
	K, B int
	// ForecastHorizon is the lookahead for (L, U) in experiment seconds
	// (48 grid-hours by default).
	ForecastHorizon float64
	// Quota is the namespace quota object the daemon adjusts.
	Quota *ResourceQuota
	// Now maps wall time to experiment time; tests and trace replays
	// inject their own clock.
	Now func() float64
	// Poll is the wall-clock polling period (the paper reports new
	// intensities once per real-time minute). Defaults to one second for
	// in-process use.
	Poll time.Duration

	// lastQuota caches the most recent decision for observability.
	lastQuota int
}

// Step performs one poll-and-update cycle and returns the executor limit
// it installed.
func (d *QuotaDaemon) Step(ctx context.Context) (int, error) {
	if d.Client == nil || d.Quota == nil || d.Now == nil {
		return 0, fmt.Errorf("cluster: daemon missing client, quota, or clock")
	}
	at := d.Now()
	horizon := d.ForecastHorizon
	if horizon <= 0 {
		horizon = 48 * 60
	}
	intensity, err := d.Client.Intensity(ctx, d.Grid, at)
	if err != nil {
		return 0, fmt.Errorf("cluster: intensity poll: %w", err)
	}
	lo, hi, err := d.Client.Forecast(ctx, d.Grid, at, horizon)
	if err != nil {
		return 0, fmt.Errorf("cluster: forecast poll: %w", err)
	}
	// A misbehaving server can return inverted or non-finite values that
	// would flow straight into the k-search quota. Reject them and keep
	// serving the last good quota (the installed limit is untouched).
	if math.IsNaN(intensity) || math.IsInf(intensity, 0) || intensity < 0 {
		return 0, fmt.Errorf("cluster: server returned bad intensity %v for grid %s; keeping quota %d",
			intensity, d.Grid, d.lastQuota)
	}
	if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) || hi < lo || lo < 0 {
		return 0, fmt.Errorf("cluster: server returned bad forecast bounds [%v, %v] for grid %s; keeping quota %d",
			lo, hi, d.Grid, d.lastQuota)
	}
	if lo == 0 {
		// A zero lower bound is a legitimate carbon-free interval; floor
		// it for the threshold math, which needs L > 0.
		lo = 1e-3
		if hi < lo {
			hi = lo
		}
	}
	b := d.B
	if b < 1 {
		b = 1
	}
	if b > d.K {
		b = d.K
	}
	cap, err := core.NewCAP(d.K, b, lo, hi)
	if err != nil {
		return 0, fmt.Errorf("cluster: thresholds: %w", err)
	}
	quota := cap.Quota(intensity)
	d.Quota.SetMaxExecutors(quota)
	d.lastQuota = quota
	return quota, nil
}

// LastQuota returns the most recently installed executor limit.
func (d *QuotaDaemon) LastQuota() int { return d.lastQuota }

// Run polls until the context is cancelled. Transient API errors and
// rejected server values are retried on the next tick (the quota keeps
// its previous value, the safe behaviour for a non-preemptive limit) and
// logged on the transition into failure — not per tick, so a server
// returning varying garbage cannot flood the log — making a frozen
// quota observable instead of silent.
func (d *QuotaDaemon) Run(ctx context.Context) error {
	poll := d.Poll
	if poll <= 0 {
		poll = time.Second
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	healthy := true
	for {
		if _, err := d.Step(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if healthy {
				log.Printf("cluster: quota daemon: %v (retrying each tick)", err)
				healthy = false
			}
		} else {
			healthy = true
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// Package cluster models the paper's prototype deployment (§5.1, §6.3): a
// Spark-on-Kubernetes cluster of 51 VMs (one control plane, 50 workers
// hosting two executor pods each), a namespace ResourceQuota that CAP
// adjusts to throttle executor pods, per-job executor caps, pod startup
// latency, and the carbon-intensity daemon that polls an HTTP API and
// drives quota updates. Experiment execution reuses the discrete-event
// engine of internal/sim configured with prototype semantics.
package cluster

import (
	"fmt"
	"sync"

	"pcaps/internal/carbon"
	"pcaps/internal/dag"
	"pcaps/internal/sim"
)

// ExecutorShape is the resource footprint of one executor pod. The
// paper's configuration allocates 4 VCPUs and 7 GB per executor, two per
// 8-VCPU/16-GB worker (the remaining memory absorbs Spark's 10% overhead
// factor, §6.3).
type ExecutorShape struct {
	CPUMillis int // CPU request in millicores
	MemoryMB  int // memory request in MiB
}

// PaperExecutorShape is the §6.3 executor footprint.
var PaperExecutorShape = ExecutorShape{CPUMillis: 4000, MemoryMB: 7 * 1024}

// Config describes the prototype testbed.
type Config struct {
	// Workers is the number of worker VMs (50 in the paper).
	Workers int
	// ExecutorsPerWorker is pods per worker (2 in the paper).
	ExecutorsPerWorker int
	// PerJobCap bounds executors per Spark application (25, §6.3).
	PerJobCap int
	// PodStartDelay is the latency of scheduling + starting an executor
	// pod when an application acquires an executor, in seconds.
	PodStartDelay float64
	// IdleTimeout is Spark dynamic allocation's executorIdleTimeout in
	// seconds (60 by default): how long an idle executor pod lingers.
	IdleTimeout float64
	// Seed drives task jitter.
	Seed int64
}

// PaperConfig returns the §6.3 testbed: 50 workers × 2 executors = 100
// executors, 25-executor job cap, 60-second idle timeout.
func PaperConfig() Config {
	return Config{
		Workers:            50,
		ExecutorsPerWorker: 2,
		PerJobCap:          25,
		PodStartDelay:      3,
		IdleTimeout:        60,
	}
}

// Executors returns the total executor pod capacity.
func (c Config) Executors() int { return c.Workers * c.ExecutorsPerWorker }

// SimConfig translates the prototype description into engine settings:
// executor pods are held by applications until the idle timeout
// (dynamic-allocation lingering), pod startup is the cross-job move
// delay, and the per-job cap applies to all schedulers.
func (c Config) SimConfig(tr *carbon.Trace) sim.Config {
	return sim.Config{
		NumExecutors:  c.Executors(),
		Trace:         tr,
		MoveDelay:     c.PodStartDelay,
		PerJobCap:     c.PerJobCap,
		HoldExecutors: true,
		IdleTimeout:   c.IdleTimeout,
		// The paper tables were produced under the seed engine's
		// per-task hold-expiry wake-ups; keep that cadence so published
		// artifacts stay byte-identical (see sim.Config.LegacyHoldWakeups
		// and DESIGN.md).
		LegacyHoldWakeups: true,
		Seed:              c.Seed,
	}
}

// Run executes a batch on the prototype cluster under the given
// scheduler.
func Run(cfg Config, tr *carbon.Trace, jobs []*dag.Job, s sim.Scheduler) (*sim.Result, error) {
	if cfg.Workers < 1 || cfg.ExecutorsPerWorker < 1 {
		return nil, fmt.Errorf("cluster: need at least one worker and executor, got %d×%d",
			cfg.Workers, cfg.ExecutorsPerWorker)
	}
	return sim.Run(cfg.SimConfig(tr), jobs, s)
}

// ResourceQuota models a Kubernetes namespace ResourceQuota object [2]:
// hard limits on CPU and memory that gate new pod admissions without
// preempting running pods — exactly the mechanism CAP's daemon adjusts
// (§5.1). It is safe for concurrent use (the daemon updates it while the
// scheduler reads it).
type ResourceQuota struct {
	mu    sync.Mutex
	shape ExecutorShape
	// hardCPU / hardMem are the quota limits; usedPods tracks admitted
	// executor pods.
	hardCPU, hardMem int
	usedPods         int
}

// NewResourceQuota creates a quota sized for maxExecutors pods of the
// given shape.
func NewResourceQuota(shape ExecutorShape, maxExecutors int) *ResourceQuota {
	q := &ResourceQuota{shape: shape}
	q.SetMaxExecutors(maxExecutors)
	return q
}

// SetMaxExecutors adjusts the hard CPU and memory limits to admit at most
// n executor pods, the translation CAP's daemon performs (§5.1: "our
// implementation adjusts CPU and memory quotas to correspond with a
// maximum number of executors").
func (q *ResourceQuota) SetMaxExecutors(n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n < 0 {
		n = 0
	}
	q.hardCPU = n * q.shape.CPUMillis
	q.hardMem = n * q.shape.MemoryMB
}

// MaxExecutors returns the pod count the current hard limits admit.
func (q *ResourceQuota) MaxExecutors() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.maxLocked()
}

func (q *ResourceQuota) maxLocked() int {
	byCPU := q.hardCPU / q.shape.CPUMillis
	byMem := q.hardMem / q.shape.MemoryMB
	if byMem < byCPU {
		return byMem
	}
	return byCPU
}

// Used returns the number of admitted pods.
func (q *ResourceQuota) Used() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.usedPods
}

// Admit tries to admit n new executor pods; it returns how many fit
// under the hard limits (possibly 0) and records them as used. Existing
// pods are never evicted when the quota shrinks below usage.
func (q *ResourceQuota) Admit(n int) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n <= 0 {
		return 0
	}
	head := q.maxLocked() - q.usedPods
	if head <= 0 {
		return 0
	}
	if n > head {
		n = head
	}
	q.usedPods += n
	return n
}

// Release returns n pods to the quota.
func (q *ResourceQuota) Release(n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.usedPods -= n
	if q.usedPods < 0 {
		q.usedPods = 0
	}
}

// Package pcaps_test holds the benchmark harness of deliverable (d): one
// testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark regenerates its artifact through the experiment runners
// in fast mode and reports the artifact's key headline numbers as custom
// metrics, so `go test -bench=. -benchmem` doubles as a one-shot
// reproduction sweep. Full-fidelity runs (all grids, paper trial counts)
// are driven by `go run ./cmd/pcapsim -exp all`.
package pcaps_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"pcaps/internal/experiments"
)

// benchArtifact runs one artifact per benchmark iteration, fanning its
// cells out over the default worker pool (Parallel: 0 = GOMAXPROCS) —
// the same configuration `pcapsim -exp all` uses. Reports are identical
// at any parallelism, so the published metrics are comparable across
// machines and worker counts.
func benchArtifact(b *testing.B, id string) *experiments.Report {
	b.Helper()
	var rep *experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = experiments.Run(id, experiments.Options{Fast: true, Seed: 42})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return rep
}

// reportFirstPercent extracts the first "x.y%"-shaped number following a
// label in the report body and publishes it as a benchmark metric.
func reportFirstPercent(b *testing.B, rep *experiments.Report, label, metric string) {
	idx := strings.Index(rep.Body, label)
	if idx < 0 {
		return
	}
	rest := rep.Body[idx+len(label):]
	for _, field := range strings.Fields(rest) {
		field = strings.TrimSuffix(field, "%")
		if v, err := strconv.ParseFloat(field, 64); err == nil {
			b.ReportMetric(v, metric)
			return
		}
	}
}

func BenchmarkTable1TraceStats(b *testing.B) { benchArtifact(b, "table1") }
func BenchmarkTable2Prototype(b *testing.B) {
	rep := benchArtifact(b, "table2")
	reportFirstPercent(b, rep, "PCAPS", "pcaps_co2_red_%")
	reportFirstPercent(b, rep, "CAP", "cap_co2_red_%")
}
func BenchmarkTable3Simulator(b *testing.B) {
	rep := benchArtifact(b, "table3")
	reportFirstPercent(b, rep, "PCAPS", "pcaps_co2_red_%")
	reportFirstPercent(b, rep, "Decima", "decima_co2_red_%")
}

func BenchmarkFig1Motivating(b *testing.B)      { benchArtifact(b, "fig1") }
func BenchmarkFig5Snapshots(b *testing.B)       { benchArtifact(b, "fig5") }
func BenchmarkFig6Occupancy(b *testing.B)       { benchArtifact(b, "fig6") }
func BenchmarkFig7PCAPSSweepProto(b *testing.B) { benchArtifact(b, "fig7") }
func BenchmarkFig8CAPSweepProto(b *testing.B)   { benchArtifact(b, "fig8") }
func BenchmarkFig9PerJob(b *testing.B)          { benchArtifact(b, "fig9") }
func BenchmarkFig10GridsProto(b *testing.B)     { benchArtifact(b, "fig10") }
func BenchmarkFig11PCAPSSweepSim(b *testing.B)  { benchArtifact(b, "fig11") }
func BenchmarkFig12CAPSweepSim(b *testing.B)    { benchArtifact(b, "fig12") }
func BenchmarkFig13Frontier(b *testing.B)       { benchArtifact(b, "fig13") }
func BenchmarkFig14GridsSim(b *testing.B)       { benchArtifact(b, "fig14") }
func BenchmarkFig15Fidelity(b *testing.B)       { benchArtifact(b, "fig15") }
func BenchmarkFig16JobsSim(b *testing.B)        { benchArtifact(b, "fig16") }
func BenchmarkFig17JobsProto(b *testing.B)      { benchArtifact(b, "fig17") }
func BenchmarkFig18ArrivalSim(b *testing.B)     { benchArtifact(b, "fig18") }
func BenchmarkFig19ArrivalProto(b *testing.B)   { benchArtifact(b, "fig19") }
func BenchmarkFig20Latency(b *testing.B)        { benchArtifact(b, "fig20") }

// BenchmarkAllArtifactsOnce regenerates every artifact once per
// iteration through the parallel engine (RunAll fans artifacts and
// their cells out over all cores) — the end-to-end cost of
// `pcapsim -exp all -fast`.
func BenchmarkAllArtifactsOnce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(experiments.IDs(), experiments.Options{Fast: true, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllArtifactsOnceSerial is the same pass pinned to one worker
// (Parallel: 1). The ratio against BenchmarkAllArtifactsOnce is the
// engine's parallel speedup on the benchmarking machine.
func BenchmarkAllArtifactsOnceSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(experiments.IDs(), experiments.Options{Fast: true, Seed: 42, Parallel: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// Example output shapes are stable enough to assert in a smoke test; the
// benchmark harness is also exercised by `go test` itself.
func TestBenchHarnessSmoke(t *testing.T) {
	rep, err := experiments.Run("table3", experiments.Options{Fast: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Body, "PCAPS") {
		t.Fatal("table3 missing PCAPS row")
	}
	fmt.Println(rep.Render())
}

// BenchmarkAblationSuite regenerates the DESIGN.md design-choice
// ablations (threshold shape, importance signal, parallelism scaling,
// forecast error, suspend-resume baseline).
func BenchmarkAblationSuite(b *testing.B) { benchArtifact(b, "ablation") }

// Package pcaps_test holds the benchmark harness of deliverable (d): one
// testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark regenerates its artifact through the experiment runners
// in fast mode and reports the artifact's key headline numbers as custom
// metrics, so `go test -bench=. -benchmem` doubles as a one-shot
// reproduction sweep. Full-fidelity runs (all grids, paper trial counts)
// are driven by `go run ./cmd/pcapsim -exp all`.
package pcaps_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"pcaps/internal/arrivals"
	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
	"pcaps/internal/dag"
	"pcaps/internal/experiments"
	"pcaps/internal/federation"
	"pcaps/internal/metrics"
	"pcaps/internal/optimal"
	"pcaps/internal/placement"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

// benchArtifact runs one artifact per benchmark iteration, fanning its
// cells out over the default worker pool (Parallel: 0 = GOMAXPROCS) —
// the same configuration `pcapsim -exp all` uses. Reports are identical
// at any parallelism, so the published metrics are comparable across
// machines and worker counts.
func benchArtifact(b *testing.B, id string) *experiments.Report {
	b.Helper()
	var rep *experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = experiments.Run(id, experiments.Options{Fast: true, Seed: 42})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return rep
}

// reportFirstPercent extracts the first "x.y%"-shaped number following a
// label in the report body and publishes it as a benchmark metric.
func reportFirstPercent(b *testing.B, rep *experiments.Report, label, metric string) {
	idx := strings.Index(rep.Body(), label)
	if idx < 0 {
		return
	}
	rest := rep.Body()[idx+len(label):]
	for _, field := range strings.Fields(rest) {
		field = strings.TrimSuffix(field, "%")
		if v, err := strconv.ParseFloat(field, 64); err == nil {
			b.ReportMetric(v, metric)
			return
		}
	}
}

func BenchmarkTable1TraceStats(b *testing.B) { benchArtifact(b, "table1") }
func BenchmarkTable2Prototype(b *testing.B) {
	rep := benchArtifact(b, "table2")
	reportFirstPercent(b, rep, "PCAPS", "pcaps_co2_red_%")
	reportFirstPercent(b, rep, "CAP", "cap_co2_red_%")
}
func BenchmarkTable3Simulator(b *testing.B) {
	rep := benchArtifact(b, "table3")
	reportFirstPercent(b, rep, "PCAPS", "pcaps_co2_red_%")
	reportFirstPercent(b, rep, "Decima", "decima_co2_red_%")
}

func BenchmarkFig1Motivating(b *testing.B)      { benchArtifact(b, "fig1") }
func BenchmarkFig5Snapshots(b *testing.B)       { benchArtifact(b, "fig5") }
func BenchmarkFig6Occupancy(b *testing.B)       { benchArtifact(b, "fig6") }
func BenchmarkFig7PCAPSSweepProto(b *testing.B) { benchArtifact(b, "fig7") }
func BenchmarkFig8CAPSweepProto(b *testing.B)   { benchArtifact(b, "fig8") }
func BenchmarkFig9PerJob(b *testing.B)          { benchArtifact(b, "fig9") }
func BenchmarkFig10GridsProto(b *testing.B)     { benchArtifact(b, "fig10") }
func BenchmarkFig11PCAPSSweepSim(b *testing.B)  { benchArtifact(b, "fig11") }
func BenchmarkFig12CAPSweepSim(b *testing.B)    { benchArtifact(b, "fig12") }
func BenchmarkFig13Frontier(b *testing.B)       { benchArtifact(b, "fig13") }
func BenchmarkFig14GridsSim(b *testing.B)       { benchArtifact(b, "fig14") }
func BenchmarkFig15Fidelity(b *testing.B)       { benchArtifact(b, "fig15") }
func BenchmarkFig16JobsSim(b *testing.B)        { benchArtifact(b, "fig16") }
func BenchmarkFig17JobsProto(b *testing.B)      { benchArtifact(b, "fig17") }
func BenchmarkFig18ArrivalSim(b *testing.B)     { benchArtifact(b, "fig18") }
func BenchmarkFig19ArrivalProto(b *testing.B)   { benchArtifact(b, "fig19") }
func BenchmarkFig20Latency(b *testing.B)        { benchArtifact(b, "fig20") }

// BenchmarkAllArtifactsOnce regenerates every artifact once per
// iteration through the parallel engine (RunAll fans artifacts and
// their cells out over all cores) — the end-to-end cost of
// `pcapsim -exp all -fast`.
func BenchmarkAllArtifactsOnce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(experiments.IDs(), experiments.Options{Fast: true, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllArtifactsOnceSerial is the same pass pinned to one worker
// (Parallel: 1). The ratio against BenchmarkAllArtifactsOnce is the
// engine's parallel speedup on the benchmarking machine.
func BenchmarkAllArtifactsOnceSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(experiments.IDs(), experiments.Options{Fast: true, Seed: 42, Parallel: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// Example output shapes are stable enough to assert in a smoke test; the
// benchmark harness is also exercised by `go test` itself.
func TestBenchHarnessSmoke(t *testing.T) {
	rep, err := experiments.Run("table3", experiments.Options{Fast: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Body(), "PCAPS") {
		t.Fatal("table3 missing PCAPS row")
	}
	fmt.Println(rep.Render())
}

// BenchmarkAblationSuite regenerates the DESIGN.md design-choice
// ablations (threshold shape, importance signal, parallelism scaling,
// forecast error, suspend-resume baseline).
func BenchmarkAblationSuite(b *testing.B) { benchArtifact(b, "ablation") }

// Arrival-generation microbenchmarks: the open-loop workload path
// (DESIGN.md §9). BenchmarkArrivalGen times batch generation under the
// thinning-heavy burst shape with heterogeneous classes — the overload
// artifact's per-cell generation cost. BenchmarkOverloadLoop times one
// full open-loop cell: generate, simulate, and reduce to backlog/JCT
// metrics.

func BenchmarkArrivalGen(b *testing.B) {
	proc, err := arrivals.New(arrivals.Spec{
		Kind: arrivals.KindBurst, RPS: 1.0 / 60, PeakRPS: 1.0 / 3, PeriodSec: 600, BurstSec: 60,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := workload.GenConfig{
		N: 200, Arrivals: proc, Seed: 42,
		Classes: []workload.Class{
			{Name: "interactive", Mix: workload.MixTPCH, Weight: 3},
			{Name: "batch", Mix: workload.MixAlibaba, Weight: 1, WorkScale: 2},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverloadLoop(b *testing.B) {
	proc, err := arrivals.New(arrivals.Spec{
		Kind: arrivals.KindBurst, RPS: 1.0 / 60, PeakRPS: 1.0 / 3, PeriodSec: 600, BurstSec: 60,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchTrace(b)
	b.ReportAllocs()
	var backlog float64
	for i := 0; i < b.N; i++ {
		jobs, err := workload.Generate(workload.GenConfig{
			N: 80, Arrivals: proc, Mix: workload.MixBoth, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(cfg, jobs, &sched.FIFO{})
		if err != nil {
			b.Fatal(err)
		}
		arr := make([]float64, len(jobs))
		cps := make([]float64, len(jobs))
		for k, j := range jobs {
			arr[k] = j.Arrival
			cps[k] = j.CriticalPathLength()
		}
		backlog = metrics.SummarizeOpenLoop(arr, res.JCTs, cps).MeanBacklog
	}
	b.ReportMetric(backlog, "mean-backlog")
}

// Hyperscale streaming benchmarks (DESIGN.md §10): drive sim.RunStream
// through capacity-matched constant-arrival cells and pin the two scale
// claims as metrics — jobs/sec (throughput) and peak_heap_mb (memory
// tracks the in-flight population, not the job count; see
// hyperscaleStreamPeak in scale_test.go for the sampling harness). The
// Smoke variant is small enough for the raced 1-iteration CI pass; the
// 1M cell is the headline BENCH number.

func benchHyperscaleStream(b *testing.B, jobs, execs int) {
	b.ReportAllocs()
	var peak float64
	for i := 0; i < b.N; i++ {
		peak = hyperscaleStreamPeak(b, jobs, execs, &sched.FIFO{})
	}
	b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	b.ReportMetric(peak, "peak_heap_mb")
}

func BenchmarkHyperscaleStreamSmoke(b *testing.B) { benchHyperscaleStream(b, 2_000, 200) }
func BenchmarkHyperscaleStream100k(b *testing.B)  { benchHyperscaleStream(b, 100_000, 1000) }
func BenchmarkHyperscaleStream1M(b *testing.B)    { benchHyperscaleStream(b, 1_000_000, 1000) }

// Scheduling-loop microbenchmarks: unlike the artifact benchmarks above,
// these time the simulator's hot path directly — many small stages, high
// executor counts, and executor-holding on and off — with allocs/op
// reported, so regressions in the incremental scheduling core (the
// runnable index, free lists, and epoch-cached views) surface as
// allocation or time deltas rather than as noise inside a whole artifact.

// schedBatch builds a batch of fan-out jobs: one root stage feeding
// width-1 parallel siblings, each a handful of short tasks. Small stages
// and many of them maximize scheduling events per simulated second.
func schedBatch(nJobs, width, tasks int, dur, interarrival float64) []*dag.Job {
	jobs := make([]*dag.Job, 0, nJobs)
	for i := 0; i < nJobs; i++ {
		b := dag.NewBuilder(i, "bench")
		root := b.Stage("", tasks, dur)
		for s := 1; s < width; s++ {
			b.Edge(root, b.Stage("", tasks, dur))
		}
		j := b.MustBuild()
		j.Arrival = float64(i) * interarrival
		jobs = append(jobs, j)
	}
	return jobs
}

func benchSchedLoop(b *testing.B, cfg sim.Config, jobs []*dag.Job, mk func() sim.Scheduler) {
	b.Helper()
	b.ReportAllocs()
	var events int
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg, jobs, mk())
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events/op")
}

func benchTrace(b *testing.B) sim.Config {
	vals := make([]float64, 3600)
	for i := range vals {
		vals[i] = 300
	}
	tr, err := carbon.New("flat", 60, vals)
	if err != nil {
		b.Fatal(err)
	}
	return sim.Config{NumExecutors: 100, Trace: tr}
}

// BenchmarkSchedLoopManySmallStages is the canonical hot-path shape: a
// wide batch of small stages under FIFO on 100 executors.
func BenchmarkSchedLoopManySmallStages(b *testing.B) {
	cfg := benchTrace(b)
	jobs := schedBatch(60, 12, 3, 5, 40)
	benchSchedLoop(b, cfg, jobs, func() sim.Scheduler { return &sched.FIFO{} })
}

// BenchmarkSchedLoopHighK scales the executor count to 500, stressing
// the executor scans that the free-list refactor removes.
func BenchmarkSchedLoopHighK(b *testing.B) {
	cfg := benchTrace(b)
	cfg.NumExecutors = 500
	jobs := schedBatch(60, 12, 3, 5, 40)
	benchSchedLoop(b, cfg, jobs, func() sim.Scheduler { return &sched.FIFO{} })
}

// BenchmarkSchedLoopDecima runs the probabilistic scheduler, whose Pick
// recomputes a distribution over the runnable view on every call.
func BenchmarkSchedLoopDecima(b *testing.B) {
	cfg := benchTrace(b)
	jobs := schedBatch(60, 12, 3, 5, 40)
	benchSchedLoop(b, cfg, jobs, func() sim.Scheduler { return sched.NewDecima(7) })
}

// BenchmarkSchedLoopHoldOff / HoldOn compare the shared-pool and
// executor-retention regimes on the same batch. The hold benchmarks use
// a small cluster (K=8) and 48-task stages so held executors serve several
// task waves per stage — the regime where the hold-mode dispatch path
// (and its historical per-task churn) dominates.
func BenchmarkSchedLoopHoldOff(b *testing.B) {
	cfg := benchTrace(b)
	cfg.NumExecutors = 8
	jobs := schedBatch(8, 5, 48, 2, 120)
	benchSchedLoop(b, cfg, jobs, func() sim.Scheduler { return &sched.FIFO{} })
}

func BenchmarkSchedLoopHoldOn(b *testing.B) {
	cfg := benchTrace(b)
	cfg.NumExecutors = 8
	cfg.HoldExecutors = true
	cfg.IdleTimeout = 60
	jobs := schedBatch(8, 5, 48, 2, 120)
	benchSchedLoop(b, cfg, jobs, func() sim.Scheduler { return &sched.FIFO{} })
}

// BenchmarkSchedLoopHoldLegacyWakeups is HoldOn under the seed engine's
// per-task expiry wake-up cadence (the compatibility mode the experiment
// configs use); the events/op gap against HoldOn is the churn the
// in-place continuation fix removes.
func BenchmarkSchedLoopHoldLegacyWakeups(b *testing.B) {
	cfg := benchTrace(b)
	cfg.NumExecutors = 8
	cfg.HoldExecutors = true
	cfg.IdleTimeout = 60
	cfg.LegacyHoldWakeups = true
	jobs := schedBatch(8, 5, 48, 2, 120)
	benchSchedLoop(b, cfg, jobs, func() sim.Scheduler { return &sched.FIFO{} })
}

// Federation microbenchmarks: the multi-grid routing layer in front of
// the member clusters. BenchmarkFederationSchedLoop times a whole
// federated run (routing fold + K member simulations);
// BenchmarkFederationRouting isolates the per-arrival router decision,
// the only new per-job cost the layer adds on top of the engine.

func benchFederationClusters(b *testing.B) []federation.ClusterSpec {
	b.Helper()
	mk := func(grid string, base, swing float64) federation.ClusterSpec {
		vals := make([]float64, 3600)
		for i := range vals {
			if i%24 < 12 {
				vals[i] = base - swing
			} else {
				vals[i] = base + swing
			}
		}
		tr, err := carbon.New(grid, 60, vals)
		if err != nil {
			b.Fatal(err)
		}
		return federation.ClusterSpec{
			Grid:         grid,
			Trace:        tr,
			Config:       sim.Config{NumExecutors: 50},
			NewScheduler: func(int64) sim.Scheduler { return &sched.FIFO{} },
		}
	}
	return []federation.ClusterSpec{
		mk("low", 120, 60),
		mk("mid", 350, 150),
		mk("high", 650, 80),
	}
}

func BenchmarkFederationSchedLoop(b *testing.B) {
	clusters := benchFederationClusters(b)
	jobs := schedBatch(45, 8, 4, 5, 40)
	b.ReportAllocs()
	var grams float64
	for i := 0; i < b.N; i++ {
		f := &federation.Federation{Clusters: clusters, Router: federation.NewForecastAware(), Seed: 42}
		res, err := f.Run(jobs)
		if err != nil {
			b.Fatal(err)
		}
		grams = res.Summary.CarbonGrams
	}
	b.ReportMetric(grams, "gCO2eq")
}

func BenchmarkFederationRouting(b *testing.B) {
	r := federation.NewForecastAware()
	states := []federation.ClusterState{
		{Index: 0, Intensity: 120, Low: 90, High: 180},
		{Index: 1, Intensity: 350, Low: 200, High: 500},
		{Index: 2, Intensity: 650, Low: 570, High: 730},
		{Index: 3, Intensity: 90, Low: 60, High: 140},
		{Index: 4, Intensity: 420, Low: 300, High: 520},
		{Index: 5, Intensity: 700, Low: 590, High: 800},
	}
	job := federation.JobInfo{Arrival: 0, Work: 1200, CriticalPath: 90}
	b.ReportAllocs()
	r.Reset()
	for i := 0; i < b.N; i++ {
		_ = r.Route(job, states)
	}
}

// Solver microbenchmarks: the Fig. 1 fork-join instance (the largest DP
// the artifact suite solves) exercised directly, with allocs/op
// reported. These pin the packed-state scratch discipline in
// internal/optimal: the whole search should reuse the solver's
// preallocated buffers, so allocs/op stays flat as b.N grows.

// benchInstance rebuilds the Fig. 1 motivating instance: a fork-join DAG
// with a long bottleneck chain, K=4 machines, and an 18-hour carbon
// trace with a pronounced early peak.
func benchInstance() optimal.Instance {
	bld := dag.NewBuilder(0, "bench-opt")
	src := bld.Stage("src", 1, 1)
	sink := bld.Stage("sink", 1, 2)
	for i := 0; i < 6; i++ {
		side := bld.Stage(fmt.Sprintf("side%d", i), 1, 2)
		bld.Edge(src, side).Edge(side, sink)
	}
	green := bld.Stage("green", 1, 3)
	purple := bld.Stage("purple", 1, 3)
	bld.Edge(src, green).Edge(green, purple).Edge(purple, sink)
	carbonTrace := []float64{
		250, 380, 520, 650, 650, 600, 450, 350, 280,
		230, 210, 200, 200, 210, 230, 260, 300, 340,
	}
	return optimal.Instance{Job: bld.MustBuild(), K: 4, Carbon: carbonTrace, Deadline: 18}
}

// BenchmarkTOpt times the makespan-optimal DP (time-optimal schedule)
// on the motivating instance.
func BenchmarkTOpt(b *testing.B) {
	inst := benchInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		local := inst
		local.Job = inst.Job.Clone()
		if _, err := optimal.TOpt(local); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCOpt times the carbon-optimal DP under the 18-hour deadline —
// the most expensive single solve in the artifact suite.
func BenchmarkCOpt(b *testing.B) {
	inst := benchInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		local := inst
		local.Job = inst.Job.Clone()
		if _, err := optimal.COpt(local); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepPrefixReuse measures the common-prefix group runner
// against the same sweep run policy-by-policy: one Decima baseline plus
// PCAPS at five γ settings over a shared (config, jobs) cell — the fig13
// frontier shape. The group variant simulates the shared decision prefix
// once and forks at the first divergent decision; the sequential variant
// re-simulates from scratch per policy. Their results are byte-identical
// (TestRunGroupMatchesSequential); the ns/op ratio is the prefix-reuse
// speedup.
func BenchmarkSweepPrefixReuse(b *testing.B) {
	gammas := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	mkScheds := func(seed int64) []sim.Scheduler {
		scheds := []sim.Scheduler{sched.NewDecima(seed)}
		for _, g := range gammas {
			scheds = append(scheds, sched.NewPCAPS(sched.NewDecima(seed), g, seed))
		}
		return scheds
	}
	cfg := benchTrace(b)
	cfg.Seed = 42
	jobs := schedBatch(40, 8, 4, 5, 40)

	b.Run("group", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunGroup(cfg, jobs, mkScheds(cfg.Seed)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range mkScheds(cfg.Seed) {
				if _, err := sim.Run(cfg, jobs, s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// placementSnapshot builds one contended mid-run snapshot for the
// placement benchmarks: several active jobs, a mix of busy and idle
// executors, captured through the same Observer hook the placement
// service's equivalence tests use.
func placementSnapshot(b *testing.B) *sim.Snapshot {
	b.Helper()
	jobs := workload.Batch(workload.BatchConfig{N: 10, MeanInterarrival: 25, Mix: workload.MixBoth, Seed: 42})
	tr := carbon.SynthesizeAll(48, 60, 42)["CAISO"]
	var snap *sim.Snapshot
	events := 0
	cfg := sim.Config{
		NumExecutors: 20,
		Trace:        tr,
		Seed:         42,
		Observer: func(c *sim.Cluster) {
			events++
			if snap == nil && events >= 30 && c.BusyCount() > 0 && len(c.ActiveJobs()) > 1 {
				snap = c.Snapshot()
			}
		},
	}
	if _, err := sim.Run(cfg, jobs, &sched.WeightedFair{}); err != nil {
		b.Fatal(err)
	}
	if snap == nil {
		b.Fatal("no snapshot captured")
	}
	return snap
}

var placementBenchSpecs = []sched.Spec{
	{Kind: "fifo"},
	{Kind: "decima"},
	{Kind: "cap", B: sched.Int(10)},
	{Kind: "pcaps", Gamma: sched.Float(0.9)},
}

// BenchmarkPlacementLocal measures the in-process decision path: one
// Pick per iteration on an already restored cluster (the restore is
// amortized setup, as it is for a server handling many policies on one
// snapshot). One sub-benchmark per policy kind.
func BenchmarkPlacementLocal(b *testing.B) {
	snap := placementSnapshot(b)
	for _, spec := range placementBenchSpecs {
		f, err := sched.Default().New(spec)
		if err != nil {
			b.Fatal(err)
		}
		cluster, err := snap.Restore()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec.Kind, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := cluster.Place(f(42))
				if p.Scheduler == "" {
					b.Fatal("empty placement")
				}
			}
		})
	}
	// restore measures the per-request snapshot decode cost the local
	// sub-benchmarks amortize away.
	b.Run("restore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := snap.Restore(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// reportLatencyPercentiles publishes p50/p99 of the collected per-call
// latencies as benchmark metrics (milliseconds).
func reportLatencyPercentiles(b *testing.B, lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lat)-1))
		return float64(lat[idx].Nanoseconds()) / 1e6
	}
	b.ReportMetric(pct(0.50), "p50-ms")
	b.ReportMetric(pct(0.99), "p99-ms")
}

// BenchmarkPlacementHTTP measures the full wire path against an
// in-process carbonapi server over a keep-alive connection: marshal the
// request (snapshot included), POST /v1/placement, decode the decision.
// The single variant posts one policy per request; the batch variant
// amortizes the snapshot transfer over all four policies in one POST.
func BenchmarkPlacementHTTP(b *testing.B) {
	snap := placementSnapshot(b)
	srv := httptest.NewServer(carbonapi.NewServer(nil, carbonapi.WithPlacements(&placement.Service{})))
	defer srv.Close()
	// One shared client: connection reuse across iterations is the
	// deployment-realistic configuration (a scheduler polls repeatedly).
	client := carbonapi.NewClient(srv.URL)
	ctx := context.Background()

	b.Run("single", func(b *testing.B) {
		b.ReportAllocs()
		lat := make([]time.Duration, 0, b.N)
		for i := 0; i < b.N; i++ {
			start := time.Now()
			p, err := client.Place(ctx, placementBenchSpecs[i%len(placementBenchSpecs)], 42, snap)
			lat = append(lat, time.Since(start))
			if err != nil {
				b.Fatal(err)
			}
			if p.Scheduler == "" {
				b.Fatal("empty placement")
			}
		}
		reportLatencyPercentiles(b, lat)
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		lat := make([]time.Duration, 0, b.N)
		for i := 0; i < b.N; i++ {
			start := time.Now()
			ps, err := client.PlaceBatch(ctx, placementBenchSpecs, 42, snap)
			lat = append(lat, time.Since(start))
			if err != nil {
				b.Fatal(err)
			}
			if len(ps) != len(placementBenchSpecs) {
				b.Fatalf("got %d decisions, want %d", len(ps), len(placementBenchSpecs))
			}
		}
		reportLatencyPercentiles(b, lat)
	})
}

package pcaps_test

import (
	"encoding/json"
	"testing"

	"pcaps/internal/arrivals"
	"pcaps/internal/carbon"
	"pcaps/internal/sched"
	"pcaps/internal/sim"
	"pcaps/internal/workload"
)

// TestRunStreamMatchesRun pins the tentpole equivalence contract of the
// hyperscale mode (DESIGN.md §10): for any (seed, policy, arrival shape)
// cell, draining a workload.Source through sim.RunStream produces the
// same summary as materializing the batch and running the classic
// engine — canonical-JSON-identical with PerJobOn, which forces the
// streaming path through the classic result arithmetic bit for bit.
// The Stream sketch block is the one field the classic engine cannot
// produce and is cleared before comparison.
func TestRunStreamMatchesRun(t *testing.T) {
	trace := carbon.SynthesizeAll(48, 60, 42)["CAISO"]
	mustProc := func(s arrivals.Spec) arrivals.Process {
		p, err := arrivals.New(s)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	shapes := []struct {
		name string
		proc arrivals.Process
	}{
		{"poisson", arrivals.Poisson{MeanSec: 20}},
		{"constant", mustProc(arrivals.Spec{Kind: arrivals.KindConstant, RPS: 0.05})},
		{"burst", mustProc(arrivals.Spec{Kind: arrivals.KindBurst, RPS: 0.02, PeakRPS: 0.4, PeriodSec: 600, BurstSec: 120})},
	}
	policies := []struct {
		name string
		make func(seed int64) sim.Scheduler
		hold bool
	}{
		{"fifo-hold", func(int64) sim.Scheduler { return &sched.FIFO{} }, true},
		{"cap-fifo", func(int64) sim.Scheduler { return sched.NewCAP(&sched.FIFO{}, 10) }, false},
		{"pcaps-decima", func(seed int64) sim.Scheduler {
			return sched.NewPCAPS(sched.NewDecima(seed), 0.9, seed)
		}, false},
	}
	for _, seed := range []int64{1, 7} {
		for _, shape := range shapes {
			for _, pol := range policies {
				t.Run(shape.name+"/"+pol.name, func(t *testing.T) {
					t.Parallel()
					gen := workload.GenConfig{
						N:        40,
						Arrivals: shape.proc,
						Mix:      workload.MixTPCH,
						Seed:     seed,
					}
					jobs, err := workload.Generate(gen)
					if err != nil {
						t.Fatal(err)
					}
					cfg := sim.Config{
						NumExecutors:  16,
						Trace:         trace,
						MoveDelay:     1,
						PerJobCap:     25,
						Seed:          seed,
						PerJobResults: sim.PerJobOn,
					}
					if pol.hold {
						cfg.HoldExecutors = true
						cfg.IdleTimeout = 60
						cfg.LegacyHoldWakeups = true
					}
					classic, err := sim.Run(cfg, jobs, pol.make(seed))
					if err != nil {
						t.Fatal(err)
					}
					src, err := workload.NewSource(gen)
					if err != nil {
						t.Fatal(err)
					}
					streamed, err := sim.RunStream(cfg, src, pol.make(seed))
					if err != nil {
						t.Fatal(err)
					}
					if streamed.Stream == nil || streamed.Stream.Admitted != gen.N {
						t.Fatalf("stream stats missing or short: %+v", streamed.Stream)
					}
					streamed.Stream = nil
					want, _ := json.Marshal(classic)
					got, _ := json.Marshal(streamed)
					if string(want) != string(got) {
						t.Fatalf("streamed summary diverged from classic:\nclassic: %s\nstream:  %s", want, got)
					}
				})
			}
		}
	}
}

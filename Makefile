# Developer entry points for the pcaps reproduction.

GO ?= go

.PHONY: build test vet lint bench clean

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

# lint runs pcapslint, the custom analyzer suite (internal/lint): the
# determinism, hot-path, and API-error contracts of DESIGN.md §8. It
# exits non-zero on any finding and inventories every waiver.
lint:
	$(GO) run ./cmd/pcapslint ./...

# vet is the full static gate: stock go vet plus pcapslint.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/pcapslint ./...

# bench runs the full artifact benchmark harness plus the scheduling-loop
# and federation microbenchmarks (root bench_test.go) and records the
# machine-readable event stream as $(BENCH_OUT), extending the
# performance trajectory started in BENCH_1.json (BENCH_<n>.json per PR
# that touches the hot path). Human-readable output goes to the terminal
# via the test summary inside the JSON events. BENCH_OUT defaults to the
# first unused BENCH_<n>.json so a rerun never clobbers an earlier
# trajectory point; override it explicitly to rewrite one.
BENCH_OUT ?= $(shell n=1; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; echo BENCH_$$n.json)

bench:
	$(GO) test -run='^$$' -bench=. -benchmem -json . > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT) ($$(wc -l < $(BENCH_OUT)) events)"

clean:
	rm -f $(BENCH_OUT)

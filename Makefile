# Developer entry points for the pcaps reproduction.

GO ?= go

.PHONY: build test vet bench clean

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

# bench runs the full artifact benchmark harness (root bench_test.go) and
# records the machine-readable event stream as BENCH_1.json, seeding the
# performance trajectory tracked across PRs. Human-readable output goes to
# the terminal via the test summary inside the JSON events.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -json . > BENCH_1.json
	@echo "wrote BENCH_1.json ($$(wc -l < BENCH_1.json) events)"

clean:
	rm -f BENCH_1.json

# Developer entry points for the pcaps reproduction.

GO ?= go

.PHONY: build test vet bench clean

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

# bench runs the full artifact benchmark harness plus the scheduling-loop
# and federation microbenchmarks (root bench_test.go) and records the
# machine-readable event stream as $(BENCH_OUT), extending the
# performance trajectory started in BENCH_1.json (BENCH_<n>.json per PR
# that touches the hot path). Human-readable output goes to the terminal
# via the test summary inside the JSON events.
BENCH_OUT ?= BENCH_5.json

bench:
	$(GO) test -run='^$$' -bench=. -benchmem -json . > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT) ($$(wc -l < $(BENCH_OUT)) events)"

clean:
	rm -f $(BENCH_OUT)

module pcaps

go 1.24

// Command pcapslint runs the repository's custom analyzer suite
// (internal/lint): the determinism, hot-path, and API-error contracts
// of DESIGN.md §§3–8 checked at the source level instead of only by the
// golden/race/alloc tests.
//
// Usage:
//
//	pcapslint [-waivers] [-q] [packages...]
//
// With no arguments it analyzes ./... . Diagnostics print one per line
// as file:line:col: analyzer: message, and the process exits 1 if any
// are found. Waiver annotations (//det:unordered, //det:ambient,
// //hot:alloc, //err:untyped, //err:unknownfields — each with a
// mandatory reason) suppress individual findings but are always
// inventoried: -waivers prints them, and the count appears in the
// summary either way, so exceptions to the contracts stay visible.
//
// The suite is stdlib-only (no golang.org/x/tools dependency, so the
// module stays hermetic); it type-checks packages against `go list
// -export` data, which the driver resolves from the build cache of the
// current toolchain.
package main

import (
	"flag"
	"fmt"
	"os"

	"pcaps/internal/lint"
)

func main() {
	waivers := flag.Bool("waivers", false, "print the waiver inventory (every suppressed finding and its reason)")
	quiet := flag.Bool("q", false, "suppress the summary line on success")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pcapslint [-waivers] [-q] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcapslint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcapslint:", err)
		os.Exit(2)
	}
	res := lint.Run(pkgs, lint.Suite())
	for _, d := range res.Diagnostics {
		fmt.Println(d)
	}
	if *waivers {
		for _, w := range res.Waivers {
			fmt.Println(w)
		}
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(os.Stderr, "pcapslint: %d finding(s), %d waiver(s) in %d package(s)\n",
			len(res.Diagnostics), len(res.Waivers), len(pkgs))
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "pcapslint: clean — %d package(s), %d waiver(s)\n", len(pkgs), len(res.Waivers))
	}
}

// Command tracegen emits synthetic carbon-intensity traces and workload
// batches as CSV for offline analysis or replay.
//
// Usage:
//
//	tracegen -grid DE -hours 2000 > de.csv
//	tracegen -workload tpch -n 50 > jobs.csv
//	tracegen -workload alibaba -n 50 -seed 7 > jobs.csv
//
// Workload CSV columns: job, name, arrival_sec, stages, total_work_sec,
// critical_path_sec.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"pcaps/internal/carbon"
	"pcaps/internal/workload"
)

func main() {
	var (
		grid  = flag.String("grid", "", "emit a carbon trace for this grid (PJM, CAISO, ON, DE, NSW, ZA)")
		hours = flag.Int("hours", carbon.PaperHours, "trace length in hours")
		wl    = flag.String("workload", "", "emit a workload batch: tpch, alibaba, or both")
		n     = flag.Int("n", 50, "number of jobs")
		inter = flag.Float64("interarrival", 30, "mean Poisson interarrival in seconds")
		seed  = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	switch {
	case *grid != "":
		spec, err := carbon.GridByName(*grid)
		if err != nil {
			log.Fatalf("tracegen: %v", err)
		}
		tr := carbon.Synthesize(spec, *hours, 60, *seed)
		if err := tr.WriteCSV(os.Stdout); err != nil {
			log.Fatalf("tracegen: %v", err)
		}
	case *wl != "":
		var mix workload.Mix
		switch *wl {
		case "tpch":
			mix = workload.MixTPCH
		case "alibaba":
			mix = workload.MixAlibaba
		case "both":
			mix = workload.MixBoth
		default:
			log.Fatalf("tracegen: unknown workload %q", *wl)
		}
		jobs := workload.Batch(workload.BatchConfig{N: *n, MeanInterarrival: *inter, Mix: mix, Seed: *seed})
		w := csv.NewWriter(os.Stdout)
		record := func(ss ...string) {
			if err := w.Write(ss); err != nil {
				log.Fatalf("tracegen: %v", err)
			}
		}
		record("job", "name", "arrival_sec", "stages", "total_work_sec", "critical_path_sec")
		for _, j := range jobs {
			record(strconv.Itoa(j.ID), j.Name,
				fmt.Sprintf("%.2f", j.Arrival),
				strconv.Itoa(len(j.Stages)),
				fmt.Sprintf("%.2f", j.TotalWork()),
				fmt.Sprintf("%.2f", j.CriticalPathLength()))
		}
		w.Flush()
		if err := w.Error(); err != nil {
			log.Fatalf("tracegen: %v", err)
		}
	default:
		fmt.Fprintln(os.Stderr, "tracegen: pass -grid NAME or -workload KIND")
		os.Exit(2)
	}
}

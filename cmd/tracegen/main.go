// Command tracegen emits synthetic carbon-intensity traces and workload
// batches as CSV for offline analysis or replay.
//
// Usage:
//
//	tracegen -grid DE -hours 2000 > de.csv
//	tracegen -workload tpch -n 50 > jobs.csv
//	tracegen -workload alibaba -n 50 -seed 7 -header > jobs.csv
//	tracegen -scenario spec.json -out inputs/   # every resolved input
//
// Workload CSV columns: job, name, class, arrival_sec, stages,
// total_work_sec, critical_path_sec. The class and arrival_sec columns
// make every workload CSV an arrival schedule: arrivals.ReadCSV decodes
// it (ignoring the other columns), so a scenario can replay a
// previously emitted batch via workload.arrivals{kind: csv}.
//
// -header prepends a '# generated=tracegen ...' provenance comment
// recording the generator parameters (seed, mix, sizes), so a CSV found
// on disk months later still says how to regenerate it; carbon.ReadCSV
// skips '#' comment lines, and the round-trip is pinned by this
// command's tests.
//
// -scenario resolves a declarative spec (internal/scenario) and writes
// one <cluster>.trace.csv per cluster plus workload.csv — the
// scenario's full resolved inputs for offline replay — into the -out
// directory.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"pcaps/internal/arrivals"
	"pcaps/internal/carbon"
	"pcaps/internal/dag"
	"pcaps/internal/scenario"
	"pcaps/internal/workload"
)

func main() {
	var (
		grid     = flag.String("grid", "", "emit a carbon trace for this grid (PJM, CAISO, ON, DE, NSW, ZA)")
		hours    = flag.Int("hours", carbon.PaperHours, "trace length in hours")
		wl       = flag.String("workload", "", "emit a workload batch: tpch, alibaba, or both")
		n        = flag.Int("n", 50, "number of jobs")
		inter    = flag.Float64("interarrival", 30, "mean Poisson interarrival in seconds")
		seed     = flag.Int64("seed", 42, "random seed")
		header   = flag.Bool("header", false, "prepend a '# generated=tracegen ...' provenance comment")
		scenFile = flag.String("scenario", "", "resolve a scenario spec file and emit its trace/workload CSVs")
		outDir   = flag.String("out", "", "directory for -scenario output (default: current directory)")
	)
	flag.Parse()

	switch {
	case *scenFile != "":
		if err := emitScenario(*scenFile, *outDir, *header); err != nil {
			log.Fatalf("tracegen: %v", err)
		}
	case *grid != "":
		spec, err := carbon.GridByName(*grid)
		if err != nil {
			log.Fatalf("tracegen: %v", err)
		}
		tr := carbon.Synthesize(spec, *hours, 60, *seed)
		if err := writeTrace(os.Stdout, tr, traceProvenance(*grid, *hours, *seed, *header)); err != nil {
			log.Fatalf("tracegen: %v", err)
		}
	case *wl != "":
		mix, err := mixFor(*wl)
		if err != nil {
			log.Fatalf("tracegen: %v", err)
		}
		cfg := workload.BatchConfig{N: *n, MeanInterarrival: *inter, Mix: mix, Seed: *seed}
		if err := writeWorkload(os.Stdout, cfg, *header); err != nil {
			log.Fatalf("tracegen: %v", err)
		}
	default:
		fmt.Fprintln(os.Stderr, "tracegen: pass -grid NAME, -workload KIND, or -scenario FILE")
		os.Exit(2)
	}
}

func mixFor(name string) (workload.Mix, error) {
	switch name {
	case "tpch":
		return workload.MixTPCH, nil
	case "alibaba":
		return workload.MixAlibaba, nil
	case "both":
		return workload.MixBoth, nil
	}
	return 0, fmt.Errorf("unknown workload %q", name)
}

// traceProvenance builds the '# generated=...' comment for a trace CSV,
// or "" when headers are off.
func traceProvenance(grid string, hours int, seed int64, on bool) string {
	if !on {
		return ""
	}
	return fmt.Sprintf("# generated=tracegen grid=%s hours=%d seed=%d", grid, hours, seed)
}

// workloadProvenance builds the provenance comment for a workload CSV.
func workloadProvenance(cfg workload.BatchConfig) string {
	return fmt.Sprintf("# generated=tracegen seed=%d mix=%s n=%d interarrival=%g",
		cfg.Seed, cfg.Mix, cfg.N, cfg.MeanInterarrival)
}

// writeTrace serializes one trace, optionally preceded by a provenance
// comment line (carbon.ReadCSV skips '#' lines, so the file round-trips
// either way).
func writeTrace(w io.Writer, tr *carbon.Trace, provenance string) error {
	if provenance != "" {
		if _, err := fmt.Fprintln(w, provenance); err != nil {
			return err
		}
	}
	return tr.WriteCSV(w)
}

// writeWorkload generates the batch and serializes its summary rows.
func writeWorkload(w io.Writer, cfg workload.BatchConfig, header bool) error {
	prov := ""
	if header {
		prov = workloadProvenance(cfg)
	}
	return writeJobs(w, workload.Batch(cfg), prov)
}

// writeJobs serializes a job batch, optionally preceded by a provenance
// comment. The class,arrival_sec column pair doubles as an arrival
// schedule: arrivals.ReadCSV decodes these files directly.
func writeJobs(w io.Writer, jobs []*dag.Job, provenance string) error {
	if provenance != "" {
		if _, err := fmt.Fprintln(w, provenance); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"job", "name", "class", "arrival_sec", "stages", "total_work_sec", "critical_path_sec"}); err != nil {
		return err
	}
	for _, j := range jobs {
		if err := cw.Write(workloadRecord(j)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func workloadRecord(j *dag.Job) []string {
	return []string{
		strconv.Itoa(j.ID), j.Name, j.Class,
		fmt.Sprintf("%.2f", j.Arrival),
		strconv.Itoa(len(j.Stages)),
		fmt.Sprintf("%.2f", j.TotalWork()),
		fmt.Sprintf("%.2f", j.CriticalPathLength()),
	}
}

// arrivalsDesc renders the resolved arrival process for provenance
// comments.
func arrivalsDesc(s arrivals.Spec) string {
	switch s.Kind {
	case arrivals.KindPoisson:
		return fmt.Sprintf("arrivals=poisson mean_sec=%g", s.MeanSec)
	case arrivals.KindConstant:
		return fmt.Sprintf("arrivals=constant rps=%g", s.RPS)
	case arrivals.KindBurst:
		return fmt.Sprintf("arrivals=burst rps=%g peak_rps=%g period_sec=%g burst_sec=%g",
			s.RPS, s.PeakRPS, s.PeriodSec, s.BurstSec)
	case arrivals.KindCSV:
		return fmt.Sprintf("arrivals=csv n=%d", len(s.Times))
	default: // ramp, diurnal
		return fmt.Sprintf("arrivals=%s rps=%g peak_rps=%g period_sec=%g",
			s.Kind, s.RPS, s.PeakRPS, s.PeriodSec)
	}
}

// workloadDesc renders the batch's family axis: the mix for homogeneous
// batches, the class set (name:weight pairs) for heterogeneous ones.
func workloadDesc(mix string, classes []scenario.ClassSpec) string {
	if len(classes) == 0 {
		return "mix=" + mix
	}
	parts := make([]string, len(classes))
	for i, c := range classes {
		parts[i] = fmt.Sprintf("%s:%g", c.Name, c.Weight)
	}
	return "classes=" + strings.Join(parts, ",")
}

// emitScenario resolves a spec's inputs and writes one trace CSV per
// cluster plus the template workload CSV into dir.
func emitScenario(path, dir string, header bool) error {
	spec, err := scenario.Load(path)
	if err != nil {
		return err
	}
	prog, err := scenario.Compile(*spec)
	if err != nil {
		return err
	}
	in, err := prog.Inputs(scenario.Env{})
	if err != nil {
		return err
	}
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Provenance must reflect each cluster's actual source: synthesis
	// parameters only regenerate synthesized traces, so csv/carbonapi
	// clusters record where the samples came from instead.
	sources := map[string]scenario.ClusterSpec{}
	for _, c := range spec.Clusters {
		name := c.Name
		if name == "" {
			name = c.Grid
		}
		sources[name] = c
	}
	for _, c := range in.Clusters {
		file := filepath.Join(dir, c.Name+".trace.csv")
		f, err := os.Create(file)
		if err != nil {
			return err
		}
		prov := ""
		if header {
			base := fmt.Sprintf("# generated=tracegen scenario=%s cluster=%s grid=%s", spec.Name, c.Name, c.Grid)
			switch src := sources[c.Name]; src.Source {
			case "csv":
				prov = fmt.Sprintf("%s source=csv file=%s", base, src.CSV)
			case "carbonapi":
				prov = fmt.Sprintf("%s source=carbonapi url=%s hours=%d", base, src.URL, in.Hours)
			default:
				// SynthSeed, not the run seed: synthesis offsets the run
				// seed per grid, and the header's purpose is that
				// `tracegen -grid G -hours H -seed S` regenerates these
				// exact bytes.
				prov = fmt.Sprintf("%s hours=%d seed=%d", base, in.Hours, c.SynthSeed)
			}
		}
		werr := writeTrace(f, c.Trace, prov)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("%s: %w", file, werr)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d samples)\n", file, len(c.Trace.Values))
	}
	// The resolved batch is written directly: arrivals-driven and
	// heterogeneous batches cannot be rebuilt from a BatchConfig, and the
	// provenance comment records the arrival process and class set
	// instead of a single interarrival mean.
	prov := ""
	if header {
		prov = fmt.Sprintf("# generated=tracegen scenario=%s seed=%d %s n=%d %s",
			spec.Name, in.Seed, workloadDesc(in.Mix, in.Classes), in.JobsN, arrivalsDesc(in.Arrivals))
	}
	file := filepath.Join(dir, "workload.csv")
	f, err := os.Create(file)
	if err != nil {
		return err
	}
	werr := writeJobs(f, in.Jobs, prov)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("%s: %w", file, werr)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d jobs)\n", file, in.JobsN)
	return nil
}

package main

import (
	"bytes"
	"encoding/csv"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"pcaps/internal/arrivals"
	"pcaps/internal/carbon"
	"pcaps/internal/scenario"
	"pcaps/internal/workload"
)

// TestTraceRoundTrip: a tracegen trace CSV — with and without the
// provenance header — loads back through carbon.ReadCSV sample-exact.
func TestTraceRoundTrip(t *testing.T) {
	spec, err := carbon.GridByName("CAISO")
	if err != nil {
		t.Fatal(err)
	}
	tr := carbon.Synthesize(spec, 300, 60, 7)
	for _, header := range []bool{false, true} {
		var buf bytes.Buffer
		if err := writeTrace(&buf, tr, traceProvenance("CAISO", 300, 7, header)); err != nil {
			t.Fatal(err)
		}
		if header && !strings.HasPrefix(buf.String(), "# generated=tracegen grid=CAISO hours=300 seed=7\n") {
			t.Fatalf("missing provenance header:\n%s", buf.String()[:80])
		}
		back, err := carbon.ReadCSV(bytes.NewReader(buf.Bytes()), "CAISO", 60)
		if err != nil {
			t.Fatalf("header=%v: %v", header, err)
		}
		if !reflect.DeepEqual(back.Values, tr.Values) {
			t.Fatalf("header=%v: round-trip changed the samples", header)
		}
	}
}

// TestWorkloadRoundTrip: the provenance comment records everything
// needed to regenerate the batch — parse it back, rebuild, and the
// rows must be equal.
func TestWorkloadRoundTrip(t *testing.T) {
	cfg := workload.BatchConfig{N: 20, MeanInterarrival: 25, Mix: workload.MixBoth, Seed: 99}
	var buf bytes.Buffer
	if err := writeWorkload(&buf, cfg, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(buf.String(), "\n", 2)
	if !strings.HasPrefix(lines[0], "# generated=tracegen ") {
		t.Fatalf("missing provenance: %q", lines[0])
	}

	// Recover the generator parameters from the header alone.
	params := map[string]string{}
	for _, kv := range strings.Fields(strings.TrimPrefix(lines[0], "# ")) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			t.Fatalf("malformed provenance field %q", kv)
		}
		params[k] = v
	}
	seed, err := strconv.ParseInt(params["seed"], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	n, err := strconv.Atoi(params["n"])
	if err != nil {
		t.Fatal(err)
	}
	inter, err := strconv.ParseFloat(params["interarrival"], 64)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := mixFor(params["mix"])
	if err != nil {
		t.Fatal(err)
	}
	regen := workload.BatchConfig{N: n, MeanInterarrival: inter, Mix: mix, Seed: seed}
	if regen != cfg {
		t.Fatalf("recovered config %+v != %+v", regen, cfg)
	}

	// The regenerated batch reproduces the recorded rows exactly.
	rows, err := csv.NewReader(strings.NewReader(lines[1])).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != cfg.N+1 { // header + jobs
		t.Fatalf("%d rows for %d jobs", len(rows), cfg.N)
	}
	for i, j := range workload.Batch(regen) {
		if got := rows[i+1]; !reflect.DeepEqual(got, workloadRecord(j)) {
			t.Fatalf("row %d: %v != %v", i, got, workloadRecord(j))
		}
	}
}

// TestWorkloadNoHeaderByDefault: the provenance line is opt-in, so
// existing consumers of the bare CSV shape see no change.
func TestWorkloadNoHeaderByDefault(t *testing.T) {
	var buf bytes.Buffer
	if err := writeWorkload(&buf, workload.BatchConfig{N: 2, Mix: workload.MixTPCH, Seed: 1}, false); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "job,name,class,arrival_sec") {
		t.Fatalf("unexpected leading bytes: %q", buf.String()[:40])
	}
}

// TestEmitScenario: the -scenario path writes one trace CSV per
// resolved cluster plus the workload CSV, all loadable.
func TestEmitScenario(t *testing.T) {
	dir := t.TempDir()
	specFile := dir + "/spec.json"
	spec := `{
		"name": "emit",
		"seed": 3,
		"hours": 200,
		"grids": ["DE", "ON"],
		"workload": {"mix": "tpch", "jobs": 5},
		"baseline": {"kind": "fifo"},
		"policies": [{"kind": "cap"}]
	}`
	if err := os.WriteFile(specFile, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := emitScenario(specFile, dir, true); err != nil {
		t.Fatal(err)
	}
	for _, grid := range []string{"DE", "ON"} {
		f, err := os.Open(dir + "/" + grid + ".trace.csv")
		if err != nil {
			t.Fatal(err)
		}
		tr, err := carbon.ReadCSV(f, grid, 60)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Values) != 200 {
			t.Fatalf("%s: %d samples, want 200", grid, len(tr.Values))
		}
	}
	data, err := os.ReadFile(dir + "/workload.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# generated=tracegen scenario=emit seed=3 mix=tpch n=5 arrivals=poisson mean_sec=30") {
		t.Fatalf("workload provenance missing:\n%s", data[:120])
	}
}

// TestEmitScenarioArrivalsRoundTrip pins satellite contract: a workload
// CSV emitted for a burst/classes scenario decodes through
// arrivals.ReadCSV into the exact times and class labels of the
// resolved batch, so `workload.arrivals{kind: csv}` replays it.
func TestEmitScenarioArrivalsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	specFile := dir + "/spec.json"
	spec := `{
		"name": "replay",
		"seed": 11,
		"hours": 200,
		"grids": ["DE"],
		"workload": {
			"jobs": 12,
			"arrivals": {"kind": "burst", "rps": 0.05, "peak_rps": 0.5, "period_sec": 120, "burst_sec": 20},
			"classes": [
				{"name": "interactive", "mix": "tpch", "weight": 3},
				{"name": "batch", "mix": "alibaba", "weight": 1, "work_scale": 2}
			]
		},
		"baseline": {"kind": "fifo"},
		"policies": [{"kind": "cap"}]
	}`
	if err := os.WriteFile(specFile, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := emitScenario(specFile, dir, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/workload.csv")
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{
		"# generated=tracegen scenario=replay seed=11 classes=interactive:3,batch:1 n=12",
		"arrivals=burst rps=0.05 peak_rps=0.5 period_sec=120 burst_sec=20",
	} {
		if !strings.Contains(string(data), needle) {
			t.Fatalf("workload provenance missing %q:\n%s", needle, data[:160])
		}
	}
	sched, err := arrivals.ReadCSV(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the resolved batch the emitter serialized.
	prog, err := scenario.Compile(*mustLoad(t, specFile))
	if err != nil {
		t.Fatal(err)
	}
	in, err := prog.Inputs(scenario.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Times) != len(in.Jobs) {
		t.Fatalf("schedule has %d rows, batch %d jobs", len(sched.Times), len(in.Jobs))
	}
	classes := 0
	for i, j := range in.Jobs {
		// Times round through the CSV's two-decimal format.
		want, _ := strconv.ParseFloat(strconv.FormatFloat(j.Arrival, 'f', 2, 64), 64)
		if sched.Times[i] != want {
			t.Fatalf("row %d: time %v, want %v", i, sched.Times[i], want)
		}
		if sched.Classes[i] != j.Class {
			t.Fatalf("row %d: class %q, want %q", i, sched.Classes[i], j.Class)
		}
		if j.Class == "batch" {
			classes++
		}
	}
	if classes == 0 {
		t.Fatal("no job drew the minority class; widen the batch")
	}
}

func mustLoad(t *testing.T, path string) *scenario.Spec {
	t.Helper()
	spec, err := scenario.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// Command pcapsim regenerates the paper's tables and figures from the
// simulator and prototype substrates.
//
// Usage:
//
//	pcapsim -exp table2            # one artifact
//	pcapsim -exp all               # every artifact, paper order
//	pcapsim -list                  # show artifact IDs
//	pcapsim -exp fig13 -trials 5 -seed 7
//	pcapsim -exp table3 -grids DE,CAISO -fast
//	pcapsim -exp federation        # multi-grid routing vs single-grid baselines
//	pcapsim -exp federation -grids CAISO,DE  # one custom scenario
//	pcapsim -exp all -fast -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//
// Each report prints the regenerated rows or series next to the paper's
// published values. The -cpuprofile/-memprofile flags write standard
// pprof profiles of the run (inspect with `go tool pprof`), so hot-path
// work on the engine needs no code edits to measure.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pcaps/internal/experiments"
)

func main() {
	os.Exit(run())
}

// run holds main's body so deferred profile writers execute before the
// process exits, on success and failure alike.
func run() int {
	var (
		exp      = flag.String("exp", "", "artifact to regenerate (table1..3, fig1..20, ablation, federation, or 'all')")
		list     = flag.Bool("list", false, "list artifact IDs and exit")
		grids    = flag.String("grids", "", "comma-separated grid subset (default: all six)")
		trials   = flag.Int("trials", 0, "trials per configuration (0 = experiment default)")
		jobs     = flag.Int("jobs", 0, "override batch size where applicable")
		seed     = flag.Int64("seed", 42, "random seed")
		fast     = flag.Bool("fast", false, "shrink the experiment matrix for a quick pass")
		parallel = flag.Int("parallel", 0, "worker goroutines for experiment cells (0 = GOMAXPROCS, 1 = serial); reports are identical at any setting")
		cpuprof  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprof  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcapsim: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pcapsim: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pcapsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live set before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "pcapsim: -memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "pcapsim: -exp required (or -list); e.g. pcapsim -exp table3")
		return 2
	}
	opt := experiments.Options{
		Trials:   *trials,
		Jobs:     *jobs,
		Seed:     *seed,
		Fast:     *fast,
		Parallel: *parallel,
	}
	if *grids != "" {
		// Grid names are validated by experiments.Run; a typo surfaces as
		// a clear error before any simulation starts.
		opt.Grids = strings.Split(*grids, ",")
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	// Reports go to stdout in request order; timing goes to stderr so
	// stdout stays byte-identical across -parallel settings. On failure,
	// the artifacts that finished before the run was cut short still
	// print (the contiguous completed prefix, as a serial run would show).
	start := time.Now()
	reports, err := experiments.RunAll(ids, opt)
	printed := 0
	for _, rep := range reports {
		if rep == nil {
			break
		}
		fmt.Print(rep.Render())
		fmt.Println()
		printed++
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcapsim: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "[%d artifact(s) in %.1fs]\n", printed, time.Since(start).Seconds())
	return 0
}

// Command pcapsim regenerates the paper's tables and figures from the
// simulator and prototype substrates.
//
// Usage:
//
//	pcapsim -exp table2            # one artifact
//	pcapsim -exp all               # every artifact, paper order
//	pcapsim -list                  # show artifact IDs and titles
//	pcapsim -exp fig13 -trials 5 -seed 7
//	pcapsim -exp table3 -grids DE,CAISO -fast
//	pcapsim -exp federation        # multi-grid routing vs single-grid baselines
//	pcapsim -exp federation -grids CAISO,DE  # one custom scenario
//	pcapsim -exp table2 -fast -format json   # structured artifact to stdout
//	pcapsim -exp all -fast -format csv -out results/  # one file per artifact
//	pcapsim -exp all -fast -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	pcapsim -scenario examples/scenarios/minimal.json           # user scenario
//	pcapsim -scenario my.yaml -fast -parallel 4 -format json -out results/
//
// -scenario compiles a declarative spec file (JSON or the YAML subset of
// internal/scenario) and runs it through the same engine as the built-in
// artifacts; it composes with -fast, -parallel, -format, and -out.
//
// Each report is a typed result.Artifact; -format selects the renderer
// (text reproduces the historical fixed-width output next to the paper's
// published values; json and csv emit the machine-readable rows), and
// -out writes one file per artifact instead of streaming to stdout. The
// -cpuprofile/-memprofile flags write standard pprof profiles of the run
// (inspect with `go tool pprof`), so hot-path work on the engine needs
// no code edits to measure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pcaps/internal/experiments"
	"pcaps/internal/result"
	"pcaps/internal/scenario"
)

func main() {
	os.Exit(run())
}

// run holds main's body so deferred profile writers execute before the
// process exits, on success and failure alike.
func run() int {
	var (
		exp      = flag.String("exp", "", "artifact to regenerate (table1..3, fig1..20, ablation, federation, or 'all')")
		scenFile = flag.String("scenario", "", "compile and run a declarative scenario spec file (JSON or YAML)")
		list     = flag.Bool("list", false, "list artifact IDs and titles (tab-separated) and exit")
		grids    = flag.String("grids", "", "comma-separated grid subset (default: all six)")
		trials   = flag.Int("trials", 0, "trials per configuration (0 = experiment default)")
		jobs     = flag.Int("jobs", 0, "override batch size where applicable")
		seed     = flag.Int64("seed", 42, "random seed")
		fast     = flag.Bool("fast", false, "shrink the experiment matrix for a quick pass")
		parallel = flag.Int("parallel", 0, "worker goroutines for experiment cells (0 = GOMAXPROCS, 1 = serial); reports are identical at any setting")
		format   = flag.String("format", "text", "output format: "+strings.Join(result.Formats(), "|"))
		outDir   = flag.String("out", "", "write one <id>.<ext> file per artifact into this directory instead of stdout")
		cpuprof  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprof  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	renderer, err := result.RendererFor(*format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcapsim: -format: %v\n", err)
		return 2
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcapsim: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pcapsim: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pcapsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live set before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "pcapsim: -memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, info := range experiments.List() {
			fmt.Printf("%s\t%s\n", info.ID, info.Title)
		}
		return 0
	}
	if *exp == "" && *scenFile == "" {
		fmt.Fprintln(os.Stderr, "pcapsim: -exp or -scenario required (or -list); e.g. pcapsim -exp table3")
		return 2
	}
	if *exp != "" && *scenFile != "" {
		fmt.Fprintln(os.Stderr, "pcapsim: -exp and -scenario are mutually exclusive")
		return 2
	}
	if *scenFile != "" {
		// A scenario carries its own seed, trials, batch size, and grid
		// set; silently ignoring these flags would make a command-line
		// seed sweep return identical outputs, so they are rejected
		// instead — edit the spec (or copy it) to vary them.
		scenarioOwns := map[string]bool{"seed": true, "trials": true, "jobs": true, "grids": true}
		conflict := ""
		flag.Visit(func(f *flag.Flag) {
			if scenarioOwns[f.Name] && conflict == "" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			fmt.Fprintf(os.Stderr, "pcapsim: -%s does not apply to -scenario runs; set it in the spec file\n", conflict)
			return 2
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "pcapsim: -out: %v\n", err)
			return 1
		}
	}
	if *scenFile != "" {
		return runScenario(*scenFile, renderer, *outDir, *fast, *parallel)
	}
	opt := experiments.Options{
		Trials:   *trials,
		Jobs:     *jobs,
		Seed:     *seed,
		Fast:     *fast,
		Parallel: *parallel,
	}
	if *grids != "" {
		// Grid names are validated by experiments.Run; a typo or a
		// duplicate surfaces as a clear error before any simulation
		// starts.
		opt.Grids = strings.Split(*grids, ",")
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	// Rendered artifacts go to stdout in request order; timing goes to
	// stderr so stdout stays byte-identical across -parallel settings.
	// On failure, every artifact that finished before the run was cut
	// short still renders — with the parallel engine a slot after the
	// failing one may well have completed, so nil slots are skipped
	// rather than treated as the end of the output.
	start := time.Now()
	reports, err := experiments.RunAll(ids, opt)
	printed := 0
	renderErr := false
	for _, rep := range reports {
		if rep == nil {
			continue
		}
		out, rerr := renderer.Render(rep.Artifact)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "pcapsim: rendering %s: %v\n", rep.ID, rerr)
			renderErr = true
			continue
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, rep.ID+"."+renderer.Ext())
			if werr := os.WriteFile(path, out, 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "pcapsim: %v\n", werr)
				renderErr = true
				continue
			}
		} else {
			os.Stdout.Write(out)
			if renderer.Name() == "text" {
				fmt.Println()
			}
		}
		printed++
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcapsim: %v\n", err)
		return 1
	}
	if renderErr {
		return 1
	}
	fmt.Fprintf(os.Stderr, "[%d artifact(s) in %.1fs]\n", printed, time.Since(start).Seconds())
	return 0
}

// runScenario loads, compiles, and executes one declarative scenario
// spec, rendering through the same -format/-out machinery as the
// built-in artifacts. Timing goes to stderr so stdout stays a pure
// function of the spec.
func runScenario(path string, renderer result.Renderer, outDir string, fast bool, parallel int) int {
	spec, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcapsim: -scenario: %v\n", err)
		return 2
	}
	prog, err := scenario.Compile(*spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcapsim: -scenario: %v\n", err)
		return 2
	}
	start := time.Now()
	art, err := prog.Run(scenario.Env{Pool: scenario.NewPool(parallel), Fast: fast})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcapsim: %v\n", err)
		return 1
	}
	out, err := renderer.Render(art)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcapsim: rendering %s: %v\n", art.ID, err)
		return 1
	}
	if outDir != "" {
		file := filepath.Join(outDir, art.ID+"."+renderer.Ext())
		if err := os.WriteFile(file, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pcapsim: %v\n", err)
			return 1
		}
	} else {
		os.Stdout.Write(out)
		if renderer.Name() == "text" {
			fmt.Println()
		}
	}
	fmt.Fprintf(os.Stderr, "[scenario %s in %.1fs]\n", art.ID, time.Since(start).Seconds())
	return 0
}

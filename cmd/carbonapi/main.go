// Command carbonapi serves the carbon-intensity HTTP API of the paper's
// prototype (§5.1), replaying synthetic (or CSV) traces for the six grids.
//
// Usage:
//
//	carbonapi -addr :8585
//	carbonapi -addr :8585 -hours 2000 -seed 7
//	carbonapi -addr :8585 -csv DE=de.csv   # replay a real trace
//	carbonapi -addr :8585 -experiments=false  # trace endpoints only
//	carbonapi -addr :8585 -scenarios=false    # no user scenario runs
//	carbonapi -addr :8585 -placement=false    # no snapshot placement decisions
//
// Endpoints: /v1/grids, /v1/intensity, /v1/forecast, /v1/trace (all four
// also reachable unprefixed for legacy pollers), plus /v1/experiments
// and /v1/experiments/{id} — the artifact registry with on-demand fast
// runs returning structured JSON (internal/result encoding) — and
// POST /v1/scenarios, which validates a user-supplied declarative
// scenario spec (internal/scenario, JSON or YAML), runs it in fast
// mode, and returns the structured artifact. POST /v1/placement answers
// one scheduling decision per posted policy against a serialized
// cluster snapshot (internal/placement).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"pcaps/internal/carbon"
	"pcaps/internal/carbonapi"
	"pcaps/internal/experiments"
	"pcaps/internal/placement"
	"pcaps/internal/scenario"
)

func main() {
	var (
		addr  = flag.String("addr", ":8585", "listen address")
		hours = flag.Int("hours", carbon.PaperHours, "synthetic trace length in hours")
		seed  = flag.Int64("seed", 42, "synthetic trace seed")
		csvs  = flag.String("csv", "", "comma-separated GRID=FILE pairs of real traces to replay instead")
		exps  = flag.Bool("experiments", true, "serve /v1/experiments (on-demand fast artifact runs)")
		scens = flag.Bool("scenarios", true, "serve POST /v1/scenarios (on-demand fast user scenario runs)")
		ext   = flag.Bool("scenario-external-sources", false, "allow csv/carbonapi carbon sources in POSTed scenarios (reads server files / dials out)")
		place = flag.Bool("placement", true, "serve POST /v1/placement (policy decisions on posted cluster snapshots)")
	)
	flag.Parse()

	traces := carbon.SynthesizeAll(*hours, 60, *seed)
	if *csvs != "" {
		for _, pair := range strings.Split(*csvs, ",") {
			name, file, ok := strings.Cut(pair, "=")
			if !ok {
				log.Fatalf("carbonapi: bad -csv entry %q (want GRID=FILE)", pair)
			}
			f, err := os.Open(file)
			if err != nil {
				log.Fatalf("carbonapi: %v", err)
			}
			tr, err := carbon.ReadCSV(f, name, 60)
			f.Close()
			if err != nil {
				log.Fatalf("carbonapi: %s: %v", file, err)
			}
			traces[name] = tr
		}
	}
	for _, name := range carbon.SortedNames(traces) {
		s := traces[name].Stats()
		fmt.Printf("%-6s %6d samples  mean %5.0f  cv %.3f\n", name, s.Samples, s.Mean, s.CoeffVar)
	}
	var opts []carbonapi.Option
	if *exps {
		opts = append(opts, carbonapi.WithExperiments(&experiments.Service{
			Options: experiments.Options{Seed: *seed},
		}))
		fmt.Printf("serving %d experiment artifacts under /v1/experiments\n", len(experiments.IDs()))
	}
	if *scens {
		opts = append(opts, carbonapi.WithScenarios(&scenario.Service{
			Pool:                 scenario.NewPool(0),
			AllowExternalSources: *ext,
		}))
		fmt.Printf("serving user scenarios under POST /v1/scenarios\n")
	}
	if *place {
		opts = append(opts, carbonapi.WithPlacements(&placement.Service{}))
		fmt.Printf("serving policy decisions under POST /v1/placement\n")
	}
	fmt.Printf("serving carbon-intensity API on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, carbonapi.NewServer(traces, opts...)))
}
